// Package consensus is a library reproduction of Cynthia Dwork and Dale
// Skeen, "Patterns of Communication in Consensus Protocols" (PODC 1984,
// Cornell TR 84-611).
//
// The library provides:
//
//   - the paper's model of computation: asynchronous message passing among
//     fail-stop processors with detectable failures, configurations, events,
//     schedules, and runs (package sim, surfaced here);
//
//   - communication patterns — the Lamport-style partial order <_I on the
//     message triples (p, q, k) of an execution — and schemes, the sets of
//     patterns of all failure-free executions of a protocol;
//
//   - the taxonomy of consensus problems: decision rules (broadcast,
//     unanimity, threshold-k, set), consistency constraints (interactive and
//     total), and termination conditions (weak, strong/amnesic, halting);
//
//   - the paper's protocols: the Figure 1 tree protocol (WT-TC), the
//     Figure 2 star protocol (HT-IC), the Figure 3 chain protocol (WT-IC),
//     the Figure 4 "perverse" protocol, the Appendix termination protocol,
//     and companions (ack-commit, halting commit, reliable broadcast, naive
//     full exchange);
//
//   - an exhaustive model checker with failure injection, concurrency sets,
//     the safe-state analysis of Theorem 2, and a scenario-replay engine for
//     the indistinguishability arguments of Theorems 8 and 13;
//
//   - the Section 3 transformations (total-communication padding and E̅
//     elimination) and the six-problem lattice of Section 4, derived from
//     machine-checked witnesses.
//
// Quick start:
//
//	proto := consensus.Tree(7)
//	run, err := consensus.Run(proto, consensus.MustInputs("1111111"), 1)
//	pat := consensus.PatternOf(run)
//	fmt.Println(pat.RenderASCII())
package consensus

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/frontier"
	"repro/internal/pattern"
	"repro/internal/protocols"
	"repro/internal/runtime"
	"repro/internal/runtime/dist"
	"repro/internal/runtime/netx"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/taxonomy"
	"repro/internal/transform"
)

// Model types (Section 3).
type (
	// Protocol is a consensus protocol over N deterministic processors.
	Protocol = sim.Protocol
	// State is a processor's local state.
	State = sim.State
	// ProcID identifies a processor p_i.
	ProcID = sim.ProcID
	// Bit is an initial value.
	Bit = sim.Bit
	// Decision is an irreversible outcome (abort or commit).
	Decision = sim.Decision
	// Message is an in-flight message.
	Message = sim.Message
	// Payload is a protocol-defined message body with a canonical key.
	Payload = sim.Payload
	// MsgID is the paper's message triple (p, q, k).
	MsgID = sim.MsgID
	// Event is a schedule element: a delivery, a sending step, or a failure.
	Event = sim.Event
	// Schedule is a finite sequence of events.
	Schedule = sim.Schedule
	// Config is a configuration: local states plus buffer contents.
	Config = sim.Config
	// ExecutionRun is a schedule together with its configurations.
	ExecutionRun = sim.Run
	// RunnerOptions configures the fair random scheduler.
	RunnerOptions = sim.RunnerOptions
	// FailureAt schedules a fail-stop failure injection.
	FailureAt = sim.FailureAt
	// OmissionPolicy bounds omission faults per run: Budget suppressed
	// deliveries total, with Mobile optionally capping how many processors
	// may be omission-faulty at once (the mobile-faults model).
	OmissionPolicy = sim.OmissionPolicy
)

// Pattern and scheme types (Section 3).
type (
	// Pattern is a communication pattern: message triples under <_I.
	Pattern = pattern.Pattern
	// PatternSet is a set of communication patterns; the scheme of a
	// protocol is a PatternSet.
	PatternSet = scheme.Set
	// SchemeOptions bounds scheme enumeration.
	SchemeOptions = scheme.Options
	// SchemeComparison relates two schemes under inclusion.
	SchemeComparison = scheme.Comparison
)

// Scheme comparison outcomes.
const (
	// SchemesEqual means the two protocols have exactly the same
	// communication patterns: either can substitute for the other up to a
	// renaming of states and padding of messages.
	SchemesEqual = scheme.SchemesEqual
	// SchemeSubset / SchemeSuperset are the strict inclusions.
	SchemeSubset   = scheme.SchemeSubset
	SchemeSuperset = scheme.SchemeSuperset
	// SchemesIncomparable means neither inclusion holds.
	SchemesIncomparable = scheme.SchemesIncomparable
)

// Taxonomy types (Section 2).
type (
	// Problem is a consensus problem: rule × consistency × termination.
	Problem = taxonomy.Problem
	// DecisionRule is a family of conditions for deciding a value.
	DecisionRule = taxonomy.DecisionRule
	// Consistency is IC or TC.
	Consistency = taxonomy.Consistency
	// Termination is WT, ST, or HT.
	Termination = taxonomy.Termination
	// Violation records one way a run failed a problem.
	Violation = taxonomy.Violation
)

// Dedup selects the visited-set representation used by exhaustive
// exploration and scheme enumeration (CheckOptions.Dedup and
// SchemeOptions.Dedup). All engines produce byte-identical results; see
// README "State hashing and fingerprints".
type Dedup = frontier.Dedup

// Dedup engines.
const (
	// DedupFingerprint (the default) keys visited nodes by 128-bit
	// fingerprint: 16 bytes per node and an incremental fast path that
	// skips materializing already-seen successors.
	DedupFingerprint = frontier.DedupFingerprint
	// DedupVerified keys by fingerprint but keeps the canonical strings,
	// verifying every hit and counting collisions (Exploration.Collisions).
	DedupVerified = frontier.DedupVerified
	// DedupStrings keys by full canonical strings — the reference engine.
	DedupStrings = frontier.DedupStrings
)

// Reduction selects state-space reductions for exhaustive exploration
// (CheckOptions.Reduction): ample-set partial-order reduction, processor-
// symmetry canonicalization, or both. Reduced runs preserve the
// conformance verdict and terminal decision structure while exploring far
// fewer interleavings; see DESIGN.md §8.
type Reduction = checker.Reduction

// Reductions.
const (
	ReduceNone     = checker.ReduceNone
	ReduceAmple    = checker.ReduceAmple
	ReduceSymmetry = checker.ReduceSymmetry
	ReduceBoth     = checker.ReduceBoth
)

// ParseReduction parses a -reduce flag value (none, ample, symmetry, both).
func ParseReduction(s string) (Reduction, error) { return checker.ParseReduction(s) }

// Checker types.
type (
	// CheckOptions configures exhaustive exploration.
	CheckOptions = checker.Options
	// Exploration is the result of exploring a configuration space.
	Exploration = checker.Exploration
	// ExploreStatus reports how an exploration ended (complete,
	// interrupted, or budget-exhausted).
	ExploreStatus = checker.Status
	// BudgetError reports exhaustion of an exploration's node budget; the
	// partial Exploration accompanies it.
	BudgetError = checker.BudgetError
	// SafetyReport is the Theorem 2 safe-state analysis.
	SafetyReport = checker.SafetyReport
	// Driver builds specific adversarial executions step by step.
	Driver = checker.Driver
)

// Chaos-testing types.
type (
	// ChaosOptions configures a randomized failure-injection sweep.
	ChaosOptions = chaos.Options
	// ChaosReport is the result of a chaos sweep.
	ChaosReport = chaos.Report
	// ChaosFailure is one violating (or panicking) chaos run, with its
	// shrunk counterexample schedule.
	ChaosFailure = chaos.Failure
	// ChaosTrace is a replayable serialized counterexample.
	ChaosTrace = chaos.Trace
	// ChaosTraceEvent is one serialized schedule element.
	ChaosTraceEvent = chaos.TraceEvent
	// ChaosTraceInjection is a serialized failure injection.
	ChaosTraceInjection = chaos.TraceInjection
	// ChaosTraceViolation is a serialized violation.
	ChaosTraceViolation = chaos.TraceViolation
	// ChaosReplayResult is the outcome of re-executing a trace.
	ChaosReplayResult = chaos.ReplayResult
	// ChaosAdversary is a deterministic scheduling strategy driving a chaos
	// run's event choices (uniform, delay, adaptive).
	ChaosAdversary = chaos.Adversary
	// ChaosRunStat is one run's injection accounting, surfaced per run in
	// machine-readable sweep output.
	ChaosRunStat = chaos.RunStat
)

// Chaos adversary names (ChaosOptions.Adversary, ccchaos -adversary).
const (
	ChaosAdversaryUniform  = chaos.AdversaryUniform
	ChaosAdversaryDelay    = chaos.AdversaryDelay
	ChaosAdversaryAdaptive = chaos.AdversaryAdaptive
)

// NewChaosAdversary builds a per-run adversary by name (empty = uniform);
// exposed so CLIs can validate -adversary values before sweeping.
func NewChaosAdversary(name string) (ChaosAdversary, error) { return chaos.NewAdversary(name) }

// Live-runtime types (cmd/cclive).
type (
	// LiveConfig tunes one live run: transport faults, crash injections,
	// heartbeat cadence, detection timeout, and deadline.
	LiveConfig = runtime.Config
	// LiveFaultPlan configures the unreliable link under the transport.
	LiveFaultPlan = runtime.FaultPlan
	// LiveResult is one live run's recorded schedule, decisions, and
	// failure-detection measurements.
	LiveResult = runtime.Result
	// LiveCrash is one injected crash with its detection latency.
	LiveCrash = runtime.CrashReport
	// LiveConformance is the verdict of replaying a live run through the
	// deterministic simulator.
	LiveConformance = runtime.Conformance
	// LiveDivergence is one disagreement between a live run and the model.
	LiveDivergence = runtime.Divergence
	// ChaosRunPlan is the seed-derived recipe for one chaos or live run.
	ChaosRunPlan = chaos.RunPlan
	// LiveTransportStats snapshots the transport-layer loss, duplication,
	// and reconnection counters of a run.
	LiveTransportStats = runtime.TransportStats
)

// Distributed-runtime types (cmd/cclive -serve / -join).
type (
	// DistSpec describes one distributed run: protocol, inputs, the
	// processor→host owner map, and both fault plans.
	DistSpec = dist.Spec
	// DistOptions injects the protocol registry into the control plane.
	DistOptions = dist.Options
	// DistReport is a finished distributed run: the merged result plus
	// each host's share.
	DistReport = dist.Report
	// DistCoordinator is a standing multi-run distributed session.
	DistCoordinator = dist.Coordinator
	// LinkFaultPlan seeds interval-based link faults (partitions, stalls,
	// resets) in the TCP mesh; every decision is a pure function of
	// (seed, link, interval).
	LinkFaultPlan = netx.LinkFaultPlan
)

// Core (Section 4) types.
type (
	// Lattice is the six-problem relation of the closing diagram.
	Lattice = core.Lattice
	// Evidence is one machine-checked fact behind the lattice.
	Evidence = core.Evidence
	// Relation classifies a problem pair.
	Relation = core.Relation
	// WitnessOptions scales lattice verification effort.
	WitnessOptions = core.WitnessOptions
	// ExperimentReport is the outcome of one reproduction experiment.
	ExperimentReport = experiments.Report
	// ExperimentOptions scales experiment effort.
	ExperimentOptions = experiments.Options
)

// Values and constants.
const (
	// Zero and One are the two initial bits.
	Zero = sim.Zero
	One  = sim.One
	// NoDecision, Abort, and Commit are the decision values.
	NoDecision = sim.NoDecision
	Abort      = sim.Abort
	Commit     = sim.Commit
	// IC and TC are the consistency constraints.
	IC = taxonomy.IC
	TC = taxonomy.TC
	// WT, ST, and HT are the termination conditions.
	WT = taxonomy.WT
	ST = taxonomy.ST
	HT = taxonomy.HT
	// Chaos run outcomes.
	ChaosOutcomePassed     = chaos.OutcomePassed
	ChaosOutcomeViolated   = chaos.OutcomeViolated
	ChaosOutcomePanicked   = chaos.OutcomePanicked
	ChaosOutcomeUnresolved = chaos.OutcomeUnresolved
	ChaosOutcomeAborted    = chaos.OutcomeAborted
	// Chaos sweep statuses.
	ChaosStatusComplete    = chaos.StatusComplete
	ChaosStatusInterrupted = chaos.StatusInterrupted
)

// Protocol constructors.

// Tree returns the Figure 1 WT-TC tree protocol over n processors in heap
// layout (the paper's instance is n = 7).
func Tree(n int) Protocol { return protocols.Tree{Procs: n} }

// TreeST returns the Corollary 11 amnesic variant of the tree protocol,
// which solves ST-TC.
func TreeST(n int) Protocol { return protocols.Tree{Procs: n, ST: true} }

// Star returns the Figure 2 HT-IC centralized protocol.
func Star(n int) Protocol { return protocols.Star{Procs: n} }

// Chain returns the Figure 3 WT-IC chain protocol.
func Chain(n int) Protocol { return protocols.Chain{Procs: n} }

// ChainST returns the deliberately incorrect amnesic chain variant used in
// the proof of Theorem 13 (it violates ST-IC).
func ChainST(n int) Protocol { return protocols.Chain{Procs: n, ST: true} }

// Perverse returns the Figure 4 WT-TC protocol with exactly four
// failure-free communication patterns per input vector.
func Perverse() Protocol { return protocols.Perverse{} }

// PerverseForgetful returns the amnesic-p0 variant realizing Theorem 13's
// contradiction.
func PerverseForgetful() Protocol { return protocols.Perverse{ForgetfulP0: true} }

// TerminationProtocol returns the Appendix termination protocol run
// standalone: inputs are biases, and WT-TC is established within O(N²)
// steps per processor from safe starting biases (Theorem 7).
func TerminationProtocol(n int) Protocol { return protocols.Termination{Procs: n} }

// AckCommit returns the star-shaped safe commit protocol (WT-TC, arbitrary
// N): the depth-one instance of Figure 1's scheme and the core of
// nonblocking commit.
func AckCommit(n int) Protocol { return protocols.AckCommit{Procs: n} }

// HaltingCommit returns the HT-TC protocol: ack-commit plus decision
// broadcasts before halting and the modified termination protocol.
func HaltingCommit(n int) Protocol { return protocols.HaltingCommit{Procs: n} }

// Broadcast returns fail-stop reliable broadcast (the weak broadcast rule)
// with general p0.
func Broadcast(n int) Protocol { return protocols.Broadcast{Procs: n} }

// FullExchange returns the naive decentralized unanimity protocol — a WT-IC
// baseline with deliberately unsafe states (a Theorem 2 counterexample).
func FullExchange(n int) Protocol { return protocols.FullExchange{Procs: n} }

// TwoPhaseCommit returns classic (blocking) two-phase commit: WT-IC only,
// with the Theorem 2 unsafe uncertainty states that make it block.
func TwoPhaseCommit(n int) Protocol { return protocols.TwoPhaseCommit{Procs: n} }

// ThresholdCommit returns the safe two-phase protocol under the
// threshold-k decision rule: commit iff at least k processors vote 1.
func ThresholdCommit(n, k int) Protocol { return protocols.ThresholdCommit{Procs: n, K: k} }

// TotalComm wraps a protocol into its total-communication form: every
// message is padded with a copy of every causally prior message.
func TotalComm(p Protocol) Protocol { return transform.TotalComm{Inner: p} }

// EliminateEBar wraps a protocol in the Section 3 simulation that processes
// every message as soon as its existence is known, eliminating E̅ states.
func EliminateEBar(p Protocol) Protocol { return transform.EliminateEBar{Inner: p} }

// Execution and analysis.

// Run executes the protocol on the given inputs under the fair random
// scheduler (seeded) until quiescence.
func Run(p Protocol, inputs []Bit, seed int64) (*ExecutionRun, error) {
	return sim.RandomRun(p, inputs, sim.RunnerOptions{Seed: seed})
}

// RunWithOptions executes the protocol with full scheduler control,
// including failure injection.
func RunWithOptions(p Protocol, inputs []Bit, opts RunnerOptions) (*ExecutionRun, error) {
	return sim.RandomRun(p, inputs, opts)
}

// PatternOf extracts the communication pattern of a run.
func PatternOf(r *ExecutionRun) *Pattern { return pattern.FromRun(r) }

// SchemeOf computes the scheme of a protocol: the set of communication
// patterns of all failure-free executions over every input vector.
func SchemeOf(p Protocol, opts SchemeOptions) (*PatternSet, error) {
	return scheme.Of(p, opts)
}

// SchemeEnumeration is a possibly partial scheme enumeration: the patterns
// found so far plus how the walk ended.
type SchemeEnumeration = scheme.Enumeration

// SchemeOfContext computes the scheme with graceful degradation: on
// cancellation or budget exhaustion the patterns enumerated so far
// accompany the error instead of being discarded.
func SchemeOfContext(ctx context.Context, p Protocol, opts SchemeOptions) (*SchemeEnumeration, error) {
	return scheme.OfContext(ctx, p, opts)
}

// EnumeratePatterns computes the failure-free patterns from one input
// vector.
func EnumeratePatterns(p Protocol, inputs []Bit, opts SchemeOptions) (*PatternSet, error) {
	return scheme.Enumerate(p, inputs, opts)
}

// CompareSchemes computes and classifies the schemes of two protocols of
// equal size — the paper's protocol-level reduction instrument.
func CompareSchemes(a, b Protocol, opts SchemeOptions) (SchemeComparison, error) {
	return scheme.Compare(a, b, opts)
}

// Check model-checks a protocol against a problem over every input vector
// and failure pattern within the options' bounds.
func Check(p Protocol, problem Problem, opts CheckOptions) (*Exploration, error) {
	return checker.Check(p, problem, opts)
}

// CheckContext is Check with graceful degradation: on context cancellation
// or budget exhaustion the partial Exploration — visited nodes and every
// violation found so far, with its Status set — accompanies the error.
func CheckContext(ctx context.Context, p Protocol, problem Problem, opts CheckOptions) (*Exploration, error) {
	return checker.CheckContext(ctx, p, problem, opts)
}

// Explore walks a protocol's reachable configuration space without
// conformance checking (for safety analysis).
func Explore(p Protocol, opts CheckOptions) (*Exploration, error) {
	return checker.Explore(p, opts)
}

// ExploreContext is Explore with graceful degradation; see CheckContext.
func ExploreContext(ctx context.Context, p Protocol, opts CheckOptions) (*Exploration, error) {
	return checker.ExploreContext(ctx, p, opts)
}

// Chaos sweeps a protocol with randomized failure-injected executions,
// checking each against the problem and shrinking every violating schedule
// to a minimal, replayable counterexample. Cancellation is graceful: the
// partial report accompanies the context's error.
func Chaos(ctx context.Context, p Protocol, problem Problem, opts ChaosOptions) (*ChaosReport, error) {
	return chaos.Run(ctx, p, problem, opts)
}

// ChaosPlanRuns derives per-run seeds, inputs, and failure schedules from
// a sweep seed — the shared planning step of chaos sweeps and live soaks.
func ChaosPlanRuns(seed int64, runs, n, maxFail int, fixed [][]Bit) []ChaosRunPlan {
	return chaos.PlanRuns(seed, runs, n, maxFail, fixed)
}

// EncodeChaosEvent serializes a schedule event into the trace format.
func EncodeChaosEvent(e Event) chaos.TraceEvent { return chaos.EncodeEvent(e) }

// Live executes the protocol as one goroutine per processor over the
// fault-injected transport, with heartbeat failure detection, returning
// the recorded total-order schedule and live decisions.
func Live(ctx context.Context, p Protocol, inputs []Bit, cfg LiveConfig) (*LiveResult, error) {
	return runtime.Run(ctx, p, inputs, cfg)
}

// LiveConform replays a live result through the deterministic simulator
// and checks it against the problem's predicates; divergences mean the
// live execution left the model.
func LiveConform(res *LiveResult, p Protocol, problem Problem) (*LiveConformance, error) {
	return runtime.Conform(res, p, problem)
}

// LiveConformStream is LiveConform in O(N) memory: the replay holds only
// the current configuration, so crash-amplified traces with millions of
// events — routine in distributed soaks at N=100 — check in flat memory
// instead of retaining the whole configuration history. The verdict is
// identical; the returned Conformance.Run is nil.
func LiveConformStream(res *LiveResult, p Protocol, problem Problem) (*LiveConformance, error) {
	return runtime.ConformStream(res, p, problem)
}

// NewDistCoordinator opens a distributed session: it binds the control
// plane on listenAddr and admits exactly joins joiner processes, which then
// serve any number of Run calls until Close.
func NewDistCoordinator(ctx context.Context, listenAddr string, joins int, opts DistOptions) (*DistCoordinator, error) {
	return dist.NewCoordinator(ctx, listenAddr, joins, opts)
}

// DistJoin runs one joiner process against a coordinator for a whole
// session, returning when the coordinator says done or hangs up.
func DistJoin(ctx context.Context, ctrlAddr string, opts DistOptions) error {
	return dist.Join(ctx, ctrlAddr, opts)
}

// DistOwner assigns n processors to hosts in contiguous slices, the
// standard layout for distributed soaks.
func DistOwner(n, hosts int) []int { return dist.ContiguousOwner(n, hosts) }

// ParsePayloadKey reconstructs a protocol payload from its canonical
// wire-format key; it is the decode half of a distributed registry.
func ParsePayloadKey(key string) (Payload, error) { return protocols.ParsePayloadKey(key) }

// BuildChaosTrace serializes one failure of a chaos report into a
// replayable trace; maxSteps is the sweep's effective per-run budget.
func BuildChaosTrace(rep *ChaosReport, f *ChaosFailure, maxSteps int) *ChaosTrace {
	return chaos.BuildTrace(rep, f, maxSteps)
}

// DecodeChaosTrace parses a serialized chaos trace.
func DecodeChaosTrace(data []byte) (*ChaosTrace, error) {
	return chaos.DecodeTrace(data)
}

// ReplayChaosTrace re-executes a trace against the protocol and re-asserts
// the recorded violation.
func ReplayChaosTrace(t *ChaosTrace, p Protocol, problem Problem) (*ChaosReplayResult, error) {
	return chaos.Replay(t, p, problem)
}

// NewDriver starts a step-by-step adversarial execution.
func NewDriver(p Protocol, inputs []Bit) (*Driver, error) {
	return checker.NewDriver(p, inputs)
}

// Problems and rules.

// Unanimity returns the unanimity decision rule (transaction commitment).
func Unanimity() DecisionRule { return taxonomy.UnanimityRule{} }

// BroadcastRule returns the Byzantine Generals decision rule with the given
// general; weak variants permit a default decision when the general fails.
func BroadcastRule(general ProcID, weak bool, dflt Decision) DecisionRule {
	return taxonomy.BroadcastRule{General: general, Weak: weak, Default: dflt}
}

// ThresholdRule returns the threshold-k decision rule.
func ThresholdRule(k int) DecisionRule { return taxonomy.ThresholdRule{K: k} }

// NewProblem assembles a consensus problem.
func NewProblem(rule DecisionRule, t Termination, c Consistency) Problem {
	return taxonomy.Problem{Rule: rule, Termination: t, Consistency: c}
}

// UnanimityProblem returns the Section 4 problem T-C under unanimity.
func UnanimityProblem(t Termination, c Consistency) Problem {
	return NewProblem(Unanimity(), t, c)
}

// SixProblems returns the six problems of the closing diagram.
func SixProblems() []Problem { return taxonomy.SixProblems() }

// ParseProblem parses the paper's "T-C" notation (e.g. "WT-TC", case
// insensitive) into a unanimity problem.
func ParseProblem(s string) (Problem, error) {
	parts := strings.SplitN(strings.ToUpper(s), "-", 2)
	if len(parts) != 2 {
		return Problem{}, &BadProblemError{Input: s, Reason: "want the form T-C, e.g. WT-TC"}
	}
	var t Termination
	switch parts[0] {
	case "WT":
		t = WT
	case "ST":
		t = ST
	case "HT":
		t = HT
	default:
		return Problem{}, &BadProblemError{Input: s, Reason: "termination must be WT, ST, or HT"}
	}
	var c Consistency
	switch parts[1] {
	case "IC":
		c = IC
	case "TC":
		c = TC
	default:
		return Problem{}, &BadProblemError{Input: s, Reason: "consistency must be IC or TC"}
	}
	return UnanimityProblem(t, c), nil
}

// ParseRule parses a decision-rule name: "unanimity", "threshold-K" (e.g.
// "threshold-1"), or "broadcast-P" (strong broadcast with general P). The
// standalone termination protocol, for example, satisfies threshold-1 —
// commit iff some processor started committable — but not unanimity, which
// is exactly Theorem 7's restriction to safe configurations.
func ParseRule(s string) (DecisionRule, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if name == "unanimity" {
		return Unanimity(), nil
	}
	if k, ok := strings.CutPrefix(name, "threshold-"); ok {
		v, err := strconv.Atoi(k)
		if err != nil || v < 1 {
			return nil, &BadProblemError{Input: s, Reason: "threshold-K needs K >= 1"}
		}
		return ThresholdRule(v), nil
	}
	if g, ok := strings.CutPrefix(name, "broadcast-"); ok {
		v, err := strconv.Atoi(g)
		if err != nil || v < 0 {
			return nil, &BadProblemError{Input: s, Reason: "broadcast-P needs a processor index"}
		}
		return BroadcastRule(ProcID(v), false, NoDecision), nil
	}
	return nil, &BadProblemError{Input: s, Reason: "want unanimity, threshold-K, or broadcast-P"}
}

// BadProblemError reports a malformed problem name.
type BadProblemError struct {
	Input  string
	Reason string
}

func (e *BadProblemError) Error() string {
	return "bad problem " + e.Input + ": " + e.Reason
}

// Lattice and experiments.

// BuildLattice derives the closing diagram's relation from the paper's base
// facts and logical closure.
func BuildLattice() *Lattice { return core.BuildLattice() }

// Witnesses runs the machine-checked evidence behind the lattice.
func Witnesses(opts WitnessOptions) []Evidence { return core.Witnesses(opts) }

// Experiments runs the reproduction experiments E1–E9.
func Experiments(opts ExperimentOptions) []ExperimentReport {
	return experiments.All(opts)
}

// Inputs helpers.

// MustInputs parses a vector like "1011"; it panics on malformed input and
// is intended for examples and tests.
func MustInputs(s string) []Bit {
	in, err := sim.InputsFromString(s)
	if err != nil {
		panic(err)
	}
	return in
}

// ParseInputs parses a vector like "1011".
func ParseInputs(s string) ([]Bit, error) { return sim.InputsFromString(s) }

// AllInputs enumerates every input vector of length n.
func AllInputs(n int) [][]Bit { return sim.AllInputs(n) }

// UnanimityOf computes the unanimity decision for an input vector.
func UnanimityOf(inputs []Bit) Decision { return sim.Unanimity(inputs) }

// ProtocolNames lists the names accepted by ProtocolByName.
func ProtocolNames() []string {
	return []string{
		"tree", "tree-st", "star", "chain", "chain-st", "perverse",
		"perverse-forgetful", "termination", "ackcommit", "haltingcommit",
		"broadcast", "fullexchange", "2pc", "threshold",
	}
}

// ProtocolByName resolves a protocol by CLI-friendly name and size. The
// perverse protocols are fixed at four processors; n is ignored for them.
func ProtocolByName(name string, n int) (Protocol, error) {
	switch name {
	case "tree":
		return Tree(n), nil
	case "tree-st":
		return TreeST(n), nil
	case "star":
		return Star(n), nil
	case "chain":
		return Chain(n), nil
	case "chain-st":
		return ChainST(n), nil
	case "perverse":
		return Perverse(), nil
	case "perverse-forgetful":
		return PerverseForgetful(), nil
	case "termination":
		return TerminationProtocol(n), nil
	case "ackcommit":
		return AckCommit(n), nil
	case "haltingcommit":
		return HaltingCommit(n), nil
	case "broadcast":
		return Broadcast(n), nil
	case "fullexchange":
		return FullExchange(n), nil
	case "2pc":
		return TwoPhaseCommit(n), nil
	case "threshold":
		return ThresholdCommit(n, (n+1)/2), nil
	default:
		return nil, &UnknownProtocolError{Name: name}
	}
}

// UnknownProtocolError reports an unrecognized protocol name.
type UnknownProtocolError struct{ Name string }

func (e *UnknownProtocolError) Error() string {
	return "unknown protocol " + e.Name + " (want one of " + strings.Join(ProtocolNames(), ", ") + ")"
}
