// Benchmarks: one per experiment row of EXPERIMENTS.md (E1–E9), so every
// figure and quantitative claim of the paper has a `go test -bench` target
// that regenerates it. Custom metrics report the paper-relevant quantities
// (messages per run, patterns per scheme, steps per processor) alongside
// wall-clock time.
package consensus_test

import (
	"fmt"
	"testing"

	consensus "repro"
)

func ones(n int) []consensus.Bit {
	v := make([]consensus.Bit, n)
	for i := range v {
		v[i] = consensus.One
	}
	return v
}

// BenchmarkFigure1Tree regenerates E1: a failure-free commit run of the
// seven-processor tree protocol and its communication pattern.
func BenchmarkFigure1Tree(b *testing.B) {
	proto := consensus.Tree(7)
	inputs := ones(7)
	var msgs int
	for i := 0; i < b.N; i++ {
		run, err := consensus.Run(proto, inputs, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pat := consensus.PatternOf(run)
		msgs = pat.Size()
	}
	b.ReportMetric(float64(msgs), "messages/run")
}

// BenchmarkFigure1TreeScheme regenerates E1's scheme enumeration: every
// failure-free delivery order of the tree protocol from all-ones inputs.
func BenchmarkFigure1TreeScheme(b *testing.B) {
	proto := consensus.Tree(7)
	inputs := ones(7)
	var patterns int
	for i := 0; i < b.N; i++ {
		set, err := consensus.EnumeratePatterns(proto, inputs, consensus.SchemeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		patterns = set.Len()
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// BenchmarkFigure2Star regenerates E2: a failure-free run of the halting
// star protocol, whose relays make it O(N²) messages.
func BenchmarkFigure2Star(b *testing.B) {
	for _, n := range []int{3, 5, 7, 9} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			proto := consensus.Star(n)
			inputs := ones(n)
			var msgs int
			for i := 0; i < b.N; i++ {
				run, err := consensus.Run(proto, inputs, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				msgs = run.MessagesSent()
			}
			b.ReportMetric(float64(msgs), "messages/run")
		})
	}
}

// BenchmarkFigure3Chain regenerates E3: the chain protocol's unique
// failure-free pattern.
func BenchmarkFigure3Chain(b *testing.B) {
	proto := consensus.Chain(4)
	var patterns int
	for i := 0; i < b.N; i++ {
		set, err := consensus.SchemeOf(proto, consensus.SchemeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		patterns = set.Len()
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// BenchmarkFigure4Perverse regenerates E4: the four failure-free patterns of
// the perverse protocol.
func BenchmarkFigure4Perverse(b *testing.B) {
	proto := consensus.Perverse()
	inputs := ones(4)
	var patterns int
	for i := 0; i < b.N; i++ {
		set, err := consensus.EnumeratePatterns(proto, inputs, consensus.SchemeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		patterns = set.Len()
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// BenchmarkLattice regenerates E5's derivation: the six-problem relation
// from the base facts.
func BenchmarkLattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := consensus.BuildLattice()
		if l.Relation(
			consensus.UnanimityProblem(consensus.HT, consensus.IC),
			consensus.UnanimityProblem(consensus.WT, consensus.TC),
		).String() != "incomparable" {
			b.Fatal("wrong relation")
		}
	}
}

// BenchmarkLatticeWitnesses regenerates E5's quick witnesses: the scenario
// replays and scheme facts behind the diagram.
func BenchmarkLatticeWitnesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evidence := consensus.Witnesses(consensus.WitnessOptions{})
		for _, ev := range evidence {
			if !ev.OK {
				b.Fatalf("witness failed: %s", ev.Name)
			}
		}
	}
}

// BenchmarkTerminationProtocol regenerates E6: the Appendix protocol's
// O(N²) per-processor step bound, swept over N.
func BenchmarkTerminationProtocol(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			proto := consensus.TerminationProtocol(n)
			inputs := make([]consensus.Bit, n)
			inputs[0] = consensus.One // one committable bias spreads
			maxSteps := 0
			for i := 0; i < b.N; i++ {
				run, err := consensus.Run(proto, inputs, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < n; p++ {
					if s := run.StepsOf(consensus.ProcID(p)); s > maxSteps {
						maxSteps = s
					}
				}
			}
			b.ReportMetric(float64(maxSteps), "max-steps/proc")
			b.ReportMetric(float64(2*n*(n-1)+n), "bound")
		})
	}
}

// BenchmarkSafeStates regenerates E7: the Theorem 2 analysis over the tree
// protocol's reachable states.
func BenchmarkSafeStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x, err := consensus.Explore(consensus.Tree(3), consensus.CheckOptions{MaxFailures: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep := x.Safety()
		if !rep.AllSafe() {
			b.Fatal("tree should be safe")
		}
	}
}

// BenchmarkExhaustiveCheck measures the model checker itself: ack-commit
// against WT-TC with one injected failure.
func BenchmarkExhaustiveCheck(b *testing.B) {
	problem := consensus.UnanimityProblem(consensus.WT, consensus.TC)
	var nodes int
	for i := 0; i < b.N; i++ {
		x, err := consensus.Check(consensus.AckCommit(3), problem, consensus.CheckOptions{MaxFailures: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !x.Conforms() {
			b.Fatal("ackcommit should conform")
		}
		nodes = x.NodeCount
	}
	b.ReportMetric(float64(nodes), "configs")
}

// BenchmarkMessageComplexity regenerates E8: failure-free message counts
// across the protocol library and sizes.
func BenchmarkMessageComplexity(b *testing.B) {
	protos := []struct {
		name string
		mk   func(int) consensus.Protocol
	}{
		{"chain", consensus.Chain},
		{"ackcommit", consensus.AckCommit},
		{"star", consensus.Star},
		{"haltingcommit", consensus.HaltingCommit},
		{"fullexchange", consensus.FullExchange},
	}
	for _, pc := range protos {
		for _, n := range []int{3, 6, 9} {
			pc, n := pc, n
			b.Run(fmt.Sprintf("%s/N=%d", pc.name, n), func(b *testing.B) {
				proto := pc.mk(n)
				inputs := ones(n)
				var msgs int
				for i := 0; i < b.N; i++ {
					run, err := consensus.Run(proto, inputs, int64(i))
					if err != nil {
						b.Fatal(err)
					}
					msgs = run.MessagesSent()
				}
				b.ReportMetric(float64(msgs), "messages/run")
			})
		}
	}
}

// BenchmarkTransforms regenerates E9: the cost of the Section 3
// transformations relative to the raw protocol.
func BenchmarkTransforms(b *testing.B) {
	inner := consensus.Chain(4)
	cases := []struct {
		name  string
		proto consensus.Protocol
	}{
		{"raw", inner},
		{"totalcomm", consensus.TotalComm(inner)},
		{"ebarfree", consensus.EliminateEBar(inner)},
	}
	inputs := ones(4)
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := consensus.Run(c.proto, inputs, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPatternExtraction measures pattern construction on a large run
// (the N=8 termination protocol sends hundreds of messages).
func BenchmarkPatternExtraction(b *testing.B) {
	run, err := consensus.Run(consensus.TerminationProtocol(8), ones(8), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		pat := consensus.PatternOf(run)
		size = pat.Size()
	}
	b.ReportMetric(float64(size), "messages")
}

// BenchmarkExploreEngines compares the visited-set engines on the tracked
// tree(N=3) exploration through the public API: DedupStrings is the old
// string-keyed engine, DedupFingerprint the incremental-fingerprint engine
// that replaced it on the default path, DedupVerified the collision-counting
// middle ground.
func BenchmarkExploreEngines(b *testing.B) {
	engines := []struct {
		name  string
		dedup consensus.Dedup
	}{
		{"strings", consensus.DedupStrings},
		{"verified", consensus.DedupVerified},
		{"fingerprint", consensus.DedupFingerprint},
	}
	for _, e := range engines {
		e := e
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x, err := consensus.Explore(consensus.Tree(3), consensus.CheckOptions{MaxFailures: 2, Dedup: e.dedup})
				if err != nil {
					b.Fatal(err)
				}
				if x.Collisions != 0 {
					b.Fatalf("%d fingerprint collisions", x.Collisions)
				}
			}
		})
	}
}

// BenchmarkSchemeEnumeration measures exhaustive failure-free enumeration
// across the witness protocols.
func BenchmarkSchemeEnumeration(b *testing.B) {
	cases := []struct {
		name  string
		proto consensus.Protocol
	}{
		{"tree3", consensus.Tree(3)},
		{"chain4", consensus.Chain(4)},
		{"perverse", consensus.Perverse()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := consensus.SchemeOf(c.proto, consensus.SchemeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
