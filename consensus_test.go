package consensus_test

import (
	"strings"
	"testing"

	consensus "repro"
)

func TestQuickstartFlow(t *testing.T) {
	proto := consensus.Tree(7)
	run, err := consensus.Run(proto, consensus.MustInputs("1111111"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 7; p++ {
		d, ok := run.DecisionOf(consensus.ProcID(p))
		if !ok || d != consensus.Commit {
			t.Fatalf("p%d: decision %v (ok=%v), want commit", p, d, ok)
		}
	}
	pat := consensus.PatternOf(run)
	if err := pat.Validate(); err != nil {
		t.Fatal(err)
	}
	if pat.Size() != run.MessagesSent() {
		t.Fatalf("pattern size %d != messages sent %d", pat.Size(), run.MessagesSent())
	}
	if !strings.Contains(pat.RenderASCII(), "level 1") {
		t.Error("ASCII rendering looks wrong")
	}
}

func TestFacadeProblemAndCheck(t *testing.T) {
	problem := consensus.UnanimityProblem(consensus.WT, consensus.TC)
	if problem.Name() != "WT-TC" {
		t.Fatalf("problem name = %s", problem.Name())
	}
	x, err := consensus.Check(consensus.AckCommit(3), problem, consensus.CheckOptions{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Conforms() {
		t.Fatalf("ackcommit(3) should conform to WT-TC: %v", x.Violations)
	}
}

func TestFacadeScheme(t *testing.T) {
	set, err := consensus.SchemeOf(consensus.Chain(3), consensus.SchemeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("chain(3) scheme size = %d, want 1", set.Len())
	}
}

func TestFacadeLattice(t *testing.T) {
	l := consensus.BuildLattice()
	a := consensus.UnanimityProblem(consensus.HT, consensus.IC)
	b := consensus.UnanimityProblem(consensus.WT, consensus.TC)
	if l.Relation(a, b).String() != "incomparable" {
		t.Fatalf("HT-IC vs WT-TC: %s", l.Relation(a, b))
	}
}

func TestFacadeTransforms(t *testing.T) {
	run, err := consensus.Run(consensus.TotalComm(consensus.Chain(3)), consensus.MustInputs("111"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := run.DecisionOf(0); !ok || d != consensus.Commit {
		t.Fatal("padded chain should still commit")
	}
	run2, err := consensus.Run(consensus.EliminateEBar(consensus.Chain(3)), consensus.MustInputs("101"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := run2.DecisionOf(0); !ok || d != consensus.Abort {
		t.Fatal("E̅-free chain should abort on a 0 input")
	}
}

func TestFacadeFailureInjection(t *testing.T) {
	run, err := consensus.RunWithOptions(consensus.HaltingCommit(4), consensus.MustInputs("1111"),
		consensus.RunnerOptions{Seed: 3, Failures: []consensus.FailureAt{{Proc: 0, AfterStep: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	agreed := consensus.NoDecision
	for p := 0; p < 4; p++ {
		if d, ok := run.DecisionOf(consensus.ProcID(p)); ok {
			if agreed == consensus.NoDecision {
				agreed = d
			} else if agreed != d {
				t.Fatal("total consistency violated under failure injection")
			}
		}
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range consensus.ProtocolNames() {
		proto, err := consensus.ProtocolByName(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if proto.N() < 2 {
			t.Errorf("%s: N = %d", name, proto.N())
		}
	}
	if _, err := consensus.ProtocolByName("nope", 3); err == nil {
		t.Error("unknown name should error")
	}
}

func TestParseProblem(t *testing.T) {
	cases := map[string]string{
		"WT-TC": "WT-TC",
		"st-ic": "ST-IC",
		"HT-tc": "HT-TC",
	}
	for in, want := range cases {
		p, err := consensus.ParseProblem(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("%s parsed to %s, want %s", in, p.Name(), want)
		}
	}
	for _, bad := range []string{"WT", "XX-TC", "WT-XX", ""} {
		if _, err := consensus.ParseProblem(bad); err == nil {
			t.Errorf("%q should not parse", bad)
		}
	}
}

func TestRunTraceAndSummary(t *testing.T) {
	run, err := consensus.Run(consensus.AckCommit(3), consensus.MustInputs("111"), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := run.Trace()
	if len(trace) != run.Steps()+1 {
		t.Fatalf("trace lines = %d, want %d", len(trace), run.Steps()+1)
	}
	if !strings.Contains(strings.Join(trace, "\n"), "decides commit") {
		t.Error("trace should announce decisions")
	}
	sum := run.Summary()
	for _, want := range []string{"ackcommit", "decided commit", "p2"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestThresholdFacade(t *testing.T) {
	run, err := consensus.Run(consensus.ThresholdCommit(5, 3), consensus.MustInputs("11100"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := run.DecisionOf(0); !ok || d != consensus.Commit {
		t.Fatalf("3 of 5 ones with K=3 should commit: %v %v", d, ok)
	}
	run2, err := consensus.Run(consensus.ThresholdCommit(5, 4), consensus.MustInputs("11100"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := run2.DecisionOf(0); !ok || d != consensus.Abort {
		t.Fatalf("3 of 5 ones with K=4 should abort: %v %v", d, ok)
	}
}
