// Reliable broadcast — the simplest guise of the consensus problem in the
// paper's introduction: a general (p0) broadcasts an order, every processor
// relays the first value it learns, and failure detection falls back to the
// termination protocol with the weak broadcast rule's default. Under
// fail-stop failures the nonfaulty processors always agree on the order.
package main

import (
	"fmt"
	"log"

	consensus "repro"
)

const troops = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	proto := consensus.Broadcast(troops)

	// The general orders an attack (input 1). Everyone learns it.
	attack := consensus.MustInputs("100000") // only p0's input matters
	attack[0] = consensus.One
	execution, err := consensus.Run(proto, attack, 3)
	if err != nil {
		return err
	}
	fmt.Println("=== general orders attack, no failures ===")
	for p := 0; p < troops; p++ {
		d, _ := execution.DecisionOf(consensus.ProcID(p))
		fmt.Printf("  %s decided %s\n", consensus.ProcID(p), verdict(d))
	}
	fmt.Printf("  %d messages (broadcast + relays)\n\n", execution.MessagesSent())

	// The general fails immediately after reaching a single lieutenant:
	// the relay discipline still spreads the order to everyone.
	fmt.Println("=== general fails after its first send ===")
	crashed, err := consensus.RunWithOptions(proto, attack,
		consensus.RunnerOptions{Seed: 5, Failures: []consensus.FailureAt{{Proc: 0, AfterStep: 1}}})
	if err != nil {
		return err
	}
	agreed := consensus.NoDecision
	for p := 1; p < troops; p++ {
		pid := consensus.ProcID(p)
		d, ok := crashed.DecisionOf(pid)
		if !ok {
			return fmt.Errorf("%s undecided", pid)
		}
		if agreed == consensus.NoDecision {
			agreed = d
		} else if agreed != d {
			return fmt.Errorf("interactive consistency violated")
		}
		fmt.Printf("  %s decided %s\n", pid, verdict(d))
	}

	// Exhaustive check at N=3 against the weak broadcast rule: decide the
	// general's value, with retreat (0) permitted once the general fails.
	fmt.Println("\n=== model checking broadcast(3) against WT-IC under the broadcast rule ===")
	problem := consensus.NewProblem(
		consensus.BroadcastRule(0, true, consensus.Abort),
		consensus.WT, consensus.IC)
	x, err := consensus.Check(consensus.Broadcast(3), problem, consensus.CheckOptions{MaxFailures: 2})
	if err != nil {
		return err
	}
	if !x.Conforms() {
		return fmt.Errorf("violation: %v", x.Violations[0])
	}
	fmt.Printf("  conforms over %d configurations (≤2 failures, all inputs)\n", x.NodeCount)
	return nil
}

func verdict(d consensus.Decision) string {
	if d == consensus.Commit {
		return "ATTACK"
	}
	return "retreat"
}
