// Taxonomy tour: walk the paper's three axes — decision rules, consistency
// constraints, termination conditions — and, for each of the six problems of
// Section 4, show a protocol from the library that solves it and one that
// does not, verified by the model checker.
package main

import (
	"fmt"
	"log"

	consensus "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== the three axes (Section 2) ===")
	fmt.Println()
	fmt.Println("decision rules: under what conditions may a value be decided?")
	inputs := consensus.MustInputs("110")
	for _, rule := range []consensus.DecisionRule{
		consensus.Unanimity(),
		consensus.BroadcastRule(0, false, consensus.Abort),
		consensus.ThresholdRule(2),
	} {
		fmt.Printf("  %-16s inputs 110: commit allowed=%v, abort allowed (no failure)=%v\n",
			rule.Name(),
			rule.Permits(consensus.Commit, inputs, false),
			rule.Permits(consensus.Abort, inputs, false))
	}

	fmt.Println()
	fmt.Println("consistency: IC constrains co-nonfaulty processors; TC binds even the")
	fmt.Println("decisions of processors that subsequently failed (dispensed money stays")
	fmt.Println("dispensed). termination: WT decides, ST also forgets, HT also halts.")
	fmt.Println()

	// For each of the six problems: a solver and a non-solver.
	type row struct {
		problem consensus.Problem
		solver  consensus.Protocol
		failer  consensus.Protocol
		maxFail int
	}
	rows := []row{
		{consensus.UnanimityProblem(consensus.WT, consensus.IC), consensus.Chain(3), consensus.ChainST(3), 2},
		{consensus.UnanimityProblem(consensus.WT, consensus.TC), consensus.AckCommit(3), consensus.TwoPhaseCommit(3), 2},
		{consensus.UnanimityProblem(consensus.ST, consensus.IC), consensus.TreeST(3), consensus.ChainST(3), 2},
		{consensus.UnanimityProblem(consensus.ST, consensus.TC), consensus.TreeST(3), consensus.Star(3), 2},
		{consensus.UnanimityProblem(consensus.HT, consensus.IC), consensus.Star(3), consensus.Chain(3), 2},
		{consensus.UnanimityProblem(consensus.HT, consensus.TC), consensus.HaltingCommit(3), consensus.Star(3), 2},
	}
	fmt.Println("=== the six problems (Section 4), each with a solver and a non-solver ===")
	for _, r := range rows {
		solves, err := verdict(r.solver, r.problem, r.maxFail)
		if err != nil {
			return err
		}
		fails, err := verdict(r.failer, r.problem, r.maxFail)
		if err != nil {
			return err
		}
		if !solves || fails {
			return fmt.Errorf("%s: expectation violated (solver=%v failer-conforms=%v)",
				r.problem.Name(), solves, fails)
		}
		fmt.Printf("  %-6s solved by %-18s not by %s\n", r.problem.Name(), r.solver.Name(), r.failer.Name())
	}

	fmt.Println()
	fmt.Println("every claim above was verified exhaustively (all inputs, all delivery")
	fmt.Println("orders, ≤2 failures at N=3); see cmd/cccheck to reproduce any row.")
	return nil
}

func verdict(p consensus.Protocol, problem consensus.Problem, maxFail int) (bool, error) {
	x, err := consensus.Check(p, problem, consensus.CheckOptions{
		MaxFailures:          maxFail,
		StopAtFirstViolation: true,
	})
	if err != nil {
		return false, err
	}
	return x.Conforms(), nil
}
