// Lattice: regenerate the paper's closing diagram — the relation among the
// six consensus problems {WT, ST, HT} × {IC, TC} under unanimity — together
// with the quick machine-checked witnesses (scenario replays and scheme
// facts) behind every strict edge and incomparability.
package main

import (
	"fmt"
	"log"

	consensus "repro"
)

func main() {
	l := consensus.BuildLattice()
	l.Evidence = consensus.Witnesses(consensus.WitnessOptions{})
	fmt.Print(l.Render())
	for _, ev := range l.Evidence {
		if !ev.OK {
			log.Fatalf("witness failed: %s", ev.Name)
		}
	}

	// Interrogate the relation programmatically.
	fmt.Println("\nqueries:")
	pairs := [][2]consensus.Problem{
		{consensus.UnanimityProblem(consensus.WT, consensus.IC), consensus.UnanimityProblem(consensus.HT, consensus.TC)},
		{consensus.UnanimityProblem(consensus.HT, consensus.IC), consensus.UnanimityProblem(consensus.WT, consensus.TC)},
		{consensus.UnanimityProblem(consensus.ST, consensus.IC), consensus.UnanimityProblem(consensus.WT, consensus.TC)},
	}
	for _, pair := range pairs {
		fmt.Printf("  %s vs %s: %s\n", pair[0].Name(), pair[1].Name(), l.Relation(pair[0], pair[1]))
	}
}
