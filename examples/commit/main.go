// Transaction commitment: the paper's motivating application. Five
// resource managers vote on committing a distributed transaction; the
// protocol must reach the unanimity decision under total consistency —
// a decided processor may have dispensed money, so even the decisions of
// since-failed processors bind the survivors.
//
// The example contrasts three protocols from the library:
//
//   - TwoPhaseCommit: classic 2PC — cheap, but only interactively
//     consistent: a coordinator that commits and fails can strand the
//     survivors with an abort (the blocking hazard);
//   - AckCommit: the safe two-phase discipline (no commit before everyone
//     acknowledges the committable bias) — weakly terminating WT-TC;
//   - HaltingCommit: the same discipline plus decision broadcasts, letting
//     every processor halt (HT-TC).
package main

import (
	"fmt"
	"log"

	consensus "repro"
)

const managers = 5

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	votes := consensus.MustInputs("11111") // all managers vote yes

	fmt.Println("=== distributed transaction commit, 5 resource managers ===")

	// Happy path: everyone commits, with every protocol.
	for _, proto := range []consensus.Protocol{
		consensus.TwoPhaseCommit(managers),
		consensus.AckCommit(managers),
		consensus.HaltingCommit(managers),
	} {
		execution, err := consensus.Run(proto, votes, 1)
		if err != nil {
			return err
		}
		d, _ := execution.DecisionOf(0)
		fmt.Printf("  %-18s all yes → %s (%d messages)\n", proto.Name(), d, execution.MessagesSent())
	}

	// One no-vote aborts the transaction.
	oneNo := consensus.MustInputs("11011")
	execution, err := consensus.Run(consensus.AckCommit(managers), oneNo, 1)
	if err != nil {
		return err
	}
	d, _ := execution.DecisionOf(0)
	fmt.Printf("  %-18s one no   → %s\n\n", consensus.AckCommit(managers).Name(), d)

	// The hazard: with classic 2PC, the coordinator can commit and fail
	// before telling anyone. The survivors, seeing only failures, abort —
	// total consistency is violated (the coordinator may already have
	// dispensed money). The model checker finds this automatically.
	fmt.Println("=== why interactive consistency is not enough ===")
	x, err := consensus.Check(consensus.TwoPhaseCommit(3), consensus.UnanimityProblem(consensus.WT, consensus.TC),
		consensus.CheckOptions{MaxFailures: 2, StopAtFirstViolation: true, TrackTraces: true})
	if err != nil {
		return err
	}
	if x.Conforms() {
		return fmt.Errorf("2pc unexpectedly satisfies WT-TC")
	}
	fmt.Printf("  2pc(3) vs WT-TC: %s\n", x.Violations[0])
	fmt.Println("  trace to the violation:")
	for _, line := range x.FirstTrace {
		fmt.Println("    " + line)
	}

	// The safe protocol survives the same adversary: exhaustively, no
	// run of AckCommit violates total consistency.
	fmt.Println("\n=== the safe two-phase discipline ===")
	x2, err := consensus.Check(consensus.AckCommit(3), consensus.UnanimityProblem(consensus.WT, consensus.TC),
		consensus.CheckOptions{MaxFailures: 2})
	if err != nil {
		return err
	}
	if !x2.Conforms() {
		return fmt.Errorf("ackcommit violation: %v", x2.Violations[0])
	}
	fmt.Printf("  ackcommit(3) vs WT-TC: conforms over %d configurations (≤2 failures)\n", x2.NodeCount)

	// Theorem 2 in action: every accessible state of the safe protocol is
	// safe; classic 2PC has unsafe states (a commit concurrent with an
	// uncertain participant whose state does not imply all-ones).
	repSafe := x2.Safety()
	fmt.Printf("  ackcommit(3): %d states, %d unsafe\n", repSafe.TotalStates, len(repSafe.Unsafe))
	x2pc, err := consensus.Explore(consensus.TwoPhaseCommit(3), consensus.CheckOptions{MaxFailures: 1})
	if err != nil {
		return err
	}
	rep2pc := x2pc.Safety()
	fmt.Printf("  2pc(3):       %d states, %d unsafe (Theorem 2 explains the blocking hazard)\n",
		rep2pc.TotalStates, len(rep2pc.Unsafe))

	// Crash the coordinator mid-commit with the halting protocol: the
	// survivors still agree, and everyone halts.
	fmt.Println("\n=== coordinator crash with HaltingCommit ===")
	crashed, err := consensus.RunWithOptions(consensus.HaltingCommit(managers), votes,
		consensus.RunnerOptions{Seed: 9, Failures: []consensus.FailureAt{{Proc: 0, AfterStep: 12}}})
	if err != nil {
		return err
	}
	for p := 0; p < managers; p++ {
		pid := consensus.ProcID(p)
		status := "undecided"
		if d, ok := crashed.DecisionOf(pid); ok {
			status = d.String()
		}
		if !crashed.Nonfaulty(pid) {
			status += " (failed)"
		}
		fmt.Printf("  %s: %s\n", pid, status)
	}
	return nil
}
