// Quickstart: run the paper's Figure 1 tree protocol on seven processors,
// print the decisions and the communication pattern, and model-check a
// small instance against WT-TC.
package main

import (
	"fmt"
	"log"

	consensus "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A failure-free execution on all-ones inputs: everyone commits.
	proto := consensus.Tree(7)
	execution, err := consensus.Run(proto, consensus.MustInputs("1111111"), 42)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s, inputs 1111111 ===\n", proto.Name())
	for p := 0; p < proto.N(); p++ {
		d, _ := execution.DecisionOf(consensus.ProcID(p))
		fmt.Printf("  %s decided %s\n", consensus.ProcID(p), d)
	}
	fmt.Printf("  %d messages in %d events\n\n", execution.MessagesSent(), execution.Steps())

	// 2. The communication pattern of the execution: the two-phase tree
	// scheme of Figure 1 (values up, bias down, acks up, commit down).
	pat := consensus.PatternOf(execution)
	fmt.Println("communication pattern (levels are causal depth):")
	fmt.Println(pat.RenderASCII())

	// 3. A failure mid-protocol: the root fails after a few steps and the
	// survivors finish via the Appendix termination protocol, keeping
	// total consistency.
	withFailure, err := consensus.RunWithOptions(proto, consensus.MustInputs("1111111"),
		consensus.RunnerOptions{Seed: 7, Failures: []consensus.FailureAt{{Proc: 0, AfterStep: 10}}})
	if err != nil {
		return err
	}
	fmt.Println("=== same inputs, root fails after step 10 ===")
	for p := 0; p < proto.N(); p++ {
		pid := consensus.ProcID(p)
		status := "undecided"
		if d, ok := withFailure.DecisionOf(pid); ok {
			status = "decided " + d.String()
		}
		if !withFailure.Nonfaulty(pid) {
			status += " (failed)"
		}
		fmt.Printf("  %s %s\n", pid, status)
	}

	// 4. Exhaustive verification at N=3: every input vector, every
	// delivery order, up to two failures.
	fmt.Println("\n=== model checking tree(3) against WT-TC ===")
	x, err := consensus.Check(consensus.Tree(3), consensus.UnanimityProblem(consensus.WT, consensus.TC),
		consensus.CheckOptions{MaxFailures: 2})
	if err != nil {
		return err
	}
	if !x.Conforms() {
		return fmt.Errorf("unexpected violation: %v", x.Violations[0])
	}
	fmt.Printf("  conforms over %d reachable configurations\n", x.NodeCount)
	return nil
}
