package consensus_test

import (
	"fmt"

	consensus "repro"
)

// Example runs the paper's Figure 1 tree protocol and reports the decision.
func Example() {
	run, err := consensus.Run(consensus.Tree(7), consensus.MustInputs("1111111"), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, _ := run.DecisionOf(0)
	fmt.Printf("decision: %s, messages: %d\n", d, run.MessagesSent())
	// Output:
	// decision: commit, messages: 24
}

// ExampleChain shows the Figure 3 chain protocol's single failure-free
// communication pattern.
func ExampleChain() {
	set, err := consensus.SchemeOf(consensus.Chain(4), consensus.SchemeOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("patterns: %d\n", set.Len())
	p := set.Patterns()[0]
	fmt.Printf("messages: %d, depth: %d\n", p.Size(), p.Depth())
	// Output:
	// patterns: 1
	// messages: 6, depth: 4
}

// ExamplePerverse enumerates Figure 4's four failure-free patterns.
func ExamplePerverse() {
	set, err := consensus.EnumeratePatterns(consensus.Perverse(), consensus.MustInputs("1111"),
		consensus.SchemeOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("failure-free patterns: %d\n", set.Len())
	// Output:
	// failure-free patterns: 4
}

// ExampleCheck model-checks the star protocol against total consistency and
// finds the Theorem 8 counterexample.
func ExampleCheck() {
	x, err := consensus.Check(consensus.Star(3),
		consensus.UnanimityProblem(consensus.WT, consensus.TC),
		consensus.CheckOptions{MaxFailures: 2, StopAtFirstViolation: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("conforms:", x.Conforms())
	fmt.Println("violation kind:", x.Violations[0].Kind)
	// Output:
	// conforms: false
	// violation kind: TC
}

// ExampleBuildLattice derives the paper's closing diagram and queries it.
func ExampleBuildLattice() {
	l := consensus.BuildLattice()
	a := consensus.UnanimityProblem(consensus.HT, consensus.IC)
	b := consensus.UnanimityProblem(consensus.WT, consensus.TC)
	fmt.Println("HT-IC vs WT-TC:", l.Relation(a, b))
	c := consensus.UnanimityProblem(consensus.WT, consensus.IC)
	fmt.Println("WT-IC vs WT-TC:", l.Relation(c, b))
	// Output:
	// HT-IC vs WT-TC: incomparable
	// WT-IC vs WT-TC: ≺
}

// ExampleCompareSchemes demonstrates Corollary 11's scheme fact: the amnesic
// tree variant has exactly the tree's communication patterns.
func ExampleCompareSchemes() {
	cmp, err := consensus.CompareSchemes(consensus.Tree(3), consensus.TreeST(3),
		consensus.SchemeOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tree vs tree-st schemes:", cmp)
	// Output:
	// tree vs tree-st schemes: equal
}
