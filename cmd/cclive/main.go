// Command cclive soaks a protocol in the live runtime: seeded batches of
// genuinely concurrent executions — one goroutine per processor over a
// lossy, duplicating, delaying transport with heartbeat failure detection
// and injected fail-stop crashes — each checked for conformance by
// replaying its recorded schedule through the deterministic simulator and
// validating it against a consensus problem.
//
// Run plans (per-run seeds, inputs, crash schedules) derive from -seed
// exactly as ccchaos derives its sweeps, so a live soak and a chaos sweep
// with the same seed inject the same failures. Live goroutine interleaving
// is real nondeterminism — runs are not bit-reproducible — but every fault
// decision in the transport is seed-deterministic per delivery attempt,
// and every recorded trace must replay as a legal run of the model with
// the same decisions.
//
// With -serve/-join the soak spans OS processes: a coordinator owns host
// 0's slice of processors and -joins joiner processes own the rest, meshed
// over TCP on localhost with seeded link faults (interval partitions,
// stalls, connection resets) layered above the sockets. Every link-fault
// decision is a pure function of (link seed, link, interval), so two soaks
// with the same -seed inject byte-identical link schedules; -print-faults
// renders the whole fault schedule — crash steps, omission suppressions
// (-omit-rate, -omit-max-seq), and link faults — without running anything,
// so the claim is diffable.
//
// Usage:
//
//	cclive -proto tree -n 3 -problem WT-TC -runs 200 -seed 1984 -drop 0.1
//	cclive -proto star -n 4 -problem HT-IC -runs 100 -dup 0.2 -delay 500us
//	cclive -proto tree -n 3 -problem WT-TC -no-dedup -dup 0.5   # must fail
//	cclive -serve -spawn 2 -proto ackcommit -n 100 -runs 5 \
//	    -sever-rate 0.2 -stall-rate 0.1 -conform-sample 0.4    # distributed
//	cclive -join 127.0.0.1:9000                                # one joiner
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 divergences or violations
// found, 3 soak interrupted (SIGINT or -timeout) before completing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	consensus "repro"
)

func main() {
	os.Exit(run())
}

// runOutcome is one live run's verdict.
type runOutcome struct {
	done      bool
	quiescent bool
	diverged  bool
	panicked  bool
	aborted   bool
	conformed bool // conformance replay actually ran (sampling may skip it)
	err       error
	divs      []consensus.LiveDivergence
	result    *consensus.LiveResult
	plan      consensus.ChaosRunPlan
	crashes   int
	detectMax time.Duration
	decideMax time.Duration
	recovery  time.Duration
	falseSusp int
	linkSusp  int
	events    int
	transport consensus.LiveTransportStats
}

// soakFlags carries every parsed flag the soak modes share.
type soakFlags struct {
	protoName, problem string
	seed               int64
	runs               int
	drop, dup          float64
	delay              time.Duration
	heartbeat, detect  time.Duration
	deadline, timeout  time.Duration
	noDedup, verbose   bool
	traceDir           string
	jsonPath           string
	sample             float64
	crashHorizon       int
	omitRate           float64
	omitMaxSeq         int

	// Distributed mode.
	serve       bool
	joinAddr    string
	joins       int
	listen      string
	spawn       int
	partInt     time.Duration
	severRate   float64
	stallRate   float64
	resetRate   float64
	partIvals   int
	isolate     []int
	printFaults bool
}

func run() int {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 3, "number of processors")
		problem   = flag.String("problem", "WT-TC", "problem: {WT,ST,HT}-{IC,TC}")
		ruleName  = flag.String("rule", "unanimity", "decision rule: unanimity, threshold-K, or broadcast-P (termination standalone satisfies threshold-1, not unanimity)")
		runs      = flag.Int("runs", 200, "number of live executions")
		seed      = flag.Int64("seed", 1, "soak seed; derives per-run seeds, inputs, crash schedules, and link-fault schedules")
		parallel  = flag.Int("parallel", 0, "concurrent live runs, in-memory mode only (0 = GOMAXPROCS)")
		maxFail   = flag.Int("max-failures", -1, "maximum injected crashes per run (-1 = N-1, 0 = crash-free)")
		drop      = flag.Float64("drop", 0.1, "per-attempt probability a delivery is lost in transit")
		dup       = flag.Float64("dup", 0.1, "per-delivery probability the ack is lost (duplicate retransmit)")
		delay     = flag.Duration("delay", 300*time.Microsecond, "maximum per-attempt transit latency")
		heartbeat = flag.Duration("heartbeat", time.Millisecond, "heartbeat interval")
		detect    = flag.Duration("detect", 12*time.Millisecond, "failure-detection timeout (silence before a crash is declared)")
		deadline  = flag.Duration("deadline", 20*time.Second, "per-run deadline; a run that has not quiesced by then fails")
		timeout   = flag.Duration("timeout", 0, "whole-soak wall-clock budget (0 = none); on expiry partial results are reported")
		inputsArg = flag.String("inputs", "", "fixed input vector like 101 (empty = random per run)")
		traceDir  = flag.String("trace-dir", "", "directory for divergence traces (empty = don't write)")
		noDedup   = flag.Bool("no-dedup", false, "disable receiver-side dedup (teeth check: conformance must then fail under -dup)")
		jsonPath  = flag.String("json", "", "write a machine-readable soak summary to this file (\"-\" = stdout)")
		sample    = flag.Float64("conform-sample", 1, "fraction of runs whose traces are conformance-replayed (seeded per run; 1 = all)")
		crashHor  = flag.Int("crash-horizon", 0, "fold planned crash steps into [0,H) so injections land inside short large-N runs (0 = as planned)")
		omitRate  = flag.Float64("omit-rate", 0, "per-message probability the receiver omission-suppresses a delivery (permanent loss, recorded as an Omit event the conformance replay validates)")
		omitSeq   = flag.Int("omit-max-seq", 0, "only omit messages with sequence number at most this, keeping each run's omission schedule finite and printable (0 = no bound)")
		verbose   = flag.Bool("v", false, "print every failing run, not just the first five")

		serve       = flag.Bool("serve", false, "coordinator mode: run the soak across -joins joiner processes over TCP")
		joinAddr    = flag.String("join", "", "joiner mode: serve runs for the coordinator at this control address")
		joins       = flag.Int("joins", 2, "number of joiner processes (serve mode; hosts = joins+1)")
		listen      = flag.String("listen", "127.0.0.1:0", "control-plane listen address (serve mode)")
		spawn       = flag.Int("spawn", 0, "fork this many joiner processes automatically (serve mode; implies -joins)")
		partInt     = flag.Duration("partition-interval", 250*time.Millisecond, "wall length of one link-fault interval")
		severRate   = flag.Float64("sever-rate", 0, "per-(link,interval) probability the link is severed (one side of a partition)")
		stallRate   = flag.Float64("stall-rate", 0, "per-(link,interval) probability the link stalls for half the interval")
		resetRate   = flag.Float64("reset-rate", 0, "per-(link,interval) probability the connection is reset")
		partIvals   = flag.Int("partition-intervals", 8, "link faults only fire in the first this-many intervals, so every schedule heals")
		isolateArg  = flag.String("isolate", "", "comma-separated host ids permanently partitioned from the rest (teeth check: the soak must fail)")
		printFaults = flag.Bool("print-faults", false, "print every planned run's fault schedule — crashes, omissions, link faults — and exit (pure; nothing runs)")
	)
	flag.Parse()

	isolate, err := parseIsolate(*isolateArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	f := soakFlags{
		protoName: *protoName, problem: *problem, seed: *seed, runs: *runs,
		drop: *drop, dup: *dup, delay: *delay,
		heartbeat: *heartbeat, detect: *detect, deadline: *deadline, timeout: *timeout,
		noDedup: *noDedup, verbose: *verbose, traceDir: *traceDir,
		jsonPath: *jsonPath, sample: *sample, crashHorizon: *crashHor,
		omitRate: *omitRate, omitMaxSeq: *omitSeq,
		serve: *serve, joinAddr: *joinAddr, joins: *joins, listen: *listen, spawn: *spawn,
		partInt: *partInt, severRate: *severRate, stallRate: *stallRate, resetRate: *resetRate,
		partIvals: *partIvals, isolate: isolate, printFaults: *printFaults,
	}
	if f.spawn > 0 {
		f.joins = f.spawn
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	// Joiner mode needs no protocol flags: everything arrives in the spec.
	if f.joinAddr != "" {
		if err := consensus.DistJoin(ctx, f.joinAddr, distOptions()); err != nil {
			fmt.Fprintln(os.Stderr, "cclive: join:", err)
			return 1
		}
		return 0
	}

	proto, err := consensus.ProtocolByName(f.protoName, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	prob, err := consensus.ParseProblem(f.problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	rule, err := consensus.ParseRule(*ruleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	prob.Rule = rule
	var fixed [][]consensus.Bit
	if *inputsArg != "" {
		in, err := consensus.ParseInputs(*inputsArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cclive:", err)
			return 1
		}
		fixed = [][]consensus.Bit{in}
	}
	nProcs := proto.N()
	mf := *maxFail
	if mf < 0 {
		mf = nProcs - 1
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	plans := consensus.ChaosPlanRuns(f.seed, f.runs, nProcs, mf, fixed)
	if f.crashHorizon > 0 {
		// Fold each planned crash step into [0, H). The chaos planner draws
		// steps from a 4n²+8 horizon, which at large N lands nearly every
		// injection beyond quiescence; folding keeps the schedule a pure
		// function of the seed while making large-N soaks actually crash.
		for i := range plans {
			for j := range plans[i].Failures {
				plans[i].Failures[j].AfterStep %= f.crashHorizon
			}
		}
	}

	if f.printFaults {
		return dumpFaultSchedules(f, nProcs, plans)
	}
	if f.serve {
		return runServe(ctx, f, proto, prob, plans)
	}
	return runInMemory(ctx, f, proto, prob, plans, *parallel)
}

// runInMemory is the single-process soak: a worker pool of concurrent live
// runs over the in-memory transport.
func runInMemory(ctx context.Context, f soakFlags, proto consensus.Protocol, prob consensus.Problem, plans []consensus.ChaosRunPlan, parallel int) int {
	outcomes := make([]runOutcome, len(plans))
	par := parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(plans) {
		par = len(plans)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outcomes[i] = executeRun(ctx, proto, prob, f, plans[i], consensus.LiveConfig{
					Faults:        planFaults(f, plans[i]),
					Failures:      plans[i].Failures,
					Heartbeat:     f.heartbeat,
					DetectTimeout: f.detect,
					Deadline:      f.deadline,
				})
			}
		}()
	}
feed:
	for i := range plans {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	return report(outcomes, proto.Name(), f, prob, "memory", 1)
}

// distOptions is the registry both sides of the control plane share.
func distOptions() consensus.DistOptions {
	return consensus.DistOptions{
		Resolve: consensus.ProtocolByName,
		Decode:  consensus.ParsePayloadKey,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cclive: "+format+"\n", args...)
		},
	}
}

// planSpec derives one distributed run's spec from its chaos plan. The
// link-fault seed is the plan's pure LinkSeed, so two soaks with the same
// -seed schedule byte-identical link faults.
func planSpec(f soakFlags, nProcs, hosts int, plan consensus.ChaosRunPlan) consensus.DistSpec {
	return consensus.DistSpec{
		Proto:             f.protoName,
		N:                 nProcs,
		Inputs:            plan.Inputs,
		Owner:             consensus.DistOwner(nProcs, hosts),
		Faults:            planFaults(f, plan),
		Links:             planLinks(f, plan),
		PartitionInterval: f.partInt,
		Heartbeat:         f.heartbeat,
		DetectTimeout:     f.detect,
		Deadline:          f.deadline,
		Failures:          plan.Failures,
	}
}

// planFaults derives one run's transport fault plan from its chaos plan:
// the per-attempt drop/dup/delay hash and the per-message omission verdict
// all key off the plan's run seed.
func planFaults(f soakFlags, plan consensus.ChaosRunPlan) consensus.LiveFaultPlan {
	return consensus.LiveFaultPlan{
		Seed:         plan.Seed,
		DropRate:     f.drop,
		DupRate:      f.dup,
		MaxDelay:     f.delay,
		DisableDedup: f.noDedup,
		OmitRate:     f.omitRate,
		OmitMaxSeq:   f.omitMaxSeq,
	}
}

func planLinks(f soakFlags, plan consensus.ChaosRunPlan) consensus.LinkFaultPlan {
	return consensus.LinkFaultPlan{
		Seed:            plan.LinkSeed,
		SeverRate:       f.severRate,
		StallRate:       f.stallRate,
		ResetRate:       f.resetRate,
		ActiveIntervals: f.partIvals,
		Isolate:         f.isolate,
	}
}

// dumpFaultSchedules renders every planned run's full fault schedule — the
// crash injections (after -crash-horizon folding), the per-link omission
// schedule, and the link-fault intervals — in one canonical dump, a pure
// function of the soak seed; nothing runs. Diffing two invocations with the
// same -seed proves schedule identity.
func dumpFaultSchedules(f soakFlags, nProcs int, plans []consensus.ChaosRunPlan) int {
	hosts := f.joins + 1
	hostIDs := make([]int, hosts)
	for h := range hostIDs {
		hostIDs[h] = h
	}
	for i, plan := range plans {
		fmt.Printf("run %d seed=%d linkseed=%d\n", i, plan.Seed, plan.LinkSeed)
		for _, inj := range plan.Failures {
			fmt.Printf("crash p%d after step %d\n", inj.Proc, inj.AfterStep)
		}
		fmt.Print(planFaults(f, plan).RenderOmissions(nProcs))
		fmt.Print(planLinks(f, plan).Render(hostIDs, f.partIvals))
	}
	return 0
}

// runServe is the coordinator: admit the joiners once, then push every
// planned run through the standing session sequentially.
func runServe(ctx context.Context, f soakFlags, proto consensus.Protocol, prob consensus.Problem, plans []consensus.ChaosRunPlan) int {
	nProcs := proto.N()
	hosts := f.joins + 1
	opts := distOptions()

	// -spawn forks the joiners as soon as the control address is bound, so
	// one command runs the whole multi-process soak.
	var children []*exec.Cmd
	if f.spawn > 0 {
		opts.OnListen = func(addr string) {
			for i := 0; i < f.spawn; i++ {
				child := exec.Command(os.Args[0], "-join", addr)
				child.Stdout = os.Stderr
				child.Stderr = os.Stderr
				if err := child.Start(); err != nil {
					fmt.Fprintln(os.Stderr, "cclive: spawn:", err)
					return
				}
				children = append(children, child)
			}
		}
	}
	coord, err := consensus.NewDistCoordinator(ctx, f.listen, f.joins, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive: serve:", err)
		return 1
	}

	outcomes := make([]runOutcome, len(plans))
	code := 0
	for i, plan := range plans {
		outcomes[i].plan = plan
		if ctx.Err() != nil {
			outcomes[i].aborted = true
			continue
		}
		rep, err := coord.Run(ctx, planSpec(f, nProcs, hosts, plan))
		if err != nil {
			if ctx.Err() != nil {
				outcomes[i].aborted = true
				continue
			}
			// A control-plane failure kills the session; no later run
			// can succeed, so fail fast.
			fmt.Fprintf(os.Stderr, "cclive: run %d: %v\n", i, err)
			code = 1
			for j := i; j < len(plans); j++ {
				outcomes[j].plan = plans[j]
				outcomes[j].aborted = true
			}
			break
		}
		outcomes[i] = judgeResult(rep.Result, proto, prob, f, plan)
	}
	_ = coord.Close()
	for _, child := range children {
		_ = child.Wait()
	}
	if rc := report(outcomes, proto.Name(), f, prob, "distributed", hosts); code == 0 {
		code = rc
	}
	return code
}

// executeRun performs one in-memory live run to a verdict, converting
// panics in protocol or runtime code into reported failures instead of a
// crashed soak.
func executeRun(ctx context.Context, proto consensus.Protocol, prob consensus.Problem, f soakFlags, plan consensus.ChaosRunPlan, cfg consensus.LiveConfig) (out runOutcome) {
	out.plan = plan
	defer func() {
		if r := recover(); r != nil {
			out.done = true
			out.panicked = true
			out.err = fmt.Errorf("panic: %v", r)
		}
	}()
	if ctx.Err() != nil {
		out.aborted = true
		return out
	}
	res, err := consensus.Live(ctx, proto, plan.Inputs, cfg)
	if err != nil {
		out.done = true
		out.err = err
		return out
	}
	if res.Err != nil && ctx.Err() != nil {
		out.aborted = true
		return out
	}
	return judgeResult(res, proto, prob, f, plan)
}

// judgeResult converts a finished run (from either transport) into an
// outcome: measurements, transport counters, and — for sampled runs — the
// conformance verdict.
func judgeResult(res *consensus.LiveResult, proto consensus.Protocol, prob consensus.Problem, f soakFlags, plan consensus.ChaosRunPlan) (out runOutcome) {
	out.plan = plan
	out.done = true
	out.result = res
	out.quiescent = res.Quiescent
	out.events = len(res.Schedule)
	out.crashes = len(res.Crashes)
	out.recovery = res.Recovery
	out.falseSusp = res.FalseSuspicions
	out.linkSusp = res.LinkSuspicions
	out.transport = res.Transport
	for _, c := range res.Crashes {
		if c.Detection > out.detectMax {
			out.detectMax = c.Detection
		}
	}
	for _, d := range res.Decided {
		if d > out.decideMax {
			out.decideMax = d
		}
	}
	if res.Err != nil {
		out.err = res.Err
	}
	if !shouldConform(plan.Seed, f.sample) {
		return out
	}
	out.conformed = true
	// The streaming replay keeps memory flat: distributed soaks at N=100
	// record crash-amplified traces of millions of events, and the
	// materializing replay would retain every intermediate configuration.
	conf, cerr := consensus.LiveConformStream(res, proto, prob)
	if cerr != nil {
		out.err = cerr
		return out
	}
	if !conf.OK() {
		out.diverged = true
		out.divs = conf.Divergences
	}
	return out
}

// shouldConform decides — purely from the run seed — whether this run's
// trace is conformance-replayed. At rate 1 every run is; at large N a
// sampled fraction keeps soak throughput while still replaying a seeded,
// reproducible subset.
func shouldConform(runSeed int64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	x := uint64(runSeed) ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < rate
}

func parseIsolate(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -isolate entry %q: %v", part, err)
		}
		out = append(out, id)
	}
	return out, nil
}

// jsonSummary is the machine-readable soak summary written by -json.
type jsonSummary struct {
	Proto     string `json:"proto"`
	Problem   string `json:"problem"`
	N         int    `json:"n"`
	Runs      int    `json:"runs"`
	Seed      int64  `json:"seed"`
	Mode      string `json:"mode"`
	Hosts     int    `json:"hosts"`
	Completed int    `json:"completed"`
	Aborted   int    `json:"aborted"`
	Quiesced  int    `json:"quiesced"`
	Failing   int    `json:"failing"`
	Conformed int    `json:"conformed"`

	Crashes         int   `json:"crashes"`
	FalseSuspicions int   `json:"falseSuspicions"`
	LinkSuspicions  int   `json:"linkSuspicions"`
	Events          int64 `json:"events"`

	DetectionNs *latencyQuantiles `json:"detectionNs,omitempty"`
	RecoveryNs  *latencyQuantiles `json:"recoveryNs,omitempty"`
	DecisionNs  *latencyQuantiles `json:"decisionNs,omitempty"`

	Transport consensus.LiveTransportStats `json:"transport"`
}

type latencyQuantiles struct {
	Count int   `json:"count"`
	Min   int64 `json:"min"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	Max   int64 `json:"max"`
}

func quantiles(ds []time.Duration) *latencyQuantiles {
	if len(ds) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) int64 {
		return int64(sorted[int(p*float64(len(sorted)-1))])
	}
	return &latencyQuantiles{
		Count: len(sorted),
		Min:   int64(sorted[0]),
		P50:   q(0.5),
		P90:   q(0.9),
		Max:   int64(sorted[len(sorted)-1]),
	}
}

// report prints the soak summary, writes divergence traces and the JSON
// summary, and chooses the exit code.
func report(outcomes []runOutcome, protoCanon string, f soakFlags, prob consensus.Problem, mode string, hosts int) int {
	var (
		completed, quiesced, failing, aborted, conformed int
		crashes, falseSusp, linkSusp                     int
		events                                           int64
		transport                                        consensus.LiveTransportStats
		detections, recoveries, decisions                []time.Duration
	)
	type failure struct {
		idx int
		out runOutcome
	}
	var failures []failure
	for i, out := range outcomes {
		if !out.done {
			aborted++
			continue
		}
		completed++
		if out.quiescent {
			quiesced++
		}
		if out.conformed {
			conformed++
		}
		crashes += out.crashes
		falseSusp += out.falseSusp
		linkSusp += out.linkSusp
		events += int64(out.events)
		transport = addTransport(transport, out.transport)
		if out.detectMax > 0 {
			detections = append(detections, out.detectMax)
		}
		if out.recovery > 0 {
			recoveries = append(recoveries, out.recovery)
		}
		if out.decideMax > 0 {
			decisions = append(decisions, out.decideMax)
		}
		if out.diverged || out.err != nil {
			failing++
			failures = append(failures, failure{i, out})
		}
	}

	where := ""
	if mode == "distributed" {
		where = fmt.Sprintf(" across %d hosts", hosts)
	}
	fmt.Printf("%s vs %s: %d live runs%s, seed %d (%d completed, %d aborted)\n",
		protoCanon, prob.Name(), f.runs, where, f.seed, completed, aborted)
	fmt.Printf("  quiesced %d, failing %d, conformance-replayed %d, crashes injected %d\n",
		quiesced, failing, conformed, crashes)
	fmt.Printf("  suspicions: %d false, %d link-loss\n", falseSusp, linkSusp)
	st := transport
	fmt.Printf("  transport: %d accepted, %d settled, %d dropped, %d duplicated, %d omitted\n",
		st.Accepted, st.Settled, st.Drops, st.Dups, st.Omissions)
	if mode == "distributed" {
		fmt.Printf("  mesh: %d frames sent (%d resent), %d dials (%d reconnects, %d resets), %d link-downs, %d severed intervals, %d frames held\n",
			st.FramesSent, st.FramesResent, st.Dials, st.Reconnects, st.Resets,
			st.LinkDowns, st.SeveredIntervals, st.HeldFrames)
	}
	// Formerly-silent loss paths: always printed, never dropped quietly.
	fmt.Printf("  silent-loss: %d encode failures, %d garbage frames\n",
		st.EncodeFailures, st.GarbageFrames)
	if len(detections) > 0 {
		fmt.Printf("  detection latency:  %s\n", distribution(detections))
	}
	if len(recoveries) > 0 {
		fmt.Printf("  recovery latency:   %s (crash → last survivor decision, %d runs)\n",
			distribution(recoveries), len(recoveries))
	}
	if len(decisions) > 0 {
		fmt.Printf("  decision latency:   %s (go → last decision)\n", distribution(decisions))
	}

	written := 0
	for i, fl := range failures {
		if f.verbose || i < 5 {
			what := "failed"
			if fl.out.diverged {
				what = fmt.Sprintf("DIVERGED: %s", fl.out.divs[0])
			} else if fl.out.err != nil {
				what = fl.out.err.Error()
			}
			fmt.Printf("  run %d (seed %d, inputs %s): %s\n", fl.idx, fl.out.plan.Seed, renderInputs(fl.out.plan.Inputs), what)
		} else if i == 5 {
			fmt.Printf("  … and %d more failing runs (use -v to list all)\n", len(failures)-5)
		}
		if f.traceDir != "" && fl.out.result != nil {
			path, err := writeDivergenceTrace(f.traceDir, protoCanon, f.protoName, prob, f.seed, fl.idx, fl.out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cclive:", err)
				return 1
			}
			written++
			if f.verbose || i < 5 {
				fmt.Printf("    trace: %s\n", path)
			}
		}
	}
	if written > 0 {
		fmt.Printf("  %d trace(s) written to %s\n", written, f.traceDir)
	}

	if f.jsonPath != "" {
		sum := jsonSummary{
			Proto: protoCanon, Problem: prob.Name(), N: len(outcomes[0].plan.Inputs),
			Runs: f.runs, Seed: f.seed, Mode: mode, Hosts: hosts,
			Completed: completed, Aborted: aborted, Quiesced: quiesced,
			Failing: failing, Conformed: conformed,
			Crashes: crashes, FalseSuspicions: falseSusp, LinkSuspicions: linkSusp,
			Events:      events,
			DetectionNs: quantiles(detections),
			RecoveryNs:  quantiles(recoveries),
			DecisionNs:  quantiles(decisions),
			Transport:   transport,
		}
		if err := writeJSON(f.jsonPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, "cclive:", err)
			return 1
		}
	}

	switch {
	case aborted > 0:
		fmt.Println("INTERRUPTED: partial results above")
		return 3
	case failing > 0:
		fmt.Printf("VIOLATES: %d failing run(s)\n", failing)
		return 2
	default:
		fmt.Println("OK: every live trace replays as a legal run of the model")
		return 0
	}
}

func writeJSON(path string, sum jsonSummary) error {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func addTransport(a, b consensus.LiveTransportStats) consensus.LiveTransportStats {
	return consensus.LiveTransportStats{
		Accepted:         a.Accepted + b.Accepted,
		Settled:          a.Settled + b.Settled,
		EncodeFailures:   a.EncodeFailures + b.EncodeFailures,
		GarbageFrames:    a.GarbageFrames + b.GarbageFrames,
		Drops:            a.Drops + b.Drops,
		Dups:             a.Dups + b.Dups,
		Omissions:        a.Omissions + b.Omissions,
		FramesSent:       a.FramesSent + b.FramesSent,
		FramesResent:     a.FramesResent + b.FramesResent,
		Dials:            a.Dials + b.Dials,
		Reconnects:       a.Reconnects + b.Reconnects,
		Resets:           a.Resets + b.Resets,
		LinkDowns:        a.LinkDowns + b.LinkDowns,
		SeveredIntervals: a.SeveredIntervals + b.SeveredIntervals,
		HeldFrames:       a.HeldFrames + b.HeldFrames,
	}
}

// writeDivergenceTrace serializes a failing run in the chaos trace format:
// the recorded live schedule, the injections, and the divergences as
// violations, so the artifact replays through the same tooling.
func writeDivergenceTrace(dir, protoCanon, protoArg string, prob consensus.Problem, sweepSeed int64, idx int, out runOutcome) (string, error) {
	res := out.result
	t := &consensus.ChaosTrace{
		Version:       1,
		Protocol:      protoCanon,
		ProtoArg:      protoArg,
		N:             len(res.Inputs),
		Problem:       prob.Name(),
		Inputs:        renderInputs(res.Inputs),
		SweepSeed:     sweepSeed,
		RunSeed:       out.plan.Seed,
		RunIndex:      idx,
		MaxSteps:      len(res.Schedule),
		OriginalSteps: len(res.Schedule),
	}
	for _, inj := range out.plan.Failures {
		t.Injections = append(t.Injections, consensus.ChaosTraceInjection{Proc: int(inj.Proc), AfterStep: inj.AfterStep})
	}
	for _, e := range res.Schedule {
		t.Schedule = append(t.Schedule, consensus.EncodeChaosEvent(e))
	}
	for _, d := range out.divs {
		t.Violations = append(t.Violations, consensus.ChaosTraceViolation{Kind: d.Kind, Detail: d.Detail})
	}
	if out.err != nil {
		t.Violations = append(t.Violations, consensus.ChaosTraceViolation{Kind: "run", Detail: out.err.Error()})
	}
	data, err := t.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("live-%s-%s-run%05d.json", protoArg, prob.Name(), idx)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// distribution renders min/p50/p90/max of a latency sample.
func distribution(ds []time.Duration) string {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return fmt.Sprintf("min %s  p50 %s  p90 %s  max %s",
		sorted[0].Round(time.Microsecond), q(0.5).Round(time.Microsecond),
		q(0.9).Round(time.Microsecond), sorted[len(sorted)-1].Round(time.Microsecond))
}

func renderInputs(inputs []consensus.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == consensus.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
