// Command cclive soaks a protocol in the live runtime: seeded batches of
// genuinely concurrent executions — one goroutine per processor over a
// lossy, duplicating, delaying transport with heartbeat failure detection
// and injected fail-stop crashes — each checked for conformance by
// replaying its recorded schedule through the deterministic simulator and
// validating it against a consensus problem.
//
// Run plans (per-run seeds, inputs, crash schedules) derive from -seed
// exactly as ccchaos derives its sweeps, so a live soak and a chaos sweep
// with the same seed inject the same failures. Live goroutine interleaving
// is real nondeterminism — runs are not bit-reproducible — but every fault
// decision in the transport is seed-deterministic per delivery attempt,
// and every recorded trace must replay as a legal run of the model with
// the same decisions.
//
// Usage:
//
//	cclive -proto tree -n 3 -problem WT-TC -runs 200 -seed 1984 -drop 0.1
//	cclive -proto star -n 4 -problem HT-IC -runs 100 -dup 0.2 -delay 500us
//	cclive -proto tree -n 3 -problem WT-TC -no-dedup -dup 0.5   # must fail
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 divergences or violations
// found, 3 soak interrupted (SIGINT or -timeout) before completing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	consensus "repro"
)

func main() {
	os.Exit(run())
}

// runOutcome is one live run's verdict.
type runOutcome struct {
	done      bool
	quiescent bool
	diverged  bool
	panicked  bool
	aborted   bool
	err       error
	divs      []consensus.LiveDivergence
	result    *consensus.LiveResult
	plan      consensus.ChaosRunPlan
	crashes   int
	detectMax time.Duration
	recovery  time.Duration
	falseSusp int
	events    int
}

func run() int {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 3, "number of processors")
		problem   = flag.String("problem", "WT-TC", "problem: {WT,ST,HT}-{IC,TC}")
		ruleName  = flag.String("rule", "unanimity", "decision rule: unanimity, threshold-K, or broadcast-P (termination standalone satisfies threshold-1, not unanimity)")
		runs      = flag.Int("runs", 200, "number of live executions")
		seed      = flag.Int64("seed", 1, "soak seed; derives per-run seeds, inputs, and crash schedules")
		parallel  = flag.Int("parallel", 0, "concurrent live runs (0 = GOMAXPROCS)")
		maxFail   = flag.Int("max-failures", -1, "maximum injected crashes per run (-1 = N-1, 0 = crash-free)")
		drop      = flag.Float64("drop", 0.1, "per-attempt probability a delivery is lost in transit")
		dup       = flag.Float64("dup", 0.1, "per-delivery probability the ack is lost (duplicate retransmit)")
		delay     = flag.Duration("delay", 300*time.Microsecond, "maximum per-attempt transit latency")
		heartbeat = flag.Duration("heartbeat", time.Millisecond, "heartbeat interval")
		detect    = flag.Duration("detect", 12*time.Millisecond, "failure-detection timeout (silence before a crash is declared)")
		deadline  = flag.Duration("deadline", 20*time.Second, "per-run deadline; a run that has not quiesced by then fails")
		timeout   = flag.Duration("timeout", 0, "whole-soak wall-clock budget (0 = none); on expiry partial results are reported")
		inputsArg = flag.String("inputs", "", "fixed input vector like 101 (empty = random per run)")
		traceDir  = flag.String("trace-dir", "", "directory for divergence traces (empty = don't write)")
		noDedup   = flag.Bool("no-dedup", false, "disable receiver-side dedup (teeth check: conformance must then fail under -dup)")
		verbose   = flag.Bool("v", false, "print every failing run, not just the first five")
	)
	flag.Parse()

	proto, err := consensus.ProtocolByName(*protoName, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	prob, err := consensus.ParseProblem(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	rule, err := consensus.ParseRule(*ruleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclive:", err)
		return 1
	}
	prob.Rule = rule
	var fixed [][]consensus.Bit
	if *inputsArg != "" {
		in, err := consensus.ParseInputs(*inputsArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cclive:", err)
			return 1
		}
		fixed = [][]consensus.Bit{in}
	}
	nProcs := proto.N()
	mf := *maxFail
	if mf < 0 {
		mf = nProcs - 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	plans := consensus.ChaosPlanRuns(*seed, *runs, nProcs, mf, fixed)
	outcomes := make([]runOutcome, len(plans))

	par := *parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(plans) {
		par = len(plans)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outcomes[i] = executeRun(ctx, proto, prob, plans[i], consensus.LiveConfig{
					Faults: consensus.LiveFaultPlan{
						Seed:         plans[i].Seed,
						DropRate:     *drop,
						DupRate:      *dup,
						MaxDelay:     *delay,
						DisableDedup: *noDedup,
					},
					Failures:      plans[i].Failures,
					Heartbeat:     *heartbeat,
					DetectTimeout: *detect,
					Deadline:      *deadline,
				})
			}
		}()
	}
feed:
	for i := range plans {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	return report(outcomes, proto.Name(), *protoName, prob, *seed, *runs, *traceDir, *verbose)
}

// executeRun performs one live run to a verdict, converting panics in
// protocol or runtime code into reported failures instead of a crashed
// soak.
func executeRun(ctx context.Context, proto consensus.Protocol, prob consensus.Problem, plan consensus.ChaosRunPlan, cfg consensus.LiveConfig) (out runOutcome) {
	out.plan = plan
	defer func() {
		if r := recover(); r != nil {
			out.done = true
			out.panicked = true
			out.err = fmt.Errorf("panic: %v", r)
		}
	}()
	if ctx.Err() != nil {
		out.aborted = true
		return out
	}
	res, err := consensus.Live(ctx, proto, plan.Inputs, cfg)
	if err != nil {
		out.done = true
		out.err = err
		return out
	}
	out.done = true
	out.result = res
	out.quiescent = res.Quiescent
	out.events = len(res.Schedule)
	out.crashes = len(res.Crashes)
	out.recovery = res.Recovery
	out.falseSusp = res.FalseSuspicions
	for _, c := range res.Crashes {
		if c.Detection > out.detectMax {
			out.detectMax = c.Detection
		}
	}
	if res.Err != nil {
		if ctx.Err() != nil {
			out.done = false
			out.aborted = true
			return out
		}
		out.err = res.Err
	}
	conf, cerr := consensus.LiveConform(res, proto, prob)
	if cerr != nil {
		out.err = cerr
		return out
	}
	if !conf.OK() {
		out.diverged = true
		out.divs = conf.Divergences
	}
	return out
}

// report prints the soak summary, writes divergence traces, and chooses
// the exit code.
func report(outcomes []runOutcome, protoCanon, protoArg string, prob consensus.Problem, seed int64, runs int, traceDir string, verbose bool) int {
	var (
		completed, quiesced, failing, aborted int
		crashes, falseSusp                    int
		detections, recoveries                []time.Duration
	)
	type failure struct {
		idx int
		out runOutcome
	}
	var failures []failure
	for i, out := range outcomes {
		if !out.done {
			aborted++
			continue
		}
		completed++
		if out.quiescent {
			quiesced++
		}
		crashes += out.crashes
		falseSusp += out.falseSusp
		if out.detectMax > 0 {
			detections = append(detections, out.detectMax)
		}
		if out.recovery > 0 {
			recoveries = append(recoveries, out.recovery)
		}
		if out.diverged || out.err != nil {
			failing++
			failures = append(failures, failure{i, out})
		}
	}

	fmt.Printf("%s vs %s: %d live runs, seed %d (%d completed, %d aborted)\n",
		protoCanon, prob.Name(), runs, seed, completed, aborted)
	fmt.Printf("  quiesced %d, failing %d, crashes injected %d, false suspicions %d\n",
		quiesced, failing, crashes, falseSusp)
	if len(detections) > 0 {
		fmt.Printf("  detection latency:  %s\n", distribution(detections))
	}
	if len(recoveries) > 0 {
		fmt.Printf("  recovery latency:   %s (crash → last survivor decision, %d runs)\n",
			distribution(recoveries), len(recoveries))
	}

	written := 0
	for i, f := range failures {
		if verbose || i < 5 {
			what := "failed"
			if f.out.diverged {
				what = fmt.Sprintf("DIVERGED: %s", f.out.divs[0])
			} else if f.out.err != nil {
				what = f.out.err.Error()
			}
			fmt.Printf("  run %d (seed %d, inputs %s): %s\n", f.idx, f.out.plan.Seed, renderInputs(f.out.plan.Inputs), what)
		} else if i == 5 {
			fmt.Printf("  … and %d more failing runs (use -v to list all)\n", len(failures)-5)
		}
		if traceDir != "" && f.out.result != nil {
			path, err := writeDivergenceTrace(traceDir, protoCanon, protoArg, prob, seed, f.idx, f.out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cclive:", err)
				return 1
			}
			written++
			if verbose || i < 5 {
				fmt.Printf("    trace: %s\n", path)
			}
		}
	}
	if written > 0 {
		fmt.Printf("  %d trace(s) written to %s\n", written, traceDir)
	}

	switch {
	case aborted > 0:
		fmt.Println("INTERRUPTED: partial results above")
		return 3
	case failing > 0:
		fmt.Printf("VIOLATES: %d failing run(s)\n", failing)
		return 2
	default:
		fmt.Println("OK: every live trace replays as a legal run of the model")
		return 0
	}
}

// writeDivergenceTrace serializes a failing run in the chaos trace format:
// the recorded live schedule, the injections, and the divergences as
// violations, so the artifact replays through the same tooling.
func writeDivergenceTrace(dir, protoCanon, protoArg string, prob consensus.Problem, sweepSeed int64, idx int, out runOutcome) (string, error) {
	res := out.result
	t := &consensus.ChaosTrace{
		Version:       1,
		Protocol:      protoCanon,
		ProtoArg:      protoArg,
		N:             len(res.Inputs),
		Problem:       prob.Name(),
		Inputs:        renderInputs(res.Inputs),
		SweepSeed:     sweepSeed,
		RunSeed:       out.plan.Seed,
		RunIndex:      idx,
		MaxSteps:      len(res.Schedule),
		OriginalSteps: len(res.Schedule),
	}
	for _, inj := range out.plan.Failures {
		t.Injections = append(t.Injections, consensus.ChaosTraceInjection{Proc: int(inj.Proc), AfterStep: inj.AfterStep})
	}
	for _, e := range res.Schedule {
		t.Schedule = append(t.Schedule, consensus.EncodeChaosEvent(e))
	}
	for _, d := range out.divs {
		t.Violations = append(t.Violations, consensus.ChaosTraceViolation{Kind: d.Kind, Detail: d.Detail})
	}
	if out.err != nil {
		t.Violations = append(t.Violations, consensus.ChaosTraceViolation{Kind: "run", Detail: out.err.Error()})
	}
	data, err := t.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("live-%s-%s-run%05d.json", protoArg, prob.Name(), idx)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// distribution renders min/p50/p90/max of a latency sample.
func distribution(ds []time.Duration) string {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return fmt.Sprintf("min %s  p50 %s  p90 %s  max %s",
		sorted[0].Round(time.Microsecond), q(0.5).Round(time.Microsecond),
		q(0.9).Round(time.Microsecond), sorted[len(sorted)-1].Round(time.Microsecond))
}

func renderInputs(inputs []consensus.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == consensus.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
