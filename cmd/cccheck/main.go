// Command cccheck model-checks a protocol against a consensus problem: it
// exhaustively explores every reachable configuration over every input
// vector, injecting up to -maxfail fail-stop failures, and reports any
// violation of the decision rule, the consistency constraint, or the
// termination condition. With -safety it additionally runs the Theorem 2
// safe-state analysis (concurrency sets, bias, Corollary 6).
//
// Usage:
//
//	cccheck -proto tree -n 3 -problem WT-TC
//	cccheck -proto star -n 3 -problem WT-TC -trace
//	cccheck -proto fullexchange -n 3 -problem WT-TC -safety -maxfail 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	consensus "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 3, "number of processors (keep small: the exploration is exhaustive)")
		problem   = flag.String("problem", "WT-TC", "problem: {WT,ST,HT}-{IC,TC}")
		maxFail   = flag.Int("maxfail", 2, "maximum injected failures per run")
		maxNodes  = flag.Int("maxnodes", 0, "node budget (0 = default)")
		trace     = flag.Bool("trace", false, "print the event trace to the first violation")
		safety    = flag.Bool("safety", false, "run the Theorem 2 safe-state analysis")
	)
	flag.Parse()

	proto, err := consensus.ProtocolByName(*protoName, *n)
	if err != nil {
		return err
	}
	prob, err := consensus.ParseProblem(*problem)
	if err != nil {
		return err
	}

	opts := consensus.CheckOptions{MaxFailures: *maxFail, MaxNodes: *maxNodes, TrackTraces: *trace}
	x, err := consensus.Check(proto, prob, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s vs %s: %d configurations, %d states, %d terminal\n",
		proto.Name(), prob.Name(), x.NodeCount, len(x.States), x.Terminals)
	if x.Conforms() {
		fmt.Println("CONFORMS: no violation found")
	} else {
		fmt.Printf("VIOLATES: %d violation(s); first:\n  %s\n", len(x.Violations), x.Violations[0])
		if *trace {
			fmt.Println("trace to first violation:")
			for _, line := range x.FirstTrace {
				fmt.Println("  " + line)
			}
		}
	}

	if *safety {
		rep := x.Safety()
		fmt.Printf("\nsafe-state analysis: %d operational states, %d unsafe, %d Corollary 6 violation(s)\n",
			rep.TotalStates, len(rep.Unsafe), len(rep.Corollary6))
		for i, u := range rep.Unsafe {
			if i >= 5 {
				fmt.Printf("  … and %d more\n", len(rep.Unsafe)-5)
				break
			}
			fmt.Printf("  unsafe: %s\n    reason: %s\n", u.Key, u.Reason)
		}
		for i, v := range rep.Corollary6 {
			if i >= 3 {
				fmt.Printf("  … and %d more\n", len(rep.Corollary6)-3)
				break
			}
			fmt.Printf("  corollary 6: %s\n", v.Detail)
		}
	}

	if !x.Conforms() {
		os.Exit(2)
	}
	return nil
}
