// Command cccheck model-checks a protocol against a consensus problem: it
// exhaustively explores every reachable configuration over every input
// vector, injecting up to -maxfail fail-stop failures, and reports any
// violation of the decision rule, the consistency constraint, or the
// termination condition. With -safety it additionally runs the Theorem 2
// safe-state analysis (concurrency sets, bias, Corollary 6).
//
// With -replay it instead re-executes a ccchaos violation trace and
// re-asserts that the recorded schedule still exhibits the recorded
// violation.
//
// Usage:
//
//	cccheck -proto tree -n 3 -problem WT-TC
//	cccheck -proto star -n 3 -problem WT-TC -trace
//	cccheck -proto fullexchange -n 3 -problem WT-TC -safety -maxfail 1
//	cccheck -replay traces/chain-st-ST-IC-run00042.json
//
// Exit codes: 0 conforms (or trace reproduced), 1 error (or trace
// diverged), 2 violations found, 3 partial results only (node budget
// exhausted or -timeout hit; the summary covers the visited prefix).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	consensus "repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 3, "number of processors (keep small: the exploration is exhaustive)")
		problem   = flag.String("problem", "WT-TC", "problem: {WT,ST,HT}-{IC,TC}")
		maxFail   = flag.Int("maxfail", 2, "maximum injected failures per run")
		maxNodes  = flag.Int("maxnodes", 0, "node budget (0 = default)")
		parallel  = flag.Int("parallel", 0, "exploration worker count (0 = GOMAXPROCS); results are identical at any setting")
		timeout   = flag.Duration("timeout", 0, "exploration wall-clock budget (0 = none); on expiry partial results are reported")
		reduce    = flag.String("reduce", "none", "state-space reduction: none, ample, symmetry, or both (reduced runs keep the verdict; node counts describe the reduced graph)")
		trace     = flag.Bool("trace", false, "print the event trace to the first violation")
		safety    = flag.Bool("safety", false, "run the Theorem 2 safe-state analysis")
		replay    = flag.String("replay", "", "replay a ccchaos trace file and re-assert its violation")
		omitBudg  = flag.Int("omission-budget", 0, "maximum omission faults per run (0 = none): the adversary may suppress up to this many buffered deliveries")
		mobileOm  = flag.Int("mobile-omissions", 0, "cap on simultaneously omission-faulty processors (0 = unbounded); the faulty set moves as deliveries succeed")
	)
	flag.Parse()

	if *replay != "" {
		return replayTrace(*replay)
	}

	proto, err := consensus.ProtocolByName(*protoName, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	prob, err := consensus.ParseProblem(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	reduction, err := consensus.ParseReduction(*reduce)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	if *safety && reduction != consensus.ReduceNone {
		fmt.Fprintln(os.Stderr, "cccheck: -safety needs the full state census; run it with -reduce none")
		return 1
	}

	if *omitBudg > 0 && reduction != consensus.ReduceNone {
		fmt.Fprintln(os.Stderr, "cccheck: note: state-space reductions are disabled under omission budgets (see DESIGN.md §8); exploring the full graph")
	}

	opts := consensus.CheckOptions{
		MaxFailures: *maxFail, MaxNodes: *maxNodes, Parallelism: *parallel,
		TrackTraces: *trace, Reduction: reduction,
		OmissionBudget: *omitBudg, MobileOmissions: *mobileOm,
	}
	x, err := consensus.CheckContext(ctx, proto, prob, opts)
	if err != nil && (x == nil || !x.Status.Partial()) {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}

	fmt.Printf("%s vs %s: %d configurations, %d states, %d terminal\n",
		proto.Name(), prob.Name(), x.NodeCount, len(x.States), x.Terminals)
	if *omitBudg > 0 {
		fmt.Printf("omission budget %d, mobile cap %d\n", *omitBudg, *mobileOm)
	}
	if reduction != consensus.ReduceNone {
		rs := x.Reduction
		fmt.Printf("reduction %s: %d ample + %d full expansions, %d proviso fallbacks, %d symmetry-pruned + %d elision-pruned successors\n",
			reduction, rs.AmpleNodes, rs.FullNodes, rs.ProvisoFallbacks, rs.SymmetryPrunes, rs.ElisionPrunes)
	}
	if x.Status.Partial() {
		fmt.Printf("PARTIAL (%s): %d nodes visited, %d frontier nodes unexpanded; results below cover the visited prefix only\n",
			x.Status, x.NodeCount, x.FrontierSize)
	}
	if x.Conforms() {
		if x.Status.Partial() {
			fmt.Println("no violation found in the visited prefix (NOT a proof of conformance)")
		} else {
			fmt.Println("CONFORMS: no violation found")
		}
	} else {
		fmt.Printf("VIOLATES: %d violation(s); first:\n  %s\n", len(x.Violations), x.Violations[0])
		if *trace {
			fmt.Println("trace to first violation:")
			for _, line := range x.FirstTrace {
				fmt.Println("  " + line)
			}
		}
	}

	if *safety {
		rep := x.Safety()
		fmt.Printf("\nsafe-state analysis: %d operational states, %d unsafe, %d Corollary 6 violation(s)\n",
			rep.TotalStates, len(rep.Unsafe), len(rep.Corollary6))
		for i, u := range rep.Unsafe {
			if i >= 5 {
				fmt.Printf("  … and %d more\n", len(rep.Unsafe)-5)
				break
			}
			fmt.Printf("  unsafe: %s\n    reason: %s\n", u.Key, u.Reason)
		}
		for i, v := range rep.Corollary6 {
			if i >= 3 {
				fmt.Printf("  … and %d more\n", len(rep.Corollary6)-3)
				break
			}
			fmt.Printf("  corollary 6: %s\n", v.Detail)
		}
	}

	switch {
	case !x.Conforms():
		return 2
	case x.Status.Partial():
		return 3
	default:
		return 0
	}
}

// replayTrace re-executes a ccchaos trace and re-asserts the recorded
// violation. Exit 2 means the violation reproduced identically; exit 1
// means the replay diverged from the recording.
func replayTrace(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	t, err := consensus.DecodeChaosTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	if t.ProtoArg == "" {
		fmt.Fprintln(os.Stderr, "cccheck: trace has no protoArg; cannot resolve the protocol")
		return 1
	}
	proto, err := consensus.ProtocolByName(t.ProtoArg, t.N)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	prob, err := consensus.ParseProblem(t.Problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}

	fmt.Printf("replaying %s: %s vs %s, inputs %s, %d events (run %d of sweep seed %d)\n",
		path, t.Protocol, t.Problem, t.Inputs, len(t.Schedule), t.RunIndex, t.SweepSeed)
	res, err := consensus.ReplayChaosTrace(t, proto, prob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		return 1
	}
	for _, v := range res.Violations {
		fmt.Println("  " + v.String())
	}
	if res.Reproduced {
		fmt.Println("REPRODUCED: replay exhibits the recorded violation(s) exactly")
		return 2
	}
	fmt.Printf("DIVERGED: recorded %d violation(s), replay produced %d — the protocol or checker changed since recording\n",
		len(t.Violations), len(res.Violations))
	return 1
}
