// Command ccbench benchmarks the exhaustive explorer and maintains the
// tracked throughput baseline. Each configured run explores a protocol's
// full reachable space at a given worker count and reports nodes/second
// plus allocation intensity (allocations and bytes per explored node); the
// results are written as JSON (BENCH_explore.json) so CI can archive them
// and compare against the committed baseline.
//
// Because the parallel explorer is deterministic — byte-identical results
// at any -parallel setting and under any -dedup engine — the node counts in
// two runs of the same configuration must agree exactly; ccbench verifies
// that across the parallelism levels it measures, so a throughput number
// can never come from a divergent exploration.
//
// Usage:
//
//	ccbench -proto tree,star,chain -n 3 -maxfail 2 -parallel 1,2,4,8,16 -o BENCH_explore.json
//	ccbench -against BENCH_explore.json -tolerance 0.30 -alloc-tolerance 0.20
//	ccbench -proto tree -maxfail 2 -min-speedup 2
//	ccbench -proto tree -parallel 1 -cpuprofile cpu.out -memprofile mem.out
//
// -min-speedup additionally requires parallel throughput to beat the
// sequential run: the highest measured worker count no larger than
// GOMAXPROCS must reach at least min-speedup times the parallelism-1
// nodes/sec. The gate is CPU-aware — on a box whose GOMAXPROCS cannot run
// two workers simultaneously it reports the measured ratio and passes,
// since no scheduler can extract parallel speedup from one core.
//
// Exit codes: 0 ok, 1 error, 2 throughput or allocation regression beyond
// tolerance against the -against baseline, or parallel speedup below
// -min-speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	consensus "repro"
)

// Result is one benchmark measurement. AllocsPerNode and BytesPerNode are
// taken from the fastest repeat: total heap allocations (and bytes) during
// the exploration divided by the number of explored nodes.
type Result struct {
	Protocol      string  `json:"protocol"`
	N             int     `json:"n"`
	MaxFailures   int     `json:"maxFailures"`
	Parallelism   int     `json:"parallelism"`
	Nodes         int     `json:"nodes"`
	States        int     `json:"states"`
	WallMs        float64 `json:"wallMs"`
	NodesPerSec   float64 `json:"nodesPerSec"`
	AllocsPerNode float64 `json:"allocsPerNode"`
	BytesPerNode  float64 `json:"bytesPerNode"`
	// Reduction names the state-space reduction the row measured; empty
	// means none (baselines written before reductions existed have no
	// field at all and compare as unreduced rows).
	Reduction string `json:"reduction,omitempty"`
	// AmpleAvg is the average ample-set size (ample successor edges per
	// ample expansion) of a reduced run.
	AmpleAvg float64 `json:"ampleAvg,omitempty"`
	// ProvisoFallbacks, SymmetryPrunes, and ElisionPrunes mirror the
	// exploration's ReductionStats for the fastest repeat.
	ProvisoFallbacks int   `json:"provisoFallbacks,omitempty"`
	SymmetryPrunes   int64 `json:"symmetryPrunes,omitempty"`
	ElisionPrunes    int64 `json:"elisionPrunes,omitempty"`
	// ReductionFactor is unreduced nodes / reduced nodes, filled when the
	// same invocation also measured the protocol at -reduce none.
	ReductionFactor float64 `json:"reductionFactor,omitempty"`
	// ReplayShare is the fraction of wall time the sequential canonical
	// replay pass was running (its pool-blocked wait included in
	// ReplayBlockedShare): the Amdahl ceiling on parallel speedup.
	ReplayShare        float64 `json:"replayShare,omitempty"`
	ReplayBlockedShare float64 `json:"replayBlockedShare,omitempty"`
}

// File is the on-disk shape of BENCH_explore.json. GOMAXPROCS records the
// actual runtime value at measurement time, so a baseline taken on a
// different machine is recognizably foreign.
type File struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Dedup      string   `json:"dedup"`
	Repeat     int      `json:"repeat"`
	Results    []Result `json:"results"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protoNames = flag.String("proto", "tree,star,chain", "comma-separated protocols to explore")
		n          = flag.Int("n", 3, "number of processors")
		maxFail    = flag.Int("maxfail", 2, "maximum injected failures")
		parallel   = flag.String("parallel", "1,2,4,8,16", "comma-separated worker counts to measure")
		repeat     = flag.Int("repeat", 3, "runs per configuration; the fastest is reported")
		reduceList = flag.String("reduce", "none", "comma-separated state-space reductions to measure (none, ample, symmetry, both); a none row in the same run provides the reduction-factor reference")
		dedupName  = flag.String("dedup", "fingerprint", "visited-set engine: fingerprint, verified, or strings")
		out        = flag.String("o", "BENCH_explore.json", "output file (- for stdout only)")
		against    = flag.String("against", "", "baseline BENCH_explore.json to compare against")
		tolerance  = flag.Float64("tolerance", 0.30, "allowed fractional nodes/sec regression vs the baseline")
		allocTol   = flag.Float64("alloc-tolerance", 0.20, "allowed fractional allocs/node regression vs the baseline")
		minSpeedup = flag.Float64("min-speedup", 0, "require this parallel-vs-sequential nodes/sec ratio (0 disables; skipped when GOMAXPROCS < 2)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file after the runs")
	)
	flag.Parse()

	levels, err := parseLevels(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		return 1
	}
	dedup, err := parseDedup(*dedupName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		return 1
	}
	var protos []consensus.Protocol
	for _, name := range strings.Split(*protoNames, ",") {
		proto, err := consensus.ProtocolByName(strings.TrimSpace(name), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		protos = append(protos, proto)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	f := File{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dedup:      dedup.String(),
		Repeat:     *repeat,
	}
	reductions, err := parseReductions(*reduceList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		return 1
	}
	noneNodes := map[string]int{} // unreduced node count per protocol, for ReductionFactor
	for _, proto := range protos {
		for _, red := range reductions {
			wantNodes := -1
			for _, par := range levels {
				res, err := measure(proto, *maxFail, par, *repeat, dedup, red)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ccbench:", err)
					return 1
				}
				if wantNodes == -1 {
					wantNodes = res.Nodes
				} else if res.Nodes != wantNodes {
					fmt.Fprintf(os.Stderr, "ccbench: determinism breach: parallelism %d explored %d nodes, parallelism %d explored %d\n",
						levels[0], wantNodes, par, res.Nodes)
					return 1
				}
				if red == consensus.ReduceNone {
					noneNodes[res.Protocol] = res.Nodes
				} else if full, ok := noneNodes[res.Protocol]; ok && res.Nodes > 0 {
					res.ReductionFactor = float64(full) / float64(res.Nodes)
				}
				line := fmt.Sprintf("%-16s maxfail=%d parallel=%d  %8d nodes  %8.0f ms  %10.0f nodes/sec  %6.1f allocs/node  %7.0f B/node  replay %3.0f%%",
					res.Protocol, res.MaxFailures, res.Parallelism, res.Nodes, res.WallMs, res.NodesPerSec,
					res.AllocsPerNode, res.BytesPerNode, res.ReplayShare*100)
				if red != consensus.ReduceNone {
					line += fmt.Sprintf("  reduce=%s ample-avg=%.2f", res.Reduction, res.AmpleAvg)
					if res.ReductionFactor > 0 {
						line += fmt.Sprintf(" factor=%.1fx", res.ReductionFactor)
					}
				}
				fmt.Println(line)
				f.Results = append(f.Results, res)
			}
		}
	}

	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
	}

	if *out != "-" {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *out)
	}

	rc := 0
	if *minSpeedup > 0 {
		rc = checkSpeedup(f, *minSpeedup)
	}
	if *against != "" {
		if c := compare(f, *against, *tolerance, *allocTol); c > rc {
			rc = c
		}
	}
	return rc
}

// checkSpeedup enforces -min-speedup: for every (protocol, maxfail) group
// that measured parallelism 1, the highest worker count no larger than
// GOMAXPROCS must reach min times the sequential nodes/sec. On a machine
// that cannot schedule two workers at once the ratio is reported but not
// enforced — the number then measures coordination overhead, not speedup.
func checkSpeedup(f File, min float64) int {
	type group struct {
		proto   string
		maxFail int
		reduce  string
	}
	base := make(map[group]Result)
	best := make(map[group]Result)
	for _, r := range f.Results {
		g := group{r.Protocol, r.MaxFailures, r.Reduction}
		if r.Parallelism == 1 {
			base[g] = r
		} else if r.Parallelism <= f.GOMAXPROCS && r.Parallelism > best[g].Parallelism {
			best[g] = r
		}
	}
	enforce := f.GOMAXPROCS >= 2
	if !enforce {
		// One core: report against the highest level measured at all.
		for _, r := range f.Results {
			g := group{r.Protocol, r.MaxFailures, r.Reduction}
			if r.Parallelism > best[g].Parallelism {
				best[g] = r
			}
		}
	}
	groups := make([]group, 0, len(base))
	for g := range base { //ccvet:ignore detrange sorted immediately below
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].proto != groups[j].proto {
			return groups[i].proto < groups[j].proto
		}
		if groups[i].maxFail != groups[j].maxFail {
			return groups[i].maxFail < groups[j].maxFail
		}
		return groups[i].reduce < groups[j].reduce
	})
	failed := false
	for _, g := range groups {
		b := base[g]
		p, ok := best[g]
		if !ok || p.Parallelism <= 1 {
			fmt.Printf("%s/f%d: no parallel level to judge speedup against\n", g.proto, g.maxFail)
			continue
		}
		ratio := p.NodesPerSec / b.NodesPerSec
		switch {
		case !enforce:
			fmt.Printf("%s/f%d: speedup p%d/p1 = %.2fx (GOMAXPROCS=%d, gate skipped: one core cannot run workers in parallel)\n",
				g.proto, g.maxFail, p.Parallelism, ratio, f.GOMAXPROCS)
		case ratio < min:
			fmt.Printf("%s/f%d: SPEEDUP REGRESSION p%d/p1 = %.2fx, want >= %.2fx (GOMAXPROCS=%d)\n",
				g.proto, g.maxFail, p.Parallelism, ratio, min, f.GOMAXPROCS)
			failed = true
		default:
			fmt.Printf("%s/f%d: ok speedup p%d/p1 = %.2fx (>= %.2fx)\n",
				g.proto, g.maxFail, p.Parallelism, ratio, min)
		}
	}
	if failed {
		return 2
	}
	return 0
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -parallel entry %q (want positive integers)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-parallel names no worker counts")
	}
	return out, nil
}

// parseReductions parses the -reduce list. A none entry is moved to the
// front so its node counts are available as the reduction-factor reference
// for the reduced rows of the same invocation.
func parseReductions(s string) ([]consensus.Reduction, error) {
	var out []consensus.Reduction
	seen := map[consensus.Reduction]bool{}
	for _, part := range strings.Split(s, ",") {
		r, err := consensus.ParseReduction(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[r] {
			continue
		}
		seen[r] = true
		if r == consensus.ReduceNone {
			out = append([]consensus.Reduction{r}, out...)
		} else {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-reduce names no reductions")
	}
	return out, nil
}

func parseDedup(s string) (consensus.Dedup, error) {
	switch s {
	case "fingerprint":
		return consensus.DedupFingerprint, nil
	case "verified":
		return consensus.DedupVerified, nil
	case "strings":
		return consensus.DedupStrings, nil
	}
	return 0, fmt.Errorf("bad -dedup %q (want fingerprint, verified, or strings)", s)
}

func measure(proto consensus.Protocol, maxFail, par, repeat int, dedup consensus.Dedup, red consensus.Reduction) (Result, error) {
	best := Result{
		Protocol:    proto.Name(),
		N:           proto.N(),
		MaxFailures: maxFail,
		Parallelism: par,
	}
	if red != consensus.ReduceNone {
		best.Reduction = red.String()
	}
	var before, after runtime.MemStats
	for i := 0; i < repeat; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		opts := consensus.CheckOptions{
			MaxFailures: maxFail,
			Parallelism: par,
			Dedup:       dedup,
			Reduction:   red,
			Clock:       func() time.Duration { return time.Since(start) },
		}
		x, err := consensus.Explore(proto, opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return best, err
		}
		ms := float64(wall.Microseconds()) / 1000
		if best.Nodes != 0 && x.NodeCount != best.Nodes {
			return best, fmt.Errorf("determinism breach: repeat %d explored %d nodes, previous runs %d", i, x.NodeCount, best.Nodes)
		}
		if best.Nodes == 0 || ms < best.WallMs {
			best.Nodes = x.NodeCount
			best.States = len(x.States)
			best.WallMs = ms
			best.NodesPerSec = float64(x.NodeCount) / wall.Seconds()
			best.AllocsPerNode = float64(after.Mallocs-before.Mallocs) / float64(x.NodeCount)
			best.BytesPerNode = float64(after.TotalAlloc-before.TotalAlloc) / float64(x.NodeCount)
			if wall > 0 {
				best.ReplayShare = float64(x.ReplayWall) / float64(wall)
				best.ReplayBlockedShare = float64(x.ReplayBlocked) / float64(wall)
			}
			rs := x.Reduction
			if rs.AmpleNodes > 0 {
				best.AmpleAvg = float64(rs.AmpleEvents) / float64(rs.AmpleNodes)
			}
			best.ProvisoFallbacks = rs.ProvisoFallbacks
			best.SymmetryPrunes = rs.SymmetryPrunes
			best.ElisionPrunes = rs.ElisionPrunes
		}
	}
	return best, nil
}

// rowKey identifies a result row for baseline matching. Unreduced rows keep
// the pre-reduction key shape, so baselines written before the -reduce flag
// existed still match; reduced rows get a distinct suffix.
func rowKey(r Result) string {
	key := fmt.Sprintf("%s/f%d/p%d", r.Protocol, r.MaxFailures, r.Parallelism)
	if r.Reduction != "" && r.Reduction != "none" {
		key += "/" + r.Reduction
	}
	return key
}

// compare checks every current result against the matching baseline row
// (same protocol, failure bound, and parallelism): throughput must stay
// within -tolerance of the baseline, and allocations per node within
// -alloc-tolerance. Rows missing from the baseline are reported but not
// failed, so new configurations can land before the baseline is
// regenerated.
func compare(cur File, path string, tolerance, allocTol float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		return 1
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		return 1
	}
	baseline := make(map[string]Result)
	for _, r := range base.Results {
		baseline[rowKey(r)] = r
	}
	regressed := false
	for _, r := range cur.Results {
		key := rowKey(r)
		b, ok := baseline[key]
		if !ok {
			fmt.Printf("%s: no baseline row, skipping comparison\n", key)
			continue
		}
		floor := b.NodesPerSec * (1 - tolerance)
		if r.NodesPerSec < floor {
			fmt.Printf("%s: REGRESSION %.0f nodes/sec vs baseline %.0f (floor %.0f at tolerance %.0f%%)\n",
				key, r.NodesPerSec, b.NodesPerSec, floor, tolerance*100)
			regressed = true
		} else {
			fmt.Printf("%s: ok %.0f nodes/sec vs baseline %.0f\n", key, r.NodesPerSec, b.NodesPerSec)
		}
		if b.AllocsPerNode > 0 {
			ceil := b.AllocsPerNode * (1 + allocTol)
			if r.AllocsPerNode > ceil {
				fmt.Printf("%s: ALLOC REGRESSION %.1f allocs/node vs baseline %.1f (ceiling %.1f at tolerance %.0f%%)\n",
					key, r.AllocsPerNode, b.AllocsPerNode, ceil, allocTol*100)
				regressed = true
			} else {
				fmt.Printf("%s: ok %.1f allocs/node vs baseline %.1f\n", key, r.AllocsPerNode, b.AllocsPerNode)
			}
		}
	}
	if regressed {
		return 2
	}
	return 0
}
