// Command ccvet runs the repo's static-analysis suite: four analyzers that
// machine-check the model contracts of the Dwork & Skeen reproduction
// (purity of transition functions, deterministic map iteration, no
// self-sends, no dropped errors). It exits nonzero on any finding, so CI can
// gate the tree on it.
//
// Usage:
//
//	ccvet ./...                    # this directory's subtree (the whole module from the root)
//	ccvet ./internal/checker       # one package
//	ccvet ./internal/...           # a package tree
//	ccvet -list                    # describe the analyzers
//
// Patterns follow the go tool's semantics: "./..." and "." are anchored at
// the working directory; "..." always means the whole module.
//
// Suppress a finding with a justified comment on (or directly above) the
// offending line:
//
//	//ccvet:ignore detrange membership test only; order cannot be observed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccvet:", err)
		return 1
	}
	findings, err := mod.Vet(analyzers, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccvet:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ccvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
