// Command ccvet runs the repo's static-analysis suite: eight analyzers that
// machine-check the model contracts of the Dwork & Skeen reproduction
// (purity of transition functions, deterministic map iteration, no
// self-sends, no dropped errors, guarded-by locking discipline, goroutine
// lifecycle joins, atomic-access consistency, and no wall-clock or global
// randomness in determinism-critical packages). It exits nonzero on any
// finding, so CI can gate the tree on it.
//
// Usage:
//
//	ccvet ./...                    # this directory's subtree (the whole module from the root)
//	ccvet ./internal/checker       # one package
//	ccvet ./internal/...           # a package tree
//	ccvet -json ./...              # findings as a JSON array (stable, sorted)
//	ccvet -diff origin/main ./...  # gate only on findings in lines changed since the ref
//	ccvet -list                    # describe the analyzers
//
// Patterns follow the go tool's semantics: "./..." and "." are anchored at
// the working directory; "..." always means the whole module.
//
// Suppress a finding with a justified comment on (or directly above) the
// offending line:
//
//	//ccvet:ignore detrange membership test only; order cannot be observed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	diffRef := flag.String("diff", "", "git ref: report all findings, but exit nonzero only for findings on lines changed since the ref")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccvet:", err)
		return 1
	}
	findings, err := mod.Vet(analyzers, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccvet:", err)
		return 1
	}

	gating := findings
	if *diffRef != "" {
		changed, err := changedLines(mod.Root, *diffRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccvet:", err)
			return 1
		}
		gating = nil
		for _, f := range findings {
			if changed[f.Pos.Filename][f.Pos.Line] {
				gating = append(gating, f)
			}
		}
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "ccvet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(gating) > 0 {
		if *diffRef != "" {
			fmt.Fprintf(os.Stderr, "ccvet: %d finding(s) on lines changed since %s (%d total)\n",
				len(gating), *diffRef, len(findings))
		} else {
			fmt.Fprintf(os.Stderr, "ccvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if *diffRef != "" && len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ccvet: %d pre-existing finding(s), none on lines changed since %s\n",
			len(findings), *diffRef)
	}
	return 0
}

// jsonFinding is the stable machine-readable shape of one finding. Findings
// arrive sorted (file, line, analyzer, message), so the array order — and
// therefore the bytes — are a pure function of the source tree.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// hunkHeader matches the new-file line ranges of a unified diff hunk:
// @@ -a[,b] +c[,d] @@ — the post-image range is lines c..c+d-1.
var hunkHeader = regexp.MustCompile(`^@@ -[0-9]+(?:,[0-9]+)? \+([0-9]+)(?:,([0-9]+))? @@`)

// changedLines asks git which module-relative lines changed since ref:
// file → set of post-image line numbers added or modified. Deleted-only
// hunks (post-image count 0) touch no current line and are excluded.
func changedLines(root, ref string) (map[string]map[int]bool, error) {
	cmd := exec.Command("git", "-C", root, "diff", "--unified=0", ref, "--", ".")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %w", ref, err)
	}
	changed := map[string]map[int]bool{}
	var file string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "+++ ") {
			name := strings.TrimPrefix(line, "+++ ")
			if strings.HasPrefix(name, "b/") {
				file = name[2:]
			} else {
				file = "" // /dev/null: deleted file
			}
			continue
		}
		m := hunkHeader.FindStringSubmatch(line)
		if m == nil || file == "" {
			continue
		}
		start, _ := strconv.Atoi(m[1])
		count := 1
		if m[2] != "" {
			count, _ = strconv.Atoi(m[2])
		}
		if count == 0 {
			continue
		}
		set := changed[file]
		if set == nil {
			set = map[int]bool{}
			changed[file] = set
		}
		for i := 0; i < count; i++ {
			set[start+i] = true
		}
	}
	return changed, nil
}
