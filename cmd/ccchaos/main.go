// Command ccchaos runs a seeded, parallel chaos sweep of a protocol against
// a consensus problem: thousands of failure-injected random executions,
// each checked for the decision rule, the consistency constraint, and the
// termination condition, with every violating schedule shrunk by
// delta-debugging to a locally minimal counterexample and written as a
// replayable JSON trace (see cccheck -replay).
//
// The sweep is a pure function of -seed and its options: same seed, same
// flags, byte-identical traces, regardless of -parallel.
//
// Usage:
//
//	ccchaos -proto tree -n 3 -problem WT-TC -runs 2000 -seed 1
//	ccchaos -proto chain-st -n 3 -problem ST-IC -trace-dir traces
//	cccheck -replay traces/chain-st-ST-IC-run00042.json
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 violations found, 3 sweep
// interrupted before completing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	consensus "repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 3, "number of processors")
		problem   = flag.String("problem", "WT-TC", "problem: {WT,ST,HT}-{IC,TC}")
		runs      = flag.Int("runs", 1000, "number of randomized executions")
		seed      = flag.Int64("seed", 1, "sweep seed; equal seeds and flags give byte-identical traces")
		parallel  = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS); affects speed only, never results")
		maxFail   = flag.Int("max-failures", -1, "maximum injected failures per run (-1 = N-1, 0 = failure-free)")
		maxSteps  = flag.Int("max-steps", 10_000, "per-run step budget")
		timeout   = flag.Duration("timeout", 0, "whole-sweep wall-clock budget (0 = none); on expiry partial results are reported")
		minimize  = flag.Bool("minimize", true, "shrink violating schedules to 1-minimal counterexamples")
		traceDir  = flag.String("trace-dir", "", "directory for violation traces (empty = don't write)")
		inputsArg = flag.String("inputs", "", "fixed input vector like 101 (empty = random per run)")
		verbose   = flag.Bool("v", false, "print every failure, not just the first five")
		adversary = flag.String("adversary", "uniform", "scheduling adversary: uniform, delay, or adaptive")
		omitBudg  = flag.Int("omission-budget", 0, "maximum omission faults per run (0 = none): the adversary may suppress up to this many buffered deliveries")
		mobileOm  = flag.Int("mobile-omissions", 0, "cap on simultaneously omission-faulty processors (0 = unbounded); the faulty set moves as deliveries succeed")
		jsonOut   = flag.Bool("json", false, "print the sweep report as JSON (per-run and aggregate injection accounting) instead of text")
	)
	flag.Parse()

	proto, err := consensus.ProtocolByName(*protoName, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccchaos:", err)
		return 1
	}
	prob, err := consensus.ParseProblem(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccchaos:", err)
		return 1
	}
	opts := consensus.ChaosOptions{
		Runs:            *runs,
		Seed:            *seed,
		Parallel:        *parallel,
		MaxFailures:     *maxFail,
		MaxSteps:        *maxSteps,
		Minimize:        *minimize,
		Adversary:       *adversary,
		OmissionBudget:  *omitBudg,
		MobileOmissions: *mobileOm,
	}
	if *inputsArg != "" {
		in, err := consensus.ParseInputs(*inputsArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccchaos:", err)
			return 1
		}
		opts.Inputs = [][]consensus.Bit{in}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, sweepErr := consensus.Chaos(ctx, proto, prob, opts)
	if rep == nil {
		fmt.Fprintln(os.Stderr, "ccchaos:", sweepErr)
		return 1
	}
	if sweepErr != nil && !errors.Is(sweepErr, context.DeadlineExceeded) && !errors.Is(sweepErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ccchaos:", sweepErr)
		return 1
	}

	quiet := *jsonOut
	if !quiet {
		fmt.Printf("%s vs %s: %d runs, seed %d (%s)\n", rep.Proto, rep.Problem.Name(), rep.Runs, rep.Seed, rep.Status)
		fmt.Printf("  passed %d, violated %d, panicked %d, unresolved %d, aborted %d\n",
			rep.Passed, rep.Violated, rep.Panicked, rep.Unresolved, rep.Aborted)
		fmt.Printf("  failure injections: %d planned, %d fired, %d unfired\n",
			rep.InjectionsPlanned, rep.InjectionsFired, rep.InjectionsUnfired)
		if rep.Adversary != consensus.ChaosAdversaryUniform || rep.OmissionBudget > 0 {
			fmt.Printf("  adversary %s, omission budget %d (mobile cap %d), %d omission(s) injected\n",
				rep.Adversary, rep.OmissionBudget, rep.MobileOmissions, rep.Omissions)
		}
	}

	written := 0
	for i, f := range rep.Failures {
		if !quiet && (*verbose || i < 5) {
			fmt.Printf("  run %d (seed %d, inputs %s): %s\n", f.RunIndex, f.Seed, renderInputs(f.Inputs), f.Violations[0])
			if f.Outcome == consensus.ChaosOutcomeViolated {
				fmt.Printf("    schedule: %d events (shrunk from %d, %d candidates tried)\n",
					len(f.Schedule), f.OriginalSteps, f.ShrinkCandidates)
			}
		} else if !quiet && i == 5 {
			fmt.Printf("  … and %d more failures (use -v to list all)\n", len(rep.Failures)-5)
		}
		if *traceDir != "" {
			path, err := writeTrace(*traceDir, rep, f, *protoName, opts.MaxSteps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ccchaos:", err)
				return 1
			}
			written++
			if !quiet && (*verbose || i < 5) {
				fmt.Printf("    trace: %s\n", path)
			}
		}
	}
	if !quiet && written > 0 {
		fmt.Printf("  %d trace(s) written to %s (replay with: cccheck -replay <file>)\n", written, *traceDir)
	}
	if *jsonOut {
		if err := emitJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "ccchaos:", err)
			return 1
		}
	}

	switch {
	case rep.Status == consensus.ChaosStatusInterrupted:
		if !quiet {
			fmt.Println("INTERRUPTED: partial results above")
		}
		return 3
	case !rep.Clean():
		if !quiet {
			fmt.Printf("VIOLATES: %d failing run(s)\n", len(rep.Failures))
		}
		return 2
	default:
		if !quiet {
			fmt.Println("OK: no violations found")
		}
		return 0
	}
}

// jsonReport is the machine-readable sweep summary: the aggregate injection
// accounting plus one entry per run, so consumers can tell which runs
// actually exercised their planned faults (injections_unfired per run, not
// just in the aggregate).
type jsonReport struct {
	Proto             string                   `json:"proto"`
	Problem           string                   `json:"problem"`
	Seed              int64                    `json:"seed"`
	Runs              int                      `json:"runs"`
	Adversary         string                   `json:"adversary"`
	OmissionBudget    int                      `json:"omission_budget,omitempty"`
	MobileOmissions   int                      `json:"mobile_omissions,omitempty"`
	Status            string                   `json:"status"`
	Passed            int                      `json:"passed"`
	Violated          int                      `json:"violated"`
	Panicked          int                      `json:"panicked"`
	Unresolved        int                      `json:"unresolved"`
	Aborted           int                      `json:"aborted"`
	InjectionsPlanned int                      `json:"injections_planned"`
	InjectionsFired   int                      `json:"injections_fired"`
	InjectionsUnfired int                      `json:"injections_unfired"`
	Omissions         int                      `json:"omissions"`
	Failures          int                      `json:"failures"`
	RunStats          []consensus.ChaosRunStat `json:"run_stats"`
}

func emitJSON(w io.Writer, rep *consensus.ChaosReport) error {
	out := jsonReport{
		Proto:             rep.Proto,
		Problem:           rep.Problem.Name(),
		Seed:              rep.Seed,
		Runs:              rep.Runs,
		Adversary:         rep.Adversary,
		OmissionBudget:    rep.OmissionBudget,
		MobileOmissions:   rep.MobileOmissions,
		Status:            rep.Status.String(),
		Passed:            rep.Passed,
		Violated:          rep.Violated,
		Panicked:          rep.Panicked,
		Unresolved:        rep.Unresolved,
		Aborted:           rep.Aborted,
		InjectionsPlanned: rep.InjectionsPlanned,
		InjectionsFired:   rep.InjectionsFired,
		InjectionsUnfired: rep.InjectionsUnfired,
		Omissions:         rep.Omissions,
		Failures:          len(rep.Failures),
		RunStats:          rep.RunStats,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// writeTrace serializes one failure into the trace directory with a
// deterministic name.
func writeTrace(dir string, rep *consensus.ChaosReport, f *consensus.ChaosFailure, protoArg string, maxSteps int) (string, error) {
	if maxSteps == 0 {
		maxSteps = 10_000
	}
	t := consensus.BuildChaosTrace(rep, f, maxSteps)
	t.ProtoArg = protoArg
	data, err := t.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-%s-run%05d.json", protoArg, rep.Problem.Name(), f.RunIndex)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func renderInputs(inputs []consensus.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == consensus.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
