// Command ccexp runs the reproduction experiments E1–E9, one per figure or
// quantitative claim of the paper, printing the paper's claim next to what
// the implementation measured. The output of a full run is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	ccexp               # all experiments, exhaustive
//	ccexp -quick        # all experiments, skipping the exhaustive passes
//	ccexp -e E4         # a single experiment
//	ccexp -deep         # add the N=4 failure-free solver checks to E1–E3
//	ccexp -parallel 4   # explore with 4 workers (identical results)
//	ccexp -timeout 30s  # bound the wall clock; partial reports, exit 3
//	ccexp -reduce both  # reduced conformance passes; with -deep, also
//	                    # the star(4) one-failure cell (infeasible unreduced)
//
// Exit codes follow the cccheck convention: 0 all ok, 1 a measurement
// failed, 3 the timeout expired and the reports cover a prefix only.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	consensus "repro"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which    = flag.String("e", "all", "experiment to run: E1..E9 or all")
		quick    = flag.Bool("quick", false, "skip the exhaustive model-checking passes")
		deep     = flag.Bool("deep", false, "add the N=4 failure-free solver checks to E1–E3 (ignored with -quick)")
		parallel = flag.Int("parallel", 0, "exploration worker count (0 = GOMAXPROCS); results are identical at any setting")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); on expiry partial reports are printed and the exit code is 3")
		reduce   = flag.String("reduce", "none", "state-space reduction for the conformance passes: none, ample, symmetry, both; verdicts are unchanged, and -deep additionally runs the star(4) one-failure cell")
	)
	flag.Parse()

	red, err := consensus.ParseReduction(*reduce)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccexp: %v\n", err)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := consensus.ExperimentOptions{Quick: *quick, Deep: *deep, Parallelism: *parallel, Context: ctx, Reduction: red}
	runners := map[string]func(experiments.Options) experiments.Report{
		"E1": experiments.E1Figure1Tree,
		"E2": experiments.E2Figure2Star,
		"E3": experiments.E3Figure3Chain,
		"E4": experiments.E4Figure4Perverse,
		"E5": experiments.E5Lattice,
		"E6": experiments.E6Theorem7,
		"E7": experiments.E7Theorem2,
		"E8": experiments.E8MessageComplexity,
		"E9": experiments.E9Transforms,
	}

	total := 1
	var reports []consensus.ExperimentReport
	if strings.EqualFold(*which, "all") {
		total = len(runners)
		reports = consensus.Experiments(opts)
	} else {
		f, ok := runners[strings.ToUpper(*which)]
		if !ok {
			fmt.Fprintf(os.Stderr, "ccexp: unknown experiment %q (want E1..E9 or all)\n", *which)
			return 1
		}
		reports = []consensus.ExperimentReport{f(opts)}
	}

	failed, partial := 0, 0
	for _, r := range reports {
		fmt.Println(r)
		switch {
		case r.Partial:
			partial++
		case !r.OK:
			failed++
		}
	}
	if skipped := total - len(reports); skipped > 0 {
		fmt.Printf("TIMEOUT: %d experiment(s) not started\n", skipped)
	}
	switch {
	case failed > 0:
		fmt.Fprintf(os.Stderr, "ccexp: %d experiment(s) failed\n", failed)
		return 1
	case partial > 0 || total > len(reports):
		fmt.Printf("%d experiment(s) ran before the timeout; results are partial\n", len(reports))
		return 3
	default:
		fmt.Printf("%d experiment(s) ok\n", len(reports))
		return 0
	}
}
