// Command ccexp runs the reproduction experiments E1–E9, one per figure or
// quantitative claim of the paper, printing the paper's claim next to what
// the implementation measured. The output of a full run is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	ccexp               # all experiments, exhaustive
//	ccexp -quick        # all experiments, skipping the exhaustive passes
//	ccexp -e E4         # a single experiment
//	ccexp -deep         # add the N=4 failure-free solver checks to E1–E3
//	ccexp -parallel 4   # explore with 4 workers (identical results)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	consensus "repro"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccexp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which    = flag.String("e", "all", "experiment to run: E1..E9 or all")
		quick    = flag.Bool("quick", false, "skip the exhaustive model-checking passes")
		deep     = flag.Bool("deep", false, "add the N=4 failure-free solver checks to E1–E3 (ignored with -quick)")
		parallel = flag.Int("parallel", 0, "exploration worker count (0 = GOMAXPROCS); results are identical at any setting")
	)
	flag.Parse()

	opts := consensus.ExperimentOptions{Quick: *quick, Deep: *deep, Parallelism: *parallel}
	runners := map[string]func(experiments.Options) experiments.Report{
		"E1": experiments.E1Figure1Tree,
		"E2": experiments.E2Figure2Star,
		"E3": experiments.E3Figure3Chain,
		"E4": experiments.E4Figure4Perverse,
		"E5": experiments.E5Lattice,
		"E6": experiments.E6Theorem7,
		"E7": experiments.E7Theorem2,
		"E8": experiments.E8MessageComplexity,
		"E9": experiments.E9Transforms,
	}

	var reports []consensus.ExperimentReport
	if strings.EqualFold(*which, "all") {
		reports = consensus.Experiments(opts)
	} else {
		f, ok := runners[strings.ToUpper(*which)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E9 or all)", *which)
		}
		reports = []consensus.ExperimentReport{f(opts)}
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	fmt.Printf("%d experiment(s) ok\n", len(reports))
	return nil
}
