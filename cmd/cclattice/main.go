// Command cclattice derives and prints the paper's closing diagram: the
// relation among the six consensus problems {WT, ST, HT} × {IC, TC} under
// the unanimity decision rule, together with the base facts. With -verify
// it first runs the machine-checked witnesses (scenario replays, scheme
// facts, and — with -exhaustive — the full model-checking passes).
//
// Usage:
//
//	cclattice
//	cclattice -verify
//	cclattice -verify -exhaustive
package main

import (
	"flag"
	"fmt"
	"os"

	consensus "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cclattice:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		verify     = flag.Bool("verify", false, "run the machine-checked witnesses")
		exhaustive = flag.Bool("exhaustive", false, "include the exhaustive model-checking witnesses (slower)")
		parallel   = flag.Int("parallel", 0, "worker count for the exhaustive explorations (0 = GOMAXPROCS); results are byte-identical at any setting")
	)
	flag.Parse()

	l := consensus.BuildLattice()
	if *verify {
		l.Evidence = consensus.Witnesses(consensus.WitnessOptions{Exhaustive: *exhaustive, Parallelism: *parallel})
	}
	fmt.Print(l.Render())
	if *verify {
		for _, ev := range l.Evidence {
			if !ev.OK {
				return fmt.Errorf("witness failed: %s", ev.Name)
			}
		}
		fmt.Println("\nall witnesses verified")
	}
	return nil
}
