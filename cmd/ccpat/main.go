// Command ccpat runs a consensus protocol and prints its communication
// pattern — the partial order <_I on message triples (p, q, k) — as a
// layered ASCII diagram or Graphviz DOT. With -scheme it instead enumerates
// every failure-free pattern of the protocol.
//
// Usage:
//
//	ccpat -proto tree -n 7 -inputs 1111111
//	ccpat -proto chain -n 4 -inputs 1011 -dot
//	ccpat -proto perverse -inputs 1111 -scheme
//	ccpat -proto haltingcommit -n 5 -inputs 11111 -fail 0:4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	consensus "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccpat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protoName = flag.String("proto", "tree", "protocol: "+strings.Join(consensus.ProtocolNames(), ", "))
		n         = flag.Int("n", 7, "number of processors")
		inputsStr = flag.String("inputs", "", "input vector, e.g. 1011 (default: all ones)")
		seed      = flag.Int64("seed", 1, "scheduler seed")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
		schemeAll = flag.Bool("scheme", false, "enumerate all failure-free patterns for the inputs")
		failSpec  = flag.String("fail", "", "failure injections proc:afterStep, comma separated, e.g. 0:4,2:9")
		trace     = flag.Bool("trace", false, "print the full event trace of the run")
		parallel  = flag.Int("parallel", 0, "worker count for -scheme enumeration (0 = GOMAXPROCS); results are byte-identical at any setting")
	)
	flag.Parse()

	proto, err := consensus.ProtocolByName(*protoName, *n)
	if err != nil {
		return err
	}
	inputs := make([]consensus.Bit, proto.N())
	for i := range inputs {
		inputs[i] = consensus.One
	}
	if *inputsStr != "" {
		inputs, err = consensus.ParseInputs(*inputsStr)
		if err != nil {
			return err
		}
		if len(inputs) != proto.N() {
			return fmt.Errorf("protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
		}
	}

	if *schemeAll {
		set, err := consensus.EnumeratePatterns(proto, inputs, consensus.SchemeOptions{Parallelism: *parallel})
		if err != nil {
			return err
		}
		fmt.Printf("%s on inputs %s: %d failure-free pattern(s)\n\n", proto.Name(), render(inputs), set.Len())
		for i, p := range set.Patterns() {
			fmt.Printf("pattern %d (%d messages, depth %d):\n%s\n", i+1, p.Size(), p.Depth(), p.RenderASCII())
		}
		return nil
	}

	failures, err := parseFailures(*failSpec)
	if err != nil {
		return err
	}
	runResult, err := consensus.RunWithOptions(proto, inputs, consensus.RunnerOptions{Seed: *seed, Failures: failures})
	if err != nil {
		return err
	}
	fmt.Printf("%s on inputs %s (seed %d): %d events, %d messages\n",
		proto.Name(), render(inputs), *seed, runResult.Steps(), runResult.MessagesSent())
	for p := 0; p < proto.N(); p++ {
		pid := consensus.ProcID(p)
		status := "undecided"
		if d, ok := runResult.DecisionOf(pid); ok {
			status = d.String()
		}
		if !runResult.Nonfaulty(pid) {
			status += " (failed)"
		}
		fmt.Printf("  %s: %s\n", pid, status)
	}
	if *trace {
		fmt.Println()
		for _, line := range runResult.Trace() {
			fmt.Println(line)
		}
	}
	pat := consensus.PatternOf(runResult)
	fmt.Println()
	if *dot {
		fmt.Print(pat.RenderDOT(proto.Name()))
	} else {
		fmt.Print(pat.RenderASCII())
	}
	return nil
}

func parseFailures(spec string) ([]consensus.FailureAt, error) {
	if spec == "" {
		return nil, nil
	}
	var out []consensus.FailureAt
	for _, part := range strings.Split(spec, ",") {
		bits := strings.SplitN(part, ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad failure spec %q (want proc:afterStep)", part)
		}
		proc, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad processor in %q: %w", part, err)
		}
		step, err := strconv.Atoi(bits[1])
		if err != nil {
			return nil, fmt.Errorf("bad step in %q: %w", part, err)
		}
		out = append(out, consensus.FailureAt{Proc: consensus.ProcID(proc), AfterStep: step})
	}
	return out, nil
}

func render(inputs []consensus.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == consensus.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
