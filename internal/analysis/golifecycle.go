package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifecycleAnalyzer ties every `go` statement to a join mechanism. The
// checker and the live runtime are only deterministic up to the schedule if
// every goroutine's lifetime is bracketed: a fire-and-forget goroutine can
// outlive the run that spawned it and mutate shared state while the next
// run (or the test binary's exit) is underway — nondeterminism the model
// cannot express. Accepted lifecycle patterns:
//
//   - sync.WaitGroup: an `Add` call textually dominating the `go` statement
//     in the spawning function, with `defer wg.Done()` on the *same*
//     WaitGroup inside the spawned body (matched by variable or field
//     identity, so `nw.wg.Add(1)` in one method pairs with
//     `defer nw.wg.Done()` in another);
//   - done-channel / context: the spawned body receives from (or ranges
//     over) a channel created outside the body — a stop channel, a work
//     queue, or `<-ctx.Done()` — so closing the channel or canceling the
//     context bounds the goroutine;
//   - a callee outside the package, given a channel or context.Context
//     argument (the lifecycle lives behind the call boundary).
//
// Two defect shapes are reported: a goroutine with no join mechanism at
// all, and the classic race of calling `wg.Add` *inside* the spawned body,
// where it can run after `Wait` has already returned.
var GoLifecycleAnalyzer = &Analyzer{
	Name: "golifecycle",
	Doc:  "every go statement needs a join: WaitGroup Add-before/deferred-Done, or an externally created done-channel/context reaching the body",
	Run:  runGoLifecycle,
}

func runGoLifecycle(pass *Pass) {
	// Same-package callee bodies, so `go nd.heartbeats(stop)` can be
	// checked against the callee's actual statements.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, decls, fd, gs)
				}
				return true
			})
		}
	}
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, enclosing *ast.FuncDecl, gs *ast.GoStmt) {
	// Resolve the spawned body: a literal, or a same-package declaration.
	var body *ast.BlockStmt
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calleeFunc(pass.Info, gs.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				body = fd.Body
			}
		}
	}

	if body == nil {
		// Foreign callee: accept a channel or context argument as the join
		// handle; anything else is opaque fire-and-forget.
		for _, arg := range gs.Call.Args {
			if t := typeOf(pass.Info, arg); t != nil && (isChanType(t) || isContextType(t)) {
				return
			}
		}
		pass.Reportf(gs.Pos(), "goroutine calls %s with no visible join mechanism; pass a done-channel/context or manage it with a sync.WaitGroup", exprString(gs.Call.Fun))
		return
	}

	// Defect: Add inside the spawned body races with Wait.
	for _, call := range shallowCalls(body) {
		if name, wgExpr, ok := waitGroupMethod(pass.Info, call); ok && name == "Add" {
			pass.Reportf(call.Pos(), "sync.WaitGroup.Add on %s inside the spawned goroutine races with Wait; Add must dominate the go statement", exprString(wgExpr))
		}
	}

	// Pattern 1: deferred Done on a WaitGroup whose Add dominates the go.
	var doneWGs []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if name, wgExpr, ok := waitGroupMethod(pass.Info, ds.Call); ok && name == "Done" {
			if obj := wgIdentity(pass.Info, wgExpr); obj != nil {
				doneWGs = append(doneWGs, obj)
			}
		}
		return true
	})
	if len(doneWGs) > 0 {
		adds := precedingAdds(pass.Info, enclosing, gs.Pos())
		for _, wg := range doneWGs {
			if adds[wg] {
				return
			}
		}
		pass.Reportf(gs.Pos(), "goroutine defers WaitGroup.Done but no Add on the same WaitGroup dominates the go statement in %s", enclosing.Name.Name)
		return
	}

	// Pattern 2: the body receives from an externally created channel.
	if receivesExternalChan(pass.Info, body) {
		return
	}

	pass.Reportf(gs.Pos(), "fire-and-forget goroutine: no WaitGroup Add/Done pair and no receive from an externally created done-channel/context")
}

// calleeFunc resolves the called function object of a go statement's call.
// Methods of generic types (and generic functions) resolve to their
// instantiation; Origin maps them back to the declaration the decls map is
// keyed by, so `go p.worker(i)` on a Pool[S, E] still gets its body checked.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn != nil {
		fn = fn.Origin()
	}
	return fn
}

// shallowCalls collects call expressions in a body without descending into
// nested function literals (their statements run on yet another goroutine
// or a later call, not this one).
func shallowCalls(body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// waitGroupMethod matches a call of sync.WaitGroup's Add/Done/Wait and
// returns the method name and the WaitGroup-valued receiver expression.
func waitGroupMethod(info *types.Info, call *ast.CallExpr) (name string, wgExpr ast.Expr, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", nil, false
	}
	recvT := sig.Recv().Type()
	if p, isPtr := recvT.(*types.Pointer); isPtr {
		recvT = p.Elem()
	}
	named, isNamed := recvT.(*types.Named)
	if !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", nil, false
	}
	return fn.Name(), sel.X, true
}

// wgIdentity names a WaitGroup-valued expression by the variable or struct
// field holding it, so the same WaitGroup is recognized through different
// receiver names (`nw.wg` in Send vs `nw.wg` in deliverLoop).
func wgIdentity(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return originVar(v)
			}
		}
	case *ast.StarExpr:
		return wgIdentity(info, x.X)
	case *ast.UnaryExpr:
		return wgIdentity(info, x.X)
	}
	return nil
}

// precedingAdds collects the WaitGroups with an Add call textually before
// pos in the enclosing declaration, skipping Adds inside other spawned
// goroutines.
func precedingAdds(info *types.Info, fd *ast.FuncDecl, pos token.Pos) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if _, isLit := unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if name, wgExpr, ok := waitGroupMethod(info, call); ok && name == "Add" {
			if obj := wgIdentity(info, wgExpr); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// receivesExternalChan reports whether the body (not counting nested
// function literals) receives from or ranges over a channel whose root
// variable is created outside the body — a done-channel, stop channel, or
// work queue that some outside owner can close.
func receivesExternalChan(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && chanRootExternal(info, x.X, body) {
				found = true
			}
		case *ast.RangeStmt:
			if t := typeOf(info, x.X); t != nil && isChanType(t) && chanRootExternal(info, x.X, body) {
				found = true
			}
		}
		return !found
	})
	return found
}

// chanRootExternal reports whether the channel expression is rooted at an
// object declared outside the body: a parameter, a captured local, a field
// of a captured value, or the receiver of a method call (`ctx.Done()`).
func chanRootExternal(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	obj := chanRoot(info, e)
	return obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End())
}

func chanRoot(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return chanRoot(info, x.X)
	case *ast.IndexExpr:
		return chanRoot(info, x.X)
	case *ast.StarExpr:
		return chanRoot(info, x.X)
	case *ast.CallExpr:
		// `<-ctx.Done()`: the lifecycle handle is the call's receiver.
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			return chanRoot(info, sel.X)
		}
	}
	return nil
}

// isChanType reports whether the type is (or points to) a channel.
func isChanType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether the type is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
