package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRangeAnalyzer flags `range` over a map in the determinism-critical
// packages. Go randomizes map iteration order, so a map range anywhere on
// the path from protocol execution to a trace, scheme, or decision is a
// standing nondeterminism hazard — exactly the class of modeling bug a
// TLA+-style spec excludes by construction. The paper's replay arguments
// (Theorems 8 and 13) and the checker's reproducibility depend on runs being
// functions of the schedule alone.
//
// The one recognized idiom is collect-then-sort: a loop whose body only
// appends keys/values to slices (possibly behind `if` filters or
// `continue`), with every collected slice passed to a sort call in the
// statements immediately following the loop. Anything else needs either a
// rewrite or an explicit //ccvet:ignore detrange <reason> stating why the
// loop body is order-insensitive.
var DetRangeAnalyzer = &Analyzer{
	Name:      "detrange",
	Doc:       "map iteration order must never reach a trace, scheme, or decision: collect and sort, or justify with an ignore",
	AppliesTo: detRangeApplies,
	Run:       runDetRange,
}

// detRangePackages are the module-relative package trees whose determinism
// the model depends on.
var detRangePackages = []string{
	"internal/sim",
	"internal/checker",
	"internal/pattern",
	"internal/scheme",
	"internal/core",
	"internal/chaos",
	"internal/frontier",
	"internal/runtime",
	"internal/taxonomy",
	"cmd/ccchaos",
	"cmd/cclive",
	"cmd/ccbench",
	"cmd/cclattice",
	"cmd/ccpat",
}

func detRangeApplies(relPath string) bool {
	for _, p := range detRangePackages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

func runDetRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, s := range list {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := typeOf(pass.Info, rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if isCollectAndSort(pass, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "iteration over map %s is nondeterministic; collect the keys into a slice and sort it first",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
}

// stmtList returns the statement list a node owns, so that a range statement
// can be inspected together with the statements that follow it.
func stmtList(n ast.Node) []ast.Stmt {
	switch x := n.(type) {
	case *ast.BlockStmt:
		return x.List
	case *ast.CaseClause:
		return x.Body
	case *ast.CommClause:
		return x.Body
	}
	return nil
}

// isCollectAndSort recognizes the sorted-iteration idiom: the body only
// appends to slices, and every appended slice is sorted by the consecutive
// sort calls directly after the loop.
func isCollectAndSort(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	appended := map[types.Object]bool{}
	if !collectOnly(pass, rs.Body.List, appended) || len(appended) == 0 {
		return false
	}
	for _, s := range following {
		obj, ok := sortCallTarget(pass, s)
		if !ok {
			break
		}
		delete(appended, obj)
	}
	return len(appended) == 0
}

// collectOnly reports whether every statement is an append accumulation
// (`xs = append(xs, …)`), an if-guard around such statements, or a continue,
// recording the appended slice variables.
func collectOnly(pass *Pass, stmts []ast.Stmt, appended map[types.Object]bool) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, ok := unparen(st.Lhs[0]).(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return false
			}
			fn, ok := unparen(call.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			if b, ok := pass.Info.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
				return false
			}
			arg0, ok := unparen(call.Args[0]).(*ast.Ident)
			if !ok || pass.Info.ObjectOf(arg0) != pass.Info.ObjectOf(lhs) {
				return false
			}
			appended[pass.Info.ObjectOf(lhs)] = true
		case *ast.IfStmt:
			if st.Init != nil {
				return false
			}
			if !collectOnly(pass, st.Body.List, appended) {
				return false
			}
			if st.Else != nil {
				eb, ok := st.Else.(*ast.BlockStmt)
				if !ok || !collectOnly(pass, eb.List, appended) {
					return false
				}
			}
		case *ast.BranchStmt:
			if st.Tok.String() != "continue" || st.Label != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortCallTarget matches a statement of the form sort.X(slice, …) or
// slices.Sort*(slice, …) and returns the sorted slice's object.
func sortCallTarget(pass *Pass, s ast.Stmt) (types.Object, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	pkgID, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := pass.Info.ObjectOf(pkgID).(*types.PkgName)
	if !ok {
		return nil, false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return nil, false
		}
	case "slices":
		if !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return nil, false
		}
	default:
		return nil, false
	}
	arg0, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Info.ObjectOf(arg0)
	if obj == nil {
		return nil, false
	}
	return obj, true
}
