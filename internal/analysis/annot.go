package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file holds the annotation grammar shared by the concurrency
// analyzers:
//
//	// ccvet:guardedby <field>     on a struct field: the field may only be
//	                               accessed while the sibling mutex <field>
//	                               is held (read accesses need at least a
//	                               read lock, writes the exclusive lock).
//	//ccvet:holds <field>          on a function or method doc comment: the
//	                               body is entered with the receiver's
//	                               mutex <field> already held exclusively;
//	                               lockguard checks the *call sites* instead.
//
// Both markers accept the spaced (`// ccvet:guardedby mu`) and unspaced
// (`//ccvet:guardedby mu`) comment forms, like //ccvet:ignore.

const (
	guardedByMarker = "ccvet:guardedby"
	holdsMarker     = "ccvet:holds"
)

// markerArg extracts the argument of an annotation marker from one comment,
// returning ok=false if the comment is not that marker.
func markerArg(text, marker string) (arg string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest := text[len(marker):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. ccvet:guardedbyx
	}
	// Only the first token is the argument; trailing prose is welcome
	// (`// ccvet:guardedby mu — why`).
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// guardedField describes one // ccvet:guardedby annotation: the guard is a
// sibling field of mutex type in the same struct.
type guardedField struct {
	guard  string // sibling mutex field name
	rwLock bool   // guard is a sync.RWMutex (read locks exist)
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex, and which.
func isMutexType(t types.Type) (mutex, rw bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// collectGuarded walks the package's struct declarations for
// // ccvet:guardedby annotations. It returns a map from the annotated field
// object to its guard, reporting malformed annotations (missing argument, or
// a guard that is not a sibling mutex field) through the pass.
func collectGuarded(pass *Pass) map[*types.Var]guardedField {
	out := map[*types.Var]guardedField{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Index the struct's mutex fields first so guards can be
			// validated whatever the field order.
			mutexes := map[string]bool{} // name → isRW
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						if m, rw := isMutexType(v.Type()); m {
							mutexes[name.Name] = rw
						}
					}
				}
			}
			for _, fld := range st.Fields.List {
				arg, pos, found := fieldAnnotation(fld, guardedByMarker)
				if !found {
					continue
				}
				if arg == "" {
					pass.Reportf(pos, "malformed guardedby annotation: want // ccvet:guardedby <mutex field>")
					continue
				}
				rw, isMu := mutexes[arg]
				if !isMu {
					pass.Reportf(pos, "guardedby names %q, which is not a sibling sync.Mutex/RWMutex field", arg)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[originVar(v)] = guardedField{guard: arg, rwLock: rw}
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldAnnotation scans a struct field's doc and trailing comments for one
// marker, returning its argument and position.
func fieldAnnotation(fld *ast.Field, marker string) (arg string, pos token.Pos, found bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if a, ok := markerArg(c.Text, marker); ok {
				return a, c.Pos(), true
			}
		}
	}
	return "", 0, false
}

// collectHolds gathers //ccvet:holds annotations: map from the annotated
// function object to the receiver mutex fields its callers must hold.
// Annotations on functions without a named receiver, or naming a non-mutex
// field, are reported as malformed.
func collectHolds(pass *Pass) map[*types.Func][]string {
	out := map[*types.Func][]string{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				arg, isHolds := markerArg(c.Text, holdsMarker)
				if !isHolds {
					continue
				}
				if arg == "" {
					pass.Reportf(c.Pos(), "malformed holds annotation: want //ccvet:holds <mutex field>")
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				recv := receiverVar(pass, fd)
				if recv == nil {
					pass.Reportf(c.Pos(), "holds annotation on %s, which has no named receiver", fd.Name.Name)
					continue
				}
				if !receiverHasMutexField(recv, arg) {
					pass.Reportf(c.Pos(), "holds names %q, which is not a sync.Mutex/RWMutex field of the receiver", arg)
					continue
				}
				out[fn] = append(out[fn], arg)
			}
		}
	}
	return out
}

// receiverVar returns the declaration's named receiver variable, or nil.
func receiverVar(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	v, _ := pass.Info.Defs[name].(*types.Var)
	return v
}

// receiverHasMutexField reports whether the receiver's base struct type has
// a mutex field with the given name.
func receiverHasMutexField(recv *types.Var, field string) bool {
	t := recv.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == field {
			m, _ := isMutexType(f.Type())
			return m
		}
	}
	return false
}

// originVar normalizes a field var of a generic instantiation to its origin
// declaration, so annotations collected on the generic struct match
// accesses through instantiated types.
func originVar(v *types.Var) *types.Var {
	if o := v.Origin(); o != nil {
		return o
	}
	return v
}

// accessPath renders the dotted-and-indexed path of an expression rooted at
// an identifier, for matching a guarded-field access against the lock that
// protects it: `sh.m` → "sh.m", `v.shards[i].m` → "v.shards[i].m". Index
// expressions with non-trivial indexes (calls, arithmetic) have no stable
// path and yield ok=false — alias the element to a local first, which is
// also the idiom the repo uses.
func accessPath(info *types.Info, e ast.Expr) (root types.Object, path string, ok bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return nil, "", false
		}
		return obj, x.Name, true
	case *ast.SelectorExpr:
		root, base, ok := accessPath(info, x.X)
		if !ok {
			return nil, "", false
		}
		return root, base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return accessPath(info, x.X)
	case *ast.StarExpr:
		return accessPath(info, x.X)
	case *ast.UnaryExpr:
		return accessPath(info, x.X)
	case *ast.IndexExpr:
		root, base, ok := accessPath(info, x.X)
		if !ok {
			return nil, "", false
		}
		switch idx := unparen(x.Index).(type) {
		case *ast.Ident:
			return root, base + "[" + idx.Name + "]", true
		case *ast.BasicLit:
			return root, base + "[" + idx.Value + "]", true
		}
		return nil, "", false
	}
	return nil, "", false
}
