// Package analysis is a dependency-free static-analysis framework that
// machine-checks the model contracts of the Dwork & Skeen reproduction.
//
// The paper's model demands that all nondeterminism live in the schedule:
// protocol transition functions δ (Receive) and β (SendStep) must be pure,
// the simulator/checker/pattern layers must be deterministic so that runs,
// schemes, and the indistinguishability replays of Theorems 8 and 13 are
// reproducible, and processors may never send messages to themselves. Those
// contracts used to exist only as doc comments; this package enforces them
// with repo-specific analyzers built on go/ast and go/types alone (no
// golang.org/x/tools dependency — go.mod stays empty).
//
// The analyzers are:
//
//   - purity: flags transition-function bodies (Init/Receive/SendStep of any
//     sim.Protocol implementation) that write through pointer receivers,
//     mutate maps/slices reachable from their arguments, or touch
//     package-level mutable variables.
//   - detrange: flags `range` over a map in the determinism-critical
//     packages unless the keys are collected and immediately sorted.
//   - selfsend: flags construction of a sim.Envelope whose destination is
//     provably the sending processor's own ProcID.
//   - errdrop: flags discarded error results from functions defined in this
//     module.
//   - lockguard: fields annotated `// ccvet:guardedby mu` may only be
//     accessed while the sibling mutex is held on every path to the access
//     (reads need the read lock, writes the exclusive lock); `//ccvet:holds
//     mu` moves the obligation to call sites.
//   - golifecycle: every go statement needs a join — WaitGroup Add
//     dominating the spawn with Done deferred in the body, or a receive
//     from an externally created done-channel/context.
//   - atomicmix: a variable accessed through sync/atomic must be accessed
//     atomically everywhere; atomic.* box values must not be copied.
//   - wallclock: no time.Now/Sleep/timers and no math/rand global state in
//     the determinism-critical packages; randomness flows from seeded
//     sources only.
//
// Findings can be suppressed with a comment of the form
//
//	//ccvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// which applies to the line it is on and to the line directly below it. The
// reason is mandatory; a bare ignore is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one model contract over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's short name, used in findings and ignore
	// comments.
	Name string
	// Doc describes the contract the analyzer enforces.
	Doc string
	// AppliesTo restricts the analyzer to packages whose module-relative
	// path matches; nil means every package.
	AppliesTo func(relPath string) bool
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the import path of the module under analysis; errdrop
	// uses it to decide which callees are repo functions.
	ModulePath string

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsModulePath reports whether an import path belongs to the module under
// analysis.
func (p *Pass) IsModulePath(path string) bool {
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// Finding is one reported contract violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as "file:line: [analyzer] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// DefaultAnalyzers returns the full ccvet suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		PurityAnalyzer, DetRangeAnalyzer, SelfSendAnalyzer, ErrDropAnalyzer,
		LockGuardAnalyzer, GoLifecycleAnalyzer, AtomicMixAnalyzer, WallClockAnalyzer,
	}
}

// RunAnalyzer runs one analyzer over one package and returns its findings
// with ignore comments already applied. It is the entry point shared by the
// module driver and the fixture tests.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, modulePath string) []Finding {
	pass := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ModulePath: modulePath,
	}
	a.Run(pass)
	return ApplyIgnores(fset, files, pass.findings)
}

// ignoreDirective is one parsed //ccvet:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
}

func (d ignoreDirective) covers(f Finding) bool {
	if f.Pos.Filename != d.file || (f.Pos.Line != d.line && f.Pos.Line != d.line+1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == f.Analyzer {
			return true
		}
	}
	return false
}

const ignoreMarker = "ccvet:ignore"

// parseIgnores extracts every ignore directive from the files. Malformed
// directives (no analyzer name or no reason) are returned as findings so
// that a bare suppression cannot silently disable the suite.
func parseIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Finding) {
	var dirs []ignoreDirective
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignoreMarker))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "ccvet",
						Message:  "malformed ignore comment: want //ccvet:ignore <analyzer>[,<analyzer>...] <reason>",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return dirs, bad
}

// ApplyIgnores filters findings through the files' //ccvet:ignore comments
// and appends a finding for every malformed ignore. The result is sorted by
// position.
func ApplyIgnores(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	dirs, bad := parseIgnores(fset, files)
	out := make([]Finding, 0, len(findings)+len(bad))
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.covers(f) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	out = append(out, bad...)
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, analyzer, and message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathOf returns the root object and dotted access path of an expression
// rooted at a plain identifier: `s` → (s, "s"), `s.out` → (s, "s.out").
// Expressions not rooted at an identifier (calls, literals, indexing) have
// no path.
func pathOf(info *types.Info, e ast.Expr) (types.Object, string) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			return obj, x.Name
		}
	case *ast.SelectorExpr:
		obj, base := pathOf(info, x.X)
		if obj != nil {
			return obj, base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return pathOf(info, x.X)
	}
	return nil, ""
}

// typeOf returns the type of an expression, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isPointer reports whether the expression has pointer type.
func isPointer(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
