package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// WallClockAnalyzer keeps wall-clock time and global randomness out of the
// determinism-critical packages. The paper's model has no clocks: a run is
// a function of the schedule alone, and the differential suites, scheme
// caches, and trace-replay conformance all assume that re-executing a
// schedule reproduces the run byte for byte. A single time.Now or
// math/rand global-state call on those paths is hidden nondeterminism the
// adversary/schedule cannot express. All time must be logical (ticks,
// sequence numbers) and all randomness must flow from a seeded source
// constructed with rand.New(rand.NewSource(seed)) — constructor calls
// (New*) stay legal, the shared global source does not.
//
// The live halves of runtime/chaos measure real latencies by design and
// are exempt; their replay/conformance halves (frame encoding, trace
// conformance) are covered.
var WallClockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "no wall-clock reads, timers, or math/rand global state in determinism-critical packages; use logical time and seeded sources",
	AppliesTo: wallClockApplies,
	Run:       runWallClock,
}

// wallClockPackages are the package trees where every file is covered.
var wallClockPackages = []string{
	"internal/sim",
	"internal/checker",
	"internal/scheme",
	"internal/pattern",
	"internal/fingerprint",
	"internal/transform",
	"internal/experiments",
	"internal/core",
	"internal/protocols",
	"internal/taxonomy",
	"internal/chaos",
	"internal/frontier",
	"internal/symmetry",
}

// wallClockFiles restricts coverage to named files for packages that are
// split into a live half and a replay/conformance half.
var wallClockFiles = map[string][]string{
	"internal/runtime": {"conformance.go", "frame.go", "merge.go"},
	// The link-fault plan and the wire codec must be pure so fault
	// schedules are replayable byte-for-byte; only the mesh half of netx
	// may read clocks.
	"internal/runtime/netx": {"faults.go", "wire.go"},
}

func wallClockApplies(relPath string) bool {
	if _, ok := wallClockFiles[relPath]; ok {
		return true
	}
	for _, p := range wallClockPackages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure-value helpers (time.Duration arithmetic, ParseDuration) stay legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallClock(pass *Pass) {
	relPath := strings.TrimPrefix(pass.Pkg.Path(), pass.ModulePath+"/")
	onlyFiles := wallClockFiles[relPath]
	for _, f := range pass.Files {
		if onlyFiles != nil && !fileIn(pass, f, onlyFiles) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true // type and constant references stay legal
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "wall-clock call time.%s in a determinism-critical package; use logical time derived from the schedule", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(), "global-source call rand.%s in a determinism-critical package; draw from a seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			}
			return true
		})
	}
}

// fileIn reports whether the file's basename is in the allowlist.
func fileIn(pass *Pass, f *ast.File, names []string) bool {
	base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
	for _, n := range names {
		if n == base {
			return true
		}
	}
	return false
}
