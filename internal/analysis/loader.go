package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path ("repro/internal/sim").
	Path string
	// RelPath is the path relative to the module root ("internal/sim", ""
	// for the root package).
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info
	// imports lists the module-internal import paths, for load ordering.
	imports []string
}

// Module is a whole module, parsed and type-checked once; every analyzer
// runs against it.
type Module struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the file set shared by every package.
	Fset *token.FileSet
	// Pkgs holds every package of the module, sorted by import path.
	Pkgs []*Package
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				rest = unq
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under root. The
// whole module is checked once, in dependency order, with a shared file set;
// standard-library imports are type-checked from source (stdlib-only — no
// export data or external tooling required).
func LoadModule(root string) (*Module, error) {
	root, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: path, Fset: token.NewFileSet()}

	if err := m.parseAll(); err != nil {
		return nil, err
	}
	if err := m.typeCheckAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseAll discovers and parses every package directory of the module.
func (m *Module) parseAll() error {
	byPath := map[string]*Package{}
	err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		importPath := m.Path
		if rel != "" {
			importPath += "/" + rel
		}
		pkg := byPath[importPath]
		if pkg == nil {
			pkg = &Package{Path: importPath, RelPath: rel, Dir: dir}
			byPath[importPath] = pkg
		}
		file, err := parser.ParseFile(m.Fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return err
	}
	for _, pkg := range byPath {
		sort.Slice(pkg.Files, func(i, j int) bool {
			return m.Fset.File(pkg.Files[i].Pos()).Name() < m.Fset.File(pkg.Files[j].Pos()).Name()
		})
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (ip == m.Path || strings.HasPrefix(ip, m.Path+"/")) && !seen[ip] {
					seen[ip] = true
					pkg.imports = append(pkg.imports, ip)
				}
			}
		}
		sort.Strings(pkg.imports)
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return nil
}

// typeCheckAll type-checks the parsed packages in dependency order.
func (m *Module) typeCheckAll() error {
	byPath := map[string]*Package{}
	for _, p := range m.Pkgs {
		byPath[p.Path] = p
	}
	imp := &moduleImporter{
		module: byPath,
		std:    importer.ForCompiler(m.Fset, "source", nil),
		cache:  map[string]*types.Package{},
	}

	// Topological order over module-internal imports (import cycles are
	// impossible in valid Go, but guard anyway).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		case done:
			return nil
		}
		state[p.Path] = visiting
		for _, dep := range p.imports {
			if q, ok := byPath[dep]; ok {
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}

	for _, p := range order {
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.Path, m.Fset, p.Files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", p.Path, err)
		}
		p.Types = tpkg
		p.Info = info
	}
	return nil
}

// NewInfo allocates the types.Info maps the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// moduleImporter resolves module-internal imports to the already-checked
// packages and everything else (the standard library) from source.
type moduleImporter struct {
	module map[string]*Package
	std    types.Importer
	cache  map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.module[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: %s imported before it was type-checked", path)
		}
		return p.Types, nil
	}
	if cached, ok := mi.cache[path]; ok {
		return cached, nil
	}
	pkg, err := mi.std.Import(path)
	if err != nil {
		return nil, err
	}
	mi.cache[path] = pkg
	return pkg, nil
}

// MatchPatterns resolves go-style package patterns ("./...",
// "./internal/sim", "internal/...") against the module, returning the
// selected packages. Patterns written relative to the current directory
// ("./...", ".") are anchored at the invoker's working directory, like the
// go tool, so `ccvet ./...` from a subdirectory vets that subtree only;
// "..." always means the whole module.
func (m *Module) MatchPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwdRel := "" // working directory relative to the module root
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(m.Root, wd); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			cwdRel = filepath.ToSlash(rel)
		}
	}
	selected := map[string]*Package{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		if pat == "." || pat == "./..." || strings.HasPrefix(pat, "./") {
			anchored := strings.TrimPrefix(strings.TrimPrefix(pat, "."), "/")
			switch {
			case cwdRel == "":
				pat = anchored
			case anchored == "":
				pat = cwdRel
			default:
				pat = cwdRel + "/" + anchored
			}
		}
		matched := false
		switch {
		case pat == "...":
			for _, p := range m.Pkgs {
				selected[p.Path] = p
			}
			matched = len(m.Pkgs) > 0
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			for _, p := range m.Pkgs {
				if p.RelPath == prefix || strings.HasPrefix(p.RelPath, prefix+"/") {
					selected[p.Path] = p
					matched = true
				}
			}
		default:
			for _, p := range m.Pkgs {
				if p.RelPath == pat || p.Path == pat {
					selected[p.Path] = p
					matched = true
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat)
		}
	}
	out := make([]*Package, 0, len(selected))
	for _, p := range selected {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Vet runs the analyzers over the packages matching the patterns and returns
// the surviving findings, sorted, with file names relative to the module
// root.
func (m *Module) Vet(analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	pkgs, err := m.MatchPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(p.RelPath) {
				continue
			}
			out = append(out, RunAnalyzer(a, m.Fset, p.Files, p.Types, p.Info, m.Path)...)
		}
	}
	for i := range out {
		if rel, err := filepath.Rel(m.Root, out[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			out[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	// Malformed-ignore findings are produced once per analyzer pass over the
	// same files; collapse exact duplicates.
	seen := map[string]bool{}
	dedup := out[:0]
	for _, f := range out {
		k := f.String()
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, f)
		}
	}
	out = dedup
	SortFindings(out)
	return out, nil
}
