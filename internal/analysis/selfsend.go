package analysis

import (
	"go/ast"
	"go/types"
)

// SelfSendAnalyzer flags construction of a sim.Envelope whose destination is
// provably the sending processor's own ProcID. The model forbids self-sends
// (Section 3: β_p sends to P − {p}); sim.Apply enforces this at run time
// with ErrSelfSend, but a violating protocol only fails once a test happens
// to drive it through the offending transition. This analyzer rejects the
// provable cases at vet time.
//
// Inside each Init/Receive/SendStep body, the sender is the method's first
// ProcID-typed parameter. A composite literal `Envelope{To: p, …}` (keyed or
// positional), or an assignment `env.To = p`, where the destination resolves
// to the sender — directly or through simple aliases (`q := p`) — is
// reported.
var SelfSendAnalyzer = &Analyzer{
	Name: "selfsend",
	Doc:  "processors may not send to themselves: Envelope destinations must differ from the sending ProcID",
	Run:  runSelfSend,
}

func runSelfSend(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !transitionMethodNames[fd.Name.Name] {
				continue
			}
			sender := senderParam(pass, fd)
			if sender == nil {
				continue
			}
			checkSelfSends(pass, fd, sender)
		}
	}
}

// senderParam returns the object of the method's first ProcID-typed
// parameter — the processor on whose behalf the transition runs.
func senderParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "ProcID" {
				return obj
			}
		}
	}
	return nil
}

// checkSelfSends walks the body tracking simple aliases of the sender and
// reporting Envelope constructions addressed to it.
func checkSelfSends(pass *Pass, fd *ast.FuncDecl, sender types.Object) {
	aliases := map[types.Object]bool{sender: true}

	isSender := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return aliases[pass.Info.ObjectOf(id)]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// Track aliases: `q := p` makes q the sender; any other
			// assignment to q clears it. Also catch `env.To = p`.
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if i < len(x.Rhs) {
					rhs = x.Rhs[i]
				}
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					obj := pass.Info.ObjectOf(id)
					if obj == nil || obj == sender {
						continue
					}
					if rhs != nil && isSender(rhs) {
						aliases[obj] = true
					} else {
						delete(aliases, obj)
					}
					continue
				}
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "To" && rhs != nil && isSender(rhs) {
					if isEnvelopeType(typeOf(pass.Info, sel.X)) {
						pass.Reportf(lhs.Pos(), "%s.%s: message addressed to the sending processor %s itself; the model forbids self-sends",
							receiverTypeName(fd), fd.Name.Name, sender.Name())
					}
				}
			}
		case *ast.CompositeLit:
			t := typeOf(pass.Info, x)
			if !isEnvelopeType(t) {
				return true
			}
			to := envelopeToExpr(pass, x, t)
			if to != nil && isSender(to) {
				pass.Reportf(to.Pos(), "%s.%s: Envelope addressed to the sending processor %s itself; the model forbids self-sends",
					receiverTypeName(fd), fd.Name.Name, sender.Name())
			}
		}
		return true
	})
}

// isEnvelopeType reports whether t is a named struct called Envelope with a
// To field — matching by shape keeps fixtures independent of the sim
// package.
func isEnvelopeType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Envelope" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "To" {
			return true
		}
	}
	return false
}

// envelopeToExpr extracts the expression assigned to the To field of an
// Envelope composite literal, keyed or positional.
func envelopeToExpr(pass *Pass, lit *ast.CompositeLit, t types.Type) ast.Expr {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	toIndex := -1
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "To" {
			toIndex = i
			break
		}
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "To" {
				return kv.Value
			}
			continue
		}
		if i == toIndex {
			return elt
		}
	}
	return nil
}
