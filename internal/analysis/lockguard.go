package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuardAnalyzer machine-checks the mutex conventions of the concurrent
// subsystems (the parallel frontier, the live runtime). A struct field
// annotated
//
//	m map[string]V // ccvet:guardedby mu
//
// may only be accessed while `mu` — a sibling sync.Mutex or sync.RWMutex
// field of the same struct value — is held: read accesses need at least the
// read lock, writes need the exclusive lock. The check is intra-procedural
// over a CFG-lite walk of each function body:
//
//   - lock state is tracked per access path ("sh.mu", "co.mu"), so the
//     repo's aliasing idiom `sh := &v.shards[i]; sh.mu.Lock(); sh.m[k] = …`
//     is understood — the lock call and the field access agree on the base
//     path, whichever local name the caller picked;
//   - `defer mu.Unlock()` keeps the lock held to the end of the body;
//     branches are merged conservatively (held only if held on every
//     non-terminating path), so an early `mu.Unlock(); return` does not
//     leak an unlocked state into the fall-through;
//   - function literals are analyzed with an empty lock state: a spawned or
//     escaping closure does not inherit its creator's locks;
//   - a value freshly constructed in the function (`v := &T{…}`, `new(T)`)
//     is not yet shared, so constructor initialization needs no lock;
//   - a function entered with the lock already held declares it with
//     //ccvet:holds mu on its doc comment; lockguard then requires the
//     exclusive lock at every call site instead.
//
// The paper's model makes every scheduling decision adversary-visible; an
// unguarded access is hidden nondeterminism (a data race) that would let
// live runs and parallel explorations diverge from any schedule the model
// can express, invalidating replay-based conformance.
var LockGuardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated // ccvet:guardedby mu may only be accessed with mu held (reads: RLock or Lock; writes: Lock); //ccvet:holds mu moves the obligation to call sites",
	Run:  runLockGuard,
}

// Lock levels per mutex path.
const (
	lockNone = 0
	lockRead = 1
	lockExcl = 2
)

func runLockGuard(pass *Pass) {
	guarded := collectGuarded(pass)
	holds := collectHolds(pass)
	if len(guarded) == 0 && len(holds) == 0 {
		return
	}
	lg := &lockGuard{pass: pass, guarded: guarded, holds: holds}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				lg.checkFunc(fd)
			}
		}
	}
}

type lockGuard struct {
	pass    *Pass
	guarded map[*types.Var]guardedField
	holds   map[*types.Func][]string
}

// lockEnv is the walker's state at one program point.
type lockEnv struct {
	held       map[string]int        // mutex path → lock level
	fresh      map[types.Object]bool // locals holding values not yet shared
	terminated bool                  // path ended (return / panic / branch)
}

func newLockEnv() *lockEnv {
	return &lockEnv{held: map[string]int{}, fresh: map[types.Object]bool{}}
}

func (e *lockEnv) clone() *lockEnv {
	held := make(map[string]int, len(e.held))
	for k, v := range e.held {
		held[k] = v
	}
	fresh := make(map[types.Object]bool, len(e.fresh))
	for k, v := range e.fresh {
		fresh[k] = v
	}
	return &lockEnv{held: held, fresh: fresh}
}

// merge conservatively joins alternative branch outcomes into e: a lock is
// held at the level every non-terminated branch (and, unless the branch set
// is exhaustive, e itself) guarantees. Terminated branches place no
// constraint — code after `mu.Unlock(); return` never falls through.
func (e *lockEnv) merge(exhaustive bool, branches ...*lockEnv) {
	alive := branches[:0]
	for _, b := range branches {
		if !b.terminated {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		if exhaustive {
			e.terminated = true
		}
		return
	}
	states := alive
	if !exhaustive {
		states = append(states, e)
	}
	held := map[string]int{}
	first := states[0]
	for k, v := range first.held {
		m := v
		for _, b := range states[1:] {
			if bv := b.held[k]; bv < m {
				m = bv
			}
		}
		if m > lockNone {
			held[k] = m
		}
	}
	fresh := map[types.Object]bool{}
	for k := range first.fresh {
		all := true
		for _, b := range states[1:] {
			all = all && b.fresh[k]
		}
		if all {
			fresh[k] = true
		}
	}
	e.held = held
	e.fresh = fresh
}

// invalidate drops lock and freshness facts rooted at a reassigned
// identifier.
func (e *lockEnv) invalidate(obj types.Object, name string) {
	delete(e.fresh, obj)
	for k := range e.held {
		if k == name || (len(k) > len(name) && k[:len(name)] == name && (k[len(name)] == '.' || k[len(name)] == '[')) {
			delete(e.held, k)
		}
	}
}

// checkFunc walks one declaration. A //ccvet:holds annotation seeds the
// entry state with the receiver's mutex held exclusively.
func (lg *lockGuard) checkFunc(fd *ast.FuncDecl) {
	env := newLockEnv()
	if fn, ok := lg.pass.Info.Defs[fd.Name].(*types.Func); ok {
		if guards := lg.holds[fn]; len(guards) > 0 {
			if recv := receiverName(fd); recv != "" {
				for _, g := range guards {
					env.held[recv+"."+g] = lockExcl
				}
			}
		}
	}
	lg.stmts(env, fd.Body.List)
}

// receiverName returns the declaration's receiver identifier, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func (lg *lockGuard) stmts(env *lockEnv, list []ast.Stmt) {
	for _, s := range list {
		if env.terminated {
			return
		}
		lg.stmt(env, s)
	}
}

func (lg *lockGuard) stmt(env *lockEnv, s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if lg.lockCall(env, st.X, false) {
			return
		}
		lg.expr(env, st.X)
		if isPanicCall(lg.pass, st.X) {
			env.terminated = true
		}
	case *ast.AssignStmt:
		lg.assign(env, st)
	case *ast.IncDecStmt:
		lg.writeTarget(env, st.X)
		lg.exprChildren(env, st.X)
	case *ast.DeferStmt:
		// A deferred Unlock/RUnlock keeps the lock held for the rest of
		// the body. Any other deferred call is walked normally (a deferred
		// closure runs with an unknowable lock state; analyzing it against
		// the current state is the pragmatic approximation).
		if lg.lockCall(env, st.Call, true) {
			return
		}
		lg.expr(env, st.Call)
	case *ast.GoStmt:
		// A spawned goroutine holds no locks, whatever the spawner holds.
		lg.exprList(newLockEnv(), st.Call.Args)
		if fl, ok := unparen(st.Call.Fun).(*ast.FuncLit); ok {
			lg.stmts(newLockEnv(), fl.Body.List)
		}
	case *ast.ReturnStmt:
		lg.exprList(env, st.Results)
		env.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing statement list; for the
		// merge they behave like termination of this path.
		env.terminated = true
	case *ast.BlockStmt:
		lg.stmts(env, st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			lg.stmt(env, st.Init)
		}
		lg.expr(env, st.Cond)
		body := env.clone()
		lg.stmts(body, st.Body.List)
		if st.Else != nil {
			els := env.clone()
			lg.stmt(els, st.Else)
			env.merge(true, body, els)
		} else {
			env.merge(false, body)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lg.stmt(env, st.Init)
		}
		if st.Cond != nil {
			lg.expr(env, st.Cond)
		}
		body := env.clone()
		lg.stmts(body, st.Body.List)
		if st.Post != nil && !body.terminated {
			lg.stmt(body, st.Post)
		}
		env.merge(false, body)
	case *ast.RangeStmt:
		lg.expr(env, st.X)
		body := env.clone()
		if st.Key != nil {
			lg.invalidateExpr(body, st.Key)
		}
		if st.Value != nil {
			lg.invalidateExpr(body, st.Value)
		}
		lg.stmts(body, st.Body.List)
		env.merge(false, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			lg.stmt(env, st.Init)
		}
		if st.Tag != nil {
			lg.expr(env, st.Tag)
		}
		lg.caseClauses(env, st.Body.List, hasDefaultClause(st.Body.List))
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			lg.stmt(env, st.Init)
		}
		lg.caseClauses(env, st.Body.List, hasDefaultClause(st.Body.List))
	case *ast.SelectStmt:
		var branches []*lockEnv
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				b := env.clone()
				if cc.Comm != nil {
					lg.stmt(b, cc.Comm)
				}
				lg.stmts(b, cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			env.merge(true, branches...)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lg.exprList(env, vs.Values)
					for i, name := range vs.Names {
						if obj := lg.pass.Info.Defs[name]; obj != nil {
							env.invalidate(obj, name.Name)
							if i < len(vs.Values) && isFreshExpr(vs.Values[i]) {
								env.fresh[obj] = true
							}
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		lg.stmt(env, st.Stmt)
	case *ast.SendStmt:
		lg.expr(env, st.Chan)
		lg.expr(env, st.Value)
	}
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (lg *lockGuard) caseClauses(env *lockEnv, list []ast.Stmt, exhaustive bool) {
	var branches []*lockEnv
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok {
			b := env.clone()
			lg.exprList(b, cc.List)
			lg.stmts(b, cc.Body)
			branches = append(branches, b)
		}
	}
	if len(branches) > 0 {
		env.merge(exhaustive, branches...)
	}
}

// assign handles write checks, alias invalidation, and freshness.
func (lg *lockGuard) assign(env *lockEnv, st *ast.AssignStmt) {
	lg.exprList(env, st.Rhs)
	for i, lhs := range st.Lhs {
		lg.writeTarget(env, lhs)
		lg.exprChildren(env, lhs)
		if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := lg.pass.Info.ObjectOf(id); obj != nil {
				env.invalidate(obj, id.Name)
				if len(st.Lhs) == len(st.Rhs) && isFreshExpr(st.Rhs[i]) {
					env.fresh[obj] = true
				}
			}
		}
	}
}

// invalidateExpr clears facts for a range variable.
func (lg *lockGuard) invalidateExpr(env *lockEnv, e ast.Expr) {
	if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
		if obj := lg.pass.Info.ObjectOf(id); obj != nil {
			env.invalidate(obj, id.Name)
		}
	}
}

// isFreshExpr recognizes constructions of values not yet shared with any
// other goroutine: composite literals, their addresses, and new(T).
func isFreshExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// lockCall recognizes and applies `path.Lock()` / `RLock` / `Unlock` /
// `RUnlock` on a sync.Mutex or sync.RWMutex. Deferred unlocks keep the
// lock held; deferred locks are nonsensical and ignored.
func (lg *lockGuard) lockCall(env *lockEnv, e ast.Expr, deferred bool) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := lg.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recvT := sig.Recv().Type()
	if p, ok := recvT.(*types.Pointer); ok {
		recvT = p.Elem()
	}
	if m, _ := isMutexType(recvT); !m {
		return false
	}
	_, path, ok := accessPath(lg.pass.Info, sel.X)
	if !ok {
		return true // a lock on an unresolvable path changes nothing we track
	}
	switch fn.Name() {
	case "Lock":
		if !deferred {
			env.held[path] = lockExcl
		}
	case "RLock":
		if !deferred && env.held[path] < lockRead {
			env.held[path] = lockRead
		}
	case "Unlock", "RUnlock":
		if !deferred {
			delete(env.held, path)
		}
	default:
		return false // TryLock etc.: conditional, not modeled
	}
	return true
}

// expr walks one expression: guarded reads, holds call sites, nested
// literals, and lock calls in sub-expressions.
func (lg *lockGuard) expr(env *lockEnv, e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		// An escaping closure runs with unknown locks: analyze with none.
		lg.stmts(newLockEnv(), x.Body.List)
		return
	case *ast.SelectorExpr:
		lg.checkAccess(env, x, false)
		lg.expr(env, x.X)
		return
	case *ast.CallExpr:
		lg.checkHoldsCall(env, x)
		// Builtin delete/clear mutate their map argument.
		if id, ok := unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := lg.pass.Info.ObjectOf(id).(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") && len(x.Args) > 0 {
				lg.writeTarget(env, x.Args[0])
			}
		}
		lg.expr(env, x.Fun)
		lg.exprList(env, x.Args)
		return
	}
	lg.exprChildren(env, e)
}

// exprChildren walks e's immediate children through expr.
func (lg *lockGuard) exprChildren(env *lockEnv, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if n == e {
			return true
		}
		if sub, ok := n.(ast.Expr); ok {
			lg.expr(env, sub)
			return false
		}
		return true
	})
}

func (lg *lockGuard) exprList(env *lockEnv, list []ast.Expr) {
	for _, e := range list {
		lg.expr(env, e)
	}
}

// checkAccess reports a guarded-field access without the required lock.
func (lg *lockGuard) checkAccess(env *lockEnv, sel *ast.SelectorExpr, write bool) {
	s, ok := lg.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	g, ok := lg.guarded[originVar(fieldVar)]
	if !ok {
		return
	}
	root, base, resolvable := accessPath(lg.pass.Info, sel.X)
	if resolvable && env.fresh[root] {
		return // freshly constructed, not yet shared
	}
	what := "read of"
	need := lockRead
	if write {
		what = "write to"
		need = lockExcl
	}
	if !resolvable {
		lg.pass.Reportf(sel.Pos(), "%s %s, guarded by %q, through an unresolvable path; alias the owner to a local before locking",
			what, sel.Sel.Name, g.guard)
		return
	}
	guardPath := base + "." + g.guard
	if env.held[guardPath] >= need {
		return
	}
	if write && env.held[guardPath] == lockRead {
		lg.pass.Reportf(sel.Pos(), "write to %s with only the read lock of %s held; writes need %s.Lock()",
			exprString(sel), guardPath, guardPath)
		return
	}
	lg.pass.Reportf(sel.Pos(), "%s %s without holding %s (// ccvet:guardedby %s); lock it on every path to the access or annotate the function //ccvet:holds %s",
		what, exprString(sel), guardPath, g.guard, g.guard)
}

// writeTarget checks the written-through part of an assignment target: the
// guarded field being stored to (directly, through an index, or through a
// dereference).
func (lg *lockGuard) writeTarget(env *lockEnv, lhs ast.Expr) {
	switch x := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		lg.checkAccess(env, x, true)
	case *ast.IndexExpr:
		// Writing an element writes the container: m[k] = v mutates m.
		lg.writeTarget(env, x.X)
	case *ast.StarExpr:
		lg.writeTarget(env, x.X)
	}
}

// checkHoldsCall enforces //ccvet:holds at call sites: calling an annotated
// method requires its receiver's mutex exclusively held.
func (lg *lockGuard) checkHoldsCall(env *lockEnv, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := lg.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	guards := lg.holds[fn]
	if len(guards) == 0 {
		return
	}
	root, base, resolvable := accessPath(lg.pass.Info, sel.X)
	if resolvable && env.fresh[root] {
		return
	}
	for _, g := range guards {
		if !resolvable {
			lg.pass.Reportf(call.Pos(), "call of %s, which requires %q held (//ccvet:holds), through an unresolvable path", sel.Sel.Name, g)
			continue
		}
		guardPath := base + "." + g
		if env.held[guardPath] < lockExcl {
			lg.pass.Reportf(call.Pos(), "call of %s without holding %s, which the callee declares with //ccvet:holds %s",
				sel.Sel.Name, guardPath, g)
		}
	}
}

// isPanicCall reports whether the expression statement is a call of the
// panic builtin.
func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "panic"
}
