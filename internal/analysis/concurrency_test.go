package analysis

import (
	"testing"
)

// ---- lockguard ----

const lockguardHeader = `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	m  map[string]int // ccvet:guardedby mu
}
`

func TestLockGuardFlagsUnlockedRead(t *testing.T) {
	src := lockguardHeader + `
func (b *Box) Get(k string) int {
	return b.m[k]
}
`
	got := vetFixture(t, LockGuardAnalyzer, src)
	wantFindings(t, got, 1, "without holding b.mu")
	if got[0].Analyzer != "lockguard" {
		t.Errorf("analyzer = %q, want lockguard", got[0].Analyzer)
	}
}

func TestLockGuardAcceptsLockedAccess(t *testing.T) {
	src := lockguardHeader + `
func (b *Box) Get(k string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m[k]
}

func (b *Box) Put(k string, v int) {
	b.mu.Lock()
	b.m[k] = v
	b.mu.Unlock()
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 0, "")
}

func TestLockGuardFlagsWriteUnderReadLock(t *testing.T) {
	src := `package fixture

import "sync"

type RBox struct {
	mu sync.RWMutex
	m  map[string]int // ccvet:guardedby mu
}

func (b *RBox) Put(k string, v int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.m[k] = v
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 1, "only the read lock")
}

func TestLockGuardFlagsAccessAfterEarlyUnlockPath(t *testing.T) {
	// One branch unlocks without returning: the access after the merge is
	// only locked on the other path and must be reported.
	src := lockguardHeader + `
func (b *Box) Racy(k string) int {
	b.mu.Lock()
	if k == "" {
		b.mu.Unlock()
	}
	v := b.m[k]
	b.mu.Unlock()
	return v
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 1, "without holding b.mu")
}

func TestLockGuardAcceptsTerminatedBranchUnlock(t *testing.T) {
	// The early-unlock branch returns, so the fall-through is still locked.
	src := lockguardHeader + `
func (b *Box) Get(k string) int {
	b.mu.Lock()
	if k == "" {
		b.mu.Unlock()
		return 0
	}
	v := b.m[k]
	b.mu.Unlock()
	return v
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 0, "")
}

func TestLockGuardTracksShardAliasing(t *testing.T) {
	// The repo's shard idiom: alias the element, lock through the alias,
	// access through the alias.
	src := `package fixture

import "sync"

type shard struct {
	mu sync.RWMutex
	m  map[string]int // ccvet:guardedby mu
}

type Sharded struct {
	shards [4]shard
}

func (s *Sharded) Get(i int, k string) int {
	sh := &s.shards[i]
	sh.mu.RLock()
	v := sh.m[k]
	sh.mu.RUnlock()
	return v
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 0, "")
}

func TestLockGuardAcceptsFreshConstruction(t *testing.T) {
	src := lockguardHeader + `
func NewBox() *Box {
	b := &Box{}
	b.m = make(map[string]int)
	return b
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 0, "")
}

func TestLockGuardHoldsMovesObligationToCallSite(t *testing.T) {
	src := lockguardHeader + `
//ccvet:holds mu
func (b *Box) locked(k string) int {
	return b.m[k]
}

func (b *Box) Good(k string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.locked(k)
}

func (b *Box) Bad(k string) int {
	return b.locked(k)
}
`
	got := vetFixture(t, LockGuardAnalyzer, src)
	wantFindings(t, got, 1, "ccvet:holds")
}

func TestLockGuardGoroutineDoesNotInheritLocks(t *testing.T) {
	src := lockguardHeader + `
func (b *Box) Leak(k string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	done := make(chan struct{})
	go func() {
		_ = b.m[k]
		close(done)
	}()
	<-done
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 1, "without holding b.mu")
}

func TestLockGuardFlagsMalformedAnnotation(t *testing.T) {
	src := `package fixture

type Box struct {
	n int
	m map[string]int // ccvet:guardedby n
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 1, "not a sibling sync.Mutex")
}

func TestLockGuardIgnoreSuppresses(t *testing.T) {
	src := lockguardHeader + `
func (b *Box) Snapshot() int {
	return len(b.m) //ccvet:ignore lockguard fixture demonstrates suppression
}
`
	wantFindings(t, vetFixture(t, LockGuardAnalyzer, src), 0, "")
}

// ---- golifecycle ----

func TestGoLifecycleFlagsFireAndForget(t *testing.T) {
	src := `package fixture

func Spawn() {
	go func() {
		println("orphan")
	}()
}
`
	got := vetFixture(t, GoLifecycleAnalyzer, src)
	wantFindings(t, got, 1, "fire-and-forget")
	if got[0].Analyzer != "golifecycle" {
		t.Errorf("analyzer = %q, want golifecycle", got[0].Analyzer)
	}
}

func TestGoLifecycleFlagsAddInsideGoroutine(t *testing.T) {
	src := `package fixture

import "sync"

func Spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		wg.Add(1)
		defer wg.Done()
		defer wg.Done()
	}()
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 1, "races with Wait")
}

func TestGoLifecycleFlagsDoneWithoutDominatingAdd(t *testing.T) {
	src := `package fixture

import "sync"

func Spawn(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
	wg.Add(1) // too late: Wait can return before this runs
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 1, "no Add on the same WaitGroup dominates")
}

func TestGoLifecycleAcceptsWaitGroupPattern(t *testing.T) {
	src := `package fixture

import "sync"

func Spawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 0, "")
}

func TestGoLifecycleAcceptsWaitGroupFieldAcrossMethods(t *testing.T) {
	// The transport idiom: Add in one method, the deferred Done in the
	// callee the go statement runs — matched by field identity.
	src := `package fixture

import "sync"

type Pool struct {
	wg sync.WaitGroup
}

func (p *Pool) Spawn() {
	p.wg.Add(1)
	go p.run()
}

func (p *Pool) run() {
	defer p.wg.Done()
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 0, "")
}

func TestGoLifecycleAcceptsWaitGroupFieldOnGenericType(t *testing.T) {
	// The partitioned-pool idiom: the spawned callee is a method of a
	// generic type, so the instantiated *types.Func must resolve back to
	// its Origin declaration for the deferred Done to be found.
	src := `package fixture

import "sync"

type Pool[T any] struct {
	wg sync.WaitGroup
}

func (p *Pool[T]) Spawn(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.run(i)
	}
}

func (p *Pool[T]) run(id int) {
	defer p.wg.Done()
	_ = id
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 0, "")
}

func TestGoLifecycleAcceptsDoneChannel(t *testing.T) {
	src := `package fixture

func Spawn(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

func worker(jobs chan int) {
	for range jobs {
	}
}

func SpawnWorker(jobs chan int) {
	go worker(jobs)
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 0, "")
}

func TestGoLifecycleInternalChannelIsNotAJoin(t *testing.T) {
	// A channel created inside the goroutine cannot be closed from outside.
	src := `package fixture

func Spawn() {
	go func() {
		ch := make(chan int, 1)
		ch <- 1
		<-ch
	}()
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 1, "fire-and-forget")
}

func TestGoLifecycleIgnoreSuppresses(t *testing.T) {
	src := `package fixture

func Spawn() {
	//ccvet:ignore golifecycle fixture demonstrates suppression
	go func() {
		println("orphan")
	}()
}
`
	wantFindings(t, vetFixture(t, GoLifecycleAnalyzer, src), 0, "")
}

// ---- atomicmix ----

func TestAtomicMixFlagsMixedAccess(t *testing.T) {
	src := `package fixture

import "sync/atomic"

type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return c.n
}
`
	got := vetFixture(t, AtomicMixAnalyzer, src)
	wantFindings(t, got, 1, "must be atomic")
	if got[0].Analyzer != "atomicmix" {
		t.Errorf("analyzer = %q, want atomicmix", got[0].Analyzer)
	}
}

func TestAtomicMixAcceptsAllAtomicAccess(t *testing.T) {
	src := `package fixture

import "sync/atomic"

type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return atomic.LoadInt64(&c.n)
}
`
	wantFindings(t, vetFixture(t, AtomicMixAnalyzer, src), 0, "")
}

func TestAtomicMixFlagsBoxValueCopy(t *testing.T) {
	src := `package fixture

import "sync/atomic"

type Counter struct {
	n atomic.Int64
}

func Snapshot(c *Counter) atomic.Int64 {
	return c.n
}
`
	wantFindings(t, vetFixture(t, AtomicMixAnalyzer, src), 1, "copied")
}

func TestAtomicMixAcceptsBoxMethodsAndAddress(t *testing.T) {
	src := `package fixture

import "sync/atomic"

type Counter struct {
	n atomic.Int64
}

type Gauges struct {
	vals []atomic.Int64
}

func Use(c *Counter, g *Gauges) int64 {
	c.n.Add(1)
	g.vals[0].Store(7)
	p := &c.n
	return p.Load() + g.vals[0].Load()
}
`
	wantFindings(t, vetFixture(t, AtomicMixAnalyzer, src), 0, "")
}

func TestAtomicMixIgnoreSuppresses(t *testing.T) {
	src := `package fixture

import "sync/atomic"

var n int64

func Inc() {
	atomic.AddInt64(&n, 1)
}

func Init() {
	n = 0 //ccvet:ignore atomicmix fixture demonstrates suppression
}
`
	wantFindings(t, vetFixture(t, AtomicMixAnalyzer, src), 0, "")
}

// ---- wallclock ----

func TestWallClockFlagsTimeNow(t *testing.T) {
	src := `package fixture

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`
	got := vetFixture(t, WallClockAnalyzer, src)
	wantFindings(t, got, 1, "wall-clock call time.Now")
	if got[0].Analyzer != "wallclock" {
		t.Errorf("analyzer = %q, want wallclock", got[0].Analyzer)
	}
}

func TestWallClockFlagsGlobalRand(t *testing.T) {
	src := `package fixture

import "math/rand"

func Roll() int {
	return rand.Intn(6)
}
`
	wantFindings(t, vetFixture(t, WallClockAnalyzer, src), 1, "global-source call rand.Intn")
}

func TestWallClockAcceptsSeededSourceAndDurations(t *testing.T) {
	src := `package fixture

import (
	"math/rand"
	"time"
)

func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func Double(d time.Duration) time.Duration {
	return 2 * d
}
`
	wantFindings(t, vetFixture(t, WallClockAnalyzer, src), 0, "")
}

func TestWallClockIgnoreSuppresses(t *testing.T) {
	src := `package fixture

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //ccvet:ignore wallclock fixture demonstrates suppression
}
`
	wantFindings(t, vetFixture(t, WallClockAnalyzer, src), 0, "")
}

func TestWallClockAppliesToDeterminismCriticalPackages(t *testing.T) {
	for rel, want := range map[string]bool{
		"internal/sim":         true,
		"internal/checker":     true,
		"internal/fingerprint": true,
		"internal/chaos":       true,
		"internal/frontier":    true,
		"internal/runtime":     true, // file-restricted inside Run
		"internal/analysis":    false,
		"cmd/cclive":           false,
	} {
		if got := WallClockAnalyzer.AppliesTo(rel); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", rel, got, want)
		}
	}
}

// ---- reproducibility ----

// TestVetOutputIsReproducible loads and vets the whole module twice from
// scratch and asserts byte-identical rendered output: ccvet findings are a
// pure function of the source tree, never of map iteration or scheduling.
func TestVetOutputIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short mode")
	}
	render := func() string {
		mod, err := LoadModule(".")
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		findings, err := mod.Vet(DefaultAnalyzers(), []string{"..."})
		if err != nil {
			t.Fatalf("Vet: %v", err)
		}
		return renderFindings(findings)
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("ccvet output differs across two identical runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
