package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags statements that call a function defined in this
// module and discard an error result. The checker, scheme enumerator, and
// simulator all report model violations (self-sends, revoked decisions,
// budget exhaustion) through returned errors; dropping one silently turns a
// broken protocol into a passing run. Standard-library calls are exempt (the
// repo's fmt.Println-style output is deliberately fire-and-forget); an
// intentional discard is written `_ = f()` or suppressed with
// //ccvet:ignore errdrop <reason>.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "error results of repo functions must be handled (or explicitly discarded with _ =)",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				c, ok := unparen(st.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			default:
				return true
			}
			checkDroppedError(pass, call)
			return true
		})
	}
}

// checkDroppedError reports the call if its callee is a module function
// whose results include an error.
func checkDroppedError(pass *Pass, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	obj := calleeObject(pass, call.Fun)
	if obj == nil || obj.Pkg() == nil || !pass.IsModulePath(obj.Pkg().Path()) {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if types.Identical(results.At(i).Type(), types.Universe.Lookup("error").Type()) {
			pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign it to _ explicitly",
				calleeName(obj))
			return
		}
	}
}

// calleeObject resolves the object a call expression invokes: a declared
// function, a method, or a function-valued variable.
func calleeObject(pass *Pass, fun ast.Expr) types.Object {
	switch x := unparen(fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel]
	}
	return nil
}

// calleeName renders the callee for a finding message.
func calleeName(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + "." + f.Name()
		}
	}
	return obj.Name()
}
