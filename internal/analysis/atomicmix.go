package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer enforces all-or-nothing atomicity per variable. A
// variable accessed through sync/atomic even once is a cross-goroutine
// communication channel; any remaining plain read or write of it is a data
// race that the seeded schedules cannot replay. Two contracts:
//
//   - a variable whose address is passed to a sync/atomic function
//     (atomic.AddInt64(&x, …)) may appear *only* as such an operand —
//     every other read, write, or address-take of x is flagged;
//   - a value of an atomic box type (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], …) may only be used as a method-call receiver or
//     have its address taken; copying it (assignment, argument, return,
//     composite literal) detaches the copy from the original and is
//     flagged, mirroring the vet copylocks rule these types exist to make
//     unnecessary.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed through sync/atomic must be accessed atomically everywhere; atomic.* box values must not be copied",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	checkMixedAccess(pass)
	checkBoxCopies(pass)
}

// checkMixedAccess finds variables used as &x operands of sync/atomic calls
// and flags every other appearance of the same variable in the package.
func checkMixedAccess(pass *Pass) {
	// Pass 1: which variables are atomic, and which AST nodes are their
	// sanctioned (atomic-call operand) appearances.
	atomicVars := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				target := unparen(ue.X)
				if obj := accessedVar(pass.Info, target); obj != nil {
					atomicVars[obj] = true
					sanctioned[target] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: every non-sanctioned appearance is a plain access.
	for _, f := range pass.Files {
		var skipSel map[*ast.Ident]bool = map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				skipSel[x.Sel] = true
				if sanctioned[x] {
					return true
				}
				if obj := accessedVar(pass.Info, x); obj != nil && atomicVars[obj] {
					pass.Reportf(x.Pos(), "plain access of %s, which is elsewhere accessed through sync/atomic; every access must be atomic", exprString(x))
				}
			case *ast.Ident:
				if sanctioned[x] || skipSel[x] {
					return true
				}
				// Skip the defining occurrence: `var x int64` is not a use.
				if _, isDef := pass.Info.Defs[x]; isDef {
					return true
				}
				if obj := pass.Info.ObjectOf(x); obj != nil && atomicVars[obj] {
					pass.Reportf(x.Pos(), "plain access of %s, which is elsewhere accessed through sync/atomic; every access must be atomic", x.Name)
				}
			}
			return true
		})
	}
}

// accessedVar names the variable an lvalue expression denotes: a plain
// identifier's object, or a selected struct field's origin var.
func accessedVar(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			return originVar(v)
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return originVar(v)
			}
		}
	}
	return nil
}

// isAtomicPkgCall reports whether the call invokes a package-level function
// of sync/atomic.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkBoxCopies flags value uses of sync/atomic box types outside the two
// legal positions: method-call receiver and &-operand.
func checkBoxCopies(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[e]
			if !ok || !tv.IsValue() || !isAtomicBoxType(tv.Type) {
				return true
			}
			if boxUseAllowed(pass.Info, e, stack) {
				return true
			}
			pass.Reportf(e.Pos(), "value of %s copied or used non-atomically; call its methods through the original (or a pointer), never a copy",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
}

// boxUseAllowed reports whether an atomic box value expression sits in a
// legal position given its ancestor chain.
func boxUseAllowed(info *types.Info, e ast.Expr, stack []ast.Node) bool {
	// Walk up through parens and the expression's own wrappers.
	child := ast.Node(e)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.SelectorExpr:
			if p.X != child {
				return true // e is the Sel side; the receiver was judged separately
			}
			if s, ok := info.Selections[p]; ok && s.Kind() == types.MethodVal {
				return true // method call receiver: d.lastBeat[i].Store(…)
			}
			// Field selection *through* the box has no legal meaning for
			// sync/atomic types (no exported fields); the parent selector
			// will be flagged if it misuses the result.
			return true
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == child
		case *ast.IndexExpr:
			// e is being indexed (impossible for box types) or is the index.
			return p.X == child
		default:
			return false
		}
	}
	return false
}

// isAtomicBoxType reports whether t is a named type declared in sync/atomic
// (Int32, Int64, Uint64, Bool, Value, Pointer[T], …).
func isAtomicBoxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
