package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// stdImporter type-checks standard-library imports from source. It is shared
// across tests because parsing the stdlib is the expensive part.
var stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)

// vetFixture type-checks one in-memory source file as a module package and
// runs a single analyzer over it, ignore comments applied — the same path the
// ccvet driver takes per package.
func vetFixture(t *testing.T, a *Analyzer, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := NewInfo()
	conf := types.Config{Importer: stdImporter}
	pkg, err := conf.Check("repro/fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return RunAnalyzer(a, fset, []*ast.File{f}, pkg, info, "repro")
}

// wantFindings asserts the exact number of findings and that each message
// contains the fragment.
func wantFindings(t *testing.T, got []Finding, n int, fragment string) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), n, renderFindings(got))
	}
	for _, f := range got {
		if !strings.Contains(f.Message, fragment) {
			t.Errorf("finding %q does not mention %q", f, fragment)
		}
	}
}

func renderFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---- purity ----

// The fixtures declare their own ProcID/Envelope/protocol trio: the analyzers
// match sim.Protocol implementations by shape, not by import.
const purityHeader = `package fixture

type ProcID int

type State struct{ m map[string]int }

type Proto struct{}

func (Proto) Init(p ProcID, input int, n int) State { return State{m: map[string]int{}} }
func (Proto) SendStep(p ProcID, s State) (State, []int) { return s, nil }
`

func TestPurityFlagsArgumentMutation(t *testing.T) {
	src := purityHeader + `
func (Proto) Receive(p ProcID, s State, m int) State {
	s.m["k"] = m // writes into the caller's map
	return s
}
`
	got := vetFixture(t, PurityAnalyzer, src)
	wantFindings(t, got, 1, "mutates state reachable from the argument")
	if got[0].Analyzer != "purity" {
		t.Errorf("analyzer = %q, want purity", got[0].Analyzer)
	}
	if !strings.Contains(got[0].String(), "fixture.go:") || !strings.Contains(got[0].String(), "[purity]") {
		t.Errorf("finding format %q, want file:line: [purity] message", got[0].String())
	}
}

func TestPurityFlagsPackageVariable(t *testing.T) {
	src := purityHeader + `
var calls int

func (Proto) Receive(p ProcID, s State, m int) State {
	calls++
	return s
}
`
	got := vetFixture(t, PurityAnalyzer, src)
	wantFindings(t, got, 1, "package-level mutable variable")
}

func TestPurityFlagsAppendToSharedSlice(t *testing.T) {
	src := `package fixture

type ProcID int

type State struct{ log []int }

type Proto struct{}

func (Proto) Init(p ProcID, input int, n int) State { return State{} }
func (Proto) SendStep(p ProcID, s State) (State, []int) { return s, nil }

func (Proto) Receive(p ProcID, s State, m int) State {
	s.log = append(s.log, m) // may write into shared backing array
	return s
}
`
	got := vetFixture(t, PurityAnalyzer, src)
	wantFindings(t, got, 1, "backing array shared with the caller")
}

func TestPurityAcceptsCopyOnWrite(t *testing.T) {
	src := purityHeader + `
func (s State) clone() State {
	m := make(map[string]int, len(s.m))
	for k, v := range s.m {
		m[k] = v
	}
	return State{m: m}
}

func (Proto) Receive(p ProcID, s State, m int) State {
	s = s.clone()
	s.m["k"] = m // fresh copy: pure
	return s
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 0, "")
}

func TestPurityUntaintDoesNotLeakAcrossBranches(t *testing.T) {
	// The clone happens only in one branch; the append on the other path
	// still aliases the caller's state and must be reported.
	src := `package fixture

type ProcID int

type State struct{ log []int }

type Proto struct{}

func (Proto) Init(p ProcID, input int, n int) State { return State{} }
func (Proto) SendStep(p ProcID, s State) (State, []int) { return s, nil }

func (s State) clone() State {
	return State{log: append([]int(nil), s.log...)}
}

func (Proto) Receive(p ProcID, s State, m int) State {
	if m == 0 {
		s = s.clone()
	}
	s.log = append(s.log, m)
	return s
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 1, "backing array")
}

// digestHeader declares an Add/Sub/Mixed trio: the shape of
// fingerprint.Digest, which the purity analyzer covers alongside protocol
// transitions.
const digestHeader = `package fixture

type Digest struct{ Lo, Hi uint64 }

func (d Digest) Add(o Digest) Digest { return Digest{Lo: d.Lo + o.Lo, Hi: d.Hi + o.Hi} }
func (d Digest) Sub(o Digest) Digest { return Digest{Lo: d.Lo - o.Lo, Hi: d.Hi - o.Hi} }
`

func TestPurityFlagsImpureDigestAlgebra(t *testing.T) {
	src := digestHeader + `
var mixes int

func (d Digest) Mixed(salt uint64) Digest {
	mixes++ // ambient state: Mixed is no longer a function of (d, salt)
	return Digest{Lo: d.Lo ^ salt, Hi: d.Hi ^ salt}
}
`
	got := vetFixture(t, PurityAnalyzer, src)
	wantFindings(t, got, 1, "package-level mutable variable")
}

func TestPurityAcceptsPureDigestAlgebra(t *testing.T) {
	src := digestHeader + `
func (d Digest) Mixed(salt uint64) Digest {
	return Digest{Lo: d.Lo ^ salt, Hi: d.Hi ^ salt}
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 0, "")
}

func TestPurityAnnotatedFunctionFlagged(t *testing.T) {
	// //ccvet:pure opts a plain function into the transition contract;
	// mutating a map reachable from an argument must be reported.
	src := `package fixture

type State struct{ m map[string]int }

//ccvet:pure
func replayStep(s State, k string, v int) State {
	s.m[k] = v
	return s
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 1, "replayStep")
}

func TestPurityAnnotatedFunctionCleanPasses(t *testing.T) {
	src := `package fixture

type State struct{ m map[string]int }

//ccvet:pure
func replayStep(s State, k string, v int) State {
	out := State{m: make(map[string]int, len(s.m)+1)}
	out.m[k] = v
	return out
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 0, "")
}

func TestPurityAnnotatedMethodFlagged(t *testing.T) {
	// The annotation also covers methods outside the δ/β trio shape.
	src := `package fixture

type Box struct{ vals []int }

//ccvet:pure
func (b *Box) Push(v int) {
	b.vals[0] = v
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 1, "Box.Push")
}

func TestPuritySentinelErrorAndForeignValueVarExempt(t *testing.T) {
	// Sentinel errors and stdlib value-typed namespace vars (the
	// binary.BigEndian idiom) are readable from pure bodies; module-local
	// non-error vars stay flagged.
	src := `package fixture

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var ErrShort = errors.New("short")

var counter int

//ccvet:pure
func decode(data []byte) (uint32, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("%w: %d bytes", ErrShort, len(data))
	}
	return binary.BigEndian.Uint32(data), nil
}

//ccvet:pure
func ambient() int {
	return counter
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 1, "counter")
}

func TestPurityIgnoreSuppresses(t *testing.T) {
	src := purityHeader + `
func (Proto) Receive(p ProcID, s State, m int) State {
	s.m["k"] = m //ccvet:ignore purity fixture demonstrates suppression
	return s
}
`
	wantFindings(t, vetFixture(t, PurityAnalyzer, src), 0, "")
}

// ---- detrange ----

func TestDetRangeFlagsUnsortedMapRange(t *testing.T) {
	src := `package fixture

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	got := vetFixture(t, DetRangeAnalyzer, src)
	wantFindings(t, got, 1, "nondeterministic")
	if got[0].Analyzer != "detrange" {
		t.Errorf("analyzer = %q, want detrange", got[0].Analyzer)
	}
}

func TestDetRangeAcceptsCollectAndSort(t *testing.T) {
	src := `package fixture

import "sort"

func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`
	wantFindings(t, vetFixture(t, DetRangeAnalyzer, src), 0, "")
}

func TestDetRangeIgnoreSuppresses(t *testing.T) {
	src := `package fixture

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m { //ccvet:ignore detrange sum is commutative
		n += v
	}
	return n
}
`
	wantFindings(t, vetFixture(t, DetRangeAnalyzer, src), 0, "")
}

func TestDetRangeAppliesOnlyToDeterminismCriticalPackages(t *testing.T) {
	for rel, want := range map[string]bool{
		"internal/sim":          true,
		"internal/checker":      true,
		"internal/pattern":      true,
		"internal/scheme":       true,
		"internal/scheme/x":     true,
		"internal/runtime":      true,
		"internal/taxonomy":     true,
		"cmd/cclive":            true,
		"cmd/ccbench":           true,
		"cmd/cclattice":         true,
		"cmd/ccpat":             true,
		"internal/protocols":    false,
		"cmd/ccexp":             false,
		"internal/schememaking": false,
	} {
		if got := DetRangeAnalyzer.AppliesTo(rel); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", rel, got, want)
		}
	}
}

// ---- selfsend ----

const selfsendHeader = `package fixture

type ProcID int

type Payload int

type Envelope struct {
	To      ProcID
	Payload Payload
}

type State int

type Proto struct{}

func (Proto) Init(p ProcID, input int, n int) State { return 0 }
func (Proto) Receive(p ProcID, s State, m int) State { return s }
`

func TestSelfSendFlagsEnvelopeToSender(t *testing.T) {
	src := selfsendHeader + `
func (Proto) SendStep(p ProcID, s State) (State, []Envelope) {
	q := p // alias of the sender
	return s, []Envelope{{To: q, Payload: 1}}
}
`
	got := vetFixture(t, SelfSendAnalyzer, src)
	wantFindings(t, got, 1, "forbids self-sends")
	if got[0].Analyzer != "selfsend" {
		t.Errorf("analyzer = %q, want selfsend", got[0].Analyzer)
	}
}

func TestSelfSendAcceptsOtherDestinations(t *testing.T) {
	src := selfsendHeader + `
func (Proto) SendStep(p ProcID, s State) (State, []Envelope) {
	return s, []Envelope{{To: p + 1, Payload: 1}}
}
`
	wantFindings(t, vetFixture(t, SelfSendAnalyzer, src), 0, "")
}

func TestSelfSendIgnoreSuppresses(t *testing.T) {
	src := selfsendHeader + `
func (Proto) SendStep(p ProcID, s State) (State, []Envelope) {
	//ccvet:ignore selfsend fixture demonstrates suppression
	return s, []Envelope{{To: p, Payload: 1}}
}
`
	wantFindings(t, vetFixture(t, SelfSendAnalyzer, src), 0, "")
}

// ---- errdrop ----

const errdropHeader = `package fixture

import "errors"

func mayFail() error { return errors.New("boom") }
`

func TestErrDropFlagsDiscardedError(t *testing.T) {
	src := errdropHeader + `
func Caller() {
	mayFail()
}
`
	got := vetFixture(t, ErrDropAnalyzer, src)
	wantFindings(t, got, 1, "error that is discarded")
	if got[0].Analyzer != "errdrop" {
		t.Errorf("analyzer = %q, want errdrop", got[0].Analyzer)
	}
}

func TestErrDropAcceptsHandledAndExplicitDiscard(t *testing.T) {
	src := errdropHeader + `
func Caller() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard
	return nil
}
`
	wantFindings(t, vetFixture(t, ErrDropAnalyzer, src), 0, "")
}

func TestErrDropSkipsNonModuleCallees(t *testing.T) {
	src := `package fixture

import "fmt"

func Caller() {
	fmt.Println("fmt errors are deliberately fire-and-forget")
}
`
	wantFindings(t, vetFixture(t, ErrDropAnalyzer, src), 0, "")
}

func TestErrDropIgnoreSuppresses(t *testing.T) {
	src := errdropHeader + `
func Caller() {
	mayFail() //ccvet:ignore errdrop fixture demonstrates suppression
}
`
	wantFindings(t, vetFixture(t, ErrDropAnalyzer, src), 0, "")
}

// ---- ignore directive hygiene ----

func TestMalformedIgnoreIsReported(t *testing.T) {
	src := `package fixture

func f() {
	//ccvet:ignore
}
`
	got := vetFixture(t, ErrDropAnalyzer, src)
	wantFindings(t, got, 1, "malformed ignore comment")
	if got[0].Analyzer != "ccvet" {
		t.Errorf("analyzer = %q, want ccvet", got[0].Analyzer)
	}
}

func TestIgnoreCoversLineBelow(t *testing.T) {
	src := errdropHeader + `
func Caller() {
	//ccvet:ignore errdrop fixture: directive on the line above
	mayFail()
}
`
	wantFindings(t, vetFixture(t, ErrDropAnalyzer, src), 0, "")
}

func TestIgnoreDoesNotCoverOtherAnalyzers(t *testing.T) {
	src := errdropHeader + `
func Caller() {
	mayFail() //ccvet:ignore detrange wrong analyzer: must not suppress errdrop
}
`
	wantFindings(t, vetFixture(t, ErrDropAnalyzer, src), 1, "error that is discarded")
}

// ---- module loader and driver integration ----

func TestVetWholeModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short mode")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.Path != "repro" {
		t.Fatalf("module path = %q, want repro", mod.Path)
	}
	findings, err := mod.Vet(DefaultAnalyzers(), []string{"..."})
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("ccvet is expected to run clean on the repo, got %d findings:\n%s",
			len(findings), renderFindings(findings))
	}
}

func TestMatchPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short mode")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.MatchPatterns([]string{"internal/sim"})
	if err != nil {
		t.Fatalf("MatchPatterns(internal/sim): %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/sim" {
		t.Fatalf("MatchPatterns(internal/sim) = %v", pkgs)
	}
	tree, err := mod.MatchPatterns([]string{"internal/..."})
	if err != nil {
		t.Fatalf("MatchPatterns(internal/...): %v", err)
	}
	if len(tree) < 5 {
		t.Errorf("MatchPatterns(internal/...) matched %d packages, want several", len(tree))
	}
	// "./..." and "." are anchored at the working directory (the go tool's
	// semantics) — from this package's directory they select this subtree.
	here, err := mod.MatchPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("MatchPatterns(./...): %v", err)
	}
	if len(here) != 1 || here[0].Path != "repro/internal/analysis" {
		t.Fatalf("MatchPatterns(./...) from internal/analysis = %v, want just this package", here)
	}
	if _, err := mod.MatchPatterns([]string{"./no/such/dir"}); err == nil {
		t.Error("MatchPatterns on a nonexistent package should fail")
	}
}
