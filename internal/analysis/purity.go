package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PurityAnalyzer enforces the purity contract on protocol transition
// functions (sim/protocol.go: "Protocol implementations must be pure:
// transition functions may not mutate their arguments and must return the
// same result for the same (state, message) pair").
//
// It locates every type in the package whose method set includes Init,
// Receive, and SendStep — the δ/β trio of a sim.Protocol implementation —
// and inspects those three bodies for:
//
//   - writes that escape the local copy: through a pointer receiver, a
//     pointer argument, or a map/slice reachable from the receiver or an
//     argument (configurations share state values, so such writes corrupt
//     sibling branches of an exploration);
//   - append to a slice reachable from an argument (append may write into
//     the shared backing array when spare capacity exists);
//   - calls of pointer-receiver methods on values reachable from an
//     argument (the callee can mutate shared structure);
//   - any reference to a package-level mutable variable (reads make the
//     transition depend on ambient state; writes are shared mutation).
//
// The analyzer recognizes the repo's copy-on-write idiom: a local assigned
// from a call result (`s = s.clone()`, `s.out = appendOut(s.out, x)`) is
// fresh, so subsequent writes through it are pure.
//
// The same checks cover the digest algebra that fingerprint-keyed
// exploration is built on: every type whose method set includes Add, Sub,
// and Mixed — the shape of fingerprint.Digest — has those bodies held to
// the identical contract. Incremental fingerprints are sound only if digest
// composition is a pure function of its operands; a digest method that
// mutated shared state or read a package-level variable would silently
// desynchronize fingerprints from canonical keys.
//
// Beyond the shape-matched trios, any function or method can opt into the
// same contract with a //ccvet:pure line in its doc comment. The live
// runtime (internal/runtime) uses this for the code that handles protocol
// state outside the simulator — the wire-frame codec and the conformance
// replay — machine-checking that live execution never mutates protocol
// state except through δ/β: an annotated body may build and return fresh
// values but may not write through its arguments or receiver.
//
// Two reference classes are exempt from the package-level-variable rule:
// sentinel error values (error-typed vars are read-only by convention; pure
// codecs wrap them with %w), and value-typed vars from outside the module
// (the stdlib exposes immutable namespaces like binary.BigEndian as vars;
// pointer-, map-, and slice-typed foreign vars such as os.Stdout stay
// flagged).
var PurityAnalyzer = &Analyzer{
	Name: "purity",
	Doc:  "transition functions δ/β, digest algebra, and //ccvet:pure bodies must be pure: no mutation of arguments or shared state, no package-level variables",
	Run:  runPurity,
}

// transitionMethodNames is the δ/β trio every sim.Protocol implements.
var transitionMethodNames = map[string]bool{"Init": true, "Receive": true, "SendStep": true}

// digestMethodNames is the algebra trio of fingerprint.Digest. A type
// declaring all three is treated as a digest implementation and its algebra
// is held to the purity contract.
var digestMethodNames = map[string]bool{"Add": true, "Sub": true, "Mixed": true}

func runPurity(pass *Pass) {
	seen := map[*ast.FuncDecl]bool{}
	check := func(fd *ast.FuncDecl) {
		if !seen[fd] {
			seen[fd] = true
			checkTransitionBody(pass, fd)
		}
	}
	for _, decl := range methodTrios(pass, transitionMethodNames) {
		check(decl)
	}
	for _, decl := range methodTrios(pass, digestMethodNames) {
		check(decl)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pureAnnotated(fd) {
				check(fd)
			}
		}
	}
}

// pureAnnotated reports whether the declaration's doc comment carries a
// //ccvet:pure marker line.
func pureAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//ccvet:pure" {
			return true
		}
	}
	return false
}

// methodTrios returns the declarations named in want of every type in the
// package that declares all of them (a sim.Protocol or fingerprint.Digest
// implementation by structure; matching by method-set shape keeps the
// analyzer independent of the sim and fingerprint packages themselves, so
// fixtures and future implementations are covered alike).
func methodTrios(pass *Pass, want map[string]bool) []*ast.FuncDecl {
	byType := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !want[fd.Name.Name] {
				continue
			}
			tn := receiverTypeName(fd)
			if tn != "" {
				byType[tn] = append(byType[tn], fd)
			}
		}
	}
	var out []*ast.FuncDecl
	for _, decls := range byType {
		names := map[string]bool{}
		for _, d := range decls {
			names[d.Name.Name] = true
		}
		all := true
		for name := range want {
			all = all && names[name]
		}
		if all {
			out = append(out, decls...)
		}
	}
	return out
}

// displayName renders a declaration for a finding message: "Type.Method"
// for methods, the bare name for //ccvet:pure functions.
func displayName(fd *ast.FuncDecl) string {
	if tn := receiverTypeName(fd); tn != "" {
		return tn + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// receiverTypeName extracts the receiver's base type name.
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// taintState tracks which access paths may alias memory shared with the
// caller. Base entries ("s") come from parameters and the receiver; path
// entries ("s.out") record copy-on-write reassignments of individual fields.
type taintState struct {
	pass    *Pass
	paths   map[string]bool
	recvObj types.Object
}

// clone copies the taint state for analyzing one branch.
func (ts *taintState) clone() *taintState {
	paths := make(map[string]bool, len(ts.paths))
	for k, v := range ts.paths {
		paths[k] = v
	}
	return &taintState{pass: ts.pass, paths: paths, recvObj: ts.recvObj}
}

// mergeBranches conservatively joins the taint states of alternative
// branches: a path is tainted afterwards if it is tainted in any of them.
// An untaint inside one branch (`s = s.clone()`) must not leak into code
// that runs when the branch was not taken.
func (ts *taintState) mergeBranches(branches ...*taintState) {
	merged := map[string]bool{}
	for _, b := range append(branches, ts) {
		for k := range b.paths {
			if _, ok := merged[k]; ok {
				continue
			}
			t := ts.taintedPath(k)
			for _, ob := range branches {
				t = t || ob.taintedPath(k)
			}
			merged[k] = t
		}
	}
	ts.paths = merged
}

// taintedPath reports the taint of the longest known prefix of path.
func (ts *taintState) taintedPath(path string) bool {
	for {
		if v, ok := ts.paths[path]; ok {
			return v
		}
		i := lastDot(path)
		if i < 0 {
			return false
		}
		path = path[:i]
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// setPath records the taint of a path, invalidating deeper overrides.
func (ts *taintState) setPath(path string, tainted bool) {
	for k := range ts.paths {
		if len(k) > len(path) && k[:len(path)] == path && k[len(path)] == '.' {
			delete(ts.paths, k)
		}
	}
	ts.paths[path] = tainted
}

// exprTainted reports whether evaluating e may yield a reference into
// caller-shared memory.
func (ts *taintState) exprTainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if obj, path := pathOf(ts.pass.Info, e); obj != nil {
			return ts.taintedPath(path)
		}
		return false
	case *ast.ParenExpr:
		return ts.exprTainted(x.X)
	case *ast.StarExpr:
		return ts.exprTainted(x.X)
	case *ast.TypeAssertExpr:
		return ts.exprTainted(x.X)
	case *ast.IndexExpr:
		return ts.exprTainted(x.X)
	case *ast.SliceExpr:
		return ts.exprTainted(x.X)
	case *ast.UnaryExpr:
		return ts.exprTainted(x.X)
	case *ast.CallExpr:
		// A value-returning method called on a tainted receiver usually
		// returns a modified copy of it — which still aliases the
		// receiver's maps and slices. Copy constructors (clone/copy
		// naming) are the recognized exception.
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			if s, ok := ts.pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && ts.exprTainted(sel.X) {
				return !isCopyingName(sel.Sel.Name)
			}
		}
		return false
	}
	return false
}

// isCopyingName recognizes copy-constructor method names.
func isCopyingName(name string) bool {
	for _, p := range []string{"clone", "Clone", "copy", "Copy"} {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// checkTransitionBody runs the purity rules over one Init/Receive/SendStep
// body.
func checkTransitionBody(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ts := &taintState{pass: pass, paths: map[string]bool{}}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		name := fd.Recv.List[0].Names[0]
		if name.Name != "_" {
			if obj := pass.Info.Defs[name]; obj != nil {
				ts.paths[name.Name] = true
				ts.recvObj = obj
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if name.Name != "_" {
					ts.paths[name.Name] = true
				}
			}
		}
	}
	checkStmts(pass, fd, ts, fd.Body.List)
}

// checkStmts walks a statement list in order, updating taint and reporting
// violations.
func checkStmts(pass *Pass, fd *ast.FuncDecl, ts *taintState, stmts []ast.Stmt) {
	for _, s := range stmts {
		checkStmt(pass, fd, ts, s)
	}
}

func checkStmt(pass *Pass, fd *ast.FuncDecl, ts *taintState, s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		checkAssign(pass, fd, ts, st)
	case *ast.IncDecStmt:
		checkWriteTarget(pass, fd, ts, st.X, "update")
		checkExpr(pass, fd, ts, st.X)
	case *ast.ExprStmt:
		checkExpr(pass, fd, ts, st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			checkStmt(pass, fd, ts, st.Init)
		}
		checkExpr(pass, fd, ts, st.Cond)
		body := ts.clone()
		checkStmts(pass, fd, body, st.Body.List)
		branches := []*taintState{body}
		if st.Else != nil {
			els := ts.clone()
			checkStmt(pass, fd, els, st.Else)
			branches = append(branches, els)
		}
		ts.mergeBranches(branches...)
	case *ast.BlockStmt:
		checkStmts(pass, fd, ts, st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			checkStmt(pass, fd, ts, st.Init)
		}
		if st.Cond != nil {
			checkExpr(pass, fd, ts, st.Cond)
		}
		body := ts.clone()
		checkStmts(pass, fd, body, st.Body.List)
		if st.Post != nil {
			checkStmt(pass, fd, body, st.Post)
		}
		ts.mergeBranches(body)
	case *ast.RangeStmt:
		checkExpr(pass, fd, ts, st.X)
		// Range variables hold copies of the elements; treat them as
		// fresh (the repo ranges over value-typed slices).
		body := ts.clone()
		checkStmts(pass, fd, body, st.Body.List)
		ts.mergeBranches(body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			checkStmt(pass, fd, ts, st.Init)
		}
		if st.Tag != nil {
			checkExpr(pass, fd, ts, st.Tag)
		}
		var branches []*taintState
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				b := ts.clone()
				checkStmts(pass, fd, b, cc.Body)
				branches = append(branches, b)
			}
		}
		ts.mergeBranches(branches...)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			checkStmt(pass, fd, ts, st.Init)
		}
		// `switch pl := m.Payload.(type)` binds a per-clause alias of the
		// asserted operand; taint it like an assignment from the operand.
		var aliasName string
		var operandTainted bool
		if as, ok := st.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				aliasName = id.Name
			}
			operandTainted = ts.exprTainted(as.Rhs[0])
		}
		var branches []*taintState
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				b := ts.clone()
				if aliasName != "" {
					b.setPath(aliasName, operandTainted)
				}
				checkStmts(pass, fd, b, cc.Body)
				branches = append(branches, b)
			}
		}
		ts.mergeBranches(branches...)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			checkExpr(pass, fd, ts, e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						tainted := false
						if i < len(vs.Values) {
							checkExpr(pass, fd, ts, vs.Values[i])
							tainted = ts.exprTainted(vs.Values[i])
						}
						if name.Name != "_" {
							ts.setPath(name.Name, tainted)
						}
					}
				}
			}
		}
	case *ast.DeferStmt:
		checkExpr(pass, fd, ts, st.Call)
	case *ast.GoStmt:
		checkExpr(pass, fd, ts, st.Call)
	case *ast.LabeledStmt:
		checkStmt(pass, fd, ts, st.Stmt)
	case *ast.SendStmt:
		checkExpr(pass, fd, ts, st.Chan)
		checkExpr(pass, fd, ts, st.Value)
	}
}

// checkAssign handles taint propagation and write violations for one
// assignment.
func checkAssign(pass *Pass, fd *ast.FuncDecl, ts *taintState, st *ast.AssignStmt) {
	for _, rhs := range st.Rhs {
		checkExpr(pass, fd, ts, rhs)
	}
	multi := len(st.Lhs) > 1 && len(st.Rhs) == 1
	for i, lhs := range st.Lhs {
		checkWriteTarget(pass, fd, ts, lhs, "assignment")
		checkExpr(pass, fd, ts, lhs)

		// Taint propagation for plain variables and field paths.
		obj, path := pathOf(pass.Info, lhs)
		if obj == nil {
			continue
		}
		var tainted bool
		switch {
		case multi:
			// Multi-value call/assert: `s, ok := state.(T)` keeps the
			// asserted value aliased to the argument.
			tainted = ts.exprTainted(st.Rhs[0])
		case i < len(st.Rhs):
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				// Compound assignment (+= etc.) keeps the old value.
				tainted = ts.taintedPath(path)
			} else {
				tainted = ts.exprTainted(st.Rhs[i])
			}
		}
		ts.setPath(path, tainted)
	}
}

// checkWriteTarget reports a violation if writing through lhs escapes the
// function's local copies into caller-shared memory.
func checkWriteTarget(pass *Pass, fd *ast.FuncDecl, ts *taintState, lhs ast.Expr, what string) {
	obj, path, escapes := writeEscapes(pass.Info, lhs)
	if obj == nil || !escapes || !ts.taintedPath(path) {
		return
	}
	target := "argument"
	if obj == ts.recvObj {
		target = "pointer receiver"
	}
	pass.Reportf(lhs.Pos(), "%s: %s mutates state reachable from the %s (%s); transition functions must be pure — return a fresh value instead",
		displayName(fd), what, target, exprString(lhs))
}

// writeEscapes resolves the root object and path of a write target and
// whether the write traverses a pointer, map, or slice (and therefore
// mutates memory shared with the caller rather than a local copy).
func writeEscapes(info *types.Info, lhs ast.Expr) (types.Object, string, bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		return obj, x.Name, false
	case *ast.ParenExpr:
		return writeEscapes(info, x.X)
	case *ast.StarExpr:
		obj, path := pathOf(info, x.X)
		return obj, path, true
	case *ast.SelectorExpr:
		obj, path, esc := writeEscapes(info, x.X)
		if obj == nil {
			return nil, "", false
		}
		if isPointer(info, x.X) {
			esc = true
		}
		return obj, path + "." + x.Sel.Name, esc
	case *ast.IndexExpr:
		obj, path, esc := writeEscapes(info, x.X)
		if obj == nil {
			return nil, "", false
		}
		switch typeOf(info, x.X).Underlying().(type) {
		case *types.Map, *types.Slice, *types.Pointer:
			esc = true
		}
		return obj, path, esc
	}
	return nil, "", false
}

// checkExpr walks an expression for violations that do not involve an
// assignment target: shared-slice appends, pointer-receiver method calls on
// tainted values, and package-level variable references.
func checkExpr(pass *Pass, fd *ast.FuncDecl, ts *taintState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, ts, x)
		case *ast.Ident:
			checkPackageVar(pass, fd, x)
		case *ast.FuncLit:
			checkStmts(pass, fd, ts, x.Body.List)
			return false
		}
		return true
	})
}

// checkCall flags append-to-shared-slice and pointer-method calls on shared
// values.
func checkCall(pass *Pass, fd *ast.FuncDecl, ts *taintState, call *ast.CallExpr) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if ts.exprTainted(call.Args[0]) {
				pass.Reportf(call.Pos(), "%s: append to %s may write into a backing array shared with the caller's state; copy before appending",
					displayName(fd), exprString(call.Args[0]))
			}
			return
		}
		if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") && len(call.Args) > 0 {
			if ts.exprTainted(call.Args[0]) {
				pass.Reportf(call.Pos(), "%s: %s mutates %s, which is reachable from the caller's state",
					displayName(fd), b.Name(), exprString(call.Args[0]))
			}
			return
		}
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().Underlying().(*types.Pointer); !isPtr {
		return
	}
	if ts.exprTainted(sel.X) {
		pass.Reportf(call.Pos(), "%s: calling pointer-receiver method %s on %s may mutate state shared with the caller",
			displayName(fd), f.Name(), exprString(sel.X))
	}
}

// checkPackageVar flags references to package-level mutable variables inside
// transition bodies: the paper's δ/β must depend only on (state, message).
func checkPackageVar(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) {
	obj, ok := pass.Info.Uses[id]
	if !ok {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return
	}
	// Sentinel errors are read-only by convention; pure codecs wrap them.
	if named, ok := v.Type().(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return
	}
	// Value-typed vars from outside the module are immutable namespaces in
	// practice (binary.BigEndian); reference types (os.Stdout) stay flagged.
	if !pass.IsModulePath(v.Pkg().Path()) {
		switch v.Type().Underlying().(type) {
		case *types.Basic, *types.Struct, *types.Array:
			return
		}
	}
	pass.Reportf(id.Pos(), "%s: references package-level mutable variable %s; transitions must depend only on their inputs",
		displayName(fd), v.Name())
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders a small expression for a finding message.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	case *ast.TypeAssertExpr:
		return exprString(x.X) + ".(…)"
	}
	return "expression"
}
