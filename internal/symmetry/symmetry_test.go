package symmetry

import (
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

// TestGroupOrders pins the automorphism group order of every library
// topology (ForProtocol omits the identity, so the expected counts are
// |G|−1): S_N for fullexchange, S_{N−1} fixing the coordinator for star,
// the iterated wreath product of order 2^(internal nodes) for complete
// binary trees, the trivial group for chains, and nil past maxGroup.
func TestGroupOrders(t *testing.T) {
	cases := []struct {
		name  string
		proto sim.Protocol
		want  int
	}{
		{"fullexchange-3", protocols.FullExchange{Procs: 3}, 5},   // 3!-1
		{"fullexchange-4", protocols.FullExchange{Procs: 4}, 23},  // 4!-1
		{"fullexchange-6", protocols.FullExchange{Procs: 6}, 719}, // 6!-1, at maxGroup
		{"fullexchange-7", protocols.FullExchange{Procs: 7}, 0},   // 7! > maxGroup
		{"star-3", protocols.Star{Procs: 3}, 1},                   // 2!-1
		{"star-5", protocols.Star{Procs: 5}, 23},                  // 4!-1
		{"star-8", protocols.Star{Procs: 8}, 0},                   // 7! > maxGroup
		{"tree-3", protocols.Tree{Procs: 3}, 1},                   // one sibling swap
		{"tree-7", protocols.Tree{Procs: 7}, 7},                   // 2^3-1
		{"tree-15", protocols.Tree{Procs: 15}, 127},               // 2^7-1
		{"chain-3", protocols.Chain{Procs: 3}, 0},
		{"chain-5", protocols.Chain{Procs: 5}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ForProtocol(tc.proto)
			if len(got) != tc.want {
				t.Fatalf("ForProtocol(%s): %d non-identity automorphisms, want %d", tc.name, len(got), tc.want)
			}
		})
	}
}

// procsOf returns the processor count of the library protocols under test.
func procsOf(proto sim.Protocol) int {
	switch p := proto.(type) {
	case protocols.Tree:
		return p.Procs
	case protocols.Star:
		return p.Procs
	case protocols.FullExchange:
		return p.Procs
	case protocols.Chain:
		return p.Procs
	}
	return 0
}

// TestGroupClosure checks the group axioms on every returned set: each
// element is a valid non-identity permutation, and the set plus identity is
// closed under composition and inverse.
func TestGroupClosure(t *testing.T) {
	protos := []sim.Protocol{
		protocols.FullExchange{Procs: 3},
		protocols.FullExchange{Procs: 4},
		protocols.Star{Procs: 5},
		protocols.Tree{Procs: 7},
		protocols.Tree{Procs: 15},
	}
	for _, proto := range protos {
		n := procsOf(proto)
		perms := ForProtocol(proto)
		if len(perms) == 0 {
			t.Fatalf("%s: expected a non-trivial group", proto.Name())
		}
		elems := map[string]struct{}{permKey(Identity(n)): {}}
		for _, p := range perms {
			if !p.Valid(n) {
				t.Fatalf("%s: invalid permutation %v", proto.Name(), p)
			}
			if p.IsIdentity() {
				t.Fatalf("%s: identity returned in the group", proto.Name())
			}
			elems[permKey(p)] = struct{}{}
		}
		if len(elems) != len(perms)+1 {
			t.Fatalf("%s: duplicate group elements", proto.Name())
		}
		all := append([]sim.ProcPerm{Identity(n)}, perms...)
		for _, a := range all {
			inv := make(sim.ProcPerm, n)
			for i, q := range a {
				inv[q] = sim.ProcID(i)
			}
			if _, ok := elems[permKey(inv)]; !ok {
				t.Fatalf("%s: inverse of %v not in group", proto.Name(), a)
			}
			for _, b := range all {
				if _, ok := elems[permKey(compose(a, b))]; !ok {
					t.Fatalf("%s: composition %v∘%v escapes the group", proto.Name(), a, b)
				}
			}
		}
	}
}

// TestGroupDeterministic pins that repeated calls enumerate the group in
// the same order — explorations canonicalize against the slice order, so
// order instability would break replay determinism.
func TestGroupDeterministic(t *testing.T) {
	protos := []sim.Protocol{
		protocols.FullExchange{Procs: 4},
		protocols.Star{Procs: 5},
		protocols.Tree{Procs: 7},
	}
	for _, proto := range protos {
		a, b := ForProtocol(proto), ForProtocol(proto)
		if len(a) != len(b) {
			t.Fatalf("%s: group size unstable", proto.Name())
		}
		for i := range a {
			if permKey(a[i]) != permKey(b[i]) {
				t.Fatalf("%s: element %d order unstable: %v vs %v", proto.Name(), i, a[i], b[i])
			}
		}
	}
}

// TestStarFixesCoordinator asserts that no star automorphism moves the
// coordinator p0.
func TestStarFixesCoordinator(t *testing.T) {
	for _, p := range ForProtocol(protocols.Star{Procs: 5}) {
		if p[0] != 0 {
			t.Fatalf("star automorphism moves the coordinator: %v", p)
		}
	}
}

// TestTreePreservesEdges asserts that every tree automorphism maps the
// heap-layout parent relation onto itself: π(parent(p)) == parent(π(p)).
func TestTreePreservesEdges(t *testing.T) {
	for _, n := range []int{3, 7, 15} {
		for _, perm := range ForProtocol(protocols.Tree{Procs: n}) {
			for p := 1; p < n; p++ {
				parent := (p - 1) / 2
				if perm[parent] != sim.ProcID((int(perm[p])-1)/2) {
					t.Fatalf("tree-%d automorphism %v breaks edge %d→%d", n, perm, parent, p)
				}
			}
		}
	}
}
