package symmetry

import (
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/protocols"
	"repro/internal/sim"
)

// fuzzProtos are the symmetric topologies the fuzzer drives. Script bytes
// index into this table and into the enabled-event list at each step, so
// every corpus entry decodes to one deterministic partial run.
var fuzzProtos = []sim.Protocol{
	protocols.Tree{Procs: 3},
	protocols.Star{Procs: 3},
	protocols.FullExchange{Procs: 3},
	protocols.Star{Procs: 5},
	protocols.Tree{Procs: 7},
}

// canonKey returns the orbit-minimal key of a configuration: the minimum of
// Key over the identity and every group element. This is the string-engine
// canonical handle the checker dedups on (modulo the decision ledger, which
// relabels covariantly and is exercised by the checker's differential
// suite).
func canonKey(c *sim.Config, perms []sim.ProcPerm) string {
	best := c.Key()
	for _, perm := range perms {
		pc, ok := sim.PermuteConfig(c, perm)
		if !ok {
			panic("fuzz: protocol state does not implement sim.Permuter")
		}
		if k := pc.Key(); k < best {
			best = k
		}
	}
	return best
}

// canonFP is canonKey for the fingerprint engine: the Digest.Less-minimal
// fingerprint over the orbit.
func canonFP(c *sim.Config, perms []sim.ProcPerm) fingerprint.Digest {
	best := c.Fingerprint()
	for _, perm := range perms {
		pc, ok := sim.PermuteConfig(c, perm)
		if !ok {
			panic("fuzz: protocol state does not implement sim.Permuter")
		}
		if fp := pc.Fingerprint(); fp.Less(best) {
			best = fp
		}
	}
	return best
}

// FuzzOrbitCanonical drives a random partial run of a symmetric protocol
// (deliveries, sends, and failures chosen by the script bytes) and checks,
// at every step, that the canonical handle is constant on the orbit: for
// every automorphism π, canon(π(c)) == canon(c), for the key-minimal and
// the fingerprint-minimal handle, on both the raw configuration and the
// dead-letter-erased view (the checker canonicalizes erased configurations
// under ReduceBoth; erasure and permutation must commute for that to be
// sound).
func FuzzOrbitCanonical(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint8(2), []byte{1, 1, 2, 3, 5, 8, 13, 21})
	f.Add(uint8(3), []byte{0, 0, 0, 0, 9, 9, 9, 9})
	f.Add(uint8(4), []byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, sel uint8, script []byte) {
		proto := fuzzProtos[int(sel)%len(fuzzProtos)]
		perms := ForProtocol(proto)
		if len(perms) == 0 {
			t.Fatalf("%s: expected a non-trivial group", proto.Name())
		}
		n := procsOf(proto)
		if len(script) > 16 {
			script = script[:16]
		}
		inputs := make([]sim.Bit, n)
		for p := range inputs {
			if sel&(1<<(p%8)) != 0 {
				inputs[p] = 1
			}
		}
		c := sim.NewConfig(proto, inputs)
		check := func(c *sim.Config) {
			wantKey, wantFP := canonKey(c, perms), canonFP(c, perms)
			erased, _ := c.WithoutDeadBuffers()
			wantEK, wantEFP := canonKey(erased, perms), canonFP(erased, perms)
			for _, perm := range perms {
				pc, ok := sim.PermuteConfig(c, perm)
				if !ok {
					t.Fatal("protocol state does not implement sim.Permuter")
				}
				if got := canonKey(pc, perms); got != wantKey {
					t.Fatalf("canonical key not orbit-invariant under %v:\n got %q\nwant %q", perm, got, wantKey)
				}
				if got := canonFP(pc, perms); got != wantFP {
					t.Fatalf("canonical fingerprint not orbit-invariant under %v", perm)
				}
				pe, _ := pc.WithoutDeadBuffers()
				if got := canonKey(pe, perms); got != wantEK {
					t.Fatalf("erased canonical key not orbit-invariant under %v:\n got %q\nwant %q", perm, got, wantEK)
				}
				if got := canonFP(pe, perms); got != wantEFP {
					t.Fatalf("erased canonical fingerprint not orbit-invariant under %v", perm)
				}
			}
		}
		check(c)
		var events []sim.Event
		failures := 0
		for _, b := range script {
			events = sim.AppendEnabled(events[:0], c)
			if failures < 2 {
				for p := 0; p < n; p++ {
					if !c.Faulty(sim.ProcID(p)) {
						events = append(events, sim.Event{Proc: sim.ProcID(p), Type: sim.Fail})
					}
				}
			}
			if len(events) == 0 {
				break
			}
			ev := events[int(b)%len(events)]
			if ev.Type == sim.Fail {
				failures++
			}
			next, _, err := sim.Apply(proto, c, ev)
			if err != nil {
				t.Fatalf("enabled event %v failed to apply: %v", ev, err)
			}
			c = next
			check(c)
		}
	})
}
