package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Node phases, for the quiescence monitor: a run can only be quiescent
// when every node is blocked on an empty mailbox or has exited.
const (
	phaseRunning int32 = iota
	phaseBlocked
	phaseExited
)

// node runs one processor: a goroutine driving the protocol's pure δ/β
// transition functions against live state. The loop mirrors the model's
// step alternation exactly — sending states take sending steps, receiving
// states block on the mailbox — and every step is admitted by the
// collector *before* its effects happen, so the recorded total order is a
// legal schedule.
//
// A node holds the only mutable copy of its processor's state and touches
// it from this one goroutine; the protocol's transition functions stay
// pure (ccvet checks them), so all mutation is the two assignments below.
type node struct {
	p     sim.ProcID
	proto sim.Protocol
	state sim.State
	mb    *mailbox
	net   Transport
	col   *collector
	det   *detector

	crashed chan struct{} // closed when a crash is injected on p
	done    chan struct{} // closed when the run shuts down
	phase   atomic.Int32
}

// loop is the processor's life: step until halted, crashed, or shut down.
func (nd *node) loop() {
	defer nd.phase.Store(phaseExited)
	defer nd.det.markExited(nd.p)
	stop := make(chan struct{})
	defer close(stop)
	go nd.heartbeats(stop)

	nd.reportDecision()
	for {
		select {
		case <-nd.crashed:
			return
		case <-nd.done:
			return
		default:
		}
		switch nd.state.Kind() {
		case sim.Sending:
			s2, envs := nd.proto.SendStep(nd.p, nd.state)
			msgs, ts, ok, err := nd.col.recordSend(nd.p, envs)
			if err != nil || !ok {
				return
			}
			nd.state = s2
			nd.reportDecision()
			for _, m := range msgs {
				nd.net.Send(m, ts)
			}
		case sim.Receiving:
			m, witness, ok := nd.mb.tryRecv()
			if !ok {
				nd.phase.Store(phaseBlocked)
				select {
				case <-nd.mb.notify:
					nd.phase.Store(phaseRunning)
					continue
				case <-nd.crashed:
					return
				case <-nd.done:
					return
				}
			}
			if !nd.col.recordDeliver(nd.p, m.ID, witness) {
				nd.mb.stepDone()
				return
			}
			nd.state = nd.proto.Receive(nd.p, nd.state, m)
			nd.mb.stepDone()
			nd.reportDecision()
		default:
			// Halted (or, impossibly, failed): the processor's role is
			// complete. Close the mailbox — the model ignores the buffers
			// of halted processors.
			nd.mb.close()
			return
		}
	}
}

// reportDecision forwards the state's visible decision, if any, to the
// collector (first decision wins; irrevocability is checked by replay).
func (nd *node) reportDecision() {
	if d, ok := nd.state.Decided(); ok {
		nd.col.recordDecision(nd.p, d)
	}
}

// heartbeats stores a liveness timestamp every beat interval until the
// node exits or crashes. An injected crash stops the heartbeat exactly
// like the modeled processor it kills: silently.
func (nd *node) heartbeats(stop <-chan struct{}) {
	t := time.NewTicker(nd.det.beat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			nd.det.heartbeat(nd.p)
		case <-stop:
			return
		case <-nd.crashed:
			return
		case <-nd.done:
			return
		}
	}
}
