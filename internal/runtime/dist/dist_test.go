package dist_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/protocols"
	"repro/internal/runtime"
	"repro/internal/runtime/dist"
	"repro/internal/runtime/netx"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// opts is the protocol registry every host in these tests shares.
var opts = dist.Options{
	Resolve: func(name string, n int) (sim.Protocol, error) {
		if name != "ackcommit" {
			return nil, fmt.Errorf("test registry has no %q", name)
		}
		return protocols.AckCommit{Procs: n}, nil
	},
	Decode: protocols.ParsePayloadKey,
}

var wtTC = taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Consistency: taxonomy.TC, Termination: taxonomy.WT}

// contiguousOwner splits n processors into hosts contiguous slices.
func contiguousOwner(n, hosts int) []int {
	owner := make([]int, n)
	for p := range owner {
		owner[p] = p * hosts / n
	}
	return owner
}

// runDistributed executes one distributed run in-process: Serve on a
// goroutine for host 0, one Join goroutine per remaining host.
func runDistributed(t *testing.T, spec dist.Spec) *dist.Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	addrCh := make(chan string, 1)
	o := opts
	o.OnListen = func(addr string) { addrCh <- addr }

	type served struct {
		rep *dist.Report
		err error
	}
	servedCh := make(chan served, 1)
	go func() {
		rep, err := dist.Serve(ctx, "127.0.0.1:0", spec, o)
		servedCh <- served{rep, err}
	}()
	addr := <-addrCh

	joinErr := make(chan error, spec.Hosts())
	for h := 1; h < spec.Hosts(); h++ {
		go func() { joinErr <- dist.Join(ctx, addr, opts) }()
	}

	s := <-servedCh
	if s.err != nil {
		t.Fatalf("Serve: %v", s.err)
	}
	for h := 1; h < spec.Hosts(); h++ {
		if err := <-joinErr; err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	return s.rep
}

// TestDistributedRunConforms runs ackcommit N=9 across three processes'
// worth of groups with message faults and link faults, and requires the
// merged Lamport-ordered schedule to replay as a legal run of the model —
// the same conformance bar the in-memory transport clears.
func TestDistributedRunConforms(t *testing.T) {
	const n, hosts = 9, 3
	inputs := make([]sim.Bit, n)
	for i := range inputs {
		inputs[i] = sim.One
	}
	spec := dist.Spec{
		Proto:  "ackcommit",
		N:      n,
		Inputs: inputs,
		Owner:  contiguousOwner(n, hosts),
		Faults: runtime.FaultPlan{Seed: 99, DropRate: 0.05, DupRate: 0.05, MaxDelay: 200 * time.Microsecond},
		Links: netx.LinkFaultPlan{
			Seed:            7,
			SeverRate:       0.15,
			StallRate:       0.10,
			ResetRate:       0.10,
			ActiveIntervals: 3,
		},
		PartitionInterval: 50 * time.Millisecond,
		Deadline:          90 * time.Second,
	}
	rep := runDistributed(t, spec)
	res := rep.Result
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.Quiescent {
		t.Fatal("run did not quiesce")
	}
	proto := protocols.AckCommit{Procs: n}
	conf, err := runtime.Conform(res, proto, wtTC)
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	if !conf.OK() {
		t.Fatalf("distributed trace diverges from the model: %v", conf.Divergences[0])
	}
	for p, d := range res.Decisions {
		if d != sim.Commit {
			t.Errorf("processor %d decided %s, want commit (all-ones, no crashes)", p, d)
		}
	}
	st := res.Transport
	if st.FramesSent == 0 {
		t.Error("no frames crossed the mesh; the run was not distributed")
	}
	if st.Accepted != st.Settled {
		t.Errorf("accepted %d != settled %d at quiescence", st.Accepted, st.Settled)
	}
	if st.EncodeFailures != 0 || st.GarbageFrames != 0 {
		t.Errorf("silent-loss counters nonzero: encode %d, garbage %d", st.EncodeFailures, st.GarbageFrames)
	}
	if len(rep.PerHost) != hosts {
		t.Fatalf("%d host reports, want %d", len(rep.PerHost), hosts)
	}
}

// TestDistributedCrashRecovery injects a crash on a remotely hosted
// processor mid-run; the owner host must detect it, the notices must cross
// the mesh, and the merged trace must still conform.
func TestDistributedCrashRecovery(t *testing.T) {
	const n, hosts = 9, 3
	inputs := make([]sim.Bit, n)
	for i := range inputs {
		inputs[i] = sim.One
	}
	spec := dist.Spec{
		Proto:         "ackcommit",
		N:             n,
		Inputs:        inputs,
		Owner:         contiguousOwner(n, hosts),
		Faults:        runtime.FaultPlan{Seed: 3, DropRate: 0.05, MaxDelay: 100 * time.Microsecond},
		Heartbeat:     time.Millisecond,
		DetectTimeout: 15 * time.Millisecond,
		Deadline:      90 * time.Second,
		// Processor 4 lives on host 1: the crash command crosses the
		// control plane, the notices cross the mesh.
		Failures: []sim.FailureAt{{Proc: 4, AfterStep: 6}},
	}
	rep := runDistributed(t, spec)
	res := rep.Result
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.Quiescent {
		t.Fatal("run did not quiesce after the crash")
	}
	if len(res.Crashes) != 1 || res.Crashes[0].Proc != 4 {
		t.Fatalf("crashes = %+v, want exactly processor 4", res.Crashes)
	}
	if res.Crashes[0].Detection <= 0 {
		t.Error("crash detection latency not measured")
	}
	conf, err := runtime.Conform(res, protocols.AckCommit{Procs: n}, wtTC)
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	if !conf.OK() {
		t.Fatalf("post-crash distributed trace diverges: %v", conf.Divergences[0])
	}
}
