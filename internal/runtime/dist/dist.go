// Package dist runs live executions across several OS processes: a
// coordinator (host 0) and joiners (hosts 1..H-1), each running a
// runtime.Group over a shared netx mesh, stitched together by a JSON-lines
// control plane on one TCP connection per joiner.
//
// A session admits a fixed set of joiners once, then executes any number of
// runs over the standing control connections — each run gets a fresh mesh
// and a fresh group on every host, so per-run fault seeds and link state
// never leak between runs. Control flow:
//
//	joiner → coord   hello                   (once per session)
//	  per run:
//	coord  → joiner  welcome{host, spec}
//	joiner → coord   ready{dataAddr}         (fresh mesh listening)
//	coord  → joiner  peers{addrs}            (all hosts known)
//	joiner → coord   armed                   (group built, mesh wired)
//	coord  → joiner  go{startNs}             (everybody starts together)
//	joiner → coord   status…                 (periodic, drives quiescence)
//	coord  → joiner  crash{proc}             (routed failure injections)
//	coord  → joiner  finish                  (global quiescence or deadline)
//	joiner → coord   report{group result}
//	coord  → joiner  bye                     (run over; next welcome or done)
//	  end of session:
//	coord  → joiner  done                    (joiner exits cleanly)
//
// The coordinator aggregates statuses into the distributed quiescence
// predicate — every host idle with empty boxes, nothing pending or in
// flight, no undetected crash, all injections fired, and the global event
// count stable across consecutive fresh rounds — then merges the group
// results by Lamport order into a runtime.Result identical in shape to a
// single-process run's, ready for the same conformance replay.
package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/runtime/netx"
	"repro/internal/sim"
)

// Spec is everything a host needs to run its slice of one distributed
// execution. The coordinator sends it verbatim to every joiner, so all
// hosts derive their fault schedules from the same seeds.
type Spec struct {
	// Proto names the protocol (resolved via Options.Resolve) and N its
	// processor count.
	Proto string `json:"proto"`
	N     int    `json:"n"`
	// Inputs is the full input vector.
	Inputs []sim.Bit `json:"inputs"`
	// Owner maps each processor to its host; hosts must be 0..H-1 with
	// host 0 the coordinator.
	Owner []int `json:"owner"`
	// Faults is the message-level fault plan (drops, dups, delays).
	Faults runtime.FaultPlan `json:"faults"`
	// Links is the link-level fault plan (partitions, stalls, resets).
	Links             netx.LinkFaultPlan `json:"links"`
	PartitionInterval time.Duration      `json:"partitionInterval"`
	// Mesh tuning; zero values take netx defaults.
	QueueCap         int           `json:"queueCap"`
	Keepalive        time.Duration `json:"keepalive"`
	KeepaliveTimeout time.Duration `json:"keepaliveTimeout"`
	// Detector tuning; zero values take runtime defaults.
	Heartbeat     time.Duration `json:"heartbeat"`
	DetectTimeout time.Duration `json:"detectTimeout"`
	// Deadline bounds the run; past it the coordinator collects whatever
	// exists and reports a non-quiescent result.
	Deadline time.Duration `json:"deadline"`
	// Failures is the planned fail-stop injection schedule, fired against
	// the global event count and routed to each victim's host.
	Failures []sim.FailureAt `json:"failures"`
}

// Hosts returns the host count implied by the owner map.
func (s *Spec) Hosts() int {
	h := 0
	for _, o := range s.Owner {
		if o+1 > h {
			h = o + 1
		}
	}
	return h
}

func (s *Spec) validate() error {
	if s.N < 1 || len(s.Inputs) != s.N || len(s.Owner) != s.N {
		return fmt.Errorf("dist: spec wants n=%d with %d inputs and %d owners", s.N, len(s.Inputs), len(s.Owner))
	}
	seen := make(map[int]bool)
	for p, o := range s.Owner {
		if o < 0 {
			return fmt.Errorf("dist: processor %d has negative host %d", p, o)
		}
		seen[o] = true
	}
	for h := 0; h < s.Hosts(); h++ {
		if !seen[h] {
			return fmt.Errorf("dist: host %d owns no processors", h)
		}
	}
	return nil
}

func (s *Spec) deadline() time.Duration {
	if s.Deadline <= 0 {
		return 60 * time.Second
	}
	return s.Deadline
}

// ContiguousOwner assigns n processors to hosts in contiguous slices, the
// standard layout for soaks (processor p goes to host p*hosts/n).
func ContiguousOwner(n, hosts int) []int {
	owner := make([]int, n)
	for p := range owner {
		owner[p] = p * hosts / n
	}
	return owner
}

// Options injects the protocol registry into the control plane, keeping
// this package independent of the protocol library.
type Options struct {
	// Resolve builds the named protocol at size n. Required.
	Resolve func(name string, n int) (sim.Protocol, error)
	// Decode reconstructs a payload from its canonical key. Required.
	Decode func(key string) (sim.Payload, error)
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
	// OnListen, if set, receives the coordinator's bound control address
	// once it is accepting joiners (useful with a ":0" listen address).
	OnListen func(addr string)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Report is a finished distributed run: the merged result plus each host's
// share, for per-host transport diagnostics.
type Report struct {
	Result  *runtime.Result
	PerHost []*runtime.GroupResult
}

// ctrl is the one JSON-lines message shape of the control plane; Type
// selects which fields are meaningful.
type ctrl struct {
	Type     string               `json:"type"`
	Host     int                  `json:"host,omitempty"`
	Spec     *Spec                `json:"spec,omitempty"`
	DataAddr string               `json:"dataAddr,omitempty"`
	Peers    map[int]string       `json:"peers,omitempty"`
	StartNs  int64                `json:"startNs,omitempty"`
	Status   *runtime.GroupStatus `json:"status,omitempty"`
	Proc     int                  `json:"proc,omitempty"`
	Report   *runtime.GroupResult `json:"report,omitempty"`
	Err      string               `json:"err,omitempty"`
}

// statusInterval is how often each host pushes its status; the
// coordinator's quiescence rounds are paced by it.
const statusInterval = 2 * time.Millisecond

func startMesh(host int, spec *Spec, holder *atomic.Pointer[runtime.Group]) (*netx.Mesh, error) {
	return netx.Listen("127.0.0.1:0", netx.Config{
		Self:              host,
		QueueCap:          spec.QueueCap,
		Keepalive:         spec.Keepalive,
		KeepaliveTimeout:  spec.KeepaliveTimeout,
		PartitionInterval: spec.PartitionInterval,
		Faults:            spec.Links,
		OnFrame: func(_ int, payload []byte) {
			if g := holder.Load(); g != nil {
				g.DeliverWire(payload)
			}
		},
		OnPeerDown: func(int) {
			if g := holder.Load(); g != nil {
				g.NoteLinkDown()
			}
		},
	})
}

func buildGroup(host int, spec *Spec, proto sim.Protocol, mesh *netx.Mesh, decode func(string) (sim.Payload, error)) (*runtime.Group, error) {
	return runtime.StartGroup(runtime.GroupConfig{
		Proto:         proto,
		Inputs:        spec.Inputs,
		Host:          host,
		Owner:         spec.Owner,
		Mesh:          mesh,
		DecodePayload: decode,
		Faults:        spec.Faults,
		Heartbeat:     spec.Heartbeat,
		DetectTimeout: spec.DetectTimeout,
	})
}

// ---- Coordinator ----

// joinerConn is the coordinator's view of one joiner across a session.
type joinerConn struct {
	host int
	conn net.Conn
	enc  *json.Encoder

	mu     sync.Mutex
	status runtime.GroupStatus // ccvet:guardedby mu
	gen    int                 // ccvet:guardedby mu — bumps on every status push
	err    error               // ccvet:guardedby mu — first read error; the session is over
}

func (j *joinerConn) send(m ctrl) error { return j.enc.Encode(m) }

// reset clears per-run state before a new welcome goes out.
func (j *joinerConn) reset() {
	j.mu.Lock()
	j.status = runtime.GroupStatus{}
	j.gen = 0
	j.mu.Unlock()
}

// Coordinator is a standing distributed session: a fixed set of joiners,
// any number of runs.
type Coordinator struct {
	opts      Options
	ln        net.Listener
	joiners   []*joinerConn
	handshake chan ctrl
	reports   chan *runtime.GroupResult
	wg        sync.WaitGroup
	closed    bool
}

// NewCoordinator binds the control plane on listenAddr and admits exactly
// `joins` joiner processes (host ids 1..joins in arrival order). It returns
// once every joiner has said hello.
func NewCoordinator(ctx context.Context, listenAddr string, joins int, opts Options) (*Coordinator, error) {
	if opts.Resolve == nil || opts.Decode == nil {
		return nil, fmt.Errorf("dist: Options.Resolve and Options.Decode are required")
	}
	if joins < 0 {
		return nil, fmt.Errorf("dist: negative joiner count %d", joins)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: control listen %s: %w", listenAddr, err)
	}
	c := &Coordinator{
		opts:      opts,
		ln:        ln,
		handshake: make(chan ctrl, joins+1),
		reports:   make(chan *runtime.GroupResult, joins+1),
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	opts.logf("control plane on %s, waiting for %d joiner(s)", ln.Addr(), joins)
	for h := 1; h <= joins; h++ {
		conn, err := acceptCtx(ctx, ln)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		j := &joinerConn{host: h, conn: conn, enc: json.NewEncoder(conn)}
		c.joiners = append(c.joiners, j)
		c.wg.Add(1)
		go c.readLoop(j)
	}
	for range c.joiners {
		m, err := next(ctx, c.handshake)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		if m.Type != "hello" {
			_ = c.Close()
			return nil, fmt.Errorf("dist: expected hello, got %q", m.Type)
		}
	}
	return c, nil
}

// Addr returns the bound control address joiners should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Hosts returns the session's host count (joiners plus the coordinator).
func (c *Coordinator) Hosts() int { return len(c.joiners) + 1 }

// Close ends the session: joiners receive done and exit, connections and
// the listener close.
func (c *Coordinator) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, j := range c.joiners {
		_ = j.send(ctrl{Type: "done"})
		_ = j.conn.Close()
	}
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

// Run executes one distributed run over the standing session and returns
// the merged result. Errors are control-plane failures; a run that merely
// missed its deadline comes back as a Report whose Result.Err says so.
func (c *Coordinator) Run(ctx context.Context, spec Spec) (*Report, error) {
	if c.closed {
		return nil, fmt.Errorf("dist: session closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Hosts() != c.Hosts() {
		return nil, fmt.Errorf("dist: spec spans %d hosts, session has %d", spec.Hosts(), c.Hosts())
	}
	proto, err := c.opts.Resolve(spec.Proto, spec.N)
	if err != nil {
		return nil, err
	}
	if proto.N() != spec.N {
		return nil, fmt.Errorf("dist: protocol %s has %d processors, spec says %d", spec.Proto, proto.N(), spec.N)
	}

	// Handshake: fresh mesh + group on every host.
	var holder atomic.Pointer[runtime.Group]
	mesh, err := startMesh(0, &spec, &holder)
	if err != nil {
		return nil, err
	}
	defer func() { _ = mesh.Close() }()
	addrs := map[int]string{0: mesh.Addr()}

	for _, j := range c.joiners {
		j.reset()
		if err := j.send(ctrl{Type: "welcome", Host: j.host, Spec: &spec}); err != nil {
			return nil, fmt.Errorf("dist: welcome host %d: %w", j.host, err)
		}
	}
	for range c.joiners {
		m, err := next(ctx, c.handshake)
		if err != nil {
			return nil, err
		}
		if m.Type != "ready" || m.DataAddr == "" {
			return nil, fmt.Errorf("dist: expected ready, got %q", m.Type)
		}
		addrs[m.Host] = m.DataAddr
	}

	group, err := buildGroup(0, &spec, proto, mesh, c.opts.Decode)
	if err != nil {
		return nil, err
	}
	holder.Store(group)
	mesh.SetPeers(addrs)
	for _, j := range c.joiners {
		if err := j.send(ctrl{Type: "peers", Peers: addrs}); err != nil {
			return nil, fmt.Errorf("dist: peers to host %d: %w", j.host, err)
		}
	}
	for range c.joiners {
		m, err := next(ctx, c.handshake)
		if err != nil {
			return nil, err
		}
		if m.Type != "armed" {
			return nil, fmt.Errorf("dist: expected armed, got %q", m.Type)
		}
	}

	// Go.
	startNs := time.Now().UnixNano()
	for _, j := range c.joiners {
		if err := j.send(ctrl{Type: "go", StartNs: startNs}); err != nil {
			return nil, fmt.Errorf("dist: go to host %d: %w", j.host, err)
		}
	}
	group.Start()

	runErr := c.monitor(ctx, &spec, group)

	// Finish: collect every host's share, local group last.
	for _, j := range c.joiners {
		_ = j.send(ctrl{Type: "finish"})
	}
	results := make([]*runtime.GroupResult, 0, c.Hosts())
	for range c.joiners {
		res, err := nextReport(ctx, c.reports)
		if err != nil {
			if runErr == nil {
				runErr = err
			}
			break
		}
		results = append(results, res)
	}
	results = append(results, group.Finish())
	for _, j := range c.joiners {
		_ = j.send(ctrl{Type: "bye"})
	}

	if len(results) < c.Hosts() {
		return nil, fmt.Errorf("dist: only %d of %d hosts reported: %w", len(results), c.Hosts(), runErr)
	}
	merged, err := runtime.MergeGroups(proto.Name(), spec.Inputs, spec.Owner, results, startNs)
	if err != nil {
		return nil, err
	}
	merged.Quiescent = runErr == nil
	merged.Elapsed = time.Duration(time.Now().UnixNano() - startNs)
	merged.Err = runErr
	for _, f := range spec.Failures {
		found := false
		for _, cr := range merged.Crashes {
			if cr.Proc == f.Proc {
				found = true
				break
			}
		}
		if !found {
			merged.Unfired = append(merged.Unfired, f)
		}
	}
	return &Report{Result: merged, PerHost: results}, nil
}

// monitor drives injections and detects global quiescence. It returns nil
// on quiescence and an error on deadline or a host-reported failure.
func (c *Coordinator) monitor(ctx context.Context, spec *Spec, group *runtime.Group) error {
	deadline := time.NewTimer(spec.deadline())
	defer deadline.Stop()
	// Poll at half the status rate so every quiescence round can see a
	// fresh status from every joiner.
	tick := time.NewTicker(2 * statusInterval)
	defer tick.Stop()

	fired := make([]bool, len(spec.Failures))
	lastGen := make([]int, len(c.joiners))
	for i, j := range c.joiners {
		j.mu.Lock()
		lastGen[i] = j.gen
		j.mu.Unlock()
	}
	stable, lastEvents := 0, -1
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return fmt.Errorf("dist: run did not quiesce within %s", spec.deadline())
		case <-tick.C:
		}

		local := group.Status()
		if local.Err != "" {
			return fmt.Errorf("dist: host 0: %s", local.Err)
		}
		events := local.Events
		quiet := local.Idle && local.BoxesEmpty && local.Pending == 0 && local.InFlight == 0 && local.Undetected == 0
		fresh := true
		for i, j := range c.joiners {
			j.mu.Lock()
			st, gen, jerr := j.status, j.gen, j.err
			j.mu.Unlock()
			if jerr != nil {
				return fmt.Errorf("dist: host %d control connection: %w", j.host, jerr)
			}
			if st.Err != "" {
				return fmt.Errorf("dist: host %d: %s", j.host, st.Err)
			}
			events += st.Events
			if !(st.Idle && st.BoxesEmpty && st.Pending == 0 && st.InFlight == 0 && st.Undetected == 0) {
				quiet = false
			}
			if gen == lastGen[i] {
				fresh = false // no new word from this host since the last round
			}
			lastGen[i] = gen
		}

		// Fire due injections against the global event count, routed to
		// the victim's host.
		for i, f := range spec.Failures {
			if fired[i] || f.AfterStep > events {
				continue
			}
			fired[i] = true
			host := spec.Owner[f.Proc]
			if host == 0 {
				group.Crash(f.Proc)
			} else {
				for _, j := range c.joiners {
					if j.host == host {
						_ = j.send(ctrl{Type: "crash", Proc: int(f.Proc)})
						break
					}
				}
			}
			c.opts.logf("crash injected: processor %d on host %d (event %d)", f.Proc, host, events)
		}
		allFired := true
		for i := range spec.Failures {
			if !fired[i] && spec.Failures[i].AfterStep <= events {
				allFired = false
			}
		}

		if quiet && allFired && fresh {
			if events == lastEvents {
				stable++
			} else {
				stable = 0
			}
			lastEvents = events
			if stable >= 3 {
				return nil
			}
		} else {
			stable, lastEvents = 0, -1
		}
	}
}

// readLoop drains one joiner's control connection for the whole session:
// statuses update the shared snapshot, reports complete a run, everything
// else feeds the handshake channel.
func (c *Coordinator) readLoop(j *joinerConn) {
	defer c.wg.Done()
	dec := json.NewDecoder(bufio.NewReader(j.conn))
	for {
		var m ctrl
		if err := dec.Decode(&m); err != nil {
			j.mu.Lock()
			if j.err == nil {
				j.err = err
			}
			j.mu.Unlock()
			// Unblock a Run that is waiting on this host's report.
			select {
			case c.reports <- nil:
			default:
			}
			return
		}
		switch m.Type {
		case "status":
			if m.Status != nil {
				j.mu.Lock()
				j.status = *m.Status
				j.gen++
				j.mu.Unlock()
			}
		case "report":
			c.reports <- m.Report
		default:
			c.handshake <- m
		}
	}
}

func next(ctx context.Context, ch <-chan ctrl) (ctrl, error) {
	select {
	case m := <-ch:
		return m, nil
	case <-ctx.Done():
		return ctrl{}, ctx.Err()
	case <-time.After(30 * time.Second):
		return ctrl{}, fmt.Errorf("dist: handshake timed out")
	}
}

func nextReport(ctx context.Context, ch <-chan *runtime.GroupResult) (*runtime.GroupResult, error) {
	select {
	case res := <-ch:
		if res == nil {
			return nil, fmt.Errorf("dist: a host's control connection dropped before it reported")
		}
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("dist: timed out waiting for a host report")
	}
}

func acceptCtx(ctx context.Context, ln net.Listener) (net.Conn, error) {
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	//ccvet:ignore golifecycle Accept cannot be interrupted portably; on ctx.Done the listener is closed, which makes Accept return and the goroutine exit
	go func() {
		conn, err := ln.Accept()
		ch <- res{conn, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("dist: accept: %w", r.err)
		}
		return r.conn, nil
	case <-ctx.Done():
		ln.Close()
		return nil, ctx.Err()
	}
}

// Serve is the single-run convenience: admit the spec's joiners, run once,
// tear the session down.
func Serve(ctx context.Context, listenAddr string, spec Spec, opts Options) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c, err := NewCoordinator(ctx, listenAddr, spec.Hosts()-1, opts)
	if err != nil {
		return nil, err
	}
	defer func() { _ = c.Close() }()
	return c.Run(ctx, spec)
}

// ---- Joiner ----

// Join runs one joiner process for a whole session: dial the coordinator
// (with retry, since the joiner may start first), then serve runs until the
// coordinator says done or hangs up.
func Join(ctx context.Context, ctrlAddr string, opts Options) error {
	if opts.Resolve == nil || opts.Decode == nil {
		return fmt.Errorf("dist: Options.Resolve and Options.Decode are required")
	}
	conn, err := dialRetry(ctx, ctrlAddr, 10*time.Second)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	enc := json.NewEncoder(conn)
	inCh := make(chan ctrl, 64)
	// Deferred order on return: close the connection (failing the decoder's
	// read), drain inCh until the decoder closes it, then join it.
	defer wg.Wait()
	defer func() {
		for range inCh {
		}
	}()
	defer conn.Close()
	readErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var m ctrl
			if err := dec.Decode(&m); err != nil {
				readErr <- err
				close(inCh)
				return
			}
			inCh <- m
		}
	}()
	j := &joinerSession{ctx: ctx, enc: enc, inCh: inCh, readErr: readErr, opts: opts}

	if err := enc.Encode(ctrl{Type: "hello"}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	for {
		m, ok, err := j.recvAny()
		if err != nil {
			return err
		}
		if !ok || m.Type == "done" {
			return nil // session over
		}
		if m.Type != "welcome" {
			return fmt.Errorf("dist: expected welcome, got %q", m.Type)
		}
		if m.Spec == nil {
			return fmt.Errorf("dist: welcome without a spec")
		}
		if err := j.runOne(*m.Spec, m.Host); err != nil {
			return err
		}
	}
}

// joinerSession is one joiner's side of the control connection.
type joinerSession struct {
	ctx     context.Context
	enc     *json.Encoder
	inCh    chan ctrl
	readErr chan error
	opts    Options
}

// recvAny returns the next control message; ok=false means the connection
// closed cleanly from the joiner's point of view.
func (j *joinerSession) recvAny() (ctrl, bool, error) {
	select {
	case m, ok := <-j.inCh:
		if !ok {
			return ctrl{}, false, nil
		}
		return m, true, nil
	case <-j.ctx.Done():
		return ctrl{}, false, j.ctx.Err()
	}
}

// recv returns the next message, requiring the given type.
func (j *joinerSession) recv(typ string) (ctrl, error) {
	select {
	case m, ok := <-j.inCh:
		if !ok {
			return ctrl{}, fmt.Errorf("dist: control connection lost: %v", <-j.readErr)
		}
		if m.Type != typ {
			return ctrl{}, fmt.Errorf("dist: expected %q, got %q", typ, m.Type)
		}
		return m, nil
	case <-j.ctx.Done():
		return ctrl{}, j.ctx.Err()
	case <-time.After(30 * time.Second):
		return ctrl{}, fmt.Errorf("dist: timed out waiting for %q", typ)
	}
}

// runOne executes one run's slice on this host.
func (j *joinerSession) runOne(spec Spec, host int) error {
	proto, err := j.opts.Resolve(spec.Proto, spec.N)
	if err != nil {
		return err
	}
	var holder atomic.Pointer[runtime.Group]
	mesh, err := startMesh(host, &spec, &holder)
	if err != nil {
		return err
	}
	defer func() { _ = mesh.Close() }()
	if err := j.enc.Encode(ctrl{Type: "ready", Host: host, DataAddr: mesh.Addr()}); err != nil {
		return fmt.Errorf("dist: ready: %w", err)
	}
	p, err := j.recv("peers")
	if err != nil {
		return err
	}
	group, err := buildGroup(host, &spec, proto, mesh, j.opts.Decode)
	if err != nil {
		return err
	}
	holder.Store(group)
	mesh.SetPeers(p.Peers)
	if err := j.enc.Encode(ctrl{Type: "armed", Host: host}); err != nil {
		return fmt.Errorf("dist: armed: %w", err)
	}
	if _, err := j.recv("go"); err != nil {
		return err
	}
	group.Start()
	j.opts.logf("host %d running %d processor(s)", host, countOwned(spec.Owner, host))

	tick := time.NewTicker(statusInterval)
	defer tick.Stop()
loop:
	for {
		select {
		case <-j.ctx.Done():
			return j.ctx.Err()
		case <-tick.C:
			st := group.Status()
			if err := j.enc.Encode(ctrl{Type: "status", Host: host, Status: &st}); err != nil {
				return fmt.Errorf("dist: status push: %w", err)
			}
		case m, ok := <-j.inCh:
			if !ok {
				return fmt.Errorf("dist: control connection lost: %v", <-j.readErr)
			}
			switch m.Type {
			case "crash":
				group.Crash(sim.ProcID(m.Proc))
			case "finish":
				break loop
			}
		}
	}

	res := group.Finish()
	if err := j.enc.Encode(ctrl{Type: "report", Host: host, Report: res}); err != nil {
		return fmt.Errorf("dist: report: %w", err)
	}
	// Wait for bye so the mesh outlives any peer still flushing acks.
	if _, err := j.recv("bye"); err != nil {
		return err
	}
	return nil
}

func dialRetry(ctx context.Context, addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("dist: dial %s: %w", addr, lastErr)
}

func countOwned(owner []int, host int) int {
	c := 0
	for _, o := range owner {
		if o == host {
			c++
		}
	}
	return c
}
