package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// collector is the run's total-order serialization point. Every node
// reports each step here, under one mutex, *before* applying its effects:
// the order in which the mutex admits events is the run's schedule, and the
// conformance replay re-executes exactly that schedule. The collector also
// mirrors the model's per-channel sequence counters so live messages carry
// the same triples (p, q, k) the simulator would assign, and it is the
// ground truth for which processors have crashed — a record call for a
// crashed processor is refused, so an event is in the schedule if and only
// if it precedes that processor's fail event in the total order.
type collector struct {
	mu  sync.Mutex
	n   int
	sch sim.Schedule // ccvet:guardedby mu
	seq []int        // ccvet:guardedby mu — seq[from*n+to], mirroring sim.Config's channel counters
	// clock is the collector's Lamport clock; ts[i] is the timestamp of
	// sch[i]. In a single-process run the total order already is the mutex
	// admission order and the timestamps are simply 1,2,3…; in a
	// distributed run each group's collector stamps its local events and
	// receives witnesses piggybacked on incoming frames, so merging all
	// groups' schedules by (ts, group, local index) yields a total order
	// consistent with happens-before.
	clock uint64   // ccvet:guardedby mu
	ts    []uint64 // ccvet:guardedby mu — Lamport timestamp per schedule event
	// failed marks crashed processors; refusals below keep the schedule
	// consistent with fail-stop semantics.
	failed []bool // ccvet:guardedby mu
	err    error  // ccvet:guardedby mu

	decisions []sim.Decision // ccvet:guardedby mu
	decidedAt []time.Time    // ccvet:guardedby mu
	crashAt   []time.Time    // ccvet:guardedby mu

	start time.Time
}

func newCollector(n int) *collector {
	return &collector{
		n:         n,
		seq:       make([]int, n*n),
		failed:    make([]bool, n),
		decisions: make([]sim.Decision, n),
		decidedAt: make([]time.Time, n),
		crashAt:   make([]time.Time, n),
		start:     time.Now(),
	}
}

// tick advances the Lamport clock past witness and stamps the current
// event, returning its timestamp. Callers hold co.mu.
//
//ccvet:holds mu
func (co *collector) tick(witness uint64) uint64 {
	if witness > co.clock {
		co.clock = witness
	}
	co.clock++
	co.ts = append(co.ts, co.clock)
	return co.clock
}

// nextSeq allocates the next sequence number from→to, exactly as
// sim.Config does during replay.
//
//ccvet:holds mu
func (co *collector) nextSeq(from, to sim.ProcID) int {
	i := int(from)*co.n + int(to)
	co.seq[i]++
	return co.seq[i]
}

// recordSend admits one sending step: it validates the envelopes against
// the model contracts (at most one message, no self-send, in-range
// destination), appends the event, and returns the stamped messages for
// the node to hand to the network. ok is false if p has crashed or the run
// already failed; err is non-nil for a model-contract violation, which
// aborts the run.
func (co *collector) recordSend(p sim.ProcID, envs []sim.Envelope) (msgs []sim.Message, ts uint64, ok bool, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed[p] || co.err != nil {
		return nil, 0, false, nil
	}
	if len(envs) > 1 {
		co.err = fmt.Errorf("%w: %s emitted %d messages", sim.ErrMultiSend, p, len(envs))
		return nil, 0, false, co.err
	}
	for _, env := range envs {
		if env.To == p {
			co.err = fmt.Errorf("%w: from %s", sim.ErrSelfSend, p)
			return nil, 0, false, co.err
		}
		if int(env.To) < 0 || int(env.To) >= co.n {
			co.err = fmt.Errorf("runtime: %s sent to out-of-range %s", p, env.To)
			return nil, 0, false, co.err
		}
	}
	co.sch = append(co.sch, sim.Event{Proc: p, Type: sim.SendStepEvent})
	ts = co.tick(0)
	for _, env := range envs {
		m := sim.Message{
			ID:      sim.MsgID{From: p, To: env.To, Seq: co.nextSeq(p, env.To)},
			Payload: env.Payload,
		}.Memoized()
		msgs = append(msgs, m)
	}
	return msgs, ts, true, nil
}

// recordDeliver admits one delivery event; witness is the Lamport
// timestamp carried by the message's frame, so the delivery is stamped
// after its send. ok is false if p has crashed or the run failed; the node
// must then discard the message unapplied.
func (co *collector) recordDeliver(p sim.ProcID, id sim.MsgID, witness uint64) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed[p] || co.err != nil {
		return false
	}
	co.sch = append(co.sch, sim.Event{Proc: p, Type: sim.Deliver, Msg: id})
	co.tick(witness)
	return true
}

// recordOmit admits one omission event: the adversary suppressed the
// delivery of id to p after the transport accepted it. The event enters the
// total order exactly like a delivery — stamped after its send via the
// frame's Lamport witness — so conformance replay removes the message from
// the model buffer without firing Receive. A crashed p refuses the record
// (fail-stop: nothing happens at a crashed processor, and the model's Omit
// is inapplicable to Failed states); the caller must then buffer normally.
func (co *collector) recordOmit(p sim.ProcID, id sim.MsgID, witness uint64) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed[p] || co.err != nil {
		return false
	}
	co.sch = append(co.sch, sim.Event{Proc: p, Type: sim.Omit, Msg: id})
	co.tick(witness)
	return true
}

// recordCrash injects a fail-stop failure: it appends the fail event and
// stamps the failure notices failed(p) with the sequence numbers the
// model's atomic fail broadcast would assign at this point in the total
// order. The notices are returned for the failure detector to hold until
// its timeout fires — the *fact* of the failure is fixed here; *when*
// survivors learn of it is the detector's business.
func (co *collector) recordCrash(p sim.ProcID) (notices []sim.Message, ts uint64, ok bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed[p] || co.err != nil {
		return nil, 0, false
	}
	co.failed[p] = true
	co.crashAt[p] = time.Now()
	co.sch = append(co.sch, sim.Event{Proc: p, Type: sim.Fail})
	ts = co.tick(0)
	for q := 0; q < co.n; q++ {
		if sim.ProcID(q) == p {
			continue
		}
		m := sim.Message{
			ID:     sim.MsgID{From: p, To: sim.ProcID(q), Seq: co.nextSeq(p, sim.ProcID(q))},
			Notice: true,
		}.Memoized()
		notices = append(notices, m)
	}
	return notices, ts, true
}

// recordDecision notes p's first visible decision and when it was reached.
func (co *collector) recordDecision(p sim.ProcID, d sim.Decision) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.decisions[p] == sim.NoDecision {
		co.decisions[p] = d
		co.decidedAt[p] = time.Now()
	}
}

// isFailed reports ground truth about p; the detector gates on this so a
// slow-but-alive processor is never declared failed.
func (co *collector) isFailed(p sim.ProcID) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.failed[p]
}

// events returns the number of recorded events.
func (co *collector) events() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.sch)
}

// failure returns the recorded model-contract violation, if any.
func (co *collector) failure() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

// snapshot copies the schedule and per-processor records for the result.
func (co *collector) snapshot() (sim.Schedule, []uint64, []sim.Decision, []time.Time, []time.Time) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append(sim.Schedule(nil), co.sch...),
		append([]uint64(nil), co.ts...),
		append([]sim.Decision(nil), co.decisions...),
		append([]time.Time(nil), co.decidedAt...),
		append([]time.Time(nil), co.crashAt...)
}
