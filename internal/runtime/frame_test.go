package runtime

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

type testPayload string

func (p testPayload) Key() string { return string(p) }

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, To: 1, Seq: 1, PayloadKey: "vote:1"},
		{From: 2, To: 0, Seq: 42, PayloadKey: ""},
		{From: 1, To: 2, Seq: 7, Notice: true},
		{From: 1 << 20, To: 3, Seq: 1 << 40, PayloadKey: "x"},
	}
	for _, f := range frames {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("EncodeFrame(%+v): %v", f, err)
		}
		got, err := DecodeFrame(data)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if got != f {
			t.Errorf("round trip: got %+v, want %+v", got, f)
		}
		id, err := DedupKey(data)
		if err != nil {
			t.Fatalf("DedupKey: %v", err)
		}
		if id != f.ID() {
			t.Errorf("DedupKey = %v, want %v", id, f.ID())
		}
		re, err := EncodeFrame(got)
		if err != nil || !bytes.Equal(re, data) {
			t.Errorf("re-encode differs: %x vs %x (err %v)", re, data, err)
		}
	}
}

func TestFrameEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Frame{
		{From: -1, To: 1, Seq: 1},
		{From: 0, To: -2, Seq: 1},
		{From: 0, To: 1, Seq: -1},
		{From: 0, To: 1, Seq: 1, Notice: true, PayloadKey: "x"},
	}
	for _, f := range bad {
		if _, err := EncodeFrame(f); !errors.Is(err, ErrFrameRange) {
			t.Errorf("EncodeFrame(%+v) err = %v, want ErrFrameRange", f, err)
		}
	}
}

func TestFrameDecodeRejectsCorrupt(t *testing.T) {
	good, err := EncodeFrame(Frame{From: 0, To: 1, Seq: 3, PayloadKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := [][]byte{
		nil,
		good[:frameIDLen-1],
		append(append([]byte{}, good...), 0xFF), // trailing byte
		append([]byte{0xCD}, good[1:]...),       // bad magic
		append([]byte{frameMagic, 9}, good[2:]...), // bad version
	}
	flagged := append([]byte{}, good...)
	flagged[18] = 0x82 // undefined flag bits
	corrupt = append(corrupt, flagged)
	for i, data := range corrupt {
		if _, err := DecodeFrame(data); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("case %d: DecodeFrame err = %v, want ErrFrameCorrupt", i, err)
		}
	}
	if _, err := DedupKey(good[:4]); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("DedupKey on short prefix: err = %v, want ErrFrameCorrupt", err)
	}
}

func TestEncodeMessage(t *testing.T) {
	m := sim.Message{
		ID:      sim.MsgID{From: 1, To: 2, Seq: 5},
		Payload: testPayload("ping"),
	}
	data, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != m.ID || f.PayloadKey != "ping" || f.Notice {
		t.Errorf("decoded %+v from message %v", f, m)
	}

	notice := sim.Message{ID: sim.MsgID{From: 0, To: 1, Seq: 9}, Notice: true}
	data, err = EncodeMessage(notice)
	if err != nil {
		t.Fatal(err)
	}
	f, err = DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Notice || f.PayloadKey != "" || f.ID() != notice.ID {
		t.Errorf("decoded notice %+v", f)
	}
}
