package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// mkMsg builds a message and its canonical frame for mailbox tests.
func mkMsg(t *testing.T, from, to sim.ProcID, seq int) (sim.Message, []byte) {
	t.Helper()
	key := fmt.Sprintf("m%d-%d-%d", from, to, seq)
	m := sim.Message{ID: sim.MsgID{From: from, To: to, Seq: seq}, Payload: testPayload(key)}
	frame, err := EncodeFrame(Frame{From: from, To: to, Seq: seq, PayloadKey: key})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return m, frame
}

func newTestMailbox(seed int64, dedupOff bool) (*mailbox, *transportCounters) {
	counters := &transportCounters{}
	var pending atomic.Int64
	return newMailbox(seed, dedupOff, &pending, counters), counters
}

// TestMailboxAgingBound checks the fair-buffer guarantee under a steady
// stream: however the seeded picks fall, no buffered message is passed
// over more than agingLimit + B times when B messages are buffered, so no
// message starves.
func TestMailboxAgingBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 1984} {
		mb, _ := newTestMailbox(seed, false)
		const buffered = 4
		const rounds = 500
		born := make(map[sim.MsgID]int) // pop index at which the message was buffered
		next := 1
		feed := func(at int) {
			m, frame := mkMsg(t, 0, 1, next)
			next++
			mb.deliver(frame, m, uint64(next))
			born[m.ID] = at
		}
		for i := 0; i < buffered; i++ {
			feed(0)
		}
		maxWait := 0
		for pop := 1; pop <= rounds; pop++ {
			m, _, ok := mb.tryRecv()
			if !ok {
				t.Fatalf("seed %d: mailbox empty at pop %d", seed, pop)
			}
			mb.stepDone()
			if wait := pop - born[m.ID]; wait > maxWait {
				maxWait = wait
			}
			feed(pop)
		}
		if limit := agingLimit + buffered; maxWait > limit {
			t.Errorf("seed %d: a message waited %d pops, want ≤ %d (agingLimit %d + %d buffered)",
				seed, maxWait, limit, agingLimit, buffered)
		}
	}
}

// TestMailboxDeliverAfterClose checks the model's rule that the buffers of
// failed processors are ignored: frames delivered after close are
// discarded, buffered frames are dropped, and tryRecv never yields again.
func TestMailboxDeliverAfterClose(t *testing.T) {
	mb, counters := newTestMailbox(7, false)
	m1, f1 := mkMsg(t, 0, 1, 1)
	mb.deliver(f1, m1, 1)
	mb.close()
	if !mb.empty() {
		t.Error("closed mailbox is not empty")
	}
	m2, f2 := mkMsg(t, 0, 1, 2)
	mb.deliver(f2, m2, 2)
	if _, _, ok := mb.tryRecv(); ok {
		t.Error("tryRecv yielded a message from a closed mailbox")
	}
	if !mb.empty() {
		t.Error("delivery to a closed mailbox left it non-empty")
	}
	if got := counters.garbageFrames.Load(); got != 0 {
		t.Errorf("deliver-after-close counted %d garbage frames; it is a discard, not garbage", got)
	}
}

// TestMailboxGarbageFrameCounted checks the formerly-silent loss path: a
// frame whose bytes do not carry its message's triple is discarded and the
// loss is counted, never dropped quietly.
func TestMailboxGarbageFrameCounted(t *testing.T) {
	mb, counters := newTestMailbox(7, false)
	m, _ := mkMsg(t, 0, 1, 1)
	_, wrongFrame := mkMsg(t, 0, 1, 2) // carries triple (0,1,2), message says (0,1,1)
	mb.deliver(wrongFrame, m, 1)
	if _, _, ok := mb.tryRecv(); ok {
		t.Error("mailbox buffered a frame whose triple mismatches its message")
	}
	mb.deliver([]byte{0xde, 0xad}, m, 2)
	if got := counters.garbageFrames.Load(); got != 2 {
		t.Errorf("garbageFrames = %d, want 2", got)
	}
}

// TestMailboxConcurrentDedup hammers one mailbox with the same message
// from many goroutines: exactly one copy may be buffered, however the
// deliveries interleave. Run under -race this also proves the lock
// discipline of deliver/tryRecv.
func TestMailboxConcurrentDedup(t *testing.T) {
	mb, _ := newTestMailbox(11, false)
	const writers = 8
	const perWriter = 200
	const distinct = 10
	msgs := make([]sim.Message, distinct)
	frames := make([][]byte, distinct)
	for i := range msgs {
		msgs[i], frames[i] = mkMsg(t, 0, 1, i+1)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				mb.deliver(frames[i%distinct], msgs[i%distinct], uint64(i+1))
			}
		}()
	}
	wg.Wait()
	got := 0
	seen := make(map[sim.MsgID]bool)
	for {
		m, _, ok := mb.tryRecv()
		if !ok {
			break
		}
		mb.stepDone()
		if seen[m.ID] {
			t.Errorf("duplicate triple %v survived dedup", m.ID)
		}
		seen[m.ID] = true
		got++
	}
	if got != distinct {
		t.Errorf("%d messages buffered, want %d distinct", got, distinct)
	}
}

// TestMailboxNoDedupKeepsDuplicates is the teeth check for the check
// above: with dedup disabled the duplicates must get through.
func TestMailboxNoDedupKeepsDuplicates(t *testing.T) {
	mb, _ := newTestMailbox(11, true)
	m, frame := mkMsg(t, 0, 1, 1)
	for i := 0; i < 3; i++ {
		mb.deliver(frame, m, uint64(i+1))
	}
	got := 0
	for {
		if _, _, ok := mb.tryRecv(); !ok {
			break
		}
		mb.stepDone()
		got++
	}
	if got != 3 {
		t.Errorf("%d copies buffered with dedup off, want 3", got)
	}
}
