package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Config tunes one live run. The zero value gets sensible defaults: 1ms
// heartbeats, a 15ms detection timeout, a 10s deadline, and a faultless
// transport.
type Config struct {
	// Faults configures the unreliable link (drops, duplicates, latency)
	// and seeds every randomized choice in the transport.
	Faults FaultPlan
	// Failures injects fail-stop crashes: processor Proc is crashed once
	// the recorded schedule reaches AfterStep events (the same shape
	// chaos sweeps use, so chaos.PlanRuns drives live soaks directly).
	Failures []sim.FailureAt
	// Heartbeat is the interval between liveness beats.
	Heartbeat time.Duration
	// DetectTimeout is how long a processor must be silent before the
	// detector declares its (confirmed) crash and releases the failure
	// notices. It bounds detection latency from below.
	DetectTimeout time.Duration
	// Deadline bounds the whole run; a run that has not quiesced by then
	// fails with an error (a liveness bug or an unlucky machine).
	Deadline time.Duration
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return time.Millisecond
	}
	return c.Heartbeat
}

func (c Config) detectTimeout() time.Duration {
	if c.DetectTimeout <= 0 {
		return 15 * time.Millisecond
	}
	return c.DetectTimeout
}

func (c Config) deadline() time.Duration {
	if c.Deadline <= 0 {
		return 10 * time.Second
	}
	return c.Deadline
}

// CrashReport is one injected crash and how long the detector took to
// declare it (crash to notice release; survivors learn shortly after,
// once the notices transit the lossy link).
type CrashReport struct {
	Proc      sim.ProcID
	Detection time.Duration
}

// Result is everything a live run produced: the total-order schedule for
// conformance replay, the live decisions to compare against it, and the
// failure-detection measurements.
type Result struct {
	// Proto is the protocol's canonical name.
	Proto string
	// Inputs is the initial input vector.
	Inputs []sim.Bit
	// Schedule is the recorded total order of events.
	Schedule sim.Schedule
	// Decisions is each processor's first live decision (NoDecision if
	// none was observed).
	Decisions []sim.Decision
	// Quiescent reports whether the run ended because nothing more could
	// happen (the model's termination-by-deadlock); false means the
	// deadline or context cut it off.
	Quiescent bool
	// Unfired lists injections whose AfterStep lay beyond quiescence.
	Unfired []sim.FailureAt
	// Crashes lists the fired injections with detection latencies.
	Crashes []CrashReport
	// FalseSuspicions counts heartbeat timeouts on live processors; the
	// detector never acts on them, but honesty requires counting them.
	FalseSuspicions int
	// LinkSuspicions counts keepalive link-down verdicts from the
	// transport (always zero for the in-memory transport).
	LinkSuspicions int
	// Decided holds each processor's time-to-first-decision from run
	// start; zero for processors that never decided.
	Decided []time.Duration
	// Transport snapshots the transport's counters at the end of the run,
	// including the loss paths (encode failures, garbage frames) that were
	// once silent.
	Transport TransportStats
	// Recovery is the crash-to-recovery latency: from the first crash to
	// the last post-crash decision by a survivor. Zero when no survivor
	// decided after a crash.
	Recovery time.Duration
	// Elapsed is the wall-clock length of the run.
	Elapsed time.Duration
	// Err is a run-level failure: deadline exceeded, context cancelled,
	// or a model-contract violation caught at the collector.
	Err error
}

// pollInterval is the monitor's tick: injections, detection, and
// quiescence are all evaluated on this cadence.
const pollInterval = 200 * time.Microsecond

// Run executes the protocol live on the given inputs: one goroutine per
// processor over the fault-injected transport, with crash injection,
// heartbeat failure detection, and quiescence monitoring. The returned
// Result always carries whatever schedule was recorded, even on failure,
// so divergences and timeouts leave a replayable artifact. Errors from
// Run itself are setup errors; run-level failures land in Result.Err.
func Run(ctx context.Context, proto sim.Protocol, inputs []sim.Bit, cfg Config) (*Result, error) {
	n := proto.N()
	if n < 1 {
		return nil, fmt.Errorf("runtime: protocol %s has no processors", proto.Name())
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("runtime: protocol %s wants %d inputs, got %d", proto.Name(), n, len(inputs))
	}
	for _, f := range cfg.Failures {
		if int(f.Proc) < 0 || int(f.Proc) >= n {
			return nil, fmt.Errorf("runtime: failure injection names out-of-range %s", f.Proc)
		}
	}

	done := make(chan struct{})
	var pending atomic.Int64
	counters := &transportCounters{}
	boxes := make([]*mailbox, n)
	for p := range boxes {
		boxes[p] = newMailbox(int64(mix64(uint64(cfg.Faults.Seed)^uint64(p)+1)), cfg.Faults.DisableDedup, &pending, counters)
	}
	net := newNetwork(cfg.Faults, boxes, counters, done)
	col := newCollector(n)
	for p := range boxes {
		boxes[p].omit = omitHook(cfg.Faults, sim.ProcID(p), col, counters)
	}
	det := newDetector(n, col, net, cfg.heartbeat(), cfg.detectTimeout())

	nodes := make([]*node, n)
	var wg sync.WaitGroup
	for p := range nodes {
		nodes[p] = &node{
			p:       sim.ProcID(p),
			proto:   proto,
			state:   proto.Init(sim.ProcID(p), inputs[p], n),
			mb:      boxes[p],
			net:     net,
			col:     col,
			det:     det,
			crashed: make(chan struct{}),
			done:    done,
		}
	}
	start := time.Now()
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			nd.loop()
		}(nd)
	}

	fired := make([]bool, len(cfg.Failures))
	deadline := time.NewTimer(cfg.deadline())
	defer deadline.Stop()
	tick := time.NewTicker(pollInterval)
	defer tick.Stop()

	var (
		runErr     error
		quiescent  bool
		lastEvents = -1
		stable     = 0
	)
monitor:
	for {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break monitor
		case <-deadline.C:
			runErr = fmt.Errorf("runtime: %s did not quiesce within %s", proto.Name(), cfg.deadline())
			break monitor
		case <-tick.C:
		}

		ev := col.events()
		for i, f := range cfg.Failures {
			if fired[i] || f.AfterStep > ev {
				continue
			}
			fired[i] = true
			notices, ts, ok := col.recordCrash(f.Proc)
			if ok {
				det.markCrashed(f.Proc, notices, ts, time.Now())
				close(nodes[f.Proc].crashed)
				boxes[f.Proc].close()
			}
			// !ok means the target had already crashed; the intended
			// failure is in the run, so the injection counts as fired.
		}
		det.poll()
		if err := col.failure(); err != nil {
			runErr = err
			break monitor
		}
		if quiescentNow(nodes, boxes, net, det, &pending, cfg.Failures, fired, ev) {
			e := col.events()
			if e == lastEvents {
				stable++
			} else {
				stable = 0
			}
			lastEvents = e
			if stable >= 2 {
				quiescent = true
				break monitor
			}
		} else {
			stable, lastEvents = 0, -1
		}
	}

	close(done)
	wg.Wait()
	net.wait()

	sched, _, decisions, decidedAt, crashAt := col.snapshot()
	latencies, falseSusp, linkSusp := det.stats()
	res := &Result{
		Proto:           proto.Name(),
		Inputs:          append([]sim.Bit(nil), inputs...),
		Schedule:        sched,
		Decisions:       decisions,
		Quiescent:       quiescent,
		FalseSuspicions: falseSusp,
		LinkSuspicions:  linkSusp,
		Decided:         make([]time.Duration, n),
		Transport:       net.Stats(),
		Elapsed:         time.Since(start),
		Err:             runErr,
	}
	for p := 0; p < n; p++ {
		if !decidedAt[p].IsZero() {
			res.Decided[p] = decidedAt[p].Sub(start)
		}
	}
	for i, f := range cfg.Failures {
		if !fired[i] {
			res.Unfired = append(res.Unfired, f)
		}
	}
	var firstCrash time.Time
	for p := 0; p < n; p++ {
		if crashAt[p].IsZero() {
			continue
		}
		res.Crashes = append(res.Crashes, CrashReport{Proc: sim.ProcID(p), Detection: latencies[sim.ProcID(p)]})
		if firstCrash.IsZero() || crashAt[p].Before(firstCrash) {
			firstCrash = crashAt[p]
		}
	}
	if !firstCrash.IsZero() {
		for p := 0; p < n; p++ {
			if crashAt[p].IsZero() && !decidedAt[p].IsZero() && decidedAt[p].After(firstCrash) {
				if rec := decidedAt[p].Sub(firstCrash); rec > res.Recovery {
					res.Recovery = rec
				}
			}
		}
	}
	return res, nil
}

// quiescentNow evaluates the quiescence predicate at one poll: every node
// blocked on an empty mailbox or exited, nothing in flight, no delivery
// mid-application, every confirmed crash detected, and no injection still
// due at the current event count. Together with two stable polls of the
// event counter, this is the live analogue of Config.Quiescent — the
// system has deadlocked in the model's sense, which is how weakly
// terminating protocols terminate.
func quiescentNow(nodes []*node, boxes []*mailbox, net *Network, det *detector, pending *atomic.Int64, failures []sim.FailureAt, fired []bool, events int) bool {
	for i, f := range failures {
		if !fired[i] && f.AfterStep <= events {
			return false
		}
	}
	for _, nd := range nodes {
		if nd.phase.Load() == phaseRunning {
			return false
		}
	}
	for _, mb := range boxes {
		if !mb.empty() {
			return false
		}
	}
	return net.InFlight() == 0 && pending.Load() == 0 && det.undetected() == 0
}
