package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// MergeGroups folds the per-host results of a distributed run into one
// Result whose schedule is a global total order, ready for the same
// conformance replay a single-process run gets.
//
// The merge key is (Lamport timestamp, host, local index). Each collector's
// timestamps are strictly increasing, so sorting preserves every host's
// local order; a deliver event ticks past the witness carried with the
// frame, so it sorts after the send that produced it; ties between hosts
// are broken by host id, which is sound because concurrent events commute
// in the model. The result is a happens-before-consistent total order.
//
// Wall-clock fields (decision and crash times) are host-local UnixNano
// readings; they are only combined because every host of a soak runs on one
// machine and one clock. startNs is the coordinator's go-signal timestamp.
//
// The merge itself is pure: it reads no clock and draws no randomness, so
// equal group results merge to equal Results.
func MergeGroups(protoName string, inputs []sim.Bit, owner []int, groups []*GroupResult, startNs int64) (*Result, error) {
	n := len(owner)
	byHost := make(map[int]*GroupResult, len(groups))
	for _, g := range groups {
		if g == nil {
			return nil, fmt.Errorf("runtime: merge given a nil group result")
		}
		if byHost[g.Host] != nil {
			return nil, fmt.Errorf("runtime: two group results claim host %d", g.Host)
		}
		byHost[g.Host] = g
	}
	for p, h := range owner {
		if byHost[h] == nil {
			return nil, fmt.Errorf("runtime: processor %d owned by host %d, which reported no result", p, h)
		}
	}

	type entry struct {
		ts   uint64
		host int
		idx  int
	}
	var entries []entry
	for _, g := range groups {
		if len(g.TS) != len(g.Schedule) {
			return nil, fmt.Errorf("runtime: host %d recorded %d events but %d timestamps", g.Host, len(g.Schedule), len(g.TS))
		}
		for i := range g.Schedule {
			entries = append(entries, entry{ts: g.TS[i], host: g.Host, idx: i})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.host != b.host {
			return a.host < b.host
		}
		return a.idx < b.idx
	})

	res := &Result{
		Inputs:    append([]sim.Bit(nil), inputs...),
		Proto:     protoName,
		Schedule:  make(sim.Schedule, len(entries)),
		Decisions: make([]sim.Decision, n),
		Decided:   make([]time.Duration, n),
	}
	for i, e := range entries {
		res.Schedule[i] = byHost[e.host].Schedule[e.idx]
	}

	var firstCrashNs int64
	for p := 0; p < n; p++ {
		g := byHost[owner[p]]
		res.Decisions[p] = g.Decisions[p]
		if at := g.DecidedAtNs[p]; at != 0 && at > startNs {
			res.Decided[p] = time.Duration(at - startNs)
		}
		if at := g.CrashAtNs[p]; at != 0 {
			res.Crashes = append(res.Crashes, CrashReport{
				Proc:      sim.ProcID(p),
				Detection: time.Duration(g.DetectionNs[p]),
			})
			if firstCrashNs == 0 || at < firstCrashNs {
				firstCrashNs = at
			}
		}
	}
	if firstCrashNs != 0 {
		for p := 0; p < n; p++ {
			g := byHost[owner[p]]
			if g.CrashAtNs[p] == 0 && g.DecidedAtNs[p] > firstCrashNs {
				if rec := time.Duration(g.DecidedAtNs[p] - firstCrashNs); rec > res.Recovery {
					res.Recovery = rec
				}
			}
		}
	}
	for _, g := range groups {
		res.FalseSuspicions += g.FalseSuspicions
		res.LinkSuspicions += g.LinkSuspicions
		res.Transport = addStats(res.Transport, g.Transport)
	}
	return res, nil
}

// addStats sums two transport snapshots field-wise.
func addStats(a, b TransportStats) TransportStats {
	return TransportStats{
		Accepted:         a.Accepted + b.Accepted,
		Settled:          a.Settled + b.Settled,
		EncodeFailures:   a.EncodeFailures + b.EncodeFailures,
		GarbageFrames:    a.GarbageFrames + b.GarbageFrames,
		Drops:            a.Drops + b.Drops,
		Dups:             a.Dups + b.Dups,
		FramesSent:       a.FramesSent + b.FramesSent,
		FramesResent:     a.FramesResent + b.FramesResent,
		Dials:            a.Dials + b.Dials,
		Reconnects:       a.Reconnects + b.Reconnects,
		Resets:           a.Resets + b.Resets,
		LinkDowns:        a.LinkDowns + b.LinkDowns,
		SeveredIntervals: a.SeveredIntervals + b.SeveredIntervals,
		HeldFrames:       a.HeldFrames + b.HeldFrames,
	}
}
