package netx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The netx wire protocol: length-prefixed frames over one TCP connection
// per directed process pair. The payload of a data frame is opaque to this
// package — the runtime's own Frame codec lives above — so netx stays a
// byte mesh with no knowledge of messages, processors, or protocols.
//
// Layout: u32 big-endian length of (type ‖ body), then the type byte, then
// the body. Bodies:
//
//	hello: u32 sender process id — first frame after every (re)dial
//	data:  u64 link sequence number ‖ payload bytes
//	ack:   u64 cumulative ack — receiver has all data frames ≤ this seq
//	ping:  empty — sender keepalive
//	pong:  empty — receiver's answer
//
// Data seqs are per directed link, start at 1, and never reset: after a
// reconnect the sender replays every frame above the last cumulative ack,
// so the link delivers each payload exactly once, in order, across any
// number of connection incarnations.
const (
	frameHello byte = 1
	frameData  byte = 2
	frameAck   byte = 3
	framePing  byte = 4
	framePong  byte = 5
)

// maxWireFrame bounds one frame on the wire; anything larger is a corrupt
// length prefix, not a real frame.
const maxWireFrame = 1 << 20

// appendFrame appends one length-prefixed frame to dst.
//
//ccvet:pure
func appendFrame(dst []byte, typ byte, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, typ)
	return append(dst, body...)
}

// appendHello appends a hello frame announcing the dialing process.
//
//ccvet:pure
func appendHello(dst []byte, self int) []byte {
	var body [4]byte
	binary.BigEndian.PutUint32(body[:], uint32(self))
	return appendFrame(dst, frameHello, body[:])
}

// appendData appends a data frame carrying one opaque payload.
//
//ccvet:pure
func appendData(dst []byte, seq uint64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+8+len(payload)))
	dst = append(dst, frameData)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return append(dst, payload...)
}

// appendAck appends a cumulative-ack frame.
//
//ccvet:pure
func appendAck(dst []byte, cum uint64) []byte {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], cum)
	return appendFrame(dst, frameAck, body[:])
}

// readWireFrame reads one frame, reusing buf when it is large enough. The
// returned body aliases the read buffer and is valid until the next call.
func readWireFrame(r *bufio.Reader, buf []byte) (typ byte, body, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxWireFrame {
		return 0, nil, buf, fmt.Errorf("netx: frame length %d outside (0, %d]", n, maxWireFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// parseHello extracts the sender id from a hello body.
//
//ccvet:pure
func parseHello(body []byte) (int, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("netx: hello body is %d bytes, want 4", len(body))
	}
	return int(binary.BigEndian.Uint32(body)), nil
}

// parseData splits a data body into its seq and payload.
//
//ccvet:pure
func parseData(body []byte) (uint64, []byte, error) {
	if len(body) < 8 {
		return 0, nil, fmt.Errorf("netx: data body is %d bytes, want ≥ 8", len(body))
	}
	return binary.BigEndian.Uint64(body[:8]), body[8:], nil
}

// parseAck extracts the cumulative ack.
//
//ccvet:pure
func parseAck(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("netx: ack body is %d bytes, want 8", len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}
