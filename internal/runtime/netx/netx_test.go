package netx

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// pair brings up two mesh nodes wired to each other and returns them plus
// the receive log of node b.
func pair(t *testing.T, cfgA, cfgB Config) (*Mesh, *Mesh, *recvLog) {
	t.Helper()
	logB := &recvLog{}
	cfgA.Self, cfgB.Self = 0, 1
	if cfgA.OnFrame == nil {
		cfgA.OnFrame = func(int, []byte) {}
	}
	cfgB.OnFrame = logB.record
	a, err := Listen("127.0.0.1:0", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(addrs)
	b.SetPeers(addrs)
	return a, b, logB
}

type recvLog struct {
	mu     sync.Mutex
	seqs   []uint64 // ccvet:guardedby mu
	byPeer map[int]int
}

func (rl *recvLog) record(from int, payload []byte) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.seqs = append(rl.seqs, binary.BigEndian.Uint64(payload))
	if rl.byPeer == nil {
		rl.byPeer = make(map[int]int)
	}
	rl.byPeer[from]++
}

func (rl *recvLog) count() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.seqs)
}

func (rl *recvLog) snapshot() []uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return append([]uint64(nil), rl.seqs...)
}

func payload(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestMeshDeliversInOrder: payloads arrive exactly once, in per-link order.
func TestMeshDeliversInOrder(t *testing.T) {
	a, _, logB := pair(t, Config{}, Config{})
	const n = 200
	for i := uint64(1); i <= n; i++ {
		if err := a.Send(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return logB.count() == n }, "not all payloads arrived")
	for i, s := range logB.snapshot() {
		if s != uint64(i+1) {
			t.Fatalf("out of order at %d: got %d", i, s)
		}
	}
	if st := a.Stats(); st.FramesSent < n {
		t.Errorf("FramesSent = %d, want ≥ %d", st.FramesSent, n)
	}
	waitFor(t, 2*time.Second, func() bool { return a.Pending() == 0 }, "queue never drained")
}

// TestReconnectResumesFromAck: injected resets close the connection
// mid-stream; the link must redial and resume with no loss and no
// duplicate at the payload layer.
func TestReconnectResumesFromAck(t *testing.T) {
	cfg := Config{
		PartitionInterval: 40 * time.Millisecond,
		Faults: LinkFaultPlan{
			Seed:            7,
			ResetRate:       0.5,
			ActiveIntervals: 10,
		},
	}
	a, _, logB := pair(t, cfg, Config{})
	const n = 400
	for i := uint64(1); i <= n; i++ {
		if err := a.Send(1, payload(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 10*time.Second, func() bool { return logB.count() == n }, "payloads lost across resets")
	for i, s := range logB.snapshot() {
		if s != uint64(i+1) {
			t.Fatalf("loss or duplication at %d: got %d", i, s)
		}
	}
	st := a.Stats()
	if st.Resets == 0 {
		t.Error("no resets were injected; the schedule should contain some at rate 0.5")
	}
	if st.Reconnects == 0 {
		t.Error("link never reconnected after a reset")
	}
}

// TestPartitionHoldsAndHeals: a severed interval parks frames; they flush
// after the active window ends, and nothing is lost.
func TestPartitionHoldsAndHeals(t *testing.T) {
	// Find a seed that severs link 0→1 in interval 0.
	seed := int64(0)
	for ; ; seed++ {
		p := LinkFaultPlan{Seed: seed, SeverRate: 0.9, ActiveIntervals: 1}
		if p.State(0, 1, 0) == LinkSevered {
			break
		}
	}
	interval := 150 * time.Millisecond
	cfg := Config{
		PartitionInterval: interval,
		Faults:            LinkFaultPlan{Seed: seed, SeverRate: 0.9, ActiveIntervals: 1},
	}
	a, _, logB := pair(t, cfg, Config{})
	const n = 20
	for i := uint64(1); i <= n; i++ {
		if err := a.Send(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Inside the severed interval nothing should arrive.
	time.Sleep(interval / 2)
	if c := logB.count(); c != 0 {
		t.Fatalf("severed link delivered %d frames", c)
	}
	// After the heal everything flushes.
	waitFor(t, 5*time.Second, func() bool { return logB.count() == n }, "held frames never flushed after heal")
	st := a.Stats()
	if st.SeveredIntervals == 0 {
		t.Error("severed interval not counted")
	}
	if st.HeldFrames == 0 {
		t.Error("held frames not counted")
	}
}

// TestKeepaliveDetectsPermanentPartition: an isolated peer's inbound link
// goes silent; the receiver must declare it down.
func TestKeepaliveDetectsPermanentPartition(t *testing.T) {
	downCh := make(chan int, 16)
	cfgA := Config{
		PartitionInterval: 50 * time.Millisecond,
		Faults:            LinkFaultPlan{Seed: 1, Isolate: []int{0}},
	}
	cfgB := Config{
		Keepalive:        30 * time.Millisecond,
		KeepaliveTimeout: 150 * time.Millisecond,
		OnPeerDown:       func(peer int) { downCh <- peer },
	}
	a, b, logB := pair(t, cfgA, cfgB)
	if err := a.Send(1, payload(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case peer := <-downCh:
		if peer != 0 {
			t.Fatalf("down verdict against peer %d, want 0", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no link-down verdict against a permanently severed link")
	}
	if logB.count() != 0 {
		t.Error("frames crossed a permanently severed link")
	}
	if st := b.Stats(); st.LinkDowns == 0 {
		t.Error("LinkDowns not counted")
	}
	if a.Pending() == 0 {
		t.Error("severed sender should still hold its frame")
	}
}

// TestSendBackpressure: a full queue blocks Send instead of buffering
// without bound; mesh close unblocks it.
func TestSendBackpressure(t *testing.T) {
	cfg := Config{
		QueueCap:          4,
		PartitionInterval: time.Hour, // one giant severed interval: nothing drains
		Faults:            LinkFaultPlan{Seed: 3, Isolate: []int{0}},
	}
	a, _, _ := pair(t, cfg, Config{})
	for i := uint64(1); i <= 4; i++ {
		if err := a.Send(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- a.Send(1, payload(5)) }()
	select {
	case err := <-blocked:
		t.Fatalf("Send returned (%v) with a full queue on a severed link", err)
	case <-time.After(100 * time.Millisecond):
	}
	a.Close()
	select {
	case err := <-blocked:
		if err == nil {
			t.Error("Send on a closed mesh should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Send")
	}
}

// TestLinkFaultPlanDeterminism: schedules are pure functions of the seed.
func TestLinkFaultPlanDeterminism(t *testing.T) {
	procs := []int{0, 1, 2, 3}
	p1 := LinkFaultPlan{Seed: 42, SeverRate: 0.2, StallRate: 0.1, ResetRate: 0.1, ActiveIntervals: 8}
	p2 := LinkFaultPlan{Seed: 42, SeverRate: 0.2, StallRate: 0.1, ResetRate: 0.1, ActiveIntervals: 8}
	if p1.Render(procs, 12) != p2.Render(procs, 12) {
		t.Fatal("same seed must render byte-identical schedules")
	}
	p3 := LinkFaultPlan{Seed: 43, SeverRate: 0.2, StallRate: 0.1, ResetRate: 0.1, ActiveIntervals: 8}
	if p1.Render(procs, 12) == p3.Render(procs, 12) {
		t.Fatal("different seeds should differ somewhere in a 12-interval schedule")
	}
	// Past the active window every link heals.
	for _, from := range procs {
		for _, to := range procs {
			if from == to {
				continue
			}
			if st := p1.State(from, to, 8); st != LinkOK {
				t.Fatalf("interval 8 is past ActiveIntervals yet %d->%d is %s", from, to, st)
			}
		}
	}
	// Isolation is permanent and asymmetric rolls are possible.
	iso := LinkFaultPlan{Seed: 1, Isolate: []int{2}}
	for ivl := 0; ivl < 100; ivl += 10 {
		if iso.State(2, 0, ivl) != LinkSevered || iso.State(0, 2, ivl) != LinkSevered {
			t.Fatal("isolation must sever both directions forever")
		}
		if iso.State(0, 1, ivl) != LinkOK {
			t.Fatal("links between non-isolated peers must stay up")
		}
	}
	asym := false
	p := LinkFaultPlan{Seed: 9, SeverRate: 0.3, ActiveIntervals: 50}
	for ivl := 0; ivl < 50 && !asym; ivl++ {
		asym = (p.State(0, 1, ivl) == LinkSevered) != (p.State(1, 0, ivl) == LinkSevered)
	}
	if !asym {
		t.Error("independent directed rolls should produce an asymmetric interval at rate 0.3")
	}
}

// TestWireCodecRoundTrips pins the frame grammar.
func TestWireCodecRoundTrips(t *testing.T) {
	checks := []struct {
		frame []byte
		typ   byte
	}{
		{appendHello(nil, 7), frameHello},
		{appendData(nil, 99, []byte("payload")), frameData},
		{appendAck(nil, 12345), frameAck},
		{appendFrame(nil, framePing, nil), framePing},
		{appendFrame(nil, framePong, nil), framePong},
	}
	var all []byte
	for _, c := range checks {
		all = append(all, c.frame...)
	}
	r := bufio.NewReader(bytes.NewReader(all))
	var buf []byte
	for i, c := range checks {
		typ, body, nbuf, err := readWireFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = nbuf
		if typ != c.typ {
			t.Fatalf("frame %d: type %d, want %d", i, typ, c.typ)
		}
		switch typ {
		case frameHello:
			if id, err := parseHello(body); err != nil || id != 7 {
				t.Fatalf("hello: %d, %v", id, err)
			}
		case frameData:
			seq, p, err := parseData(body)
			if err != nil || seq != 99 || string(p) != "payload" {
				t.Fatalf("data: %d %q %v", seq, p, err)
			}
		case frameAck:
			if cum, err := parseAck(body); err != nil || cum != 12345 {
				t.Fatalf("ack: %d, %v", cum, err)
			}
		}
	}
}
