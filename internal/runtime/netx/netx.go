// Package netx is the byte mesh underneath the distributed live runtime:
// one TCP connection per directed process pair, carrying opaque payloads
// with per-link sequencing, cumulative acks, bounded outbound queues,
// keepalive, and a seeded link-fault injector above the sockets.
//
// The package knows nothing about messages, processors, or protocols —
// payloads are opaque byte slices — so it imports only the standard
// library and the runtime layers above it stay free to change their codec.
//
// Delivery contract: Send(to, payload) enqueues the payload on the
// directed link self→to. The link assigns it a sequence number and
// delivers it to the peer's OnFrame exactly once, in per-link order,
// across any number of connection failures, resets, and reconnections —
// the sender replays everything above the receiver's last cumulative ack
// after every redial, and the receiver discards already-seen sequence
// numbers. Send blocks when the link's outbound queue is full
// (backpressure), never spawning per-payload goroutines.
package netx

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes one mesh node. The zero value of every field gets a
// sensible default.
type Config struct {
	// Self is this process's id in the mesh.
	Self int
	// QueueCap bounds each directed link's outbound queue (enqueued but
	// unacked payloads); Send blocks when the queue is full. Default 1024.
	QueueCap int
	// Keepalive is the idle interval after which a link sends a ping, so
	// healthy links are never silent. Default 250ms.
	Keepalive time.Duration
	// KeepaliveTimeout is how long an inbound link may be silent before
	// the receiver declares it down, fires OnPeerDown, and drops the
	// connection. Default 1s.
	KeepaliveTimeout time.Duration
	// PartitionInterval is the wall length of one fault-plan interval.
	// Default 500ms.
	PartitionInterval time.Duration
	// Faults schedules link faults; the zero plan injects nothing.
	Faults LinkFaultPlan
	// OnFrame receives each delivered payload exactly once, in per-link
	// order, from the receiving connection's goroutine. Required.
	OnFrame func(from int, payload []byte)
	// OnPeerDown is called on each keepalive verdict against an inbound
	// link (at most once per connection incarnation). Optional.
	OnPeerDown func(peer int)
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 1024
	}
	return c.QueueCap
}

func (c Config) keepalive() time.Duration {
	if c.Keepalive <= 0 {
		return 250 * time.Millisecond
	}
	return c.Keepalive
}

func (c Config) keepaliveTimeout() time.Duration {
	if c.KeepaliveTimeout <= 0 {
		return time.Second
	}
	return c.KeepaliveTimeout
}

func (c Config) partitionInterval() time.Duration {
	if c.PartitionInterval <= 0 {
		return 500 * time.Millisecond
	}
	return c.PartitionInterval
}

// Stats is a snapshot of a mesh node's link counters.
type Stats struct {
	FramesSent       int64 // data frames written to peer sockets
	FramesResent     int64 // data frames replayed after a reconnect
	Dials            int64 // connection attempts (first dials and redials)
	Reconnects       int64 // re-established links after losing a connection
	Resets           int64 // injected connection resets
	LinkDowns        int64 // keepalive verdicts against inbound links
	SeveredIntervals int64 // (link, interval) pairs observed severed
	HeldFrames       int64 // frames parked while their link was severed or stalled
}

type meshCounters struct {
	framesSent, framesResent, dials, reconnects, resets,
	linkDowns, severedIntervals, heldFrames atomic.Int64
}

func (c *meshCounters) snapshot() Stats {
	return Stats{
		FramesSent:       c.framesSent.Load(),
		FramesResent:     c.framesResent.Load(),
		Dials:            c.dials.Load(),
		Reconnects:       c.reconnects.Load(),
		Resets:           c.resets.Load(),
		LinkDowns:        c.linkDowns.Load(),
		SeveredIntervals: c.severedIntervals.Load(),
		HeldFrames:       c.heldFrames.Load(),
	}
}

// inbox is the persistent receive state of one directed inbound link; it
// survives reconnections so resumed frames dedup correctly.
type inbox struct {
	mu  sync.Mutex
	cum uint64 // ccvet:guardedby mu — all data frames ≤ cum delivered
}

// Mesh is one process's endpoint in the byte mesh.
type Mesh struct {
	cfg      Config
	ln       net.Listener
	start    time.Time // epoch of the fault plan's interval 0
	done     chan struct{}
	counters meshCounters

	mu      sync.Mutex
	links   map[int]*link         // ccvet:guardedby mu — outbound, keyed by peer id
	inboxes map[int]*inbox        // ccvet:guardedby mu — inbound, keyed by peer id
	conns   map[net.Conn]struct{} // ccvet:guardedby mu — live inbound connections
	closed  bool                  // ccvet:guardedby mu

	wg sync.WaitGroup
}

var errMeshClosed = errors.New("netx: mesh closed")

// Listen binds a mesh node on addr (e.g. "127.0.0.1:0") and starts
// accepting inbound links. Outbound links start when SetPeers is called.
func Listen(addr string, cfg Config) (*Mesh, error) {
	if cfg.OnFrame == nil {
		return nil, errors.New("netx: Config.OnFrame is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netx: listen %s: %w", addr, err)
	}
	m := &Mesh{
		cfg:     cfg,
		ln:      ln,
		start:   time.Now(),
		done:    make(chan struct{}),
		links:   make(map[int]*link),
		inboxes: make(map[int]*inbox),
		conns:   make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the bound listen address.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetPeers starts one outbound link per peer (self excluded). It must be
// called exactly once, after every process's listen address is known.
func (m *Mesh) SetPeers(addrs map[int]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	peers := make([]int, 0, len(addrs))
	for peer := range addrs {
		peers = append(peers, peer)
	}
	sort.Ints(peers)
	for _, peer := range peers {
		if peer == m.cfg.Self {
			continue
		}
		l := newLink(m, peer, addrs[peer])
		m.links[peer] = l
		m.wg.Add(1)
		go l.run()
	}
}

// Send enqueues payload on the directed link self→to, blocking while the
// link's queue is full. The payload is copied; the caller may reuse it.
func (m *Mesh) Send(to int, payload []byte) error {
	m.mu.Lock()
	l, ok := m.links[to]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("netx: no link to peer %d", to)
	}
	return l.send(payload)
}

// Pending returns the number of payloads enqueued but not yet acked across
// all outbound links; distributed quiescence requires zero.
func (m *Mesh) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, l := range m.sortedLinks() {
		total += l.pending()
	}
	return total
}

// Stats snapshots the link counters.
func (m *Mesh) Stats() Stats { return m.counters.snapshot() }

// sortedLinks returns the outbound links in peer order. Callers hold m.mu.
//
//ccvet:holds mu
func (m *Mesh) sortedLinks() []*link {
	ids := make([]int, 0, len(m.links))
	for id := range m.links {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*link, len(ids))
	for i, id := range ids {
		out[i] = m.links[id]
	}
	return out
}

// Close tears the node down: the listener stops, every connection closes,
// blocked Sends return errMeshClosed, and all goroutines join.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	err := m.ln.Close()
	for _, l := range m.sortedLinks() {
		l.close()
	}
	//ccvet:ignore detrange inbound connections have no ids; close order is immaterial
	for conn := range m.conns {
		_ = conn.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
	return err
}

// inbox returns (creating on first use) the persistent receive state for
// the inbound link from peer.
func (m *Mesh) inbox(peer int) *inbox {
	m.mu.Lock()
	defer m.mu.Unlock()
	ib, ok := m.inboxes[peer]
	if !ok {
		ib = &inbox{}
		m.inboxes[peer] = ib
	}
	return ib
}

// gate evaluates the fault plan for the link self→to at wall time now: how
// long the writer must hold frames, the interval's state, and its index.
func (m *Mesh) gate(to int, now time.Time) (pause time.Duration, st LinkState, idx int) {
	if !m.cfg.Faults.Enabled() {
		return 0, LinkOK, 0
	}
	interval := m.cfg.partitionInterval()
	idx = int(now.Sub(m.start) / interval)
	st = m.cfg.Faults.State(m.cfg.Self, to, idx)
	boundary := m.start.Add(time.Duration(idx+1) * interval)
	switch st {
	case LinkSevered:
		pause = boundary.Sub(now)
	case LinkStalled:
		if half := boundary.Add(-interval / 2); now.Before(half) {
			pause = half.Sub(now)
		}
	}
	return pause, st, idx
}

// acceptLoop admits inbound connections until the listener closes.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		//ccvet:ignore golifecycle acceptLoop itself holds a wg slot, so this Add never races a zero-counter Wait
		m.wg.Add(1)
		go m.handle(conn)
	}
}

// handle serves one inbound connection: hello, then data/ping frames, with
// cumulative acks and pongs written back on the same connection. A read
// silence past the keepalive timeout is a link-down verdict.
func (m *Mesh) handle(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.conns[conn] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.conns, conn)
		m.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var buf, out []byte

	_ = conn.SetReadDeadline(time.Now().Add(m.cfg.keepaliveTimeout()))
	typ, body, buf, err := readWireFrame(r, buf)
	if err != nil || typ != frameHello {
		return
	}
	peer, err := parseHello(body)
	if err != nil {
		return
	}
	ib := m.inbox(peer)

	for {
		_ = conn.SetReadDeadline(time.Now().Add(m.cfg.keepaliveTimeout()))
		typ, body, buf, err = readWireFrame(r, buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !m.isClosed() {
				m.counters.linkDowns.Add(1)
				if m.cfg.OnPeerDown != nil {
					m.cfg.OnPeerDown(peer)
				}
			}
			return
		}
		switch typ {
		case frameData:
			seq, payload, err := parseData(body)
			if err != nil {
				return
			}
			ib.mu.Lock()
			deliver := seq == ib.cum+1
			if deliver {
				ib.cum = seq
			}
			gap := seq > ib.cum+1
			cum := ib.cum
			ib.mu.Unlock()
			if gap {
				// Ordered TCP plus resume-from-ack makes a gap impossible
				// on a healthy link; drop the connection and let the
				// sender resume from the last ack.
				return
			}
			if deliver {
				m.cfg.OnFrame(peer, append([]byte(nil), payload...))
			}
			out = appendAck(out[:0], cum)
			if _, err := conn.Write(out); err != nil {
				return
			}
		case framePing:
			out = appendFrame(out[:0], framePong, nil)
			if _, err := conn.Write(out); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (m *Mesh) isClosed() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}
