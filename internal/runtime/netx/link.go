package netx

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// queued is one payload awaiting acknowledgement on an outbound link.
type queued struct {
	seq     uint64
	payload []byte
}

// link is the sending half of one directed edge self→to: a bounded queue
// of unacked payloads drained by a single writer goroutine over whatever
// connection is currently up. The writer dials with exponential backoff
// and deterministic jitter, replays everything above the peer's last
// cumulative ack after each reconnect, sends keepalive pings when idle,
// and enforces the seeded fault plan by holding frames (sever, stall) or
// tearing the connection down (reset). There is exactly one goroutine per
// link plus one ack reader per live connection — never one per message.
type link struct {
	m    *Mesh
	to   int
	addr string

	mu   sync.Mutex
	cond *sync.Cond
	buf  []queued // ccvet:guardedby mu — unacked payloads in ascending seq order
	sent int      // ccvet:guardedby mu — prefix of buf written on the current connection
	seq  uint64   // ccvet:guardedby mu — last assigned sequence number
	conn net.Conn // ccvet:guardedby mu — current connection, nil while down
	dead bool     // ccvet:guardedby mu — link closed for good

	// Writer-goroutine-only interval bookkeeping (no lock needed).
	lastResetIvl int
	lastSevIvl   int
	lastHeldIvl  int
	everUp       bool
}

func newLink(m *Mesh, to int, addr string) *link {
	l := &link{m: m, to: to, addr: addr, lastResetIvl: -1, lastSevIvl: -1, lastHeldIvl: -1}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// send enqueues one payload, blocking while the queue is at capacity.
func (l *link) send(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) >= l.m.cfg.queueCap() && !l.dead {
		l.cond.Wait()
	}
	if l.dead {
		return errMeshClosed
	}
	l.seq++
	l.buf = append(l.buf, queued{seq: l.seq, payload: append([]byte(nil), payload...)})
	l.cond.Broadcast()
	return nil
}

// pending returns the number of enqueued-but-unacked payloads.
func (l *link) pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// onAck drops the acked prefix and wakes blocked senders.
func (l *link) onAck(cum uint64) {
	l.mu.Lock()
	drop := 0
	for drop < len(l.buf) && l.buf[drop].seq <= cum {
		drop++
	}
	if drop > 0 {
		l.buf = append([]queued(nil), l.buf[drop:]...)
		if l.sent -= drop; l.sent < 0 {
			l.sent = 0
		}
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// close shuts the link down for good.
func (l *link) close() {
	l.mu.Lock()
	l.dead = true
	if l.conn != nil {
		_ = l.conn.Close()
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// waitLocked blocks on the condition variable for at most d. Callers hold
// l.mu; the lock is held again on return.
//
//ccvet:holds mu
func (l *link) waitLocked(d time.Duration) {
	t := time.AfterFunc(d, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	l.cond.Wait()
	t.Stop()
}

// run is the link's writer goroutine: dial, resume, drain, redial — until
// the mesh closes.
func (l *link) run() {
	defer l.m.wg.Done()
	for {
		conn := l.dial()
		if conn == nil {
			return
		}
		if l.everUp {
			l.m.counters.reconnects.Add(1)
		}
		l.everUp = true
		l.mu.Lock()
		if l.dead {
			l.mu.Unlock()
			_ = conn.Close()
			return
		}
		l.conn = conn
		// Resume: everything unacked replays on the fresh connection.
		if l.sent > 0 {
			l.m.counters.framesResent.Add(int64(l.sent))
		}
		l.sent = 0
		l.mu.Unlock()

		if _, err := conn.Write(appendHello(nil, l.m.cfg.Self)); err == nil {
			//ccvet:ignore golifecycle run itself holds a wg slot, so this Add never races a zero-counter Wait
			l.m.wg.Add(1)
			go l.readAcks(conn)
			l.writeLoop(conn)
		}

		l.mu.Lock()
		if l.conn == conn {
			l.conn = nil
		}
		dead := l.dead
		l.mu.Unlock()
		_ = conn.Close()
		if dead {
			return
		}
	}
}

// dial connects to the peer, retrying with exponential backoff and
// deterministic jitter. Returns nil once the mesh closes.
func (l *link) dial() net.Conn {
	for attempt := 0; ; attempt++ {
		select {
		case <-l.m.done:
			return nil
		default:
		}
		d := net.Dialer{Timeout: 2 * time.Second}
		l.m.counters.dials.Add(1)
		conn, err := d.Dial("tcp", l.addr)
		if err == nil {
			return conn
		}
		select {
		case <-time.After(dialBackoff(l.m.cfg.Faults.Seed, l.m.cfg.Self, l.to, attempt)):
		case <-l.m.done:
			return nil
		}
	}
}

// dialBackoff is the redial schedule: exponential from 5ms, capped at
// 500ms, plus deterministic jitter up to half the base — a pure function
// of (seed, link, attempt), so two runs with one seed retry identically.
//
//ccvet:pure
func dialBackoff(seed int64, from, to, attempt int) time.Duration {
	const (
		base    = 5 * time.Millisecond
		ceiling = 500 * time.Millisecond
	)
	d := base << uint(attempt)
	if d > ceiling || d <= 0 {
		d = ceiling
	}
	x := mix64(uint64(seed) ^ saltLink ^ uint64(from)<<32 ^ uint64(to)<<16 ^ uint64(attempt))
	jitter := time.Duration(float64(x>>11) / float64(1<<53) * float64(d) / 2)
	return d + jitter
}

// writeLoop drains the queue onto conn until the connection or the link
// dies. It is the only writer on conn (the ack reader only reads).
func (l *link) writeLoop(conn net.Conn) {
	var scratch []byte
	keepalive := l.m.cfg.keepalive()
	lastWrite := time.Now()
	for {
		l.mu.Lock()
		if l.dead || l.conn != conn {
			l.mu.Unlock()
			return
		}
		now := time.Now()
		if pause, st, idx := l.m.gate(l.to, now); st != LinkOK {
			if st == LinkReset {
				if idx != l.lastResetIvl {
					// One forced close per reset interval; the redial
					// exercises resume-from-ack under load.
					l.lastResetIvl = idx
					l.mu.Unlock()
					l.m.counters.resets.Add(1)
					return
				}
			} else if pause > 0 {
				if st == LinkSevered && idx != l.lastSevIvl {
					l.lastSevIvl = idx
					l.m.counters.severedIntervals.Add(1)
				}
				if held := len(l.buf) - l.sent; held > 0 && idx != l.lastHeldIvl {
					l.lastHeldIvl = idx
					l.m.counters.heldFrames.Add(int64(held))
				}
				l.waitLocked(pause)
				l.mu.Unlock()
				continue
			}
		}
		if l.sent < len(l.buf) {
			q := l.buf[l.sent]
			l.sent++
			l.mu.Unlock()
			scratch = appendData(scratch[:0], q.seq, q.payload)
			_ = conn.SetWriteDeadline(now.Add(5 * time.Second))
			if _, err := conn.Write(scratch); err != nil {
				return
			}
			l.m.counters.framesSent.Add(1)
			lastWrite = now
			continue
		}
		if idle := now.Sub(lastWrite); idle >= keepalive {
			l.mu.Unlock()
			scratch = appendFrame(scratch[:0], framePing, nil)
			_ = conn.SetWriteDeadline(now.Add(5 * time.Second))
			if _, err := conn.Write(scratch); err != nil {
				return
			}
			lastWrite = now
		} else {
			l.waitLocked(keepalive - idle)
			l.mu.Unlock()
		}
	}
}

// readAcks consumes ack and pong frames from conn until it dies, feeding
// cumulative acks back into the queue. Closing the connection (reset,
// mesh close, peer failure) unblocks the read and ends the goroutine.
func (l *link) readAcks(conn net.Conn) {
	defer l.m.wg.Done()
	r := bufio.NewReader(conn)
	var buf []byte
	for {
		typ, body, nbuf, err := readWireFrame(r, buf)
		if err != nil {
			// Wake the writer so it notices the dead connection.
			l.mu.Lock()
			if l.conn == conn {
				l.conn = nil
			}
			l.cond.Broadcast()
			l.mu.Unlock()
			_ = conn.Close()
			return
		}
		buf = nbuf
		if typ == frameAck {
			if cum, err := parseAck(body); err == nil {
				l.onAck(cum)
			}
		}
	}
}
