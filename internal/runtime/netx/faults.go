package netx

import (
	"fmt"
	"sort"
	"strings"
)

// LinkState is the fault plan's verdict for one directed link over one
// interval of the run.
type LinkState int

const (
	// LinkOK: the link carries frames normally.
	LinkOK LinkState = iota
	// LinkSevered: the sender holds every frame for the whole interval —
	// one side of a partition. Held frames flush once the interval ends,
	// so at-least-once delivery survives every non-permanent partition.
	LinkSevered
	// LinkStalled: the sender holds frames for the first half of the
	// interval, then flushes — a slow link rather than a dead one.
	LinkStalled
	// LinkReset: the connection is forcibly closed at the interval start;
	// frames flow again once the link redials and resumes from the last
	// cumulative ack.
	LinkReset
)

func (s LinkState) String() string {
	switch s {
	case LinkOK:
		return "ok"
	case LinkSevered:
		return "sever"
	case LinkStalled:
		return "stall"
	case LinkReset:
		return "reset"
	}
	return fmt.Sprintf("LinkState(%d)", int(s))
}

// LinkFaultPlan schedules link faults above the sockets. Time is divided
// into fixed intervals (the mesh config sets the wall length; this plan
// never reads a clock), and the state of every directed link in every
// interval is a pure function of (Seed, from, to, interval) — so two runs
// with the same seed inject byte-identical fault schedules, and the
// schedule can be rendered and diffed without running anything.
//
// Directions roll independently, so asymmetric links (A→B severed while
// B→A flows) arise at the configured rates without extra machinery.
type LinkFaultPlan struct {
	// Seed keys every per-(link, interval) decision.
	Seed int64
	// SeverRate, StallRate, and ResetRate are the per-(link, interval)
	// probabilities of each fault; they are tried in that order against a
	// single roll, so their sum must be ≤ 1.
	SeverRate float64
	StallRate float64
	ResetRate float64
	// ActiveIntervals bounds fault injection: intervals ≥ ActiveIntervals
	// are always LinkOK (except permanent isolation), so every finite
	// schedule heals and a live run can finish. Zero disables random
	// faults entirely.
	ActiveIntervals int
	// Isolate lists processes permanently partitioned from everyone else:
	// every link with exactly one endpoint in the set is severed in every
	// interval, never healing. This is the conformance teeth check — a
	// permanently isolated quorum must surface as a deadline failure, not
	// a quiet success.
	Isolate []int
}

// Salt separating link-fault rolls from every other seeded decision.
const saltLink uint64 = 0xd6e8feb86659fd93

// mix64 is a splitmix64 finalizer: a cheap, well-distributed hash from a
// 64-bit key to a 64-bit value.
//
//ccvet:pure
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Enabled reports whether the plan can ever produce a fault.
//
//ccvet:pure
func (p LinkFaultPlan) Enabled() bool {
	return len(p.Isolate) > 0 ||
		(p.ActiveIntervals > 0 && p.SeverRate+p.StallRate+p.ResetRate > 0)
}

// isolated reports whether id is in the permanent-isolation set.
//
//ccvet:pure
func (p LinkFaultPlan) isolated(id int) bool {
	for _, q := range p.Isolate {
		if q == id {
			return true
		}
	}
	return false
}

// roll returns a deterministic value in [0, 1) for one (link, interval).
//
//ccvet:pure
func (p LinkFaultPlan) roll(from, to, interval int) float64 {
	x := mix64(uint64(p.Seed) ^ saltLink)
	x = mix64(x ^ uint64(from)<<32 ^ uint64(to))
	x = mix64(x ^ uint64(interval))
	return float64(x>>11) / float64(1<<53)
}

// State is the plan's verdict for the directed link from→to during the
// given interval. It is a pure function of its arguments and the plan.
//
//ccvet:pure
func (p LinkFaultPlan) State(from, to, interval int) LinkState {
	if p.isolated(from) != p.isolated(to) {
		return LinkSevered
	}
	if interval >= p.ActiveIntervals {
		return LinkOK
	}
	r := p.roll(from, to, interval)
	switch {
	case r < p.SeverRate:
		return LinkSevered
	case r < p.SeverRate+p.StallRate:
		return LinkStalled
	case r < p.SeverRate+p.StallRate+p.ResetRate:
		return LinkReset
	default:
		return LinkOK
	}
}

// Render writes the full fault schedule for the given processes over the
// given number of intervals, one line per faulted (interval, link), in a
// canonical order. Two runs configured with the same seed must render
// byte-identical schedules; the cclive -print-faults flag exposes exactly
// this string for that check.
//
//ccvet:pure
func (p LinkFaultPlan) Render(procs []int, intervals int) string {
	sorted := append([]int(nil), procs...)
	sort.Ints(sorted)
	var sb strings.Builder
	fmt.Fprintf(&sb, "linkfaults seed=%d sever=%g stall=%g reset=%g active=%d isolate=%v\n",
		p.Seed, p.SeverRate, p.StallRate, p.ResetRate, p.ActiveIntervals, p.Isolate)
	for interval := 0; interval < intervals; interval++ {
		for _, from := range sorted {
			for _, to := range sorted {
				if from == to {
					continue
				}
				if st := p.State(from, to, interval); st != LinkOK {
					fmt.Fprintf(&sb, "i%03d %d->%d %s\n", interval, from, to, st)
				}
			}
		}
	}
	return sb.String()
}
