// Package runtime is a live execution engine for the Dwork & Skeen model:
// it runs any sim.Protocol as one goroutine per processor over an
// unreliable, fault-injected transport, emulates the paper's reliable fair
// buffers with per-link at-least-once delivery plus receiver-side dedup,
// detects injected fail-stop crashes with heartbeat timeouts, and records a
// total-order event trace that is replayed through the deterministic
// simulator to prove every live execution is a legal run of the model.
//
// The simulator answers "what can the model do"; this package answers "does
// a genuinely concurrent implementation stay inside the model". The bridge
// is the conformance check: a live run whose trace does not replay — a
// duplicated delivery, a lost message the transport swallowed, a decision
// the model would not reach — fails with a replayable artifact in the
// internal/chaos trace format.
package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Wire frame layout (all integers big-endian, fixed width so the encoding
// is canonical by construction — for every valid byte string there is
// exactly one frame, and Decode∘Encode is the identity):
//
//	offset  size  field
//	0       1     magic (0xCC)
//	1       1     version (1)
//	2       4     from (uint32)
//	6       4     to (uint32)
//	10      8     seq (uint64, ≤ MaxInt64)
//	18      1     flags (bit 0: failure notice; others must be zero)
//	19      4     payload-key length (uint32; 0 for notices)
//	23      …     payload key bytes
const (
	frameMagic   = 0xCC
	frameVersion = 1

	frameHeaderLen = 23
	// frameIDLen is the prefix that determines the dedup key: magic,
	// version, from, to, seq.
	frameIDLen = 18
)

// Frame is the decoded wire representation of one transported message: the
// model's triple (from, to, seq), the failure-notice flag, and the
// payload's canonical key. Payload *objects* never cross the wire in this
// in-process runtime — the key is what buffer hashing and dedup need — so
// Decode returns the key, not a reconstructed Payload.
type Frame struct {
	From   sim.ProcID
	To     sim.ProcID
	Seq    int
	Notice bool
	// PayloadKey is the payload's canonical Key(); empty for notices.
	PayloadKey string
}

// ID returns the message triple the frame carries.
func (f Frame) ID() sim.MsgID {
	return sim.MsgID{From: f.From, To: f.To, Seq: f.Seq}
}

// Errors returned by EncodeFrame, DecodeFrame, and DedupKey.
var (
	// ErrFrameRange reports a frame whose fields do not fit the wire
	// encoding (negative or oversized processor IDs or sequence numbers,
	// or a notice carrying a payload).
	ErrFrameRange = errors.New("runtime: frame field out of encodable range")
	// ErrFrameCorrupt reports bytes that are not a canonical frame.
	ErrFrameCorrupt = errors.New("runtime: corrupt frame")
)

// EncodeFrame serializes the frame canonically.
//
//ccvet:pure
func EncodeFrame(f Frame) ([]byte, error) {
	if f.From < 0 || int64(f.From) > math.MaxUint32 || f.To < 0 || int64(f.To) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: processor id (from=%d, to=%d)", ErrFrameRange, f.From, f.To)
	}
	if f.Seq < 0 {
		return nil, fmt.Errorf("%w: seq %d", ErrFrameRange, f.Seq)
	}
	if f.Notice && f.PayloadKey != "" {
		return nil, fmt.Errorf("%w: failure notice with payload key %q", ErrFrameRange, f.PayloadKey)
	}
	if len(f.PayloadKey) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: payload key of %d bytes", ErrFrameRange, len(f.PayloadKey))
	}
	buf := make([]byte, frameHeaderLen+len(f.PayloadKey))
	buf[0] = frameMagic
	buf[1] = frameVersion
	binary.BigEndian.PutUint32(buf[2:], uint32(f.From))
	binary.BigEndian.PutUint32(buf[6:], uint32(f.To))
	binary.BigEndian.PutUint64(buf[10:], uint64(f.Seq))
	if f.Notice {
		buf[18] = 1
	}
	binary.BigEndian.PutUint32(buf[19:], uint32(len(f.PayloadKey)))
	copy(buf[frameHeaderLen:], f.PayloadKey)
	return buf, nil
}

// EncodeMessage serializes a sim.Message's wire frame.
//
//ccvet:pure
func EncodeMessage(m sim.Message) ([]byte, error) {
	f := Frame{From: m.ID.From, To: m.ID.To, Seq: m.ID.Seq, Notice: m.Notice}
	if !m.Notice {
		f.PayloadKey = m.Payload.Key()
	}
	return EncodeFrame(f)
}

// DecodeFrame parses a canonical frame. Exactly the byte strings produced
// by EncodeFrame decode successfully: a successful decode re-encodes to the
// identical bytes, and DedupKey of the same bytes equals the decoded
// frame's ID (the round-trip contract FuzzFrameRoundTrip enforces).
//
//ccvet:pure
func DecodeFrame(data []byte) (Frame, error) {
	if len(data) < frameHeaderLen {
		return Frame{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrFrameCorrupt, len(data), frameHeaderLen)
	}
	if data[0] != frameMagic {
		return Frame{}, fmt.Errorf("%w: magic %#x", ErrFrameCorrupt, data[0])
	}
	if data[1] != frameVersion {
		return Frame{}, fmt.Errorf("%w: version %d, want %d", ErrFrameCorrupt, data[1], frameVersion)
	}
	seq := binary.BigEndian.Uint64(data[10:])
	if seq > math.MaxInt64 {
		return Frame{}, fmt.Errorf("%w: seq %d overflows", ErrFrameCorrupt, seq)
	}
	flags := data[18]
	if flags&^1 != 0 {
		return Frame{}, fmt.Errorf("%w: flags %#x", ErrFrameCorrupt, flags)
	}
	keyLen := binary.BigEndian.Uint32(data[19:])
	if uint64(len(data)-frameHeaderLen) != uint64(keyLen) {
		return Frame{}, fmt.Errorf("%w: payload key length %d, have %d bytes", ErrFrameCorrupt, keyLen, len(data)-frameHeaderLen)
	}
	f := Frame{
		From:       sim.ProcID(binary.BigEndian.Uint32(data[2:])),
		To:         sim.ProcID(binary.BigEndian.Uint32(data[6:])),
		Seq:        int(seq),
		Notice:     flags&1 != 0,
		PayloadKey: string(data[frameHeaderLen:]),
	}
	if f.Notice && f.PayloadKey != "" {
		return Frame{}, fmt.Errorf("%w: failure notice with payload", ErrFrameCorrupt)
	}
	return f, nil
}

// DedupKey extracts the message triple from a frame's fixed prefix without
// decoding the payload. Receiver-side dedup keys on this: retransmissions
// of the same message carry the same triple, so a delivered triple is
// delivered exactly once however many times the link duplicates it.
//
//ccvet:pure
func DedupKey(data []byte) (sim.MsgID, error) {
	if len(data) < frameIDLen {
		return sim.MsgID{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrFrameCorrupt, len(data), frameIDLen)
	}
	if data[0] != frameMagic || data[1] != frameVersion {
		return sim.MsgID{}, fmt.Errorf("%w: bad magic/version", ErrFrameCorrupt)
	}
	seq := binary.BigEndian.Uint64(data[10:])
	if seq > math.MaxInt64 {
		return sim.MsgID{}, fmt.Errorf("%w: seq %d overflows", ErrFrameCorrupt, seq)
	}
	return sim.MsgID{
		From: sim.ProcID(binary.BigEndian.Uint32(data[2:])),
		To:   sim.ProcID(binary.BigEndian.Uint32(data[6:])),
		Seq:  int(seq),
	}, nil
}
