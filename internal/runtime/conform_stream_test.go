package runtime

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// assertSameConformance holds Conform and ConformStream together: same
// replayed count, same divergences in the same order with the same details.
func assertSameConformance(t *testing.T, name string, res *Result, proto sim.Protocol, prob taxonomy.Problem) {
	t.Helper()
	full, errFull := Conform(res, proto, prob)
	stream, errStream := ConformStream(res, proto, prob)
	if (errFull == nil) != (errStream == nil) {
		t.Fatalf("%s: error mismatch: Conform %v, ConformStream %v", name, errFull, errStream)
	}
	if errFull != nil {
		return
	}
	if full.Replayed != stream.Replayed {
		t.Errorf("%s: Replayed %d (full) != %d (stream)", name, full.Replayed, stream.Replayed)
	}
	if !reflect.DeepEqual(full.Divergences, stream.Divergences) {
		t.Errorf("%s: divergences differ:\n full   %v\n stream %v", name, full.Divergences, stream.Divergences)
	}
}

func TestConformStreamMatchesConform(t *testing.T) {
	treeProto := protocols.Tree{Procs: 3}
	ones3 := []sim.Bit{sim.One, sim.One, sim.One}
	clean := mustRun(t, treeProto, ones3, fastConfig(FaultPlan{Seed: 1}, nil))
	assertSameConformance(t, "clean-tree", clean, treeProto, problem(taxonomy.WT, taxonomy.TC))

	starProto := protocols.Star{Procs: 4}
	lossy := mustRun(t, starProto, []sim.Bit{sim.One, sim.Zero, sim.One, sim.One},
		fastConfig(FaultPlan{Seed: 7, DropRate: 0.3, DupRate: 0.3, MaxDelay: 500 * time.Microsecond}, nil))
	assertSameConformance(t, "lossy-star", lossy, starProto, problem(taxonomy.HT, taxonomy.IC))

	crashed := mustRun(t, treeProto, ones3,
		fastConfig(FaultPlan{Seed: 11, DropRate: 0.15, MaxDelay: 300 * time.Microsecond},
			[]sim.FailureAt{{Proc: 1, AfterStep: 2}}))
	assertSameConformance(t, "crashed-tree", crashed, treeProto, problem(taxonomy.WT, taxonomy.TC))

	// Doctored divergences: both implementations must report the same
	// verdict on traces that do NOT conform.
	flipped := *clean
	flipped.Decisions = append([]sim.Decision(nil), clean.Decisions...)
	flipped.Decisions[0] = sim.Abort
	assertSameConformance(t, "flipped-decision", &flipped, treeProto, problem(taxonomy.WT, taxonomy.TC))

	truncated := *clean
	truncated.Schedule = clean.Schedule[:len(clean.Schedule)/2]
	assertSameConformance(t, "truncated-schedule", &truncated, treeProto, problem(taxonomy.WT, taxonomy.TC))

	bogus := *clean
	bogus.Schedule = append(append([]sim.Event(nil), clean.Schedule...),
		sim.Event{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 0, Seq: 99}})
	assertSameConformance(t, "bogus-event", &bogus, treeProto, problem(taxonomy.WT, taxonomy.TC))
}

// TestConformStreamClean is the streaming replay's own happy path: a live
// run conforms via ConformStream without ever materializing the history.
func TestConformStreamClean(t *testing.T) {
	proto := protocols.AckCommit{Procs: 4}
	inputs := []sim.Bit{sim.One, sim.One, sim.One, sim.One}
	res := mustRun(t, proto, inputs, fastConfig(FaultPlan{Seed: 3}, nil))
	conf, err := ConformStream(res, proto, problem(taxonomy.WT, taxonomy.TC))
	if err != nil {
		t.Fatalf("ConformStream: %v", err)
	}
	if !conf.OK() {
		t.Fatalf("expected clean conformance, got %v", conf.Divergences)
	}
	if conf.Run != nil {
		t.Fatal("streaming conformance must not materialize the run")
	}
	if conf.Replayed != len(res.Schedule) {
		t.Fatalf("replayed %d of %d events", conf.Replayed, len(res.Schedule))
	}
}
