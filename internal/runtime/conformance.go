package runtime

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Divergence is one way a live run left the model: its recorded schedule
// does not replay, its decisions disagree with the replay, it claimed
// quiescence the model denies, or the replayed run violates the problem's
// predicates.
type Divergence struct {
	// Kind is "replay", "decision", "quiescence", or a taxonomy violation
	// kind ("rule", "IC", "TC", "WT", "ST", "HT").
	Kind string
	// Detail explains the divergence, naming events and processors.
	Detail string
}

func (d Divergence) String() string { return d.Kind + ": " + d.Detail }

// Conformance is the verdict of replaying a live run through the
// deterministic simulator.
type Conformance struct {
	// Run is the replayed execution, up to the first inapplicable event.
	// ConformStream leaves it nil: the streaming replay never materializes
	// the configuration history.
	Run *sim.Run
	// Replayed is how many schedule events applied cleanly.
	Replayed int
	// Divergences lists every disagreement between the live run and the
	// model; empty means the live execution is a legal run with the same
	// decisions, checked against the problem's predicates.
	Divergences []Divergence
}

// OK reports whether the live run conformed.
func (c *Conformance) OK() bool { return len(c.Divergences) == 0 }

// Conform replays a live result through the simulator and checks it
// against the problem. This is the bridge from "ran" to "ran correctly":
//
//   - Every recorded event must apply under the model's rules. A transport
//     that delivers a message twice records a second Deliver the model
//     rejects (the message is no longer buffered); a processor stepping
//     after its crash is refused the same way.
//   - A live claim of quiescence must hold in the replayed configuration.
//     A transport that silently lost a message leaves it buffered in the
//     replay — the model still has an enabled event, so the claim fails.
//   - Live decisions must match the replay's, and the replayed run must
//     satisfy the problem's decision rule, consistency constraint, and
//     (when quiescent) termination condition.
//
// A run whose schedule carries Omit events — the injector suppressed some
// deliveries — is judged for safety only: omissions exempt their targets
// from the termination conditions, but they can also legitimately leave
// *non-targeted* processors waiting forever for suppressed messages, and
// whether a protocol terminates under an omission adversary is the
// checker's and the chaos sweep's question, not runtime conformance's. The
// replay, quiescence, decision, rule, and consistency checks all still
// apply in full.
//
// The returned error reports setup problems only (wrong input length);
// divergences are data, not errors.
//
//ccvet:pure
func Conform(res *Result, proto sim.Protocol, problem taxonomy.Problem) (*Conformance, error) {
	run, err := sim.NewRun(proto, res.Inputs)
	if err != nil {
		return nil, err
	}
	conf := &Conformance{Run: run}
	for i, e := range res.Schedule {
		if err := run.Extend(sim.Schedule{e}); err != nil {
			conf.Divergences = append(conf.Divergences, Divergence{
				Kind:   "replay",
				Detail: fmt.Sprintf("event %d (%s) does not apply: %v", i, e, err),
			})
			break
		}
		conf.Replayed++
	}
	replayedAll := conf.Replayed == len(res.Schedule)

	if replayedAll && res.Quiescent && !run.Final().Quiescent() {
		conf.Divergences = append(conf.Divergences, Divergence{
			Kind:   "quiescence",
			Detail: "live run claimed quiescence but the replayed configuration has enabled events (a message the transport lost?)",
		})
	}
	if replayedAll {
		for p := 0; p < proto.N(); p++ {
			replayed, _ := run.DecisionOf(sim.ProcID(p))
			if live := res.Decisions[p]; live != replayed {
				conf.Divergences = append(conf.Divergences, Divergence{
					Kind:   "decision",
					Detail: fmt.Sprintf("%s decided %s live but %s in replay", sim.ProcID(p), live, replayed),
				})
			}
		}
		complete := res.Quiescent && run.Final().Quiescent() && !hasOmissions(res.Schedule)
		for _, v := range problem.Validate(run, complete) {
			conf.Divergences = append(conf.Divergences, Divergence{Kind: v.Kind, Detail: v.Detail})
		}
	}
	return conf, nil
}

// hasOmissions reports whether the schedule carries any Omit event, in
// which case the run is judged for safety only.
//
//ccvet:pure
func hasOmissions(sched sim.Schedule) bool {
	for _, e := range sched {
		if e.Type == sim.Omit {
			return true
		}
	}
	return false
}

// ConformStream is Conform in O(N) memory: it replays the schedule holding
// only the current configuration and folds each one into a streaming
// validator instead of materializing the run. Conform retains every
// intermediate configuration — O(events × N²) memory — which at N=100 with
// a crash-amplified trace of a few million events is tens of gigabytes;
// the streaming replay of the same trace stays flat. The verdict is
// identical (TestConformStreamMatchesConform) except that the returned
// Conformance.Run is nil.
//
//ccvet:pure
func ConformStream(res *Result, proto sim.Protocol, problem taxonomy.Problem) (*Conformance, error) {
	run, err := sim.NewRun(proto, res.Inputs)
	if err != nil {
		return nil, err
	}
	cur := run.Final()
	checker := taxonomy.NewStreamChecker(problem, cur)
	conf := &Conformance{}
	for i, e := range res.Schedule {
		next, _, err := sim.Apply(proto, cur, e)
		if err != nil {
			conf.Divergences = append(conf.Divergences, Divergence{
				Kind:   "replay",
				Detail: fmt.Sprintf("event %d (%s) does not apply: %v", i, e, err),
			})
			break
		}
		cur = next
		checker.Observe(e, next)
		conf.Replayed++
	}
	replayedAll := conf.Replayed == len(res.Schedule)

	if replayedAll && res.Quiescent && !cur.Quiescent() {
		conf.Divergences = append(conf.Divergences, Divergence{
			Kind:   "quiescence",
			Detail: "live run claimed quiescence but the replayed configuration has enabled events (a message the transport lost?)",
		})
	}
	if replayedAll {
		for p := 0; p < proto.N(); p++ {
			replayed, _ := checker.Decision(sim.ProcID(p))
			if live := res.Decisions[p]; live != replayed {
				conf.Divergences = append(conf.Divergences, Divergence{
					Kind:   "decision",
					Detail: fmt.Sprintf("%s decided %s live but %s in replay", sim.ProcID(p), live, replayed),
				})
			}
		}
		complete := res.Quiescent && cur.Quiescent() && !hasOmissions(res.Schedule)
		for _, v := range checker.Finish(complete) {
			conf.Divergences = append(conf.Divergences, Divergence{Kind: v.Kind, Detail: v.Detail})
		}
	}
	return conf, nil
}
