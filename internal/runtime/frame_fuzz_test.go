package runtime

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip fuzzes the wire frame decoder with arbitrary bytes
// and enforces the canonical-encoding contract: whenever DecodeFrame
// accepts a byte string, re-encoding the frame reproduces the identical
// bytes, and DedupKey — which parses only the fixed prefix — agrees with
// the decoded frame's triple. Receiver-side dedup is keyed on DedupKey, so
// a disagreement here would let a duplicated or corrupted frame smuggle a
// second delivery past the transport.
func FuzzFrameRoundTrip(f *testing.F) {
	seeds := []Frame{
		{From: 0, To: 1, Seq: 1, PayloadKey: "vote:1"},
		{From: 2, To: 0, Seq: 42},
		{From: 1, To: 2, Seq: 7, Notice: true},
		{From: 3, To: 4, Seq: 1 << 33, PayloadKey: "ack(p3,round=2)"},
	}
	for _, fr := range seeds {
		data, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{frameMagic, frameVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			// Rejected frames must also be rejected (or at least never
			// mis-keyed) by the prefix parser when the prefix itself is
			// invalid; a valid prefix with a corrupt tail is fine.
			return
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", data, re)
		}
		id, err := DedupKey(data)
		if err != nil {
			t.Fatalf("DecodeFrame accepted %x but DedupKey rejected it: %v", data, err)
		}
		if id != fr.ID() {
			t.Fatalf("DedupKey = %v but decoded frame carries %v", id, fr.ID())
		}
	})
}
