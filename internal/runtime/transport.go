package runtime

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// FaultPlan configures the unreliable link underneath the transport. Every
// fault decision is a pure function of (Seed, message triple, attempt), so
// two runs with the same seed inject the same drops, duplications, and
// delays per delivery attempt even though goroutine interleaving differs.
type FaultPlan struct {
	// Seed keys the per-attempt fault hash.
	Seed int64
	// DropRate is the probability a delivery attempt is lost in transit
	// (the receiver never sees it; the link retransmits after backoff).
	DropRate float64
	// DupRate is the probability the acknowledgement of a *successful*
	// delivery is lost, so the link retransmits a message the receiver
	// already has — the classic at-least-once duplicate that receiver-side
	// dedup must absorb.
	DupRate float64
	// MaxDelay bounds the per-attempt transit latency, drawn uniformly
	// from [0, MaxDelay). Zero means instantaneous links.
	MaxDelay time.Duration
	// DisableDedup turns receiver-side dedup off. Only the conformance
	// teeth-check uses this: with duplicates admitted, live traces record
	// double deliveries the model rejects, and the run must fail.
	DisableDedup bool
	// OmitRate is the probability a message is omission-suppressed at the
	// receiver: accepted after dedup (so retransmissions of the same triple
	// stay absorbed) but never buffered — the receive side of the omission
	// fault class. Unlike DropRate, the loss is permanent and is recorded
	// as an Omit event in the total order, so conformance replay validates
	// it instead of diverging. The verdict is per message, not per attempt.
	OmitRate float64
	// OmitMaxSeq bounds omission suppression to messages with sequence
	// number at most OmitMaxSeq, keeping each link's omission schedule
	// finite and printable (-print-faults). Zero means no bound.
	OmitMaxSeq int
}

// Salts separating the drop, duplicate, and delay decisions of one attempt.
const (
	saltDrop uint64 = 0x9e3779b97f4a7c15
	saltDup  uint64 = 0xbf58476d1ce4e5b9
	saltDel  uint64 = 0x94d049bb133111eb
	saltOmit uint64 = 0xd6e8feb86659fd93
)

// mix64 is a splitmix64 finalizer: a cheap, well-distributed hash from a
// 64-bit key to a 64-bit value.
//
//ccvet:pure
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a deterministic value in [0, 1) for one fault decision.
//
//ccvet:pure
func (fp FaultPlan) roll(salt uint64, id sim.MsgID, attempt int) float64 {
	x := uint64(fp.Seed)
	x = mix64(x ^ salt)
	x = mix64(x ^ uint64(id.From)<<40 ^ uint64(id.To)<<20 ^ uint64(id.Seq))
	x = mix64(x ^ uint64(attempt))
	return float64(x>>11) / float64(1<<53)
}

func (fp FaultPlan) drop(id sim.MsgID, attempt int) bool {
	return fp.DropRate > 0 && fp.roll(saltDrop, id, attempt) < fp.DropRate
}

func (fp FaultPlan) dup(id sim.MsgID, attempt int) bool {
	return fp.DupRate > 0 && fp.roll(saltDup, id, attempt) < fp.DupRate
}

// omit decides whether the receiver omission-suppresses this message. The
// decision is attempt-independent on purpose: every retransmission of one
// triple meets the same verdict, so at-least-once delivery cannot undo an
// omission.
//
//ccvet:pure
func (fp FaultPlan) omit(id sim.MsgID) bool {
	if fp.OmitRate <= 0 {
		return false
	}
	if fp.OmitMaxSeq > 0 && id.Seq > fp.OmitMaxSeq {
		return false
	}
	return fp.roll(saltOmit, id, 0) < fp.OmitRate
}

// RenderOmissions writes the plan's full omission schedule for an n-processor
// run, one line per suppressed (from, to, seq) triple in canonical order.
// The schedule is a pure function of the seed — two runs configured alike
// must render byte-identical schedules — and is finite only because
// OmitMaxSeq bounds the suppressed sequence numbers; with no bound the
// schedule cannot be enumerated and RenderOmissions says so instead.
//
//ccvet:pure
func (fp FaultPlan) RenderOmissions(n int) string {
	if fp.OmitRate <= 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "omissions seed=%d rate=%g maxseq=%d\n", fp.Seed, fp.OmitRate, fp.OmitMaxSeq)
	if fp.OmitMaxSeq <= 0 {
		sb.WriteString("  (unbounded: set OmitMaxSeq to render the finite schedule)\n")
		return sb.String()
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			for seq := 1; seq <= fp.OmitMaxSeq; seq++ {
				id := sim.MsgID{From: sim.ProcID(from), To: sim.ProcID(to), Seq: seq}
				if fp.omit(id) {
					fmt.Fprintf(&sb, "omit %d->%d seq %d\n", from, to, seq)
				}
			}
		}
	}
	return sb.String()
}

func (fp FaultPlan) delay(id sim.MsgID, attempt int) time.Duration {
	if fp.MaxDelay <= 0 {
		return 0
	}
	return time.Duration(fp.roll(saltDel, id, attempt) * float64(fp.MaxDelay))
}

// backoff is the retransmission schedule: exponential from base, capped,
// with deterministic jitter derived from the fault hash.
//
//ccvet:pure
func (fp FaultPlan) backoff(id sim.MsgID, attempt int) time.Duration {
	const (
		base    = 100 * time.Microsecond
		ceiling = 2 * time.Millisecond
	)
	d := base << uint(attempt)
	if d > ceiling || d <= 0 {
		d = ceiling
	}
	jitter := time.Duration(fp.roll(saltDel, id, attempt+1<<16) * float64(d) / 2)
	return d + jitter
}

// Transport is the message system underneath a live run: it must emulate
// the model's faultless, fair, unordered message system — at-least-once
// delivery into the destination's mailbox, upgraded to exactly-once by
// receiver-side dedup. Two implementations exist: the in-memory Network
// below (goroutine-per-message delivery agents over shared mailboxes) and
// the TCP transport in group.go (per-link queues over a netx mesh spanning
// OS processes). Both run the identical conformance suite: a recorded trace
// must replay as a legal run of the model whichever transport carried it.
type Transport interface {
	// Send accepts a message for delivery. It never fails: from the
	// sender's point of view the message system is faultless. lamport is
	// the collector timestamp of the send event, carried on the wire so a
	// distributed run's merged schedule preserves the happens-before
	// order (the in-memory transport ignores it).
	Send(m sim.Message, lamport uint64)
	// InFlight returns the number of accepted messages not yet settled
	// (delivered to a mailbox, or discarded at a closed one); quiescence
	// requires zero.
	InFlight() int
	// Stats snapshots the transport's counters.
	Stats() TransportStats
}

// TransportStats counts everything the transport did — including the two
// formerly silent loss paths (unencodable messages discarded at Send,
// garbage frames discarded at delivery), which are now first-class run
// statistics surfaced by the cclive soak summary. Link-level fields stay
// zero for the in-memory transport.
type TransportStats struct {
	// Accepted counts messages handed to Send.
	Accepted int64 `json:"accepted"`
	// Settled counts accepted messages that reached their mailbox (or
	// were discarded at a closed/deduplicating one).
	Settled int64 `json:"settled"`
	// EncodeFailures counts messages Send discarded because their wire
	// frame failed to encode — a silent loss the conformance replay would
	// otherwise have to infer.
	EncodeFailures int64 `json:"encodeFailures"`
	// GarbageFrames counts frames discarded at delivery because they were
	// corrupt or did not carry their message's triple.
	GarbageFrames int64 `json:"garbageFrames"`
	// Drops counts seeded in-transit losses of delivery attempts.
	Drops int64 `json:"drops"`
	// Dups counts seeded ack losses (duplicate retransmissions).
	Dups int64 `json:"dups"`
	// Omissions counts messages omission-suppressed at their receiver and
	// recorded as Omit events in the total order.
	Omissions int64 `json:"omissions,omitempty"`

	// FramesSent counts link frames written to peer sockets.
	FramesSent int64 `json:"framesSent,omitempty"`
	// FramesResent counts link frames re-sent after a reconnect resumed
	// per-link sequence state.
	FramesResent int64 `json:"framesResent,omitempty"`
	// Dials counts link connection attempts (first dials and redials).
	Dials int64 `json:"dials,omitempty"`
	// Reconnects counts links that lost an established connection and
	// re-established it.
	Reconnects int64 `json:"reconnects,omitempty"`
	// Resets counts injected connection resets.
	Resets int64 `json:"resets,omitempty"`
	// LinkDowns counts keepalive verdicts: a link declared down after
	// silence exceeded the keepalive timeout.
	LinkDowns int64 `json:"linkDowns,omitempty"`
	// SeveredIntervals counts (link, interval) pairs the fault plan
	// severed; HeldFrames counts frames parked while their link was
	// severed or stalled.
	SeveredIntervals int64 `json:"severedIntervals,omitempty"`
	HeldFrames       int64 `json:"heldFrames,omitempty"`
}

// transportCounters is the mutable atomic counter block behind
// TransportStats, shared between a transport and the mailboxes it feeds.
type transportCounters struct {
	accepted, settled, encodeFailures, garbageFrames, drops, dups, omissions atomic.Int64
}

func (c *transportCounters) snapshot() TransportStats {
	return TransportStats{
		Accepted:       c.accepted.Load(),
		Settled:        c.settled.Load(),
		EncodeFailures: c.encodeFailures.Load(),
		GarbageFrames:  c.garbageFrames.Load(),
		Drops:          c.drops.Load(),
		Dups:           c.dups.Load(),
		Omissions:      c.omissions.Load(),
	}
}

// agingLimit is the fairness bound: a buffered message passed over this
// many times is delivered next, so no message starves however the seeded
// picks fall (the model's fair-buffer guarantee).
const agingLimit = 8

// mailbox is one processor's receive buffer: the live counterpart of the
// model's unordered fair buffer. Delivery order is randomized (seeded) to
// exercise reorderings, dedup keyed by the frame's message triple absorbs
// at-least-once duplicates, and aging enforces fairness.
type mailbox struct {
	mu       sync.Mutex
	msgs     []sim.Message      // ccvet:guardedby mu
	tss      []uint64           // ccvet:guardedby mu — Lamport witness carried by each buffered message
	passed   []int              // ccvet:guardedby mu — times each buffered message was passed over
	seen     map[sim.MsgID]bool // ccvet:guardedby mu
	closed   bool               // ccvet:guardedby mu
	dedupOff bool
	rng      *rand.Rand // ccvet:guardedby mu — seeded delivery-order source; draws must be serialized
	notify   chan struct{}
	// pending counts messages popped by recv but not yet recorded and
	// applied by the node; the quiescence monitor must see zero.
	pending *atomic.Int64
	// counters is the owning transport's counter block: garbage frames
	// discarded here are counted, never silently lost.
	counters *transportCounters
	// omit, when non-nil, is the receive-omission injector: consulted after
	// dedup accepts a fresh message, a true return suppresses it —
	// accepted, never buffered. The hook records the Omit event in the
	// total order (or refuses, leaving the message to buffer normally).
	omit func(m sim.Message, ts uint64) bool
}

func newMailbox(seed int64, dedupOff bool, pending *atomic.Int64, counters *transportCounters) *mailbox {
	return &mailbox{
		seen:     make(map[sim.MsgID]bool),
		dedupOff: dedupOff,
		rng:      rand.New(rand.NewSource(seed)),
		notify:   make(chan struct{}, 1),
		pending:  pending,
		counters: counters,
	}
}

// omitHook builds processor p's receive-omission injector for the mailbox,
// or nil when the plan injects no omissions. The hook rolls the seeded
// per-message verdict and, on suppression, records the Omit event in the
// total order; a refused record (p crashed concurrently) lets the message
// buffer normally.
func omitHook(faults FaultPlan, p sim.ProcID, col *collector, counters *transportCounters) func(sim.Message, uint64) bool {
	if faults.OmitRate <= 0 {
		return nil
	}
	return func(m sim.Message, ts uint64) bool {
		if !faults.omit(m.ID) {
			return false
		}
		if !col.recordOmit(p, m.ID, ts) {
			return false
		}
		counters.omissions.Add(1)
		return true
	}
}

// deliver buffers one transported frame stamped with the Lamport timestamp
// of its send event. Duplicate triples are absorbed here (unless dedup is
// disabled), and frames for a closed mailbox — a crashed or halted
// processor — are discarded: the model ignores the buffers of failed and
// halted processors.
func (mb *mailbox) deliver(frame []byte, m sim.Message, ts uint64) {
	id, err := DedupKey(frame)
	if err != nil || id != m.ID {
		// A frame that does not carry its message's triple is a transport
		// bug; drop it so dedup cannot be keyed on garbage, and count the
		// loss. The missing message then surfaces as a conformance
		// divergence, with the counter naming the mechanism.
		mb.counters.garbageFrames.Add(1)
		return
	}
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	if !mb.dedupOff {
		if mb.seen[id] {
			mb.mu.Unlock()
			return
		}
		mb.seen[id] = true
	}
	if mb.omit != nil && mb.omit(m, ts) {
		// Suppressed after acceptance: dedup already marked the triple seen,
		// so retransmissions of this message stay absorbed and the omission
		// is permanent — the receive-omission fault, not a transient drop.
		mb.mu.Unlock()
		return
	}
	mb.msgs = append(mb.msgs, m)
	mb.tss = append(mb.tss, ts)
	mb.passed = append(mb.passed, 0)
	mb.mu.Unlock()
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

// tryRecv pops one message if any is buffered. On success the global
// pending counter is raised; the node must call stepDone once the delivery
// is recorded and applied. On failure the node blocks on mb.notify.
func (mb *mailbox) tryRecv() (sim.Message, uint64, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed || len(mb.msgs) == 0 {
		return sim.Message{}, 0, false
	}
	m, ts := mb.pick()
	mb.pending.Add(1)
	return m, ts, true
}

// pick chooses the next message: uniformly at random, except a message
// passed over agingLimit times is served first. Callers hold mb.mu.
//
//ccvet:holds mu
func (mb *mailbox) pick() (sim.Message, uint64) {
	idx := -1
	for i, age := range mb.passed {
		if age >= agingLimit {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = mb.rng.Intn(len(mb.msgs))
	}
	m, ts := mb.msgs[idx], mb.tss[idx]
	for i := range mb.passed {
		if i != idx {
			mb.passed[i]++
		}
	}
	last := len(mb.msgs) - 1
	mb.msgs[idx], mb.tss[idx], mb.passed[idx] = mb.msgs[last], mb.tss[last], mb.passed[last]
	mb.msgs = mb.msgs[:last]
	mb.tss = mb.tss[:last]
	mb.passed = mb.passed[:last]
	return m, ts
}

func (mb *mailbox) stepDone() { mb.pending.Add(-1) }

// close discards current and future contents; the owner halted or crashed.
func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.msgs = nil
	mb.tss = nil
	mb.passed = nil
	mb.mu.Unlock()
}

// empty reports whether the mailbox holds no deliverable messages; a
// closed mailbox is vacuously empty.
func (mb *mailbox) empty() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.closed || len(mb.msgs) == 0
}

// Network is the transport: it emulates the model's faultless, fair,
// unordered message system on top of unreliable links. Each accepted
// message gets its own delivery agent that retransmits with exponential
// backoff until a non-dropped attempt lands — at-least-once — and
// receiver-side dedup upgrades that to the exactly-once buffering the
// model's buffers provide. Agents outlive their senders on purpose: a
// fail-stop crash halts a processor, never the message system, so a
// message recorded as sent before the crash still reaches its buffer.
type Network struct {
	faults   FaultPlan
	boxes    []*mailbox
	counters *transportCounters
	inFlight atomic.Int64
	done     chan struct{}
	wg       sync.WaitGroup
}

func newNetwork(faults FaultPlan, boxes []*mailbox, counters *transportCounters, done chan struct{}) *Network {
	return &Network{faults: faults, boxes: boxes, counters: counters, done: done}
}

// Send accepts a message for delivery. It never blocks and never fails:
// from the sender's point of view the message system is faultless.
func (nw *Network) Send(m sim.Message, lamport uint64) {
	nw.counters.accepted.Add(1)
	frame, err := EncodeMessage(m)
	if err != nil {
		// Unencodable messages cannot occur for in-range processors; count
		// the loss so a bug here shows up in run stats, not only as an
		// unexplained conformance divergence.
		nw.counters.encodeFailures.Add(1)
		return
	}
	nw.inFlight.Add(1)
	nw.wg.Add(1)
	go nw.deliverLoop(m, frame, lamport)
}

// deliverLoop is one message's reliable-delivery agent.
func (nw *Network) deliverLoop(m sim.Message, frame []byte, ts uint64) {
	defer nw.wg.Done()
	defer nw.inFlight.Add(-1)
	defer nw.counters.settled.Add(1)
	for attempt := 0; ; attempt++ {
		if d := nw.faults.delay(m.ID, attempt); d > 0 {
			if !nw.sleep(d) {
				return
			}
		}
		if nw.faults.drop(m.ID, attempt) {
			// Lost in transit: retransmit after backoff.
			nw.counters.drops.Add(1)
			if !nw.sleep(nw.faults.backoff(m.ID, attempt)) {
				return
			}
			continue
		}
		nw.boxes[m.ID.To].deliver(frame, m, ts)
		if !nw.faults.dup(m.ID, attempt) {
			return
		}
		// The acknowledgement was lost: the agent cannot know the message
		// arrived, so it retransmits a duplicate after backoff.
		nw.counters.dups.Add(1)
		if !nw.sleep(nw.faults.backoff(m.ID, attempt)) {
			return
		}
	}
}

// sleep waits d unless the run shuts down first.
func (nw *Network) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-nw.done:
		return false
	}
}

// InFlight returns the number of accepted messages not yet delivered (or
// discarded at a closed mailbox).
func (nw *Network) InFlight() int { return int(nw.inFlight.Load()) }

// Stats snapshots the transport's counters.
func (nw *Network) Stats() TransportStats { return nw.counters.snapshot() }

// wait blocks until every delivery agent has exited.
func (nw *Network) wait() { nw.wg.Wait() }
