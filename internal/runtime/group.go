package runtime

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime/netx"
	"repro/internal/sim"
)

// This file is the distributed half of the runtime: a Group runs a
// contiguous slice of a protocol's processors inside one OS process, with
// local traffic short-circuited through shared mailboxes and remote
// traffic carried as opaque frames over a netx mesh. Each group stamps its
// local total order with the collector's Lamport clock; a coordinator
// merges the groups' schedules into one global total order (MergeGroups)
// that replays through the same Conform check as a single-process run.

// GroupConfig configures one process's slice of a distributed run.
type GroupConfig struct {
	// Proto is the full protocol; Proto.N() is the global processor count.
	Proto sim.Protocol
	// Inputs is the full input vector.
	Inputs []sim.Bit
	// Host is this process's index in the mesh.
	Host int
	// Owner maps each processor to the host index running it.
	Owner []int
	// Mesh is the established byte mesh between hosts. The group sends on
	// it; inbound frames must be routed to DeliverWire by the mesh owner.
	Mesh *netx.Mesh
	// DecodePayload reconstructs a payload value from its canonical key,
	// for frames that crossed the wire. Injected (rather than imported)
	// so the runtime stays independent of the protocol library.
	DecodePayload func(key string) (sim.Payload, error)
	// Faults is the message-level fault plan (drops, dups, delays),
	// applied sender-side above the reliable links.
	Faults FaultPlan
	// Heartbeat and DetectTimeout tune the failure detector exactly as in
	// Config.
	Heartbeat     time.Duration
	DetectTimeout time.Duration
}

// GroupStatus is one process's contribution to the distributed quiescence
// predicate; the coordinator aggregates these across hosts.
type GroupStatus struct {
	// Events is the number of locally recorded schedule events; the
	// coordinator's quiescence check requires the global sum stable
	// across consecutive polls.
	Events int `json:"events"`
	// Idle: every hosted node is blocked on an empty mailbox or exited.
	Idle bool `json:"idle"`
	// BoxesEmpty: every hosted mailbox holds nothing deliverable.
	BoxesEmpty bool `json:"boxesEmpty"`
	// Pending counts deliveries popped but not yet recorded and applied.
	Pending int64 `json:"pending"`
	// InFlight counts accepted messages not yet settled, including frames
	// still queued or unacked on outbound links.
	InFlight int `json:"inFlight"`
	// Undetected counts confirmed local crashes whose notices have not
	// been released yet.
	Undetected int `json:"undetected"`
	// Err is a local model-contract violation, fatal to the run.
	Err string `json:"err,omitempty"`
}

// GroupResult is one process's share of a finished distributed run.
// Per-processor slices are indexed by global processor id; entries for
// processors hosted elsewhere are zero.
type GroupResult struct {
	Host            int            `json:"host"`
	Schedule        sim.Schedule   `json:"schedule"`
	TS              []uint64       `json:"ts"`
	Decisions       []sim.Decision `json:"decisions"`
	DecidedAtNs     []int64        `json:"decidedAtNs"` // absolute UnixNano; 0 = never decided
	CrashAtNs       []int64        `json:"crashAtNs"`   // absolute UnixNano; 0 = never crashed
	DetectionNs     []int64        `json:"detectionNs"` // crash → notice release, per hosted crash
	FalseSuspicions int            `json:"falseSuspicions"`
	LinkSuspicions  int            `json:"linkSuspicions"`
	Transport       TransportStats `json:"transport"`
}

// Group runs the hosted slice of processors. Construction wires everything
// but starts nothing; Start launches the node goroutines (after the
// coordinator's barrier), and Finish tears the group down and snapshots
// its share of the run.
type Group struct {
	cfg     GroupConfig
	n       int
	col     *collector
	det     *detector
	tr      *tcpTransport
	boxes   map[sim.ProcID]*mailbox
	nodes   map[sim.ProcID]*node
	hosted  []sim.ProcID // owned processors in ascending order
	pending atomic.Int64
	done    chan struct{}
	started bool
	wg      sync.WaitGroup
}

// StartGroup builds a group for every processor p with Owner[p] == Host.
// Nodes do not step until Start is called.
func StartGroup(cfg GroupConfig) (*Group, error) {
	n := cfg.Proto.N()
	if len(cfg.Inputs) != n || len(cfg.Owner) != n {
		return nil, fmt.Errorf("runtime: group wants %d inputs and owners, got %d and %d", n, len(cfg.Inputs), len(cfg.Owner))
	}
	if cfg.Mesh == nil || cfg.DecodePayload == nil {
		return nil, fmt.Errorf("runtime: group needs a mesh and a payload decoder")
	}
	g := &Group{
		cfg:   cfg,
		n:     n,
		col:   newCollector(n),
		boxes: make(map[sim.ProcID]*mailbox),
		nodes: make(map[sim.ProcID]*node),
		done:  make(chan struct{}),
	}
	counters := &transportCounters{}
	for p := 0; p < n; p++ {
		if cfg.Owner[p] != cfg.Host {
			continue
		}
		pid := sim.ProcID(p)
		g.hosted = append(g.hosted, pid)
		mb := newMailbox(int64(mix64(uint64(cfg.Faults.Seed)^uint64(p)+1)), cfg.Faults.DisableDedup, &g.pending, counters)
		mb.omit = omitHook(cfg.Faults, pid, g.col, counters)
		g.boxes[pid] = mb
	}
	g.tr = newTCPTransport(g, counters)
	hb, dt := cfg.Heartbeat, cfg.DetectTimeout
	if hb <= 0 {
		hb = time.Millisecond
	}
	if dt <= 0 {
		dt = 15 * time.Millisecond
	}
	g.det = newDetector(n, g.col, g.tr, hb, dt)
	for p := 0; p < n; p++ {
		if cfg.Owner[p] != cfg.Host {
			// Remote processors are not this detector's business: their
			// own host watches their heartbeats.
			g.det.markExited(sim.ProcID(p))
			continue
		}
		pid := sim.ProcID(p)
		g.nodes[pid] = &node{
			p:       pid,
			proto:   cfg.Proto,
			state:   cfg.Proto.Init(pid, cfg.Inputs[p], n),
			mb:      g.boxes[pid],
			net:     g.tr,
			col:     g.col,
			det:     g.det,
			crashed: make(chan struct{}),
			done:    g.done,
		}
	}
	return g, nil
}

// Start launches the hosted nodes, the fault scheduler, and the local
// detector loop. Call exactly once, after every group in the run is built.
func (g *Group) Start() {
	if g.started {
		return
	}
	g.started = true
	now := time.Now().UnixNano()
	for _, p := range g.hosted {
		g.det.lastBeat[p].Store(now)
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.tr.sched.run()
	}()
	g.wg.Add(1)
	go g.pollLoop()
	for _, p := range g.hosted {
		g.wg.Add(1)
		go func(nd *node) {
			defer g.wg.Done()
			nd.loop()
		}(g.nodes[p])
	}
}

// pollLoop drives the local failure detector while the run lasts.
func (g *Group) pollLoop() {
	defer g.wg.Done()
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-t.C:
			g.det.poll()
		}
	}
}

// DeliverWire routes one mesh payload — the send event's Lamport timestamp
// followed by the message frame — into the destination's mailbox.
// Anything that does not parse is counted as a garbage frame, never
// silently dropped.
func (g *Group) DeliverWire(payload []byte) {
	if len(payload) < 8 {
		g.tr.counters.garbageFrames.Add(1)
		return
	}
	ts := binary.BigEndian.Uint64(payload[:8])
	frame := payload[8:]
	f, err := DecodeFrame(frame)
	if err != nil {
		g.tr.counters.garbageFrames.Add(1)
		return
	}
	m := sim.Message{ID: f.ID(), Notice: f.Notice}
	if !f.Notice {
		p, err := g.cfg.DecodePayload(f.PayloadKey)
		if err != nil {
			g.tr.counters.garbageFrames.Add(1)
			return
		}
		m.Payload = p
	}
	mb := g.boxes[f.To]
	if mb == nil {
		g.tr.counters.garbageFrames.Add(1)
		return
	}
	mb.deliver(frame, m, ts)
}

// NoteLinkDown forwards a mesh keepalive verdict to the failure detector
// as suspicion-only evidence.
func (g *Group) NoteLinkDown() { g.det.noteLinkDown() }

// Crash injects a fail-stop failure on a hosted processor.
func (g *Group) Crash(p sim.ProcID) {
	nd := g.nodes[p]
	if nd == nil {
		return
	}
	notices, ts, ok := g.col.recordCrash(p)
	if !ok {
		return
	}
	g.det.markCrashed(p, notices, ts, time.Now())
	close(nd.crashed)
	g.boxes[p].close()
}

// Status snapshots the group's contribution to the quiescence predicate.
func (g *Group) Status() GroupStatus {
	st := GroupStatus{
		Events:     g.col.events(),
		Idle:       true,
		BoxesEmpty: true,
		Pending:    g.pending.Load(),
		InFlight:   g.tr.InFlight(),
		Undetected: g.det.undetected(),
	}
	for _, p := range g.hosted {
		if g.nodes[p].phase.Load() == phaseRunning {
			st.Idle = false
		}
		if !g.boxes[p].empty() {
			st.BoxesEmpty = false
		}
	}
	if err := g.col.failure(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Finish stops the group and returns its share of the run. The mesh is the
// caller's to close (after every group has reported).
func (g *Group) Finish() *GroupResult {
	close(g.done)
	g.wg.Wait()
	sched, ts, decisions, decidedAt, crashAt := g.col.snapshot()
	latencies, falseSusp, linkSusp := g.det.stats()
	res := &GroupResult{
		Host:            g.cfg.Host,
		Schedule:        sched,
		TS:              ts,
		Decisions:       decisions,
		DecidedAtNs:     make([]int64, g.n),
		CrashAtNs:       make([]int64, g.n),
		DetectionNs:     make([]int64, g.n),
		FalseSuspicions: falseSusp,
		LinkSuspicions:  linkSusp,
		Transport:       g.tr.Stats(),
	}
	for p := 0; p < g.n; p++ {
		if !decidedAt[p].IsZero() {
			res.DecidedAtNs[p] = decidedAt[p].UnixNano()
		}
		if !crashAt[p].IsZero() {
			res.CrashAtNs[p] = crashAt[p].UnixNano()
		}
		if d, ok := latencies[sim.ProcID(p)]; ok {
			res.DetectionNs[p] = int64(d)
		}
	}
	return res
}

// ---- The TCP-backed transport ----

// tcpTransport implements Transport for a group: local destinations
// short-circuit into shared mailboxes, remote destinations ride the mesh.
// Message-level faults (drop, dup, delay) are applied sender-side by a
// single scheduler goroutine over a timing heap — never a goroutine per
// message — and the reliable links below absorb retransmission.
type tcpTransport struct {
	g        *Group
	counters *transportCounters
	sched    *sendScheduler
}

func newTCPTransport(g *Group, counters *transportCounters) *tcpTransport {
	t := &tcpTransport{g: g, counters: counters}
	t.sched = newSendScheduler(g.cfg.Faults, counters, t.attemptDeliver, g.done)
	return t
}

// Send accepts a message: encode once, then hand the delivery schedule to
// the fault scheduler.
func (t *tcpTransport) Send(m sim.Message, lamport uint64) {
	t.counters.accepted.Add(1)
	frame, err := EncodeMessage(m)
	if err != nil {
		t.counters.encodeFailures.Add(1)
		return
	}
	t.sched.accept(m, frame, lamport)
}

// attemptDeliver performs one non-dropped delivery attempt.
func (t *tcpTransport) attemptDeliver(a attempt) {
	to := a.m.ID.To
	if t.g.cfg.Owner[to] == t.g.cfg.Host {
		t.g.boxes[to].deliver(a.frame, a.m, a.ts)
		return
	}
	payload := make([]byte, 8+len(a.frame))
	binary.BigEndian.PutUint64(payload, a.ts)
	copy(payload[8:], a.frame)
	// Send blocks under backpressure (full link queue); the scheduler
	// tolerates that — at-least-once delivery has no deadline.
	_ = t.g.cfg.Mesh.Send(t.g.cfg.Owner[to], payload)
}

// InFlight counts messages not yet settled locally plus frames still
// queued or unacked on the mesh.
func (t *tcpTransport) InFlight() int {
	return int(t.sched.inflight.Load()) + t.g.cfg.Mesh.Pending()
}

// Stats merges the message-level counters with the mesh's link counters.
func (t *tcpTransport) Stats() TransportStats {
	st := t.counters.snapshot()
	ms := t.g.cfg.Mesh.Stats()
	st.FramesSent = ms.FramesSent
	st.FramesResent = ms.FramesResent
	st.Dials = ms.Dials
	st.Reconnects = ms.Reconnects
	st.Resets = ms.Resets
	st.LinkDowns = ms.LinkDowns
	st.SeveredIntervals = ms.SeveredIntervals
	st.HeldFrames = ms.HeldFrames
	return st
}

// ---- The seeded attempt scheduler ----

// attempt is one pending delivery attempt of one message.
type attempt struct {
	due   time.Time
	m     sim.Message
	frame []byte
	ts    uint64
	try   int
}

// attemptHeap is a min-heap of attempts by due time.
type attemptHeap []attempt

func (h attemptHeap) Len() int           { return len(h) }
func (h attemptHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h attemptHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *attemptHeap) Push(x any)        { *h = append(*h, x.(attempt)) }
func (h *attemptHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	*h = old[:n-1]
	return a
}

// sendScheduler executes every message's delivery attempts from one
// goroutine over a timing heap. Fault decisions remain a pure function of
// (seed, message triple, attempt) exactly as in the in-memory Network, so
// a TCP run with the same message-fault seed injects the same drop/dup
// pattern.
type sendScheduler struct {
	faults   FaultPlan
	counters *transportCounters
	deliver  func(attempt)
	done     chan struct{}
	notify   chan struct{}

	mu       sync.Mutex
	heap     attemptHeap // ccvet:guardedby mu
	inflight atomic.Int64
}

func newSendScheduler(faults FaultPlan, counters *transportCounters, deliver func(attempt), done chan struct{}) *sendScheduler {
	return &sendScheduler{
		faults:   faults,
		counters: counters,
		deliver:  deliver,
		done:     done,
		notify:   make(chan struct{}, 1),
	}
}

// accept enqueues a fresh message's first delivery attempt.
func (s *sendScheduler) accept(m sim.Message, frame []byte, ts uint64) {
	s.inflight.Add(1)
	s.push(attempt{
		due:   time.Now().Add(s.faults.delay(m.ID, 0)),
		m:     m,
		frame: frame,
		ts:    ts,
	})
}

func (s *sendScheduler) push(a attempt) {
	s.mu.Lock()
	heap.Push(&s.heap, a)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// run is the scheduler goroutine: pop due attempts, apply the seeded fault
// decisions, deliver or reschedule.
func (s *sendScheduler) run() {
	for {
		s.mu.Lock()
		var wait time.Duration = -1
		var a attempt
		ready := false
		if len(s.heap) > 0 {
			now := time.Now()
			if !s.heap[0].due.After(now) {
				a = heap.Pop(&s.heap).(attempt)
				ready = true
			} else {
				wait = s.heap[0].due.Sub(now)
			}
		}
		s.mu.Unlock()
		if ready {
			s.execute(a)
			continue
		}
		if wait < 0 {
			select {
			case <-s.notify:
			case <-s.done:
				return
			}
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-s.notify:
		case <-s.done:
			t.Stop()
			return
		}
		t.Stop()
	}
}

// execute applies the fault decisions of one due attempt.
func (s *sendScheduler) execute(a attempt) {
	if s.faults.drop(a.m.ID, a.try) {
		s.counters.drops.Add(1)
		s.requeue(a)
		return
	}
	s.deliver(a)
	if s.faults.dup(a.m.ID, a.try) {
		// Ack lost: retransmit a duplicate the receiver's dedup absorbs.
		s.counters.dups.Add(1)
		s.requeue(a)
		return
	}
	s.counters.settled.Add(1)
	s.inflight.Add(-1)
}

// requeue schedules the next attempt after backoff plus transit delay.
func (s *sendScheduler) requeue(a attempt) {
	delay := s.faults.backoff(a.m.ID, a.try)
	a.try++
	a.due = time.Now().Add(delay + s.faults.delay(a.m.ID, a.try))
	s.push(a)
}
