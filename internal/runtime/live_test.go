package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

func problem(term taxonomy.Termination, cons taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Consistency: cons, Termination: term}
}

// fastConfig keeps test runs quick: tight heartbeats, a short detection
// timeout, and a deadline generous enough for loaded CI machines.
func fastConfig(faults FaultPlan, failures []sim.FailureAt) Config {
	return Config{
		Faults:        faults,
		Failures:      failures,
		Heartbeat:     500 * time.Microsecond,
		DetectTimeout: 8 * time.Millisecond,
		Deadline:      30 * time.Second,
	}
}

func mustRun(t *testing.T, proto sim.Protocol, inputs []sim.Bit, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), proto, inputs, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v (schedule %d events)", res.Err, len(res.Schedule))
	}
	if !res.Quiescent {
		t.Fatalf("run did not quiesce (%d events)", len(res.Schedule))
	}
	return res
}

func mustConform(t *testing.T, res *Result, proto sim.Protocol, prob taxonomy.Problem) *Conformance {
	t.Helper()
	conf, err := Conform(res, proto, prob)
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	if !conf.OK() {
		for _, d := range conf.Divergences {
			t.Errorf("divergence: %s", d)
		}
		t.Fatalf("live run diverged from the model (%d/%d events replayed)", conf.Replayed, len(res.Schedule))
	}
	return conf
}

func TestLiveFailureFreeTreeConforms(t *testing.T) {
	proto := protocols.Tree{Procs: 3}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	res := mustRun(t, proto, inputs, fastConfig(FaultPlan{Seed: 1}, nil))
	mustConform(t, res, proto, problem(taxonomy.WT, taxonomy.TC))
	for p, d := range res.Decisions {
		if d != sim.Commit {
			t.Errorf("p%d decided %s, want commit on all-ones", p, d)
		}
	}
	if len(res.Crashes) != 0 || res.FalseSuspicions != 0 {
		t.Errorf("failure-free run reports crashes %v, false suspicions %d", res.Crashes, res.FalseSuspicions)
	}
}

func TestLiveLossyTransportStillConforms(t *testing.T) {
	proto := protocols.Star{Procs: 4}
	inputs := []sim.Bit{sim.One, sim.Zero, sim.One, sim.One}
	faults := FaultPlan{Seed: 7, DropRate: 0.3, DupRate: 0.3, MaxDelay: 500 * time.Microsecond}
	res := mustRun(t, proto, inputs, fastConfig(faults, nil))
	mustConform(t, res, proto, problem(taxonomy.HT, taxonomy.IC))
	for p, d := range res.Decisions {
		if d != sim.Abort {
			t.Errorf("p%d decided %s, want abort (input vector has a zero)", p, d)
		}
	}
}

func TestLiveCrashRecoversViaTerminationProtocol(t *testing.T) {
	// The tree protocol is WT-TC: a mid-protocol crash must be detected
	// and survivors must still reach a (unanimous) decision through the
	// Appendix termination protocol — Theorem 7 observed live.
	proto := protocols.Tree{Procs: 3}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	faults := FaultPlan{Seed: 11, DropRate: 0.15, MaxDelay: 300 * time.Microsecond}
	res := mustRun(t, proto, inputs, fastConfig(faults, []sim.FailureAt{{Proc: 1, AfterStep: 2}}))
	mustConform(t, res, proto, problem(taxonomy.WT, taxonomy.TC))
	if len(res.Crashes) != 1 || res.Crashes[0].Proc != 1 {
		t.Fatalf("crashes = %v, want exactly p1", res.Crashes)
	}
	if res.Crashes[0].Detection <= 0 {
		t.Errorf("detection latency not measured: %v", res.Crashes[0].Detection)
	}
	var decided sim.Decision
	for p, d := range res.Decisions {
		if p == 1 {
			continue
		}
		if d == sim.NoDecision {
			t.Fatalf("survivor p%d never decided", p)
		}
		if decided == sim.NoDecision {
			decided = d
		} else if d != decided {
			t.Fatalf("survivors disagree: %s vs %s", decided, d)
		}
	}
	if res.Recovery <= 0 {
		t.Errorf("recovery latency not measured: %v", res.Recovery)
	}
}

func TestLiveDisabledDedupFailsConformance(t *testing.T) {
	// The teeth check: with receiver-side dedup off and every ack lost,
	// duplicated deliveries are recorded in the trace, and the replay must
	// reject the second delivery of some triple (the model's buffer no
	// longer holds it). If this test fails, the conformance check proves
	// nothing.
	proto := protocols.Tree{Procs: 3}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	faults := FaultPlan{Seed: 3, DupRate: 1.0, DisableDedup: true}
	cfg := fastConfig(faults, nil)
	// With every ack lost the delivery agents retransmit forever, so the
	// run can never quiesce; a short deadline cuts it off once the
	// duplicated deliveries are in the trace.
	cfg.Deadline = 1500 * time.Millisecond
	res, err := Run(context.Background(), proto, inputs, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	conf, err := Conform(res, proto, problem(taxonomy.WT, taxonomy.TC))
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	if conf.OK() {
		t.Fatalf("broken transport (dedup disabled, every ack lost) passed conformance — the check has no teeth")
	}
	found := false
	for _, d := range conf.Divergences {
		if d.Kind == "replay" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a replay divergence, got %v", conf.Divergences)
	}
}

func TestConformCatchesLostMessage(t *testing.T) {
	// Fabricate the other transport lie: a message recorded as sent but
	// never delivered. Truncating the final delivery from an honest trace
	// leaves the replayed configuration non-quiescent, so the live claim
	// of quiescence must fail.
	proto := protocols.Tree{Procs: 3}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	res := mustRun(t, proto, inputs, fastConfig(FaultPlan{Seed: 5}, nil))
	cut := len(res.Schedule)
	for i := len(res.Schedule) - 1; i >= 0; i-- {
		if res.Schedule[i].Type == sim.Deliver {
			cut = i
			break
		}
	}
	if cut == len(res.Schedule) {
		t.Fatal("trace has no delivery to drop")
	}
	doctored := *res
	doctored.Schedule = append(sim.Schedule{}, res.Schedule[:cut]...)
	for _, e := range res.Schedule[cut+1:] {
		doctored.Schedule = append(doctored.Schedule, e)
	}
	conf, err := Conform(&doctored, proto, problem(taxonomy.WT, taxonomy.TC))
	if err != nil {
		t.Fatalf("Conform: %v", err)
	}
	if conf.OK() {
		t.Fatal("a trace with a swallowed delivery passed conformance")
	}
}

func TestLiveOmissionSoakConforms(t *testing.T) {
	// A miniature of the cclive omission soak: seeded plans drive live runs
	// under an omission injector (suppress-after-accept, recorded as Omit
	// events) stacked on a lossy transport. Every trace must replay clean —
	// Conform and ConformStream agreeing — and the injector must actually
	// fire: each run's Omit events must match its transport counter, and
	// the sweep as a whole must suppress at least one delivery.
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	proto := protocols.AckCommit{Procs: 4}
	prob := problem(taxonomy.WT, taxonomy.TC)
	plans := chaos.PlanRuns(1984, 6, proto.N(), 1, nil)
	totalOmitted := int64(0)
	for i, pl := range plans {
		faults := FaultPlan{
			Seed: pl.Seed, DropRate: 0.05, DupRate: 0.05,
			MaxDelay: 200 * time.Microsecond, OmitRate: 0.15, OmitMaxSeq: 4,
		}
		res, err := Run(context.Background(), proto, pl.Inputs, fastConfig(faults, pl.Failures))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Err != nil {
			t.Fatalf("run %d failed: %v", i, res.Err)
		}
		omitEvents := 0
		for _, e := range res.Schedule {
			if e.Type == sim.Omit {
				omitEvents++
			}
		}
		if int64(omitEvents) != res.Transport.Omissions {
			t.Fatalf("run %d: %d Omit events in trace, transport counted %d",
				i, omitEvents, res.Transport.Omissions)
		}
		totalOmitted += res.Transport.Omissions
		conf := mustConform(t, res, proto, prob)
		stream, err := ConformStream(res, proto, prob)
		if err != nil {
			t.Fatalf("run %d: ConformStream: %v", i, err)
		}
		if !stream.OK() || stream.Replayed != conf.Replayed {
			t.Fatalf("run %d: streaming conformance disagrees with Conform: %v", i, stream.Divergences)
		}
	}
	if totalOmitted == 0 {
		t.Fatal("omission injector never fired across the soak")
	}
}

func TestLiveSoakSeededPlans(t *testing.T) {
	// A miniature of the cclive soak: chaos.PlanRuns derives seeded
	// inputs and crash schedules, every run executes live under a lossy
	// transport, and every trace must replay clean.
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	cases := []struct {
		proto sim.Protocol
		prob  taxonomy.Problem
	}{
		{protocols.Tree{Procs: 3}, problem(taxonomy.WT, taxonomy.TC)},
		{protocols.Star{Procs: 3}, problem(taxonomy.HT, taxonomy.IC)},
		{protocols.Chain{Procs: 3}, problem(taxonomy.WT, taxonomy.IC)},
	}
	for _, tc := range cases {
		plans := chaos.PlanRuns(1984, 6, tc.proto.N(), 1, nil)
		for i, pl := range plans {
			faults := FaultPlan{Seed: pl.Seed, DropRate: 0.1, MaxDelay: 200 * time.Microsecond}
			res := mustRun(t, tc.proto, pl.Inputs, fastConfig(faults, pl.Failures))
			conf := mustConform(t, res, tc.proto, tc.prob)
			if conf.Replayed != len(res.Schedule) {
				t.Fatalf("%s run %d: replayed %d of %d events", tc.proto.Name(), i, conf.Replayed, len(res.Schedule))
			}
		}
	}
}
