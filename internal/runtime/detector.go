package runtime

import (
	"maps"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// detector is the heartbeat-based failure detector that implements the
// model's *detectable* fail-stop failures. Every live processor stores a
// heartbeat timestamp on an interval; the detector's hub declares a
// processor failed when its heartbeat has been silent longer than the
// timeout — and then, and only then, releases the failure notices
// failed(p) that the collector stamped at crash time, routing them through
// the normal transport to every survivor.
//
// Timeouts alone cannot distinguish a crashed processor from a slow one
// (that is the FLP obstruction this runtime lives under), so suspicion and
// action are separated: the hub *suspects* on silence, but only *acts*
// when the collector's ground truth confirms an injected crash. A false
// suspicion — a live processor starved past the timeout — is counted and
// reported, never acted on, which keeps the live trace a legal run of the
// model while detection latency remains an honest timeout measurement.
type detector struct {
	col     *collector
	net     Transport
	beat    time.Duration
	timeout time.Duration

	lastBeat []atomic.Int64 // UnixNano of each processor's latest heartbeat
	exited   []atomic.Bool  // processor left its loop (halt/quiesce), heartbeats stopped benignly

	mu        sync.Mutex
	pending   map[sim.ProcID]pendingCrash  // ccvet:guardedby mu — stamped notices awaiting detection
	detected  map[sim.ProcID]time.Duration // ccvet:guardedby mu — crash → detection latency
	suspected map[sim.ProcID]bool          // ccvet:guardedby mu
	falseSusp int                          // ccvet:guardedby mu
	linkSusp  int                          // ccvet:guardedby mu — keepalive link-down verdicts from the transport
}

// pendingCrash is a confirmed crash whose notices await the timeout.
type pendingCrash struct {
	notices []sim.Message
	ts      uint64 // Lamport timestamp of the fail event stamping the notices
	at      time.Time
}

func newDetector(n int, col *collector, net Transport, beat, timeout time.Duration) *detector {
	d := &detector{
		col:       col,
		net:       net,
		beat:      beat,
		timeout:   timeout,
		lastBeat:  make([]atomic.Int64, n),
		exited:    make([]atomic.Bool, n),
		pending:   make(map[sim.ProcID]pendingCrash),
		detected:  make(map[sim.ProcID]time.Duration),
		suspected: make(map[sim.ProcID]bool),
	}
	now := time.Now().UnixNano()
	for p := range d.lastBeat {
		d.lastBeat[p].Store(now)
	}
	return d
}

// heartbeat records one beat from p.
func (d *detector) heartbeat(p sim.ProcID) {
	d.lastBeat[p].Store(time.Now().UnixNano())
}

// markExited notes that p's loop ended benignly (halted or the run shut
// down); its silence is not suspicious.
func (d *detector) markExited(p sim.ProcID) { d.exited[int(p)].Store(true) }

// markCrashed hands the detector the stamped notices of an injected crash.
// They are released to the transport once the heartbeat timeout expires.
func (d *detector) markCrashed(p sim.ProcID, notices []sim.Message, ts uint64, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending[p] = pendingCrash{notices: notices, ts: ts, at: at}
}

// noteLinkDown records a keepalive verdict from the transport: the link
// toward some peer went silent past the keepalive timeout. Link silence is
// suspicion-only evidence — a partition severs links without crashing
// anybody — so it is counted, never acted on.
func (d *detector) noteLinkDown() {
	d.mu.Lock()
	d.linkSusp++
	d.mu.Unlock()
}

// poll is one detection sweep; the monitor calls it on every tick. For each
// silent processor: if the collector confirms a crash, the failure is
// declared detected and its notices enter the transport; otherwise the
// silence is a false suspicion, counted once.
func (d *detector) poll() {
	now := time.Now()
	for i := range d.lastBeat {
		p := sim.ProcID(i)
		silent := now.Sub(time.Unix(0, d.lastBeat[i].Load()))
		if silent < d.timeout {
			continue
		}
		if d.col.isFailed(p) {
			d.mu.Lock()
			pc, ok := d.pending[p]
			if ok {
				delete(d.pending, p)
				d.detected[p] = now.Sub(pc.at)
			}
			d.mu.Unlock()
			for _, m := range pc.notices {
				d.net.Send(m, pc.ts)
			}
			continue
		}
		if d.exited[i].Load() {
			continue
		}
		d.mu.Lock()
		if !d.suspected[p] {
			d.suspected[p] = true
			d.falseSusp++
		}
		d.mu.Unlock()
	}
}

// undetected returns the number of confirmed crashes whose notices have
// not yet been released; quiescence waits for zero.
func (d *detector) undetected() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// stats returns detection latencies per crashed processor, the false
// suspicion count, and the link-down suspicion count.
func (d *detector) stats() (map[sim.ProcID]time.Duration, int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return maps.Clone(d.detected), d.falseSusp, d.linkSusp
}
