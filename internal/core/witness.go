package core

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/protocols"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// WitnessOptions scales the verification effort.
type WitnessOptions struct {
	// Exhaustive enables the model-checking witnesses: every solving
	// protocol is verified against its problem over all inputs and
	// failure patterns at small N. Scenario replays and scheme facts run
	// regardless.
	Exhaustive bool
	// MaxFailures bounds failure injection for the exhaustive checks
	// (default 2).
	MaxFailures int
	// Parallelism is the worker count for the exhaustive explorations
	// (0 = GOMAXPROCS). Results are byte-identical at any setting.
	Parallelism int
}

func (o WitnessOptions) maxFailures() int {
	if o.MaxFailures == 0 {
		return 2
	}
	return o.MaxFailures
}

// Witnesses runs the machine-checked evidence behind the lattice's base
// facts and returns it in citation order.
func Witnesses(opts WitnessOptions) []Evidence {
	var out []Evidence
	if opts.Exhaustive {
		out = append(out, solverWitnesses(opts)...)
	}
	out = append(out,
		Theorem8Pattern(),
		Theorem8Replay(),
		Theorem13ChainReplay(),
		Theorem13Perverse(),
		Corollary11SchemeFact(),
	)
	if opts.Exhaustive {
		out = append(out,
			Theorem8StarChecker(opts),
			Theorem13ChainChecker(),
		)
	}
	return out
}

// AllOK reports whether every piece of evidence verified.
func AllOK(evidence []Evidence) bool {
	for _, e := range evidence {
		if !e.OK {
			return false
		}
	}
	return true
}

// solverWitnesses model-checks one solving protocol per problem: the
// executable content of "each problem in the diagram is solvable", which
// also grounds Theorem 1's reductions (a protocol for the stronger problem
// is checked against the weaker one too).
func solverWitnesses(opts WitnessOptions) []Evidence {
	cases := []struct {
		proto    sim.Protocol
		problems []taxonomy.Problem
		source   string
	}{
		{
			proto: protocols.Tree{Procs: 3},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.WT, taxonomy.TC),
				problemOf(taxonomy.WT, taxonomy.IC),
			},
			source: "Figure 1 tree protocol",
		},
		{
			proto: protocols.Tree{Procs: 3, ST: true},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.ST, taxonomy.TC),
				problemOf(taxonomy.ST, taxonomy.IC),
				problemOf(taxonomy.WT, taxonomy.TC),
			},
			source: "Corollary 11 amnesic tree variant",
		},
		{
			proto: protocols.Star{Procs: 3},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.HT, taxonomy.IC),
				problemOf(taxonomy.ST, taxonomy.IC),
				problemOf(taxonomy.WT, taxonomy.IC),
			},
			source: "Figure 2 star protocol",
		},
		{
			proto: protocols.Chain{Procs: 3},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.WT, taxonomy.IC),
			},
			source: "Figure 3 chain protocol",
		},
		{
			proto: protocols.Perverse{},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.WT, taxonomy.TC),
			},
			source: "Figure 4 perverse protocol",
		},
		{
			proto: protocols.HaltingCommit{Procs: 3},
			problems: []taxonomy.Problem{
				problemOf(taxonomy.HT, taxonomy.TC),
			},
			source: "halting commit (HT-TC construction)",
		},
	}

	var out []Evidence
	out = append(out, perverseFailureAgreement())
	for _, c := range cases {
		for _, p := range c.problems {
			copts := checker.Options{MaxFailures: opts.maxFailures(), Parallelism: opts.Parallelism}
			if c.proto.Name() == (protocols.Perverse{}).Name() {
				// The perverse protocol's race bookkeeping makes its
				// failure-injected space intractable to enumerate; it
				// is checked exhaustively failure-free here, and its
				// failure behaviour is covered by randomized
				// injection below.
				copts.MaxFailures = 0
			}
			failNote := fmt.Sprintf("≤%d failures", copts.MaxFailures)
			if copts.MaxFailures == 0 {
				failNote = "failure-free (failure runs covered by the chaos sweep)"
			}
			ev := Evidence{
				Name:  "Solver check (" + c.source + ")",
				Claim: fmt.Sprintf("%s solves %s over all inputs, %s", c.proto.Name(), p.Name(), failNote),
			}
			x, err := checker.Check(c.proto, p, copts)
			if err != nil {
				ev.Details = append(ev.Details, err.Error())
				out = append(out, ev)
				continue
			}
			ev.OK = x.Conforms()
			ev.Details = append(ev.Details, fmt.Sprintf("%d nodes, %d states, %d terminal configurations",
				x.NodeCount, len(x.States), x.Terminals))
			if !ev.OK {
				ev.Details = append(ev.Details, "violation: "+x.Violations[0].String())
			}
			out = append(out, ev)
		}
	}
	return out
}

// Theorem8StarChecker verifies the second half of Theorem 8: the Figure 2
// protocol, which solves HT-IC, violates total consistency — so WT-TC does
// not reduce to HT-IC.
func Theorem8StarChecker(opts WitnessOptions) Evidence {
	ev := Evidence{
		Name:  "Theorem 8 (second half)",
		Claim: "the Figure 2 star protocol violates total consistency under failures",
	}
	x, err := checker.Check(protocols.Star{Procs: 3}, problemOf(taxonomy.WT, taxonomy.TC),
		checker.Options{MaxFailures: opts.maxFailures(), Parallelism: opts.Parallelism, StopAtFirstViolation: true})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	for _, v := range x.Violations {
		if v.Kind == "TC" {
			ev.OK = true
			ev.Details = append(ev.Details, "violation found: "+v.Detail)
			return ev
		}
	}
	ev.Details = append(ev.Details, "no TC violation found — unexpected")
	return ev
}

// Corollary11SchemeFact verifies that the amnesic tree variant has exactly
// the same failure-free scheme as the original tree: the ST-TC protocol of
// Corollary 11 inherits Figure 1's communication patterns, so HT-IC does
// not reduce to ST-TC by the same pattern argument as Theorem 8.
func Corollary11SchemeFact() Evidence {
	ev := Evidence{
		Name:  "Corollary 11 (scheme fact)",
		Claim: "the amnesic tree variant has the same scheme as Figure 1's tree",
	}
	s1, err := scheme.Of(protocols.Tree{Procs: 3}, scheme.Options{})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	s2, err := scheme.Of(protocols.Tree{Procs: 3, ST: true}, scheme.Options{})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	if !s1.Equal(s2) {
		ev.Details = append(ev.Details, "schemes differ — amnesia altered the communication patterns")
		return ev
	}
	ev.OK = true
	ev.Details = append(ev.Details, fmt.Sprintf("schemes equal (%d patterns): amnesia only renames states", s1.Len()))
	return ev
}

func problemOf(t taxonomy.Termination, c taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c}
}

// perverseFailureAgreement sweeps randomized failure-injected executions of
// the perverse protocol through the chaos engine and asserts the full WT-TC
// specification on each — the sampled complement to its failure-free
// exhaustive check. The sweep is seeded and reproducible; any violation
// would come back as a shrunk, minimal counterexample schedule.
func perverseFailureAgreement() Evidence {
	ev := Evidence{
		Name:  "Solver check (Figure 4 perverse protocol, randomized failures)",
		Claim: "a seeded 400-run chaos sweep keeps WT-TC under unanimity",
	}
	rep, err := chaos.Run(context.Background(), protocols.Perverse{},
		problemOf(taxonomy.WT, taxonomy.TC),
		chaos.Options{Runs: 400, Seed: 1984, MaxFailures: 2, Minimize: true})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	if !rep.Clean() {
		f := rep.Failures[0]
		ev.Details = append(ev.Details, fmt.Sprintf("run %d (seed %d, inputs %v): %s (schedule shrunk %d → %d events)",
			f.RunIndex, f.Seed, f.Inputs, f.Violations[0], f.OriginalSteps, len(f.Schedule)))
		return ev
	}
	if rep.Unresolved > 0 {
		ev.Details = append(ev.Details, fmt.Sprintf("%d runs did not quiesce within the step budget", rep.Unresolved))
		return ev
	}
	ev.OK = true
	ev.Details = append(ev.Details, fmt.Sprintf(
		"%d runs passed; %d/%d planned failure injections fired (%d unfired, reported rather than silently skipped)",
		rep.Passed, rep.InjectionsFired, rep.InjectionsPlanned, rep.InjectionsUnfired))
	return ev
}
