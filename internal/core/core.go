// Package core assembles the paper's primary contribution: the relationships
// among the six consensus problems {WT, ST, HT} × {IC, TC} under the
// unanimity decision rule (Section 4 of Dwork & Skeen, 1984), derived from
// machine-checked witnesses.
//
// The package mechanizes the paper's proof structure. Positive reductions
// come from Theorem 1's implications, demonstrated by model-checking the
// witness protocols of Figures 1–4 against the problems they solve.
// Negative results (strictness and incomparability) come from the paper's
// own counterexample constructions, executed literally: the scenario
// replays of Theorems 8 and 13 build the adversarial schedules, assert the
// state-equality (indistinguishability) premises of Lemma 3, and exhibit
// the resulting inconsistencies on concrete protocol variants.
//
// The final deliverable is the Lattice: the paper's closing diagram,
//
//	WT-IC ≺ WT-TC
//	  ≺       ≺
//	ST-IC ≺ ST-TC
//	  ≺       ≺
//	HT-IC ≺ HT-TC
//
// with HT-IC incomparable to both WT-TC and ST-TC, every inequality strict.
package core

import (
	"fmt"

	"repro/internal/taxonomy"
)

// Relation classifies how problem A relates to problem B under the paper's
// reducibility ⪯.
type Relation int

const (
	// RelUnknown means the paper derives neither direction.
	RelUnknown Relation = iota
	// RelEqual means A and B are the same problem.
	RelEqual
	// RelReducesStrictly means A ≺ B: A reduces to B and not conversely.
	RelReducesStrictly
	// RelReducedByStrictly means B ≺ A.
	RelReducedByStrictly
	// RelIncomparable means neither problem reduces to the other.
	RelIncomparable
	// RelHalfOpen means A ⋠ B is established but B ⪯ A is not derived
	// either way.
	RelHalfOpen
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case RelEqual:
		return "="
	case RelReducesStrictly:
		return "≺"
	case RelReducedByStrictly:
		return "≻"
	case RelIncomparable:
		return "incomparable"
	case RelHalfOpen:
		return "⋠ (converse open)"
	default:
		return "open"
	}
}

// Evidence records one machine-checked fact supporting the lattice.
type Evidence struct {
	// Name cites the paper result, e.g. "Theorem 8 (first half)".
	Name string
	// Claim states what was verified.
	Claim string
	// OK reports whether the verification succeeded.
	OK bool
	// Details lists supporting observations (node counts, state keys,
	// decisions reached in replays).
	Details []string
}

func (e Evidence) String() string {
	status := "FAIL"
	if e.OK {
		status = "ok"
	}
	return fmt.Sprintf("[%s] %s — %s", status, e.Name, e.Claim)
}

// problemIndex orders the six problems as in the paper's diagram.
func problemIndex(p taxonomy.Problem) int {
	i := 0
	switch p.Termination {
	case taxonomy.WT:
		i = 0
	case taxonomy.ST:
		i = 2
	case taxonomy.HT:
		i = 4
	}
	if p.Consistency == taxonomy.TC {
		i++
	}
	return i
}
