package core

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/pattern"
	"repro/internal/protocols"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Theorem 8 (first half): HT-IC does not reduce to WT-TC. The witness is
// the seven-processor tree protocol of Figure 1 (paper numbering p1…p7 is
// our p0…p6: the paper's p4 is our p3, its p6 is our p5).
//
// The replay mechanizes the proof's ingredients:
//
//  1. The scheme of the tree protocol contains a pattern in which one
//     processor (a leaf with input 0) sends a single message and receives
//     none — it decides and goes quiet after one send.
//
//  2. Scenario 1 (leaf input 0, leaf aborts, everyone but the two leaves
//     fails early) and Scenario 2 (all inputs 1, the first leaf becomes
//     committable and begins Phase 2, then everyone but the two leaves
//     fails) are indistinguishable to the second leaf: its states are
//     structurally equal, having received nothing but failure notices.
//
//  3. Extending both scenarios with the same schedule keeps the second
//     leaf's states equal (Lemma 3, executed), and in neither can it decide
//     without hearing from the first leaf.
//
// In an HT-IC protocol with this communication pattern, the first leaf
// would have halted (abort in Scenario 1, commit in Scenario 2) and could
// never speak again, so the second leaf would be forced to the same
// decision in both scenarios — inconsistent with one of them. Our WT-TC
// tree escapes only because the first leaf never halts: weak termination
// lets it keep listening, which is exactly why the pattern is fine for
// WT-TC and impossible for HT-IC.

const (
	t8Leaf0 = sim.ProcID(3) // the paper's p4: first leaf, child of p1
	t8Leaf1 = sim.ProcID(5) // the paper's p6: leaf in the other subtree
)

// Theorem8Pattern verifies ingredient 1 on the failure-free scheme.
func Theorem8Pattern() Evidence {
	ev := Evidence{
		Name:  "Theorem 8 (scheme fact)",
		Claim: "tree(7) has a failure-free pattern where the 0-leaf sends one message and receives none",
	}
	proto := protocols.Tree{Procs: 7}
	inputs := make([]sim.Bit, 7)
	for i := range inputs {
		inputs[i] = sim.One
	}
	inputs[t8Leaf0] = sim.Zero
	set, err := scheme.Enumerate(proto, inputs, scheme.Options{})
	if err != nil {
		ev.Details = append(ev.Details, "enumeration failed: "+err.Error())
		return ev
	}
	for _, p := range set.Patterns() {
		if leafSendsOneReceivesNone(p, t8Leaf0) {
			ev.OK = true
			ev.Details = append(ev.Details,
				fmt.Sprintf("pattern with %d messages: %s sends only (%s,%s,1), receives none",
					p.Size(), t8Leaf0, t8Leaf0, sim.ProcID(1)))
			return ev
		}
	}
	ev.Details = append(ev.Details, fmt.Sprintf("no such pattern among %d", set.Len()))
	return ev
}

func leafSendsOneReceivesNone(p *pattern.Pattern, leaf sim.ProcID) bool {
	sent, received := 0, 0
	for _, id := range p.Messages() {
		if id.From == leaf {
			sent++
		}
		if id.To == leaf {
			received++
		}
	}
	return sent == 1 && received == 0
}

// Theorem8Replay verifies ingredients 2 and 3.
func Theorem8Replay() Evidence {
	ev := Evidence{
		Name:  "Theorem 8 (scenario replay)",
		Claim: "the two scenarios are indistinguishable to the second leaf (Lemma 3 premise and conclusion)",
	}
	d1, err := theorem8Scenario(sim.Zero)
	if err != nil {
		ev.Details = append(ev.Details, "scenario 1: "+err.Error())
		return ev
	}
	d2, err := theorem8Scenario(sim.One)
	if err != nil {
		ev.Details = append(ev.Details, "scenario 2: "+err.Error())
		return ev
	}

	// Ingredient 2: state equality after the failures.
	if !checker.SameState(d1, d2, t8Leaf1) {
		ev.Details = append(ev.Details,
			"second leaf distinguishes the scenarios:",
			"  scenario 1: "+d1.StateOf(t8Leaf1).Key(),
			"  scenario 2: "+d2.StateOf(t8Leaf1).Key())
		return ev
	}
	ev.Details = append(ev.Details, "state("+t8Leaf1.String()+") equal across scenarios: "+d1.StateOf(t8Leaf1).Key())

	// Sanity: the first leaf's situation differs — aborted in scenario 1,
	// committable (acked, undecided) in scenario 2.
	if d, ok := d1.Decided(t8Leaf0); !ok || d != sim.Abort {
		ev.Details = append(ev.Details, "scenario 1: first leaf should have aborted")
		return ev
	}
	if _, ok := d2.Decided(t8Leaf0); ok {
		ev.Details = append(ev.Details, "scenario 2: first leaf decided too early for the scenario")
		return ev
	}

	// Ingredient 3 (Lemma 3 executed): drive the second leaf alone with
	// the same schedule in both scenarios; its states stay equal and it
	// cannot decide without hearing from the first leaf.
	for i := 0; i < 8; i++ {
		enabled := onlyProcEvents(d1, t8Leaf1)
		if len(enabled) == 0 {
			break
		}
		if err := checker.ExtendBoth(d1, d2, sim.Schedule{enabled[0]}); err != nil {
			ev.Details = append(ev.Details, "extension: "+err.Error())
			return ev
		}
		if !checker.SameState(d1, d2, t8Leaf1) {
			ev.Details = append(ev.Details, "Lemma 3 violated: states diverged under an identical schedule")
			return ev
		}
	}
	if _, ok := d1.Decided(t8Leaf1); ok {
		ev.Details = append(ev.Details, "second leaf decided without input from the first leaf — unexpected")
		return ev
	}
	ev.OK = true
	ev.Details = append(ev.Details,
		"states remained equal under an identical extension; the second leaf remains undecided,",
		"which an HT-IC protocol (whose first leaf has halted) could not afford")
	return ev
}

// theorem8Scenario builds the configuration after the scenario's failures:
// the 0/1 parameter is the first leaf's input (Scenario 1 uses 0,
// Scenario 2 uses 1).
func theorem8Scenario(leafInput sim.Bit) (*checker.Driver, error) {
	proto := protocols.Tree{Procs: 7}
	inputs := make([]sim.Bit, 7)
	for i := range inputs {
		inputs[i] = sim.One
	}
	inputs[t8Leaf0] = leafInput

	d, err := checker.NewDriver(proto, inputs)
	if err != nil {
		return nil, err
	}
	// Hold back every delivery to the second leaf, and keep p2 (the
	// second subtree's inner node, the paper's p3) from receiving the
	// root's bias, so no bias is ever forwarded into that subtree.
	blocked := func(e sim.Event) bool {
		if e.Type != sim.Deliver {
			return false
		}
		if e.Proc == t8Leaf1 {
			return true
		}
		return e.Proc == 2 && e.Msg.From == 0
	}
	until := func(c *sim.Config) bool {
		key := c.States[t8Leaf0].Key()
		if leafInput == sim.Zero {
			// Scenario 1: the first leaf has aborted.
			_, decided := c.States[t8Leaf0].Decided()
			return decided
		}
		// Scenario 2: the first leaf is committable and has begun
		// Phase 2 (acknowledged, awaiting commit).
		return strings.Contains(key, "leaf-wait-commit") && c.States[t8Leaf0].Kind() == sim.Receiving
	}
	if err := d.Drive(checker.Excluding(blocked), until, 0); err != nil {
		return nil, err
	}
	if err := d.FailAllExcept(t8Leaf0, t8Leaf1); err != nil {
		return nil, err
	}
	// Let the second leaf run alone: it completes any pending send,
	// consumes the failure notices, and enters the termination protocol.
	empty := func(c *sim.Config) bool {
		return len(c.Buffers[t8Leaf1]) == 0 && c.States[t8Leaf1].Kind() != sim.Sending
	}
	if err := d.Drive(checker.OnlyProcs(t8Leaf1), empty, 0); err != nil {
		return nil, err
	}
	return d, nil
}

// onlyProcEvents lists the enabled events of one processor, canonically.
func onlyProcEvents(d *checker.Driver, p sim.ProcID) []sim.Event {
	var out []sim.Event
	for _, e := range sim.Enabled(d.Config()) {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}
