package core

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/protocols"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Theorem 13 (first half): WT-IC ≺ ST-IC. The witness is the chain protocol
// of Figure 3; its single failure-free pattern cannot support strong
// termination. The replay runs the deliberately amnesic chain variant
// through the proof's two scenarios:
//
//	Scenario 1: every input is 1; p0 commits and becomes amnesic; p1 and
//	p3 fail before the decision message reaches p2.
//
//	Scenario 2: p1's input is 0; p0 aborts and becomes amnesic; p1 and p3
//	fail before the decision message reaches p2.
//
// The amnesic p0 occupies the same state in both scenarios (there is really
// only one amnesic state), and so does p2 (it has received nothing but
// failure notices). By Lemma 3 the common continuation forces the same
// decision on p2 in both — so in one of them p0 and p2 reach mutually
// inconsistent decisions. The replay realizes the inconsistency concretely:
// p2 aborts in both scenarios, contradicting p0's commit in Scenario 1.
func Theorem13ChainReplay() Evidence {
	ev := Evidence{
		Name:  "Theorem 13 (WT-IC ≺ ST-IC, scenario replay)",
		Claim: "the chain pattern with amnesia forces p2 to a decision inconsistent with p0's",
	}
	d1, err := theorem13Scenario([]sim.Bit{sim.One, sim.One, sim.One, sim.One})
	if err != nil {
		ev.Details = append(ev.Details, "scenario 1: "+err.Error())
		return ev
	}
	d2, err := theorem13Scenario([]sim.Bit{sim.One, sim.Zero, sim.One, sim.One})
	if err != nil {
		ev.Details = append(ev.Details, "scenario 2: "+err.Error())
		return ev
	}

	// Indistinguishability: the amnesic p0 and the uninformed p2 occupy
	// identical states across the scenarios.
	if !checker.SameState(d1, d2, 0) {
		ev.Details = append(ev.Details,
			"p0's amnesic states differ:",
			"  scenario 1: "+d1.StateOf(0).Key(),
			"  scenario 2: "+d2.StateOf(0).Key())
		return ev
	}
	if !checker.SameState(d1, d2, 2) {
		ev.Details = append(ev.Details,
			"p2's states differ:",
			"  scenario 1: "+d1.StateOf(2).Key(),
			"  scenario 2: "+d2.StateOf(2).Key())
		return ev
	}
	ev.Details = append(ev.Details, "p0 amnesic state: "+d1.StateOf(0).Key())

	// p0's hidden decisions differ: commit in scenario 1, abort in 2.
	if d, ok := d1.Run().DecisionOf(0); !ok || d != sim.Commit {
		ev.Details = append(ev.Details, "scenario 1: p0 should have committed before forgetting")
		return ev
	}
	if d, ok := d2.Run().DecisionOf(0); !ok || d != sim.Abort {
		ev.Details = append(ev.Details, "scenario 2: p0 should have aborted before forgetting")
		return ev
	}

	// Identical continuations (Lemma 3): run both to quiescence under the
	// canonical scheduler; p2 reaches the same decision in both.
	if err := d1.RunToQuiescence(); err != nil {
		ev.Details = append(ev.Details, "scenario 1 continuation: "+err.Error())
		return ev
	}
	if err := d2.RunToQuiescence(); err != nil {
		ev.Details = append(ev.Details, "scenario 2 continuation: "+err.Error())
		return ev
	}
	p2d1, ok1 := d1.Run().DecisionOf(2)
	p2d2, ok2 := d2.Run().DecisionOf(2)
	if !ok1 || !ok2 {
		ev.Details = append(ev.Details, "p2 failed to decide in a continuation")
		return ev
	}
	if p2d1 != p2d2 {
		ev.Details = append(ev.Details, "p2 decided differently despite indistinguishability — Lemma 3 violated")
		return ev
	}
	if p2d1 != sim.Abort {
		ev.Details = append(ev.Details, fmt.Sprintf("p2 decided %s; expected abort (it saw only failures and an amnesic p0)", p2d1))
		return ev
	}
	ev.OK = true
	ev.Details = append(ev.Details,
		"p2 aborts in both scenarios while p0 committed in scenario 1:",
		"two nonfaulty processors with inconsistent decisions — ST-IC is violated")
	return ev
}

// theorem13Scenario drives the amnesic chain to the paper's configuration:
// p0 decided and amnesic, p1 and p3 failed, p2 fed only failure notices.
func theorem13Scenario(inputs []sim.Bit) (*checker.Driver, error) {
	proto := protocols.Chain{Procs: 4, ST: true}
	d, err := checker.NewDriver(proto, inputs)
	if err != nil {
		return nil, err
	}
	blocked := func(e sim.Event) bool {
		// Hold back every delivery to p2 and p3, and p1's receipt of
		// the decision (it must fail before forwarding it).
		if e.Type != sim.Deliver {
			return false
		}
		return e.Proc == 2 || e.Proc == 3 || (e.Proc == 1 && e.Msg.From == 0)
	}
	amnesic := func(c *sim.Config) bool {
		return c.States[0].Amnesic() && c.States[0].Kind() != sim.Sending
	}
	if err := d.Drive(checker.Excluding(blocked), amnesic, 0); err != nil {
		return nil, err
	}
	if err := d.Fail(1, 3); err != nil {
		return nil, err
	}
	// p2 consumes its pending send and the failure notices.
	settled := func(c *sim.Config) bool {
		return len(c.Buffers[2]) == 0 && c.States[2].Kind() != sim.Sending
	}
	if err := d.Drive(checker.OnlyProcs(2), settled, 0); err != nil {
		return nil, err
	}
	return d, nil
}

// Theorem 13 (second half): WT-TC ≺ ST-TC. The witness is the perverse
// protocol of Figure 4: its scheme has exactly four failure-free patterns
// per input vector, and the send rule for the dashed message m3 requires p0
// to remember whether it sent m1 when m2 arrives — memory an amnesic
// processor cannot have. The forgetful variant realizes the contradiction:
// its scheme contains a pattern with m3 but without m1.
func Theorem13Perverse() Evidence {
	ev := Evidence{
		Name:  "Theorem 13 (WT-TC ≺ ST-TC, Figure 4)",
		Claim: "the perverse scheme has exactly 4 patterns and amnesia breaks the m3 rule",
	}
	allOnes := []sim.Bit{sim.One, sim.One, sim.One, sim.One}
	m1 := sim.MsgID{From: 0, To: 3, Seq: 1}
	m2 := sim.MsgID{From: 1, To: 0, Seq: 2}
	m3 := sim.MsgID{From: 0, To: 2, Seq: 3}

	set, err := scheme.Enumerate(protocols.Perverse{}, allOnes, scheme.Options{})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	if set.Len() != 4 {
		ev.Details = append(ev.Details, fmt.Sprintf("expected 4 patterns, got %d", set.Len()))
		return ev
	}
	for _, p := range set.Patterns() {
		if p.Has(m3) != (p.Has(m1) && p.Has(m2)) {
			ev.Details = append(ev.Details, "a pattern violates the m3 ⇔ m1 ∧ m2 rule")
			return ev
		}
	}
	ev.Details = append(ev.Details, "perverse: exactly 4 failure-free patterns; m3 sent iff m1 and m2 sent")

	forget, err := scheme.Enumerate(protocols.Perverse{ForgetfulP0: true}, allOnes, scheme.Options{})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	for _, p := range forget.Patterns() {
		if p.Has(m3) && !p.Has(m1) {
			ev.OK = true
			ev.Details = append(ev.Details,
				"forgetful p0: a pattern contains m3 without m1 — outside Figure 4's scheme,",
				"so no ST-TC protocol shares the perverse protocol's scheme")
			return ev
		}
	}
	ev.Details = append(ev.Details, "forgetful variant failed to break the rule")
	return ev
}

// Theorem13ChainChecker confirms with the model checker that the amnesic
// chain variant violates ST-IC (the scenario is not an isolated trace).
func Theorem13ChainChecker() Evidence {
	ev := Evidence{
		Name:  "Theorem 13 (checker confirmation)",
		Claim: "the amnesic chain variant violates interactive consistency under failures",
	}
	x, err := checker.Check(protocols.Chain{Procs: 3, ST: true},
		taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: taxonomy.ST, Consistency: taxonomy.IC},
		checker.Options{MaxFailures: 2, StopAtFirstViolation: true})
	if err != nil {
		ev.Details = append(ev.Details, err.Error())
		return ev
	}
	for _, v := range x.Violations {
		if v.Kind == "IC" {
			ev.OK = true
			ev.Details = append(ev.Details, "violation found: "+v.Detail)
			return ev
		}
	}
	if len(x.Violations) > 0 {
		ev.Details = append(ev.Details, "violations found but none of kind IC: "+x.Violations[0].String())
		return ev
	}
	ev.Details = append(ev.Details, "no violation found — unexpected")
	return ev
}

// chainPhaseKey is used by tests to spot-check scenario staging.
func chainPhaseKey(d *checker.Driver, p sim.ProcID) string {
	key := d.StateOf(p).Key()
	if i := strings.IndexByte(key, ' '); i > 0 {
		return key[:i]
	}
	return key
}
