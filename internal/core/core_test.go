package core

import (
	"strings"
	"testing"

	"repro/internal/taxonomy"
)

func p(t taxonomy.Termination, c taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c}
}

func TestLatticeMatchesClosingDiagram(t *testing.T) {
	l := BuildLattice()

	// The six strict edges of the diagram.
	strictEdges := [][2]taxonomy.Problem{
		{p(taxonomy.WT, taxonomy.IC), p(taxonomy.WT, taxonomy.TC)},
		{p(taxonomy.ST, taxonomy.IC), p(taxonomy.ST, taxonomy.TC)},
		{p(taxonomy.HT, taxonomy.IC), p(taxonomy.HT, taxonomy.TC)},
		{p(taxonomy.WT, taxonomy.IC), p(taxonomy.ST, taxonomy.IC)},
		{p(taxonomy.ST, taxonomy.IC), p(taxonomy.HT, taxonomy.IC)},
		{p(taxonomy.WT, taxonomy.TC), p(taxonomy.ST, taxonomy.TC)},
		{p(taxonomy.ST, taxonomy.TC), p(taxonomy.HT, taxonomy.TC)},
		{p(taxonomy.WT, taxonomy.IC), p(taxonomy.HT, taxonomy.IC)}, // Corollary 10
		{p(taxonomy.WT, taxonomy.TC), p(taxonomy.HT, taxonomy.TC)},
	}
	for _, e := range strictEdges {
		if got := l.Relation(e[0], e[1]); got != RelReducesStrictly {
			t.Errorf("%s vs %s: relation = %s, want ≺", e[0].Name(), e[1].Name(), got)
		}
		if got := l.Relation(e[1], e[0]); got != RelReducedByStrictly {
			t.Errorf("%s vs %s: relation = %s, want ≻", e[1].Name(), e[0].Name(), got)
		}
	}

	// The incomparabilities of Theorem 8 and Corollary 11.
	incomparable := [][2]taxonomy.Problem{
		{p(taxonomy.HT, taxonomy.IC), p(taxonomy.WT, taxonomy.TC)},
		{p(taxonomy.HT, taxonomy.IC), p(taxonomy.ST, taxonomy.TC)},
	}
	for _, e := range incomparable {
		if got := l.Relation(e[0], e[1]); got != RelIncomparable {
			t.Errorf("%s vs %s: relation = %s, want incomparable", e[0].Name(), e[1].Name(), got)
		}
	}

	// ST-IC vs WT-TC: WT-TC ⋠ ST-IC is forced (else WT-TC ⪯ HT-IC), but
	// the paper does not derive whether ST-IC ⪯ WT-TC: half open.
	if got := l.Relation(p(taxonomy.ST, taxonomy.IC), p(taxonomy.WT, taxonomy.TC)); got != RelHalfOpen {
		t.Errorf("ST-IC vs WT-TC: relation = %s, want half-open", got)
	}
	if !l.NotReduces(p(taxonomy.WT, taxonomy.TC), p(taxonomy.ST, taxonomy.IC)) {
		t.Error("WT-TC ⋠ ST-IC should be derived")
	}
}

func TestLatticeDerivesCorollaries(t *testing.T) {
	l := BuildLattice()
	// Corollary 9: T-TC ⋠ T-IC for every T.
	for _, term := range []taxonomy.Termination{taxonomy.WT, taxonomy.ST, taxonomy.HT} {
		if !l.NotReduces(p(term, taxonomy.TC), p(term, taxonomy.IC)) {
			t.Errorf("Corollary 9 not derived for %s", term)
		}
	}
	// Corollary 10/12: HT-C ⋠ WT-C and HT-C ⋠ ST-C.
	for _, cons := range []taxonomy.Consistency{taxonomy.IC, taxonomy.TC} {
		if !l.NotReduces(p(taxonomy.HT, cons), p(taxonomy.WT, cons)) {
			t.Errorf("Corollary 10 not derived for %s", cons)
		}
		if !l.NotReduces(p(taxonomy.HT, cons), p(taxonomy.ST, cons)) {
			t.Errorf("Corollary 12 not derived for %s", cons)
		}
	}
	// Theorem 1 positives hold.
	if !l.Reduces(p(taxonomy.WT, taxonomy.IC), p(taxonomy.HT, taxonomy.TC)) {
		t.Error("WT-IC ⪯ HT-TC should hold by Theorem 1")
	}
	// Consistency: nothing is both reduced and not-reduced.
	for _, a := range l.Problems {
		for _, b := range l.Problems {
			if l.Reduces(a, b) && l.NotReduces(a, b) {
				t.Errorf("contradiction: %s both ⪯ and ⋠ %s", a.Name(), b.Name())
			}
		}
	}
}

func TestLatticeRender(t *testing.T) {
	l := BuildLattice()
	out := l.Render()
	for _, want := range []string{"WT-IC ≺ WT-TC", "HT-IC ≺ HT-TC", "incomparable", "Theorem 8", "Theorem 13"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestTheorem8Pattern(t *testing.T) {
	ev := Theorem8Pattern()
	if !ev.OK {
		t.Fatalf("%s: %v", ev.Name, ev.Details)
	}
}

func TestTheorem8Replay(t *testing.T) {
	ev := Theorem8Replay()
	if !ev.OK {
		t.Fatalf("%s: %v", ev.Name, ev.Details)
	}
	t.Log(strings.Join(ev.Details, "\n"))
}

func TestTheorem13ChainReplay(t *testing.T) {
	ev := Theorem13ChainReplay()
	if !ev.OK {
		t.Fatalf("%s: %v", ev.Name, ev.Details)
	}
	t.Log(strings.Join(ev.Details, "\n"))
}

func TestTheorem13Perverse(t *testing.T) {
	ev := Theorem13Perverse()
	if !ev.OK {
		t.Fatalf("%s: %v", ev.Name, ev.Details)
	}
}

func TestCorollary11SchemeFact(t *testing.T) {
	ev := Corollary11SchemeFact()
	if !ev.OK {
		t.Fatalf("%s: %v", ev.Name, ev.Details)
	}
}

func TestWitnessesQuick(t *testing.T) {
	evidence := Witnesses(WitnessOptions{})
	for _, ev := range evidence {
		if !ev.OK {
			t.Errorf("%s failed: %v", ev.Name, ev.Details)
		}
	}
}

func TestWitnessesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive witnesses take ~1 minute")
	}
	evidence := Witnesses(WitnessOptions{Exhaustive: true})
	for _, ev := range evidence {
		if !ev.OK {
			t.Errorf("%s failed: %v", ev.Name, ev.Details)
		}
	}
	if !AllOK(evidence) {
		t.Error("AllOK should agree with the per-item checks")
	}
}

func TestRelationStrings(t *testing.T) {
	want := map[Relation]string{
		RelEqual:             "=",
		RelReducesStrictly:   "≺",
		RelReducedByStrictly: "≻",
		RelIncomparable:      "incomparable",
		RelHalfOpen:          "⋠ (converse open)",
		RelUnknown:           "open",
	}
	for rel, s := range want {
		if rel.String() != s {
			t.Errorf("%d renders %q, want %q", rel, rel.String(), s)
		}
	}
}

func TestEvidenceString(t *testing.T) {
	ev := Evidence{Name: "Theorem X", Claim: "something holds", OK: true}
	if got := ev.String(); !strings.Contains(got, "ok") || !strings.Contains(got, "Theorem X") {
		t.Errorf("rendering: %s", got)
	}
	ev.OK = false
	if got := ev.String(); !strings.Contains(got, "FAIL") {
		t.Errorf("rendering: %s", got)
	}
}

func TestProblemIndexOrdersTheDiagram(t *testing.T) {
	l := BuildLattice()
	wantOrder := []string{"WT-IC", "WT-TC", "ST-IC", "ST-TC", "HT-IC", "HT-TC"}
	for i, p := range l.Problems {
		if p.Name() != wantOrder[i] {
			t.Fatalf("Problems[%d] = %s, want %s", i, p.Name(), wantOrder[i])
		}
		if problemIndex(p) != i {
			t.Fatalf("problemIndex(%s) = %d, want %d", p.Name(), problemIndex(p), i)
		}
	}
}
