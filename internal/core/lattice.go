package core

import (
	"fmt"
	"strings"

	"repro/internal/taxonomy"
)

// Lattice is the paper's closing diagram: the full relation over the six
// problems {WT, ST, HT} × {IC, TC} under unanimity, derived from Theorem 1's
// reductions, the strictness results of Theorems 8 and 13 and Corollaries
// 9–12, and logical closure.
type Lattice struct {
	// Problems lists the six problems in diagram order: WT-IC, WT-TC,
	// ST-IC, ST-TC, HT-IC, HT-TC.
	Problems []taxonomy.Problem
	// reduces[a][b] reports whether problem a ⪯ b is established.
	reduces [6][6]bool
	// notReduces[a][b] reports whether a ⋠ b is established.
	notReduces [6][6]bool
	// Facts lists the base facts with their paper citations.
	Facts []Fact
	// Evidence lists the machine-checked witnesses behind the facts.
	Evidence []Evidence
}

// Fact is one base fact of the derivation.
type Fact struct {
	// A, B are diagram indices; the fact is "A ⪯ B" or "A ⋠ B".
	A, B int
	// Reduces selects between ⪯ (true) and ⋠ (false).
	Reduces bool
	// Source cites the paper result establishing the fact.
	Source string
}

// BuildLattice derives the relation. Base facts:
//
//   - Theorem 1: T-IC ⪯ T-TC for every termination condition T, and
//     WT-C ⪯ ST-C ⪯ HT-C for every consistency constraint C (with all the
//     implied compositions).
//   - Theorem 8: HT-IC ⋠ WT-TC and WT-TC ⋠ HT-IC.
//   - Corollary 11: HT-IC ⋠ ST-TC (the amnesic Figure 1 variant).
//   - Theorem 13: ST-IC ⋠ WT-IC and ST-TC ⋠ WT-TC.
//
// Everything else — Corollaries 9, 10, 12 and the remaining strictness and
// incomparability entries of the diagram — follows by the closure rules
//
//	A ⪯ B and A ⋠ C  ⇒  B ⋠ C      (else A ⪯ B ⪯ C)
//	B ⪯ C and A ⋠ C  ⇒  A ⋠ B      (else A ⪯ B ⪯ C)
//
// mirroring how the paper derives its corollaries from transitivity.
func BuildLattice() *Lattice {
	l := &Lattice{Problems: taxonomy.SixProblems()}

	// Theorem 1 closure (TriviallyReduces is already transitive).
	for i, a := range l.Problems {
		for j, b := range l.Problems {
			if taxonomy.TriviallyReduces(a, b) {
				l.reduces[i][j] = true
				if i != j {
					l.Facts = append(l.Facts, Fact{A: i, B: j, Reduces: true, Source: "Theorem 1"})
				}
			}
		}
	}

	base := []Fact{
		{A: l.index(taxonomy.HT, taxonomy.IC), B: l.index(taxonomy.WT, taxonomy.TC), Source: "Theorem 8 (Figure 1 tree pattern)"},
		{A: l.index(taxonomy.WT, taxonomy.TC), B: l.index(taxonomy.HT, taxonomy.IC), Source: "Theorem 8 (Figure 2 star protocol)"},
		{A: l.index(taxonomy.HT, taxonomy.IC), B: l.index(taxonomy.ST, taxonomy.TC), Source: "Corollary 11 (amnesic Figure 1 variant)"},
		{A: l.index(taxonomy.ST, taxonomy.IC), B: l.index(taxonomy.WT, taxonomy.IC), Source: "Theorem 13 (Figure 3 chain pattern)"},
		{A: l.index(taxonomy.ST, taxonomy.TC), B: l.index(taxonomy.WT, taxonomy.TC), Source: "Theorem 13 (Figure 4 perverse protocol)"},
	}
	for _, f := range base {
		l.notReduces[f.A][f.B] = true
		l.Facts = append(l.Facts, f)
	}

	// Closure to fixpoint.
	for changed := true; changed; {
		changed = false
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				for c := 0; c < 6; c++ {
					if l.reduces[a][b] && l.notReduces[a][c] && !l.notReduces[b][c] {
						l.notReduces[b][c] = true
						changed = true
					}
					if l.reduces[b][c] && l.notReduces[a][c] && !l.notReduces[a][b] {
						l.notReduces[a][b] = true
						changed = true
					}
				}
			}
		}
	}
	return l
}

func (l *Lattice) index(t taxonomy.Termination, c taxonomy.Consistency) int {
	return problemIndex(taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c})
}

// Reduces reports whether a ⪯ b is established.
func (l *Lattice) Reduces(a, b taxonomy.Problem) bool {
	return l.reduces[problemIndex(a)][problemIndex(b)]
}

// NotReduces reports whether a ⋠ b is established.
func (l *Lattice) NotReduces(a, b taxonomy.Problem) bool {
	return l.notReduces[problemIndex(a)][problemIndex(b)]
}

// Relation classifies the pair (a, b).
func (l *Lattice) Relation(a, b taxonomy.Problem) Relation {
	i, j := problemIndex(a), problemIndex(b)
	switch {
	case i == j:
		return RelEqual
	case l.reduces[i][j] && l.notReduces[j][i]:
		return RelReducesStrictly
	case l.reduces[j][i] && l.notReduces[i][j]:
		return RelReducedByStrictly
	case l.notReduces[i][j] && l.notReduces[j][i]:
		return RelIncomparable
	case l.notReduces[i][j] || l.notReduces[j][i]:
		return RelHalfOpen
	default:
		return RelUnknown
	}
}

// Render draws the paper's closing diagram together with the full relation
// matrix and the base facts.
func (l *Lattice) Render() string {
	var sb strings.Builder
	sb.WriteString("The six consensus problems under unanimity (Dwork & Skeen 1984, closing diagram):\n\n")
	sb.WriteString("    WT-IC ≺ WT-TC\n")
	sb.WriteString("      ≺       ≺\n")
	sb.WriteString("    ST-IC ≺ ST-TC\n")
	sb.WriteString("      ≺       ≺\n")
	sb.WriteString("    HT-IC ≺ HT-TC\n\n")
	sb.WriteString("    all inequalities strict; HT-IC incomparable to WT-TC and to ST-TC\n\n")

	sb.WriteString("Derived relation matrix (row vs column):\n\n")
	names := make([]string, 6)
	for i, p := range l.Problems {
		names[i] = p.Name()
	}
	fmt.Fprintf(&sb, "%9s", "")
	for _, n := range names {
		fmt.Fprintf(&sb, " %14s", n)
	}
	sb.WriteByte('\n')
	for i, a := range l.Problems {
		fmt.Fprintf(&sb, "%9s", names[i])
		for _, b := range l.Problems {
			fmt.Fprintf(&sb, " %14s", l.Relation(a, b))
		}
		sb.WriteByte('\n')
	}

	sb.WriteString("\nBase facts:\n")
	for _, f := range l.Facts {
		rel := "⪯"
		if !f.Reduces {
			rel = "⋠"
		}
		fmt.Fprintf(&sb, "  %s %s %s   [%s]\n", l.Problems[f.A].Name(), rel, l.Problems[f.B].Name(), f.Source)
	}
	if len(l.Evidence) > 0 {
		sb.WriteString("\nMachine-checked evidence:\n")
		for _, e := range l.Evidence {
			fmt.Fprintf(&sb, "  %s\n", e)
			for _, d := range e.Details {
				fmt.Fprintf(&sb, "      %s\n", d)
			}
		}
	}
	return sb.String()
}
