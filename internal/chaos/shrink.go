package chaos

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// verdict is the outcome of replaying a candidate schedule from scratch.
type verdict struct {
	// applicable reports whether every event of the schedule applied in
	// order. An inapplicable candidate (e.g. a delivery whose message was
	// never sent because the send was dropped) is simply invalid — not a
	// pass, not a violation.
	applicable bool
	// complete reports whether the final configuration is quiescent, i.e.
	// whether liveness could be judged.
	complete bool
	// run is the replayed execution (the applied prefix on model errors).
	run *sim.Run
	// violations is what the run violates: the problem's verdicts, plus a
	// synthetic "model" violation when the protocol broke a model
	// contract mid-replay.
	violations []taxonomy.Violation
}

// Evaluate replays a schedule from the initial configuration on the given
// inputs and judges it against the problem. Liveness (termination) is only
// judged when the replay ends quiescent. Panics in protocol code are
// recovered and render the candidate inapplicable.
func Evaluate(proto sim.Protocol, inputs []sim.Bit, sched sim.Schedule, problem taxonomy.Problem) (v verdict) {
	defer func() {
		if recover() != nil {
			v = verdict{}
		}
	}()
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{sim.NewConfig(proto, inputs)}}
	if err := run.Extend(sched); err != nil {
		if errors.Is(err, sim.ErrNotApplicable) {
			return verdict{run: run}
		}
		return verdict{
			applicable: true,
			run:        run,
			violations: []taxonomy.Violation{{Kind: "model", Detail: err.Error()}},
		}
	}
	complete := run.Final().Quiescent()
	return verdict{
		applicable: true,
		complete:   complete,
		run:        run,
		violations: problem.Validate(run, complete),
	}
}

// hasKind reports whether any violation has the given kind.
func hasKind(vs []taxonomy.Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

// Violates reports whether the schedule is applicable and exhibits a
// violation of the given kind — the predicate the shrinker preserves.
func Violates(proto sim.Protocol, inputs []sim.Bit, sched sim.Schedule, problem taxonomy.Problem, kind string) bool {
	v := Evaluate(proto, inputs, sched, problem)
	return v.applicable && hasKind(v.violations, kind)
}

// Shrink delta-debugs a violating schedule to a locally minimal
// counterexample that still exhibits a violation of the given kind. It
// alternates two deterministic passes until neither makes progress:
//
//   - removal: drop windows of events (halving window sizes down to single
//     events, ddmin-style), keeping any candidate that still violates. This
//     covers ordinary events, Fail injections, and Omit suppressions —
//     dropping a Fail or Omit event is exactly dropping the fault.
//
//   - retiming: move each Fail and Omit event to the earliest position at
//     which the violation survives, canonicalizing when the fault strikes.
//
// The result is 1-minimal with respect to single-event removal: deleting
// any one event either makes the schedule inapplicable or makes the
// violation disappear. Shrink returns the minimal schedule, its violations,
// and the number of candidates evaluated. If the input schedule does not
// violate (which a correct caller never passes), it is returned unchanged.
func Shrink(proto sim.Protocol, inputs []sim.Bit, sched sim.Schedule, problem taxonomy.Problem, kind string) (sim.Schedule, []taxonomy.Violation, int) {
	tried := 0
	violates := func(cand sim.Schedule) bool {
		tried++
		return Violates(proto, inputs, cand, problem, kind)
	}

	cur := append(sim.Schedule(nil), sched...)
	if !violates(cur) {
		v := Evaluate(proto, inputs, cur, problem)
		return cur, v.violations, tried
	}

	removePass := func() bool {
		shrunkAny := false
		for window := (len(cur) + 1) / 2; window >= 1; window /= 2 {
			for {
				removed := false
				for start := 0; start+window <= len(cur); {
					cand := make(sim.Schedule, 0, len(cur)-window)
					cand = append(cand, cur[:start]...)
					cand = append(cand, cur[start+window:]...)
					if violates(cand) {
						cur = cand
						removed = true
						shrunkAny = true
					} else {
						start++
					}
				}
				if !removed {
					break
				}
			}
		}
		return shrunkAny
	}

	// faultPosSum is retiming's termination metric: the sum of the
	// positions of all Fail and Omit events.
	faultPosSum := func(s sim.Schedule) int {
		sum := 0
		for i, e := range s {
			if e.Type == sim.Fail || e.Type == sim.Omit {
				sum += i
			}
		}
		return sum
	}

	retimePass := func() bool {
		moved := false
		for i := 0; i < len(cur); i++ {
			if cur[i].Type != sim.Fail && cur[i].Type != sim.Omit {
				continue
			}
			for j := 0; j < i; j++ {
				cand := append(sim.Schedule(nil), cur...)
				e := cand[i]
				copy(cand[j+1:i+1], cand[j:i])
				cand[j] = e
				// Moving one fault earlier shifts any other fault in
				// [j, i) one position later, so with several faults a
				// move can leave the metric unchanged (two adjacent
				// faults swapping forever). Accept only strict
				// decreases; that is what makes the pass terminate.
				if faultPosSum(cand) < faultPosSum(cur) && violates(cand) {
					cur = cand
					moved = true
					break
				}
			}
		}
		return moved
	}

	// Each removal strictly shortens the schedule and each accepted retime
	// strictly decreases the sum of Fail/Omit positions, so the loop
	// terminates.
	for {
		removed := removePass()
		moved := retimePass()
		if !removed && !moved {
			break
		}
	}

	v := Evaluate(proto, inputs, cur, problem)
	return cur, v.violations, tried
}
