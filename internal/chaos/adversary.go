package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Adversary is a deterministic message-scheduling strategy behind the
// chaos scheduler's Choose hook (Aspnes, "Randomized Protocols for
// Asynchronous Consensus": the adversary controls scheduling and may adapt
// to the execution so far). One instance drives one run — strategies may
// carry per-run state — and every choice draws only from the per-run
// seeded PRNG, so a run remains a pure function of its seed and options.
type Adversary interface {
	// Name is the strategy's flag name.
	Name() string
	// Choose returns the index of the enabled event to apply next.
	Choose(rng *rand.Rand, proto sim.Protocol, run *sim.Run, enabled []sim.Event) int
}

// Adversary strategy names accepted by Options.Adversary and the
// ccchaos -adversary flag.
const (
	// AdversaryUniform picks uniformly among enabled events — the classic
	// fair random scheduler (and the default, byte-identical to sweeps
	// recorded before adversaries existed).
	AdversaryUniform = "uniform"
	// AdversaryDelay starves the lowest-ID undecided processor: it omits
	// that processor's deliveries when the omission budget allows, avoids
	// delivering to it otherwise, and schedules everything else uniformly.
	AdversaryDelay = "delay"
	// AdversaryAdaptive is greedy: it scores each enabled event by whether
	// applying it would grow the decided set and picks uniformly among the
	// events that keep the decided set smallest (omissions and deliveries
	// that decide nothing score best).
	AdversaryAdaptive = "adaptive"
)

// NewAdversary builds a fresh per-run adversary for the named strategy.
// The empty name is the uniform default.
func NewAdversary(name string) (Adversary, error) {
	switch name {
	case "", AdversaryUniform:
		return uniformAdversary{}, nil
	case AdversaryDelay:
		return &delayAdversary{}, nil
	case AdversaryAdaptive:
		return &adaptiveAdversary{}, nil
	}
	return nil, fmt.Errorf("chaos: unknown adversary %q (want %s, %s, or %s)",
		name, AdversaryUniform, AdversaryDelay, AdversaryAdaptive)
}

// uniformAdversary is the fair random scheduler.
type uniformAdversary struct{}

func (uniformAdversary) Name() string { return AdversaryUniform }

func (uniformAdversary) Choose(rng *rand.Rand, _ sim.Protocol, _ *sim.Run, enabled []sim.Event) int {
	return rng.Intn(len(enabled))
}

// decidedTracker accumulates which processors have ever visibly decided.
// Decisions are irrevocable, so OR-ing the visible decisions of each final
// configuration over the run reconstructs the ever-decided set in O(N) per
// step instead of O(steps) history scans.
type decidedTracker struct {
	decided []bool
}

func (t *decidedTracker) update(c *sim.Config) {
	if t.decided == nil {
		t.decided = make([]bool, c.N())
	}
	for p, s := range c.States {
		if _, ok := s.Decided(); ok {
			t.decided[p] = true
		}
	}
}

// delayAdversary starves the lowest-ID undecided processor.
type delayAdversary struct {
	decidedTracker
}

func (*delayAdversary) Name() string { return AdversaryDelay }

func (a *delayAdversary) Choose(rng *rand.Rand, _ sim.Protocol, run *sim.Run, enabled []sim.Event) int {
	final := run.Final()
	a.update(final)
	victim := sim.ProcID(-1)
	for p := 0; p < final.N(); p++ {
		if !a.decided[p] && final.States[p].Kind() != sim.Failed {
			victim = sim.ProcID(p)
			break
		}
	}
	if victim < 0 {
		return rng.Intn(len(enabled))
	}
	// Sharpest starvation first: suppress the victim's deliveries outright
	// when the omission budget offers it. Otherwise schedule anything that
	// is not a delivery to the victim; deliver to it only when nothing else
	// is enabled (the run must progress).
	var omits, others []int
	for i, e := range enabled {
		switch {
		case e.Type == sim.Omit && e.Proc == victim:
			omits = append(omits, i)
		case e.Type != sim.Deliver || e.Proc != victim:
			others = append(others, i)
		}
	}
	if len(omits) > 0 {
		return omits[rng.Intn(len(omits))]
	}
	if len(others) > 0 {
		return others[rng.Intn(len(others))]
	}
	return rng.Intn(len(enabled))
}

// adaptiveAdversary greedily keeps the decided set smallest.
type adaptiveAdversary struct {
	decidedTracker
}

func (*adaptiveAdversary) Name() string { return AdversaryAdaptive }

func (a *adaptiveAdversary) Choose(rng *rand.Rand, proto sim.Protocol, run *sim.Run, enabled []sim.Event) int {
	final := run.Final()
	a.update(final)
	best := make([]int, 0, len(enabled))
	bestScore := int(^uint(0) >> 1)
	for i, e := range enabled {
		score := a.score(proto, final, e)
		if score < bestScore {
			bestScore = score
			best = best[:0]
		}
		if score == bestScore {
			best = append(best, i)
		}
	}
	return best[rng.Intn(len(best))]
}

// score is the number of processors the event would newly decide (0 or 1:
// only the stepping processor's state changes, and decisions are
// irrevocable). Omissions and failures never decide, so they score 0
// without materializing; an event Apply rejects scores worst so the run
// surfaces the authoritative error only when nothing else is enabled.
func (a *adaptiveAdversary) score(proto sim.Protocol, c *sim.Config, e sim.Event) int {
	if a.decided[e.Proc] || e.Type == sim.Omit || e.Type == sim.Fail {
		return 0
	}
	next, _, err := sim.Apply(proto, c, e)
	if err != nil {
		return int(^uint(0)>>1) - 1
	}
	if _, ok := next.States[e.Proc].Decided(); ok {
		return 1
	}
	return 0
}
