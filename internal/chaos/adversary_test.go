package chaos

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

func TestNewAdversaryNames(t *testing.T) {
	for _, tc := range []struct {
		flag string
		want string
	}{
		{"", AdversaryUniform},
		{AdversaryUniform, AdversaryUniform},
		{AdversaryDelay, AdversaryDelay},
		{AdversaryAdaptive, AdversaryAdaptive},
	} {
		adv, err := NewAdversary(tc.flag)
		if err != nil {
			t.Fatalf("NewAdversary(%q): %v", tc.flag, err)
		}
		if adv.Name() != tc.want {
			t.Errorf("NewAdversary(%q).Name() = %q, want %q", tc.flag, adv.Name(), tc.want)
		}
	}
	if _, err := NewAdversary("bogus"); err == nil {
		t.Fatal("NewAdversary(\"bogus\") accepted an unknown strategy")
	}
}

// omissionSweepOptions is the shared omission-chaos configuration: enough
// seeded runs against the threshold-free ack protocol that every adversary
// finds WT-TC unanimity violations through suppressed deliveries.
func omissionSweepOptions(adversary string) Options {
	return Options{
		Runs: 50, Seed: 7, MaxFailures: 1, Minimize: true,
		Adversary: adversary, OmissionBudget: 2, MobileOmissions: 1,
	}
}

func omissionSweep(t *testing.T, adversary string, parallel int) *Report {
	t.Helper()
	opts := omissionSweepOptions(adversary)
	opts.Parallel = parallel
	rep, err := Run(context.Background(), protocols.AckCommit{Procs: 3},
		problem(taxonomy.WT, taxonomy.TC), opts)
	if err != nil {
		t.Fatalf("chaos.Run(adversary=%s): %v", adversary, err)
	}
	return rep
}

// TestAdversarySweepDeterminism checks that every adversary strategy keeps
// the sweep a pure function of seed and options under omission faults:
// re-running with a different worker-pool size must reproduce the verdict
// partition, the injection and omission accounting, the per-run stats, and
// every trace byte for byte.
func TestAdversarySweepDeterminism(t *testing.T) {
	for _, adv := range []string{AdversaryUniform, AdversaryDelay, AdversaryAdaptive} {
		t.Run(adv, func(t *testing.T) {
			a := omissionSweep(t, adv, 1)
			b := omissionSweep(t, adv, 8)
			if a.Violated != b.Violated || a.Passed != b.Passed ||
				a.Unresolved != b.Unresolved || a.Panicked != b.Panicked {
				t.Fatalf("verdicts differ across parallelism: %d/%d violated, %d/%d passed",
					a.Violated, b.Violated, a.Passed, b.Passed)
			}
			if a.Omissions != b.Omissions || a.InjectionsFired != b.InjectionsFired ||
				a.InjectionsUnfired != b.InjectionsUnfired {
				t.Fatalf("fault accounting differs across parallelism: %d/%d omissions",
					a.Omissions, b.Omissions)
			}
			if len(a.RunStats) != len(b.RunStats) {
				t.Fatalf("run stats length differs: %d vs %d", len(a.RunStats), len(b.RunStats))
			}
			for i := range a.RunStats {
				if a.RunStats[i] != b.RunStats[i] {
					t.Fatalf("run stat %d differs: %+v vs %+v", i, a.RunStats[i], b.RunStats[i])
				}
			}
			if len(a.Failures) != len(b.Failures) {
				t.Fatalf("failure count differs: %d vs %d", len(a.Failures), len(b.Failures))
			}
			for i := range a.Failures {
				ea, err := BuildTrace(a, a.Failures[i], 10_000).Encode()
				if err != nil {
					t.Fatal(err)
				}
				eb, err := BuildTrace(b, b.Failures[i], 10_000).Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ea, eb) {
					t.Fatalf("trace %d differs across parallelism:\n%s\n---\n%s", i, ea, eb)
				}
			}
		})
	}
}

// TestAdaptiveFindsOmissionViolation is the acceptance scenario: AckCommit
// survives crash-only chaos under WT-TC, but an adaptive adversary holding
// a mobile omission budget of two suppresses commit-phase deliveries and
// violates unanimity. The shrunk counterexample must still be a genuine
// omission counterexample: locally 1-minimal, with at least one Omit event
// doing the damage, and shrinking must terminate (schedules carrying
// several fault events once livelocked the retime pass).
func TestAdaptiveFindsOmissionViolation(t *testing.T) {
	crashOnly := omissionSweepOptions(AdversaryAdaptive)
	crashOnly.OmissionBudget = 0
	crashOnly.MobileOmissions = 0
	rep, err := Run(context.Background(), protocols.AckCommit{Procs: 3},
		problem(taxonomy.WT, taxonomy.TC), crashOnly)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated != 0 || rep.Panicked != 0 {
		t.Fatalf("crash-only sweep should be clean: %d violated, %d panicked", rep.Violated, rep.Panicked)
	}

	rep = omissionSweep(t, AdversaryAdaptive, 0)
	if rep.Violated == 0 {
		t.Fatalf("adaptive adversary found no omission violation in %d runs", rep.Runs)
	}
	if rep.Omissions == 0 {
		t.Fatal("sweep reported violations but zero omissions fired")
	}
	f := firstViolated(t, rep)
	kind := f.Violations[0].Kind
	omits := 0
	for _, e := range f.Schedule {
		if e.Type == sim.Omit {
			omits++
		}
	}
	if omits == 0 {
		t.Fatalf("shrunk counterexample carries no Omit event: %v", f.Schedule)
	}
	if omits > 2 {
		t.Fatalf("shrunk counterexample uses %d omissions, budget was 2", omits)
	}
	proto := protocols.AckCommit{Procs: 3}
	prob := problem(taxonomy.WT, taxonomy.TC)
	if !Violates(proto, f.Inputs, f.Schedule, prob, kind) {
		t.Fatalf("shrunk schedule no longer violates %s", kind)
	}
	for i := range f.Schedule {
		cand := make(sim.Schedule, 0, len(f.Schedule)-1)
		cand = append(cand, f.Schedule[:i]...)
		cand = append(cand, f.Schedule[i+1:]...)
		if Violates(proto, f.Inputs, cand, prob, kind) {
			t.Fatalf("schedule is not 1-minimal: removing event %d (%v) still violates %s",
				i, f.Schedule[i], kind)
		}
	}
}

// TestOmitTraceRoundTripReplay serializes an omission counterexample and
// replays it from the decoded bytes: the replay must reproduce the recorded
// violations, and the trace must carry the adversary name (non-uniform
// strategies only) and the omission policy as provenance.
func TestOmitTraceRoundTripReplay(t *testing.T) {
	rep := omissionSweep(t, AdversaryAdaptive, 0)
	f := firstViolated(t, rep)
	tr := BuildTrace(rep, f, 10_000)
	if tr.Adversary != AdversaryAdaptive {
		t.Fatalf("trace adversary = %q, want %q", tr.Adversary, AdversaryAdaptive)
	}
	if tr.OmissionBudget != 2 || tr.MobileOmissions != 1 {
		t.Fatalf("trace omission policy = %d/%d, want 2/1", tr.OmissionBudget, tr.MobileOmissions)
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"omit"`) {
		t.Fatalf("encoded trace carries no omit event:\n%s", enc)
	}
	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(dec, protocols.AckCommit{Procs: 3}, problem(taxonomy.WT, taxonomy.TC))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("replay did not reproduce the recorded violations: got %v, want %v",
			res.Violations, tr.Violations)
	}

	// The uniform default stays off the wire so pre-adversary traces are
	// byte-identical.
	uni := omissionSweep(t, AdversaryUniform, 0)
	uf := firstViolated(t, uni)
	if tr := BuildTrace(uni, uf, 10_000); tr.Adversary != "" {
		t.Fatalf("uniform sweeps must omit the adversary field, got %q", tr.Adversary)
	}
}
