package chaos

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

func problem(t taxonomy.Termination, c taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c}
}

// sweep is the reference configuration the tests share: the deliberately
// broken amnesic chain (Theorem 13: no blocking protocol solves ST-IC)
// against ST-IC, enough seeded runs to hit the violation reliably.
func sweep(t *testing.T, opts Options) *Report {
	t.Helper()
	rep, err := Run(context.Background(), protocols.Chain{Procs: 3, ST: true},
		problem(taxonomy.ST, taxonomy.IC), opts)
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	return rep
}

func chainSTOptions() Options {
	return Options{Runs: 300, Seed: 7, MaxFailures: 2, Minimize: true}
}

func firstViolated(t *testing.T, rep *Report) *Failure {
	t.Helper()
	for _, f := range rep.Failures {
		if f.Outcome == OutcomeViolated {
			return f
		}
	}
	t.Fatalf("no violated run in %d failures (passed %d, violated %d, panicked %d)",
		len(rep.Failures), rep.Passed, rep.Violated, rep.Panicked)
	return nil
}

func TestChaosCatchesChainST(t *testing.T) {
	rep := sweep(t, chainSTOptions())
	if rep.Status != StatusComplete {
		t.Fatalf("status = %v, want complete", rep.Status)
	}
	f := firstViolated(t, rep)
	if !hasKind(f.Violations, "IC") {
		t.Fatalf("expected an IC violation, got %v", f.Violations)
	}
	if len(f.Schedule) == 0 || len(f.Schedule) > f.OriginalSteps {
		t.Fatalf("shrunk schedule has %d events (original %d)", len(f.Schedule), f.OriginalSteps)
	}
	t.Logf("run %d: %d violated runs, first shrunk %d → %d events (%d candidates)",
		f.RunIndex, rep.Violated, f.OriginalSteps, len(f.Schedule), f.ShrinkCandidates)
}

// TestShrunkScheduleIsOneMinimal checks the shrinker's contract: the shrunk
// schedule still violates, and removing any single event makes the candidate
// either inapplicable or non-violating.
func TestShrunkScheduleIsOneMinimal(t *testing.T) {
	rep := sweep(t, chainSTOptions())
	proto := protocols.Chain{Procs: 3, ST: true}
	prob := problem(taxonomy.ST, taxonomy.IC)
	f := firstViolated(t, rep)
	kind := f.Violations[0].Kind

	if !Violates(proto, f.Inputs, f.Schedule, prob, kind) {
		t.Fatalf("shrunk schedule no longer violates %s", kind)
	}
	for i := range f.Schedule {
		cand := make(sim.Schedule, 0, len(f.Schedule)-1)
		cand = append(cand, f.Schedule[:i]...)
		cand = append(cand, f.Schedule[i+1:]...)
		if Violates(proto, f.Inputs, cand, prob, kind) {
			t.Fatalf("schedule is not 1-minimal: removing event %d (%v) still violates %s",
				i, f.Schedule[i], kind)
		}
	}
}

// TestSweepDeterminism checks that the sweep is a pure function of its seed
// and options: worker-pool size must not perturb outcomes or trace bytes.
func TestSweepDeterminism(t *testing.T) {
	opts := chainSTOptions()
	opts.Parallel = 1
	a := sweep(t, opts)
	opts.Parallel = 8
	b := sweep(t, opts)

	if a.Violated != b.Violated || a.Passed != b.Passed || len(a.Failures) != len(b.Failures) {
		t.Fatalf("parallel=1 and parallel=8 sweeps disagree: %d/%d violated, %d/%d failures",
			a.Violated, b.Violated, len(a.Failures), len(b.Failures))
	}
	if a.InjectionsPlanned != b.InjectionsPlanned || a.InjectionsFired != b.InjectionsFired {
		t.Fatalf("injection accounting differs across parallelism")
	}
	for i := range a.Failures {
		ta := BuildTrace(a, a.Failures[i], 10_000)
		tb := BuildTrace(b, b.Failures[i], 10_000)
		ea, err := ta.Encode()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := tb.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea, eb) {
			t.Fatalf("trace %d differs between parallel=1 and parallel=8:\n%s\n---\n%s", i, ea, eb)
		}
	}
}

func TestTraceRoundTripReplay(t *testing.T) {
	rep := sweep(t, chainSTOptions())
	proto := protocols.Chain{Procs: 3, ST: true}
	prob := problem(taxonomy.ST, taxonomy.IC)
	f := firstViolated(t, rep)

	tr := BuildTrace(rep, f, 10_000)
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(decoded, proto, prob)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.Reproduced {
		t.Fatalf("replay did not reproduce the recorded violations: recorded %v, got %v",
			decoded.Violations, res.Violations)
	}
}

func TestReplayRejectsMismatchedProtocol(t *testing.T) {
	rep := sweep(t, chainSTOptions())
	f := firstViolated(t, rep)
	tr := BuildTrace(rep, f, 10_000)
	if _, err := Replay(tr, protocols.Tree{Procs: 3}, problem(taxonomy.ST, taxonomy.IC)); err == nil {
		t.Fatal("replay against the wrong protocol should fail")
	}
	if _, err := Replay(tr, protocols.Chain{Procs: 3, ST: true}, problem(taxonomy.WT, taxonomy.TC)); err == nil {
		t.Fatal("replay against the wrong problem should fail")
	}
}

func TestCleanProtocolSweep(t *testing.T) {
	rep, err := Run(context.Background(), protocols.Tree{Procs: 3},
		problem(taxonomy.WT, taxonomy.TC),
		Options{Runs: 200, Seed: 11, MaxFailures: 2, Minimize: true})
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("tree(3) chaos sweep found a failure: %v", rep.Failures[0].Violations)
	}
	if rep.Passed != rep.Runs {
		t.Fatalf("passed %d of %d runs (unresolved %d, aborted %d)",
			rep.Passed, rep.Runs, rep.Unresolved, rep.Aborted)
	}
	if rep.InjectionsPlanned != rep.InjectionsFired+rep.InjectionsUnfired {
		t.Fatalf("injection accounting inconsistent: %d planned ≠ %d fired + %d unfired",
			rep.InjectionsPlanned, rep.InjectionsFired, rep.InjectionsUnfired)
	}
}

func TestCancelledSweepReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, protocols.Chain{Procs: 3, ST: true},
		problem(taxonomy.ST, taxonomy.IC), chainSTOptions())
	if rep == nil {
		t.Fatal("cancelled sweep must still return the partial report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", rep.Status)
	}
	if rep.Aborted != rep.Runs {
		t.Fatalf("pre-cancelled sweep completed %d runs, want 0", rep.Completed())
	}
	if got := rep.Passed + rep.Violated + rep.Panicked + rep.Unresolved + rep.Aborted; got != rep.Runs {
		t.Fatalf("outcome partition sums to %d, want %d", got, rep.Runs)
	}
}

// grenadeState is a two-processor fixture whose receiver panics: p0 sends one
// message, p1 blows up on receipt.
type grenadeState struct {
	id   sim.ProcID
	sent bool
}

func (s grenadeState) Kind() sim.StateKind {
	if s.id == 0 && !s.sent {
		return sim.Sending
	}
	return sim.Receiving
}
func (s grenadeState) Decided() (sim.Decision, bool) { return sim.NoDecision, false }
func (s grenadeState) Amnesic() bool                 { return false }
func (s grenadeState) Key() string {
	k := "grenade{" + s.id.String()
	if s.sent {
		k += " sent"
	}
	return k + "}"
}

type grenadePayload struct{}

func (grenadePayload) Key() string { return "pin" }

type grenadeProto struct{}

func (grenadeProto) Name() string { return "grenade" }
func (grenadeProto) N() int       { return 2 }
func (grenadeProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return grenadeState{id: p}
}
func (grenadeProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State {
	if !m.Notice {
		panic("grenade: boom")
	}
	return s
}
func (grenadeProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	st := s.(grenadeState)
	st.sent = true
	return st, []sim.Envelope{{To: 1, Payload: grenadePayload{}}}
}

func TestPanicBecomesReportedFailure(t *testing.T) {
	prob := problem(taxonomy.WT, taxonomy.TC)
	rep, err := Run(context.Background(), grenadeProto{}, prob,
		Options{Runs: 5, Seed: 3, MaxFailures: 0})
	if err != nil {
		t.Fatalf("chaos.Run: %v", err)
	}
	if rep.Panicked != 5 {
		t.Fatalf("panicked = %d, want 5 (violated %d, passed %d)", rep.Panicked, rep.Violated, rep.Passed)
	}
	f := rep.Failures[0]
	if f.Outcome != OutcomePanicked || f.PanicValue != "grenade: boom" {
		t.Fatalf("failure = %+v, want recovered panic", f)
	}

	tr := BuildTrace(rep, f, 10_000)
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(decoded, grenadeProto{}, prob)
	if err != nil {
		t.Fatalf("panic replay: %v", err)
	}
	if !res.Reproduced || res.PanicValue != "grenade: boom" {
		t.Fatalf("panic did not reproduce: %+v", res)
	}
}
