// Package chaos is a seeded, parallel chaos-testing engine for the Dwork &
// Skeen model: it runs thousands of failure-injected random executions of a
// protocol, checks each against a consensus problem, and shrinks every
// violating schedule to a locally minimal counterexample that serializes as
// a replayable JSON trace.
//
// The paper's adversary is the scheduler — every theorem quantifies over
// all schedules under up to N−1 fail-stop failures — and the exhaustive
// checker answers that quantifier only where the configuration space is
// tractable. The chaos engine is the complement for intractable spaces: a
// Jepsen-style randomized sweep whose every run is a pure function of one
// 64-bit seed, so the whole sweep is reproducible (same seed and options ⇒
// byte-identical traces), panics in protocol code become reported
// violations instead of crashed processes, and counterexamples come back
// small enough to read.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Options configures a chaos sweep.
type Options struct {
	// Runs is the number of randomized executions (default 1000).
	Runs int
	// Seed seeds the sweep. Every per-run seed, input vector, and failure
	// plan derives from it deterministically, so equal seeds and options
	// give equal sweeps regardless of Parallel.
	Seed int64
	// Parallel is the worker-pool size (default GOMAXPROCS). It affects
	// wall-clock time only, never results.
	Parallel int
	// MaxFailures bounds injected fail-stop failures per run. Negative
	// means N−1 (the paper's bound); zero means failure-free.
	MaxFailures int
	// MaxSteps is the per-run step budget (default 10_000). Runs that hit
	// it are reported as unresolved and checked for safety only.
	MaxSteps int
	// Minimize shrinks each violating schedule to a locally 1-minimal
	// counterexample by delta-debugging before reporting it.
	Minimize bool
	// Inputs, if non-nil, cycles through these input vectors instead of
	// drawing random ones.
	Inputs [][]sim.Bit
	// Adversary names the scheduling strategy driving each run: "uniform"
	// (or empty, the default fair scheduler), "delay", or "adaptive". See
	// NewAdversary.
	Adversary string
	// OmissionBudget bounds omission faults per run: the adversary may
	// suppress up to this many buffered deliveries. Zero disables
	// omissions, leaving runs byte-identical to pre-omission sweeps.
	OmissionBudget int
	// MobileOmissions, when positive, caps how many processors may be
	// omission-faulty simultaneously (the mobile-faults model: a
	// processor's faulty status clears when a delivery to it succeeds, so
	// the faulty set moves between rounds).
	MobileOmissions int
}

func (o Options) omission() sim.OmissionPolicy {
	return sim.OmissionPolicy{Budget: o.OmissionBudget, Mobile: o.MobileOmissions}
}

func (o Options) runs() int {
	if o.Runs == 0 {
		return 1000
	}
	return o.Runs
}

func (o Options) maxSteps() int {
	if o.MaxSteps == 0 {
		return 10_000
	}
	return o.MaxSteps
}

// Status reports how a sweep ended; the zero value is Complete.
type Status int

const (
	// StatusComplete means every planned run reached a verdict.
	StatusComplete Status = iota
	// StatusInterrupted means the context was cancelled mid-sweep; the
	// report covers the runs that finished.
	StatusInterrupted
)

// String names the status.
func (s Status) String() string {
	if s == StatusInterrupted {
		return "interrupted"
	}
	return "complete"
}

// Outcome classifies one chaos run.
type Outcome int

const (
	// OutcomeAborted means the run was cut off by cancellation before a
	// verdict (or never started).
	OutcomeAborted Outcome = iota
	// OutcomePassed means the run quiesced and satisfied the problem.
	OutcomePassed
	// OutcomeViolated means the run violated the problem (or the model
	// contracts: self-send, multi-send, revoked decision).
	OutcomeViolated
	// OutcomePanicked means protocol code panicked; the panic was
	// recovered and converted into a reported violation.
	OutcomePanicked
	// OutcomeUnresolved means the run hit MaxSteps without quiescing;
	// safety was checked, liveness could not be.
	OutcomeUnresolved
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePassed:
		return "passed"
	case OutcomeViolated:
		return "violated"
	case OutcomePanicked:
		return "panicked"
	case OutcomeUnresolved:
		return "unresolved"
	default:
		return "aborted"
	}
}

// Failure is one failing chaos run: the violation, the (possibly shrunk)
// schedule that exhibits it, and everything needed to reproduce the run
// from scratch.
type Failure struct {
	// RunIndex is the run's position in the sweep (0-based).
	RunIndex int
	// Seed is the per-run scheduler seed derived from the sweep seed.
	Seed int64
	// Inputs is the initial input vector.
	Inputs []sim.Bit
	// Injections is the planned failure schedule (including injections
	// that never fired).
	Injections []sim.FailureAt
	// Outcome is OutcomeViolated or OutcomePanicked.
	Outcome Outcome
	// PanicValue holds the recovered panic for OutcomePanicked.
	PanicValue string
	// Violations lists what the schedule below violates (for panics, a
	// single "panic" violation).
	Violations []taxonomy.Violation
	// Schedule is the violating schedule, shrunk to a locally 1-minimal
	// counterexample when Options.Minimize was set. Empty for panics,
	// which reproduce from Seed/Inputs/Injections instead.
	Schedule sim.Schedule
	// OriginalSteps is the schedule length before shrinking.
	OriginalSteps int
	// ShrinkCandidates counts the candidate schedules evaluated while
	// shrinking (0 when Minimize was off).
	ShrinkCandidates int
}

// RunStat is one run's injection accounting, surfaced per run (not just in
// the sweep aggregate) so -json consumers can tell which runs actually
// exercised their planned faults.
type RunStat struct {
	// Run is the run's position in the sweep (0-based).
	Run int `json:"run"`
	// Seed is the per-run scheduler seed.
	Seed int64 `json:"seed"`
	// Outcome names the run's verdict.
	Outcome string `json:"outcome"`
	// InjectionsPlanned, InjectionsFired, and InjectionsUnfired account for
	// this run's crash injections.
	InjectionsPlanned int `json:"injections_planned"`
	InjectionsFired   int `json:"injections_fired"`
	InjectionsUnfired int `json:"injections_unfired"`
	// Omissions counts deliveries the adversary omission-suppressed.
	Omissions int `json:"omissions,omitempty"`
}

// Report is the result of a chaos sweep.
type Report struct {
	// Proto is the protocol's canonical name.
	Proto string
	// Problem is the problem checked.
	Problem taxonomy.Problem
	// Seed is the sweep seed.
	Seed int64
	// Runs is the number of planned runs.
	Runs int
	// Adversary names the scheduling strategy that drove the sweep
	// ("uniform" when Options left it empty).
	Adversary string
	// OmissionBudget and MobileOmissions echo the sweep's omission policy.
	OmissionBudget  int
	MobileOmissions int
	// Passed, Violated, Panicked, Unresolved, and Aborted partition the
	// planned runs by outcome.
	Passed     int
	Violated   int
	Panicked   int
	Unresolved int
	Aborted    int
	// Status records whether the sweep completed or was interrupted.
	Status Status
	// Failures lists the violating and panicking runs in run order.
	Failures []*Failure
	// InjectionsPlanned, InjectionsFired, and InjectionsUnfired account
	// for every failure injection across completed runs: unfired
	// injections (AfterStep beyond quiescence) are counted, not silently
	// believed to have been tested.
	InjectionsPlanned int
	InjectionsFired   int
	InjectionsUnfired int
	// Omissions counts deliveries omission-suppressed across completed runs.
	Omissions int
	// RunStats is per-run injection accounting in run order, one entry per
	// planned run (aborted runs report their plan with zero fired).
	RunStats []RunStat
}

// Completed returns the number of runs that reached a verdict.
func (r *Report) Completed() int { return r.Runs - r.Aborted }

// Clean reports whether the sweep found no violations and no panics.
func (r *Report) Clean() bool { return len(r.Failures) == 0 }

// RunPlan is the deterministic recipe for one run, derived from the sweep
// seed before any worker starts, so worker scheduling cannot perturb
// results. Plans are shared with the live runtime (cmd/cclive), whose soak
// mode derives its crash schedules and input vectors the same way a chaos
// sweep does.
type RunPlan struct {
	// Seed is the per-run scheduler seed.
	Seed int64
	// LinkSeed keys the link-fault schedule of distributed live runs. It
	// is a pure hash of Seed — never a draw from the master stream — so
	// plans derived before link faults existed are byte-for-byte unchanged.
	LinkSeed int64
	// Inputs is the initial input vector.
	Inputs []sim.Bit
	// Failures is the planned fail-stop injection schedule.
	Failures []sim.FailureAt
}

// linkSeed derives a run's link-fault seed from its scheduler seed with a
// splitmix64 finalizer, keeping the master RNG stream untouched.
func linkSeed(seed int64) int64 {
	x := uint64(seed) ^ 0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// runResult is one worker's verdict on one run.
type runResult struct {
	done      bool
	outcome   Outcome
	failure   *Failure
	planned   int
	fired     int
	unfired   int
	omissions int
}

// Run executes a chaos sweep of the protocol against the problem. The
// context cancels gracefully: finished runs keep their verdicts, in-flight
// runs abort at their next scheduling step, and the partial report is
// returned with StatusInterrupted alongside the context's error.
func Run(ctx context.Context, proto sim.Protocol, problem taxonomy.Problem, opts Options) (*Report, error) {
	n := proto.N()
	if n < 1 {
		return nil, fmt.Errorf("chaos: protocol %s has no processors", proto.Name())
	}
	for _, in := range opts.Inputs {
		if len(in) != n {
			return nil, fmt.Errorf("chaos: input vector %v has length %d, want %d", in, len(in), n)
		}
	}
	adv, err := NewAdversary(opts.Adversary)
	if err != nil {
		return nil, err
	}
	if opts.omission().Enabled() && n > 64 {
		return nil, fmt.Errorf("chaos: omission budgets support at most 64 processors, got %d", n)
	}
	runs := opts.runs()
	maxSteps := opts.maxSteps()
	maxFail := opts.MaxFailures
	if maxFail < 0 {
		maxFail = n - 1
	}
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > runs {
		par = runs
	}

	plans := PlanRuns(opts.Seed, runs, n, maxFail, opts.Inputs)

	results := make([]runResult, runs)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = execute(ctx, proto, problem, plans[i], i, maxSteps, opts)
			}
		}()
	}
feed:
	for i := 0; i < runs; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	rep := &Report{
		Proto: proto.Name(), Problem: problem, Seed: opts.Seed, Runs: runs,
		Adversary:       adv.Name(),
		OmissionBudget:  opts.OmissionBudget,
		MobileOmissions: opts.MobileOmissions,
		RunStats:        make([]RunStat, 0, runs),
	}
	for i, res := range results {
		if !res.done {
			rep.Aborted++
			rep.RunStats = append(rep.RunStats, RunStat{
				Run: i, Seed: plans[i].Seed, Outcome: OutcomeAborted.String(),
				InjectionsPlanned: len(plans[i].Failures),
				InjectionsUnfired: len(plans[i].Failures),
			})
			continue
		}
		rep.InjectionsPlanned += res.planned
		rep.InjectionsFired += res.fired
		rep.InjectionsUnfired += res.unfired
		rep.Omissions += res.omissions
		rep.RunStats = append(rep.RunStats, RunStat{
			Run: i, Seed: plans[i].Seed, Outcome: res.outcome.String(),
			InjectionsPlanned: res.planned,
			InjectionsFired:   res.fired,
			InjectionsUnfired: res.unfired,
			Omissions:         res.omissions,
		})
		switch res.outcome {
		case OutcomePassed:
			rep.Passed++
		case OutcomeViolated:
			rep.Violated++
		case OutcomePanicked:
			rep.Panicked++
		case OutcomeUnresolved:
			rep.Unresolved++
		default:
			rep.Aborted++
		}
		if res.failure != nil {
			rep.Failures = append(rep.Failures, res.failure)
		}
	}
	if err := ctx.Err(); err != nil {
		rep.Status = StatusInterrupted
		return rep, fmt.Errorf("chaos: sweep of %s interrupted: %w", proto.Name(), err)
	}
	return rep, nil
}

// PlanRuns derives every run's recipe from the sweep seed in run order: the
// per-run scheduler seed, the input vector (random unless fixed vectors are
// supplied, which are cycled), and up to maxFail fail-stop injections per
// run. Equal arguments give equal plans.
func PlanRuns(seed int64, runs, n, maxFail int, fixed [][]sim.Bit) []RunPlan {
	master := rand.New(rand.NewSource(seed))
	// horizon bounds AfterStep so injections land inside typical runs; the
	// tail beyond quiescence is deliberately reachable (and reported as
	// unfired) so the sweep also exercises late failures.
	horizon := 4*n*n + 8
	plans := make([]RunPlan, runs)
	for i := range plans {
		pl := RunPlan{Seed: master.Int63()}
		pl.LinkSeed = linkSeed(pl.Seed)
		if len(fixed) > 0 {
			pl.Inputs = append([]sim.Bit(nil), fixed[i%len(fixed)]...)
		} else {
			pl.Inputs = make([]sim.Bit, n)
			for j := range pl.Inputs {
				if master.Intn(2) == 1 {
					pl.Inputs[j] = sim.One
				}
			}
		}
		if maxFail > 0 {
			k := master.Intn(maxFail + 1)
			for f := 0; f < k; f++ {
				pl.Failures = append(pl.Failures, sim.FailureAt{
					Proc:      sim.ProcID(master.Intn(n)),
					AfterStep: master.Intn(horizon),
				})
			}
		}
		plans[i] = pl
	}
	return plans
}

// execute runs one plan to a verdict. A panic anywhere in protocol code is
// recovered and reported as a failure instead of crashing the sweep.
func execute(ctx context.Context, proto sim.Protocol, problem taxonomy.Problem, pl RunPlan, idx, maxSteps int, opts Options) (res runResult) {
	res.done = true
	res.planned = len(pl.Failures)
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("%v", r)
			res.outcome = OutcomePanicked
			res.failure = &Failure{
				RunIndex:   idx,
				Seed:       pl.Seed,
				Inputs:     pl.Inputs,
				Injections: pl.Failures,
				Outcome:    OutcomePanicked,
				PanicValue: msg,
				Violations: []taxonomy.Violation{{Kind: "panic", Detail: "protocol panicked: " + msg}},
			}
		}
	}()

	rng := rand.New(rand.NewSource(pl.Seed))
	// Options were validated by Run, so the adversary name resolves.
	adv, _ := NewAdversary(opts.Adversary)
	choose := func(r *sim.Run, enabled []sim.Event) int {
		select {
		case <-ctx.Done():
			return -1
		default:
		}
		return adv.Choose(rng, proto, r, enabled)
	}
	run, err := sim.RandomRun(proto, pl.Inputs, sim.RunnerOptions{
		Seed:     pl.Seed,
		MaxSteps: maxSteps,
		Failures: pl.Failures,
		Omission: opts.omission(),
		Choose:   choose,
	})
	if run != nil {
		res.unfired = len(run.Unfired)
		res.fired = len(pl.Failures) - len(run.Unfired)
		res.omissions = run.Omissions()
	}

	var violations []taxonomy.Violation
	switch {
	case err == nil:
		res.outcome = OutcomePassed
		violations = problem.Validate(run, true)
	case errors.Is(err, sim.ErrRunAborted):
		res.outcome = OutcomeAborted
		return res
	case errors.Is(err, sim.ErrStepBudget):
		res.outcome = OutcomeUnresolved
		violations = problem.Validate(run, false)
	default:
		// Apply surfaced a model-contract violation (self-send,
		// multi-send, revoked decision): the protocol is broken in a way
		// the taxonomy does not name, so report it under "model".
		res.outcome = OutcomeViolated
		violations = []taxonomy.Violation{{Kind: "model", Detail: err.Error()}}
	}
	if len(violations) == 0 {
		return res
	}

	res.outcome = OutcomeViolated
	f := &Failure{
		RunIndex:      idx,
		Seed:          pl.Seed,
		Inputs:        pl.Inputs,
		Injections:    pl.Failures,
		Outcome:       OutcomeViolated,
		Violations:    violations,
		Schedule:      append(sim.Schedule(nil), run.Schedule...),
		OriginalSteps: len(run.Schedule),
	}
	if opts.Minimize {
		shrunk, vs, tried := Shrink(proto, pl.Inputs, f.Schedule, problem, violations[0].Kind)
		f.Schedule = shrunk
		f.Violations = vs
		f.ShrinkCandidates = tried
	}
	res.failure = f
	return res
}
