package chaos

import (
	"bytes"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// resolveTrace maps a trace's canonical protocol and problem names back to
// live values. Resolution happens by exact Name() match (the same check
// Replay enforces), over the library protocols at the trace's N. The root
// package's ProtocolByName cannot be used here — it imports this package.
func resolveTrace(tr *Trace) (sim.Protocol, taxonomy.Problem, bool) {
	if tr.N < 1 || tr.N > 6 {
		return nil, taxonomy.Problem{}, false
	}
	candidates := []sim.Protocol{
		protocols.Tree{Procs: tr.N},
		protocols.Tree{Procs: tr.N, ST: true},
		protocols.Star{Procs: tr.N},
		protocols.Chain{Procs: tr.N},
		protocols.Chain{Procs: tr.N, ST: true},
		protocols.Perverse{},
		protocols.AckCommit{Procs: tr.N},
		protocols.FullExchange{Procs: tr.N},
		protocols.HaltingCommit{Procs: tr.N},
	}
	var proto sim.Protocol
	for _, c := range candidates {
		if c.Name() == tr.Protocol && c.N() == tr.N {
			proto = c
			break
		}
	}
	if proto == nil {
		return nil, taxonomy.Problem{}, false
	}
	for _, p := range taxonomy.SixProblems() {
		if p.Name() == tr.Problem {
			return proto, p, true
		}
	}
	return nil, taxonomy.Problem{}, false
}

// FuzzTraceReplay fuzzes the chaos trace lifecycle: arbitrary bytes are
// decoded as trace JSON, and whatever decodes must (1) survive an
// encode/decode round trip byte-stably and (2) replay without panicking,
// reaching the same verdict on every replay — the determinism contract that
// makes committed traces trustworthy counterexamples.
func FuzzTraceReplay(f *testing.F) {
	f.Add([]byte("not json"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"protocol":"tree(3)","n":3,"problem":"WT-TC","inputs":"111","maxSteps":64,"schedule":[{"type":"send","proc":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("Encode failed on a decoded trace: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded trace failed: %v", err)
		}
		enc2, err := tr2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode round trip is not byte-stable:\n%s\nvs\n%s", enc, enc2)
		}

		// Replay only bounded traces: a fuzzed MaxSteps or schedule can
		// otherwise demand arbitrarily long executions.
		if tr.MaxSteps < 0 || tr.MaxSteps > 2048 || len(tr.Schedule) > 2048 {
			return
		}
		proto, problem, ok := resolveTrace(tr)
		if !ok {
			return
		}
		r1, err1 := Replay(tr, proto, problem)
		r2, err2 := Replay(tr, proto, problem)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("replay verdict flapped: err1=%v err2=%v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("replay errors differ: %v vs %v", err1, err2)
			}
			return
		}
		if r1.Reproduced != r2.Reproduced || r1.Complete != r2.Complete ||
			r1.PanicValue != r2.PanicValue || len(r1.Violations) != len(r2.Violations) {
			t.Fatalf("replay is not deterministic: %+v vs %+v", r1, r2)
		}
		for i := range r1.Violations {
			if r1.Violations[i] != r2.Violations[i] {
				t.Fatalf("replay violation %d differs: %v vs %v", i, r1.Violations[i], r2.Violations[i])
			}
		}
	})
}
