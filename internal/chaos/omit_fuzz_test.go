package chaos

import (
	"bytes"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

// fuzzProtos is the protocol pool FuzzOmitReplay draws from, all at N=3 so
// every omission policy is well inside the 64-processor bitmask bound.
func fuzzProtos() []sim.Protocol {
	return []sim.Protocol{
		protocols.Tree{Procs: 3},
		protocols.Star{Procs: 3},
		protocols.Chain{Procs: 3},
		protocols.AckCommit{Procs: 3},
		protocols.FullExchange{Procs: 3},
		protocols.HaltingCommit{Procs: 3},
	}
}

// FuzzOmitReplay drives seeded omission-faulted runs through the whole
// trace lifecycle and asserts the three determinism contracts the omission
// fault class must not break:
//
//  1. Trace byte-identity: a run's schedule — Omit events included —
//     encodes to a trace whose decode/re-encode is byte-stable, and whose
//     decoded schedule replays (NewRunOmission + Extend) to the same final
//     configuration, key and fingerprint both.
//  2. Dedup agreement: along the run, two configurations with equal
//     string keys must have equal fingerprints — the invariant that lets
//     the fingerprint dedup engine stand in for the string-keyed one.
//  3. Predictor agreement: for every applied event, the incremental
//     successor fingerprint (PredictSuccessor) matches the fingerprint of
//     the materialized successor, so omission bookkeeping hashes the same
//     on the fast path as on the slow one.
func FuzzOmitReplay(f *testing.F) {
	f.Add(int64(0), int64(7), int64(2), int64(1))
	f.Add(int64(3), int64(1984), int64(3), int64(2))
	f.Add(int64(1), int64(-42), int64(1), int64(0))
	f.Add(int64(5), int64(12345), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, pick, seed, budget, mobile int64) {
		pool := fuzzProtos()
		proto := pool[int(uint64(pick)%uint64(len(pool)))]
		n := proto.N()
		inputs := make([]sim.Bit, n)
		for i := range inputs {
			inputs[i] = sim.Bit((seed >> uint(i)) & 1)
		}
		pol := sim.OmissionPolicy{
			Budget: int(uint64(budget) % 4),
			Mobile: int(uint64(mobile) % 3),
		}
		run, _ := sim.RandomRun(proto, inputs, sim.RunnerOptions{
			Seed: seed, MaxSteps: 2048, Omission: pol,
		})
		if run == nil || run.Steps() == 0 {
			return
		}

		// Contracts 2 and 3: dedup and predictor agreement along the run.
		fpByKey := make(map[string]string)
		for i, c := range run.Configs {
			key, fp := c.Key(), c.Fingerprint().String()
			if prev, ok := fpByKey[key]; ok {
				if prev != fp {
					t.Fatalf("config %d: key %q maps to two fingerprints", i, key)
				}
			} else {
				fpByKey[key] = fp
			}
		}
		for i, e := range run.Schedule {
			fp, _, ok := sim.PredictSuccessor(proto, run.Configs[i], e)
			if !ok {
				t.Fatalf("step %d: PredictSuccessor refused an applied event %s", i, e)
			}
			if fp != run.Configs[i+1].Fingerprint() {
				t.Fatalf("step %d (%s): predicted fingerprint diverges from materialized successor", i, e)
			}
		}

		// Contract 1: trace round trip and replay identity.
		tr := &Trace{
			Version:         TraceVersion,
			Protocol:        proto.Name(),
			N:               n,
			Problem:         "WT-TC",
			Inputs:          inputsString(inputs),
			RunSeed:         seed,
			MaxSteps:        2048,
			OriginalSteps:   run.Steps(),
			OmissionBudget:  pol.Budget,
			MobileOmissions: pol.Mobile,
		}
		for _, e := range run.Schedule {
			tr.Schedule = append(tr.Schedule, EncodeEvent(e))
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("DecodeTrace: %v", err)
		}
		enc2, err := dec.Encode()
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("trace encode/decode round trip is not byte-stable:\n%s\nvs\n%s", enc, enc2)
		}
		sched, err := dec.ScheduleEvents()
		if err != nil {
			t.Fatalf("ScheduleEvents: %v", err)
		}
		replay, err := sim.NewRunOmission(proto, inputs, pol)
		if err != nil {
			t.Fatalf("NewRunOmission: %v", err)
		}
		if err := replay.Extend(sched); err != nil {
			t.Fatalf("decoded schedule does not replay: %v", err)
		}
		if got, want := replay.Final().Key(), run.Final().Key(); got != want {
			t.Fatalf("replay final key diverges:\n  %s\nvs\n  %s", got, want)
		}
		if replay.Final().Fingerprint() != run.Final().Fingerprint() {
			t.Fatal("replay final fingerprint diverges")
		}
		if replay.Omissions() != run.Omissions() {
			t.Fatalf("replay lost omissions: %d vs %d", replay.Omissions(), run.Omissions())
		}
	})
}
