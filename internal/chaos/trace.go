package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// TraceVersion is the trace format version this package writes.
const TraceVersion = 1

// TraceMsg identifies a delivered message: the paper's triple (p, q, k).
type TraceMsg struct {
	From int `json:"from"`
	To   int `json:"to"`
	Seq  int `json:"seq"`
}

// TraceEvent is one schedule element in serialized form.
type TraceEvent struct {
	// Proc is the processor taking the step.
	Proc int `json:"proc"`
	// Type is "send", "deliver", "fail", or "omit".
	Type string `json:"type"`
	// Msg identifies the affected message for "deliver" and "omit" events.
	Msg *TraceMsg `json:"msg,omitempty"`
}

// TraceViolation is a serialized taxonomy violation.
type TraceViolation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Trace is a replayable counterexample: everything needed to re-execute a
// violating run byte-for-byte and re-assert its violation. Traces with a
// schedule replay deterministically by applying the schedule; panic traces
// (empty schedule, non-empty Panic) replay by re-running the seeded
// scheduler with the recorded injections.
type Trace struct {
	Version int `json:"version"`
	// Protocol is the canonical protocol name (proto.Name()).
	Protocol string `json:"protocol"`
	// ProtoArg is the CLI name that resolves the protocol (ProtocolByName);
	// set by cmd/ccchaos so cmd/cccheck -replay can rebuild it.
	ProtoArg string `json:"protoArg,omitempty"`
	N        int    `json:"n"`
	// Problem is the paper's T-C notation, e.g. "ST-IC".
	Problem string `json:"problem"`
	// Inputs is the initial input vector, e.g. "101".
	Inputs string `json:"inputs"`
	// SweepSeed and RunSeed locate the run in its sweep; RunIndex is its
	// position.
	SweepSeed int64 `json:"sweepSeed"`
	RunSeed   int64 `json:"runSeed"`
	RunIndex  int   `json:"runIndex"`
	// MaxSteps is the per-run step budget the sweep used (needed to
	// re-execute panic traces faithfully).
	MaxSteps int `json:"maxSteps"`
	// Injections is the planned failure schedule.
	Injections []TraceInjection `json:"injections,omitempty"`
	// Adversary names the scheduling strategy, omitted for the uniform
	// default; OmissionBudget/MobileOmissions echo the omission policy.
	// Panic traces need all three to re-run the seeded scheduler
	// faithfully; schedule traces carry them as provenance. All are zero
	// for pre-omission sweeps, keeping those traces byte-identical.
	Adversary       string `json:"adversary,omitempty"`
	OmissionBudget  int    `json:"omissionBudget,omitempty"`
	MobileOmissions int    `json:"mobileOmissions,omitempty"`
	// Shrunk reports whether Schedule was minimized; OriginalSteps is the
	// pre-shrink length.
	Shrunk        bool `json:"shrunk"`
	OriginalSteps int  `json:"originalSteps"`
	// Schedule is the violating schedule (empty for panic traces).
	Schedule []TraceEvent `json:"schedule"`
	// Violations is what replaying the schedule must reproduce.
	Violations []TraceViolation `json:"violations"`
	// Panic holds the recovered panic value for panic traces.
	Panic string `json:"panic,omitempty"`
}

// TraceInjection is a serialized FailureAt.
type TraceInjection struct {
	Proc      int `json:"proc"`
	AfterStep int `json:"afterStep"`
}

// BuildTrace serializes one failure of a report into a replayable trace.
// maxSteps must be the sweep's effective per-run budget.
func BuildTrace(rep *Report, f *Failure, maxSteps int) *Trace {
	t := &Trace{
		Version:       TraceVersion,
		Protocol:      rep.Proto,
		N:             len(f.Inputs),
		Problem:       rep.Problem.Name(),
		Inputs:        inputsString(f.Inputs),
		SweepSeed:     rep.Seed,
		RunSeed:       f.Seed,
		RunIndex:      f.RunIndex,
		MaxSteps:      maxSteps,
		Shrunk:        f.ShrinkCandidates > 0,
		OriginalSteps: f.OriginalSteps,
		Panic:         f.PanicValue,

		OmissionBudget:  rep.OmissionBudget,
		MobileOmissions: rep.MobileOmissions,
	}
	if rep.Adversary != AdversaryUniform {
		t.Adversary = rep.Adversary
	}
	for _, inj := range f.Injections {
		t.Injections = append(t.Injections, TraceInjection{Proc: int(inj.Proc), AfterStep: inj.AfterStep})
	}
	for _, e := range f.Schedule {
		t.Schedule = append(t.Schedule, EncodeEvent(e))
	}
	for _, v := range f.Violations {
		t.Violations = append(t.Violations, TraceViolation{Kind: v.Kind, Detail: v.Detail})
	}
	return t
}

func inputsString(inputs []sim.Bit) string {
	buf := make([]byte, len(inputs))
	for i, b := range inputs {
		if b == sim.One {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// EncodeEvent converts a schedule element to its serialized form. It is the
// inverse of TraceEvent.DecodeEvent and is shared with the live runtime,
// which writes its divergence artifacts in this trace format.
func EncodeEvent(e sim.Event) TraceEvent {
	switch e.Type {
	case sim.Deliver:
		return TraceEvent{Proc: int(e.Proc), Type: "deliver", Msg: &TraceMsg{
			From: int(e.Msg.From), To: int(e.Msg.To), Seq: e.Msg.Seq,
		}}
	case sim.Omit:
		return TraceEvent{Proc: int(e.Proc), Type: "omit", Msg: &TraceMsg{
			From: int(e.Msg.From), To: int(e.Msg.To), Seq: e.Msg.Seq,
		}}
	case sim.Fail:
		return TraceEvent{Proc: int(e.Proc), Type: "fail"}
	default:
		return TraceEvent{Proc: int(e.Proc), Type: "send"}
	}
}

// DecodeEvent converts a serialized event back to a schedule element.
func (te TraceEvent) DecodeEvent() (sim.Event, error) {
	switch te.Type {
	case "send":
		return sim.Event{Proc: sim.ProcID(te.Proc), Type: sim.SendStepEvent}, nil
	case "fail":
		return sim.Event{Proc: sim.ProcID(te.Proc), Type: sim.Fail}, nil
	case "deliver":
		if te.Msg == nil {
			return sim.Event{}, errors.New("chaos: deliver event without msg")
		}
		return sim.Event{Proc: sim.ProcID(te.Proc), Type: sim.Deliver, Msg: sim.MsgID{
			From: sim.ProcID(te.Msg.From), To: sim.ProcID(te.Msg.To), Seq: te.Msg.Seq,
		}}, nil
	case "omit":
		if te.Msg == nil {
			return sim.Event{}, errors.New("chaos: omit event without msg")
		}
		return sim.Event{Proc: sim.ProcID(te.Proc), Type: sim.Omit, Msg: sim.MsgID{
			From: sim.ProcID(te.Msg.From), To: sim.ProcID(te.Msg.To), Seq: te.Msg.Seq,
		}}, nil
	default:
		return sim.Event{}, fmt.Errorf("chaos: unknown event type %q", te.Type)
	}
}

// Encode renders the trace as canonical indented JSON. The encoding is a
// pure function of the trace contents, so equal sweeps produce byte-equal
// trace files.
func (t *Trace) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encoding trace: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeTrace parses a serialized trace and checks its version.
func DecodeTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("chaos: decoding trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("chaos: trace version %d, want %d", t.Version, TraceVersion)
	}
	return &t, nil
}

// ScheduleEvents decodes the trace's schedule.
func (t *Trace) ScheduleEvents() (sim.Schedule, error) {
	sched := make(sim.Schedule, 0, len(t.Schedule))
	for i, te := range t.Schedule {
		e, err := te.DecodeEvent()
		if err != nil {
			return nil, fmt.Errorf("chaos: schedule event %d: %w", i, err)
		}
		sched = append(sched, e)
	}
	return sched, nil
}

// ReplayResult is the outcome of re-executing a trace.
type ReplayResult struct {
	// Run is the replayed execution (nil for reproduced panics).
	Run *sim.Run
	// Complete reports whether the replay ended quiescent.
	Complete bool
	// Violations is what the replay violated.
	Violations []taxonomy.Violation
	// PanicValue holds the re-recovered panic for panic traces.
	PanicValue string
	// Reproduced reports whether the replay matches the recorded
	// violations exactly (kind and detail, in order).
	Reproduced bool
}

// Replay re-executes a trace against the given protocol (which must match
// the trace's canonical name and size) and re-asserts its violation.
// Schedule traces are applied event by event; panic traces re-run the
// seeded scheduler with the recorded injections.
func Replay(t *Trace, proto sim.Protocol, problem taxonomy.Problem) (*ReplayResult, error) {
	if proto.Name() != t.Protocol {
		return nil, fmt.Errorf("chaos: trace is for %s, got protocol %s", t.Protocol, proto.Name())
	}
	if proto.N() != t.N {
		return nil, fmt.Errorf("chaos: trace wants N=%d, protocol has N=%d", t.N, proto.N())
	}
	if problem.Name() != t.Problem {
		return nil, fmt.Errorf("chaos: trace is for problem %s, got %s", t.Problem, problem.Name())
	}
	inputs, err := sim.InputsFromString(t.Inputs)
	if err != nil {
		return nil, fmt.Errorf("chaos: trace inputs: %w", err)
	}
	if len(inputs) != t.N {
		return nil, fmt.Errorf("chaos: trace inputs %q do not match n=%d", t.Inputs, t.N)
	}

	if t.Panic != "" {
		return replayPanic(t, proto, inputs)
	}

	sched, err := t.ScheduleEvents()
	if err != nil {
		return nil, err
	}
	v := Evaluate(proto, inputs, sched, problem)
	if !v.applicable {
		return nil, fmt.Errorf("chaos: trace schedule no longer applies to %s — protocol changed since recording", proto.Name())
	}
	res := &ReplayResult{Run: v.run, Complete: v.complete, Violations: v.violations}
	res.Reproduced = violationsMatch(v.violations, t.Violations)
	return res, nil
}

// replayPanic re-executes a panic trace through the seeded scheduler and
// checks the same panic value recurs.
func replayPanic(t *Trace, proto sim.Protocol, inputs []sim.Bit) (res *ReplayResult, err error) {
	failures := make([]sim.FailureAt, 0, len(t.Injections))
	for _, inj := range t.Injections {
		failures = append(failures, sim.FailureAt{Proc: sim.ProcID(inj.Proc), AfterStep: inj.AfterStep})
	}
	res = &ReplayResult{}
	defer func() {
		if r := recover(); r != nil {
			res.PanicValue = fmt.Sprintf("%v", r)
			res.Violations = []taxonomy.Violation{{Kind: "panic", Detail: "protocol panicked: " + res.PanicValue}}
			res.Reproduced = violationsMatch(res.Violations, t.Violations)
			err = nil
		}
	}()
	rng := rand.New(rand.NewSource(t.RunSeed))
	adv, advErr := NewAdversary(t.Adversary)
	if advErr != nil {
		return nil, fmt.Errorf("chaos: trace adversary: %w", advErr)
	}
	choose := func(r *sim.Run, enabled []sim.Event) int { return adv.Choose(rng, proto, r, enabled) }
	run, runErr := sim.RandomRun(proto, inputs, sim.RunnerOptions{
		Seed:     t.RunSeed,
		MaxSteps: t.MaxSteps,
		Failures: failures,
		Omission: sim.OmissionPolicy{Budget: t.OmissionBudget, Mobile: t.MobileOmissions},
		Choose:   choose,
	})
	res.Run = run
	if runErr == nil && run != nil {
		res.Complete = run.Final().Quiescent()
	}
	return res, fmt.Errorf("chaos: panic trace did not panic on replay — protocol changed since recording")
}

// violationsMatch compares replayed violations to the recorded ones.
func violationsMatch(got []taxonomy.Violation, want []TraceViolation) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].Detail != want[i].Detail {
			return false
		}
	}
	return true
}
