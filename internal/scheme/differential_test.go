package scheme

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/frontier"
	"repro/internal/protocols"
	"repro/internal/sim"
)

var diffParallelism = []int{1, 2, 8, 16}

// diffDedups crosses the three dedup engines into the differential matrix;
// the string-keyed sequential run is the reference.
var diffDedups = []frontier.Dedup{frontier.DedupStrings, frontier.DedupFingerprint, frontier.DedupVerified}

// enumDigest renders an Enumeration canonically so byte-identity across
// parallelism levels is a string comparison.
func enumDigest(en *Enumeration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "status=%v visited=%d frontier=%d patterns=%d\n",
		en.Status, en.Visited, en.Frontier, en.Set.Len())
	for _, k := range en.Set.Keys() {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return sb.String()
}

type enumDiffCase struct {
	name  string
	proto sim.Protocol
	opts  Options
}

func enumDiffCases() []enumDiffCase {
	return []enumDiffCase{
		{"tree", protocols.Tree{Procs: 3}, Options{}},
		{"star", protocols.Star{Procs: 3}, Options{}},
		{"chain", protocols.Chain{Procs: 3}, Options{}},
		{"perverse", protocols.Perverse{}, Options{}},
		{"ackcommit", protocols.AckCommit{Procs: 3}, Options{}},
		// Full exchange is the densest failure-free space (127 nodes); a
		// mid-space budget exercises the deterministic exhaustion stop, so
		// the budget-exhausted partial is part of the differential matrix.
		{"fullexchange", protocols.FullExchange{Procs: 3}, Options{MaxNodes: 60}},
		{"haltingcommit", protocols.HaltingCommit{Procs: 3}, Options{}},
	}
}

// TestEnumerateDifferential asserts that enumerating every library
// protocol's failure-free executions (all-ones inputs) with every dedup
// engine at parallelism 1, 2, 8, and 16 yields byte-identical Enumerations:
// the pattern set, visited count, frontier, and status.
func TestEnumerateDifferential(t *testing.T) {
	for _, tc := range enumDiffCases() {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.proto.N()
			inputs := make([]sim.Bit, n)
			for i := range inputs {
				inputs[i] = sim.One
			}
			var baseDigest, baseErr string
			first := true
			for _, dedup := range diffDedups {
				for _, par := range diffParallelism {
					opts := tc.opts
					opts.Parallelism = par
					opts.Dedup = dedup
					en, err := EnumerateContext(context.Background(), tc.proto, inputs, opts)
					if en == nil {
						t.Fatalf("%v/parallelism %d: nil enumeration (err=%v)", dedup, par, err)
					}
					if en.Collisions != 0 {
						t.Errorf("%v/parallelism %d: %d fingerprint collisions", dedup, par, en.Collisions)
					}
					errStr := ""
					if err != nil {
						errStr = err.Error()
					}
					d := enumDigest(en)
					if first {
						baseDigest, baseErr = d, errStr
						first = false
						continue
					}
					if errStr != baseErr {
						t.Errorf("%v/parallelism %d: err = %q, want %q", dedup, par, errStr, baseErr)
					}
					if d != baseDigest {
						t.Errorf("%v/parallelism %d: enumeration diverges from string-keyed sequential (digest mismatch)\nseq:\n%s\npar:\n%s", dedup, par, baseDigest, d)
					}
				}
			}
		})
	}
}

// TestEnumerateDifferentialCancelled asserts a cancelled context yields the
// same partial Enumeration (status, visited, frontier) at every parallelism.
func TestEnumerateDifferentialCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	var baseDigest string
	for _, par := range diffParallelism {
		en, err := EnumerateContext(ctx, protocols.Tree{Procs: 3}, inputs, Options{Parallelism: par})
		if en == nil {
			t.Fatalf("parallelism %d: nil enumeration", par)
		}
		if err == nil || en.Status != StatusInterrupted {
			t.Fatalf("parallelism %d: status = %v, err = %v, want interrupted", par, en.Status, err)
		}
		d := enumDigest(en)
		if par == diffParallelism[0] {
			baseDigest = d
			if en.Visited < 1 || en.Frontier < 1 {
				t.Fatalf("cancelled enumeration lost its partial snapshot: %d visited, %d frontier", en.Visited, en.Frontier)
			}
			continue
		}
		if d != baseDigest {
			t.Errorf("parallelism %d: cancelled partial result diverges:\nseq:\n%s\npar:\n%s", par, baseDigest, d)
		}
	}
}
