package scheme

import (
	"fmt"

	"repro/internal/sim"
)

// Comparison relates two pattern sets under inclusion.
type Comparison int

const (
	// SchemesEqual: the sets hold exactly the same patterns. A protocol
	// whose scheme equals another's can solve any problem the other
	// solves "up to a renaming of local states and padding of messages"
	// — the paper's protocol-level reduction instrument.
	SchemesEqual Comparison = iota + 1
	// SchemeSubset: every pattern of the first belongs to the second.
	SchemeSubset
	// SchemeSuperset: every pattern of the second belongs to the first.
	SchemeSuperset
	// SchemesIncomparable: neither inclusion holds.
	SchemesIncomparable
)

// String names the comparison.
func (c Comparison) String() string {
	switch c {
	case SchemesEqual:
		return "equal"
	case SchemeSubset:
		return "subset"
	case SchemeSuperset:
		return "superset"
	case SchemesIncomparable:
		return "incomparable"
	default:
		return "invalid"
	}
}

// CompareSets classifies two pattern sets under inclusion.
func CompareSets(a, b *Set) Comparison {
	ab := a.SubsetOf(b)
	ba := b.SubsetOf(a)
	switch {
	case ab && ba:
		return SchemesEqual
	case ab:
		return SchemeSubset
	case ba:
		return SchemeSuperset
	default:
		return SchemesIncomparable
	}
}

// Compare computes and classifies the schemes of two protocols. The
// protocols must have the same number of processors (patterns are over
// message triples, which only align for equal N).
func Compare(a, b sim.Protocol, opts Options) (Comparison, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("scheme: cannot compare %s (N=%d) with %s (N=%d)",
			a.Name(), a.N(), b.Name(), b.N())
	}
	sa, err := Of(a, opts)
	if err != nil {
		return 0, err
	}
	sb, err := Of(b, opts)
	if err != nil {
		return 0, err
	}
	return CompareSets(sa, sb), nil
}
