// Package scheme implements the paper's schemes: the scheme of a protocol Q
// is the set of communication patterns of all failure-free executions of Q
// (Section 3). Schemes are computed by exhaustive exploration of every
// failure-free delivery order, deduplicating interleavings that lead to the
// same configuration with the same causal history.
//
// Protocol-level reduction is scheme containment: if the scheme of a
// protocol for P2 equals the scheme of some protocol for P1, then that
// protocol solves P1 "up to a renaming of states and padding of messages".
//
// Enumeration deliberately does NOT reuse the checker's state-space
// reductions (internal/checker, Options.Reduction). Those reductions are
// sound for properties of reachable configurations: ample sets drop
// interleavings whose endpoints commute, dead-letter elision identifies
// configurations that differ only in undeliverable messages, and symmetry
// folds each processor orbit onto one representative. A scheme is not a
// property of configurations — it is the set of distinct causal patterns,
// and two executions reaching the same configuration along different
// delivery orders can carry different patterns. An ample set that explores
// only one of two commuting deliveries would silently drop the pattern of
// the other order; orbit-folding would conflate patterns that differ only
// by a processor relabeling, which the paper's scheme equality does not
// allow (patterns name positions, and e.g. the perverse protocol's four
// patterns are distinguished by which fixed processors message each
// other). Scheme nodes therefore dedup on (configuration, pattern,
// knowledge) exactly, and the only safe pruning is that exact-duplicate
// join of interleavings with identical causal histories.
package scheme

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fingerprint"
	"repro/internal/frontier"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// Fingerprint salts for the scheme-specific node components. Configuration
// contributions are salted inside sim; these cover the causal bookkeeping a
// scheme node adds on top (the pattern so far and each processor's
// knowledge set), so a node fingerprint separates all three layers.
const (
	saltPat       uint64 = 0x06_0000_0000
	saltKnownBase uint64 = 0x07_0000_0000 // + processor index
)

// Set is a set of communication patterns, keyed canonically.
type Set struct {
	patterns map[string]*pattern.Pattern
}

// NewSet returns an empty pattern set.
func NewSet() *Set { return &Set{patterns: make(map[string]*pattern.Pattern)} }

// Add inserts a pattern, returning whether it was new.
func (s *Set) Add(p *pattern.Pattern) bool {
	k := p.Key()
	if _, ok := s.patterns[k]; ok {
		return false
	}
	s.patterns[k] = p
	return true
}

// Len returns the number of distinct patterns.
func (s *Set) Len() int { return len(s.patterns) }

// Contains reports whether the set holds an equal pattern.
func (s *Set) Contains(p *pattern.Pattern) bool {
	_, ok := s.patterns[p.Key()]
	return ok
}

// SubsetOf reports whether every pattern of s belongs to t.
func (s *Set) SubsetOf(t *Set) bool {
	for k := range s.patterns { //ccvet:ignore detrange membership test only; order is unobservable
		if _, ok := t.patterns[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets hold exactly the same patterns.
func (s *Set) Equal(t *Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Union merges t into s.
func (s *Set) Union(t *Set) {
	for k, p := range t.patterns { //ccvet:ignore detrange keyed insertion; order is unobservable
		s.patterns[k] = p
	}
}

// Patterns returns the patterns sorted by canonical key, for deterministic
// iteration.
func (s *Set) Patterns() []*pattern.Pattern {
	keys := make([]string, 0, len(s.patterns))
	for k := range s.patterns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*pattern.Pattern, len(keys))
	for i, k := range keys {
		out[i] = s.patterns[k]
	}
	return out
}

// Keys returns the sorted canonical keys.
func (s *Set) Keys() []string {
	keys := make([]string, 0, len(s.patterns))
	for k := range s.patterns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Options bounds scheme enumeration.
type Options struct {
	// MaxNodes caps the number of distinct exploration nodes (default
	// sim.DefaultMaxNodes, the budget shared with checker.Options).
	// Enumeration fails rather than silently truncating.
	MaxNodes int
	// Parallelism is the number of owner workers the partitioned engine
	// shards the digest space across (0 = GOMAXPROCS; 1 = fully
	// sequential, no pool at all). The resulting Enumeration is
	// byte-identical at any setting; parallelism only changes wall-clock
	// time.
	Parallelism int
	// Dedup selects the visited-node representation, exactly as in
	// checker.Options: fingerprint (default), verified, or canonical
	// strings. All three produce byte-identical Enumerations (the
	// differential suite proves it); they trade memory and speed against
	// the astronomically unlikely fingerprint collision.
	Dedup frontier.Dedup
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return sim.DefaultMaxNodes
	}
	return o.MaxNodes
}

// BudgetError reports that enumeration exceeded its node budget.
type BudgetError struct {
	Protocol string
	Nodes    int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("scheme: enumeration of %s exceeded %d nodes", e.Protocol, e.Nodes)
}

// Status reports how an enumeration ended; the zero value is Complete.
type Status int

const (
	// StatusComplete means every failure-free execution was enumerated.
	StatusComplete Status = iota
	// StatusInterrupted means the context was cancelled mid-enumeration.
	StatusInterrupted
	// StatusExhausted means the node budget ran out.
	StatusExhausted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusInterrupted:
		return "interrupted"
	case StatusExhausted:
		return "budget-exhausted"
	default:
		return "invalid"
	}
}

// Partial reports whether the enumeration covered only part of the space.
func (s Status) Partial() bool { return s != StatusComplete }

// Enumeration is the (possibly partial) result of enumerating failure-free
// executions: the patterns of every maximal execution reached so far,
// together with how the walk ended. A partial Set is a genuine subset of the
// scheme — useful for under-approximation — and is returned instead of being
// discarded on cancellation or budget exhaustion.
type Enumeration struct {
	Set      *Set
	Status   Status
	Visited  int
	Frontier int
	// Collisions counts fingerprint collisions detected under
	// Options.Dedup == frontier.DedupVerified (always 0 otherwise).
	Collisions int64
}

// node is one exploration state: a configuration plus the causal bookkeeping
// needed to extend the pattern (which messages each processor may know, and
// the pattern of sends so far).
//
// Nodes are cloned copy-on-write per successor edge: the pattern and
// sendPast map are shared on deliveries (only sends extend them), the
// knowledge sets are shared except the stepping processor's, and the
// fingerprint components are maintained incrementally alongside.
type node struct {
	cfg   *sim.Config
	pat   *pattern.Pattern
	known []map[sim.MsgID]struct{}
	// sendPast holds the frozen causal past of every sent message, so
	// deliveries can propagate knowledge. The pattern stores the same
	// data; this map just avoids re-deriving it per delivery.
	sendPast map[sim.MsgID][]sim.MsgID

	// patFP is the multiset sum of entryDigest over the pattern's
	// messages; knownSum[p] is the multiset sum of sim.MsgIDDigest over
	// known[p]; knownFP is the salted sum of the knownSum terms. Together
	// with cfg.Fingerprint they form the node fingerprint (see fp).
	patFP    fingerprint.Digest
	knownSum []fingerprint.Digest
	knownFP  fingerprint.Digest
}

// fp is the node's 128-bit fingerprint: configuration, pattern, and
// knowledge contributions under separating salts. It identifies exactly
// what key identifies, up to hash collision.
func (nd *node) fp() fingerprint.Digest {
	return nd.cfg.Fingerprint().Add(nd.patFP.Mixed(saltPat)).Add(nd.knownFP)
}

// entryDigest fingerprints one pattern entry: a message identity plus the
// multiset sum of its causal past's identities.
func entryDigest(id sim.MsgID, pastSum fingerprint.Digest) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(uint64(id.From)<<32 | uint64(uint32(id.To)))
	h.WriteUint64(uint64(id.Seq))
	h.WriteUint64(pastSum.Lo)
	h.WriteUint64(pastSum.Hi)
	return h.Sum()
}

// addKnown inserts id into p's knowledge set, keeping the knowledge
// digests in step. The membership guard is what keeps the multiset sums
// faithful to set semantics.
func (nd *node) addKnown(p sim.ProcID, id sim.MsgID) {
	if _, ok := nd.known[p][id]; ok {
		return
	}
	nd.known[p][id] = struct{}{}
	old := nd.knownSum[p]
	nd.knownSum[p] = old.Add(sim.MsgIDDigest(id))
	salt := saltKnownBase + uint64(p)
	nd.knownFP = nd.knownFP.Sub(old.Mixed(salt)).Add(nd.knownSum[p].Mixed(salt))
}

func (nd *node) key() string {
	var sb strings.Builder
	sb.WriteString(nd.cfg.Key())
	sb.WriteByte('!')
	sb.WriteString(nd.pat.Key())
	sb.WriteByte('!')
	for p, set := range nd.known {
		if p > 0 {
			sb.WriteByte(';')
		}
		ids := make([]sim.MsgID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(id.String())
		}
	}
	return sb.String()
}

// cloneFor clones the node for applying event e, copying only what e can
// mutate. applyEffect touches exactly: the stepping processor's knowledge
// set (any event), and the pattern plus sendPast (sending steps only — a
// delivery reads them but never writes). Everything else — the other
// knowledge sets, every stored past slice, every pattern entry — is
// immutable once created and shared outright.
func (nd *node) cloneFor(e sim.Event) *node {
	out := &node{
		cfg:      nd.cfg, // replaced by the applied config
		pat:      nd.pat,
		known:    append([]map[sim.MsgID]struct{}(nil), nd.known...),
		sendPast: nd.sendPast,
		patFP:    nd.patFP,
		knownSum: append([]fingerprint.Digest(nil), nd.knownSum...),
		knownFP:  nd.knownFP,
	}
	p := e.Proc
	cp := make(map[sim.MsgID]struct{}, len(nd.known[p])+2)
	for id := range nd.known[p] { //ccvet:ignore detrange map copy; insertion order is unobservable
		cp[id] = struct{}{}
	}
	out.known[p] = cp
	if e.Type == sim.SendStepEvent {
		out.pat = nd.pat.Clone()
		sp := make(map[sim.MsgID][]sim.MsgID, len(nd.sendPast)+1)
		for id, past := range nd.sendPast { //ccvet:ignore detrange map copy; insertion order is unobservable
			sp[id] = past
		}
		out.sendPast = sp
	}
	return out
}

// Enumerate computes the set of communication patterns of all failure-free
// executions of the protocol from the given inputs. On budget exhaustion the
// partial set accompanies the *BudgetError.
func Enumerate(proto sim.Protocol, inputs []sim.Bit, opts Options) (*Set, error) {
	en, err := EnumerateContext(context.Background(), proto, inputs, opts)
	if en == nil {
		return nil, err
	}
	return en.Set, err
}

// enumSucc is one successor generated while expanding a frontier node. nd is
// nil when the successor was already in the shared visited set when the
// expansion ran — in which case the set's admit-implies-stored invariant
// lets the canonical replay fetch the materialized node from the pool.
// Under strings dedup at parallelism > 1, fp carries a routing digest of
// the canonical key so the partitioned pool can shard successors.
type enumSucc struct {
	key string
	fp  fingerprint.Digest
	nd  *node
}

// enumExpansion is one frontier node's worth of results: either the node was
// maximal (no enabled events — its pattern belongs to the scheme) or it
// produced successors.
type enumExpansion struct {
	maximal *pattern.Pattern
	succs   []enumSucc
	err     error
}

// enumerator carries one enumeration's dedup machinery across the pool's
// owner workers and the canonical replay, mirroring the checker's three
// engines.
type enumerator struct {
	proto      sim.Protocol
	dedup      frontier.Dedup
	visited    *frontier.VisitedSet   // strings dedup
	fpVisited  *frontier.FPVisitedSet // fingerprint dedup
	fpVerified *frontier.FPVerifiedSet
	pr         *sim.Predictor // fingerprint dedup only
	// pool is the asynchronous partitioned prefetch engine (nil at
	// parallelism 1); seq is the replay's sequential visited set, whose
	// admissions define the result when the pool runs.
	pool *frontier.Pool[*enumSucc, enumExpansion]
	seq  *frontier.SeqVisited
	// routeFP marks strings dedup at parallelism > 1 (see enumSucc.fp).
	routeFP bool
}

func newEnumerator(proto sim.Protocol, dedup frontier.Dedup) *enumerator {
	e := &enumerator{proto: proto, dedup: dedup}
	switch dedup {
	case frontier.DedupFingerprint:
		e.fpVisited = frontier.NewFPVisitedSet()
		e.pr = sim.NewPredictor()
	case frontier.DedupVerified:
		e.fpVerified = frontier.NewFPVerifiedSet()
	default:
		e.visited = frontier.NewVisitedSet()
	}
	return e
}

// seen reports whether the successor's dedup handle was already visited
// when the level started expanding.
func (e *enumerator) seen(s *enumSucc) bool {
	switch e.dedup {
	case frontier.DedupFingerprint:
		return e.fpVisited.Seen(s.fp)
	case frontier.DedupVerified:
		return e.fpVerified.Seen(s.fp, s.key)
	default:
		return e.visited.Seen(s.key)
	}
}

// admit marks the successor visited, reporting whether it was new. Merge
// phase only.
func (e *enumerator) admit(s *enumSucc) bool {
	switch e.dedup {
	case frontier.DedupFingerprint:
		return e.fpVisited.Add(s.fp)
	case frontier.DedupVerified:
		return e.fpVerified.Add(s.fp, s.key)
	default:
		return e.visited.Add(s.key)
	}
}

// rootSucc wraps the initial node as a successor with its dedup handles.
func (e *enumerator) rootSucc(nd *node) enumSucc {
	s := enumSucc{nd: nd}
	switch e.dedup {
	case frontier.DedupFingerprint:
		s.fp = nd.fp()
	case frontier.DedupVerified:
		s.key, s.fp = nd.key(), nd.fp()
	default:
		s.key = nd.key()
		if e.routeFP {
			s.fp = fingerprint.OfString(s.key)
		}
	}
	return s
}

// resolve admits one successor against the replay's visited set and
// resolves its materialized node: from the succ itself when the expanding
// worker materialized it, from the pool store otherwise (a shared-set
// admit is always immediately followed by the store).
func (e *enumerator) resolve(s *enumSucc) (*enumSucc, bool) {
	if e.pool == nil {
		if s.nd == nil || !e.admit(s) {
			return nil, false
		}
		return s, true
	}
	if !e.seq.Admit(s.fp, s.key) {
		return nil, false
	}
	if s.nd != nil {
		return s, true
	}
	stored, _, state := e.pool.WaitEntry(frontier.NodeKey{FP: s.fp, Key: s.key}, false)
	if state == frontier.EntryMissing {
		panic("scheme: visited successor missing from the partitioned store")
	}
	return stored, true
}

// expandForPool is the pool's Expand callback: generate successors and
// route onward every materialized one. A protocol error stops the pool —
// the replay re-derives and reports it in canonical order.
func (e *enumerator) expandForPool(s *enumSucc) (enumExpansion, []*enumSucc) {
	exp := e.expand(s.nd)
	if exp.err != nil {
		e.pool.Stop()
		return exp, nil
	}
	var routed []*enumSucc
	for j := range exp.succs {
		if exp.succs[j].nd != nil {
			routed = append(routed, &exp.succs[j])
		}
	}
	return exp, routed
}

// predictSeen derives the fingerprint that ev's successor node would have
// — configuration delta from the transition cache, pattern and knowledge
// deltas from the node's incremental digests — and reports whether that
// successor is already visited, all without cloning or applying. ok=false
// means the caller must materialize.
func (e *enumerator) predictSeen(nd *node, ev sim.Event) (fingerprint.Digest, bool) {
	pred, ok := e.pr.Predict(e.proto, nd.cfg, ev)
	if !ok {
		return fingerprint.Digest{}, false
	}
	p := ev.Proc
	salt := saltKnownBase + uint64(p)
	patFP, knownFP := nd.patFP, nd.knownFP
	switch ev.Type {
	case sim.SendStepEvent:
		if pred.Sent {
			patFP = patFP.Add(entryDigest(pred.SentID, nd.knownSum[p]))
			newSum := nd.knownSum[p].Add(sim.MsgIDDigest(pred.SentID))
			knownFP = knownFP.Sub(nd.knownSum[p].Mixed(salt)).Add(newSum.Mixed(salt))
		}
	case sim.Deliver:
		newSum := nd.knownSum[p]
		known := nd.known[p]
		for _, q := range nd.sendPast[ev.Msg] {
			if _, has := known[q]; !has {
				newSum = newSum.Add(sim.MsgIDDigest(q))
			}
		}
		if _, has := known[ev.Msg]; !has {
			newSum = newSum.Add(sim.MsgIDDigest(ev.Msg))
		}
		knownFP = knownFP.Sub(nd.knownSum[p].Mixed(salt)).Add(newSum.Mixed(salt))
	default:
		// Failure events never occur in failure-free enumeration.
		return fingerprint.Digest{}, false
	}
	fp := pred.CfgFP.Add(patFP.Mixed(saltPat)).Add(knownFP)
	if !e.fpVisited.Seen(fp) {
		return fingerprint.Digest{}, false
	}
	return fp, true
}

// expand generates one node's successors. Runs on a worker: reads the
// visited set but never writes it. Under fingerprint dedup, successors
// whose predicted fingerprint is already visited are skipped without
// cloning the node or applying the event.
func (e *enumerator) expand(nd *node) enumExpansion {
	events := sim.Enabled(nd.cfg)
	if len(events) == 0 {
		return enumExpansion{maximal: nd.pat}
	}
	out := enumExpansion{succs: make([]enumSucc, 0, len(events))}
	fast := e.dedup == frontier.DedupFingerprint
	for _, ev := range events {
		if fast {
			if fp, ok := e.predictSeen(nd, ev); ok {
				out.succs = append(out.succs, enumSucc{fp: fp})
				continue
			}
		}
		var cfg *sim.Config
		var eff sim.Effect
		var err error
		if fast {
			cfg, eff, err = e.pr.Materialize(e.proto, nd.cfg, ev)
		} else {
			cfg, eff, err = sim.Apply(e.proto, nd.cfg, ev)
		}
		if err != nil {
			out.err = fmt.Errorf("scheme: exploring %s: %w", e.proto.Name(), err)
			return out
		}
		nxt := nd.cloneFor(ev)
		nxt.cfg = cfg
		applyEffect(nxt, eff)
		s := enumSucc{}
		switch e.dedup {
		case frontier.DedupFingerprint:
			s.fp = nxt.fp()
		case frontier.DedupVerified:
			s.key, s.fp = nxt.key(), nxt.fp()
		default:
			s.key = nxt.key()
			if e.routeFP {
				s.fp = fingerprint.OfString(s.key)
			}
		}
		if !e.seen(&s) {
			s.nd = nxt
		}
		out.succs = append(out.succs, s)
	}
	return out
}

// EnumerateContext enumerates with graceful degradation: on context
// cancellation or budget exhaustion it returns the partial Enumeration —
// every pattern completed so far, with Status and Frontier set — alongside a
// non-nil error.
//
// The walk is fingerprint-partitioned and asynchronous: Options.Parallelism
// owner workers each hold a static shard of the digest space and expand
// with no global barrier (frontier.Pool), while a sequential canonical
// replay consumes the stored expansions in breadth-first frontier order —
// re-expanding on demand whatever the pool dropped — and alone decides
// acceptance and the budget, so the Enumeration (patterns, Visited,
// Frontier, Status) is byte-identical at every parallelism level. See
// internal/frontier.
func EnumerateContext(ctx context.Context, proto sim.Protocol, inputs []sim.Bit, opts Options) (*Enumeration, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("scheme: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	start := &node{
		cfg:      sim.NewConfig(proto, inputs),
		pat:      pattern.New(),
		known:    make([]map[sim.MsgID]struct{}, proto.N()),
		sendPast: make(map[sim.MsgID][]sim.MsgID),
		knownSum: make([]fingerprint.Digest, proto.N()),
	}
	for i := range start.known {
		start.known[i] = make(map[sim.MsgID]struct{})
		start.knownFP = start.knownFP.Add(start.knownSum[i].Mixed(saltKnownBase + uint64(i)))
	}

	en := &Enumeration{Set: NewSet()}
	e := newEnumerator(proto, opts.Dedup)
	if opts.maxNodes() < 1 {
		en.Status = StatusExhausted
		en.Frontier = 1
		return en, &BudgetError{Protocol: proto.Name(), Nodes: opts.maxNodes()}
	}
	workers := frontier.Parallelism(opts.Parallelism)
	e.routeFP = opts.Dedup == frontier.DedupStrings && workers > 1
	root := e.rootSucc(start)
	if workers > 1 {
		// The partitioned pool speculatively admits (shared set) and
		// expands ahead of the replay; the replay below is the only
		// authority on acceptance and the budget.
		e.seq = frontier.NewSeqVisited(opts.Dedup)
		pool := frontier.NewPool(frontier.PoolOptions[*enumSucc, enumExpansion]{
			Workers: workers,
			Cap:     int64(opts.maxNodes()),
			KeyOf:   func(s *enumSucc) frontier.NodeKey { return frontier.NodeKey{FP: s.fp, Key: s.key} },
			Admit:   func(s *enumSucc) bool { return e.admit(s) },
			Expand:  e.expandForPool,
		})
		e.pool = pool
		pool.Start(ctx, []*enumSucc{&root})
		defer pool.Close()
		e.seq.Admit(root.fp, root.key)
	} else {
		e.admit(&root)
	}

	// Canonical replay: a FIFO walk over accepted nodes reproducing the
	// breadth-first frontier order of a sequential enumeration. queued
	// slots are zeroed once consumed so walked nodes can be reclaimed.
	type queued struct {
		nd *node
		k  frontier.NodeKey
	}
	accepted := 1
	queue := []queued{{nd: start, k: frontier.NodeKey{FP: root.fp, Key: root.key}}}
	head := 0
	for head < len(queue) {
		q := queue[head]
		queue[head] = queued{}
		head++
		// The context check precedes the prefetch lookup so cancellation
		// interrupts the walk at the same canonical boundary (a dequeue)
		// whether or not the pool got ahead of it.
		if err := ctx.Err(); err != nil {
			en.Status = StatusInterrupted
			en.Visited = accepted
			en.Frontier = len(queue) - head + 1
			return en, fmt.Errorf("scheme: enumeration of %s interrupted: %w", proto.Name(), err)
		}
		var exp *enumExpansion
		if e.pool != nil {
			if _, pexp, state := e.pool.WaitEntry(q.k, true); state == frontier.EntryExpanded {
				exp = &pexp
			}
		}
		if exp == nil {
			// The pool never expanded this node (cap, panic, or a stop —
			// a cancellation that raced the lookup surfaces here).
			if err := ctx.Err(); err != nil {
				en.Status = StatusInterrupted
				en.Visited = accepted
				en.Frontier = len(queue) - head + 1
				return en, fmt.Errorf("scheme: enumeration of %s interrupted: %w", proto.Name(), err)
			}
			fresh := e.expand(q.nd)
			exp = &fresh
		}
		if exp.err != nil {
			return nil, exp.err
		}
		if exp.maximal != nil {
			en.Set.Add(exp.maximal)
			continue
		}
		for j := range exp.succs {
			acc, ok := e.resolve(&exp.succs[j])
			if !ok {
				continue
			}
			if accepted >= opts.maxNodes() {
				en.Status = StatusExhausted
				en.Visited = accepted
				en.Frontier = len(queue) - head + 1
				return en, &BudgetError{Protocol: proto.Name(), Nodes: opts.maxNodes()}
			}
			accepted++
			queue = append(queue, queued{nd: acc.nd, k: frontier.NodeKey{FP: acc.fp, Key: acc.key}})
		}
	}
	en.Visited = accepted
	switch {
	case e.seq != nil && opts.Dedup == frontier.DedupVerified:
		en.Collisions = e.seq.Collisions()
	case e.fpVerified != nil && e.seq == nil:
		en.Collisions = e.fpVerified.Collisions()
	}
	return en, nil
}

// applyEffect updates a node's causal bookkeeping — sets and incremental
// digests together — for one applied event.
func applyEffect(nd *node, eff sim.Effect) {
	p := eff.Event.Proc
	for _, m := range eff.Sent {
		past := make([]sim.MsgID, 0, len(nd.known[p]))
		for id := range nd.known[p] {
			past = append(past, id)
		}
		sort.Slice(past, func(i, j int) bool { return past[i].Less(past[j]) })
		nd.sendPast[m.ID] = past
		nd.pat.Add(m.ID, past...)
		// The pattern entry's digest freezes the sender's knowledge sum
		// before the new message joins it — the same set `past` captures.
		nd.patFP = nd.patFP.Add(entryDigest(m.ID, nd.knownSum[p]))
		nd.addKnown(p, m.ID)
	}
	if eff.Received != nil {
		id := eff.Received.ID
		for _, q := range nd.sendPast[id] {
			nd.addKnown(p, q)
		}
		nd.addKnown(p, id)
	}
}

// Of computes the full scheme of a protocol: the union of the pattern sets
// over every input vector (all failure-free executions from every initial
// configuration).
func Of(proto sim.Protocol, opts Options) (*Set, error) {
	en, err := OfContext(context.Background(), proto, opts)
	if en == nil {
		return nil, err
	}
	return en.Set, err
}

// OfContext computes the full scheme with graceful degradation: on
// cancellation or budget exhaustion the union of every pattern found so far
// accompanies the error, with Status naming the cutoff.
func OfContext(ctx context.Context, proto sim.Protocol, opts Options) (*Enumeration, error) {
	out := &Enumeration{Set: NewSet()}
	for _, inputs := range sim.AllInputs(proto.N()) {
		en, err := EnumerateContext(ctx, proto, inputs, opts)
		if en != nil {
			out.Set.Union(en.Set)
			out.Visited += en.Visited
			out.Frontier += en.Frontier
			out.Status = en.Status
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
