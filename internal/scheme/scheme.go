// Package scheme implements the paper's schemes: the scheme of a protocol Q
// is the set of communication patterns of all failure-free executions of Q
// (Section 3). Schemes are computed by exhaustive exploration of every
// failure-free delivery order, deduplicating interleavings that lead to the
// same configuration with the same causal history.
//
// Protocol-level reduction is scheme containment: if the scheme of a
// protocol for P2 equals the scheme of some protocol for P1, then that
// protocol solves P1 "up to a renaming of states and padding of messages".
package scheme

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/frontier"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// Set is a set of communication patterns, keyed canonically.
type Set struct {
	patterns map[string]*pattern.Pattern
}

// NewSet returns an empty pattern set.
func NewSet() *Set { return &Set{patterns: make(map[string]*pattern.Pattern)} }

// Add inserts a pattern, returning whether it was new.
func (s *Set) Add(p *pattern.Pattern) bool {
	k := p.Key()
	if _, ok := s.patterns[k]; ok {
		return false
	}
	s.patterns[k] = p
	return true
}

// Len returns the number of distinct patterns.
func (s *Set) Len() int { return len(s.patterns) }

// Contains reports whether the set holds an equal pattern.
func (s *Set) Contains(p *pattern.Pattern) bool {
	_, ok := s.patterns[p.Key()]
	return ok
}

// SubsetOf reports whether every pattern of s belongs to t.
func (s *Set) SubsetOf(t *Set) bool {
	for k := range s.patterns { //ccvet:ignore detrange membership test only; order is unobservable
		if _, ok := t.patterns[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets hold exactly the same patterns.
func (s *Set) Equal(t *Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Union merges t into s.
func (s *Set) Union(t *Set) {
	for k, p := range t.patterns { //ccvet:ignore detrange keyed insertion; order is unobservable
		s.patterns[k] = p
	}
}

// Patterns returns the patterns sorted by canonical key, for deterministic
// iteration.
func (s *Set) Patterns() []*pattern.Pattern {
	keys := make([]string, 0, len(s.patterns))
	for k := range s.patterns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*pattern.Pattern, len(keys))
	for i, k := range keys {
		out[i] = s.patterns[k]
	}
	return out
}

// Keys returns the sorted canonical keys.
func (s *Set) Keys() []string {
	keys := make([]string, 0, len(s.patterns))
	for k := range s.patterns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Options bounds scheme enumeration.
type Options struct {
	// MaxNodes caps the number of distinct exploration nodes (default
	// sim.DefaultMaxNodes, the budget shared with checker.Options).
	// Enumeration fails rather than silently truncating.
	MaxNodes int
	// Parallelism is the number of worker goroutines expanding each
	// frontier level (0 = GOMAXPROCS). The resulting Enumeration is
	// byte-identical at any setting; parallelism only changes wall-clock
	// time.
	Parallelism int
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return sim.DefaultMaxNodes
	}
	return o.MaxNodes
}

// BudgetError reports that enumeration exceeded its node budget.
type BudgetError struct {
	Protocol string
	Nodes    int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("scheme: enumeration of %s exceeded %d nodes", e.Protocol, e.Nodes)
}

// Status reports how an enumeration ended; the zero value is Complete.
type Status int

const (
	// StatusComplete means every failure-free execution was enumerated.
	StatusComplete Status = iota
	// StatusInterrupted means the context was cancelled mid-enumeration.
	StatusInterrupted
	// StatusExhausted means the node budget ran out.
	StatusExhausted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusInterrupted:
		return "interrupted"
	case StatusExhausted:
		return "budget-exhausted"
	default:
		return "invalid"
	}
}

// Partial reports whether the enumeration covered only part of the space.
func (s Status) Partial() bool { return s != StatusComplete }

// Enumeration is the (possibly partial) result of enumerating failure-free
// executions: the patterns of every maximal execution reached so far,
// together with how the walk ended. A partial Set is a genuine subset of the
// scheme — useful for under-approximation — and is returned instead of being
// discarded on cancellation or budget exhaustion.
type Enumeration struct {
	Set      *Set
	Status   Status
	Visited  int
	Frontier int
}

// node is one exploration state: a configuration plus the causal bookkeeping
// needed to extend the pattern (which messages each processor may know, and
// the pattern of sends so far).
type node struct {
	cfg   *sim.Config
	pat   *pattern.Pattern
	known []map[sim.MsgID]struct{}
	// sendPast holds the frozen causal past of every sent message, so
	// deliveries can propagate knowledge. The pattern stores the same
	// data; this map just avoids re-deriving it per delivery.
	sendPast map[sim.MsgID][]sim.MsgID
}

func (nd *node) key() string {
	var sb strings.Builder
	sb.WriteString(nd.cfg.Key())
	sb.WriteByte('!')
	sb.WriteString(nd.pat.Key())
	sb.WriteByte('!')
	for p, set := range nd.known {
		if p > 0 {
			sb.WriteByte(';')
		}
		ids := make([]sim.MsgID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(id.String())
		}
	}
	return sb.String()
}

func (nd *node) clone() *node {
	out := &node{
		cfg:      nd.cfg, // replaced by Apply's fresh config
		pat:      pattern.New(),
		known:    make([]map[sim.MsgID]struct{}, len(nd.known)),
		sendPast: make(map[sim.MsgID][]sim.MsgID, len(nd.sendPast)),
	}
	for _, id := range nd.pat.Messages() {
		out.pat.Add(id, nd.pat.Preds(id)...)
	}
	for p, set := range nd.known {
		cp := make(map[sim.MsgID]struct{}, len(set))
		for id := range set { //ccvet:ignore detrange map copy; insertion order is unobservable
			cp[id] = struct{}{}
		}
		out.known[p] = cp
	}
	for id, past := range nd.sendPast { //ccvet:ignore detrange map copy; insertion order is unobservable
		out.sendPast[id] = past
	}
	return out
}

// Enumerate computes the set of communication patterns of all failure-free
// executions of the protocol from the given inputs. On budget exhaustion the
// partial set accompanies the *BudgetError.
func Enumerate(proto sim.Protocol, inputs []sim.Bit, opts Options) (*Set, error) {
	en, err := EnumerateContext(context.Background(), proto, inputs, opts)
	if en == nil {
		return nil, err
	}
	return en.Set, err
}

// enumSucc is one successor generated while expanding a frontier node. nd is
// nil when the successor was already visited before this level (it may still
// be a within-level duplicate, which the merge detects).
type enumSucc struct {
	key string
	nd  *node
}

// enumExpansion is one frontier node's worth of results: either the node was
// maximal (no enabled events — its pattern belongs to the scheme) or it
// produced successors.
type enumExpansion struct {
	maximal *pattern.Pattern
	succs   []enumSucc
	err     error
}

// expandEnum generates one node's successors. Runs on a worker: reads the
// visited set but never writes it.
func expandEnum(proto sim.Protocol, visited *frontier.VisitedSet, nd *node) enumExpansion {
	events := sim.Enabled(nd.cfg)
	if len(events) == 0 {
		return enumExpansion{maximal: nd.pat}
	}
	out := enumExpansion{succs: make([]enumSucc, 0, len(events))}
	for _, e := range events {
		nxt := nd.clone()
		cfg, eff, err := sim.Apply(proto, nd.cfg, e)
		if err != nil {
			out.err = fmt.Errorf("scheme: exploring %s: %w", proto.Name(), err)
			return out
		}
		nxt.cfg = cfg
		applyEffect(nxt, eff)
		k := nxt.key()
		s := enumSucc{key: k}
		if !visited.Seen(k) {
			s.nd = nxt
		}
		out.succs = append(out.succs, s)
	}
	return out
}

// EnumerateContext enumerates with graceful degradation: on context
// cancellation or budget exhaustion it returns the partial Enumeration —
// every pattern completed so far, with Status and Frontier set — alongside a
// non-nil error.
//
// The walk is a level-synchronous breadth-first search: each frontier level
// is expanded by Options.Parallelism workers and merged sequentially in
// frontier order, so the Enumeration (patterns, Visited, Frontier, Status)
// is byte-identical at every parallelism level. See internal/frontier.
func EnumerateContext(ctx context.Context, proto sim.Protocol, inputs []sim.Bit, opts Options) (*Enumeration, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("scheme: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	start := &node{
		cfg:      sim.NewConfig(proto, inputs),
		pat:      pattern.New(),
		known:    make([]map[sim.MsgID]struct{}, proto.N()),
		sendPast: make(map[sim.MsgID][]sim.MsgID),
	}
	for i := range start.known {
		start.known[i] = make(map[sim.MsgID]struct{})
	}

	en := &Enumeration{Set: NewSet()}
	visited := frontier.NewVisitedSet()
	if opts.maxNodes() < 1 {
		en.Status = StatusExhausted
		en.Frontier = 1
		return en, &BudgetError{Protocol: proto.Name(), Nodes: opts.maxNodes()}
	}
	visited.Add(start.key())
	accepted := 1
	front := []*node{start}
	for len(front) > 0 {
		if err := ctx.Err(); err != nil {
			en.Status = StatusInterrupted
			en.Visited = accepted
			en.Frontier = len(front)
			return en, fmt.Errorf("scheme: enumeration of %s interrupted: %w", proto.Name(), err)
		}
		exps, mapErr := frontier.Map(ctx, opts.Parallelism, front, func(nd *node) enumExpansion {
			return expandEnum(proto, visited, nd)
		})
		if mapErr != nil {
			en.Status = StatusInterrupted
			en.Visited = accepted
			en.Frontier = len(front)
			return en, fmt.Errorf("scheme: enumeration of %s interrupted: %w", proto.Name(), mapErr)
		}
		var next []*node
		for i := range exps {
			exp := &exps[i]
			if exp.err != nil {
				return nil, exp.err
			}
			if exp.maximal != nil {
				en.Set.Add(exp.maximal)
				continue
			}
			for j := range exp.succs {
				s := &exp.succs[j]
				if s.nd == nil || !visited.Add(s.key) {
					continue
				}
				if accepted >= opts.maxNodes() {
					en.Status = StatusExhausted
					en.Visited = accepted
					en.Frontier = len(next) + 1
					return en, &BudgetError{Protocol: proto.Name(), Nodes: opts.maxNodes()}
				}
				accepted++
				next = append(next, s.nd)
			}
		}
		front = next
	}
	en.Visited = accepted
	return en, nil
}

// applyEffect updates a node's causal bookkeeping for one applied event.
func applyEffect(nd *node, eff sim.Effect) {
	p := eff.Event.Proc
	for _, m := range eff.Sent {
		past := make([]sim.MsgID, 0, len(nd.known[p]))
		for id := range nd.known[p] {
			past = append(past, id)
		}
		sort.Slice(past, func(i, j int) bool { return past[i].Less(past[j]) })
		nd.sendPast[m.ID] = past
		nd.pat.Add(m.ID, past...)
		nd.known[p][m.ID] = struct{}{}
	}
	if eff.Received != nil {
		id := eff.Received.ID
		for _, q := range nd.sendPast[id] {
			nd.known[p][q] = struct{}{}
		}
		nd.known[p][id] = struct{}{}
	}
}

// Of computes the full scheme of a protocol: the union of the pattern sets
// over every input vector (all failure-free executions from every initial
// configuration).
func Of(proto sim.Protocol, opts Options) (*Set, error) {
	en, err := OfContext(context.Background(), proto, opts)
	if en == nil {
		return nil, err
	}
	return en.Set, err
}

// OfContext computes the full scheme with graceful degradation: on
// cancellation or budget exhaustion the union of every pattern found so far
// accompanies the error, with Status naming the cutoff.
func OfContext(ctx context.Context, proto sim.Protocol, opts Options) (*Enumeration, error) {
	out := &Enumeration{Set: NewSet()}
	for _, inputs := range sim.AllInputs(proto.N()) {
		en, err := EnumerateContext(ctx, proto, inputs, opts)
		if en != nil {
			out.Set.Union(en.Set)
			out.Visited += en.Visited
			out.Frontier += en.Frontier
			out.Status = en.Status
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
