package scheme

import (
	"context"
	"errors"
	"testing"

	"repro/internal/protocols"
)

func TestCancelledEnumerateReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := EnumerateContext(ctx, protocols.Tree{Procs: 3}, allOnes(3), Options{})
	if e == nil {
		t.Fatal("cancelled enumeration must still return the partial Enumeration")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Status != StatusInterrupted || !e.Status.Partial() {
		t.Fatalf("status = %v, want interrupted (partial)", e.Status)
	}
	if e.Set == nil {
		t.Fatal("partial enumeration lost its pattern set")
	}
}

func TestCancelledOfReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := OfContext(ctx, protocols.Tree{Procs: 3}, Options{})
	if e == nil || err == nil {
		t.Fatalf("OfContext = (%v, %v), want partial enumeration and error", e, err)
	}
	if !e.Status.Partial() {
		t.Fatalf("status = %v, want partial", e.Status)
	}
}

func TestCompleteEnumerationStatus(t *testing.T) {
	e, err := EnumerateContext(context.Background(), protocols.Tree{Procs: 3}, allOnes(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusComplete || e.Status.Partial() {
		t.Fatalf("status = %v, want complete", e.Status)
	}
	if e.Set.Len() == 0 || e.Visited == 0 {
		t.Fatalf("complete enumeration reported %d patterns over %d nodes", e.Set.Len(), e.Visited)
	}
	if e.Frontier != 0 {
		t.Fatalf("complete enumeration left %d frontier nodes", e.Frontier)
	}
}
