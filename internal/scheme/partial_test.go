package scheme

import (
	"context"
	"errors"
	"testing"

	"repro/internal/protocols"
)

func TestCancelledEnumerateReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := EnumerateContext(ctx, protocols.Tree{Procs: 3}, allOnes(3), Options{})
	if e == nil {
		t.Fatal("cancelled enumeration must still return the partial Enumeration")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Status != StatusInterrupted || !e.Status.Partial() {
		t.Fatalf("status = %v, want interrupted (partial)", e.Status)
	}
	if e.Set == nil {
		t.Fatal("partial enumeration lost its pattern set")
	}
}

func TestCancelledOfReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := OfContext(ctx, protocols.Tree{Procs: 3}, Options{})
	if e == nil || err == nil {
		t.Fatalf("OfContext = (%v, %v), want partial enumeration and error", e, err)
	}
	if !e.Status.Partial() {
		t.Fatalf("status = %v, want partial", e.Status)
	}
}

// TestBudgetExhaustionExactAtEveryWidth sweeps the exact-MaxNodes contract
// across parallelism widths: the replay accepts exactly MaxNodes
// configurations before reporting Exhausted, whether or not the prefetch
// pool overshot the budget speculatively.
func TestBudgetExhaustionExactAtEveryWidth(t *testing.T) {
	// Full exchange's failure-free space has 127 nodes; 60 cuts mid-space.
	const budget = 60
	for _, par := range []int{1, 2, 8, 16} {
		e, err := EnumerateContext(context.Background(), protocols.FullExchange{Procs: 3},
			allOnes(3), Options{MaxNodes: budget, Parallelism: par})
		if e == nil {
			t.Fatalf("width %d: exhausted enumeration must still return the partial Enumeration", par)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Nodes != budget {
			t.Fatalf("width %d: err = %v, want *BudgetError with Nodes=%d", par, err, budget)
		}
		if e.Status != StatusExhausted {
			t.Fatalf("width %d: status = %v, want exhausted", par, e.Status)
		}
		if e.Visited != budget {
			t.Fatalf("width %d: Visited = %d, want exactly the budget %d", par, e.Visited, budget)
		}
		if e.Frontier == 0 {
			t.Fatalf("width %d: exhausted mid-space but Frontier = 0", par)
		}
	}
}

func TestCompleteEnumerationStatus(t *testing.T) {
	e, err := EnumerateContext(context.Background(), protocols.Tree{Procs: 3}, allOnes(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusComplete || e.Status.Partial() {
		t.Fatalf("status = %v, want complete", e.Status)
	}
	if e.Set.Len() == 0 || e.Visited == 0 {
		t.Fatalf("complete enumeration reported %d patterns over %d nodes", e.Set.Len(), e.Visited)
	}
	if e.Frontier != 0 {
		t.Fatalf("complete enumeration left %d frontier nodes", e.Frontier)
	}
}
