package scheme

import (
	"errors"
	"testing"

	"repro/internal/pattern"
	"repro/internal/protocols"
	"repro/internal/sim"
)

func allOnes(n int) []sim.Bit {
	v := make([]sim.Bit, n)
	for i := range v {
		v[i] = sim.One
	}
	return v
}

func TestChainHasUniquePattern(t *testing.T) {
	// "The pattern illustrated is the only failure-free pattern of the
	// protocol" (Theorem 13's discussion of Figure 3) — and because
	// patterns abstract away message contents, every input vector yields
	// the same triples: the whole scheme is a single pattern.
	s, err := Of(protocols.Chain{Procs: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("scheme of chain(4) has %d patterns, want 1:\n%v", s.Len(), s.Keys())
	}
	// The pattern: p1,p2,p3 send inputs to p0; decision chain
	// p0→p1→p2→p3 with each link after the previous.
	p := s.Patterns()[0]
	if p.Size() != 6 {
		t.Fatalf("pattern size = %d, want 6", p.Size())
	}
	d1 := sim.MsgID{From: 0, To: 1, Seq: 1}
	d2 := sim.MsgID{From: 1, To: 2, Seq: 1}
	d3 := sim.MsgID{From: 2, To: 3, Seq: 1}
	if !p.Less(d1, d2) || !p.Less(d2, d3) {
		t.Fatalf("decision chain ordering missing in %s", p.Key())
	}
	for i := 1; i <= 3; i++ {
		in := sim.MsgID{From: sim.ProcID(i), To: 0, Seq: 1}
		if !p.Has(in) {
			t.Fatalf("missing input message %s", in)
		}
		if !p.Less(in, d1) {
			t.Fatalf("input %s should precede the decision", in)
		}
	}
}

func TestTreeSchemeSize(t *testing.T) {
	// tree(3): the failure-free pattern is determined by which leaves
	// receive the bias (the starred rule skips 0-leaves) and whether
	// Phase 2 runs: full commit, bias to both (root had 0), bias to one
	// leaf, bias to the other, bias to neither.
	s, err := Of(protocols.Tree{Procs: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("scheme of tree(3) has %d patterns, want 5:\n%v", s.Len(), s.Keys())
	}
}

func TestPerverseHasExactlyFourPatterns(t *testing.T) {
	// Figure 4: four failure-free communication patterns per input
	// vector, according to which of the dashed messages m1, m2, m3 are
	// sent: none, only m1, only m2, or all three.
	s, err := Enumerate(protocols.Perverse{}, allOnes(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("perverse all-ones enumeration has %d patterns, want 4:\n%v", s.Len(), s.Keys())
	}
	// In the all-ones (commit) flow p0 → p2 carries val (seq 1), ack
	// (seq 2), and then the dashed m3 (seq 3).
	m1 := sim.MsgID{From: 0, To: 3, Seq: 1}
	m2 := sim.MsgID{From: 1, To: 0, Seq: 2}
	m3 := sim.MsgID{From: 0, To: 2, Seq: 3}
	var combos []string
	for _, p := range s.Patterns() {
		has := func(m sim.MsgID) byte {
			if p.Has(m) {
				return '1'
			}
			return '0'
		}
		combo := string([]byte{has(m1), has(m2), has(m3)})
		combos = append(combos, combo)
		// m3 is sent only if both m1 and m2 are sent.
		if p.Has(m3) != (p.Has(m1) && p.Has(m2)) {
			t.Errorf("pattern violates the m3 rule: m1=%v m2=%v m3=%v",
				p.Has(m1), p.Has(m2), p.Has(m3))
		}
		if p.Has(m3) {
			if !p.Less(m1, m3) || !p.Less(m2, m3) {
				t.Error("m3 should causally follow m1 and m2")
			}
		}
	}
	want := map[string]bool{"000": true, "100": true, "010": true, "111": true}
	for _, c := range combos {
		if !want[c] {
			t.Errorf("unexpected dashed combination %q (want one of 000,100,010,111)", c)
		}
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing dashed combinations: %v (got %v)", want, combos)
	}
}

func TestForgetfulPerverseBreaksTheRules(t *testing.T) {
	// With p0 amnesic about m1, its fixed response to m2 produces a
	// pattern in which m3 appears without m1 — outside Figure 4's four
	// patterns, realizing the contradiction of Theorem 13.
	s, err := Enumerate(protocols.Perverse{ForgetfulP0: true}, allOnes(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := sim.MsgID{From: 0, To: 3, Seq: 1}
	m2 := sim.MsgID{From: 1, To: 0, Seq: 2}
	m3 := sim.MsgID{From: 0, To: 2, Seq: 3}
	found := false
	for _, p := range s.Patterns() {
		if p.Has(m3) && p.Has(m2) && !p.Has(m1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("forgetful variant should exhibit m3 without m1; got %d patterns", s.Len())
	}
}

func TestStarSchemeRelayRaces(t *testing.T) {
	// Participants relay the first decision message they receive — from
	// the coordinator or from another relay — so the star scheme contains
	// several patterns differing in relay causality.
	s, err := Of(protocols.Star{Procs: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 2 {
		t.Fatalf("scheme of star(3) has %d patterns, want ≥ 2 (relay races)", s.Len())
	}
}

func TestRandomRunPatternsBelongToScheme(t *testing.T) {
	protos := []sim.Protocol{
		protocols.Tree{Procs: 3},
		protocols.Chain{Procs: 4},
		protocols.Perverse{},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			full, err := Of(proto, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 20; seed++ {
				inputs := sim.AllInputs(proto.N())[int(seed)%(1<<proto.N())]
				run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				p := pattern.FromRun(run)
				if !full.Contains(p) {
					t.Fatalf("seed %d inputs %v: run pattern not in scheme:\n%s",
						seed, inputs, p.Key())
				}
			}
		})
	}
}

func TestSetOperations(t *testing.T) {
	a, b := NewSet(), NewSet()
	p1 := pattern.New()
	p1.Add(sim.MsgID{From: 0, To: 1, Seq: 1})
	p2 := pattern.New()
	p2.Add(sim.MsgID{From: 1, To: 0, Seq: 1})

	if !a.Add(p1) {
		t.Fatal("first Add should report new")
	}
	if a.Add(p1) {
		t.Fatal("second Add of the same pattern should report existing")
	}
	b.Add(p1)
	b.Add(p2)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	if a.Equal(b) {
		t.Fatal("a ≠ b expected")
	}
	a.Union(b)
	if !a.Equal(b) {
		t.Fatal("after union a = b expected")
	}
	if len(a.Keys()) != 2 || len(a.Patterns()) != 2 {
		t.Fatal("expected two patterns after union")
	}
}

func TestCompareSchemes(t *testing.T) {
	// The amnesic tree variant has the same scheme as the tree — the
	// Corollary 11 fact, here via the comparison API.
	got, err := Compare(protocols.Tree{Procs: 3}, protocols.Tree{Procs: 3, ST: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != SchemesEqual {
		t.Fatalf("tree vs tree-st: %s, want equal", got)
	}
	// Chain and star exchange different message triples entirely.
	got, err = Compare(protocols.Chain{Procs: 3}, protocols.Star{Procs: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != SchemesIncomparable {
		t.Fatalf("chain vs star: %s, want incomparable", got)
	}
	// Mismatched sizes are rejected.
	if _, err := Compare(protocols.Chain{Procs: 3}, protocols.Chain{Procs: 4}, Options{}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestCompareSetsDirections(t *testing.T) {
	small, err := Enumerate(protocols.Perverse{}, allOnes(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Of(protocols.Perverse{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := CompareSets(small, big); got != SchemeSubset {
		t.Fatalf("per-input set vs full scheme: %s, want subset", got)
	}
	if got := CompareSets(big, small); got != SchemeSuperset {
		t.Fatalf("full scheme vs per-input set: %s, want superset", got)
	}
	if got := CompareSets(big, big); got != SchemesEqual {
		t.Fatalf("self comparison: %s, want equal", got)
	}
	for _, c := range []Comparison{SchemesEqual, SchemeSubset, SchemeSuperset, SchemesIncomparable, Comparison(0)} {
		if c.String() == "" {
			t.Error("comparison should render")
		}
	}
}

func TestEnumerationBudget(t *testing.T) {
	_, err := Enumerate(protocols.Tree{Procs: 7}, allOnes(7), Options{MaxNodes: 10})
	var budget *BudgetError
	if !errorsAs(err, &budget) {
		t.Fatalf("expected BudgetError, got %v", err)
	}
	if budget.Nodes != 10 {
		t.Fatalf("budget = %d", budget.Nodes)
	}
}

// errorsAs is a tiny local wrapper to keep the test imports minimal.
func errorsAs(err error, target any) bool {
	return err != nil && errors.As(err, target)
}
