package transform

import (
	"sort"
	"strings"

	"repro/internal/sim"
)

// EliminateEBar is the Section 3 simulation that removes E̅ states from a
// total-communication protocol: each processor keeps a priority queue of
// unprocessed messages ordered by the causal (sent-before) order, and
// simulates the inner processor's receipt of each message as soon as a copy
// of it is known — whether it arrived directly or appended to another
// message. Duplicate copies and copies of already-processed ("old")
// messages are discarded.
//
// The wrapper speaks the total-communication message format (tcPayload), so
// the transformation composes as EliminateEBar{Inner: P} without separately
// constructing TotalComm{P}: padding is performed here too.
type EliminateEBar struct {
	// Inner is the protocol being simulated.
	Inner sim.Protocol
}

var _ sim.Protocol = EliminateEBar{}

// Name implements sim.Protocol.
func (e EliminateEBar) Name() string { return "ebarfree(" + e.Inner.Name() + ")" }

// N implements sim.Protocol.
func (e EliminateEBar) N() int { return e.Inner.N() }

// ebState carries the inner state, the causal history (as in TotalComm), the
// priority queue of known-but-unprocessed messages addressed to this
// processor, and the set of processed ("old") messages.
type ebState struct {
	inner     sim.State
	hist      map[string]histEntry
	sent      map[sim.ProcID]int
	queue     map[string]histEntry // unprocessed messages addressed to self
	processed map[string]struct{}
	self      sim.ProcID
}

var _ sim.State = ebState{}

// Kind implements sim.State.
func (s ebState) Kind() sim.StateKind { return s.inner.Kind() }

// Decided implements sim.State.
func (s ebState) Decided() (sim.Decision, bool) { return s.inner.Decided() }

// Amnesic implements sim.State.
func (s ebState) Amnesic() bool { return s.inner.Amnesic() }

// Key implements sim.State.
func (s ebState) Key() string {
	var sb strings.Builder
	sb.WriteString("eb{")
	sb.WriteString(s.inner.Key())
	sb.WriteByte('|')
	sb.WriteString(strings.Join(sortedKeys(s.hist), " "))
	sb.WriteByte('|')
	sb.WriteString(strings.Join(sortedKeys(s.queue), " "))
	sb.WriteByte('|')
	proc := make([]string, 0, len(s.processed))
	for k := range s.processed {
		proc = append(proc, k)
	}
	sort.Strings(proc)
	sb.WriteString(strings.Join(proc, " "))
	sb.WriteByte('|')
	counts := make([]string, 0, len(s.sent))
	for to, n := range s.sent {
		counts = append(counts, to.String()+":"+itoa(n))
	}
	sort.Strings(counts)
	sb.WriteString(strings.Join(counts, " "))
	sb.WriteString("}")
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s ebState) clone() ebState {
	hist := make(map[string]histEntry, len(s.hist))
	for k, v := range s.hist {
		hist[k] = v
	}
	sent := make(map[sim.ProcID]int, len(s.sent))
	for k, v := range s.sent {
		sent[k] = v
	}
	queue := make(map[string]histEntry, len(s.queue))
	for k, v := range s.queue {
		queue[k] = v
	}
	processed := make(map[string]struct{}, len(s.processed))
	for k := range s.processed {
		processed[k] = struct{}{}
	}
	return ebState{inner: s.inner, hist: hist, sent: sent, queue: queue, processed: processed, self: s.self}
}

// Init implements sim.Protocol.
func (e EliminateEBar) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return ebState{
		inner:     e.Inner.Init(p, input, n),
		hist:      make(map[string]histEntry),
		sent:      make(map[sim.ProcID]int),
		queue:     make(map[string]histEntry),
		processed: make(map[string]struct{}),
		self:      p,
	}
}

// learn records a message copy; if it is addressed to this processor and not
// yet processed, it joins the priority queue.
func (s *ebState) learn(h histEntry) {
	k := h.Ref.key()
	if _, known := s.hist[k]; !known {
		s.hist[k] = h
	}
	if h.Ref.To != s.self {
		return
	}
	if _, old := s.processed[k]; old {
		return
	}
	s.queue[k] = h
}

// drain simulates receipt of queued messages in causal order while the inner
// processor is in a receiving state. The front of the queue is any minimal
// element of the sent-before order restricted to the queue (ties broken
// canonically).
func (e EliminateEBar) drain(p sim.ProcID, s ebState) ebState {
	for s.inner.Kind() == sim.Receiving && len(s.queue) > 0 {
		keys := sortedKeys(s.queue)
		var frontKey string
		for _, k := range keys {
			minimal := true
			past := s.queue[k].Past
			pastSet := make(map[string]struct{}, len(past))
			for _, pk := range past {
				pastSet[pk] = struct{}{}
			}
			for _, other := range keys {
				if other == k {
					continue
				}
				if _, before := pastSet[other]; before {
					minimal = false
					break
				}
			}
			if minimal {
				frontKey = k
				break
			}
		}
		h := s.queue[frontKey]
		delete(s.queue, frontKey)
		s.processed[frontKey] = struct{}{}
		msg := sim.Message{
			ID:      sim.MsgID{From: h.Ref.From, To: s.self, Seq: h.Ref.Idx},
			Payload: h.Payload,
		}
		s.inner = e.Inner.Receive(p, s.inner, msg)
	}
	return s
}

// Receive implements sim.Protocol.
func (e EliminateEBar) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(ebState)
	if !ok {
		return state
	}
	s = s.clone()
	if m.Notice {
		s.inner = e.Inner.Receive(p, s.inner, m)
		return e.drain(p, s)
	}
	pl, ok := m.Payload.(tcPayload)
	if !ok {
		return s
	}
	for _, h := range pl.Appended {
		s.learn(h)
	}
	s.learn(histEntry{Ref: pl.Ref, Payload: pl.Inner, Past: appendedKeys(pl.Appended)})
	return e.drain(p, s)
}

// SendStep implements sim.Protocol: pad like TotalComm, then continue
// draining the queue if the inner processor returns to a receiving state.
func (e EliminateEBar) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(ebState)
	if !ok {
		return state, nil
	}
	s = s.clone()
	inner, envs := e.Inner.SendStep(p, s.inner)
	s.inner = inner
	out := make([]sim.Envelope, 0, len(envs))
	for _, env := range envs {
		s.sent[env.To]++
		ref := msgRef{From: p, To: env.To, Idx: s.sent[env.To]}
		appended := make([]histEntry, 0, len(s.hist))
		past := make([]string, 0, len(s.hist))
		for k, h := range s.hist {
			past = append(past, k)
			appended = append(appended, h)
		}
		sort.Strings(past)
		sort.Slice(appended, func(i, j int) bool {
			return appended[i].Ref.key() < appended[j].Ref.key()
		})
		entry := histEntry{Ref: ref, Payload: env.Payload, Past: past}
		s.hist[ref.key()] = entry
		out = append(out, sim.Envelope{
			To:      env.To,
			Payload: tcPayload{Ref: ref, Inner: env.Payload, Appended: appended},
		})
	}
	return e.drain(p, s), out
}
