// Package transform implements the two protocol transformations of
// Section 3 of Dwork & Skeen (1984):
//
//   - TotalComm pads every message with a copy of every causally prior
//     message, turning an arbitrary protocol into a total-communication
//     protocol. Receivers that ignore the appended copies behave exactly as
//     before, so the transformation preserves communication patterns.
//
//   - EliminateEBar simulates a total-communication protocol so that each
//     processor processes every message as soon as its existence is known
//     (via a priority queue ordered by the causal order), eliminating E̅
//     states — states in which a processor knows its buffer is not empty.
//     The resulting protocol's communication patterns are a subset of the
//     original's, and when the failure-free decision is a function of the
//     inputs alone (as under unanimity), the decisions agree.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// msgRef identifies an inner-protocol message independently of the
// simulator's sequence numbers: the k-th wrapper-level message from From to
// To. Failure notices never enter wrapper payloads, so the numbering is
// stable across failure patterns.
type msgRef struct {
	From sim.ProcID
	To   sim.ProcID
	Idx  int
}

func (r msgRef) key() string {
	return fmt.Sprintf("%s>%s#%d", r.From, r.To, r.Idx)
}

// histEntry is one recorded message: its reference, its inner payload, and
// the references of every message causally before it at send time.
type histEntry struct {
	Ref     msgRef
	Payload sim.Payload
	Past    []string // keys of causally prior messages, sorted
}

func (h histEntry) key() string {
	return h.Ref.key() + ":" + h.Payload.Key() + "<" + strings.Join(h.Past, ",")
}

// tcPayload is a padded message: the inner payload plus a copy of every
// message the sender knew of (its causal past).
type tcPayload struct {
	Ref      msgRef
	Inner    sim.Payload
	Appended []histEntry // sorted by ref key
}

// Key implements sim.Payload.
func (p tcPayload) Key() string {
	var sb strings.Builder
	sb.WriteString("tc[")
	sb.WriteString(p.Ref.key())
	sb.WriteByte('|')
	sb.WriteString(p.Inner.Key())
	for _, h := range p.Appended {
		sb.WriteByte(';')
		sb.WriteString(h.key())
	}
	sb.WriteString("]")
	return sb.String()
}

// TotalComm wraps a protocol into its total-communication form.
type TotalComm struct {
	// Inner is the protocol being padded.
	Inner sim.Protocol
}

var _ sim.Protocol = TotalComm{}

// Name implements sim.Protocol.
func (t TotalComm) Name() string { return "totalcomm(" + t.Inner.Name() + ")" }

// N implements sim.Protocol.
func (t TotalComm) N() int { return t.Inner.N() }

// tcState carries the inner state plus the processor's causal history: every
// message it has sent or learned of, keyed canonically.
type tcState struct {
	inner sim.State
	// hist maps ref key → entry for every known message.
	hist map[string]histEntry
	// sent counts wrapper messages per destination, for ref numbering.
	sent map[sim.ProcID]int
	self sim.ProcID
}

var _ sim.State = tcState{}

// Kind implements sim.State.
func (s tcState) Kind() sim.StateKind { return s.inner.Kind() }

// Decided implements sim.State.
func (s tcState) Decided() (sim.Decision, bool) { return s.inner.Decided() }

// Amnesic implements sim.State.
func (s tcState) Amnesic() bool { return s.inner.Amnesic() }

// Key implements sim.State.
func (s tcState) Key() string {
	keys := make([]string, 0, len(s.hist))
	for k := range s.hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]string, 0, len(s.sent))
	for to, n := range s.sent {
		counts = append(counts, fmt.Sprintf("%s:%d", to, n))
	}
	sort.Strings(counts)
	return "tc{" + s.inner.Key() + "|" + strings.Join(keys, " ") + "|" + strings.Join(counts, " ") + "}"
}

func (s tcState) clone() tcState {
	hist := make(map[string]histEntry, len(s.hist))
	for k, v := range s.hist {
		hist[k] = v
	}
	sent := make(map[sim.ProcID]int, len(s.sent))
	for k, v := range s.sent {
		sent[k] = v
	}
	return tcState{inner: s.inner, hist: hist, sent: sent, self: s.self}
}

// Init implements sim.Protocol.
func (t TotalComm) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return tcState{
		inner: t.Inner.Init(p, input, n),
		hist:  make(map[string]histEntry),
		sent:  make(map[sim.ProcID]int),
		self:  p,
	}
}

// Receive implements sim.Protocol: learn the message, its past, and every
// appended copy, then hand the inner payload to the inner protocol.
func (t TotalComm) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(tcState)
	if !ok {
		return state
	}
	s = s.clone()
	if m.Notice {
		s.inner = t.Inner.Receive(p, s.inner, m)
		return s
	}
	pl, ok := m.Payload.(tcPayload)
	if !ok {
		return s
	}
	for _, h := range pl.Appended {
		if _, known := s.hist[h.Ref.key()]; !known {
			s.hist[h.Ref.key()] = h
		}
	}
	own := histEntry{Ref: pl.Ref, Payload: pl.Inner, Past: appendedKeys(pl.Appended)}
	if _, known := s.hist[own.Ref.key()]; !known {
		s.hist[own.Ref.key()] = own
	}
	inner := sim.Message{ID: m.ID, Payload: pl.Inner}
	s.inner = t.Inner.Receive(p, s.inner, inner)
	return s
}

// SendStep implements sim.Protocol: take the inner send step and pad the
// envelope with the processor's entire causal history.
func (t TotalComm) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(tcState)
	if !ok {
		return state, nil
	}
	s = s.clone()
	inner, envs := t.Inner.SendStep(p, s.inner)
	s.inner = inner
	out := make([]sim.Envelope, 0, len(envs))
	for _, env := range envs {
		s.sent[env.To]++
		ref := msgRef{From: p, To: env.To, Idx: s.sent[env.To]}
		past := make([]string, 0, len(s.hist))
		appended := make([]histEntry, 0, len(s.hist))
		for k, h := range s.hist {
			past = append(past, k)
			appended = append(appended, h)
		}
		sort.Strings(past)
		sort.Slice(appended, func(i, j int) bool {
			return appended[i].Ref.key() < appended[j].Ref.key()
		})
		entry := histEntry{Ref: ref, Payload: env.Payload, Past: past}
		s.hist[ref.key()] = entry
		out = append(out, sim.Envelope{
			To:      env.To,
			Payload: tcPayload{Ref: ref, Inner: env.Payload, Appended: appended},
		})
	}
	return s, out
}

func appendedKeys(hs []histEntry) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Ref.key()
	}
	sort.Strings(out)
	return out
}
