package transform

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/protocols"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func TestTotalCommPreservesDecisions(t *testing.T) {
	inner := protocols.AckCommit{Procs: 4}
	proto := TotalComm{Inner: inner}
	for _, inputs := range sim.AllInputs(4) {
		run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 3})
		if err != nil {
			t.Fatalf("inputs %v: %v", inputs, err)
		}
		want := sim.Unanimity(inputs)
		for p := 0; p < 4; p++ {
			got, ok := run.DecisionOf(sim.ProcID(p))
			if !ok || got != want {
				t.Fatalf("inputs %v: %s decided %v (ok=%v), want %s", inputs, sim.ProcID(p), got, ok, want)
			}
		}
	}
}

func TestTotalCommPreservesScheme(t *testing.T) {
	inner := protocols.Chain{Procs: 3}
	s1, err := scheme.Of(inner, scheme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := scheme.Of(TotalComm{Inner: inner}, scheme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatalf("total-communication padding changed the scheme:\ninner: %v\npadded: %v",
			s1.Keys(), s2.Keys())
	}
}

func TestTotalCommMessagesCarryHistory(t *testing.T) {
	proto := TotalComm{Inner: protocols.Chain{Procs: 3}}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The last decision message (p1 → p2) must append everything p1 knew:
	// at least its own input message and p0's decision to it.
	found := false
	for _, eff := range run.Effects {
		for _, m := range eff.Sent {
			pl, ok := m.Payload.(tcPayload)
			if !ok || m.ID.From != 1 || m.ID.To != 2 {
				continue
			}
			found = true
			if len(pl.Appended) < 2 {
				t.Errorf("p1→p2 decision should append ≥ 2 prior messages, got %d", len(pl.Appended))
			}
		}
	}
	if !found {
		t.Fatal("no p1→p2 message observed")
	}
}

func TestEliminateEBarPreservesDecisions(t *testing.T) {
	inner := protocols.AckCommit{Procs: 3}
	proto := EliminateEBar{Inner: inner}
	for _, inputs := range sim.AllInputs(3) {
		for seed := int64(0); seed < 5; seed++ {
			run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed})
			if err != nil {
				t.Fatalf("inputs %v: %v", inputs, err)
			}
			want := sim.Unanimity(inputs)
			for p := 0; p < 3; p++ {
				got, ok := run.DecisionOf(sim.ProcID(p))
				if !ok || got != want {
					t.Fatalf("inputs %v seed %d: %s decided %v (ok=%v), want %s",
						inputs, seed, sim.ProcID(p), got, ok, want)
				}
			}
		}
	}
}

func TestEliminateEBarSchemeSubset(t *testing.T) {
	// The E̅-free simulation's communication patterns are a subset of the
	// original protocol's (Section 3): early processing can only restrict
	// which executions occur, never add message exchanges.
	inner := protocols.Chain{Procs: 3}
	orig, err := scheme.Of(inner, scheme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	elim, err := scheme.Of(EliminateEBar{Inner: inner}, scheme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !elim.SubsetOf(orig) {
		t.Fatalf("E̅-elimination enlarged the scheme:\ninner: %v\nsimulated: %v",
			orig.Keys(), elim.Keys())
	}
	if elim.Len() == 0 {
		t.Fatal("simulated scheme should not be empty")
	}
}

func TestEliminateEBarProcessesAppendedCopiesEarly(t *testing.T) {
	// Drive the simulated protocol so that a message reaches a processor
	// first as an appended copy: the processor must simulate its receipt
	// immediately (the copy becomes "old"), and the later direct delivery
	// must be discarded as a duplicate.
	inner := protocols.Chain{Procs: 3}
	proto := EliminateEBar{Inner: inner}
	inputs := []sim.Bit{sim.One, sim.One, sim.One}
	run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	final := run.Final()
	for p := 0; p < 3; p++ {
		st, ok := final.States[p].(ebState)
		if !ok {
			t.Fatalf("%s: unexpected state type", sim.ProcID(p))
		}
		if len(st.queue) != 0 {
			t.Errorf("%s: priority queue should be drained at quiescence, holds %d", sim.ProcID(p), len(st.queue))
		}
	}
	// p2 processed the decision message from p1 exactly once.
	st := final.States[2].(ebState)
	if _, ok := st.processed[(msgRef{From: 1, To: 2, Idx: 1}).key()]; !ok {
		t.Error("p2 should have processed p1's decision message")
	}
}

func TestPatternsFromTransformedRunsValidate(t *testing.T) {
	proto := EliminateEBar{Inner: protocols.AckCommit{Procs: 3}}
	run, err := sim.RandomRun(proto, []sim.Bit{sim.One, sim.One, sim.One}, sim.RunnerOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.FromRun(run)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Size() == 0 {
		t.Fatal("expected a non-empty pattern")
	}
}
