package sim

import (
	"testing"
)

// benchConfig builds a mid-execution configuration with populated buffers,
// the shape the explorer hashes millions of times.
func benchConfig(b *testing.B) *Config {
	proto := digestProto{n: 3}
	c := NewConfig(proto, []Bit{Zero, One, One})
	sched := Schedule{
		{Proc: 0, Type: SendStepEvent},
		{Proc: 1, Type: SendStepEvent},
		{Proc: 2, Type: Fail},
	}
	out, _, err := ApplySchedule(proto, c, sched)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkConfigKey measures the old dedup key: building the full
// canonical string for every successor.
func BenchmarkConfigKey(b *testing.B) {
	c := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Key()
	}
}

// BenchmarkConfigFingerprintCold measures a from-scratch fingerprint:
// what a root configuration pays once.
func BenchmarkConfigFingerprintCold(b *testing.B) {
	c := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.fpOK = false
		_ = c.Fingerprint()
	}
}

// BenchmarkPredictSuccessorFail measures the new dedup key for a failure
// successor: incremental derivation from the parent fingerprint, no
// successor materialization.
func BenchmarkPredictSuccessorFail(b *testing.B) {
	proto := digestProto{n: 3}
	c := benchConfig(b)
	c.Fingerprint()
	ev := Event{Proc: 0, Type: Fail}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := PredictSuccessor(proto, c, ev); !ok {
			b.Fatal("prediction failed")
		}
	}
}

// BenchmarkApplyThenKey measures the old successor admission path:
// materialize via Apply, then build the canonical key.
func BenchmarkApplyThenKey(b *testing.B) {
	proto := digestProto{n: 3}
	c := benchConfig(b)
	ev := Event{Proc: 0, Type: Fail}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		next, _, err := Apply(proto, c, ev)
		if err != nil {
			b.Fatal(err)
		}
		_ = next.Key()
	}
}

// BenchmarkBufferAdd measures persistent insertion with cached keys.
func BenchmarkBufferAdd(b *testing.B) {
	var buf Buffer
	for i := 1; i <= 6; i++ {
		buf = buf.Add(Message{ID: MsgID{From: 0, To: 1, Seq: i}, Payload: dpPayload{bit: Bit(i % 2)}}.Memoized())
	}
	m := Message{ID: MsgID{From: 2, To: 1, Seq: 1}, Payload: dpPayload{bit: One}}.Memoized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = buf.Add(m)
	}
}

// BenchmarkBufferRemoveMsg measures binary-search removal.
func BenchmarkBufferRemoveMsg(b *testing.B) {
	var buf Buffer
	for i := 1; i <= 6; i++ {
		buf = buf.Add(Message{ID: MsgID{From: 0, To: 1, Seq: i}, Payload: dpPayload{bit: Bit(i % 2)}}.Memoized())
	}
	victim := buf[3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := buf.RemoveMsg(victim); !ok {
			b.Fatal("remove failed")
		}
	}
}
