package sim

import (
	"testing"

	"repro/internal/fingerprint"
)

// digestProto is a small two-phase echo protocol rich enough to exercise
// sends, deliveries, decisions, and failures in fingerprint tests.
type digestProto struct{ n int }

type dpState struct {
	phase int
	bit   Bit
}

func (s dpState) Kind() StateKind {
	switch s.phase {
	case 0:
		return Sending
	case 1:
		return Receiving
	default:
		return Halted
	}
}
func (s dpState) Decided() (Decision, bool) {
	if s.phase >= 2 {
		return DecisionFor(s.bit), true
	}
	return NoDecision, false
}
func (s dpState) Amnesic() bool { return false }
func (s dpState) Key() string {
	return "dp" + string(rune('0'+s.phase)) + string(rune('0'+s.bit))
}

type dpPayload struct{ bit Bit }

func (p dpPayload) Key() string { return "b" + string(rune('0'+p.bit)) }

func (d digestProto) Name() string { return "digestproto" }
func (d digestProto) N() int       { return d.n }
func (d digestProto) Init(p ProcID, input Bit, n int) State {
	return dpState{phase: 0, bit: input}
}
func (d digestProto) Receive(p ProcID, s State, m Message) State {
	st := s.(dpState)
	if st.phase == 1 {
		return dpState{phase: 2, bit: st.bit}
	}
	return s
}
func (d digestProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st := s.(dpState)
	if st.phase != 0 {
		return s, nil
	}
	to := ProcID((int(p) + 1) % d.n)
	return dpState{phase: 1, bit: st.bit}, []Envelope{{To: to, Payload: dpPayload{bit: st.bit}}}
}

// TestFingerprintMatchesKey: across an exhaustive breadth-first walk of
// the protocol (with failures), two configurations have equal fingerprints
// iff they have equal canonical keys. This pins the fingerprint to exactly
// the equivalence Key defines — including the exclusion of channel
// sequence counters.
func TestFingerprintMatchesKey(t *testing.T) {
	proto := digestProto{n: 3}
	byKey := make(map[string]fingerprint.Digest)
	byFP := make(map[fingerprint.Digest]string)
	var walk func(c *Config, failures int, depth int)
	walk = func(c *Config, failures int, depth int) {
		key := c.Key()
		fp := c.Fingerprint()
		if prev, ok := byKey[key]; ok {
			if prev != fp {
				t.Fatalf("same key, different fingerprints: %s", key)
			}
		} else {
			byKey[key] = fp
		}
		if prevKey, ok := byFP[fp]; ok {
			if prevKey != key {
				t.Fatalf("fingerprint collision: %q vs %q", prevKey, key)
			}
		} else {
			byFP[fp] = key
		}
		if depth == 0 {
			return
		}
		events := Enabled(c)
		if failures < 1 {
			for p := 0; p < c.N(); p++ {
				if c.States[p].Kind() != Failed {
					events = append(events, Event{Proc: ProcID(p), Type: Fail})
				}
			}
		}
		for _, e := range events {
			next, _, err := Apply(proto, c, e)
			if err != nil {
				t.Fatalf("apply %s: %v", e, err)
			}
			nf := failures
			if e.Type == Fail {
				nf++
			}
			walk(next, nf, depth-1)
		}
	}
	for _, inputs := range AllInputs(3) {
		walk(NewConfig(proto, inputs), 0, 4)
	}
	if len(byKey) < 50 {
		t.Fatalf("walk too small to be meaningful: %d configs", len(byKey))
	}
}

// TestPredictSuccessorExact: for every event applicable to every explored
// configuration, the predicted successor fingerprint and post-state must
// match what Apply actually produces. This is the contract that lets the
// explorer skip Apply for already-seen successors.
func TestPredictSuccessorExact(t *testing.T) {
	proto := digestProto{n: 3}
	checked := 0
	var walk func(c *Config, failures int, depth int)
	seen := make(map[string]struct{})
	walk = func(c *Config, failures int, depth int) {
		if _, dup := seen[c.Key()]; dup || depth == 0 {
			return
		}
		seen[c.Key()] = struct{}{}
		events := Enabled(c)
		if failures < 1 {
			for p := 0; p < c.N(); p++ {
				if c.States[p].Kind() != Failed {
					events = append(events, Event{Proc: ProcID(p), Type: Fail})
				}
			}
		}
		for _, e := range events {
			fp, post, ok := PredictSuccessor(proto, c, e)
			next, _, err := Apply(proto, c, e)
			if err != nil {
				t.Fatalf("apply %s: %v", e, err)
			}
			if !ok {
				t.Fatalf("prediction refused applicable event %s", e)
			}
			if got := next.Fingerprint(); got != fp {
				t.Fatalf("predicted fingerprint %v, applied %v (event %s at %s)", fp, got, e, c.Key())
			}
			if post.Key() != next.States[e.Proc].Key() {
				t.Fatalf("predicted post-state %s, applied %s", post.Key(), next.States[e.Proc].Key())
			}
			checked++
			nf := failures
			if e.Type == Fail {
				nf++
			}
			walk(next, nf, depth-1)
		}
	}
	for _, inputs := range AllInputs(3) {
		walk(NewConfig(proto, inputs), 0, 5)
	}
	if checked < 100 {
		t.Fatalf("too few predictions checked: %d", checked)
	}
}

// TestPredictorExact: the memoizing Predictor must agree with Apply on
// every applicable event of every explored configuration — Predict's
// fingerprint and decision match the applied successor, and Materialize
// yields a configuration byte-identical (Key) and digest-identical
// (Fingerprint) to Apply's. This is the contract that lets the explorer
// route its entire fast-mode hot path through the transition cache.
func TestPredictorExact(t *testing.T) {
	proto := digestProto{n: 3}
	pr := NewPredictor()
	checked := 0
	seen := make(map[string]struct{})
	var walk func(c *Config, failures int, depth int)
	walk = func(c *Config, failures int, depth int) {
		if _, dup := seen[c.Key()]; dup || depth == 0 {
			return
		}
		seen[c.Key()] = struct{}{}
		events := Enabled(c)
		if failures < 1 {
			for p := 0; p < c.N(); p++ {
				if c.States[p].Kind() != Failed {
					events = append(events, Event{Proc: ProcID(p), Type: Fail})
				}
			}
		}
		for _, e := range events {
			pred, ok := pr.Predict(proto, c, e)
			next, wantEff, err := Apply(proto, c, e)
			if err != nil {
				t.Fatalf("apply %s: %v", e, err)
			}
			if !ok {
				t.Fatalf("Predict refused applicable event %s", e)
			}
			if got := next.Fingerprint(); got != pred.CfgFP {
				t.Fatalf("Predict fingerprint %v, applied %v (event %s at %s)", pred.CfgFP, got, e, c.Key())
			}
			d, decided := next.States[e.Proc].Decided()
			if decided != pred.Decided || (decided && d != pred.Decision) {
				t.Fatalf("Predict decision (%v,%v), applied (%v,%v)", pred.Decision, pred.Decided, d, decided)
			}
			mat, eff, err := pr.Materialize(proto, c, e)
			if err != nil {
				t.Fatalf("materialize %s: %v", e, err)
			}
			if mat.Key() != next.Key() {
				t.Fatalf("Materialize key diverges from Apply:\n  %s\n  %s", mat.Key(), next.Key())
			}
			if mat.Fingerprint() != next.Fingerprint() {
				t.Fatalf("Materialize fingerprint diverges from Apply at %s", mat.Key())
			}
			if len(eff.Sent) != len(wantEff.Sent) ||
				(eff.Received == nil) != (wantEff.Received == nil) {
				t.Fatalf("Materialize effect shape diverges from Apply for %s", e)
			}
			for i := range eff.Sent {
				if eff.Sent[i].Key() != wantEff.Sent[i].Key() {
					t.Fatalf("Materialize sent %s, Apply sent %s", eff.Sent[i].Key(), wantEff.Sent[i].Key())
				}
			}
			if eff.Received != nil && eff.Received.Key() != wantEff.Received.Key() {
				t.Fatalf("Materialize received %s, Apply received %s", eff.Received.Key(), wantEff.Received.Key())
			}
			if pred.Sent != (len(wantEff.Sent) == 1) || (pred.Sent && pred.SentID != wantEff.Sent[0].ID) {
				t.Fatalf("Predict sent-info (%v,%v) diverges from Apply effect %v", pred.Sent, pred.SentID, wantEff.Sent)
			}
			checked++
			nf := failures
			if e.Type == Fail {
				nf++
			}
			walk(next, nf, depth-1)
		}
	}
	for _, inputs := range AllInputs(3) {
		walk(NewConfig(proto, inputs), 0, 5)
	}
	if checked < 100 {
		t.Fatalf("too few transitions checked: %d", checked)
	}
}

// TestPredictorMaterializeErrors: events the cache cannot vouch for are
// routed through Apply, so callers observe Apply's exact errors.
func TestPredictorMaterializeErrors(t *testing.T) {
	proto := digestProto{n: 3}
	pr := NewPredictor()
	c := NewConfig(proto, []Bit{Zero, One, Zero})
	_, _, err := pr.Materialize(proto, c, Event{Proc: 0, Type: Deliver, Msg: MsgID{From: 1, To: 0, Seq: 1}})
	_, _, wantErr := Apply(proto, c, Event{Proc: 0, Type: Deliver, Msg: MsgID{From: 1, To: 0, Seq: 1}})
	if err == nil || wantErr == nil || err.Error() != wantErr.Error() {
		t.Fatalf("Materialize error %v, Apply error %v — must match", err, wantErr)
	}
}

// TestPredictSuccessorRejects: prediction must refuse inapplicable events
// rather than fabricate fingerprints.
func TestPredictSuccessorRejects(t *testing.T) {
	proto := digestProto{n: 3}
	c := NewConfig(proto, []Bit{Zero, One, Zero})
	if _, _, ok := PredictSuccessor(proto, c, Event{Proc: 0, Type: Deliver, Msg: MsgID{From: 1, To: 0, Seq: 1}}); ok {
		t.Fatal("predicted delivery of an unbuffered message")
	}
	if _, _, ok := PredictSuccessor(proto, c, Event{Proc: 99, Type: Fail}); ok {
		t.Fatal("predicted event for out-of-range processor")
	}
	failed, _, err := Apply(proto, c, Event{Proc: 0, Type: Fail})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := PredictSuccessor(proto, failed, Event{Proc: 0, Type: Fail}); ok {
		t.Fatal("predicted failure of an already-failed processor")
	}
}

// TestFingerprintColdPath: configurations that never had Fingerprint
// called still produce the right digest on demand after arbitrary Apply
// chains (the chaos/replay path leaves the cache cold).
func TestFingerprintColdPath(t *testing.T) {
	proto := digestProto{n: 3}
	warm := NewConfig(proto, []Bit{One, Zero, One})
	warm.Fingerprint() // warm cache from the root
	cold := NewConfig(proto, []Bit{One, Zero, One})
	sched := Schedule{
		{Proc: 0, Type: SendStepEvent},
		{Proc: 2, Type: SendStepEvent},
		{Proc: 1, Type: Fail},
	}
	w, _, err := ApplySchedule(proto, warm, sched)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := ApplySchedule(proto, cold, sched)
	if err != nil {
		t.Fatal(err)
	}
	if w.Fingerprint() != c.Fingerprint() {
		t.Fatalf("warm and cold fingerprints diverge: %v vs %v", w.Fingerprint(), c.Fingerprint())
	}
	if w.Key() != c.Key() {
		t.Fatalf("keys diverge: %q vs %q", w.Key(), c.Key())
	}
}

// TestBufferRemoveSinglePass: RemoveMsg locates by binary search and
// agrees with linear Remove, including on absent messages.
func TestBufferRemoveSinglePass(t *testing.T) {
	var b Buffer
	msgs := make([]Message, 0, 8)
	for i := 1; i <= 8; i++ {
		m := Message{ID: MsgID{From: ProcID(i % 3), To: 1, Seq: i}, Payload: dpPayload{bit: Bit(i % 2)}}.Memoized()
		msgs = append(msgs, m)
		b = b.Add(m)
	}
	for _, m := range msgs {
		viaID, ok1 := b.Remove(m.ID)
		viaMsg, ok2 := b.RemoveMsg(m)
		if !ok1 || !ok2 {
			t.Fatalf("message %s not found for removal", m.Key())
		}
		if viaID.Key() != viaMsg.Key() {
			t.Fatalf("Remove and RemoveMsg disagree for %s:\n  %s\n  %s", m.Key(), viaID.Key(), viaMsg.Key())
		}
	}
	absent := Message{ID: MsgID{From: 2, To: 1, Seq: 99}, Payload: dpPayload{}}.Memoized()
	if _, ok := b.RemoveMsg(absent); ok {
		t.Fatal("RemoveMsg removed an absent message")
	}
	if _, ok := b.Remove(absent.ID); ok {
		t.Fatal("Remove removed an absent message")
	}
}

// TestBufferDigestMultiset: buffer digests are insertion-order independent
// and track adds/removes exactly.
func TestBufferDigestMultiset(t *testing.T) {
	m1 := Message{ID: MsgID{From: 0, To: 1, Seq: 1}, Payload: dpPayload{bit: One}}.Memoized()
	m2 := Message{ID: MsgID{From: 2, To: 1, Seq: 1}, Payload: dpPayload{bit: Zero}}.Memoized()
	var a, b Buffer
	a = a.Add(m1)
	a = a.Add(m2)
	b = b.Add(m2)
	b = b.Add(m1)
	if a.Digest() != b.Digest() {
		t.Fatal("buffer digest depends on insertion order")
	}
	removed, ok := a.RemoveMsg(m2)
	if !ok {
		t.Fatal("remove failed")
	}
	if got, want := removed.Digest(), (Buffer{}).Add(m1).Digest(); got != want {
		t.Fatalf("digest after remove = %v, want %v", got, want)
	}
}

// TestAllocsFailPrediction: predicting a failure successor on a warm
// configuration is allocation-free — the zero-alloc cached path the
// explorer leans on for the O(N) failure events injected per node.
func TestAllocsFailPrediction(t *testing.T) {
	proto := digestProto{n: 3}
	c := NewConfig(proto, []Bit{Zero, One, One})
	c.Fingerprint()
	ev := Event{Proc: 1, Type: Fail}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := PredictSuccessor(proto, c, ev); !ok {
			t.Fatal("prediction failed")
		}
	})
	if allocs != 0 {
		t.Errorf("fail prediction allocates %.1f times per run, want 0", allocs)
	}
}

// TestAllocsDeliverPrediction: delivery prediction allocates nothing
// beyond the protocol's own Receive callback (which boxes its returned
// state) and that state's digest. The fingerprint arithmetic itself is
// allocation-free.
func TestAllocsDeliverPrediction(t *testing.T) {
	proto := digestProto{n: 3}
	c := NewConfig(proto, []Bit{Zero, One, One})
	next, _, err := ApplySchedule(proto, c, Schedule{
		{Proc: 0, Type: SendStepEvent}, // sends to p1
		{Proc: 1, Type: SendStepEvent}, // moves p1 into its receiving phase
	})
	if err != nil {
		t.Fatal(err)
	}
	next.Fingerprint()
	ev := Event{Proc: 1, Type: Deliver, Msg: MsgID{From: 0, To: 1, Seq: 1}}
	m, ok := next.Buffers[1].Find(ev.Msg)
	if !ok {
		t.Fatal("message not buffered")
	}
	baseline := testing.AllocsPerRun(200, func() {
		StateDigest(proto.Receive(1, next.States[1], m))
	})
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := PredictSuccessor(proto, next, ev); !ok {
			t.Fatal("prediction failed")
		}
	})
	if allocs > baseline {
		t.Errorf("deliver prediction allocates %.1f times per run, want ≤ %.1f (the Receive callback baseline)", allocs, baseline)
	}
}

// TestAllocsBufferInto: AddInto and RemoveMsgInto with a warm destination
// are allocation-free on memoized messages.
func TestAllocsBufferInto(t *testing.T) {
	var b Buffer
	for i := 1; i <= 6; i++ {
		b = b.Add(Message{ID: MsgID{From: 0, To: 1, Seq: i}, Payload: dpPayload{bit: Bit(i % 2)}}.Memoized())
	}
	extra := Message{ID: MsgID{From: 2, To: 1, Seq: 1}, Payload: dpPayload{bit: One}}.Memoized()
	addDst := make(Buffer, 0, len(b)+1)
	allocs := testing.AllocsPerRun(200, func() {
		addDst = b.AddInto(addDst, extra)
	})
	if allocs != 0 {
		t.Errorf("AddInto allocates %.1f times per run, want 0", allocs)
	}
	victim := b[3]
	rmDst := make(Buffer, 0, len(b))
	allocs = testing.AllocsPerRun(200, func() {
		out, ok := b.RemoveMsgInto(rmDst, victim)
		if !ok {
			t.Fatal("remove failed")
		}
		rmDst = out[:0]
	})
	if allocs != 0 {
		t.Errorf("RemoveMsgInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestAllocsAppendEnabled: enumerating enabled events into a reused
// scratch slice is allocation-free.
func TestAllocsAppendEnabled(t *testing.T) {
	proto := digestProto{n: 3}
	c := NewConfig(proto, []Bit{Zero, One, One})
	for p := 0; p < 3; p++ {
		var err error
		c, _, err = Apply(proto, c, Event{Proc: ProcID(p), Type: SendStepEvent})
		if err != nil {
			t.Fatal(err)
		}
	}
	scratch := make([]Event, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		scratch = AppendEnabled(scratch[:0], c)
	})
	if allocs != 0 {
		t.Errorf("AppendEnabled allocates %.1f times per run, want 0", allocs)
	}
	if len(scratch) == 0 {
		t.Fatal("no enabled events found")
	}
}
