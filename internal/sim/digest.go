package sim

import "repro/internal/fingerprint"

// Fingerprint salts. Every contribution to a configuration fingerprint is
// mixed under a salt that encodes its role (local state, buffered message,
// inputs vector) and, for per-processor roles, the processor index. The
// role bases are spaced far apart so role+index salts never collide for
// any realistic N.
const (
	saltStateBase  uint64 = 0x01_0000_0000
	saltBufferBase uint64 = 0x02_0000_0000
	saltInputs     uint64 = 0x03_0000_0000
	saltFailed     uint64 = 0x05_0000_0000
	saltOmission   uint64 = 0x06_0000_0000
)

// Digester is implemented by states (and other components) that can
// produce their canonical digest directly, without building their Key
// string first. Implementations must preserve key equality: two
// components with equal keys must produce equal digests, and components
// with distinct keys must produce distinct digests except with the
// negligible probability of a 128-bit collision.
type Digester interface {
	Digest() fingerprint.Digest
}

// StateDigest fingerprints a local state. States implementing Digester
// are hashed structurally; all others fall back to hashing their
// canonical Key, so the digest always agrees with key equality.
func StateDigest(s State) fingerprint.Digest {
	if d, ok := s.(Digester); ok {
		return d.Digest()
	}
	return fingerprint.OfString(s.Key())
}

// MsgIDDigest fingerprints a message triple (p, q, k) structurally.
func MsgIDDigest(id MsgID) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(uint64(id.From)<<32 | uint64(uint32(id.To)))
	h.WriteUint64(uint64(id.Seq))
	return h.Sum()
}

// inputsDigest fingerprints the initial-bit vector. Inputs never change
// along an execution, so this is computed once per root configuration.
func inputsDigest(inputs []Bit) fingerprint.Digest {
	h := fingerprint.New()
	for _, in := range inputs {
		h.WriteUint64(uint64(in))
	}
	return h.Sum()
}
