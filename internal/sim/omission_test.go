package sim

import (
	"strconv"
	"strings"
	"testing"
)

// bcastState is the per-processor state of bcastProto: p0 broadcasts one
// message per send step and decides after the last; receivers decide on
// their first real delivery.
type bcastState struct {
	id      ProcID
	sent    int
	decided Decision
}

func (s bcastState) Kind() StateKind {
	if s.id == 0 && s.sent < 3 {
		return Sending
	}
	return Receiving
}

func (s bcastState) Decided() (Decision, bool) {
	if s.decided == NoDecision {
		return NoDecision, false
	}
	return s.decided, true
}
func (s bcastState) Amnesic() bool { return false }
func (s bcastState) Key() string {
	k := "bcast{" + s.id.String() + " s" + strconv.Itoa(s.sent)
	if s.decided != NoDecision {
		k += " " + s.decided.String()
	}
	return k + "}"
}

// bcastProto is a three-processor broadcast: p0 sends to p1, then p2, then
// p1 again — one message per send step, as the model requires — and then
// everyone receives. The double message to p1 lets omission tests
// rehabilitate p1 with a later successful delivery.
type bcastProto struct{}

func (bcastProto) Name() string { return "bcast" }
func (bcastProto) N() int       { return 3 }
func (bcastProto) Init(p ProcID, input Bit, n int) State {
	return bcastState{id: p}
}
func (bcastProto) Receive(p ProcID, s State, m Message) State {
	st := s.(bcastState)
	if !m.Notice {
		st.decided = Commit
	}
	return st
}
func (bcastProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st := s.(bcastState)
	targets := []Envelope{
		{To: 1, Payload: echoPayload("a")},
		{To: 2, Payload: echoPayload("b")},
		{To: 1, Payload: echoPayload("c")},
	}
	if st.sent >= len(targets) {
		return st, nil
	}
	env := targets[st.sent]
	st.sent++
	if st.sent == len(targets) {
		st.decided = Commit
	}
	return st, []Envelope{env}
}

// broadcastAll applies p0's three send steps to c and returns the
// configuration with all three messages buffered.
func broadcastAll(t *testing.T, c *Config) *Config {
	t.Helper()
	for i := 0; i < 3; i++ {
		next, _, err := Apply(bcastProto{}, c, Event{Proc: 0, Type: SendStepEvent})
		if err != nil {
			t.Fatalf("send step %d: %v", i, err)
		}
		c = next
	}
	return c
}

// omitEvents filters the Omit events out of an enabled set.
func omitEvents(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == Omit {
			out = append(out, e)
		}
	}
	return out
}

// TestOmissionDisabledHashIdentity: a configuration built with the zero
// omission policy is byte-identical — key and fingerprint — to one built
// without any policy, before and after steps. Pre-omission explorations
// must not see the fault class at all.
func TestOmissionDisabledHashIdentity(t *testing.T) {
	proto := bcastProto{}
	inputs := []Bit{One, One, One}
	a := NewConfig(proto, inputs)
	b := NewConfigOmission(proto, inputs, OmissionPolicy{})
	if a.Key() != b.Key() {
		t.Fatalf("zero-policy key diverges:\n  %s\nvs\n  %s", b.Key(), a.Key())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("zero-policy fingerprint diverges")
	}
	step := Event{Proc: 0, Type: SendStepEvent}
	na, _, err := Apply(proto, a, step)
	if err != nil {
		t.Fatal(err)
	}
	nb, _, err := Apply(proto, b, step)
	if err != nil {
		t.Fatal(err)
	}
	if na.Key() != nb.Key() || na.Fingerprint() != nb.Fingerprint() {
		t.Fatal("zero-policy hash identity lost after a step")
	}
	if strings.Contains(nb.Key(), "#O") {
		t.Fatalf("disabled policy leaked an omission suffix into the key: %s", nb.Key())
	}
	if len(omitEvents(Enabled(nb))) != 0 {
		t.Fatal("disabled policy enumerated Omit events")
	}
}

// TestOmitEventSemantics: an Omit consumes the buffered message without
// firing Receive, charges the budget, marks the target, and shows up in
// the key; an exhausted budget enumerates no further Omit events.
func TestOmitEventSemantics(t *testing.T) {
	proto := bcastProto{}
	c := broadcastAll(t, NewConfigOmission(proto, []Bit{One, One, One}, OmissionPolicy{Budget: 1}))
	omits := omitEvents(Enabled(c))
	if len(omits) != 3 {
		t.Fatalf("enabled Omit events = %d, want 3 (one per buffered message)", len(omits))
	}
	var omit Event
	for _, e := range omits {
		if e.Proc == 1 && e.Msg.Seq == 1 {
			omit = e
		}
	}
	if omit.Type != Omit {
		t.Fatal("no Omit targeting p1's first message")
	}
	before := len(c.Buffers[1])
	next, eff, err := Apply(proto, c, omit)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Omitted == nil || eff.Omitted.ID != omit.Msg {
		t.Fatalf("effect.Omitted = %v, want %s", eff.Omitted, omit.Msg)
	}
	if len(next.Buffers[1]) != before-1 {
		t.Fatal("Omit did not consume the buffered message")
	}
	if _, decided := next.States[1].Decided(); decided {
		t.Fatal("Omit fired Receive: the target decided")
	}
	if next.OmissionsUsed() != 1 || !next.OmissionFaultyProc(1) || !next.OmissionTarget(1) {
		t.Fatalf("omission accounting wrong: used=%d faulty=%v target=%v",
			next.OmissionsUsed(), next.OmissionFaultyProc(1), next.OmissionTarget(1))
	}
	if !strings.Contains(next.Key(), "#O1:") {
		t.Fatalf("key is missing the omission suffix: %s", next.Key())
	}
	if got := omitEvents(Enabled(next)); len(got) != 0 {
		t.Fatalf("budget exhausted but %d Omit events still enumerated", len(got))
	}
	if c.OmissionsUsed() != 0 || c.OmissionFaultyProc(1) {
		t.Fatal("Apply mutated the predecessor's omission accounting")
	}
}

// TestMobileOmissionRehabilitation: with a mobile cap of one, a second
// processor cannot be targeted while the first is omission-faulty; a
// successful delivery (or a crash) rehabilitates the first and frees the
// slot.
func TestMobileOmissionRehabilitation(t *testing.T) {
	proto := bcastProto{}
	pol := OmissionPolicy{Budget: 2, Mobile: 1}
	c := broadcastAll(t, NewConfigOmission(proto, []Bit{One, One, One}, pol))
	// Omit p1's first message: p1 occupies the single mobile slot.
	var first Event
	for _, e := range omitEvents(Enabled(c)) {
		if e.Proc == 1 && e.Msg.Seq == 1 {
			first = e
		}
	}
	c, _, err := Apply(proto, c, first)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range omitEvents(Enabled(c)) {
		if e.Proc != 1 {
			t.Fatalf("mobile cap 1 with p1 faulty still enumerated Omit for %s", e.Proc)
		}
	}
	// Deliver p1's second message: rehabilitation moves the faulty set.
	var deliver Event
	for _, e := range Enabled(c) {
		if e.Type == Deliver && e.Proc == 1 {
			deliver = e
		}
	}
	if deliver.Type != Deliver {
		t.Fatal("no enabled delivery to p1")
	}
	c, _, err = Apply(proto, c, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if c.OmissionFaultyProc(1) {
		t.Fatal("successful delivery did not rehabilitate p1")
	}
	if !c.OmissionTarget(1) {
		t.Fatal("rehabilitation erased p1's ever-targeted mark")
	}
	seen2 := false
	for _, e := range omitEvents(Enabled(c)) {
		if e.Proc == 2 {
			seen2 = true
		}
	}
	if !seen2 {
		t.Fatal("freed mobile slot did not re-enable Omit for p2")
	}

	// Crash also frees the slot: replay the first omission, then fail p1.
	d := broadcastAll(t, NewConfigOmission(proto, []Bit{One, One, One}, pol))
	d, _, err = Apply(proto, d, first)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = Apply(proto, d, Event{Proc: 1, Type: Fail})
	if err != nil {
		t.Fatal(err)
	}
	if d.OmissionFaultyProc(1) {
		t.Fatal("crash did not clear p1 from the omission-faulty set")
	}
	seen2 = false
	for _, e := range omitEvents(Enabled(d)) {
		if e.Proc == 2 {
			seen2 = true
		}
	}
	if !seen2 {
		t.Fatal("crash-freed mobile slot did not re-enable Omit for p2")
	}
}

// TestOmissionAccountingDistinguishesConfigs: two configurations that
// differ only in omission accounting (delivered vs omitted) must have
// different keys and different fingerprints, or dedup would merge states
// with different remaining adversary power.
func TestOmissionAccountingDistinguishesConfigs(t *testing.T) {
	proto := bcastProto{}
	base := broadcastAll(t, NewConfigOmission(proto, []Bit{One, One, One}, OmissionPolicy{Budget: 2}))
	var omit Event
	for _, e := range omitEvents(Enabled(base)) {
		if e.Proc == 1 && e.Msg.Seq == 1 {
			omit = e
		}
	}
	omitted, _, err := Apply(proto, base, omit)
	if err != nil {
		t.Fatal(err)
	}
	if omitted.Key() == base.Key() {
		t.Fatal("omission left the key unchanged")
	}
	if omitted.Fingerprint() == base.Fingerprint() {
		t.Fatal("omission left the fingerprint unchanged")
	}
}

// wideProto is a do-nothing protocol of configurable size, for the
// omission N-bound check.
type wideState struct{ id ProcID }

func (wideState) Kind() StateKind           { return Receiving }
func (wideState) Decided() (Decision, bool) { return NoDecision, false }
func (wideState) Amnesic() bool             { return false }
func (s wideState) Key() string             { return "w{" + s.id.String() + "}" }

type wideProto struct{ n int }

func (wideProto) Name() string                                   { return "wide" }
func (w wideProto) N() int                                       { return w.n }
func (wideProto) Init(p ProcID, _ Bit, _ int) State              { return wideState{id: p} }
func (wideProto) Receive(_ ProcID, s State, _ Message) State     { return s }
func (wideProto) SendStep(_ ProcID, s State) (State, []Envelope) { return s, nil }

// TestOmissionProcBound: enabled policies track faulty sets as 64-bit
// masks, so runs over more than 64 processors must be refused up front.
func TestOmissionProcBound(t *testing.T) {
	proto := wideProto{n: 65}
	inputs := make([]Bit, 65)
	pol := OmissionPolicy{Budget: 1}
	if _, err := NewRunOmission(proto, inputs, pol); err == nil {
		t.Fatal("NewRunOmission accepted 65 processors under an enabled policy")
	}
	if _, err := RandomRun(proto, inputs, RunnerOptions{Omission: pol}); err == nil {
		t.Fatal("RandomRun accepted 65 processors under an enabled policy")
	}
	if _, err := NewRunOmission(proto, inputs, OmissionPolicy{}); err != nil {
		t.Fatalf("zero policy must not be size-bounded: %v", err)
	}
}

// TestRandomRunOmissionDeterminism: equal seeds and policies give equal
// schedules, and some seed in a small window actually injects omissions.
func TestRandomRunOmissionDeterminism(t *testing.T) {
	proto := bcastProto{}
	inputs := []Bit{One, One, One}
	pol := OmissionPolicy{Budget: 2, Mobile: 1}
	sawOmission := false
	for seed := int64(1); seed <= 20; seed++ {
		opts := RunnerOptions{Seed: seed, Omission: pol}
		a, errA := RandomRun(proto, inputs, opts)
		b, errB := RandomRun(proto, inputs, opts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: error divergence: %v vs %v", seed, errA, errB)
		}
		if len(a.Schedule) != len(b.Schedule) {
			t.Fatalf("seed %d: schedule lengths diverge", seed)
		}
		for i := range a.Schedule {
			if a.Schedule[i] != b.Schedule[i] {
				t.Fatalf("seed %d: schedules diverge at %d", seed, i)
			}
		}
		if a.Omissions() > 0 {
			sawOmission = true
			if a.Omissions() > pol.Budget {
				t.Fatalf("seed %d: %d omissions exceed budget %d", seed, a.Omissions(), pol.Budget)
			}
		}
	}
	if !sawOmission {
		t.Fatal("no seed in 1..20 injected an omission; the scheduler never picks Omit events")
	}
}
