package sim

import (
	"strings"
	"testing"
)

func TestTraceAndSummary(t *testing.T) {
	run, err := RandomRun(ppTestProto{}, []Bit{One, One}, RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	trace := run.Trace()
	if len(trace) != run.Steps()+1 {
		t.Fatalf("trace lines = %d, want %d", len(trace), run.Steps()+1)
	}
	joined := strings.Join(trace, "\n")
	if !strings.Contains(joined, "initial configuration: inputs 11") {
		t.Errorf("missing initial line:\n%s", joined)
	}
	if !strings.Contains(joined, "→ (p0,p1,1) ping") {
		t.Errorf("missing send annotation:\n%s", joined)
	}
	if !strings.Contains(joined, "decides commit") {
		t.Errorf("missing decision annotation:\n%s", joined)
	}

	sum := run.Summary()
	for _, want := range []string{"pingpong2", "decided commit", "failure-free=true"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestTraceAnnotatesFailures(t *testing.T) {
	run, err := RandomRun(ppTestProto{}, []Bit{One, One}, RunnerOptions{
		Seed:     1,
		Failures: []FailureAt{{Proc: 1, AfterStep: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.FailureFree() {
		t.Fatal("run should contain the injected failure")
	}
	if !strings.Contains(strings.Join(run.Trace(), "\n"), "p1 fails") {
		t.Error("trace should show the failure event")
	}
	if !strings.Contains(run.Summary(), "failed") {
		t.Error("summary should flag the failed processor")
	}
}

// ppTestProto is a two-processor ping/pong-decide protocol for trace tests.
type ppTestProto struct{}

type ppTestState struct {
	id    ProcID
	stage int
}

func (s ppTestState) Kind() StateKind {
	if (s.id == 0 && s.stage == 0) || (s.id == 1 && s.stage == 1) {
		return Sending
	}
	return Receiving
}
func (s ppTestState) Decided() (Decision, bool) {
	if s.stage == 2 {
		return Commit, true
	}
	return NoDecision, false
}
func (s ppTestState) Amnesic() bool { return false }
func (s ppTestState) Key() string {
	return "pp2{" + s.id.String() + string(rune('0'+s.stage)) + "}"
}

func (ppTestProto) Name() string { return "pingpong2" }
func (ppTestProto) N() int       { return 2 }
func (ppTestProto) Init(p ProcID, input Bit, n int) State {
	return ppTestState{id: p}
}
func (ppTestProto) Receive(p ProcID, s State, m Message) State {
	st := s.(ppTestState)
	if m.Notice {
		if st.id == 0 && st.stage == 1 {
			st.stage = 2 // decide on failure detection so the run quiesces
		}
		return st
	}
	if st.id == 1 && st.stage == 0 {
		st.stage = 1
	} else if st.id == 0 && st.stage == 1 {
		st.stage = 2
	}
	return st
}
func (ppTestProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st := s.(ppTestState)
	switch {
	case st.id == 0 && st.stage == 0:
		st.stage = 1
		return st, []Envelope{{To: 1, Payload: echoPayload("ping")}}
	case st.id == 1 && st.stage == 1:
		st.stage = 2
		return st, []Envelope{{To: 0, Payload: echoPayload("pong")}}
	}
	return st, nil
}

func TestApplySchedule(t *testing.T) {
	proto := ppTestProto{}
	c := NewConfig(proto, []Bit{One, One})
	final, effects, err := ApplySchedule(proto, c, Schedule{
		{Proc: 0, Type: SendStepEvent},
		{Proc: 1, Type: Deliver, Msg: MsgID{From: 0, To: 1, Seq: 1}},
		{Proc: 1, Type: SendStepEvent},
		{Proc: 0, Type: Deliver, Msg: MsgID{From: 1, To: 0, Seq: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 4 {
		t.Fatalf("effects = %d", len(effects))
	}
	if !final.Quiescent() {
		t.Fatal("final configuration should be quiescent")
	}
	// An inapplicable suffix stops with an error and the prefix applied.
	_, effects2, err := ApplySchedule(proto, c, Schedule{
		{Proc: 0, Type: SendStepEvent},
		{Proc: 0, Type: SendStepEvent}, // p0 is receiving now
	})
	if err == nil {
		t.Fatal("expected error on inapplicable event")
	}
	if len(effects2) != 1 {
		t.Fatalf("prefix effects = %d, want 1", len(effects2))
	}
}

func TestEnumHelpers(t *testing.T) {
	if Receiving.String() != "receiving" || Sending.String() != "sending" ||
		Halted.String() != "halted" || Failed.String() != "failed" {
		t.Error("StateKind names wrong")
	}
	if StateKind(0).String() != "invalid" {
		t.Error("invalid StateKind should say so")
	}
	if Deliver.String() != "deliver" || SendStepEvent.String() != "send" || Fail.String() != "fail" {
		t.Error("EventType names wrong")
	}
	if EventType(0).String() != "invalid" {
		t.Error("invalid EventType should say so")
	}
	if Commit.String() != "commit" || Abort.String() != "abort" || NoDecision.String() != "undecided" {
		t.Error("Decision names wrong")
	}
	if Commit.Value() != One || Abort.Value() != Zero {
		t.Error("Decision values wrong")
	}
	if DecisionFor(One) != Commit || DecisionFor(Zero) != Abort {
		t.Error("DecisionFor wrong")
	}
	if ProcID(3).String() != "p3" {
		t.Error("ProcID rendering wrong")
	}
	id := MsgID{From: 1, To: 2, Seq: 3}
	if id.String() != "(p1,p2,3)" {
		t.Errorf("MsgID rendering: %s", id)
	}
	if !id.Less(MsgID{From: 2}) || id.Less(MsgID{From: 1, To: 2, Seq: 3}) {
		t.Error("MsgID ordering wrong")
	}
	if !(MsgID{From: 1, To: 1, Seq: 1}).Less(MsgID{From: 1, To: 2, Seq: 0}) {
		t.Error("MsgID ordering should be lexicographic on To")
	}
}

func TestDecisionValuePanicsOnNoDecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NoDecision.Value should panic")
		}
	}()
	_ = NoDecision.Value()
}

func TestConfigHelpers(t *testing.T) {
	c := NewConfig(ppTestProto{}, []Bit{One, Zero})
	if got := len(c.Operational()); got != 2 {
		t.Errorf("Operational = %d, want 2", got)
	}
	if c.Faulty(0) {
		t.Error("nobody failed yet")
	}
	next, _, err := Apply(ppTestProto{}, c, Event{Proc: 1, Type: Fail})
	if err != nil {
		t.Fatal(err)
	}
	if !next.Faulty(1) || len(next.Operational()) != 1 {
		t.Error("p1 should be faulty")
	}
	if ds := next.Decisions(); ds[0] != NoDecision || ds[1] != NoDecision {
		t.Error("no decisions yet")
	}
	if c.StateKey() == "" || !strings.Contains(c.StateKey(), ";") {
		t.Error("StateKey should join state keys")
	}
	// Failed-state helpers.
	fs := FailedStateFor(2)
	if fs.Kind() != Failed || IsOperational(fs) || IsNonfaulty(fs) {
		t.Error("failed-state helpers wrong")
	}
	if fs.Amnesic() {
		t.Error("failed states are not amnesic")
	}
	if _, ok := fs.Decided(); ok {
		t.Error("failed states are undecided")
	}
}

func TestRunnerRejectsWrongInputLength(t *testing.T) {
	if _, err := RandomRun(ppTestProto{}, []Bit{One}, RunnerOptions{}); err == nil {
		t.Fatal("expected input-length error")
	}
}

func TestBufferKeyAndMessageKey(t *testing.T) {
	var b Buffer
	if b.Key() != "∅" {
		t.Errorf("empty buffer key = %q", b.Key())
	}
	m := Message{ID: MsgID{From: 0, To: 1, Seq: 1}, Payload: echoPayload("x")}
	n := Message{ID: MsgID{From: 0, To: 1, Seq: 2}, Notice: true}
	b = b.Add(m).Add(n)
	if !strings.Contains(b.Key(), "|") {
		t.Error("buffer key should join message keys")
	}
	if !strings.Contains(n.Key(), "failed") || !strings.Contains(n.String(), "failed(p0)") {
		t.Error("notice rendering wrong")
	}
	if !strings.Contains(m.String(), "x") {
		t.Error("message rendering wrong")
	}
}
