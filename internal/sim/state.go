package sim

import "repro/internal/fingerprint"

// State is a processor's local state. Protocol states must be immutable
// values: transition functions return fresh states rather than mutating.
//
// The interface exposes exactly the structure the paper's definitions need:
// the Z_R/Z_S/Z_F partition (Kind), membership in the decision sets Y_0/Y_1
// (Decided), the amnesic states of strong termination (Amnesic), and a
// canonical encoding (Key) so the model checker can hash configurations and
// test the structural state equalities used throughout the proofs
// (e.g. state(p, C_A) = state(p, C_C) in Lemma 4).
type State interface {
	// Kind reports which partition of Z the state belongs to.
	Kind() StateKind

	// Decided reports the decision if the state is in Y_0 or Y_1.
	// Amnesic states report NoDecision: the processor has forgotten the
	// value, remembering only that a decision was made.
	Decided() (Decision, bool)

	// Amnesic reports whether this is an amnesic state (strong
	// termination's "check mark next to the protocol identifier").
	Amnesic() bool

	// Key returns the canonical encoding of the state. Two states are the
	// same local state iff their keys are equal.
	Key() string
}

// failedState is the absorbing failure state z_b. The z_a → z_b two-step
// failure transition of the paper is collapsed into the atomic Fail event
// (see Apply); only z_b is ever observable in a configuration.
type failedState struct{ p ProcID }

var _ State = failedState{}

func (s failedState) Kind() StateKind           { return Failed }
func (s failedState) Decided() (Decision, bool) { return NoDecision, false }
func (s failedState) Amnesic() bool             { return false }
func (s failedState) Key() string               { return "⊥failed(" + s.p.String() + ")" }

// Digest fingerprints the failure state structurally. Failed-state keys
// are determined by the processor index alone, so hashing the index under
// a failure-specific salt preserves key equality without building the key
// string.
func (s failedState) Digest() fingerprint.Digest {
	return fingerprint.OfUint64(uint64(s.p)).Mixed(saltFailed)
}

// failedStates holds pre-boxed failure states so the exploration hot path
// (which injects a failure event per operational processor per node) never
// allocates to produce one.
var failedStates = func() (tab [64]State) {
	for i := range tab {
		tab[i] = failedState{p: ProcID(i)}
	}
	return tab
}()

// FailedStateFor returns the failure state z_b for processor p.
func FailedStateFor(p ProcID) State {
	if p >= 0 && int(p) < len(failedStates) {
		return failedStates[p]
	}
	return failedState{p: p}
}

// IsOperational reports whether a state is neither failed nor halted — the
// states in which the processor still takes steps.
func IsOperational(s State) bool {
	k := s.Kind()
	return k == Receiving || k == Sending
}

// IsNonfaulty reports whether the state is not a failure state. Halted and
// amnesic processors are nonfaulty.
func IsNonfaulty(s State) bool { return s.Kind() != Failed }
