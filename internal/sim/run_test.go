package sim

import (
	"errors"
	"testing"
)

// TestUnfiredInjectionsReported pins the fix for silently dropped failure
// plans: an injection whose AfterStep lies beyond quiescence must come back
// in Run.Unfired instead of vanishing.
func TestUnfiredInjectionsReported(t *testing.T) {
	late := FailureAt{Proc: 0, AfterStep: 1000}
	run, err := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{
		Seed:     1,
		Failures: []FailureAt{{Proc: 1, AfterStep: 0}, late},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.FailureFree() {
		t.Error("the AfterStep=0 injection should have fired")
	}
	if len(run.Unfired) != 1 || run.Unfired[0] != late {
		t.Fatalf("Unfired = %v, want [%v]", run.Unfired, late)
	}
}

func TestAllInjectionsFiredMeansNoUnfired(t *testing.T) {
	run, err := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{
		Seed:     1,
		Failures: []FailureAt{{Proc: 1, AfterStep: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Unfired) != 0 {
		t.Fatalf("Unfired = %v, want none", run.Unfired)
	}
}

func TestChooseCallbackDrivesScheduling(t *testing.T) {
	calls := 0
	run, err := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{
		Choose: func(r *Run, enabled []Event) int {
			calls++
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Choose was never consulted")
	}
	if !run.Final().Quiescent() {
		t.Error("run should quiesce under the first-enabled policy")
	}
}

func TestChooseOutOfRangeAbortsRun(t *testing.T) {
	run, err := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{
		Choose: func(r *Run, enabled []Event) int { return -1 },
	})
	if !errors.Is(err, ErrRunAborted) {
		t.Fatalf("err = %v, want ErrRunAborted", err)
	}
	if run == nil {
		t.Fatal("aborted run must still return the partial run")
	}
	if run.Steps() != 0 {
		t.Fatalf("aborted at first choice but run has %d steps", run.Steps())
	}
}
