package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// Run is a schedule together with its configurations: the paper's notion of
// a run from an initial configuration (an execution). Configs[0] is the
// initial configuration and Configs[i+1] = Schedule[i](Configs[i]).
type Run struct {
	Proto    Protocol
	Schedule Schedule
	Configs  []*Config
	Effects  []Effect
	// Unfired lists the failure injections the scheduler never applied:
	// their AfterStep lies beyond the point where the run quiesced (or was
	// cut off). A sweep that treats such a run as failure-tested would be
	// fooling itself, so RandomRun always reports them.
	Unfired []FailureAt
}

// NewRun returns an empty run positioned at the protocol's initial
// configuration for the given inputs, ready to be grown with Extend. This is
// the entry point for replaying externally recorded schedules (chaos traces,
// live-runtime conformance) one event at a time.
func NewRun(proto Protocol, inputs []Bit) (*Run, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("sim: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	return &Run{Proto: proto, Configs: []*Config{NewConfig(proto, inputs)}}, nil
}

// NewRunOmission is NewRun with an omission-fault policy on the initial
// configuration, for replaying schedules that contain Omit events while
// keeping the policy-aware Key/Fingerprint accounting (replay byte-identity
// checks need it). A zero policy is exactly NewRun.
func NewRunOmission(proto Protocol, inputs []Bit, pol OmissionPolicy) (*Run, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("sim: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	if pol.Enabled() && len(inputs) > maxOmissionProcs {
		return nil, fmt.Errorf("sim: omission policies support at most %d processors, got %d", maxOmissionProcs, len(inputs))
	}
	return &Run{Proto: proto, Configs: []*Config{NewConfigOmission(proto, inputs, pol)}}, nil
}

// Final returns the last configuration of the run.
func (r *Run) Final() *Config { return r.Configs[len(r.Configs)-1] }

// Initial returns the initial configuration of the run.
func (r *Run) Initial() *Config { return r.Configs[0] }

// Steps returns the number of events in the run.
func (r *Run) Steps() int { return len(r.Schedule) }

// FailureFree reports whether the run contains no crash-failure events.
// Omission faults are counted separately; see Omissions and OmissionFaulty.
func (r *Run) FailureFree() bool {
	for _, e := range r.Schedule {
		if e.Type == Fail {
			return false
		}
	}
	return true
}

// Omissions returns the number of Omit events in the run.
func (r *Run) Omissions() int {
	n := 0
	for _, e := range r.Schedule {
		if e.Type == Omit {
			n++
		}
	}
	return n
}

// OmissionFaulty reports whether some delivery to processor p was
// suppressed by an Omit event in the run. Such a processor is
// receive-omission faulty, and termination validators exempt it the way
// they exempt crashed processors.
func (r *Run) OmissionFaulty(p ProcID) bool {
	for _, e := range r.Schedule {
		if e.Type == Omit && e.Proc == p {
			return true
		}
	}
	return false
}

// Nonfaulty reports whether processor p never occupies a failed state in the
// run.
func (r *Run) Nonfaulty(p ProcID) bool {
	return r.Final().States[p].Kind() != Failed
}

// Deciding reports whether every nonfaulty processor enters a decision state
// at some point in the run (the paper's "deciding run"). Amnesic states
// count as having decided: the processor passed through a decision state.
func (r *Run) Deciding() bool {
	for p := 0; p < r.Final().N(); p++ {
		if !r.Nonfaulty(ProcID(p)) {
			continue
		}
		if _, ok := r.DecisionOf(ProcID(p)); !ok {
			return false
		}
	}
	return true
}

// DecisionOf returns the decision processor p made at any point during the
// run, scanning the configuration history so that decisions later hidden by
// amnesia or failure are still observed. This is the "ever decides" notion
// total consistency constrains.
func (r *Run) DecisionOf(p ProcID) (Decision, bool) {
	for _, c := range r.Configs {
		if d, ok := c.States[p].Decided(); ok {
			return d, true
		}
	}
	return NoDecision, false
}

// MessagesSent returns the number of non-notice messages sent in the run —
// the message complexity measure of the introduction.
func (r *Run) MessagesSent() int {
	n := 0
	for _, eff := range r.Effects {
		for _, m := range eff.Sent {
			if !m.Notice {
				n++
			}
		}
	}
	return n
}

// StepsOf returns the number of events processor p took in the run (its
// per-processor step count, the measure of Theorem 7's O(N²) bound).
func (r *Run) StepsOf(p ProcID) int {
	n := 0
	for _, e := range r.Schedule {
		if e.Proc == p {
			n++
		}
	}
	return n
}

// Extend applies further events to the run in place.
func (r *Run) Extend(sched Schedule) error {
	for _, e := range sched {
		next, eff, err := Apply(r.Proto, r.Final(), e)
		if err != nil {
			return err
		}
		r.Schedule = append(r.Schedule, e)
		r.Configs = append(r.Configs, next)
		r.Effects = append(r.Effects, eff)
	}
	return nil
}

// FailureAt schedules a failure injection: processor Proc fails immediately
// after the AfterStep-th event of the run (0 = before anything happens).
type FailureAt struct {
	Proc      ProcID
	AfterStep int
}

// RunnerOptions configures the random fair scheduler.
type RunnerOptions struct {
	// Seed seeds the scheduler's PRNG; equal seeds give equal runs.
	Seed int64
	// MaxSteps bounds the run length as a safety net against
	// non-quiescing protocols. Zero means the default of 100_000.
	MaxSteps int
	// Failures injects fail-stop failures at fixed points in the run.
	Failures []FailureAt
	// Omission attaches an omission-fault policy to the run: within its
	// budget, Omit events are enumerated alongside deliveries and the
	// scheduler (or Choose) may pick them. The zero policy disables
	// omissions.
	Omission OmissionPolicy
	// Choose, if non-nil, replaces the PRNG's uniform event choice: it is
	// called with the run so far and the enabled events and must return
	// the index of the event to apply. Returning an out-of-range index
	// aborts the run with ErrRunAborted (the partial run is still
	// returned), which is how chaos sweeps cut off runs on cancellation.
	Choose func(run *Run, enabled []Event) int
}

// ErrRunAborted reports that a Choose callback cut the run short; the
// partial run accompanies the error.
var ErrRunAborted = errors.New("sim: run aborted by scheduler callback")

// ErrStepBudget reports that a run hit MaxSteps without quiescing; the
// partial run accompanies the error.
var ErrStepBudget = errors.New("sim: run did not quiesce within the step budget")

// RandomRun executes the protocol on the given inputs under a fair random
// scheduler until the configuration is quiescent (or MaxSteps is hit),
// returning the complete run. Fairness holds with probability 1: every
// enabled event is chosen uniformly, so no buffered message is discriminated
// against forever.
//
// Failure injections whose AfterStep lies beyond quiescence (or beyond the
// cutoff) never fire; they are reported in the returned Run's Unfired field
// rather than silently dropped.
func RandomRun(proto Protocol, inputs []Bit, opts RunnerOptions) (*Run, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("sim: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000
	}
	var rng *rand.Rand
	if opts.Choose == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	if opts.Omission.Enabled() && len(inputs) > maxOmissionProcs {
		return nil, fmt.Errorf("sim: omission policies support at most %d processors, got %d", maxOmissionProcs, len(inputs))
	}
	c := NewConfigOmission(proto, inputs, opts.Omission)
	run := &Run{Proto: proto, Configs: []*Config{c}}

	injected := make([]bool, len(opts.Failures))
	// recordUnfired notes, at any exit point, which injections never got
	// their turn. An injection "handled" because its target had already
	// failed counts as fired: the intended failure is in the run.
	recordUnfired := func() {
		for i, f := range opts.Failures {
			if !injected[i] {
				run.Unfired = append(run.Unfired, f)
			}
		}
	}
	// injectFailures fires every failure scheduled at or before the given
	// count of normal (non-failure) events.
	injectFailures := func(normalSteps int) error {
		for i, f := range opts.Failures {
			if injected[i] || f.AfterStep > normalSteps {
				continue
			}
			injected[i] = true
			if run.Final().States[f.Proc].Kind() == Failed {
				continue
			}
			if err := run.Extend(Schedule{{Proc: f.Proc, Type: Fail}}); err != nil {
				return err
			}
		}
		return nil
	}

	for step := 0; step < maxSteps; step++ {
		if err := injectFailures(step); err != nil {
			recordUnfired()
			return run, err
		}
		enabled := Enabled(run.Final())
		if len(enabled) == 0 {
			recordUnfired()
			return run, nil
		}
		var idx int
		if opts.Choose != nil {
			idx = opts.Choose(run, enabled)
			if idx < 0 || idx >= len(enabled) {
				recordUnfired()
				return run, ErrRunAborted
			}
		} else {
			idx = rng.Intn(len(enabled))
		}
		if err := run.Extend(Schedule{enabled[idx]}); err != nil {
			recordUnfired()
			return run, err
		}
	}
	recordUnfired()
	if !run.Final().Quiescent() {
		return run, fmt.Errorf("%w: %s after %d steps", ErrStepBudget, proto.Name(), maxSteps)
	}
	return run, nil
}
