package sim

// Protocol is a consensus protocol: a set of N deterministic processors, each
// specified by a state transition function δ_p (Receive) and a sending
// function β_p (SendStep), as in Section 3 of the paper.
//
// Protocol implementations must be pure: transition functions may not mutate
// their arguments and must return the same result for the same (state,
// message) pair. All nondeterminism belongs to the schedule.
type Protocol interface {
	// Name identifies the protocol in traces and experiment output.
	Name() string

	// N returns the number of participating processors.
	N() int

	// Init returns the initial state of processor p with initial bit
	// input — the paper's z_0 or z_1 — in a system of n processors.
	Init(p ProcID, input Bit, n int) State

	// Receive is the transition function δ_p restricted to receiving
	// states: it consumes one message (possibly a failure notice) and
	// returns the successor state.
	Receive(p ProcID, s State, m Message) State

	// SendStep is the sending step for sending states: it returns the
	// successor state and at most one envelope (β_p sends at most one
	// message per normal step). Envelopes addressed to p itself are
	// rejected by Apply — processors may not send to themselves.
	SendStep(p ProcID, s State) (State, []Envelope)
}

// DecisionFunc computes the failure-free decision a protocol should reach on
// the given inputs; used by tests and the E̅-elimination transform, which is
// only decision-preserving when the failure-free decision is a function of
// the inputs alone (true of unanimity, Section 3).
type DecisionFunc func(inputs []Bit) Decision

// Unanimity is the unanimity decision function: commit iff every initial bit
// is 1.
func Unanimity(inputs []Bit) Decision {
	for _, b := range inputs {
		if b == Zero {
			return Abort
		}
	}
	return Commit
}

// AllInputs enumerates every input vector of length n in lexicographic
// order — 2^n vectors — for exhaustive checking.
func AllInputs(n int) [][]Bit {
	total := 1 << n
	out := make([][]Bit, 0, total)
	for mask := 0; mask < total; mask++ {
		v := make([]Bit, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v[i] = One
			}
		}
		out = append(out, v)
	}
	return out
}

// InputsFromString parses a vector like "1011" into bits. Any rune other
// than '1' is Zero only if it is '0'; other runes are rejected.
func InputsFromString(s string) ([]Bit, error) {
	out := make([]Bit, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			out = append(out, Zero)
		case '1':
			out = append(out, One)
		default:
			return nil, &InvalidInputError{Input: s}
		}
	}
	return out, nil
}

// InvalidInputError reports a malformed input-vector string.
type InvalidInputError struct{ Input string }

func (e *InvalidInputError) Error() string {
	return "sim: invalid input vector " + e.Input + " (want only '0' and '1')"
}
