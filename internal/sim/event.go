package sim

import (
	"errors"
	"fmt"
)

// EventType distinguishes the three kinds of step in the model.
type EventType int

const (
	// Deliver is the event (p, µ): receipt of buffered message µ by p.
	Deliver EventType = iota + 1
	// SendStep is the event (p, ∅): p takes a sending step.
	SendStepEvent
	// Fail is the event (p, f): p fails, broadcasting failure notices.
	Fail
	// Omit is the omission-fault event (p, µ̸): the adversary suppresses
	// the delivery of buffered message µ to p. The message is consumed —
	// it leaves the buffer exactly as a delivery would — but Receive never
	// fires, so p's state is unchanged and p learns nothing. Omit events
	// are enumerated only under an enabled OmissionPolicy.
	Omit
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Deliver:
		return "deliver"
	case SendStepEvent:
		return "send"
	case Fail:
		return "fail"
	case Omit:
		return "omit"
	default:
		return "invalid"
	}
}

// Event is a schedule element: an event (p, µ) with µ a buffered message, ∅
// (a sending step), or f (a failure).
type Event struct {
	Proc ProcID
	Type EventType
	// Msg identifies the delivered message for Deliver events.
	Msg MsgID
}

// String renders the event for traces.
func (e Event) String() string {
	switch e.Type {
	case Deliver:
		return fmt.Sprintf("%s receives %s", e.Proc, e.Msg)
	case SendStepEvent:
		return fmt.Sprintf("%s sends", e.Proc)
	case Fail:
		return fmt.Sprintf("%s fails", e.Proc)
	case Omit:
		return fmt.Sprintf("%s omits %s", e.Proc, e.Msg)
	default:
		return "invalid event"
	}
}

// Schedule is a finite sequence of events, applied in turn.
type Schedule []Event

// Errors returned by Apply.
var (
	// ErrNotApplicable reports an event that is not applicable to the
	// configuration (wrong state kind, message not buffered, or a step by
	// a failed/halted processor).
	ErrNotApplicable = errors.New("sim: event not applicable to configuration")
	// ErrSelfSend reports a protocol emitting a message to its own sender;
	// the model forbids processors from sending to themselves.
	ErrSelfSend = errors.New("sim: protocol sent a message to its own sender")
	// ErrMultiSend reports a sending step that emitted more than one
	// message; β sends at most one message per normal step.
	ErrMultiSend = errors.New("sim: sending step emitted more than one message")
	// ErrRevokedDecision reports a transition out of a decision state into
	// a state with a different visible decision; decisions are
	// irreversible (amnesic states are the one permitted exit).
	ErrRevokedDecision = errors.New("sim: protocol revoked a decision")
)

// Applicable reports whether the event can be applied to the configuration
// under the rules of Section 3.
func Applicable(c *Config, e Event) bool {
	if int(e.Proc) < 0 || int(e.Proc) >= c.N() {
		return false
	}
	s := c.States[e.Proc]
	switch e.Type {
	case Fail:
		// Any non-failed processor (including a halted one) may fail.
		return s.Kind() != Failed
	case SendStepEvent:
		return s.Kind() == Sending
	case Deliver:
		if s.Kind() != Receiving {
			return false
		}
		_, ok := c.Buffers[e.Proc].Find(e.Msg)
		return ok
	case Omit:
		// Structurally applicable whenever the message is buffered and the
		// target has not crashed (a halted target is fine: the live runtime
		// can suppress a delivery racing a halt, and replay must accept it).
		// Budget and mobility constraints are enforced where events are
		// *enumerated* (AppendEnabled), not here, for the same reason.
		if s.Kind() == Failed {
			return false
		}
		_, ok := c.Buffers[e.Proc].Find(e.Msg)
		return ok
	default:
		return false
	}
}

// Effect describes what applying one event did: the messages placed into
// buffers (sends and failure notices), the message consumed by a delivery,
// and the message an omission suppressed. Pattern extraction consumes
// effects.
type Effect struct {
	Event    Event
	Sent     []Message
	Received *Message
	// Omitted is the message an Omit event consumed without delivering.
	Omitted *Message
}

// Apply applies event e to configuration c, returning the successor
// configuration e(C) and the effect. c is not mutated. Apply enforces the
// model's validity conditions and returns an error if the protocol violates
// them; scheduling errors (inapplicable events) return ErrNotApplicable.
func Apply(proto Protocol, c *Config, e Event) (*Config, Effect, error) {
	if !Applicable(c, e) {
		return nil, Effect{}, fmt.Errorf("%w: %s", ErrNotApplicable, e)
	}
	next := c.Clone()
	eff := Effect{Event: e}
	p := e.Proc

	switch e.Type {
	case Fail:
		// The paper models failure as two steps: enter z_a, broadcast
		// failed(p) to P−{p}, then move to the absorbing z_b. We apply
		// both atomically; the intermediate z_a is never observable in
		// our configurations, and the net effect — notices everywhere,
		// no further sends, no restart — is identical.
		next.setState(p, FailedStateFor(p))
		next.noteFail(p)
		for q := 0; q < next.N(); q++ {
			if ProcID(q) == p {
				continue
			}
			m := Message{
				ID:     MsgID{From: p, To: ProcID(q), Seq: next.nextSeq(p, ProcID(q))},
				Notice: true,
			}.Memoized()
			next.addMessage(ProcID(q), m)
			eff.Sent = append(eff.Sent, m)
		}
		return next, eff, nil

	case SendStepEvent:
		s2, envs := proto.SendStep(p, c.States[p])
		if len(envs) > 1 {
			return nil, Effect{}, fmt.Errorf("%w: %s emitted %d messages", ErrMultiSend, p, len(envs))
		}
		if err := checkTransition(c.States[p], s2); err != nil {
			return nil, Effect{}, fmt.Errorf("%s send step: %w", p, err)
		}
		next.setState(p, s2)
		for _, env := range envs {
			if env.To == p {
				return nil, Effect{}, fmt.Errorf("%w: from %s", ErrSelfSend, p)
			}
			if int(env.To) < 0 || int(env.To) >= next.N() {
				return nil, Effect{}, fmt.Errorf("sim: %s sent to out-of-range %s", p, env.To)
			}
			m := Message{
				ID:      MsgID{From: p, To: env.To, Seq: next.nextSeq(p, env.To)},
				Payload: env.Payload,
			}.Memoized()
			next.addMessage(env.To, m)
			eff.Sent = append(eff.Sent, m)
		}
		return next, eff, nil

	case Deliver:
		m, _ := c.Buffers[p].Find(e.Msg)
		s2 := proto.Receive(p, c.States[p], m)
		if err := checkTransition(c.States[p], s2); err != nil {
			return nil, Effect{}, fmt.Errorf("%s receiving %s: %w", p, m.ID, err)
		}
		next.setState(p, s2)
		next.removeMessage(p, m)
		next.noteDeliver(p)
		eff.Received = &m
		return next, eff, nil

	case Omit:
		m, _ := c.Buffers[p].Find(e.Msg)
		next.removeMessage(p, m)
		next.noteOmit(p)
		eff.Omitted = &m
		return next, eff, nil
	}
	return nil, Effect{}, fmt.Errorf("%w: %s", ErrNotApplicable, e)
}

// checkTransition enforces decision irrevocability: once a processor enters a
// state in Y_v it remains in Y_v, except that strong termination permits
// moving from a decision state into an amnesic state.
func checkTransition(from, to State) error {
	d1, ok1 := from.Decided()
	if !ok1 {
		return nil
	}
	if to.Amnesic() {
		return nil
	}
	d2, ok2 := to.Decided()
	if !ok2 || d1 != d2 {
		return fmt.Errorf("%w: %s → %s", ErrRevokedDecision, d1, to.Key())
	}
	return nil
}

// Enabled returns every applicable non-crash event of the configuration:
// one SendStep per sending processor, one Deliver per (receiving
// processor, buffered message) pair, and — under an enabled omission
// policy with budget remaining — one Omit per such pair. Crash-failure
// events are enumerated separately by callers that inject failures.
func Enabled(c *Config) []Event {
	return AppendEnabled(nil, c)
}

// AppendEnabled appends the enabled non-failure events to dst and returns
// it, so hot loops can reuse one scratch slice across configurations.
func AppendEnabled(dst []Event, c *Config) []Event {
	for p, s := range c.States {
		switch s.Kind() {
		case Sending:
			dst = append(dst, Event{Proc: ProcID(p), Type: SendStepEvent})
		case Receiving:
			buf := c.Buffers[p]
			for i := range buf {
				dst = append(dst, Event{Proc: ProcID(p), Type: Deliver, Msg: buf[i].ID})
			}
			// Under an enabled omission policy with budget remaining, the
			// adversary may suppress any deliverable message instead of
			// delivering it. Omissions targeting halted processors are not
			// enumerated: they consume budget without changing any
			// reachable behaviour.
			if c.omitAllowed(ProcID(p)) {
				for i := range buf {
					dst = append(dst, Event{Proc: ProcID(p), Type: Omit, Msg: buf[i].ID})
				}
			}
		}
	}
	return dst
}

// ApplySchedule applies a whole schedule to a configuration, returning the
// final configuration and the per-event effects. It stops at the first
// inapplicable event.
func ApplySchedule(proto Protocol, c *Config, sched Schedule) (*Config, []Effect, error) {
	effects := make([]Effect, 0, len(sched))
	cur := c
	for i, e := range sched {
		next, eff, err := Apply(proto, cur, e)
		if err != nil {
			return cur, effects, fmt.Errorf("event %d: %w", i, err)
		}
		effects = append(effects, eff)
		cur = next
	}
	return cur, effects, nil
}
