// Package sim implements the formal model of computation from Section 3 of
// Dwork & Skeen, "Patterns of Communication in Consensus Protocols" (PODC 1984):
// a completely asynchronous message-passing system of N fail-stop processors.
//
// Processors are deterministic state machines. At each step a processor either
// receives one message (a receiving step, governed by the protocol's transition
// function δ) or sends at most one message (a sending step, governed by the
// sending function β). A third kind of step, a failure step, halts the
// processor permanently and broadcasts a detectable failure notice to every
// other processor.
//
// The message system is asynchronous, faultless, and fair: buffers are
// unordered multisets, delivery delays are arbitrary but finite, and no
// message is discriminated against forever. The only nondeterminism in the
// model is the schedule — the order in which applicable events are applied —
// which is exactly the nondeterminism the paper's communication patterns
// quantify over.
package sim

import (
	"fmt"
	"strconv"

	"repro/internal/fingerprint"
)

// ProcID identifies a processor p_i, 0 ≤ i < N.
type ProcID int

// String returns the paper's "p<i>" notation.
func (p ProcID) String() string { return "p" + strconv.Itoa(int(p)) }

// Bit is a processor's initial value (the paper's input_i register).
type Bit uint8

const (
	// Zero is the initial bit 0 (the "abort"-biased input under unanimity).
	Zero Bit = 0
	// One is the initial bit 1 (the "commit"-biased input under unanimity).
	One Bit = 1
)

// Decision is the irreversible outcome a processor may reach. Under the
// unanimity rule the paper names the two decisions "abort" (value 0) and
// "commit" (value 1).
type Decision int

const (
	// NoDecision means the processor has not (visibly) decided.
	NoDecision Decision = iota
	// Abort is the decision on value 0.
	Abort
	// Commit is the decision on value 1.
	Commit
)

// String renders the decision in the paper's vocabulary.
func (d Decision) String() string {
	switch d {
	case Abort:
		return "abort"
	case Commit:
		return "commit"
	default:
		return "undecided"
	}
}

// Value returns the binary value decided on. It panics for NoDecision, which
// has no value; callers must check first.
func (d Decision) Value() Bit {
	switch d {
	case Abort:
		return Zero
	case Commit:
		return One
	default:
		panic("sim: NoDecision has no value")
	}
}

// DecisionFor maps a binary value to its decision: 1 ⇒ commit, 0 ⇒ abort.
func DecisionFor(v Bit) Decision {
	if v == One {
		return Commit
	}
	return Abort
}

// StateKind partitions the state set Z as in the paper: Z_S (operational
// sending states), Z_R (operational receiving states), and Z_F (failed
// states). We additionally distinguish halted states — operational states in
// which the processor has completed its role and neither sends nor receives —
// because halting termination (HT) is one of the taxonomy's axes.
type StateKind int

const (
	// Receiving states accept message deliveries (δ applies); β is ∅.
	Receiving StateKind = iota + 1
	// Sending states take send steps (β applies); no messages are received.
	Sending
	// Halted states take no further steps; a halted processor may still fail.
	Halted
	// Failed is the absorbing failure state z_b.
	Failed
)

// String names the state kind.
func (k StateKind) String() string {
	switch k {
	case Receiving:
		return "receiving"
	case Sending:
		return "sending"
	case Halted:
		return "halted"
	case Failed:
		return "failed"
	default:
		return "invalid"
	}
}

// Payload is a protocol-defined message body. Payloads must be immutable
// values with a canonical Key: two payloads are the same message content if
// and only if their keys are equal. Keys feed configuration hashing, so they
// must be deterministic.
type Payload interface {
	// Key returns the canonical encoding of the payload.
	Key() string
}

// MsgID is the paper's representation of a message for the purposes of the
// communication pattern: the triple (p, q, k) meaning the k-th message sent
// from p to q. Sequence numbers start at 1 and count failure notices too, so
// triples are unique within an execution.
type MsgID struct {
	From ProcID
	To   ProcID
	Seq  int
}

// String renders the triple as "(p,q,k)". Built by hand rather than with
// fmt: message keys are computed once per sent message on the exploration
// hot path.
func (id MsgID) String() string {
	buf := make([]byte, 0, 24)
	buf = append(buf, '(', 'p')
	buf = strconv.AppendInt(buf, int64(id.From), 10)
	buf = append(buf, ',', 'p')
	buf = strconv.AppendInt(buf, int64(id.To), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(id.Seq), 10)
	buf = append(buf, ')')
	return string(buf)
}

// Less orders triples lexicographically, giving patterns a canonical
// enumeration order. It is unrelated to the causal order.
func (id MsgID) Less(other MsgID) bool {
	if id.From != other.From {
		return id.From < other.From
	}
	if id.To != other.To {
		return id.To < other.To
	}
	return id.Seq < other.Seq
}

// Message is a concrete in-flight message: an identified triple plus its
// payload. Failure notices — the "failed(p)" messages broadcast by a failure
// step — carry a nil payload and Notice=true.
//
// Messages created by Apply are memoized: their canonical key and digest
// are computed once at send time and cached on the struct, so the hot
// exploration path never recomputes them. Hand-built messages (tests,
// transforms) work too — Key and Digest fall back to computing on demand.
type Message struct {
	ID      MsgID
	Payload Payload
	// Notice marks a failure notice failed(From).
	Notice bool

	key    string
	digest fingerprint.Digest
}

// Key canonically encodes the message for buffer hashing. The cached copy
// is returned when the message was memoized at send time.
func (m Message) Key() string {
	if m.key != "" {
		return m.key
	}
	return m.computeKey()
}

func (m Message) computeKey() string {
	if m.Notice {
		return m.ID.String() + ":failed"
	}
	return m.ID.String() + ":" + m.Payload.Key()
}

// Digest fingerprints the message structurally: the triple, the notice
// flag, and the payload key. Equal message keys yield equal digests.
func (m Message) Digest() fingerprint.Digest {
	if !m.digest.IsZero() {
		return m.digest
	}
	return m.computeDigest()
}

func (m Message) computeDigest() fingerprint.Digest {
	if m.Notice {
		return msgDigestParts(m.ID.From, m.ID.To, m.ID.Seq, true, "")
	}
	return msgDigestParts(m.ID.From, m.ID.To, m.ID.Seq, false, m.Payload.Key())
}

// msgDigestParts fingerprints a message from its parts, without requiring a
// Payload value — the payload is represented by its canonical key. It is the
// single encoding both Message.Digest and the transition cache use, so a
// digest reconstructed from cached parts matches the one Apply memoizes.
func msgDigestParts(from, to ProcID, seq int, notice bool, payloadKey string) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(uint64(from)<<32 | uint64(uint32(to)))
	h.WriteUint64(uint64(seq))
	if notice {
		h.WriteUint64(1)
	} else {
		h.WriteUint64(2)
		h.WriteString(payloadKey)
	}
	return h.Sum()
}

// Memoized returns a copy of the message with its key and digest
// precomputed and cached. Apply memoizes every message it sends.
func (m Message) Memoized() Message {
	m.key = m.computeKey()
	m.digest = m.computeDigest()
	return m
}

// String renders the message for traces.
func (m Message) String() string {
	if m.Notice {
		return fmt.Sprintf("%s failed(%s)", m.ID, m.ID.From)
	}
	return fmt.Sprintf("%s %s", m.ID, m.Payload.Key())
}

// Envelope is what a sending step emits before the simulator assigns a
// sequence number: a destination and a payload. The paper forbids a processor
// from sending to itself; Apply rejects such envelopes.
type Envelope struct {
	To      ProcID
	Payload Payload
}
