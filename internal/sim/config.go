package sim

import (
	"strings"

	"repro/internal/fingerprint"
)

// Buffer is a processor's unordered message buffer: the multiset of messages
// sent to it but not yet received. It is kept sorted by message key so that
// configuration hashing is canonical; sortedness is an encoding detail, not
// an ordering guarantee (delivery picks any element).
//
// Buffers are persistent: Add and Remove return a fresh exactly-sized
// buffer and never mutate the receiver, so configurations can share buffer
// slices freely (Clone copies only headers). The *Into variants accept a
// caller-owned destination and reuse its capacity, for call sites that can
// recycle scratch.
type Buffer []Message

// search returns the insertion slot for key: the first index whose message
// key is not below it. Buffers are sorted by key, so this is a binary
// search.
func (b Buffer) search(key string) int {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].Key() < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add inserts a message, preserving canonical order, and returns the new
// buffer. The receiver is not mutated; callers must use the return value.
func (b Buffer) Add(m Message) Buffer {
	return b.addInto(make(Buffer, len(b)+1), m)
}

// AddInto is Add writing into dst, reusing dst's capacity when it
// suffices. The returned buffer aliases dst; the receiver is not mutated.
func (b Buffer) AddInto(dst Buffer, m Message) Buffer {
	if cap(dst) < len(b)+1 {
		dst = make(Buffer, len(b)+1)
	} else {
		dst = dst[:len(b)+1]
	}
	return b.addInto(dst, m)
}

func (b Buffer) addInto(out Buffer, m Message) Buffer {
	i := b.search(m.Key())
	copy(out, b[:i])
	out[i] = m
	copy(out[i+1:], b[i:])
	return out
}

// Remove deletes one occurrence of the message with the given ID and returns
// the new buffer plus whether it was present. Removal by bare ID cannot
// binary-search (buffers sort by full key, and ID order is not key-prefix
// order), so this is a single linear pass; use RemoveMsg when the full
// message is at hand.
func (b Buffer) Remove(id MsgID) (Buffer, bool) {
	for i := range b {
		if b[i].ID == id {
			return b.removeAt(i, make(Buffer, len(b)-1)), true
		}
	}
	return b, false
}

// RemoveMsg deletes one occurrence of message m, located by binary search
// on its key, and returns the new buffer plus whether it was present.
func (b Buffer) RemoveMsg(m Message) (Buffer, bool) {
	i := b.search(m.Key())
	if i >= len(b) || b[i].ID != m.ID {
		return b, false
	}
	return b.removeAt(i, make(Buffer, len(b)-1)), true
}

// RemoveMsgInto is RemoveMsg writing into dst, reusing dst's capacity when
// it suffices. The returned buffer aliases dst; the receiver is not
// mutated.
func (b Buffer) RemoveMsgInto(dst Buffer, m Message) (Buffer, bool) {
	i := b.search(m.Key())
	if i >= len(b) || b[i].ID != m.ID {
		return b, false
	}
	if cap(dst) < len(b)-1 {
		dst = make(Buffer, len(b)-1)
	} else {
		dst = dst[:len(b)-1]
	}
	return b.removeAt(i, dst), true
}

func (b Buffer) removeAt(i int, out Buffer) Buffer {
	copy(out, b[:i])
	copy(out[i:], b[i+1:])
	return out
}

// Find returns the buffered message with the given ID.
func (b Buffer) Find(id MsgID) (Message, bool) {
	for _, m := range b {
		if m.ID == id {
			return m, true
		}
	}
	return Message{}, false
}

// Key canonically encodes the buffer contents.
func (b Buffer) Key() string {
	if len(b) == 0 {
		return "∅"
	}
	parts := make([]string, len(b))
	for i, m := range b {
		parts[i] = m.Key()
	}
	return strings.Join(parts, "|")
}

// Digest fingerprints the buffer as an unsalted multiset sum of its
// messages' digests. Callers mix the result (or the per-message terms)
// under a buffer-position salt before folding it into a configuration
// fingerprint.
func (b Buffer) Digest() fingerprint.Digest {
	var d fingerprint.Digest
	for i := range b {
		d = d.Add(b[i].Digest())
	}
	return d
}

// Config is a configuration as defined in Section 3: the N local states and
// the N buffer contents. Inputs records the initial bits (they determine the
// initial configuration and are consulted by decision-rule validators), and
// seq tracks the next sequence number on each directed channel so that
// message triples (p,q,k) are assigned deterministically.
type Config struct {
	States  []State
	Buffers []Buffer
	Inputs  []Bit
	seq     []int // seq[from*n+to] = messages sent from→to so far

	// Omission-fault accounting, live only when pol.Enabled(). omitsUsed
	// counts Omit events on the path to this configuration; omitFaulty is
	// the bitmask of currently omission-faulty processors (mobile model);
	// omitTargets is the bitmask of processors ever targeted. All three
	// fold into Key and Fingerprint when the policy is enabled — two
	// configurations with equal states and buffers but different remaining
	// budgets or faulty sets have different futures and must not
	// deduplicate — and contribute nothing when it is disabled, so
	// pre-omission hashes are unchanged.
	pol         OmissionPolicy
	omitsUsed   int
	omitFaulty  uint64
	omitTargets uint64

	// Incremental fingerprint cache. Once Fingerprint is first called on a
	// configuration, fp and the unmixed per-processor state digests are
	// maintained across Apply, so successors derive their fingerprint from
	// the parent's by updating only the changed contributions. fpOK false
	// means the cache is cold and fingerprints are recomputed on demand;
	// execution paths that never ask for fingerprints (random runs, chaos
	// replay) pay nothing.
	fp     fingerprint.Digest
	stateD []fingerprint.Digest
	fpOK   bool
}

// NewConfig builds the initial configuration of a protocol on the given
// inputs: each processor starts in Init(p, inputs[p]) — the paper's z_0 or
// z_1 states — and every buffer is empty.
func NewConfig(proto Protocol, inputs []Bit) *Config {
	n := len(inputs)
	c := &Config{
		States:  make([]State, n),
		Buffers: make([]Buffer, n),
		Inputs:  append([]Bit(nil), inputs...),
		seq:     make([]int, n*n),
	}
	for p := range c.States {
		c.States[p] = proto.Init(ProcID(p), inputs[p], n)
	}
	return c
}

// NewConfigOmission is NewConfig with an omission-fault policy attached:
// the configuration enumerates Omit events (within budget) and folds its
// omission accounting into Key and Fingerprint. A zero policy is exactly
// NewConfig. Panics if the policy is enabled with more than 64 processors
// (the faulty and target sets are single-word bitmasks).
func NewConfigOmission(proto Protocol, inputs []Bit, pol OmissionPolicy) *Config {
	if pol.Enabled() && len(inputs) > maxOmissionProcs {
		panic("sim: omission policies support at most 64 processors")
	}
	c := NewConfig(proto, inputs)
	c.pol = pol
	return c
}

// N returns the number of processors.
func (c *Config) N() int { return len(c.States) }

// Clone returns an independent copy of the configuration. States and
// messages are immutable values, so only the containers are copied; the
// Inputs vector never changes after NewConfig and is shared outright.
func (c *Config) Clone() *Config {
	out := &Config{
		States:      append([]State(nil), c.States...),
		Buffers:     make([]Buffer, len(c.Buffers)),
		Inputs:      c.Inputs,
		seq:         append([]int(nil), c.seq...),
		pol:         c.pol,
		omitsUsed:   c.omitsUsed,
		omitFaulty:  c.omitFaulty,
		omitTargets: c.omitTargets,
		fp:          c.fp,
		fpOK:        c.fpOK,
	}
	copy(out.Buffers, c.Buffers) // buffers are persistent; Add/Remove copy
	if c.fpOK {
		out.stateD = append([]fingerprint.Digest(nil), c.stateD...)
	}
	return out
}

// WithoutDeadBuffers returns a derived configuration whose dead letters are
// erased: the buffers of failed and halted processors become empty. Such
// processors are never again in a receiving state (Halted takes no further
// steps and may only fail; Failed is absorbing), so their buffered messages
// can never be delivered and no event reads them — they are inert. The
// erased view is a sound dedup handle: two configurations that differ only
// in dead letters are bisimilar, and because a channel toward a dead
// processor never carries a deliverable message again, the sequence-counter
// drift the erased history hides can never resurface in a live buffer.
//
// The second result reports whether anything was erased; when nothing was,
// the receiver itself is returned unchanged and unaliased state is not
// allocated. The derived configuration shares the receiver's states,
// inputs, and live buffers, carries no fingerprint cache, and must be used
// only for Key/Fingerprint computation, never stepped.
func (c *Config) WithoutDeadBuffers() (*Config, bool) {
	erase := false
	for p, s := range c.States {
		if len(c.Buffers[p]) > 0 {
			if k := s.Kind(); k == Failed || k == Halted {
				erase = true
				break
			}
		}
	}
	if !erase {
		return c, false
	}
	out := &Config{
		States:      c.States,
		Buffers:     make([]Buffer, len(c.Buffers)),
		Inputs:      c.Inputs,
		pol:         c.pol,
		omitsUsed:   c.omitsUsed,
		omitFaulty:  c.omitFaulty,
		omitTargets: c.omitTargets,
	}
	for p, s := range c.States {
		if k := s.Kind(); k != Failed && k != Halted {
			out.Buffers[p] = c.Buffers[p]
		}
	}
	return out, true
}

// SameChannelSeqs reports whether two configurations carry identical
// per-channel sequence counters. Key and Fingerprint deliberately exclude
// the counters, so content-equal configurations can still disagree on the
// identities future messages would get; callers that want to reuse work
// computed from one configuration on behalf of another (the canonical
// replay's prefetch check) must compare the counters explicitly.
func (c *Config) SameChannelSeqs(d *Config) bool {
	if len(c.seq) != len(d.seq) {
		return false
	}
	for i := range c.seq {
		if c.seq[i] != d.seq[i] {
			return false
		}
	}
	return true
}

// nextSeq allocates the next sequence number from→to.
func (c *Config) nextSeq(from, to ProcID) int {
	i := int(from)*c.N() + int(to)
	c.seq[i]++
	return c.seq[i]
}

// Fingerprint returns the configuration's 128-bit fingerprint: the salted
// sum of the inputs digest, each processor's state digest, and each
// buffered message's digest. It covers exactly what Key covers — states,
// buffer multisets, inputs — and, like Key, excludes channel sequence
// counters, so fingerprint equality tracks key equality. The first call
// warms the incremental cache; Apply keeps it warm on successors.
func (c *Config) Fingerprint() fingerprint.Digest {
	if !c.fpOK {
		c.initFingerprint()
	}
	return c.fp
}

func (c *Config) initFingerprint() {
	n := c.N()
	c.stateD = make([]fingerprint.Digest, n)
	fp := inputsDigest(c.Inputs).Mixed(saltInputs)
	if c.pol.Enabled() {
		fp = fp.Add(c.omissionTerm())
	}
	for p := 0; p < n; p++ {
		d := StateDigest(c.States[p])
		c.stateD[p] = d
		fp = fp.Add(d.Mixed(saltStateBase + uint64(p)))
		buf := c.Buffers[p]
		for i := range buf {
			fp = fp.Add(buf[i].Digest().Mixed(saltBufferBase + uint64(p)))
		}
	}
	c.fp = fp
	c.fpOK = true
}

// StateDigestAt returns the digest of processor p's local state from the
// fingerprint cache, warming the cache if needed. It lets callers key
// per-state lookaside tables without rebuilding state Key strings.
func (c *Config) StateDigestAt(p int) fingerprint.Digest {
	if !c.fpOK {
		c.initFingerprint()
	}
	return c.stateD[p]
}

// setState replaces p's local state, updating the fingerprint cache by
// swapping p's state contribution.
func (c *Config) setState(p ProcID, s State) {
	if c.fpOK {
		c.setStateD(p, s, StateDigest(s))
		return
	}
	c.States[p] = s
}

// setStateD is setState with the new state's digest already in hand (from
// the transition cache), so the swap skips rehashing the state.
func (c *Config) setStateD(p ProcID, s State, d fingerprint.Digest) {
	if c.fpOK {
		salt := saltStateBase + uint64(p)
		c.fp = c.fp.Sub(c.stateD[p].Mixed(salt)).Add(d.Mixed(salt))
		c.stateD[p] = d
	}
	c.States[p] = s
}

// addMessage buffers m at its destination, adding its contribution to the
// fingerprint cache. m should be memoized.
func (c *Config) addMessage(to ProcID, m Message) {
	c.Buffers[to] = c.Buffers[to].Add(m)
	if c.fpOK {
		c.fp = c.fp.Add(m.Digest().Mixed(saltBufferBase + uint64(to)))
	}
}

// removeMessage consumes m from p's buffer, subtracting its contribution
// from the fingerprint cache.
func (c *Config) removeMessage(p ProcID, m Message) bool {
	b, ok := c.Buffers[p].RemoveMsg(m)
	if !ok {
		return false
	}
	c.Buffers[p] = b
	if c.fpOK {
		c.fp = c.fp.Sub(m.Digest().Mixed(saltBufferBase + uint64(p)))
	}
	return true
}

// Key canonically encodes the configuration for state-space hashing. Two
// configurations with equal keys are the same configuration (same local
// states, same buffer multisets, same inputs, same channel histories).
func (c *Config) Key() string {
	var sb strings.Builder
	for p, s := range c.States {
		if p > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(s.Key())
	}
	sb.WriteByte('#')
	for p, b := range c.Buffers {
		if p > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(b.Key())
	}
	sb.WriteByte('#')
	for _, in := range c.Inputs {
		if in == One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.Write(c.omissionKeySuffix(nil))
	return sb.String()
}

// StateKey encodes only the local-state vector — the projection
// state(P, C) used by Lemma 3 when comparing configurations.
func (c *Config) StateKey() string {
	parts := make([]string, len(c.States))
	for p, s := range c.States {
		parts[p] = s.Key()
	}
	return strings.Join(parts, ";")
}

// Faulty reports whether processor p occupies a failed state.
func (c *Config) Faulty(p ProcID) bool { return c.States[p].Kind() == Failed }

// Operational lists the processors in operational (sending or receiving)
// states.
func (c *Config) Operational() []ProcID {
	var out []ProcID
	for p, s := range c.States {
		if IsOperational(s) {
			out = append(out, ProcID(p))
		}
	}
	return out
}

// Decisions returns the visible decision of each processor (NoDecision for
// undecided, amnesic, and failed states).
func (c *Config) Decisions() []Decision {
	out := make([]Decision, len(c.States))
	for p, s := range c.States {
		if d, ok := s.Decided(); ok {
			out[p] = d
		}
	}
	return out
}

// Quiescent reports whether no applicable non-failure event can change the
// configuration: no processor is in a sending state and every operational
// receiving processor has an empty buffer. Weakly terminating protocols
// "terminate, in essence, by deadlocking" (Section 2) in exactly this sense.
func (c *Config) Quiescent() bool {
	for p, s := range c.States {
		switch s.Kind() {
		case Sending:
			return false
		case Receiving:
			if len(c.Buffers[p]) > 0 {
				return false
			}
		}
	}
	return true
}
