package sim

import (
	"sort"
	"strings"
)

// Buffer is a processor's unordered message buffer: the multiset of messages
// sent to it but not yet received. It is kept sorted by message key so that
// configuration hashing is canonical; sortedness is an encoding detail, not
// an ordering guarantee (delivery picks any element).
type Buffer []Message

// Add inserts a message, preserving canonical order, and returns the new
// buffer. The receiver is not mutated beyond the usual append aliasing, so
// callers must use the return value.
func (b Buffer) Add(m Message) Buffer {
	key := m.Key()
	i := sort.Search(len(b), func(i int) bool { return b[i].Key() >= key })
	out := make(Buffer, 0, len(b)+1)
	out = append(out, b[:i]...)
	out = append(out, m)
	out = append(out, b[i:]...)
	return out
}

// Remove deletes one occurrence of the message with the given ID and returns
// the new buffer plus whether it was present.
func (b Buffer) Remove(id MsgID) (Buffer, bool) {
	for i, m := range b {
		if m.ID == id {
			out := make(Buffer, 0, len(b)-1)
			out = append(out, b[:i]...)
			out = append(out, b[i+1:]...)
			return out, true
		}
	}
	return b, false
}

// Find returns the buffered message with the given ID.
func (b Buffer) Find(id MsgID) (Message, bool) {
	for _, m := range b {
		if m.ID == id {
			return m, true
		}
	}
	return Message{}, false
}

// Key canonically encodes the buffer contents.
func (b Buffer) Key() string {
	if len(b) == 0 {
		return "∅"
	}
	parts := make([]string, len(b))
	for i, m := range b {
		parts[i] = m.Key()
	}
	return strings.Join(parts, "|")
}

// Config is a configuration as defined in Section 3: the N local states and
// the N buffer contents. Inputs records the initial bits (they determine the
// initial configuration and are consulted by decision-rule validators), and
// seq tracks the next sequence number on each directed channel so that
// message triples (p,q,k) are assigned deterministically.
type Config struct {
	States  []State
	Buffers []Buffer
	Inputs  []Bit
	seq     []int // seq[from*n+to] = messages sent from→to so far
}

// NewConfig builds the initial configuration of a protocol on the given
// inputs: each processor starts in Init(p, inputs[p]) — the paper's z_0 or
// z_1 states — and every buffer is empty.
func NewConfig(proto Protocol, inputs []Bit) *Config {
	n := len(inputs)
	c := &Config{
		States:  make([]State, n),
		Buffers: make([]Buffer, n),
		Inputs:  append([]Bit(nil), inputs...),
		seq:     make([]int, n*n),
	}
	for p := range c.States {
		c.States[p] = proto.Init(ProcID(p), inputs[p], n)
	}
	return c
}

// N returns the number of processors.
func (c *Config) N() int { return len(c.States) }

// Clone returns an independent copy of the configuration. States and
// messages are immutable values, so only the containers are copied.
func (c *Config) Clone() *Config {
	out := &Config{
		States:  append([]State(nil), c.States...),
		Buffers: make([]Buffer, len(c.Buffers)),
		Inputs:  append([]Bit(nil), c.Inputs...),
		seq:     append([]int(nil), c.seq...),
	}
	copy(out.Buffers, c.Buffers) // buffers are persistent; Add/Remove copy
	return out
}

// nextSeq allocates the next sequence number from→to.
func (c *Config) nextSeq(from, to ProcID) int {
	i := int(from)*c.N() + int(to)
	c.seq[i]++
	return c.seq[i]
}

// Key canonically encodes the configuration for state-space hashing. Two
// configurations with equal keys are the same configuration (same local
// states, same buffer multisets, same inputs, same channel histories).
func (c *Config) Key() string {
	var sb strings.Builder
	for p, s := range c.States {
		if p > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(s.Key())
	}
	sb.WriteByte('#')
	for p, b := range c.Buffers {
		if p > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(b.Key())
	}
	sb.WriteByte('#')
	for _, in := range c.Inputs {
		if in == One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// StateKey encodes only the local-state vector — the projection
// state(P, C) used by Lemma 3 when comparing configurations.
func (c *Config) StateKey() string {
	parts := make([]string, len(c.States))
	for p, s := range c.States {
		parts[p] = s.Key()
	}
	return strings.Join(parts, ";")
}

// Faulty reports whether processor p occupies a failed state.
func (c *Config) Faulty(p ProcID) bool { return c.States[p].Kind() == Failed }

// Operational lists the processors in operational (sending or receiving)
// states.
func (c *Config) Operational() []ProcID {
	var out []ProcID
	for p, s := range c.States {
		if IsOperational(s) {
			out = append(out, ProcID(p))
		}
	}
	return out
}

// Decisions returns the visible decision of each processor (NoDecision for
// undecided, amnesic, and failed states).
func (c *Config) Decisions() []Decision {
	out := make([]Decision, len(c.States))
	for p, s := range c.States {
		if d, ok := s.Decided(); ok {
			out[p] = d
		}
	}
	return out
}

// Quiescent reports whether no applicable non-failure event can change the
// configuration: no processor is in a sending state and every operational
// receiving processor has an empty buffer. Weakly terminating protocols
// "terminate, in essence, by deadlocking" (Section 2) in exactly this sense.
func (c *Config) Quiescent() bool {
	for p, s := range c.States {
		switch s.Kind() {
		case Sending:
			return false
		case Receiving:
			if len(c.Buffers[p]) > 0 {
				return false
			}
		}
	}
	return true
}
