package sim

import (
	"fmt"
	"strings"
)

// Trace renders the run as a human-readable event log: one line per event,
// annotating the messages placed into buffers, the payload received, and any
// decision first visible in the resulting configuration.
func (r *Run) Trace() []string {
	out := make([]string, 0, len(r.Schedule)+1)
	out = append(out, fmt.Sprintf("initial configuration: inputs %s", renderInputs(r.Initial().Inputs)))
	decided := make([]bool, r.Initial().N())
	for i, e := range r.Schedule {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%3d. %s", i+1, e)
		eff := r.Effects[i]
		if eff.Received != nil && !eff.Received.Notice {
			fmt.Fprintf(&sb, " [%s]", eff.Received.Payload.Key())
		}
		if eff.Omitted != nil {
			if eff.Omitted.Notice {
				fmt.Fprintf(&sb, " [suppressed failed(%s)]", eff.Omitted.ID.From)
			} else {
				fmt.Fprintf(&sb, " [suppressed %s]", eff.Omitted.Payload.Key())
			}
		}
		for _, m := range eff.Sent {
			if m.Notice {
				continue
			}
			fmt.Fprintf(&sb, " → %s %s", m.ID, m.Payload.Key())
		}
		cfg := r.Configs[i+1]
		for p := 0; p < cfg.N(); p++ {
			d, ok := cfg.States[p].Decided()
			if ok && !decided[p] {
				decided[p] = true
				fmt.Fprintf(&sb, "   ⇒ %s decides %s", ProcID(p), d)
			}
		}
		out = append(out, sb.String())
	}
	return out
}

// Summary renders the final outcome of the run: per-processor status and
// message counts.
func (r *Run) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d events, %d messages, failure-free=%v\n",
		r.Proto.Name(), r.Steps(), r.MessagesSent(), r.FailureFree())
	final := r.Final()
	for p := 0; p < final.N(); p++ {
		pid := ProcID(p)
		status := "undecided"
		if d, ok := r.DecisionOf(pid); ok {
			status = "decided " + d.String()
		}
		s := final.States[p]
		switch {
		case s.Kind() == Failed:
			status += ", failed"
		case s.Kind() == Halted:
			status += ", halted"
		case s.Amnesic():
			status += ", amnesic"
		}
		fmt.Fprintf(&sb, "  %s: %s (%d steps)\n", pid, status, r.StepsOf(pid))
	}
	return sb.String()
}

func renderInputs(inputs []Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
