package sim

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/fingerprint"
)

// OmissionPolicy bounds the omission faults an execution may contain. The
// zero value disables omissions entirely: no Omit event is ever enumerated,
// and configurations hash exactly as they did before omissions existed.
//
// Budget caps the total number of Omit events in a run. Mobile, when
// positive, additionally caps how many processors may be omission-faulty
// *simultaneously*: a processor becomes omission-faulty when a delivery to
// it is suppressed and is rehabilitated by its next successful delivery (or
// by crashing), so the faulty set of size ≤ Mobile moves through the system
// as the adversary shifts its attention — the mobile omission model of
// Godard & Peters. Mobile = 0 with a positive Budget leaves placement
// unconstrained (any processors, any time, Budget omissions total).
type OmissionPolicy struct {
	// Budget is the maximum number of Omit events per run. Zero disables
	// omissions.
	Budget int
	// Mobile, when positive, caps the number of simultaneously
	// omission-faulty processors at k; the faulty set may move between
	// "rounds" (delivery epochs) as faulty processors are rehabilitated by
	// successful deliveries.
	Mobile int
}

// Enabled reports whether the policy admits any omission at all.
func (pol OmissionPolicy) Enabled() bool { return pol.Budget > 0 }

// String renders the policy for reports and flags.
func (pol OmissionPolicy) String() string {
	if !pol.Enabled() {
		return "none"
	}
	if pol.Mobile > 0 {
		return fmt.Sprintf("budget=%d,mobile=%d", pol.Budget, pol.Mobile)
	}
	return fmt.Sprintf("budget=%d", pol.Budget)
}

// maxOmissionProcs bounds N under an enabled policy: the faulty and target
// sets are tracked as single-word bitmasks so they fold into keys and
// fingerprints in O(1).
const maxOmissionProcs = 64

// omissionDigest fingerprints the omission-accounting triple carried by a
// policy-enabled configuration. Callers mix the result under saltOmission
// before folding it into a configuration fingerprint.
//
//ccvet:pure
func omissionDigest(used int, faulty, targets uint64) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(uint64(used))
	h.WriteUint64(faulty)
	h.WriteUint64(targets)
	return h.Sum()
}

// omissionTerm is the configuration's current omission contribution to its
// fingerprint. Only meaningful when the policy is enabled.
func (c *Config) omissionTerm() fingerprint.Digest {
	return omissionDigest(c.omitsUsed, c.omitFaulty, c.omitTargets).Mixed(saltOmission)
}

// omissionKeySuffix appends the omission-accounting suffix to a Key being
// built. Disabled policies append nothing, so pre-omission keys are
// byte-identical.
func (c *Config) omissionKeySuffix(dst []byte) []byte {
	if !c.pol.Enabled() {
		return dst
	}
	dst = append(dst, "#O"...)
	dst = strconv.AppendInt(dst, int64(c.omitsUsed), 10)
	dst = append(dst, ':')
	dst = strconv.AppendUint(dst, c.omitFaulty, 16)
	dst = append(dst, ':')
	dst = strconv.AppendUint(dst, c.omitTargets, 16)
	return dst
}

// omitAllowed reports whether the policy permits suppressing a delivery to
// p at this configuration: budget remaining, and — in mobile mode — either
// p is already omission-faulty or the faulty set has room.
func (c *Config) omitAllowed(p ProcID) bool {
	if !c.pol.Enabled() || c.omitsUsed >= c.pol.Budget {
		return false
	}
	if c.pol.Mobile > 0 {
		bit := uint64(1) << uint(p)
		if c.omitFaulty&bit == 0 && bits.OnesCount64(c.omitFaulty) >= c.pol.Mobile {
			return false
		}
	}
	return true
}

// noteOmit charges one omission targeting p against the configuration's
// accounting, keeping the fingerprint cache warm.
func (c *Config) noteOmit(p ProcID) {
	if !c.pol.Enabled() {
		return
	}
	if c.fpOK {
		c.fp = c.fp.Sub(c.omissionTerm())
	}
	bit := uint64(1) << uint(p)
	c.omitsUsed++
	c.omitFaulty |= bit
	c.omitTargets |= bit
	if c.fpOK {
		c.fp = c.fp.Add(c.omissionTerm())
	}
}

// noteDeliver rehabilitates p after a successful delivery: in the mobile
// model a processor is omission-faulty only between a suppressed delivery
// and its next real one.
func (c *Config) noteDeliver(p ProcID) {
	c.clearOmitFaulty(p)
}

// noteFail removes a crashed processor from the omission-faulty set; crash
// failure subsumes omission faultiness and frees the mobile slot.
func (c *Config) noteFail(p ProcID) {
	c.clearOmitFaulty(p)
}

func (c *Config) clearOmitFaulty(p ProcID) {
	bit := uint64(1) << uint(p)
	if !c.pol.Enabled() || c.omitFaulty&bit == 0 {
		return
	}
	if c.fpOK {
		c.fp = c.fp.Sub(c.omissionTerm())
	}
	c.omitFaulty &^= bit
	if c.fpOK {
		c.fp = c.fp.Add(c.omissionTerm())
	}
}

// omissionShiftClear adjusts a predicted successor fingerprint for an
// event that rehabilitates p (a successful delivery or a crash): the
// omission term is swapped for one with p's faulty bit cleared. A no-op
// when the policy is disabled or p is not omission-faulty, mirroring
// clearOmitFaulty exactly.
func (c *Config) omissionShiftClear(fp fingerprint.Digest, p ProcID) fingerprint.Digest {
	bit := uint64(1) << uint(p)
	if !c.pol.Enabled() || c.omitFaulty&bit == 0 {
		return fp
	}
	return fp.Sub(c.omissionTerm()).
		Add(omissionDigest(c.omitsUsed, c.omitFaulty&^bit, c.omitTargets).Mixed(saltOmission))
}

// omissionShiftOmit adjusts a predicted successor fingerprint for an Omit
// targeting p, mirroring noteOmit exactly.
func (c *Config) omissionShiftOmit(fp fingerprint.Digest, p ProcID) fingerprint.Digest {
	if !c.pol.Enabled() {
		return fp
	}
	bit := uint64(1) << uint(p)
	return fp.Sub(c.omissionTerm()).
		Add(omissionDigest(c.omitsUsed+1, c.omitFaulty|bit, c.omitTargets|bit).Mixed(saltOmission))
}

// Omission returns the configuration's omission policy (the zero policy
// when omissions are disabled).
func (c *Config) Omission() OmissionPolicy { return c.pol }

// OmissionsUsed returns how many Omit events have been charged against the
// budget on the path to this configuration.
func (c *Config) OmissionsUsed() int { return c.omitsUsed }

// OmissionFaultyProc reports whether p is currently omission-faulty: a
// delivery to it was suppressed and no successful delivery (or crash) has
// rehabilitated it since.
func (c *Config) OmissionFaultyProc(p ProcID) bool {
	return c.omitFaulty&(uint64(1)<<uint(p)) != 0
}

// OmissionTarget reports whether any delivery to p was ever suppressed on
// the path to this configuration. Termination validators exempt such
// processors: a receive-omission-faulty processor is faulty, and liveness
// is only promised to correct ones.
func (c *Config) OmissionTarget(p ProcID) bool {
	return c.omitTargets&(uint64(1)<<uint(p)) != 0
}
