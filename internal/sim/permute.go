package sim

import "sort"

// ProcPerm is a permutation of processor identities: perm[p] is the
// identity p maps to. Symmetry reduction applies topology automorphisms as
// ProcPerms to relabel configurations without changing their behaviour.
type ProcPerm []ProcID

// Valid reports whether perm is a permutation of 0..n-1.
func (perm ProcPerm) Valid(n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, q := range perm {
		if int(q) < 0 || int(q) >= n || seen[q] {
			return false
		}
		seen[q] = true
	}
	return true
}

// IsIdentity reports whether perm maps every processor to itself.
func (perm ProcPerm) IsIdentity() bool {
	for p, q := range perm {
		if ProcID(p) != q {
			return false
		}
	}
	return true
}

// Permuter is implemented by protocol states that support processor
// relabeling. PermuteProcs returns the state as it would be if every
// processor identity p were renamed to perm[p]; for a state owned by
// processor p the result is owned by perm[p]. Implementations must be pure
// and must compose: permuting by π then by σ equals permuting by σ∘π.
type Permuter interface {
	PermuteProcs(perm ProcPerm) State
}

// PermuteMessage relabels a message's endpoints, preserving the sequence
// number and payload (library payloads carry no processor identities), and
// re-memoizes the key and digest under the new endpoints.
func PermuteMessage(m Message, perm ProcPerm) Message {
	return Message{
		ID:      MsgID{From: perm[m.ID.From], To: perm[m.ID.To], Seq: m.ID.Seq},
		Payload: m.Payload,
		Notice:  m.Notice,
	}.Memoized()
}

// PermuteConfig relabels a configuration by a processor permutation: the
// state, input, and buffer of processor p move to position perm[p], with
// every processor identity inside states and messages rewritten. The
// result is a fresh configuration suitable for Key and Fingerprint; the
// per-channel sequence counters are not carried over (they are excluded
// from both, and a permuted configuration is never executed). It returns
// ok=false when some state does not implement Permuter.
//
// When perm is an automorphism of the protocol's topology, the result is
// behaviourally equivalent to c — reachable iff c is reachable under the
// permuted input vector — which is what makes orbit-minimal canonical
// handles a sound dedup key.
func PermuteConfig(c *Config, perm ProcPerm) (*Config, bool) {
	n := c.N()
	out := &Config{
		States:  make([]State, n),
		Buffers: make([]Buffer, n),
		Inputs:  make([]Bit, n),
	}
	for p := 0; p < n; p++ {
		q := perm[p]
		pm, ok := c.States[p].(Permuter)
		if !ok {
			return nil, false
		}
		out.States[q] = pm.PermuteProcs(perm)
		out.Inputs[q] = c.Inputs[p]
		if buf := c.Buffers[p]; len(buf) > 0 {
			nb := make(Buffer, 0, len(buf))
			for _, m := range buf {
				nb = append(nb, PermuteMessage(m, perm))
			}
			sort.Slice(nb, func(i, j int) bool { return nb[i].Key() < nb[j].Key() })
			out.Buffers[q] = nb
		}
	}
	return out, true
}

// PermuteProcs implements Permuter for failed states: ⊥(p) relabels to
// ⊥(perm[p]).
func (s failedState) PermuteProcs(perm ProcPerm) State {
	return FailedStateFor(perm[s.p])
}
