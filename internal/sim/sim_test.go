package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// echoPayload is a minimal payload for tests.
type echoPayload string

func (e echoPayload) Key() string { return string(e) }

// pingState is a trivial two-processor protocol state: p0 sends one ping to
// p1 and decides commit; p1 decides the value it receives.
type pingState struct {
	id      ProcID
	sent    bool
	decided Decision
}

func (s pingState) Kind() StateKind {
	if s.id == 0 && !s.sent {
		return Sending
	}
	return Receiving
}

func (s pingState) Decided() (Decision, bool) {
	if s.decided == NoDecision {
		return NoDecision, false
	}
	return s.decided, true
}
func (s pingState) Amnesic() bool { return false }
func (s pingState) Key() string {
	k := "ping{" + s.id.String()
	if s.sent {
		k += " sent"
	}
	if s.decided != NoDecision {
		k += " " + s.decided.String()
	}
	return k + "}"
}

type pingProto struct{}

func (pingProto) Name() string { return "ping" }
func (pingProto) N() int       { return 2 }
func (pingProto) Init(p ProcID, input Bit, n int) State {
	return pingState{id: p}
}
func (pingProto) Receive(p ProcID, s State, m Message) State {
	st := s.(pingState)
	if !m.Notice {
		st.decided = Commit
	}
	return st
}
func (pingProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st := s.(pingState)
	if st.sent {
		return st, nil
	}
	st.sent = true
	st.decided = Commit
	return st, []Envelope{{To: 1, Payload: echoPayload("ping")}}
}

func TestPingProtocolRuns(t *testing.T) {
	run, err := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !run.FailureFree() {
		t.Error("expected failure-free run")
	}
	if run.MessagesSent() != 1 {
		t.Errorf("MessagesSent = %d, want 1", run.MessagesSent())
	}
	for p := 0; p < 2; p++ {
		if d, ok := run.DecisionOf(ProcID(p)); !ok || d != Commit {
			t.Errorf("%s decision = %v, %v; want commit", ProcID(p), d, ok)
		}
	}
	if !run.Final().Quiescent() {
		t.Error("final configuration should be quiescent")
	}
}

func TestApplicability(t *testing.T) {
	c := NewConfig(pingProto{}, []Bit{One, One})
	// p0 is sending: deliver is inapplicable, send is applicable.
	if Applicable(c, Event{Proc: 0, Type: Deliver, Msg: MsgID{From: 1, To: 0, Seq: 1}}) {
		t.Error("deliver should be inapplicable to a sending state")
	}
	if !Applicable(c, Event{Proc: 0, Type: SendStepEvent}) {
		t.Error("send step should be applicable to a sending state")
	}
	// p1 is receiving with an empty buffer: nothing to deliver.
	if Applicable(c, Event{Proc: 1, Type: Deliver, Msg: MsgID{From: 0, To: 1, Seq: 1}}) {
		t.Error("deliver of a non-buffered message should be inapplicable")
	}
	// Anyone may fail.
	if !Applicable(c, Event{Proc: 1, Type: Fail}) {
		t.Error("failure should be applicable to an operational processor")
	}
}

func TestFailureBroadcastsNotices(t *testing.T) {
	c := NewConfig(pingProto{}, []Bit{One, One})
	next, eff, err := Apply(pingProto{}, c, Event{Proc: 0, Type: Fail})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Sent) != 1 {
		t.Fatalf("failure should notify the 1 other processor, notified %d", len(eff.Sent))
	}
	if !eff.Sent[0].Notice {
		t.Error("failure step should send a notice")
	}
	if next.States[0].Kind() != Failed {
		t.Error("failed processor should occupy a failed state")
	}
	// Failed processors take no further steps.
	if Applicable(next, Event{Proc: 0, Type: Fail}) {
		t.Error("a failed processor cannot fail again")
	}
	if Applicable(next, Event{Proc: 0, Type: SendStepEvent}) {
		t.Error("a failed processor cannot send")
	}
}

func TestSelfSendRejected(t *testing.T) {
	bad := selfSendProto{}
	c := NewConfig(bad, []Bit{One, One})
	_, _, err := Apply(bad, c, Event{Proc: 0, Type: SendStepEvent})
	if !errors.Is(err, ErrSelfSend) {
		t.Fatalf("err = %v, want ErrSelfSend", err)
	}
}

type selfSendProto struct{ pingProto }

func (selfSendProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st := s.(pingState)
	st.sent = true
	return st, []Envelope{{To: p, Payload: echoPayload("self")}}
}

func TestRevokedDecisionRejected(t *testing.T) {
	bad := revokeProto{}
	c := NewConfig(bad, []Bit{One, One})
	// p0 sends twice; the second send step flips its decision from
	// commit to abort, which Apply must reject.
	c2, _, err := Apply(bad, c, Event{Proc: 0, Type: SendStepEvent})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Apply(bad, c2, Event{Proc: 0, Type: SendStepEvent})
	if !errors.Is(err, ErrRevokedDecision) {
		t.Fatalf("err = %v, want ErrRevokedDecision", err)
	}
}

// revokeProto decides commit on its first send and illegally flips to abort
// on the second.
type revokeProto struct{ pingProto }

type revokeState struct {
	sends   int
	decided Decision
}

func (s revokeState) Kind() StateKind { return Sending }
func (s revokeState) Decided() (Decision, bool) {
	return s.decided, s.decided != NoDecision
}
func (s revokeState) Amnesic() bool { return false }
func (s revokeState) Key() string {
	return "revoke{" + s.decided.String() + "}"
}

func (revokeProto) Init(p ProcID, input Bit, n int) State {
	if p == 0 {
		return revokeState{decided: NoDecision}
	}
	return pingState{id: p}
}

func (revokeProto) SendStep(p ProcID, s State) (State, []Envelope) {
	st, ok := s.(revokeState)
	if !ok {
		return s, nil
	}
	st.sends++
	if st.decided == NoDecision {
		st.decided = Commit
	} else {
		st.decided = Abort // illegal revocation
	}
	return st, nil
}

func TestBufferAddRemove(t *testing.T) {
	var b Buffer
	m1 := Message{ID: MsgID{From: 0, To: 1, Seq: 1}, Payload: echoPayload("a")}
	m2 := Message{ID: MsgID{From: 0, To: 1, Seq: 2}, Payload: echoPayload("b")}
	b = b.Add(m2)
	b = b.Add(m1)
	if len(b) != 2 {
		t.Fatalf("len = %d, want 2", len(b))
	}
	if _, ok := b.Find(m1.ID); !ok {
		t.Error("m1 should be present")
	}
	b2, ok := b.Remove(m1.ID)
	if !ok || len(b2) != 1 {
		t.Fatalf("remove failed: ok=%v len=%d", ok, len(b2))
	}
	if _, ok := b2.Find(m1.ID); ok {
		t.Error("m1 should be gone")
	}
	// The original buffer is unchanged (persistent semantics).
	if len(b) != 2 {
		t.Error("Remove must not mutate the receiver")
	}
}

func TestConfigKeyDeterministic(t *testing.T) {
	a := NewConfig(pingProto{}, []Bit{One, Zero})
	b := NewConfig(pingProto{}, []Bit{One, Zero})
	if a.Key() != b.Key() {
		t.Error("identical configurations should have equal keys")
	}
	c := NewConfig(pingProto{}, []Bit{Zero, One})
	if a.Key() == c.Key() {
		t.Error("different inputs should give different keys")
	}
}

func TestAllInputs(t *testing.T) {
	vecs := AllInputs(3)
	if len(vecs) != 8 {
		t.Fatalf("len = %d, want 8", len(vecs))
	}
	seen := make(map[string]bool)
	for _, v := range vecs {
		var sb strings.Builder
		for _, b := range v {
			if b == One {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		seen[sb.String()] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 distinct vectors, got %d", len(seen))
	}
}

func TestUnanimityProperty(t *testing.T) {
	f := func(bits []bool) bool {
		inputs := make([]Bit, len(bits))
		all := true
		for i, b := range bits {
			if b {
				inputs[i] = One
			} else {
				all = false
			}
		}
		got := Unanimity(inputs)
		if all {
			return got == Commit
		}
		return got == Abort
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputsFromString(t *testing.T) {
	in, err := InputsFromString("101")
	if err != nil {
		t.Fatal(err)
	}
	want := []Bit{One, Zero, One}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("in[%d] = %d, want %d", i, in[i], want[i])
		}
	}
	if _, err := InputsFromString("10x"); err == nil {
		t.Error("expected error for malformed vector")
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		r1, err1 := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{Seed: seed})
		r2, err2 := RandomRun(pingProto{}, []Bit{One, One}, RunnerOptions{Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Schedule) != len(r2.Schedule) {
			return false
		}
		for i := range r1.Schedule {
			if r1.Schedule[i] != r2.Schedule[i] {
				return false
			}
		}
		return r1.Final().Key() == r2.Final().Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
