package sim

// DefaultMaxNodes is the node budget shared by the repo's exhaustive walks
// when their Options leave MaxNodes zero: checker.Options (configuration-
// space exploration) and scheme.Options (failure-free pattern enumeration)
// both default to this single constant, so "how far will an unbounded-looking
// walk actually go" has one answer everywhere. Exceeding the budget is
// always a reported error (*checker.BudgetError / *scheme.BudgetError with
// partial results attached), never a silent truncation.
const DefaultMaxNodes = 4_000_000
