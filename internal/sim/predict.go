package sim

import (
	"sync"

	"repro/internal/fingerprint"
)

// PredictSuccessor computes the fingerprint that e(C) would have — and the
// post-state of the stepping processor — without materializing e(C). The
// explorer uses this to recognize already-visited successors and skip
// Clone/Apply for them entirely; only genuinely new configurations are
// materialized.
//
// Prediction mirrors Apply's validity checks (applicability, single-send,
// self-send and range limits, decision irrevocability). ok=false means the
// event is inapplicable or the transition is irregular in a way Apply
// reports as an error; callers must fall back to Apply so that buggy
// protocols fail with exactly the same errors the string-keyed engine
// reports. A successful prediction is exact: Apply(proto, c, e) yields a
// configuration whose Fingerprint equals the predicted digest (the sim
// tests assert this over explored spaces).
func PredictSuccessor(proto Protocol, c *Config, e Event) (fingerprint.Digest, State, bool) {
	if int(e.Proc) < 0 || int(e.Proc) >= c.N() {
		return fingerprint.Digest{}, nil, false
	}
	base := c.Fingerprint()
	p := e.Proc
	stateSalt := saltStateBase + uint64(p)

	switch e.Type {
	case Fail:
		if c.States[p].Kind() == Failed {
			return fingerprint.Digest{}, nil, false
		}
		post := FailedStateFor(p)
		fp := base.Sub(c.stateD[p].Mixed(stateSalt)).Add(StateDigest(post).Mixed(stateSalt))
		n := c.N()
		for q := 0; q < n; q++ {
			if ProcID(q) == p {
				continue
			}
			m := Message{
				ID:     MsgID{From: p, To: ProcID(q), Seq: c.seq[int(p)*n+q] + 1},
				Notice: true,
			}
			fp = fp.Add(m.computeDigest().Mixed(saltBufferBase + uint64(q)))
		}
		return c.omissionShiftClear(fp, p), post, true

	case SendStepEvent:
		if c.States[p].Kind() != Sending {
			return fingerprint.Digest{}, nil, false
		}
		s2, envs := proto.SendStep(p, c.States[p])
		if len(envs) > 1 || checkTransition(c.States[p], s2) != nil {
			return fingerprint.Digest{}, nil, false
		}
		fp := base.Sub(c.stateD[p].Mixed(stateSalt)).Add(StateDigest(s2).Mixed(stateSalt))
		for _, env := range envs {
			if env.To == p || int(env.To) < 0 || int(env.To) >= c.N() {
				return fingerprint.Digest{}, nil, false
			}
			m := Message{
				ID:      MsgID{From: p, To: env.To, Seq: c.seq[int(p)*c.N()+int(env.To)] + 1},
				Payload: env.Payload,
			}
			fp = fp.Add(m.computeDigest().Mixed(saltBufferBase + uint64(env.To)))
		}
		return fp, s2, true

	case Deliver:
		if c.States[p].Kind() != Receiving {
			return fingerprint.Digest{}, nil, false
		}
		m, ok := c.Buffers[p].Find(e.Msg)
		if !ok {
			return fingerprint.Digest{}, nil, false
		}
		s2 := proto.Receive(p, c.States[p], m)
		if checkTransition(c.States[p], s2) != nil {
			return fingerprint.Digest{}, nil, false
		}
		fp := base.Sub(c.stateD[p].Mixed(stateSalt)).Add(StateDigest(s2).Mixed(stateSalt))
		fp = fp.Sub(m.Digest().Mixed(saltBufferBase + uint64(p)))
		return c.omissionShiftClear(fp, p), s2, true

	case Omit:
		if c.States[p].Kind() == Failed {
			return fingerprint.Digest{}, nil, false
		}
		m, ok := c.Buffers[p].Find(e.Msg)
		if !ok {
			return fingerprint.Digest{}, nil, false
		}
		fp := base.Sub(m.Digest().Mixed(saltBufferBase + uint64(p)))
		return c.omissionShiftOmit(fp, p), c.States[p], true
	}
	return fingerprint.Digest{}, nil, false
}

// Predicted is a Predictor result: the successor configuration's
// fingerprint, the visible decision of the stepping processor's
// post-state, and — for sending steps that emit a message — the identity
// the sent message would get. These are the post-state facts explorers and
// scheme enumeration need per skipped edge.
type Predicted struct {
	CfgFP    fingerprint.Digest
	Decision Decision
	Decided  bool
	// Sent/SentID describe the message a predicted sending step emits
	// (sequence number included). Failure notices are not reported here;
	// only SendStepEvent predictions set these fields.
	Sent   bool
	SentID MsgID
}

// predictEntry caches one transition's outcome, keyed by the digests of
// its inputs. Transition functions are pure (Init/Receive/SendStep depend
// only on their arguments — the ccvet purity analyzer enforces it), so a
// transition's post-state digest, decision, and emitted envelope are
// functions of (processor, state digest, message digest) and can be
// memoized across the millions of configurations that repeat them.
type predictEntry struct {
	valid   bool // transition passes Apply's validity checks
	postD   fingerprint.Digest
	dec     Decision
	decided bool
	// sending steps: the emitted envelope, if any (destination and the
	// payload's canonical key — enough to reconstruct the sent message's
	// digest once the sequence number is known).
	hasEnv     bool
	envTo      ProcID
	payloadKey string
}

const predictShards = 64

type predictShard struct {
	mu sync.RWMutex
	m  map[fingerprint.Digest]predictEntry // ccvet:guardedby mu
}

// Predictor is a concurrency-safe transition cache for fingerprint
// prediction. It memoizes Receive/SendStep outcomes by input digests, so
// repeated transitions cost two map probes instead of a protocol callback
// plus state hashing. Like fingerprint dedup itself, the cache identifies
// inputs by 128-bit digest: a hash collision could return the wrong
// cached outcome, which is why explorers use it only in fingerprint mode
// (never under verified or string dedup).
type Predictor struct {
	shards [predictShards]predictShard
}

// NewPredictor returns an empty transition cache.
func NewPredictor() *Predictor {
	pr := &Predictor{}
	for i := range pr.shards {
		pr.shards[i].m = make(map[fingerprint.Digest]predictEntry)
	}
	return pr
}

func (pr *Predictor) lookup(key fingerprint.Digest) (predictEntry, bool) {
	sh := &pr.shards[key.Lo&(predictShards-1)]
	sh.mu.RLock()
	ent, ok := sh.m[key]
	sh.mu.RUnlock()
	return ent, ok
}

func (pr *Predictor) store(key fingerprint.Digest, ent predictEntry) {
	sh := &pr.shards[key.Lo&(predictShards-1)]
	sh.mu.Lock()
	sh.m[key] = ent
	sh.mu.Unlock()
}

// deliverCacheKey identifies a Receive transition by processor, state
// digest, and message digest.
func deliverCacheKey(p ProcID, stateD, msgD fingerprint.Digest) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(1<<32 | uint64(uint32(p)))
	h.WriteUint64(stateD.Lo)
	h.WriteUint64(stateD.Hi)
	h.WriteUint64(msgD.Lo)
	h.WriteUint64(msgD.Hi)
	return h.Sum()
}

// sendCacheKey identifies a SendStep transition by processor and state
// digest.
func sendCacheKey(p ProcID, stateD fingerprint.Digest) fingerprint.Digest {
	h := fingerprint.New()
	h.WriteUint64(2<<32 | uint64(uint32(p)))
	h.WriteUint64(stateD.Lo)
	h.WriteUint64(stateD.Hi)
	return h.Sum()
}

// Predict computes what PredictSuccessor computes, through the transition
// cache: the fingerprint e(C) would have, plus the post-state's visible
// decision. ok=false means the event is inapplicable or irregular and the
// caller must fall back to Apply for the authoritative error.
func (pr *Predictor) Predict(proto Protocol, c *Config, e Event) (Predicted, bool) {
	if int(e.Proc) < 0 || int(e.Proc) >= c.N() {
		return Predicted{}, false
	}
	base := c.Fingerprint()
	p := e.Proc
	stateSalt := saltStateBase + uint64(p)

	switch e.Type {
	case Fail, Omit:
		// Failure and omission transitions are protocol-independent and
		// already cheap (no Receive/SendStep callback); no cache entry
		// needed.
		fp, post, ok := PredictSuccessor(proto, c, e)
		if !ok {
			return Predicted{}, false
		}
		d, decided := post.Decided()
		return Predicted{CfgFP: fp, Decision: d, Decided: decided}, true

	case SendStepEvent:
		if c.States[p].Kind() != Sending {
			return Predicted{}, false
		}
		stateD := c.stateD[p]
		key := sendCacheKey(p, stateD)
		ent, ok := pr.lookup(key)
		if !ok {
			ent = computeSendEntry(proto, p, c.States[p])
			pr.store(key, ent)
		}
		if !ent.valid || (ent.hasEnv && int(ent.envTo) >= c.N()) {
			return Predicted{}, false
		}
		out := Predicted{Decision: ent.dec, Decided: ent.decided}
		fp := base.Sub(stateD.Mixed(stateSalt)).Add(ent.postD.Mixed(stateSalt))
		if ent.hasEnv {
			seq := c.seq[int(p)*c.N()+int(ent.envTo)] + 1
			md := msgDigestParts(p, ent.envTo, seq, false, ent.payloadKey)
			fp = fp.Add(md.Mixed(saltBufferBase + uint64(ent.envTo)))
			out.Sent = true
			out.SentID = MsgID{From: p, To: ent.envTo, Seq: seq}
		}
		out.CfgFP = fp
		return out, true

	case Deliver:
		if c.States[p].Kind() != Receiving {
			return Predicted{}, false
		}
		m, found := c.Buffers[p].Find(e.Msg)
		if !found {
			return Predicted{}, false
		}
		stateD := c.stateD[p]
		md := m.Digest()
		key := deliverCacheKey(p, stateD, md)
		ent, ok := pr.lookup(key)
		if !ok {
			ent = computeDeliverEntry(proto, p, c.States[p], m)
			pr.store(key, ent)
		}
		if !ent.valid {
			return Predicted{}, false
		}
		fp := base.Sub(stateD.Mixed(stateSalt)).Add(ent.postD.Mixed(stateSalt))
		fp = fp.Sub(md.Mixed(saltBufferBase + uint64(p)))
		return Predicted{CfgFP: c.omissionShiftClear(fp, p), Decision: ent.dec, Decided: ent.decided}, true
	}
	return Predicted{}, false
}

// Materialize is Apply through the transition cache: it builds the real
// successor configuration but reuses the cached post-state digest, so the
// dominant cost of materialization — rehashing the stepped processor's
// state — is paid once per distinct transition instead of once per edge.
// Any event the cache marks invalid or inapplicable is routed through
// Apply so the caller sees the authoritative error.
func (pr *Predictor) Materialize(proto Protocol, c *Config, e Event) (*Config, Effect, error) {
	if int(e.Proc) < 0 || int(e.Proc) >= c.N() {
		return Apply(proto, c, e)
	}
	p := e.Proc

	switch e.Type {
	case Fail, Omit:
		// Failed-state digests are cheap (no key strings) and omissions
		// touch no state at all; the plain path is already allocation-lean.
		return Apply(proto, c, e)

	case SendStepEvent:
		if c.States[p].Kind() != Sending {
			return Apply(proto, c, e)
		}
		c.Fingerprint() // warm stateD so cache keys and setStateD apply
		stateD := c.stateD[p]
		key := sendCacheKey(p, stateD)
		ent, ok := pr.lookup(key)
		if !ok {
			ent = computeSendEntry(proto, p, c.States[p])
			pr.store(key, ent)
		}
		if !ent.valid || (ent.hasEnv && int(ent.envTo) >= c.N()) {
			return Apply(proto, c, e)
		}
		s2, envs := proto.SendStep(p, c.States[p])
		next := c.Clone()
		next.setStateD(p, s2, ent.postD)
		eff := Effect{Event: e}
		for _, env := range envs {
			m := Message{
				ID:      MsgID{From: p, To: env.To, Seq: next.nextSeq(p, env.To)},
				Payload: env.Payload,
			}.Memoized()
			next.addMessage(env.To, m)
			eff.Sent = append(eff.Sent, m)
		}
		return next, eff, nil

	case Deliver:
		if c.States[p].Kind() != Receiving {
			return Apply(proto, c, e)
		}
		m, found := c.Buffers[p].Find(e.Msg)
		if !found {
			return Apply(proto, c, e)
		}
		c.Fingerprint()
		stateD := c.stateD[p]
		key := deliverCacheKey(p, stateD, m.Digest())
		ent, ok := pr.lookup(key)
		if !ok {
			ent = computeDeliverEntry(proto, p, c.States[p], m)
			pr.store(key, ent)
		}
		if !ent.valid {
			return Apply(proto, c, e)
		}
		s2 := proto.Receive(p, c.States[p], m)
		next := c.Clone()
		next.setStateD(p, s2, ent.postD)
		next.removeMessage(p, m)
		next.noteDeliver(p)
		return next, Effect{Event: e, Received: &m}, nil
	}
	return Apply(proto, c, e)
}

// computeSendEntry runs one SendStep and distills it into a cache entry,
// mirroring Apply's validity checks exactly.
func computeSendEntry(proto Protocol, p ProcID, s State) predictEntry {
	s2, envs := proto.SendStep(p, s)
	if len(envs) > 1 || checkTransition(s, s2) != nil {
		return predictEntry{}
	}
	ent := predictEntry{valid: true, postD: StateDigest(s2)}
	ent.dec, ent.decided = s2.Decided()
	for _, env := range envs {
		if env.To == p || int(env.To) < 0 {
			return predictEntry{}
		}
		ent.hasEnv = true
		ent.envTo = env.To
		ent.payloadKey = env.Payload.Key()
	}
	return ent
}

// computeDeliverEntry runs one Receive and distills it into a cache entry.
func computeDeliverEntry(proto Protocol, p ProcID, s State, m Message) predictEntry {
	s2 := proto.Receive(p, s, m)
	if checkTransition(s, s2) != nil {
		return predictEntry{}
	}
	ent := predictEntry{valid: true, postD: StateDigest(s2)}
	ent.dec, ent.decided = s2.Decided()
	return ent
}
