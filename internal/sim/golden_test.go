package sim_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestTraceSummaryGolden pins the rendering of sim.Run.Trace and
// sim.Run.Summary against committed golden files. The live runtime's
// conformance divergences and the chaos trace artifacts both embed these
// renderings, so the format is load-bearing: a drift here silently breaks
// the comparability of archived divergence traces across versions. Any
// intended change must be regenerated explicitly with
// `go test ./internal/sim -run TraceSummaryGolden -update`.
func TestTraceSummaryGolden(t *testing.T) {
	cases := []struct {
		name   string
		proto  sim.Protocol
		inputs []sim.Bit
		opts   sim.RunnerOptions
	}{
		{
			name:   "tree3_allones",
			proto:  protocols.Tree{Procs: 3},
			inputs: []sim.Bit{sim.One, sim.One, sim.One},
			opts:   sim.RunnerOptions{Seed: 1},
		},
		{
			name:   "chain3_mixed",
			proto:  protocols.Chain{Procs: 3},
			inputs: []sim.Bit{sim.One, sim.Zero, sim.One},
			opts:   sim.RunnerOptions{Seed: 7},
		},
		{
			name:   "tree3_crash",
			proto:  protocols.Tree{Procs: 3},
			inputs: []sim.Bit{sim.One, sim.One, sim.One},
			opts: sim.RunnerOptions{
				Seed:     11,
				Failures: []sim.FailureAt{{Proc: 1, AfterStep: 2}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run, err := sim.RandomRun(tc.proto, tc.inputs, tc.opts)
			if err != nil {
				t.Fatalf("RandomRun: %v", err)
			}
			var sb strings.Builder
			for _, line := range run.Trace() {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
			sb.WriteByte('\n')
			sb.WriteString(run.Summary())
			got := sb.String()

			path := filepath.Join("testdata", "trace_"+tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create it): %v", err)
			}
			if got != string(want) {
				t.Fatalf("Trace/Summary rendering diverged from %s.\nIf the change is intended, regenerate with:\n  go test ./internal/sim -run TraceSummaryGolden -update\n\ndiff:\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff locates the first divergent line, which identifies a golden
// mismatch without a diff dependency.
func firstDiff(want, got string) string {
	w := strings.SplitAfter(want, "\n")
	g := strings.SplitAfter(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  golden: %s  got:    %s", i+1, wl, gl)
		}
	}
	return "no difference"
}
