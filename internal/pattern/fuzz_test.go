package pattern

import (
	"testing"
)

// FuzzPatternCanonical fuzzes the pattern encode/decode round trip and the
// Validate invariants over mutated keys. Three properties:
//
//  1. ParseKey never panics; whatever parses must survive Validate without
//     panicking (invalid orders are reported as *InvalidOrderError, mutated
//     triples as parse errors — never a crash).
//  2. Encoding is idempotent: re-encoding a parsed pattern and parsing it
//     again reproduces the same canonical key, and validity is preserved
//     across the round trip.
//  3. For valid orders, rebuilding through Add (the transitive-closing
//     constructor) from Messages/Preds reproduces the identical key.
func FuzzPatternCanonical(f *testing.F) {
	f.Add("")
	f.Add("(p0,p1,1)<")
	f.Add("(p0,p1,1)< (p1,p2,1)<(p0,p1,1)")
	f.Add("(p0,p1,1)< (p0,p2,1)< (p2,p0,1)<(p0,p2,1) (p1,p0,1)<(p0,p1,1)")
	f.Add("(p0,p1,1)<(p0,p1,1)")                                // irreflexive violation
	f.Add("(p0,p1,1)<(p1,p0,1) (p1,p0,1)<(p0,p1,1)")            // antisymmetry violation
	f.Add("(p0,p1,1)< (p1,p2,1)<(p0,p1,1) (p2,p0,1)<(p1,p2,1)") // transitivity violation
	f.Add("(p0,p1,1)<(p9,p9,9)")                                // dangling predecessor
	f.Add("(p0,p1,x)<")                                         // mutated triple
	f.Fuzz(func(t *testing.T, key string) {
		p, err := ParseKey(key)
		if err != nil {
			return
		}
		valid := p.Validate() == nil

		k1 := p.Key()
		q, err := ParseKey(k1)
		if err != nil {
			t.Fatalf("ParseKey rejected a re-encoded key %q: %v", k1, err)
		}
		if k2 := q.Key(); k2 != k1 {
			t.Fatalf("encoding not idempotent: %q -> %q", k1, k2)
		}
		if (q.Validate() == nil) != valid {
			t.Fatalf("validity not preserved across round trip of %q", k1)
		}
		if !valid {
			return
		}
		// A valid order's Preds are complete causal pasts, so the
		// transitive closure in Add is a no-op and the rebuild is exact.
		r := New()
		for _, id := range p.Messages() {
			r.Add(id, p.Preds(id)...)
		}
		if rk := r.Key(); rk != k1 {
			t.Fatalf("Add-rebuild diverges: %q -> %q", k1, rk)
		}
	})
}
