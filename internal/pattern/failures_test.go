package pattern

import (
	"testing"

	"repro/internal/sim"
)

// relayState drives a three-processor scenario: p0 sends m1 to p2, then
// fails; p1, upon receiving p0's failure notice, sends m2 to p2.
type relayState struct {
	id   sim.ProcID
	sent bool
	goOn bool // p1: notice received, must send
}

func (s relayState) Kind() sim.StateKind {
	if (s.id == 0 && !s.sent) || (s.id == 1 && s.goOn && !s.sent) {
		return sim.Sending
	}
	return sim.Receiving
}
func (s relayState) Decided() (sim.Decision, bool) { return sim.NoDecision, false }
func (s relayState) Amnesic() bool                 { return false }
func (s relayState) Key() string {
	k := "relay{" + s.id.String()
	if s.sent {
		k += " sent"
	}
	if s.goOn {
		k += " go"
	}
	return k + "}"
}

type relayProto struct{}

func (relayProto) Name() string { return "relay" }
func (relayProto) N() int       { return 3 }
func (relayProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return relayState{id: p}
}
func (relayProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State {
	st := s.(relayState)
	if st.id == 1 && m.Notice {
		st.goOn = true
	}
	return st
}
func (relayProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	st := s.(relayState)
	if st.sent {
		return st, nil
	}
	st.sent = true
	return st, []sim.Envelope{{To: 2, Payload: ppPayload("m" + p.String())}}
}

func TestKnowledgeFlowsThroughFailureNotices(t *testing.T) {
	proto := relayProto{}
	cfg := sim.NewConfig(proto, []sim.Bit{sim.One, sim.One, sim.One})
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{cfg}}
	sched := sim.Schedule{
		{Proc: 0, Type: sim.SendStepEvent},                                   // m1 = (p0,p2,1)
		{Proc: 0, Type: sim.Fail},                                            // notices carry p0's causal past
		{Proc: 1, Type: sim.Deliver, Msg: sim.MsgID{From: 0, To: 1, Seq: 1}}, // p1 learns of the failure
		{Proc: 1, Type: sim.SendStepEvent},                                   // m2 = (p1,p2,1)
	}
	if err := run.Extend(sched); err != nil {
		t.Fatal(err)
	}
	p := FromRun(run)
	m1 := sim.MsgID{From: 0, To: 2, Seq: 1}
	m2 := sim.MsgID{From: 1, To: 2, Seq: 1}

	// Failure notices are not pattern elements…
	if p.Size() != 2 {
		t.Fatalf("pattern should hold exactly m1 and m2, has %d: %s", p.Size(), p.Key())
	}
	for _, id := range p.Messages() {
		if id != m1 && id != m2 {
			t.Fatalf("unexpected pattern element %s (failure notices must be excluded)", id)
		}
	}
	// …but knowledge still flows through them: the contents of m1 may be
	// known to p1 when it sends m2 (it received failed(p0), whose sender
	// knew m1), so m1 <_I m2.
	if !p.Less(m1, m2) {
		t.Fatalf("m1 should precede m2 through the failure notice: %s", p.Key())
	}
}

func TestFailureFreePatternIgnoresUnrelatedSends(t *testing.T) {
	// Without the failure, p1 never sends: the pattern is just {m1}.
	proto := relayProto{}
	cfg := sim.NewConfig(proto, []sim.Bit{sim.One, sim.One, sim.One})
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{cfg}}
	if err := run.Extend(sim.Schedule{{Proc: 0, Type: sim.SendStepEvent}}); err != nil {
		t.Fatal(err)
	}
	p := FromRun(run)
	if p.Size() != 1 {
		t.Fatalf("pattern size = %d, want 1", p.Size())
	}
}
