package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParseKey decodes a canonical pattern key — the output of Key — back into a
// Pattern. The stored relation is taken verbatim: ParseKey neither closes it
// transitively nor checks that it is a strict partial order, so a key that
// was hand-mutated can parse successfully and still fail Validate. For every
// pattern p, ParseKey(p.Key()) succeeds and re-encodes to the same key.
func ParseKey(s string) (*Pattern, error) {
	p := New()
	if s == "" {
		return p, nil
	}
	for _, entry := range strings.Split(s, " ") {
		id, preds, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		if p.Has(id) {
			return nil, fmt.Errorf("pattern: duplicate message %s in key", id)
		}
		set := make(idSet, len(preds))
		for _, q := range preds {
			set.add(q)
		}
		p.past[id] = set
	}
	return p, nil
}

// parseEntry decodes one "triple<past" element of a key. The '<' separating
// a message from its causal past is unambiguous because triples contain none.
func parseEntry(entry string) (sim.MsgID, []sim.MsgID, error) {
	i := strings.IndexByte(entry, '<')
	if i < 0 {
		return sim.MsgID{}, nil, fmt.Errorf("pattern: entry %q missing '<'", entry)
	}
	id, err := parseMsgID(entry[:i])
	if err != nil {
		return sim.MsgID{}, nil, err
	}
	rest := entry[i+1:]
	if rest == "" {
		return id, nil, nil
	}
	// The past is comma-separated, but triples contain commas too; the
	// unambiguous separator is the "),(" between consecutive triples.
	parts := strings.Split(rest, "),(")
	preds := make([]sim.MsgID, 0, len(parts))
	for j, part := range parts {
		if j > 0 {
			part = "(" + part
		}
		if j < len(parts)-1 {
			part += ")"
		}
		q, err := parseMsgID(part)
		if err != nil {
			return sim.MsgID{}, nil, err
		}
		preds = append(preds, q)
	}
	return id, preds, nil
}

// parseMsgID decodes one "(p<i>,p<j>,k)" triple.
func parseMsgID(s string) (sim.MsgID, error) {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return sim.MsgID{}, fmt.Errorf("pattern: malformed triple %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 3 {
		return sim.MsgID{}, fmt.Errorf("pattern: triple %q has %d fields, want 3", s, len(parts))
	}
	from, err := parseProcID(parts[0])
	if err != nil {
		return sim.MsgID{}, fmt.Errorf("pattern: triple %q: %w", s, err)
	}
	to, err := parseProcID(parts[1])
	if err != nil {
		return sim.MsgID{}, fmt.Errorf("pattern: triple %q: %w", s, err)
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil {
		return sim.MsgID{}, fmt.Errorf("pattern: triple %q: bad sequence number: %w", s, err)
	}
	return sim.MsgID{From: from, To: to, Seq: seq}, nil
}

func parseProcID(s string) (sim.ProcID, error) {
	if !strings.HasPrefix(s, "p") {
		return 0, fmt.Errorf("bad processor %q", s)
	}
	i, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad processor %q: %w", s, err)
	}
	return sim.ProcID(i), nil
}
