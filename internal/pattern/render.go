package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Hasse returns the covering pairs of the order — the transitive reduction —
// as (below, above) pairs in canonical order. These are the edges one would
// draw in the paper's figures.
func (p *Pattern) Hasse() [][2]sim.MsgID {
	var out [][2]sim.MsgID
	for _, b := range p.Messages() {
		for _, a := range p.Preds(b) {
			covered := false
			for _, mid := range p.Preds(b) {
				if mid != a && p.Less(a, mid) {
					covered = true
					break
				}
			}
			if !covered {
				out = append(out, [2]sim.MsgID{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0].Less(out[j][0])
		}
		return out[i][1].Less(out[j][1])
	})
	return out
}

// TopoSort returns the messages in a topological order of <_I, breaking ties
// canonically (lexicographically smallest available message first), so the
// output is deterministic.
func (p *Pattern) TopoSort() []sim.MsgID {
	remaining := make(map[sim.MsgID]int, len(p.past))
	for id, past := range p.past { //ccvet:ignore detrange builds the in-degree map; insertion order is unobservable
		remaining[id] = len(past)
	}
	out := make([]sim.MsgID, 0, len(p.past))
	for len(remaining) > 0 {
		var ready []sim.MsgID
		for id, deg := range remaining {
			if deg == 0 {
				ready = append(ready, id)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i].Less(ready[j]) })
		next := ready[0]
		out = append(out, next)
		delete(remaining, next)
		for id := range remaining { //ccvet:ignore detrange commutative decrements; order is unobservable
			if p.past[id].has(next) {
				remaining[id]--
			}
		}
	}
	return out
}

// Depth returns the length of the longest chain in the pattern — the number
// of sequential message hops of the execution (its communication latency in
// message delays).
func (p *Pattern) Depth() int {
	depth := make(map[sim.MsgID]int, len(p.past))
	max := 0
	for _, id := range p.TopoSort() {
		d := 1
		for q := range p.past[id] { //ccvet:ignore detrange max over predecessors is commutative
			if depth[q]+1 > d {
				d = depth[q] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Width returns the size of the largest antichain level when messages are
// layered by longest-chain depth — a simple measure of the pattern's
// parallelism. (This is layer width, not the maximum antichain of the order,
// which would require matching; layer width is what the figures depict.)
func (p *Pattern) Width() int {
	depth := make(map[sim.MsgID]int, len(p.past))
	counts := make(map[int]int)
	for _, id := range p.TopoSort() {
		d := 1
		for q := range p.past[id] { //ccvet:ignore detrange max over predecessors is commutative
			if depth[q]+1 > d {
				d = depth[q] + 1
			}
		}
		depth[id] = d
		counts[d]++
	}
	max := 0
	for _, c := range counts { //ccvet:ignore detrange max is commutative
		if c > max {
			max = c
		}
	}
	return max
}

// RenderASCII draws the pattern as a layered text diagram: one line per
// longest-chain level, messages in canonical order, followed by the Hasse
// edges. It is the textual analogue of the paper's pattern figures.
func (p *Pattern) RenderASCII() string {
	if p.Size() == 0 {
		return "(empty pattern)\n"
	}
	depth := make(map[sim.MsgID]int, len(p.past))
	for _, id := range p.TopoSort() {
		d := 1
		for q := range p.past[id] { //ccvet:ignore detrange max over predecessors is commutative
			if depth[q]+1 > d {
				d = depth[q] + 1
			}
		}
		depth[id] = d
	}
	byLevel := make(map[int][]sim.MsgID)
	maxLevel := 0
	for id, d := range depth { //ccvet:ignore detrange each level is sorted before rendering
		byLevel[d] = append(byLevel[d], id)
		if d > maxLevel {
			maxLevel = d
		}
	}
	var sb strings.Builder
	for lvl := 1; lvl <= maxLevel; lvl++ {
		ids := byLevel[lvl]
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = id.String()
		}
		fmt.Fprintf(&sb, "level %d: %s\n", lvl, strings.Join(parts, "  "))
	}
	sb.WriteString("edges:\n")
	for _, e := range p.Hasse() {
		fmt.Fprintf(&sb, "  %s -> %s\n", e[0], e[1])
	}
	return sb.String()
}

// RenderDOT emits the Hasse diagram in Graphviz DOT format.
func (p *Pattern) RenderDOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	for _, id := range p.Messages() {
		fmt.Fprintf(&sb, "  %q;\n", id.String())
	}
	for _, e := range p.Hasse() {
		fmt.Fprintf(&sb, "  %q -> %q;\n", e[0].String(), e[1].String())
	}
	sb.WriteString("}\n")
	return sb.String()
}
