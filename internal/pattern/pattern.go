// Package pattern implements communication patterns: the partial ordering
// <_I on the messages of an execution I, as defined in Section 3 of Dwork &
// Skeen (1984). The ordering is Lamport's "happens before" restricted to
// message-sending steps: m1 <_I m2 iff the contents of m1 may be known to
// the sender of m2 when m2 is sent. Messages are represented by their
// triples (p, q, k) — the k-th message from p to q — because the pattern
// abstracts away message contents.
package pattern

import (
	"sort"
	"strings"

	"repro/internal/sim"
)

// Pattern is the communication pattern of an execution: a finite set of
// message triples together with the strict partial order <_I, stored as each
// message's full causal past (the set of messages strictly before it).
type Pattern struct {
	// past[m] is the set of messages m' with m' <_I m. Every message of
	// the pattern has an entry, possibly empty.
	past map[sim.MsgID]idSet
}

type idSet map[sim.MsgID]struct{}

func (s idSet) add(id sim.MsgID)      { s[id] = struct{}{} }
func (s idSet) has(id sim.MsgID) bool { _, ok := s[id]; return ok }
func (s idSet) union(other idSet) {
	for id := range other { //ccvet:ignore detrange set union; insertion order is unobservable
		s[id] = struct{}{}
	}
}
func (s idSet) clone() idSet {
	out := make(idSet, len(s))
	for id := range s { //ccvet:ignore detrange map copy; insertion order is unobservable
		out[id] = struct{}{}
	}
	return out
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{past: make(map[sim.MsgID]idSet)}
}

// FromRun extracts the communication pattern of a run. Every message sent in
// the run — including failure notices — participates in the causal order;
// failure notices are then excluded from the pattern's message set (the
// paper's patterns order the protocol's messages; schemes are failure-free,
// where the distinction is vacuous, but knowledge still flows through
// notices in runs with failures).
func FromRun(r *sim.Run) *Pattern {
	n := r.Initial().N()
	// known[p] is the causal past of processor p: every message whose
	// contents p may know (messages it sent, messages it received, and
	// their pasts).
	known := make([]idSet, n)
	for i := range known {
		known[i] = make(idSet)
	}
	sendPast := make(map[sim.MsgID]idSet) // causal past frozen at send time
	notice := make(map[sim.MsgID]bool)

	for _, eff := range r.Effects {
		p := eff.Event.Proc
		for _, m := range eff.Sent {
			sendPast[m.ID] = known[p].clone()
			notice[m.ID] = m.Notice
			known[p].add(m.ID)
		}
		if eff.Received != nil {
			m := *eff.Received
			if past, ok := sendPast[m.ID]; ok {
				known[p].union(past)
			}
			known[p].add(m.ID)
		}
	}

	pat := New()
	for id, past := range sendPast { //ccvet:ignore detrange builds a map keyed by id; insertion order is unobservable
		if notice[id] {
			continue
		}
		filtered := make(idSet, len(past))
		for pid := range past { //ccvet:ignore detrange set filter; insertion order is unobservable
			if !notice[pid] {
				filtered.add(pid)
			}
		}
		pat.past[id] = filtered
	}
	return pat
}

// Clone returns a copy sharing the stored past sets. Past sets are
// immutable once inserted — Add always builds a fresh set and unions other
// sets into it without mutating them — so clones may extend the pattern
// independently while sharing all existing entries. Scheme enumeration
// leans on this: cloning a node's pattern is one map-header copy instead
// of a rebuild of every entry.
func (p *Pattern) Clone() *Pattern {
	out := &Pattern{past: make(map[sim.MsgID]idSet, len(p.past))}
	for id, past := range p.past { //ccvet:ignore detrange map copy; insertion order is unobservable
		out.past[id] = past
	}
	return out
}

// Add inserts a message with the given strict predecessors, closing the
// order transitively through already-present predecessors. It is intended
// for constructing expected patterns in tests and experiments.
func (p *Pattern) Add(id sim.MsgID, preds ...sim.MsgID) *Pattern {
	set := make(idSet)
	for _, q := range preds {
		set.add(q)
		if qp, ok := p.past[q]; ok {
			set.union(qp)
		}
	}
	p.past[id] = set
	return p
}

// Size returns the number of messages in the pattern.
func (p *Pattern) Size() int { return len(p.past) }

// Has reports whether the message belongs to the pattern.
func (p *Pattern) Has(id sim.MsgID) bool {
	_, ok := p.past[id]
	return ok
}

// Less reports whether a <_I b.
func (p *Pattern) Less(a, b sim.MsgID) bool {
	past, ok := p.past[b]
	return ok && past.has(a)
}

// Concurrent reports whether two distinct messages of the pattern are
// unordered.
func (p *Pattern) Concurrent(a, b sim.MsgID) bool {
	return a != b && p.Has(a) && p.Has(b) && !p.Less(a, b) && !p.Less(b, a)
}

// Messages lists the pattern's messages in canonical (lexicographic) order.
func (p *Pattern) Messages() []sim.MsgID {
	out := make([]sim.MsgID, 0, len(p.past))
	for id := range p.past {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Preds returns the messages strictly before id, in canonical order.
func (p *Pattern) Preds(id sim.MsgID) []sim.MsgID {
	past, ok := p.past[id]
	if !ok {
		return nil
	}
	out := make([]sim.MsgID, 0, len(past))
	for q := range past {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Key returns the canonical encoding of the pattern: messages in canonical
// order, each with its sorted causal past. Two patterns are equal iff their
// keys are equal.
func (p *Pattern) Key() string {
	var sb strings.Builder
	for i, id := range p.Messages() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(id.String())
		sb.WriteByte('<')
		for j, q := range p.Preds(id) {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(q.String())
		}
	}
	return sb.String()
}

// Equal reports whether two patterns are the same set of triples with the
// same order.
func (p *Pattern) Equal(q *Pattern) bool { return p.Key() == q.Key() }

// Validate checks that the stored relation is a strict partial order over
// exactly the pattern's message set: irreflexive, transitive, antisymmetric,
// with every predecessor itself a pattern message.
func (p *Pattern) Validate() error {
	// Iterate in canonical order so an invalid pattern always yields the
	// same error, whichever violation the map happened to surface first.
	for _, id := range p.Messages() {
		past := p.past[id]
		if past.has(id) {
			return &InvalidOrderError{Reason: "irreflexivity violated at " + id.String()}
		}
		for _, q := range p.Preds(id) {
			qp, ok := p.past[q]
			if !ok {
				return &InvalidOrderError{Reason: "predecessor " + q.String() + " of " + id.String() + " not in pattern"}
			}
			if qp.has(id) {
				return &InvalidOrderError{Reason: "antisymmetry violated between " + id.String() + " and " + q.String()}
			}
			for _, r := range p.Preds(q) {
				if !past.has(r) {
					return &InvalidOrderError{
						Reason: "transitivity violated: " + r.String() + " < " + q.String() + " < " + id.String(),
					}
				}
			}
		}
	}
	return nil
}

// InvalidOrderError reports a pattern whose relation is not a strict partial
// order.
type InvalidOrderError struct{ Reason string }

func (e *InvalidOrderError) Error() string { return "pattern: " + e.Reason }
