package pattern

import (
	"testing"

	"repro/internal/sim"
)

// ppPayload is a minimal payload for the ping-pong test protocol.
type ppPayload string

func (p ppPayload) Key() string { return string(p) }

// ppState drives a two-processor ping-pong: p0 sends "ping" to p1, p1
// replies "pong", p0 receives it.
type ppState struct {
	id    sim.ProcID
	stage int // p0: 0=send ping, 1=await pong, 2=done; p1: 0=await ping, 1=send pong, 2=done
}

func (s ppState) Kind() sim.StateKind {
	if (s.id == 0 && s.stage == 0) || (s.id == 1 && s.stage == 1) {
		return sim.Sending
	}
	return sim.Receiving
}
func (s ppState) Decided() (sim.Decision, bool) {
	if s.stage == 2 {
		return sim.Commit, true
	}
	return sim.NoDecision, false
}
func (s ppState) Amnesic() bool { return false }
func (s ppState) Key() string {
	return "pp{" + s.id.String() + "," + string(rune('0'+s.stage)) + "}"
}

type ppProto struct{}

func (ppProto) Name() string { return "pingpong" }
func (ppProto) N() int       { return 2 }
func (ppProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return ppState{id: p}
}
func (ppProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State {
	st := s.(ppState)
	if m.Notice {
		return st
	}
	if st.id == 1 && st.stage == 0 {
		st.stage = 1
	} else if st.id == 0 && st.stage == 1 {
		st.stage = 2
	}
	return st
}
func (ppProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	st := s.(ppState)
	switch {
	case st.id == 0 && st.stage == 0:
		st.stage = 1
		return st, []sim.Envelope{{To: 1, Payload: ppPayload("ping")}}
	case st.id == 1 && st.stage == 1:
		st.stage = 2
		return st, []sim.Envelope{{To: 0, Payload: ppPayload("pong")}}
	}
	return st, nil
}

// pingPongRun executes the ping-pong protocol to quiescence.
func pingPongRun(t *testing.T) *sim.Run {
	t.Helper()
	run, err := sim.RandomRun(ppProto{}, []sim.Bit{sim.One, sim.One}, sim.RunnerOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return run
}
