package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func id(f, t sim.ProcID, k int) sim.MsgID { return sim.MsgID{From: f, To: t, Seq: k} }

func TestAddAndLess(t *testing.T) {
	p := New()
	a, b, c := id(0, 1, 1), id(1, 2, 1), id(2, 0, 1)
	p.Add(a)
	p.Add(b, a)
	p.Add(c, b)
	if !p.Less(a, b) || !p.Less(b, c) {
		t.Fatal("direct precedence missing")
	}
	if !p.Less(a, c) {
		t.Fatal("transitive closure missing: a < c")
	}
	if p.Less(c, a) || p.Less(b, a) {
		t.Fatal("order is backwards")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	p := New()
	a, b := id(0, 1, 1), id(2, 3, 1)
	p.Add(a)
	p.Add(b)
	if !p.Concurrent(a, b) {
		t.Fatal("independent messages should be concurrent")
	}
	if p.Concurrent(a, a) {
		t.Fatal("a message is not concurrent with itself")
	}
}

func TestKeyCanonical(t *testing.T) {
	build := func(order []int) *Pattern {
		p := New()
		msgs := []sim.MsgID{id(0, 1, 1), id(0, 1, 2), id(1, 2, 1)}
		// Insert in the given permutation; preds fixed.
		for _, i := range order {
			switch i {
			case 0:
				p.Add(msgs[0])
			case 1:
				p.Add(msgs[1], msgs[0])
			case 2:
				p.Add(msgs[2], msgs[1])
			}
		}
		return p
	}
	a := build([]int{0, 1, 2})
	b := build([]int{0, 1, 2})
	if a.Key() != b.Key() {
		t.Fatal("equal patterns should have equal keys")
	}
	if !a.Equal(b) {
		t.Fatal("Equal should hold")
	}
}

func TestHasseReduction(t *testing.T) {
	p := New()
	a, b, c := id(0, 1, 1), id(1, 2, 1), id(2, 3, 1)
	p.Add(a)
	p.Add(b, a)
	p.Add(c, b) // a < c is implied; the Hasse diagram must omit a→c
	edges := p.Hasse()
	if len(edges) != 2 {
		t.Fatalf("Hasse edges = %d, want 2 (transitive edge must be reduced)", len(edges))
	}
	for _, e := range edges {
		if e[0] == a && e[1] == c {
			t.Fatal("transitive edge a→c should not be a covering pair")
		}
	}
}

func TestTopoSortRespectsOrder(t *testing.T) {
	p := New()
	msgs := []sim.MsgID{id(0, 1, 1), id(0, 2, 1), id(1, 2, 1), id(2, 3, 1)}
	p.Add(msgs[0])
	p.Add(msgs[1], msgs[0])
	p.Add(msgs[2], msgs[0])
	p.Add(msgs[3], msgs[1], msgs[2])
	order := p.TopoSort()
	pos := make(map[sim.MsgID]int, len(order))
	for i, m := range order {
		pos[m] = i
	}
	for _, m := range p.Messages() {
		for _, q := range p.Preds(m) {
			if pos[q] >= pos[m] {
				t.Fatalf("topological order violates %s < %s", q, m)
			}
		}
	}
}

func TestDepthAndWidth(t *testing.T) {
	p := New()
	a, b, c, d := id(0, 1, 1), id(0, 2, 1), id(1, 0, 1), id(2, 0, 1)
	p.Add(a)
	p.Add(b, a)
	p.Add(c, a)
	p.Add(d, b, c)
	if got := p.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := p.Width(); got != 2 {
		t.Errorf("Width = %d, want 2", got)
	}
}

// randomPattern builds a random DAG-shaped pattern for property testing.
func randomPattern(rng *rand.Rand, n int) *Pattern {
	p := New()
	var msgs []sim.MsgID
	for i := 0; i < n; i++ {
		m := id(sim.ProcID(rng.Intn(4)), sim.ProcID(rng.Intn(4)), i+1)
		var preds []sim.MsgID
		for _, q := range msgs {
			if rng.Intn(3) == 0 {
				preds = append(preds, q)
			}
		}
		p.Add(m, preds...)
		msgs = append(msgs, m)
	}
	return p
}

func TestPatternOrderLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng, 2+rng.Intn(10))
		if err := p.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		msgs := p.Messages()
		for _, a := range msgs {
			if p.Less(a, a) {
				return false // irreflexive
			}
			for _, b := range msgs {
				if p.Less(a, b) && p.Less(b, a) {
					return false // antisymmetric
				}
				for _, c := range msgs {
					if p.Less(a, b) && p.Less(b, c) && !p.Less(a, c) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromRunPingPong(t *testing.T) {
	run := pingPongRun(t)
	p := FromRun(run)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d, want 2", p.Size())
	}
	m1 := id(0, 1, 1)
	m2 := id(1, 0, 1)
	if !p.Less(m1, m2) {
		t.Fatalf("want %s < %s in pattern %s", m1, m2, p.Key())
	}
}

func TestRenderings(t *testing.T) {
	run := pingPongRun(t)
	p := FromRun(run)
	ascii := p.RenderASCII()
	if !strings.Contains(ascii, "level 1") || !strings.Contains(ascii, "level 2") {
		t.Errorf("ASCII rendering missing levels:\n%s", ascii)
	}
	dot := p.RenderDOT("test")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("DOT rendering malformed:\n%s", dot)
	}
	if New().RenderASCII() == "" {
		t.Error("empty pattern rendering should be non-empty text")
	}
}
