package pattern

import (
	"math/rand"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

// TestPatternInvariantUnderCommutingEvents verifies the property that makes
// communication patterns the right abstraction: swapping two adjacent
// schedule events at different processors, where neither delivers a message
// the other just sent, yields the same final configuration and the same
// communication pattern. (This is why the scheme enumerator may deduplicate
// interleavings by configuration + causal history.)
func TestPatternInvariantUnderCommutingEvents(t *testing.T) {
	protos := []sim.Protocol{
		protocols.AckCommit{Procs: 4},
		protocols.Chain{Procs: 4},
		protocols.Perverse{},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 15; seed++ {
				rng := rand.New(rand.NewSource(seed))
				inputs := make([]sim.Bit, proto.N())
				for i := range inputs {
					if rng.Intn(2) == 1 {
						inputs[i] = sim.One
					}
				}
				base, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				swapped, i := commutablePair(base, rng)
				if i < 0 {
					continue // no commuting pair in this run
				}
				redo := &sim.Run{Proto: proto, Configs: []*sim.Config{sim.NewConfig(proto, inputs)}}
				if err := redo.Extend(swapped); err != nil {
					t.Fatalf("seed %d: swapped schedule inapplicable at %d: %v", seed, i, err)
				}
				if base.Final().Key() != redo.Final().Key() {
					t.Fatalf("seed %d: final configurations differ after commuting events %d,%d",
						seed, i, i+1)
				}
				if !FromRun(base).Equal(FromRun(redo)) {
					t.Fatalf("seed %d: patterns differ after commuting events %d,%d", seed, i, i+1)
				}
			}
		})
	}
}

// commutablePair picks a random adjacent pair of independent events in the
// run's schedule and returns the schedule with that pair swapped, along with
// the index (or -1 if none exists). Two adjacent events are independent when
// they are at different processors and the second does not deliver a message
// sent by the first.
func commutablePair(r *sim.Run, rng *rand.Rand) (sim.Schedule, int) {
	var candidates []int
	for i := 0; i+1 < len(r.Schedule); i++ {
		a, b := r.Schedule[i], r.Schedule[i+1]
		if a.Proc == b.Proc {
			continue
		}
		if b.Type == sim.Deliver {
			sentByA := false
			for _, m := range r.Effects[i].Sent {
				if m.ID == b.Msg {
					sentByA = true
				}
			}
			if sentByA {
				continue
			}
		}
		// Failure events interact with everyone's buffers; a delivery
		// of a notice just sent is the same hazard as above.
		if a.Type == sim.Fail && b.Type == sim.Deliver && b.Msg.From == a.Proc {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return nil, -1
	}
	i := candidates[rng.Intn(len(candidates))]
	out := append(sim.Schedule(nil), r.Schedule...)
	out[i], out[i+1] = out[i+1], out[i]
	return out, i
}
