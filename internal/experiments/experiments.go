// Package experiments regenerates every figure and quantitative claim of
// the paper's Section 4 as a set of runnable experiments, E1 through E9.
// Each experiment returns a Report pairing the paper's claim with what the
// implementation measured; cmd/ccexp prints them and EXPERIMENTS.md records
// them.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/protocols"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/taxonomy"
	"repro/internal/transform"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Artifact names the paper artifact reproduced, e.g. "Figure 1".
	Artifact string
	// Claim is the paper's statement.
	Claim string
	// Measured lists what the implementation observed.
	Measured []string
	// OK reports whether the measurement matches the claim.
	OK bool
	// Partial means the experiment was interrupted (context cancellation
	// or deadline) before its exhaustive passes finished: the measurements
	// cover a prefix only and prove nothing either way.
	Partial bool
}

// String renders the report.
func (r Report) String() string {
	status := "FAIL"
	if r.Partial {
		status = "PARTIAL"
	} else if r.OK {
		status = "ok"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s [%s]\n  paper: %s\n", r.ID, r.Artifact, status, r.Claim)
	for _, m := range r.Measured {
		fmt.Fprintf(&sb, "  measured: %s\n", m)
	}
	return sb.String()
}

// Options scales experiment effort.
type Options struct {
	// Quick skips the exhaustive model-checking passes.
	Quick bool
	// Deep adds the N=4 exhaustive solver checks to E1–E3 (failure-free:
	// with failure injection the N=4 spaces exceed the node budget).
	// Ignored when Quick is set.
	Deep bool
	// Parallelism is the worker count for exhaustive explorations
	// (0 = GOMAXPROCS). Results are byte-identical at any setting.
	Parallelism int
	// Reduction selects a state-space reduction for the conformance
	// passes of E1–E3 (ample-set partial-order reduction, symmetry
	// canonicalization, or both). Reductions preserve verdicts, so the
	// pass/fail outcomes are unchanged; the configuration counts in the
	// measured lines shrink to the reduced space. With Deep set, a
	// non-none reduction additionally unlocks the star(4) MaxFailures=1
	// lattice cell in E2, which is infeasible unreduced (it exceeds the
	// 4M-node budget) but completes under ReduceBoth. The safety-report
	// passes (E2's Corollary 6 scan, E7) always run unreduced: Safety()
	// inspects every accessible state, and a reduced run only retains
	// orbit representatives.
	Reduction checker.Reduction
	// Context, when non-nil, bounds the exhaustive passes: on
	// cancellation or deadline the running experiment returns a Partial
	// report and the remaining passes are skipped, mirroring the
	// cccheck -timeout convention.
	Context context.Context
}

// ctx returns the configured context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// All runs every experiment in order. When Options.Context expires the
// interrupted experiment reports Partial and the remaining experiments are
// not started; callers see exactly the prefix that ran.
func All(opts Options) []Report {
	fns := []func(Options) Report{
		E1Figure1Tree,
		E2Figure2Star,
		E3Figure3Chain,
		E4Figure4Perverse,
		E5Lattice,
		E6Theorem7,
		E7Theorem2,
		E8MessageComplexity,
		E9Transforms,
	}
	var reports []Report
	for _, f := range fns {
		reports = append(reports, f(opts))
		if opts.ctx().Err() != nil {
			break
		}
	}
	return reports
}

func unanimity(t taxonomy.Termination, c taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c}
}

// deepCheck runs a Deep-mode N=4 exhaustive conformance pass at the given
// failure budget. The standard cells are failure-free: at N=4 even a
// single injected failure pushes these spaces past the node budget
// unreduced (star(4) and chain(4) both exceed 4M nodes at MaxFailures=1),
// while the failure-free space stays exhaustive over all 16 input vectors.
// With a reduction enabled, E2 additionally calls this with maxFail=1 —
// the reduced star(4) space completes within the budget (≈475k
// configurations under ReduceBoth), making that lattice cell checkable
// for the first time.
func deepCheck(r Report, proto sim.Protocol, p taxonomy.Problem, maxFail int, opts Options) Report {
	x, err := checker.CheckContext(opts.ctx(), proto, p, checker.Options{
		MaxFailures: maxFail, Parallelism: opts.Parallelism, Reduction: opts.Reduction,
	})
	if err != nil {
		return fail(r, err)
	}
	failDesc := "failure-free"
	if maxFail > 0 {
		failDesc = fmt.Sprintf("≤%d-failure", maxFail)
	}
	if !x.Conforms() {
		r.OK = false
		r.Measured = append(r.Measured, fmt.Sprintf("deep: %s violated: %s", p.Name(), x.Violations[0].String()))
	} else {
		r.Measured = append(r.Measured, fmt.Sprintf("deep: %s conforms to %s over %d %s configurations (all %d input vectors%s)",
			proto.Name(), p.Name(), x.NodeCount, failDesc, 1<<proto.N(), reductionNote(opts)))
	}
	return r
}

// reductionNote annotates a measured line with the active reduction.
func reductionNote(opts Options) string {
	if opts.Reduction == checker.ReduceNone {
		return ""
	}
	return fmt.Sprintf(", reduce=%v", opts.Reduction)
}

func ones(n int) []sim.Bit {
	v := make([]sim.Bit, n)
	for i := range v {
		v[i] = sim.One
	}
	return v
}

// E1Figure1Tree reproduces Figure 1: the tree protocol's two-phase
// communication scheme, its WT-TC conformance, and the Theorem 8 scenario
// showing its pattern cannot solve HT-IC.
func E1Figure1Tree(opts Options) Report {
	r := Report{
		ID:       "E1",
		Artifact: "Figure 1 (WT-TC tree protocol, 7 processors)",
		Claim:    "the two-phase tree scheme solves WT-TC but its pattern cannot solve HT-IC",
		OK:       true,
	}
	proto := protocols.Tree{Procs: 7}

	// Regenerate the all-ones (commit) pattern of the figure.
	en, err := scheme.EnumerateContext(opts.ctx(), proto, ones(7), scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	set := en.Set
	if set.Len() != 1 {
		r.OK = false
	}
	pat := set.Patterns()[0]
	r.Measured = append(r.Measured,
		fmt.Sprintf("all-ones scheme: %d pattern(s); commit pattern has %d messages, depth %d (phases: vals up, bias down, acks up, commit down)",
			set.Len(), pat.Size(), pat.Depth()))

	run, err := sim.RandomRun(proto, ones(7), sim.RunnerOptions{Seed: 1})
	if err != nil {
		return fail(r, err)
	}
	r.Measured = append(r.Measured, fmt.Sprintf("failure-free commit run: %d messages, %d events", run.MessagesSent(), run.Steps()))

	if !opts.Quick {
		x, err := checker.CheckContext(opts.ctx(), protocols.Tree{Procs: 3}, unanimity(taxonomy.WT, taxonomy.TC),
			checker.Options{MaxFailures: 2, Parallelism: opts.Parallelism, Reduction: opts.Reduction})
		if err != nil {
			return fail(r, err)
		}
		if !x.Conforms() {
			r.OK = false
			r.Measured = append(r.Measured, "WT-TC violated: "+x.Violations[0].String())
		} else {
			r.Measured = append(r.Measured, fmt.Sprintf("tree(3) conforms to WT-TC over %d configurations (≤2 failures, all inputs%s)", x.NodeCount, reductionNote(opts)))
		}
		if opts.Deep {
			r = deepCheck(r, protocols.Tree{Procs: 4}, unanimity(taxonomy.WT, taxonomy.TC), 0, opts)
		}
	}

	for _, ev := range []core.Evidence{core.Theorem8Pattern(), core.Theorem8Replay()} {
		if !ev.OK {
			r.OK = false
		}
		r.Measured = append(r.Measured, ev.String())
	}
	return r
}

// E2Figure2Star reproduces Figure 2: the centralized protocol solves HT-IC,
// violates Corollary 6, and breaks total consistency under failures.
func E2Figure2Star(opts Options) Report {
	r := Report{
		ID:       "E2",
		Artifact: "Figure 2 (HT-IC star protocol)",
		Claim:    "solves HT-IC; not WT-TC — the coordinator decides and halts before anyone shares its bias (Corollary 6 violated)",
		OK:       true,
	}
	run, err := sim.RandomRun(protocols.Star{Procs: 5}, ones(5), sim.RunnerOptions{Seed: 1})
	if err != nil {
		return fail(r, err)
	}
	r.Measured = append(r.Measured,
		fmt.Sprintf("failure-free N=5 run: %d messages (inputs + decision broadcast + relays), all halted", run.MessagesSent()))

	if opts.Quick {
		return r
	}
	x, err := checker.CheckContext(opts.ctx(), protocols.Star{Procs: 3}, unanimity(taxonomy.HT, taxonomy.IC),
		checker.Options{MaxFailures: 2, Parallelism: opts.Parallelism, Reduction: opts.Reduction})
	if err != nil {
		return fail(r, err)
	}
	if !x.Conforms() {
		r.OK = false
		r.Measured = append(r.Measured, "HT-IC violated: "+x.Violations[0].String())
	} else {
		r.Measured = append(r.Measured, fmt.Sprintf("star(3) conforms to HT-IC over %d configurations%s", x.NodeCount, reductionNote(opts)))
	}
	if opts.Deep {
		r = deepCheck(r, protocols.Star{Procs: 4}, unanimity(taxonomy.HT, taxonomy.IC), 0, opts)
		if opts.Reduction != checker.ReduceNone {
			// The previously-infeasible lattice cell: star(4) with one
			// injected failure exceeds the 4M-node budget unreduced, but
			// the reduced quotient completes.
			r = deepCheck(r, protocols.Star{Procs: 4}, unanimity(taxonomy.HT, taxonomy.IC), 1, opts)
		}
	}

	xTC, err := checker.CheckContext(opts.ctx(), protocols.Star{Procs: 3}, unanimity(taxonomy.WT, taxonomy.TC),
		checker.Options{MaxFailures: 2, Parallelism: opts.Parallelism, StopAtFirstViolation: true})
	if err != nil {
		return fail(r, err)
	}
	if xTC.Conforms() {
		r.OK = false
		r.Measured = append(r.Measured, "unexpectedly satisfied WT-TC")
	} else {
		r.Measured = append(r.Measured, "WT-TC violation found: "+xTC.Violations[0].Detail)
	}

	xS, err := checker.ExploreContext(opts.ctx(), protocols.Star{Procs: 3}, checker.Options{MaxFailures: 2, Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	rep := xS.Safety()
	if len(rep.Corollary6) == 0 {
		r.OK = false
		r.Measured = append(r.Measured, "no Corollary 6 violation found — unexpected")
	} else {
		r.Measured = append(r.Measured, "Corollary 6 violation: "+rep.Corollary6[0].Detail)
	}
	return r
}

// E3Figure3Chain reproduces Figure 3: the chain protocol's unique
// failure-free pattern, WT-IC conformance, and the amnesic scenario of
// Theorem 13.
func E3Figure3Chain(opts Options) Report {
	r := Report{
		ID:       "E3",
		Artifact: "Figure 3 (WT-IC chain protocol)",
		Claim:    "one failure-free pattern (inputs to p0, then a decision chain); solves WT-IC; the pattern cannot support ST-IC",
		OK:       true,
	}
	set, err := scheme.Of(protocols.Chain{Procs: 4}, scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	if set.Len() != 1 {
		r.OK = false
	}
	pat := set.Patterns()[0]
	r.Measured = append(r.Measured,
		fmt.Sprintf("scheme size %d; the pattern has %d messages, depth %d (N−1 inputs + N−1 chain links)",
			set.Len(), pat.Size(), pat.Depth()))

	if !opts.Quick {
		x, err := checker.CheckContext(opts.ctx(), protocols.Chain{Procs: 3}, unanimity(taxonomy.WT, taxonomy.IC),
			checker.Options{MaxFailures: 2, Parallelism: opts.Parallelism, Reduction: opts.Reduction})
		if err != nil {
			return fail(r, err)
		}
		if !x.Conforms() {
			r.OK = false
			r.Measured = append(r.Measured, "WT-IC violated: "+x.Violations[0].String())
		} else {
			r.Measured = append(r.Measured, fmt.Sprintf("chain(3) conforms to WT-IC over %d configurations%s", x.NodeCount, reductionNote(opts)))
		}
		if opts.Deep {
			r = deepCheck(r, protocols.Chain{Procs: 4}, unanimity(taxonomy.WT, taxonomy.IC), 0, opts)
		}
	}

	ev := core.Theorem13ChainReplay()
	if !ev.OK {
		r.OK = false
	}
	r.Measured = append(r.Measured, ev.String())
	return r
}

// E4Figure4Perverse reproduces Figure 4: exactly four failure-free patterns
// obeying the dashed-message rules, WT-TC conformance, and the forgetful-p0
// contradiction.
func E4Figure4Perverse(opts Options) Report {
	r := Report{
		ID:       "E4",
		Artifact: "Figure 4 (perverse WT-TC protocol)",
		Claim:    "exactly 4 failure-free patterns (none / m1 / m2 / m1,m2,m3); no ST-TC protocol shares the scheme",
		OK:       true,
	}
	en, err := scheme.EnumerateContext(opts.ctx(), protocols.Perverse{}, ones(4), scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	set := en.Set
	r.Measured = append(r.Measured, fmt.Sprintf("all-ones enumeration: %d patterns", set.Len()))
	if set.Len() != 4 {
		r.OK = false
	}

	ev := core.Theorem13Perverse()
	if !ev.OK {
		r.OK = false
	}
	r.Measured = append(r.Measured, ev.String())

	if !opts.Quick {
		// Failure-injected exploration of the perverse protocol is
		// intractable (the race bookkeeping multiplies the space), so
		// the exhaustive pass is failure-free; randomized failure
		// injection covers the rest (see the lattice witnesses).
		x, err := checker.CheckContext(opts.ctx(), protocols.Perverse{}, unanimity(taxonomy.WT, taxonomy.TC),
			checker.Options{MaxFailures: 0, Parallelism: opts.Parallelism})
		if err != nil {
			return fail(r, err)
		}
		if !x.Conforms() {
			r.OK = false
			r.Measured = append(r.Measured, "WT-TC violated: "+x.Violations[0].String())
		} else {
			r.Measured = append(r.Measured, fmt.Sprintf("perverse conforms to WT-TC over %d failure-free configurations (failure runs covered by the seeded chaos sweep)", x.NodeCount))
		}
	}
	return r
}

// E5Lattice reproduces the closing diagram.
func E5Lattice(opts Options) Report {
	r := Report{
		ID:       "E5",
		Artifact: "Closing diagram (six-problem lattice)",
		Claim:    "WT≺ST≺HT on each consistency, IC≺TC on each termination, all strict; HT-IC incomparable to WT-TC and ST-TC",
		OK:       true,
	}
	l := core.BuildLattice()
	evidence := core.Witnesses(core.WitnessOptions{Exhaustive: !opts.Quick, Parallelism: opts.Parallelism})
	l.Evidence = evidence
	if !core.AllOK(evidence) {
		r.OK = false
	}
	okCount := 0
	for _, ev := range evidence {
		if ev.OK {
			okCount++
		}
	}
	r.Measured = append(r.Measured,
		fmt.Sprintf("%d/%d machine-checked witnesses verified; derived matrix matches the diagram", okCount, len(evidence)))
	for _, row := range strings.Split(strings.TrimRight(l.Render(), "\n"), "\n") {
		r.Measured = append(r.Measured, row)
	}
	return r
}

// E6Theorem7 reproduces the O(N²) step bound of the termination protocol.
func E6Theorem7(opts Options) Report {
	r := Report{
		ID:       "E6",
		Artifact: "Theorem 7 / Appendix (termination protocol)",
		Claim:    "WT-TC is established from any safe configuration within O(N²) steps per processor",
		OK:       true,
	}
	sizes := []int{2, 3, 4, 5, 6, 7, 8}
	if opts.Quick {
		sizes = []int{2, 3, 4, 5}
	}
	r.Measured = append(r.Measured, fmt.Sprintf("%3s %16s %16s %8s", "N", "max steps/proc", "bound 2N(N-1)+N", "within"))
	for _, n := range sizes {
		maxSteps := 0
		for seed := int64(0); seed < 20; seed++ {
			inputs := make([]sim.Bit, n)
			for i := range inputs {
				if (seed>>uint(i))&1 == 1 {
					inputs[i] = sim.One
				}
			}
			var failures []sim.FailureAt
			if seed%3 == 1 && n > 2 {
				failures = append(failures, sim.FailureAt{Proc: sim.ProcID(seed) % sim.ProcID(n), AfterStep: int(seed) % 7})
			}
			run, err := sim.RandomRun(protocols.Termination{Procs: n}, inputs, sim.RunnerOptions{Seed: seed, Failures: failures})
			if err != nil {
				return fail(r, err)
			}
			for p := 0; p < n; p++ {
				if s := run.StepsOf(sim.ProcID(p)); s > maxSteps {
					maxSteps = s
				}
			}
		}
		bound := 2*n*(n-1) + n
		within := maxSteps <= bound
		if !within {
			r.OK = false
		}
		r.Measured = append(r.Measured, fmt.Sprintf("%3d %16d %16d %8v", n, maxSteps, bound, within))
	}
	return r
}

// E7Theorem2 reproduces the safe-state analysis: all states of the WT-TC
// protocols are safe; the star protocol and the naive full exchange are not.
func E7Theorem2(opts Options) Report {
	r := Report{
		ID:       "E7",
		Artifact: "Theorem 2 (safe states) and Corollary 6",
		Claim:    "every accessible state of a WT-TC protocol is safe; protocols that are not WT-TC exhibit unsafe states or bias violations",
		OK:       true,
	}
	if opts.Quick {
		r.Measured = append(r.Measured, "(skipped in quick mode: requires exhaustive exploration)")
		return r
	}
	type row struct {
		proto    sim.Protocol
		wantSafe bool
		maxFail  int
	}
	rows := []row{
		{protocols.Tree{Procs: 3}, true, 2},
		{protocols.AckCommit{Procs: 3}, true, 2},
		{protocols.Perverse{}, true, 0},
		{protocols.Star{Procs: 3}, false, 2},
		{protocols.FullExchange{Procs: 3}, false, 1},
	}
	r.Measured = append(r.Measured, fmt.Sprintf("%-18s %8s %8s %8s %10s", "protocol", "states", "unsafe", "cor6", "as claimed"))
	for _, row := range rows {
		x, err := checker.ExploreContext(opts.ctx(), row.proto, checker.Options{MaxFailures: row.maxFail, Parallelism: opts.Parallelism})
		if err != nil {
			return fail(r, err)
		}
		rep := x.Safety()
		asClaimed := rep.AllSafe() == row.wantSafe
		if row.wantSafe {
			asClaimed = asClaimed && len(rep.Corollary6) == 0
		}
		if !asClaimed {
			r.OK = false
		}
		r.Measured = append(r.Measured, fmt.Sprintf("%-18s %8d %8d %8d %10v",
			row.proto.Name(), rep.TotalStates, len(rep.Unsafe), len(rep.Corollary6), asClaimed))
	}
	return r
}

// E8MessageComplexity measures failure-free message counts across the
// protocol library: the executable form of the introduction's claim that
// reducibility bounds message complexity (harder problems need richer
// communication).
func E8MessageComplexity(opts Options) Report {
	r := Report{
		ID:       "E8",
		Artifact: "Message complexity (introduction / reducibility consequence)",
		Claim:    "problems higher in the lattice require more failure-free messages: chain (WT-IC) < ack-commit (WT-TC) < star (HT-IC) ~ halting commit (HT-TC)",
		OK:       true,
	}
	sizes := []int{3, 5, 7, 9}
	if opts.Quick {
		sizes = []int{3, 5}
	}
	r.Measured = append(r.Measured, fmt.Sprintf("%3s %14s %16s %12s %18s %16s", "N",
		"chain(WT-IC)", "ackcommit(WT-TC)", "star(HT-IC)", "haltcommit(HT-TC)", "fullexch(WT-IC)"))
	for _, n := range sizes {
		counts := make([]int, 5)
		protos := []sim.Protocol{
			protocols.Chain{Procs: n},
			protocols.AckCommit{Procs: n},
			protocols.Star{Procs: n},
			protocols.HaltingCommit{Procs: n},
			protocols.FullExchange{Procs: n},
		}
		for i, proto := range protos {
			run, err := sim.RandomRun(proto, ones(n), sim.RunnerOptions{Seed: 7})
			if err != nil {
				return fail(r, err)
			}
			counts[i] = run.MessagesSent()
		}
		r.Measured = append(r.Measured, fmt.Sprintf("%3d %14d %16d %12d %18d %16d",
			n, counts[0], counts[1], counts[2], counts[3], counts[4]))
		// Shape check: the WT-IC chain is cheapest; the halting TC
		// protocol costs at least as much as the plain commit.
		if !(counts[0] < counts[1] && counts[1] <= counts[3] && counts[0] < counts[2]) {
			r.OK = false
		}
	}

	// The dual axis: pattern depth — the longest causal chain, i.e. the
	// execution's latency in message delays. Because the model serializes
	// a sender's messages (one per sending step), broadcast fan-out costs
	// depth too: the chain's depth is exactly N (one vote, then N−1
	// forwarding hops), while the two-phase ack-commit pays 2(N−1) for
	// its two serialized coordinator broadcasts plus the vote and ack.
	r.Measured = append(r.Measured, "", "pattern depth (longest causal chain = latency in message delays):")
	r.Measured = append(r.Measured, fmt.Sprintf("%3s %14s %16s %12s %18s", "N",
		"chain(WT-IC)", "ackcommit(WT-TC)", "star(HT-IC)", "haltcommit(HT-TC)"))
	for _, n := range sizes {
		depths := make([]int, 4)
		protos := []sim.Protocol{
			protocols.Chain{Procs: n},
			protocols.AckCommit{Procs: n},
			protocols.Star{Procs: n},
			protocols.HaltingCommit{Procs: n},
		}
		for i, proto := range protos {
			run, err := sim.RandomRun(proto, ones(n), sim.RunnerOptions{Seed: 7})
			if err != nil {
				return fail(r, err)
			}
			depths[i] = pattern.FromRun(run).Depth()
		}
		r.Measured = append(r.Measured, fmt.Sprintf("%3d %14d %16d %12d %18d",
			n, depths[0], depths[1], depths[2], depths[3]))
		// Chain: vote + N−1 forwarding hops. Ack-commit: vote + bias
		// broadcast (N−1 serialized sends) + ack + commit broadcast.
		if depths[0] != n || depths[1] != 2+2*(n-1) {
			r.OK = false
		}
	}
	return r
}

// E9Transforms reproduces the Section 3 transformations: padding preserves
// schemes, E̅-elimination shrinks them, and both preserve unanimity
// decisions.
func E9Transforms(opts Options) Report {
	r := Report{
		ID:       "E9",
		Artifact: "Section 3 transformations (total communication, E̅ elimination)",
		Claim:    "padding preserves the scheme; the E̅-free simulation's patterns are a subset; failure-free decisions are unchanged",
		OK:       true,
	}
	inner := protocols.Chain{Procs: 3}
	s0, err := scheme.Of(inner, scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	sTC, err := scheme.Of(transform.TotalComm{Inner: inner}, scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	sEB, err := scheme.Of(transform.EliminateEBar{Inner: inner}, scheme.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return fail(r, err)
	}
	if !s0.Equal(sTC) {
		r.OK = false
		r.Measured = append(r.Measured, "padding changed the scheme — unexpected")
	} else {
		r.Measured = append(r.Measured, fmt.Sprintf("total-communication scheme equals the original (%d pattern(s))", s0.Len()))
	}
	if !sEB.SubsetOf(s0) {
		r.OK = false
		r.Measured = append(r.Measured, "E̅-elimination enlarged the scheme — unexpected")
	} else {
		r.Measured = append(r.Measured, fmt.Sprintf("E̅-free scheme ⊆ original (%d ⊆ %d patterns)", sEB.Len(), s0.Len()))
	}
	for _, inputs := range sim.AllInputs(3) {
		want := sim.Unanimity(inputs)
		for _, proto := range []sim.Protocol{transform.TotalComm{Inner: inner}, transform.EliminateEBar{Inner: inner}} {
			run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 5})
			if err != nil {
				return fail(r, err)
			}
			for p := 0; p < 3; p++ {
				if d, ok := run.DecisionOf(sim.ProcID(p)); !ok || d != want {
					r.OK = false
					r.Measured = append(r.Measured, fmt.Sprintf("%s: wrong decision on %v", proto.Name(), inputs))
				}
			}
		}
	}
	r.Measured = append(r.Measured, "failure-free decisions preserved across all input vectors")
	return r
}

func fail(r Report, err error) Report {
	r.OK = false
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		r.Partial = true
		r.Measured = append(r.Measured, "interrupted: "+err.Error()+" (partial prefix only; rerun without a timeout for the full pass)")
		return r
	}
	r.Measured = append(r.Measured, "error: "+err.Error())
	return r
}
