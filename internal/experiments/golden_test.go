package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestE5LatticeGolden pins the full E5 report — the lattice diagram, the
// derived relation matrix, and all 19 machine-checked witnesses with their
// node counts — against a committed golden file. The exploration engine is
// deterministic by contract, so any diff here is a behaviour change:
// either intended (regenerate with `go test -run E5LatticeGolden -update`)
// or a regression the differential suite should have caught.
func TestE5LatticeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("E5 exhaustive pass is slow; skipped with -short")
	}
	got := E5Lattice(Options{}).String()
	path := filepath.Join("testdata", "e5_lattice.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("E5 output diverged from the golden file.\nIf the change is intended, regenerate with:\n  go test ./internal/experiments -run E5LatticeGolden -update\n\ndiff:\n%s", diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff: the first divergent line with
// context, which locates a golden mismatch without a diff dependency.
func diffLines(want, got string) string {
	w := splitKeepNL(want)
	g := splitKeepNL(got)
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  golden: %s  got:    %s", i+1, wl, gl)
		}
	}
	return "(outputs equal?)"
}

func splitKeepNL(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i < len(s) {
			i++
		}
		out = append(out, s[:i])
		s = s[i:]
	}
	return out
}
