package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	reports := All(Options{Quick: true})
	if len(reports) != 9 {
		t.Fatalf("expected 9 experiments, got %d", len(reports))
	}
	seen := make(map[string]bool)
	for _, r := range reports {
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Artifact, strings.Join(r.Measured, "\n"))
		}
		if len(r.Measured) == 0 {
			t.Errorf("%s has no measurements", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s rendering missing its ID", r.ID)
		}
	}
}

func TestE6BoundHolds(t *testing.T) {
	r := E6Theorem7(Options{Quick: true})
	if !r.OK {
		t.Fatalf("Theorem 7 bound violated:\n%s", strings.Join(r.Measured, "\n"))
	}
}

func TestE8Ordering(t *testing.T) {
	r := E8MessageComplexity(Options{Quick: true})
	if !r.OK {
		t.Fatalf("message-complexity shape violated:\n%s", strings.Join(r.Measured, "\n"))
	}
}

func TestAllExperimentsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive experiments take minutes")
	}
	for _, r := range All(Options{}) {
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Artifact, strings.Join(r.Measured, "\n"))
		}
	}
}
