package taxonomy

import (
	"fmt"

	"repro/internal/sim"
)

// StreamChecker validates a run against a problem one configuration at a
// time, retaining O(N) state instead of the run's whole configuration
// history. It exists for conformance replay of live traces: a distributed
// soak at N=100 records millions of events, and materializing a sim.Run
// for Problem.Validate would hold every intermediate configuration —
// O(events × N²) memory — while the checks themselves only ever need the
// current configuration, a per-processor first-decision ledger, and a
// has-a-failure-happened flag.
//
// StreamChecker produces exactly the violations Problem.Validate produces
// on the equivalent materialized run, in the same order with the same
// details (TestStreamCheckerMatchesValidate holds the two implementations
// together). Decisions are irrevocable in the model — sim.Apply rejects a
// revision — which is what makes the first-decision ledger a faithful
// substitute for scanning the history.
type StreamChecker struct {
	p      Problem
	inputs []sim.Bit
	n      int

	idx       int  // index of the last observed configuration
	anyFail   bool // a Fail or Omit event preceded the current configuration
	undecided int  // processors with no recorded first decision

	omitted []bool // omitted[p]: a delivery to p was omission-suppressed

	first       []sim.Decision // first decision each processor ever held
	firstHas    []bool
	firstFailed []bool // a failure preceded the first-decision configuration

	ruleViol []*Violation // per-processor decision-rule violation, at most one
	icViol   *Violation   // first interactive-consistency violation

	final *sim.Config
}

// NewStreamChecker starts a streaming validation of a run whose initial
// configuration is c (the result of sim.NewConfig for the run's inputs).
func NewStreamChecker(p Problem, c *sim.Config) *StreamChecker {
	n := c.N()
	sc := &StreamChecker{
		p:           p,
		inputs:      c.Inputs,
		n:           n,
		idx:         -1,
		undecided:   n,
		omitted:     make([]bool, n),
		first:       make([]sim.Decision, n),
		firstHas:    make([]bool, n),
		firstFailed: make([]bool, n),
		ruleViol:    make([]*Violation, n),
	}
	sc.observe(c)
	return sc
}

// Observe records the next configuration of the run, produced by applying
// event e to the previously observed configuration. Configurations must
// arrive in schedule order.
func (sc *StreamChecker) Observe(e sim.Event, next *sim.Config) {
	switch e.Type {
	case sim.Fail:
		sc.anyFail = true
	case sim.Omit:
		sc.anyFail = true
		sc.omitted[e.Proc] = true
	}
	sc.observe(next)
}

// observe folds one configuration into the ledgers: first decisions (with
// the decision-rule check at the moment of decision) and, for IC problems,
// the per-configuration consistency scan.
func (sc *StreamChecker) observe(c *sim.Config) {
	sc.idx++
	sc.final = c
	if sc.undecided > 0 {
		for proc := 0; proc < sc.n; proc++ {
			if sc.firstHas[proc] {
				continue
			}
			d, ok := c.States[proc].Decided()
			if !ok {
				continue
			}
			sc.first[proc] = d
			sc.firstHas[proc] = true
			sc.firstFailed[proc] = sc.anyFail
			sc.undecided--
			if !sc.p.Rule.Permits(d, sc.inputs, sc.anyFail) {
				sc.ruleViol[proc] = &Violation{
					Kind: "rule",
					Detail: fmt.Sprintf("%s decided %s on inputs %v (failureSeen=%v), forbidden by %s",
						sim.ProcID(proc), d, sc.inputs, sc.anyFail, sc.p.Rule.Name()),
				}
			}
		}
	}
	if sc.p.Consistency == IC && sc.icViol == nil {
		sc.checkIC(c)
	}
}

// checkIC is CheckIC's inner per-configuration scan: no two simultaneously
// nonfaulty processors may stand by different decisions. The first-decision
// ledger doubles as CheckIC's decision ledger because decisions are
// irrevocable.
func (sc *StreamChecker) checkIC(c *sim.Config) {
	seen := sim.NoDecision
	var seenBy sim.ProcID
	for proc, s := range c.States {
		if s.Kind() == sim.Failed {
			continue
		}
		if !sc.firstHas[proc] {
			continue
		}
		d := sc.first[proc]
		if seen == sim.NoDecision {
			seen, seenBy = d, sim.ProcID(proc)
			continue
		}
		if d != seen {
			sc.icViol = &Violation{
				Kind: "IC",
				Detail: fmt.Sprintf("configuration %d: %s decided %s while %s decided %s",
					sc.idx, seenBy, seen, sim.ProcID(proc), d),
			}
			return
		}
	}
}

// Decision returns the first decision processor p made at any point in the
// observed prefix — sim.Run.DecisionOf over the streamed history.
func (sc *StreamChecker) Decision(p sim.ProcID) (sim.Decision, bool) {
	if !sc.firstHas[p] {
		return sim.NoDecision, false
	}
	return sc.first[p], true
}

// Final returns the most recently observed configuration.
func (sc *StreamChecker) Final() *sim.Config { return sc.final }

// Finish returns the violations of the observed run, exactly as
// Problem.Validate would report them on the materialized equivalent.
// Termination conditions are checked only when complete is true.
func (sc *StreamChecker) Finish(complete bool) []Violation {
	var out []Violation
	for _, v := range sc.ruleViol {
		if v != nil {
			out = append(out, *v)
		}
	}
	switch sc.p.Consistency {
	case IC:
		if sc.icViol != nil {
			out = append(out, *sc.icViol)
		}
	case TC:
		seen := sim.NoDecision
		var seenBy sim.ProcID
		for proc := 0; proc < sc.n; proc++ {
			if !sc.firstHas[proc] {
				continue
			}
			d := sc.first[proc]
			if seen == sim.NoDecision {
				seen, seenBy = d, sim.ProcID(proc)
				continue
			}
			if d != seen {
				out = append(out, Violation{
					Kind:   "TC",
					Detail: fmt.Sprintf("%s decided %s but %s decided %s", seenBy, seen, sim.ProcID(proc), d),
				})
				break
			}
		}
	}
	if complete {
		out = append(out, sc.checkTermination()...)
	}
	return out
}

// checkTermination is CheckTermination on the streamed run: every check
// reads only the final configuration and the first-decision ledger.
func (sc *StreamChecker) checkTermination() []Violation {
	var out []Violation
	t := sc.p.Termination
	for proc := 0; proc < sc.n; proc++ {
		pid := sim.ProcID(proc)
		s := sc.final.States[pid]
		if s.Kind() == sim.Failed || sc.omitted[proc] {
			continue
		}
		if !sc.firstHas[proc] {
			out = append(out, Violation{
				Kind:   "WT",
				Detail: fmt.Sprintf("nonfaulty %s never decided", pid),
			})
			continue
		}
		if t >= ST && !s.Amnesic() && s.Kind() != sim.Halted {
			out = append(out, Violation{
				Kind:   "ST",
				Detail: fmt.Sprintf("nonfaulty %s never became amnesic (final state %s)", pid, s.Key()),
			})
		}
		if t >= HT && s.Kind() != sim.Halted {
			out = append(out, Violation{
				Kind:   "HT",
				Detail: fmt.Sprintf("nonfaulty %s never halted (final state %s)", pid, s.Key()),
			})
		}
	}
	return out
}
