package taxonomy

import (
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

// completeRun drives a protocol to quiescence under the seeded scheduler.
func completeRun(t *testing.T, proto sim.Protocol, inputs string, failures ...sim.FailureAt) *sim.Run {
	t.Helper()
	in, err := sim.InputsFromString(inputs)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.RandomRun(proto, in, sim.RunnerOptions{Seed: 11, Failures: failures})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestValidateCleanCommitRun(t *testing.T) {
	run := completeRun(t, protocols.AckCommit{Procs: 4}, "1111")
	problem := Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: TC}
	if vs := problem.Validate(run, true); len(vs) != 0 {
		t.Fatalf("clean run should validate: %v", vs)
	}
}

func TestValidateHaltingRun(t *testing.T) {
	run := completeRun(t, protocols.HaltingCommit{Procs: 4}, "1101")
	problem := Problem{Rule: UnanimityRule{}, Termination: HT, Consistency: TC}
	if vs := problem.Validate(run, true); len(vs) != 0 {
		t.Fatalf("halting run should validate HT-TC: %v", vs)
	}
}

func TestValidateDetectsMissedTermination(t *testing.T) {
	// The chain protocol never halts, so HT must flag every processor.
	run := completeRun(t, protocols.Chain{Procs: 3}, "111")
	vs := CheckTermination(run, HT)
	htCount := 0
	for _, v := range vs {
		if v.Kind == "HT" {
			htCount++
		}
	}
	if htCount != 3 {
		t.Fatalf("expected 3 HT violations for the non-halting chain, got %d: %v", htCount, vs)
	}
	if vs2 := CheckTermination(run, WT); len(vs2) != 0 {
		t.Fatalf("the same run satisfies WT: %v", vs2)
	}
}

func TestValidateDetectsSTViolation(t *testing.T) {
	// Non-amnesic protocols fail ST on complete runs.
	run := completeRun(t, protocols.Chain{Procs: 3}, "111")
	if vs := CheckTermination(run, ST); len(vs) == 0 {
		t.Fatal("non-amnesic chain should violate ST")
	}
	// The amnesic tree variant satisfies ST.
	runST := completeRun(t, protocols.Tree{Procs: 3, ST: true}, "111")
	if vs := CheckTermination(runST, ST); len(vs) != 0 {
		t.Fatalf("amnesic tree should satisfy ST: %v", vs)
	}
}

func TestCheckTCFindsStarViolation(t *testing.T) {
	// Drive the star protocol into its Theorem 8 counterexample: the
	// coordinator commits, halts, and fails; the participants detect a
	// failure first and abort.
	in, _ := sim.InputsFromString("111")
	proto := protocols.Star{Procs: 3}
	cfg := sim.NewConfig(proto, in)
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{cfg}}
	mustExtend := func(events ...sim.Event) {
		t.Helper()
		if err := run.Extend(sim.Schedule(events)); err != nil {
			t.Fatal(err)
		}
	}
	// Votes reach p0, which decides commit and halts after broadcasting.
	mustExtend(
		sim.Event{Proc: 1, Type: sim.SendStepEvent},
		sim.Event{Proc: 2, Type: sim.SendStepEvent},
		sim.Event{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 1, To: 0, Seq: 1}},
		sim.Event{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 0, Seq: 1}},
		sim.Event{Proc: 0, Type: sim.SendStepEvent}, // decision to p1
		sim.Event{Proc: 0, Type: sim.SendStepEvent}, // decision to p2, then halt
	)
	if d, ok := run.DecisionOf(0); !ok || d != sim.Commit {
		t.Fatalf("p0 should have committed: %v %v", d, ok)
	}
	// p0 and p2 fail; p1 survives alone, never receiving the decision.
	mustExtend(
		sim.Event{Proc: 0, Type: sim.Fail},
		sim.Event{Proc: 2, Type: sim.Fail},
		sim.Event{Proc: 1, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 1, Seq: 1}}, // p2's notice
	)
	// p1 is in the modified termination protocol: it broadcasts its
	// round-1 message toward p0, then learns of p0's failure; with
	// everyone removed from UP, its rounds cascade and it aborts.
	mustExtend(
		sim.Event{Proc: 1, Type: sim.SendStepEvent},                                   // term round 1 → p0
		sim.Event{Proc: 1, Type: sim.Deliver, Msg: sim.MsgID{From: 0, To: 1, Seq: 2}}, // p0's notice
	)
	if d, ok := run.DecisionOf(1); !ok || d != sim.Abort {
		t.Fatalf("p1 should have aborted alone: %v %v (state %s)", d, ok, run.Final().States[1].Key())
	}

	if vs := CheckTC(run); len(vs) == 0 {
		t.Fatal("total consistency violation should be detected (failed p0 committed, p1 aborted)")
	}
	if vs := CheckIC(run); len(vs) != 0 {
		t.Fatalf("interactive consistency holds (p0 failed before p1 decided): %v", vs)
	}
}

func TestValidateRuleViolationDetection(t *testing.T) {
	// Construct a run of a bogus protocol that commits despite a 0 input.
	proto := commitAnywayProto{}
	run, err := sim.RandomRun(proto, []sim.Bit{sim.Zero, sim.One}, sim.RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	problem := Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: TC}
	vs := problem.Validate(run, true)
	found := false
	for _, v := range vs {
		if v.Kind == "rule" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a rule violation, got %v", vs)
	}
}

// commitAnywayProto ignores its inputs and commits immediately: a decision
// rule violation generator.
type commitAnywayProto struct{}

type commitAnywayState struct{ id sim.ProcID }

func (s commitAnywayState) Kind() sim.StateKind           { return sim.Receiving }
func (s commitAnywayState) Decided() (sim.Decision, bool) { return sim.Commit, true }
func (s commitAnywayState) Amnesic() bool                 { return false }
func (s commitAnywayState) Key() string                   { return "anyway{" + s.id.String() + "}" }

func (commitAnywayProto) Name() string { return "commit-anyway" }
func (commitAnywayProto) N() int       { return 2 }
func (commitAnywayProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return commitAnywayState{id: p}
}
func (commitAnywayProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State { return s }
func (commitAnywayProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	return s, nil
}
