// Package taxonomy implements Section 2 of Dwork & Skeen (1984): the three
// parameters by which consensus problems differ — decision rules,
// consistency constraints, and termination conditions — together with
// executable validators that check a run of a protocol against a problem
// specification.
package taxonomy

import (
	"fmt"

	"repro/internal/sim"
)

// DecisionRule is a family of conditions under which a processor may decide
// on a given value. Permits answers "was deciding d legal?" given the input
// vector and whether a failure had occurred by the time of the decision.
//
// The rules below are the paper's examples: broadcast (the Byzantine
// Generals rule), unanimity (the transaction-commitment rule), threshold-k,
// and set(S, v).
type DecisionRule interface {
	// Name identifies the rule.
	Name() string
	// Permits reports whether deciding d is allowed when the initial bits
	// are inputs and failureSeen reports whether any processor had failed
	// before the decision was made.
	Permits(d sim.Decision, inputs []sim.Bit, failureSeen bool) bool
	// Determined returns the decision forced in failure-free executions,
	// if the rule pins one down (unanimity does; a rule permitting both
	// values does not).
	Determined(inputs []sim.Bit) (sim.Decision, bool)
}

// UnanimityRule is the transaction-commitment rule: decide 1 (commit) only
// if every processor's initial value is 1; decide 0 (abort) only if some
// processor begins with 0 or a failure occurs.
type UnanimityRule struct{}

var _ DecisionRule = UnanimityRule{}

// Name implements DecisionRule.
func (UnanimityRule) Name() string { return "unanimity" }

// Permits implements DecisionRule.
func (UnanimityRule) Permits(d sim.Decision, inputs []sim.Bit, failureSeen bool) bool {
	allOnes := true
	for _, b := range inputs {
		if b == sim.Zero {
			allOnes = false
			break
		}
	}
	switch d {
	case sim.Commit:
		return allOnes
	case sim.Abort:
		return !allOnes || failureSeen
	default:
		return false
	}
}

// Determined implements DecisionRule: failure-free unanimity forces the
// decision to be exactly the conjunction of the inputs.
func (UnanimityRule) Determined(inputs []sim.Bit) (sim.Decision, bool) {
	return sim.Unanimity(inputs), true
}

// BroadcastRule is the Byzantine Generals rule: decide v only if the initial
// value of the distinguished processor (the general) is v. This is the
// strong variant; the weak variant additionally allows a default decision if
// the general is faulty.
type BroadcastRule struct {
	// General is the distinguished processor.
	General sim.ProcID
	// Weak enables the weak variant's default decision under failure.
	Weak bool
	// Default is the weak variant's fallback decision.
	Default sim.Decision
}

var _ DecisionRule = BroadcastRule{}

// Name implements DecisionRule.
func (r BroadcastRule) Name() string {
	if r.Weak {
		return fmt.Sprintf("broadcast-weak(%s)", r.General)
	}
	return fmt.Sprintf("broadcast(%s)", r.General)
}

// Permits implements DecisionRule.
func (r BroadcastRule) Permits(d sim.Decision, inputs []sim.Bit, failureSeen bool) bool {
	if d == sim.NoDecision {
		return false
	}
	if d == sim.DecisionFor(inputs[r.General]) {
		return true
	}
	return r.Weak && failureSeen && d == r.Default
}

// Determined implements DecisionRule: failure-free, the decision is the
// general's input.
func (r BroadcastRule) Determined(inputs []sim.Bit) (sim.Decision, bool) {
	return sim.DecisionFor(inputs[r.General]), true
}

// ThresholdRule is threshold-k: decide 1 only if at least K processors have
// initial value 1; decide 0 only if fewer than K do, or a failure occurs.
type ThresholdRule struct{ K int }

var _ DecisionRule = ThresholdRule{}

// Name implements DecisionRule.
func (r ThresholdRule) Name() string { return fmt.Sprintf("threshold-%d", r.K) }

// Permits implements DecisionRule.
func (r ThresholdRule) Permits(d sim.Decision, inputs []sim.Bit, failureSeen bool) bool {
	ones := 0
	for _, b := range inputs {
		if b == sim.One {
			ones++
		}
	}
	switch d {
	case sim.Commit:
		return ones >= r.K
	case sim.Abort:
		return ones < r.K || failureSeen
	default:
		return false
	}
}

// Determined implements DecisionRule.
func (r ThresholdRule) Determined(inputs []sim.Bit) (sim.Decision, bool) {
	ones := 0
	for _, b := range inputs {
		if b == sim.One {
			ones++
		}
	}
	if ones >= r.K {
		return sim.Commit, true
	}
	return sim.Abort, true
}

// SetRule is set(S, v): decide v only if all processors in S have initial
// value v. The opposite decision is unconstrained by this rule.
type SetRule struct {
	S []sim.ProcID
	V sim.Bit
}

var _ DecisionRule = SetRule{}

// Name implements DecisionRule.
func (r SetRule) Name() string { return fmt.Sprintf("set(%v,%d)", r.S, r.V) }

// Permits implements DecisionRule.
func (r SetRule) Permits(d sim.Decision, inputs []sim.Bit, failureSeen bool) bool {
	if d == sim.NoDecision {
		return false
	}
	if d != sim.DecisionFor(r.V) {
		return true // the rule only constrains decisions on v
	}
	for _, p := range r.S {
		if inputs[p] != r.V {
			return false
		}
	}
	return true
}

// Determined implements DecisionRule: set rules alone never pin down the
// failure-free decision.
func (r SetRule) Determined([]sim.Bit) (sim.Decision, bool) {
	return sim.NoDecision, false
}
