package taxonomy

import (
	"fmt"

	"repro/internal/sim"
)

// Consistency is one of the paper's two consistency constraints.
type Consistency int

const (
	// IC is interactive consistency: no two operational (nonfaulty)
	// processors may simultaneously occupy different decision states.
	IC Consistency = iota + 1
	// TC is total consistency: no two processors ever decide on different
	// values — a decision must be consistent even with decisions made by
	// processors that subsequently failed.
	TC
)

// String names the constraint.
func (c Consistency) String() string {
	switch c {
	case IC:
		return "IC"
	case TC:
		return "TC"
	default:
		return "invalid"
	}
}

// Implies reports whether satisfying c implies satisfying d (TC ⇒ IC;
// Theorem 1's first half rests on this).
func (c Consistency) Implies(d Consistency) bool {
	return c == d || (c == TC && d == IC)
}

// Termination is one of the paper's three termination conditions, in
// increasing strength.
type Termination int

const (
	// WT is weak termination: every nonfaulty processor decides within a
	// bounded number of steps. It admits protocols that never halt,
	// terminating "in essence, by deadlocking".
	WT Termination = iota + 1
	// ST is strong termination: additionally, every nonfaulty processor
	// eventually enters an amnesic state, forgetting its decision but
	// remembering that one was made.
	ST
	// HT is halting termination: additionally, every nonfaulty processor
	// completes its role — it need no longer send or receive messages.
	HT
)

// String names the condition.
func (t Termination) String() string {
	switch t {
	case WT:
		return "WT"
	case ST:
		return "ST"
	case HT:
		return "HT"
	default:
		return "invalid"
	}
}

// Implies reports whether satisfying t implies satisfying u
// (HT ⇒ ST ⇒ WT; Theorem 1's second half).
func (t Termination) Implies(u Termination) bool { return t >= u }

// Problem is a consensus problem in the taxonomy: a decision rule, a
// consistency constraint, and a termination condition. Section 4's six
// problems fix the rule to unanimity and vary the other two axes.
type Problem struct {
	Rule        DecisionRule
	Consistency Consistency
	Termination Termination
}

// Name returns the paper's "T-C" notation, e.g. "WT-TC".
func (p Problem) Name() string {
	return fmt.Sprintf("%s-%s", p.Termination, p.Consistency)
}

// String includes the decision rule.
func (p Problem) String() string {
	return fmt.Sprintf("%s/%s", p.Name(), p.Rule.Name())
}

// SixProblems returns the six problems of Section 4 — {WT,ST,HT} × {IC,TC}
// under unanimity — in the order of the paper's closing diagram.
func SixProblems() []Problem {
	var out []Problem
	for _, t := range []Termination{WT, ST, HT} {
		for _, c := range []Consistency{IC, TC} {
			out = append(out, Problem{Rule: UnanimityRule{}, Consistency: c, Termination: t})
		}
	}
	return out
}

// TriviallyReduces reports whether p1 ⪯ p2 follows from Theorem 1's
// implications alone: same rule, p2's constraints at least as strong on both
// axes. (Strictness and incomparability require the witness protocols; see
// package lattice.)
func TriviallyReduces(p1, p2 Problem) bool {
	return p1.Rule.Name() == p2.Rule.Name() &&
		p2.Consistency.Implies(p1.Consistency) &&
		p2.Termination.Implies(p1.Termination)
}

// Violation records one way a run failed a problem's specification.
type Violation struct {
	// Kind is the axis violated: "rule", "IC", "TC", "WT", "ST", or "HT".
	Kind string
	// Detail is a human-readable explanation naming the processors and
	// decisions involved.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Validate checks a run against the problem. Consistency and the decision
// rule are safety properties checked on every run; the termination
// conditions are liveness properties checked only when complete is true
// (the run is maximal: quiescent under a fair scheduler, so nothing more
// can ever happen).
func (p Problem) Validate(r *sim.Run, complete bool) []Violation {
	var out []Violation
	out = append(out, p.validateRule(r)...)
	switch p.Consistency {
	case IC:
		out = append(out, CheckIC(r)...)
	case TC:
		out = append(out, CheckTC(r)...)
	}
	if complete {
		out = append(out, CheckTermination(r, p.Termination)...)
	}
	return out
}

// validateRule checks every decision made in the run against the decision
// rule. A failure "counts" for a decision if some processor had failed —
// by crashing or by having a delivery omission-suppressed — before the
// configuration in which the decision first appears.
func (p Problem) validateRule(r *sim.Run) []Violation {
	var out []Violation
	inputs := r.Initial().Inputs
	failedBy := make([]bool, len(r.Configs)) // failedBy[i]: a failure occurred before Configs[i]
	anyFail := false
	for i := range r.Configs {
		failedBy[i] = anyFail
		if i < len(r.Schedule) && (r.Schedule[i].Type == sim.Fail || r.Schedule[i].Type == sim.Omit) {
			anyFail = true
		}
	}
	for proc := 0; proc < r.Initial().N(); proc++ {
		pid := sim.ProcID(proc)
		for i, c := range r.Configs {
			d, ok := c.States[pid].Decided()
			if !ok {
				continue
			}
			if !p.Rule.Permits(d, inputs, failedBy[i]) {
				out = append(out, Violation{
					Kind: "rule",
					Detail: fmt.Sprintf("%s decided %s on inputs %v (failureSeen=%v), forbidden by %s",
						pid, d, inputs, failedBy[i], p.Rule.Name()),
				})
			}
			break // first decision only; irrevocability is enforced by sim
		}
	}
	return out
}

// CheckIC checks interactive consistency: in no configuration may two
// simultaneously nonfaulty processors stand by different decisions.
// Decisions are irrevocable, so a decision counts from the configuration it
// is made in onward, even after the processor hides it in an amnesic state
// ("it may even be reminded of its decision by the other processors").
func CheckIC(r *sim.Run) []Violation {
	n := r.Initial().N()
	ledger := make([]sim.Decision, n)
	for i, c := range r.Configs {
		seen := sim.NoDecision
		var seenBy sim.ProcID
		for proc, s := range c.States {
			if d, ok := s.Decided(); ok {
				ledger[proc] = d
			}
			if s.Kind() == sim.Failed {
				continue
			}
			d := ledger[proc]
			if d == sim.NoDecision {
				continue
			}
			if seen == sim.NoDecision {
				seen, seenBy = d, sim.ProcID(proc)
				continue
			}
			if d != seen {
				return []Violation{{
					Kind: "IC",
					Detail: fmt.Sprintf("configuration %d: %s decided %s while %s decided %s",
						i, seenBy, seen, sim.ProcID(proc), d),
				}}
			}
		}
	}
	return nil
}

// CheckTC checks total consistency: no two processors ever decide
// differently, counting decisions by processors that later failed or became
// amnesic (DecisionOf scans the whole history).
func CheckTC(r *sim.Run) []Violation {
	seen := sim.NoDecision
	var seenBy sim.ProcID
	for proc := 0; proc < r.Initial().N(); proc++ {
		pid := sim.ProcID(proc)
		d, ok := r.DecisionOf(pid)
		if !ok {
			continue
		}
		if seen == sim.NoDecision {
			seen, seenBy = d, pid
			continue
		}
		if d != seen {
			return []Violation{{
				Kind:   "TC",
				Detail: fmt.Sprintf("%s decided %s but %s decided %s", seenBy, seen, pid, d),
			}}
		}
	}
	return nil
}

// CheckTermination checks the given termination condition on a complete
// (maximal) run. Crashed processors are exempt, and so are
// receive-omission-faulty ones (a processor some delivery to which was
// suppressed): the termination conditions promise progress only to correct
// processors, and a processor starved of a message it needed is faulty in
// the omission model even though its state never shows it.
func CheckTermination(r *sim.Run, t Termination) []Violation {
	var out []Violation
	final := r.Final()
	for proc := 0; proc < final.N(); proc++ {
		pid := sim.ProcID(proc)
		if !r.Nonfaulty(pid) || r.OmissionFaulty(pid) {
			continue
		}
		if _, ok := r.DecisionOf(pid); !ok {
			out = append(out, Violation{
				Kind:   "WT",
				Detail: fmt.Sprintf("nonfaulty %s never decided", pid),
			})
			continue
		}
		s := final.States[pid]
		if t >= ST && !s.Amnesic() && s.Kind() != sim.Halted {
			// Strong termination requires eventually forgetting the
			// decision. A halted processor has completed its role,
			// which subsumes amnesia (HT is strictly stronger).
			out = append(out, Violation{
				Kind:   "ST",
				Detail: fmt.Sprintf("nonfaulty %s never became amnesic (final state %s)", pid, s.Key()),
			})
		}
		if t >= HT && s.Kind() != sim.Halted {
			out = append(out, Violation{
				Kind:   "HT",
				Detail: fmt.Sprintf("nonfaulty %s never halted (final state %s)", pid, s.Key()),
			})
		}
	}
	return out
}
