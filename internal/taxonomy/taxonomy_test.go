package taxonomy

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func bits(s string) []sim.Bit {
	in, err := sim.InputsFromString(s)
	if err != nil {
		panic(err)
	}
	return in
}

func TestUnanimityRuleTable(t *testing.T) {
	rule := UnanimityRule{}
	cases := []struct {
		inputs  string
		failure bool
		d       sim.Decision
		want    bool
	}{
		{"111", false, sim.Commit, true},
		{"111", false, sim.Abort, false}, // no 0 and no failure: abort forbidden
		{"111", true, sim.Abort, true},   // failure permits abort
		{"101", false, sim.Commit, false},
		{"101", false, sim.Abort, true},
		{"000", true, sim.Commit, false},
		{"111", false, sim.NoDecision, false},
	}
	for _, c := range cases {
		if got := rule.Permits(c.d, bits(c.inputs), c.failure); got != c.want {
			t.Errorf("Permits(%s, %s, fail=%v) = %v, want %v", c.d, c.inputs, c.failure, got, c.want)
		}
	}
	if d, ok := rule.Determined(bits("111")); !ok || d != sim.Commit {
		t.Error("all-ones should determine commit")
	}
	if d, ok := rule.Determined(bits("110")); !ok || d != sim.Abort {
		t.Error("any zero should determine abort")
	}
}

func TestBroadcastRuleTable(t *testing.T) {
	strong := BroadcastRule{General: 0}
	if !strong.Permits(sim.Commit, bits("100"), false) {
		t.Error("strong rule: commit allowed when the general holds 1")
	}
	if strong.Permits(sim.Abort, bits("100"), true) {
		t.Error("strong rule: no default decision even under failure")
	}
	weak := BroadcastRule{General: 0, Weak: true, Default: sim.Abort}
	if !weak.Permits(sim.Abort, bits("100"), true) {
		t.Error("weak rule: default abort allowed once the general may be faulty")
	}
	if weak.Permits(sim.Abort, bits("100"), false) {
		t.Error("weak rule: default requires a failure")
	}
	if d, _ := weak.Determined(bits("011")); d != sim.Abort {
		t.Error("failure-free decision is the general's input")
	}
}

func TestThresholdRuleProperty(t *testing.T) {
	f := func(raw []bool, k uint8) bool {
		if len(raw) == 0 {
			return true
		}
		inputs := make([]sim.Bit, len(raw))
		ones := 0
		for i, b := range raw {
			if b {
				inputs[i] = sim.One
				ones++
			}
		}
		rule := ThresholdRule{K: int(k%8) + 1}
		commit := rule.Permits(sim.Commit, inputs, false)
		abortNoFail := rule.Permits(sim.Abort, inputs, false)
		abortFail := rule.Permits(sim.Abort, inputs, true)
		if commit != (ones >= rule.K) {
			return false
		}
		if abortNoFail != (ones < rule.K) {
			return false
		}
		return abortFail // abort always allowed under failure
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetRule(t *testing.T) {
	rule := SetRule{S: []sim.ProcID{0, 2}, V: sim.One}
	if !rule.Permits(sim.Commit, bits("101"), false) {
		t.Error("commit allowed when all of S hold 1")
	}
	if rule.Permits(sim.Commit, bits("100"), false) {
		t.Error("commit forbidden when some of S holds 0")
	}
	if !rule.Permits(sim.Abort, bits("100"), false) {
		t.Error("the rule does not constrain the other value")
	}
	if _, ok := rule.Determined(bits("101")); ok {
		t.Error("set rules do not determine the decision")
	}
}

func TestImplications(t *testing.T) {
	if !TC.Implies(IC) || IC.Implies(TC) {
		t.Error("TC ⇒ IC only")
	}
	if !HT.Implies(ST) || !ST.Implies(WT) || WT.Implies(ST) {
		t.Error("HT ⇒ ST ⇒ WT only")
	}
}

func TestSixProblems(t *testing.T) {
	ps := SixProblems()
	if len(ps) != 6 {
		t.Fatalf("len = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"WT-IC", "WT-TC", "ST-IC", "ST-TC", "HT-IC", "HT-TC"} {
		if !names[want] {
			t.Errorf("missing problem %s", want)
		}
	}
}

func TestTriviallyReduces(t *testing.T) {
	wtic := Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: IC}
	httc := Problem{Rule: UnanimityRule{}, Termination: HT, Consistency: TC}
	if !TriviallyReduces(wtic, httc) {
		t.Error("WT-IC ⪯ HT-TC by Theorem 1")
	}
	if TriviallyReduces(httc, wtic) {
		t.Error("HT-TC ⋠ WT-IC trivially")
	}
	htic := Problem{Rule: UnanimityRule{}, Termination: HT, Consistency: IC}
	wttc := Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: TC}
	if TriviallyReduces(htic, wttc) || TriviallyReduces(wttc, htic) {
		t.Error("HT-IC and WT-TC are not related by Theorem 1 alone")
	}
}
