package taxonomy

import (
	"reflect"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

// streamViolations replays a materialized run through a StreamChecker,
// configuration by configuration.
func streamViolations(p Problem, run *sim.Run, complete bool) []Violation {
	sc := NewStreamChecker(p, run.Initial())
	for i, e := range run.Schedule {
		sc.Observe(e, run.Configs[i+1])
	}
	return sc.Finish(complete)
}

// assertStreamMatches holds StreamChecker and Problem.Validate together:
// identical violations, in order, details included, for both the
// incomplete and the complete reading of the run.
func assertStreamMatches(t *testing.T, name string, p Problem, run *sim.Run) {
	t.Helper()
	for _, complete := range []bool{false, true} {
		want := p.Validate(run, complete)
		got := streamViolations(p, run, complete)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s (complete=%v):\n stream   %v\n validate %v", name, complete, got, want)
		}
	}
}

func TestStreamCheckerMatchesValidate(t *testing.T) {
	wtTC := Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: TC}
	cases := []struct {
		name string
		p    Problem
		run  *sim.Run
	}{
		{"clean-ackcommit", wtTC, completeRun(t, protocols.AckCommit{Procs: 4}, "1111")},
		{"halting-commit", Problem{Rule: UnanimityRule{}, Termination: HT, Consistency: TC},
			completeRun(t, protocols.HaltingCommit{Procs: 4}, "1101")},
		{"chain-misses-HT", Problem{Rule: UnanimityRule{}, Termination: HT, Consistency: TC},
			completeRun(t, protocols.Chain{Procs: 3}, "111")},
		{"chain-misses-ST", Problem{Rule: UnanimityRule{}, Termination: ST, Consistency: TC},
			completeRun(t, protocols.Chain{Procs: 3}, "111")},
		{"amnesic-tree-ST", Problem{Rule: UnanimityRule{}, Termination: ST, Consistency: TC},
			completeRun(t, protocols.Tree{Procs: 3, ST: true}, "111")},
		{"crash-ackcommit", wtTC,
			completeRun(t, protocols.AckCommit{Procs: 5}, "11111", sim.FailureAt{Proc: 2, AfterStep: 3})},
		{"rule-violation", wtTC, mustRandomRun(t, commitAnywayProto{}, []sim.Bit{sim.Zero, sim.One})},
		{"star-TC-violation", wtTC, starTCViolationRun(t)},
		{"star-under-IC", Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: IC}, starTCViolationRun(t)},
		{"split-decisions-TC", wtTC, splitDecisionRun()},
		{"split-decisions-IC", Problem{Rule: UnanimityRule{}, Termination: WT, Consistency: IC}, splitDecisionRun()},
	}
	for _, tc := range cases {
		assertStreamMatches(t, tc.name, tc.p, tc.run)
	}
}

// TestStreamCheckerMatchesValidateRandom sweeps seeded random runs — with
// and without crashes — across protocols and problems, holding the two
// validators together on executions nobody hand-picked.
func TestStreamCheckerMatchesValidateRandom(t *testing.T) {
	protos := []sim.Protocol{
		protocols.AckCommit{Procs: 4},
		protocols.Tree{Procs: 7},
		protocols.Star{Procs: 4},
		protocols.Chain{Procs: 3},
	}
	problems := []Problem{
		{Rule: UnanimityRule{}, Termination: WT, Consistency: TC},
		{Rule: UnanimityRule{}, Termination: ST, Consistency: TC},
		{Rule: UnanimityRule{}, Termination: HT, Consistency: IC},
	}
	for _, proto := range protos {
		inputs := make([]sim.Bit, proto.N())
		for i := range inputs {
			inputs[i] = sim.One
		}
		for seed := int64(1); seed <= 3; seed++ {
			for _, failures := range [][]sim.FailureAt{nil, {{Proc: sim.ProcID(seed) % sim.ProcID(proto.N()), AfterStep: int(seed)}}} {
				run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed, Failures: failures})
				if err != nil {
					t.Fatalf("%s seed %d: %v", proto.Name(), seed, err)
				}
				for _, p := range problems {
					assertStreamMatches(t, proto.Name(), p, run)
				}
			}
		}
	}
}

func mustRandomRun(t *testing.T, proto sim.Protocol, inputs []sim.Bit) *sim.Run {
	t.Helper()
	run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// starTCViolationRun rebuilds the Theorem 8 counterexample of
// TestCheckTCFindsStarViolation: the coordinator commits, halts, and
// fails; the lone survivor aborts — a TC violation with failures in the
// middle of the schedule.
func starTCViolationRun(t *testing.T) *sim.Run {
	t.Helper()
	in, err := sim.InputsFromString("111")
	if err != nil {
		t.Fatal(err)
	}
	proto := protocols.Star{Procs: 3}
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{sim.NewConfig(proto, in)}}
	if err := run.Extend(sim.Schedule{
		{Proc: 1, Type: sim.SendStepEvent},
		{Proc: 2, Type: sim.SendStepEvent},
		{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 1, To: 0, Seq: 1}},
		{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 0, Seq: 1}},
		{Proc: 0, Type: sim.SendStepEvent},
		{Proc: 0, Type: sim.SendStepEvent},
		{Proc: 0, Type: sim.Fail},
		{Proc: 2, Type: sim.Fail},
		{Proc: 1, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 1, Seq: 1}},
		{Proc: 1, Type: sim.SendStepEvent},
		{Proc: 1, Type: sim.Deliver, Msg: sim.MsgID{From: 0, To: 1, Seq: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	return run
}

// splitDecisionRun is a zero-event run of a bogus protocol whose two
// processors start decided on opposite values: the smallest run that
// violates IC (simultaneously), TC (ever), and the unanimity rule.
func splitDecisionRun() *sim.Run {
	proto := splitDecisionProto{}
	return &sim.Run{Proto: proto, Configs: []*sim.Config{sim.NewConfig(proto, []sim.Bit{sim.One, sim.One})}}
}

type splitDecisionProto struct{}

type splitDecisionState struct{ id sim.ProcID }

func (s splitDecisionState) Kind() sim.StateKind { return sim.Receiving }
func (s splitDecisionState) Decided() (sim.Decision, bool) {
	if s.id == 0 {
		return sim.Commit, true
	}
	return sim.Abort, true
}
func (s splitDecisionState) Amnesic() bool { return false }
func (s splitDecisionState) Key() string   { return "split{" + s.id.String() + "}" }

func (splitDecisionProto) Name() string { return "split-decision" }
func (splitDecisionProto) N() int       { return 2 }
func (splitDecisionProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return splitDecisionState{id: p}
}
func (splitDecisionProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State { return s }
func (splitDecisionProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	return s, nil
}
