package frontier

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
)

// The pool tests drive the partitioned engine over a synthetic diamond-heavy
// DAG: node x's successors are x+1 and x+2 (bounded by n), so almost every
// node is reachable along two paths and the shared-set dedup is exercised on
// every expansion. The canonical accept order of a breadth-first walk over
// this graph is the reference the pool+replay round-trip must reproduce.

func toyFP(id uint64) fingerprint.Digest {
	return fingerprint.OfString("toy:" + strconv.FormatUint(id, 10))
}

func toySuccs(id, n uint64) []uint64 {
	var out []uint64
	for _, s := range []uint64{id + 1, id + 2} {
		if s < n {
			out = append(out, s)
		}
	}
	return out
}

// toySequentialBFS is the reference accept order: a single-threaded
// breadth-first walk from 0 with first-arrival dedup.
func toySequentialBFS(n uint64) []uint64 {
	visited := map[uint64]bool{0: true}
	order := []uint64{0}
	queue := []uint64{0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, s := range toySuccs(x, n) {
			if !visited[s] {
				visited[s] = true
				order = append(order, s)
				queue = append(queue, s)
			}
		}
	}
	return order
}

// toyPool builds a pool over the diamond DAG with a mutex-guarded shared
// visited set and an optional per-expansion delay for slow-worker tests.
func toyPool(workers int, n uint64, cap int64, delay time.Duration, panicAt uint64) *Pool[uint64, []uint64] {
	var mu sync.Mutex
	visited := map[uint64]bool{}
	return NewPool(PoolOptions[uint64, []uint64]{
		Workers: workers,
		Cap:     cap,
		KeyOf:   func(x uint64) NodeKey { return NodeKey{FP: toyFP(x)} },
		Admit: func(x uint64) bool {
			mu.Lock()
			defer mu.Unlock()
			if visited[x] {
				return false
			}
			visited[x] = true
			return true
		},
		Expand: func(x uint64) ([]uint64, []uint64) {
			if delay > 0 {
				time.Sleep(delay)
			}
			if panicAt != 0 && x == panicAt {
				panic("injected expand panic")
			}
			s := toySuccs(x, n)
			return s, s
		},
	})
}

// replayToy performs the canonical reorder pass the checker and scheme run:
// a sequential BFS against its own visited set, consuming pool entries via
// WaitEntry and re-expanding on demand whatever the pool dropped.
func replayToy(p *Pool[uint64, []uint64], n uint64) []uint64 {
	seen := map[uint64]bool{0: true}
	order := []uint64{0}
	queue := []uint64{0}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		succs, exp, state := p.WaitEntry(NodeKey{FP: toyFP(x)}, true)
		_ = succs
		if state != EntryExpanded {
			exp = toySuccs(x, n)
		}
		for _, s := range exp {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
				queue = append(queue, s)
			}
		}
	}
	return order
}

func equalOrder(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPoolRoundTripMatchesSequential pins the determinism contract at the
// engine level: at every width, routing through the partitioned pool plus
// the canonical reorder pass yields exactly the sequential BFS accept order.
func TestPoolRoundTripMatchesSequential(t *testing.T) {
	const n = 5000
	want := toySequentialBFS(n)
	if len(want) != n {
		t.Fatalf("reference walk covered %d of %d nodes", len(want), n)
	}
	for _, workers := range []int{1, 2, 8, 16} {
		p := toyPool(workers, n, 0, 0, 0)
		p.Start(context.Background(), []uint64{0})
		got := replayToy(p, n)
		p.Close()
		if !equalOrder(got, want) {
			t.Errorf("width %d: accept order diverges from sequential BFS (%d vs %d nodes)", workers, len(got), len(want))
		}
		if !p.Drained() {
			t.Errorf("width %d: pool not drained after Close", workers)
		}
		if p.Panicked() {
			t.Errorf("width %d: spurious panic flag", workers)
		}
	}
}

// TestPoolQuiescesWithSlowWorkers injects a per-expansion delay so batches
// pile up in flight across the routing channels, then checks the quiescence
// count still converges: the pool drains on its own, with every reachable
// node accepted and expanded.
func TestPoolQuiescesWithSlowWorkers(t *testing.T) {
	const n = 300
	p := toyPool(8, n, 0, 500*time.Microsecond, 0)
	p.Start(context.Background(), []uint64{0})
	select {
	case <-p.drainedCh:
	case <-time.After(30 * time.Second):
		t.Fatal("slow pool failed to quiesce")
	}
	if got := p.Accepted(); got != n {
		t.Fatalf("slow pool accepted %d of %d nodes", got, n)
	}
	for id := uint64(0); id < n; id++ {
		if _, _, state := p.WaitEntry(NodeKey{FP: toyFP(id)}, false); state != EntryExpanded {
			t.Fatalf("node %d: state = %v after quiescence, want expanded", id, state)
		}
	}
	p.Close()
}

// TestPoolPanicMidExpandDrains kills one expansion with a panic and checks
// the containment contract: the pool flags the panic, stops, and still
// quiesces (Close returns); the panicking node is stored as accepted-but-
// never-expanded, so the caller's replay re-expands it in canonical order
// and re-panics deterministically.
func TestPoolPanicMidExpandDrains(t *testing.T) {
	const n, poison = 2000, 700
	p := toyPool(8, n, 0, 0, poison)
	p.Start(context.Background(), []uint64{0})
	// No Stop or Close yet: the panic itself must stop the pool and the
	// quiescence count must still converge with batches in flight.
	select {
	case <-p.drainedCh:
	case <-time.After(30 * time.Second):
		t.Fatal("pool failed to drain after a worker panic")
	}
	if !p.Panicked() {
		t.Fatal("Panicked() = false after an Expand panic")
	}
	if _, _, state := p.WaitEntry(NodeKey{FP: toyFP(poison)}, false); state != EntryAccepted {
		t.Fatalf("poison node state = %v, want accepted (stored, never expanded)", state)
	}
	// The root's expansion completed before the poison node was reached
	// (breadth-first routing from 0), so its entry must be intact.
	if _, _, state := p.WaitEntry(NodeKey{FP: toyFP(0)}, false); state != EntryExpanded {
		t.Fatalf("root state = %v after panic drain, want expanded", state)
	}
	p.Close()
}

// TestPoolCancellationMidRouteDrains cancels the context while batches are
// in flight; the pool must drop them and quiesce rather than deadlock on a
// full channel, and entries stored before the stop stay readable.
func TestPoolCancellationMidRouteDrains(t *testing.T) {
	const n = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	p := toyPool(4, n, 0, 10*time.Microsecond, 0)
	p.Start(ctx, []uint64{0})
	for p.Accepted() < 50 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-p.drainedCh:
	case <-time.After(30 * time.Second):
		t.Fatal("pool failed to quiesce after cancellation")
	}
	if got := p.Accepted(); got < 50 || got >= n {
		t.Fatalf("cancelled pool accepted %d nodes, want a partial prefix", got)
	}
	if _, _, state := p.WaitEntry(NodeKey{FP: toyFP(0)}, false); state == EntryMissing {
		t.Fatal("root entry lost on cancellation")
	}
	p.Close()
}

// TestPoolCapBoundsAcceptance checks the speculative budget: acceptance
// stops at Cap with at most one overshoot per worker (the check-then-admit
// window), and the pool still quiesces.
func TestPoolCapBoundsAcceptance(t *testing.T) {
	const n, cap, workers = 100_000, 500, 8
	p := toyPool(workers, n, cap, 0, 0)
	p.Start(context.Background(), []uint64{0})
	select {
	case <-p.drainedCh:
	case <-time.After(30 * time.Second):
		t.Fatal("capped pool failed to quiesce")
	}
	got := p.Accepted()
	if got < cap || got > cap+workers {
		t.Fatalf("Accepted() = %d, want in [%d, %d]", got, cap, cap+workers)
	}
	p.Close()
}

// TestPoolEmptyRootsQuiesceImmediately covers the zero-batch seed path.
func TestPoolEmptyRootsQuiesceImmediately(t *testing.T) {
	p := toyPool(4, 10, 0, 0, 0)
	p.Start(context.Background(), nil)
	select {
	case <-p.drainedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("empty pool failed to quiesce")
	}
	if _, _, state := p.WaitEntry(NodeKey{FP: toyFP(0)}, false); state != EntryMissing {
		t.Fatalf("state = %v for a never-seeded key, want missing", state)
	}
	p.Close()
}

// TestOwnerTotalStableAndBounded pins the shard function's basic algebra:
// assignments land in [0, workers), depend only on the digest, and cover
// the extremes of the high-64-bit space correctly.
func TestOwnerTotalStableAndBounded(t *testing.T) {
	digests := make([]fingerprint.Digest, 0, 512)
	for i := 0; i < 512; i++ {
		digests = append(digests, toyFP(uint64(i)))
	}
	for _, workers := range []int{1, 2, 3, 7, 8, 16, 64} {
		for _, d := range digests {
			o := Owner(d, workers)
			if o < 0 || o >= workers {
				t.Fatalf("Owner(%v, %d) = %d out of range", d, workers, o)
			}
			if again := Owner(d, workers); again != o {
				t.Fatalf("Owner(%v, %d) unstable: %d then %d", d, workers, o, again)
			}
		}
		lo := fingerprint.Digest{Hi: 0, Lo: ^uint64(0)}
		hi := fingerprint.Digest{Hi: ^uint64(0), Lo: 0}
		if o := Owner(lo, workers); o != 0 {
			t.Fatalf("lowest digest maps to shard %d of %d, want 0", o, workers)
		}
		if o := Owner(hi, workers); o != workers-1 {
			t.Fatalf("highest digest maps to shard %d of %d, want %d", o, workers, workers-1)
		}
	}
	if o := Owner(toyFP(1), 0); o != 0 {
		t.Fatalf("Owner with 0 workers = %d, want 0", o)
	}
}
