// This file holds the fingerprint-partitioned asynchronous exploration
// engine: a pool of workers, each owning a static shard of the 128-bit
// digest space, exchanging successor batches over bounded per-worker
// channels with no global barrier (in the tradition of parallel Murphi and
// distributed TLC). The pool is a *speculative prefetcher*: it admits
// nodes to a shared visited set and stores each accepted node together
// with its expansion, but it imposes no order. Determinism is recovered
// afterwards by a sequential canonical replay pass (owned by the checker
// and scheme packages) that walks the stored results in breadth-first
// frontier order against its own SeqVisited set, re-expanding on demand
// anything the pool never reached. The replay is authoritative — the
// observable result is a pure function of the root set — so the pool can
// stop early, drop batches on cancellation, or over-speculate past a node
// budget without ever perturbing a digest.
//
// Termination is a distributed quiescence count: every batch increments an
// in-flight counter before it is enqueued (including self-sends) and
// decrements it only after it has been fully processed, and processing a
// batch increments for all child batches before decrementing for the
// parent. The counter therefore reaches zero exactly when no batch exists
// anywhere in the system, and zero is stable — that instant closes the
// drained channel. Deadlock freedom on the bounded channels comes from the
// routing loop: a worker blocked sending to a full peer inbox concurrently
// drains its own inbox into a local pending queue, so in any cycle of
// blocked senders at least one send has a receiver making room.
package frontier

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
)

// NodeKey identifies an exploration node for routing and storage. FP is
// the node's 128-bit fingerprint (under strings dedup, a routing digest
// derived from the canonical key); Key is the canonical key string, empty
// under pure-fingerprint dedup. Including the key makes storage exact even
// in the astronomically unlikely event of a digest collision under
// verified dedup: the colliding nodes get distinct entries.
type NodeKey struct {
	FP  fingerprint.Digest
	Key string
}

// Owner maps a digest to one of workers statically partitioned, contiguous
// shards of the digest space: worker i owns digests whose high 64 bits lie
// in [i*2^64/workers, (i+1)*2^64/workers). The multiply-shift form makes
// the assignment total and stable for any worker count without division,
// and digest bits are uniform, so the shards balance.
func Owner(d fingerprint.Digest, workers int) int {
	if workers <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(d.Hi, uint64(workers))
	return int(hi)
}

// PoolOptions configures a Pool. All callbacks must be safe for concurrent
// use: Admit and Expand run on whichever worker owns the successor.
type PoolOptions[S, E any] struct {
	// Workers is the number of owner goroutines; each owns the digest
	// shard Owner assigns it.
	Workers int
	// Cap, when positive, bounds the number of accepted nodes: once
	// reached the pool stops admitting and drains. The bound is
	// approximate (concurrent owners may overshoot by a few nodes); the
	// caller's replay enforces the exact budget.
	Cap int64
	// KeyOf returns the successor's routing and storage key.
	KeyOf func(S) NodeKey
	// Admit inserts the successor into the shared visited set, reporting
	// whether it was new. Called only by the successor's owner.
	Admit func(S) bool
	// Expand generates a node's successors: the expansion value to store
	// and the slice of materialized successors to route onward.
	Expand func(S) (E, []S)
}

// EntryState reports what WaitEntry found.
type EntryState int

const (
	// EntryMissing means the pool drained without ever accepting the key
	// (it was discarded by the cap, a stop, or cancellation).
	EntryMissing EntryState = iota
	// EntryAccepted means the node was accepted and stored but its
	// expansion never completed (stop or panic mid-expand).
	EntryAccepted
	// EntryExpanded means both the node and its expansion are stored.
	EntryExpanded
)

// Pool is the asynchronous owner-partitioned exploration engine. Create
// with NewPool, launch with Start, and read results with WaitEntry; Close
// stops the workers and must be called exactly once after Start.
type Pool[S, E any] struct {
	opts   PoolOptions[S, E]
	inbox  []chan []S
	shards []poolShard[S, E]

	// inflight counts enqueued-but-unprocessed batches; zero is stable
	// and closes drainedCh (see the package comment).
	inflight atomic.Int64
	accepted atomic.Int64
	stopped  atomic.Bool
	drained  atomic.Bool
	panicked atomic.Bool
	// drainedCh is closed exactly once, at quiescence.
	drainedCh chan struct{}
	wg        sync.WaitGroup

	// mu serializes WaitEntry's block/wake handshake; waiters counts
	// blocked waiters so the owners' wake probe is a single atomic load
	// when nobody waits.
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
}

// poolShard stores one owner's accepted entries. Only the owning worker
// writes it; the replay goroutine reads (and takes) concurrently.
type poolShard[S, E any] struct {
	mu sync.RWMutex
	m  map[NodeKey]*poolEntry[S, E] // ccvet:guardedby mu
}

// poolEntry fields are guarded by the owning shard's mutex.
type poolEntry[S, E any] struct {
	succ     S
	exp      E
	expanded bool
}

// NewPool returns an unstarted pool.
func NewPool[S, E any](opts PoolOptions[S, E]) *Pool[S, E] {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	p := &Pool[S, E]{
		opts:      opts,
		inbox:     make([]chan []S, opts.Workers),
		shards:    make([]poolShard[S, E], opts.Workers),
		drainedCh: make(chan struct{}),
	}
	for i := range p.inbox {
		p.inbox[i] = make(chan []S, 32)
		p.shards[i].m = make(map[NodeKey]*poolEntry[S, E])
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *Pool[S, E]) owner(k NodeKey) int { return Owner(k.FP, p.opts.Workers) }

// Start launches the workers and seeds the pool with the root successors,
// routing each to its owner. A cancelled ctx stops the pool (it drains and
// quiesces; stored entries stay readable).
func (p *Pool[S, E]) Start(ctx context.Context, roots []S) {
	for i := 0; i < p.opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	go func() {
		select {
		case <-ctx.Done():
			p.Stop()
		case <-p.drainedCh:
		}
	}()
	byOwner := make([][]S, p.opts.Workers)
	for _, s := range roots {
		o := p.owner(p.opts.KeyOf(s))
		byOwner[o] = append(byOwner[o], s)
	}
	batches := int64(0)
	for _, g := range byOwner {
		if g != nil {
			batches++
		}
	}
	if batches == 0 {
		p.quiesce()
		return
	}
	// Count every seed batch in flight before the first send, so the
	// counter can never touch zero while seeding is underway.
	p.inflight.Add(batches)
	for o, g := range byOwner {
		if g != nil {
			p.inbox[o] <- g
		}
	}
}

// Stop makes the pool stop admitting and expanding; in-flight batches are
// discarded and the pool quiesces. Entries already stored stay readable.
func (p *Pool[S, E]) Stop() { p.stopped.Store(true) }

// Close stops the pool, waits for quiescence, and joins the workers.
func (p *Pool[S, E]) Close() {
	p.Stop()
	<-p.drainedCh
	p.wg.Wait()
}

// Drained reports whether the pool has quiesced.
func (p *Pool[S, E]) Drained() bool { return p.drained.Load() }

// Accepted returns the number of successors admitted so far.
func (p *Pool[S, E]) Accepted() int64 { return p.accepted.Load() }

// Panicked reports whether any Expand call panicked. The panic value is
// swallowed (the pool stops and drains); the caller's replay re-expands
// the node on demand and re-panics deterministically.
func (p *Pool[S, E]) Panicked() bool { return p.panicked.Load() }

// quiesce closes the drained channel exactly once and releases waiters.
func (p *Pool[S, E]) quiesce() {
	if p.drained.CompareAndSwap(false, true) {
		close(p.drainedCh)
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// finish retires one processed batch; the worker that takes the counter to
// zero performs the quiescence transition.
func (p *Pool[S, E]) finish() {
	if p.inflight.Add(-1) == 0 {
		p.quiesce()
	}
}

// worker is one owner goroutine: it alternates between its local pending
// queue (batches it routed to itself, or absorbed while blocked sending)
// and its inbox, until the pool quiesces.
func (p *Pool[S, E]) worker(id int) {
	defer p.wg.Done()
	var pending [][]S
	byOwner := make([][]S, p.opts.Workers)
	for {
		var batch []S
		if n := len(pending); n > 0 {
			batch, pending = pending[n-1], pending[:n-1]
		} else {
			select {
			case batch = <-p.inbox[id]:
			case <-p.drainedCh:
				return
			}
		}
		pending = p.process(id, batch, pending, byOwner)
	}
}

// process accepts every successor of one batch, then retires the batch.
// Child batches are counted in flight inside accept, before the parent's
// finish, which is what keeps zero in-flight equivalent to quiescence.
func (p *Pool[S, E]) process(id int, batch []S, pending [][]S, byOwner [][]S) [][]S {
	for i := range batch {
		if p.stopped.Load() {
			break
		}
		pending = p.accept(id, batch[i], pending, byOwner)
	}
	p.finish()
	return pending
}

// accept admits one routed successor: cap check, shared-set insertion,
// entry store, expansion, expansion store, and routing of the children.
// The store always directly follows a successful Admit with no stop check
// between them — the replay relies on "admitted implies stored" to resolve
// successors it rediscovers through the shared set.
func (p *Pool[S, E]) accept(id int, s S, pending [][]S, byOwner [][]S) [][]S {
	if c := p.opts.Cap; c > 0 && p.accepted.Load() >= c {
		p.stopped.Store(true)
		return pending
	}
	if !p.opts.Admit(s) {
		return pending // duplicate arrival
	}
	p.accepted.Add(1)
	k := p.opts.KeyOf(s)
	ent := &poolEntry[S, E]{succ: s}
	sh := &p.shards[id]
	sh.mu.Lock()
	sh.m[k] = ent
	sh.mu.Unlock()
	p.wake()
	exp, routed, ok := p.expandOne(s)
	if !ok {
		p.panicked.Store(true)
		p.stopped.Store(true)
		return pending
	}
	sh.mu.Lock()
	ent.exp, ent.expanded = exp, true
	sh.mu.Unlock()
	p.wake()
	for _, nxt := range routed {
		o := p.owner(p.opts.KeyOf(nxt))
		byOwner[o] = append(byOwner[o], nxt)
	}
	for o, g := range byOwner {
		if g == nil {
			continue
		}
		byOwner[o] = nil
		if o == id {
			p.inflight.Add(1)
			pending = append(pending, g)
			continue
		}
		pending = p.route(id, o, g, pending)
	}
	return pending
}

// expandOne runs Expand, converting a panic into a stop signal: the value
// is dropped here because the sequential replay re-expands the node in
// canonical order and re-panics with a schedule-independent failure.
func (p *Pool[S, E]) expandOne(s S) (exp E, routed []S, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	exp, routed = p.opts.Expand(s)
	return exp, routed, true
}

// route delivers one batch to its owner's inbox. While the send blocks,
// the sender drains its own inbox into pending — that keeps at least one
// receiver live in any cycle of full channels. After a stop the batch is
// dropped instead (its nodes are either re-derived by the replay or were
// never needed).
func (p *Pool[S, E]) route(from, to int, batch []S, pending [][]S) [][]S {
	p.inflight.Add(1)
	for {
		if p.stopped.Load() {
			p.finish()
			return pending
		}
		select {
		case p.inbox[to] <- batch:
			return pending
		case b := <-p.inbox[from]:
			pending = append(pending, b)
		}
	}
}

// wake wakes blocked WaitEntry callers after a store. The fast path is one
// atomic load; the handshake is race-free because a waiter registers in
// waiters under mu before re-checking the shard, so either the storer sees
// the registration and broadcasts, or the waiter's re-check sees the store.
func (p *Pool[S, E]) wake() {
	if p.waiters.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// WaitEntry returns the stored entry for k, blocking while the pool is
// still running and the entry is absent or unexpanded. Once the pool has
// drained it returns whatever is stored (EntryAccepted for a node whose
// expansion never completed, EntryMissing for a key the pool never
// accepted). take removes a found entry from the store, releasing its
// memory; each key is taken at most once by the replay.
func (p *Pool[S, E]) WaitEntry(k NodeKey, take bool) (succ S, exp E, state EntryState) {
	sh := &p.shards[p.owner(k)]
	for {
		sh.mu.RLock()
		ent := sh.m[k]
		var expanded bool
		if ent != nil {
			succ, expanded = ent.succ, ent.expanded
			if expanded {
				exp = ent.exp
			}
		}
		sh.mu.RUnlock()
		if ent != nil && expanded {
			if take {
				sh.mu.Lock()
				delete(sh.m, k)
				sh.mu.Unlock()
			}
			return succ, exp, EntryExpanded
		}
		if p.drained.Load() {
			if ent != nil {
				if take {
					sh.mu.Lock()
					delete(sh.m, k)
					sh.mu.Unlock()
				}
				return succ, exp, EntryAccepted
			}
			var zeroS S
			var zeroE E
			return zeroS, zeroE, EntryMissing
		}
		p.mu.Lock()
		p.waiters.Add(1)
		if !p.ready(sh, k) {
			p.cond.Wait()
		}
		p.waiters.Add(-1)
		p.mu.Unlock()
	}
}

// ready re-checks the wait condition after registering as a waiter; see
// wake for the handshake.
func (p *Pool[S, E]) ready(sh *poolShard[S, E], k NodeKey) bool {
	if p.drained.Load() {
		return true
	}
	sh.mu.RLock()
	ent := sh.m[k]
	ok := ent != nil && ent.expanded
	sh.mu.RUnlock()
	return ok
}

// SeqVisited is the sequential visited set behind the canonical replay
// pass: the same three dedup engines as the shared sets, minus the
// sharding and locking (the replay is single-goroutine). Its admission
// decisions — not the pool's — define which nodes the result contains, so
// the result digests depend only on the canonical walk order.
type SeqVisited struct {
	mode       Dedup
	fp         map[fingerprint.Digest]struct{}
	keys       map[string]struct{}
	verified   map[fingerprint.Digest][]string
	collisions int64
}

// NewSeqVisited returns an empty set for the given dedup mode.
func NewSeqVisited(mode Dedup) *SeqVisited {
	v := &SeqVisited{mode: mode}
	switch mode {
	case DedupFingerprint:
		v.fp = make(map[fingerprint.Digest]struct{})
	case DedupVerified:
		v.verified = make(map[fingerprint.Digest][]string)
	default:
		v.keys = make(map[string]struct{})
	}
	return v
}

// Admit inserts the node's dedup handle, reporting whether it was new.
// Verified mode counts a digest already holding a different key as a
// collision, exactly like FPVerifiedSet.Add.
func (v *SeqVisited) Admit(fp fingerprint.Digest, key string) bool {
	switch v.mode {
	case DedupFingerprint:
		if _, ok := v.fp[fp]; ok {
			return false
		}
		v.fp[fp] = struct{}{}
		return true
	case DedupVerified:
		keys := v.verified[fp]
		for _, k := range keys {
			if k == key {
				return false
			}
		}
		if len(keys) > 0 {
			v.collisions++
		}
		v.verified[fp] = append(keys, key)
		return true
	default:
		if _, ok := v.keys[key]; ok {
			return false
		}
		v.keys[key] = struct{}{}
		return true
	}
}

// Seen reports whether the node's dedup handle has already been admitted,
// without admitting it. The explorer's ample-set cycle proviso uses it to
// pre-scan a reduced expansion's successors against the canonical visited
// set before walking them.
func (v *SeqVisited) Seen(fp fingerprint.Digest, key string) bool {
	switch v.mode {
	case DedupFingerprint:
		_, ok := v.fp[fp]
		return ok
	case DedupVerified:
		for _, k := range v.verified[fp] {
			if k == key {
				return true
			}
		}
		return false
	default:
		_, ok := v.keys[key]
		return ok
	}
}

// Len returns the number of admitted nodes.
func (v *SeqVisited) Len() int {
	switch v.mode {
	case DedupFingerprint:
		return len(v.fp)
	case DedupVerified:
		n := 0
		for _, keys := range v.verified { //ccvet:ignore detrange summing lengths; order is unobservable
			n += len(keys)
		}
		return n
	default:
		return len(v.keys)
	}
}

// Collisions returns the number of verified fingerprint collisions.
func (v *SeqVisited) Collisions() int64 { return v.collisions }
