// This file holds the fingerprint-keyed variants of the frontier's
// sharded structures. They store 16-byte fingerprint.Digest keys instead
// of full canonical strings, which is what makes the explorer's visited
// set allocation-free per probe and cache-compact at millions of nodes.
// The collision-verification variant (FPVerifiedSet) additionally retains
// the canonical key strings and compares them lazily on fingerprint hits,
// turning the (negligible, but nonzero) 128-bit collision risk into a
// detected event instead of a silently merged pair of states.

package frontier

import (
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
)

// Dedup selects how an explorer deduplicates visited nodes.
type Dedup int

const (
	// DedupFingerprint (the default) admits nodes by 128-bit fingerprint
	// alone. Two distinct nodes collide only with probability ~2^-128 per
	// pair; canonical strings are never built for dedup.
	DedupFingerprint Dedup = iota
	// DedupVerified admits by fingerprint but verifies every fingerprint
	// hit against the stored canonical key, so a collision downgrades to a
	// counted event (and the colliding node is explored, not dropped).
	DedupVerified
	// DedupStrings is the reference engine: admission by full canonical
	// key, collision-proof and allocation-heavy. The differential suites
	// pit the other modes against it.
	DedupStrings
)

// String names the mode.
func (d Dedup) String() string {
	switch d {
	case DedupFingerprint:
		return "fingerprint"
	case DedupVerified:
		return "verified"
	case DedupStrings:
		return "strings"
	default:
		return "invalid"
	}
}

// shardIndexFP maps a digest to a shard. Digest bits are already uniform,
// so masking the low bits suffices.
func shardIndexFP(d fingerprint.Digest) int {
	return int(d.Lo & (numShards - 1))
}

// FPVisitedSet is VisitedSet keyed by fingerprint: a set of 16-byte
// digests sharded by digest bits. Same concurrency contract as
// VisitedSet: Seen and Add are independently safe for concurrent use.
type FPVisitedSet struct {
	shards [numShards]fpVisitShard
}

type fpVisitShard struct {
	mu sync.RWMutex
	m  map[fingerprint.Digest]struct{} // ccvet:guardedby mu
}

// NewFPVisitedSet returns an empty set.
func NewFPVisitedSet() *FPVisitedSet {
	v := &FPVisitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[fingerprint.Digest]struct{})
	}
	return v
}

// Seen reports whether the digest has been added.
func (v *FPVisitedSet) Seen(d fingerprint.Digest) bool {
	sh := &v.shards[shardIndexFP(d)]
	sh.mu.RLock()
	_, ok := sh.m[d]
	sh.mu.RUnlock()
	return ok
}

// Add inserts the digest, reporting whether it was new.
func (v *FPVisitedSet) Add(d fingerprint.Digest) bool {
	sh := &v.shards[shardIndexFP(d)]
	sh.mu.Lock()
	_, ok := sh.m[d]
	if !ok {
		sh.m[d] = struct{}{}
	}
	sh.mu.Unlock()
	return !ok
}

// Len returns the number of digests added.
func (v *FPVisitedSet) Len() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// FPVerifiedSet is the collision-verification visited set: digests map to
// the canonical keys that produced them. A fingerprint hit with a
// mismatched key is a detected collision — the node is treated as unseen
// and the collision counted — so explorations in verified mode are exact
// even in the astronomically unlikely event of a 128-bit collision.
type FPVerifiedSet struct {
	shards [numShards]fpVerifiedShard
	// collisions counts detected fingerprint collisions. Adders on
	// different shards hold different shard mutexes, so the counter cannot
	// ride on any of them; it must be atomic.
	collisions atomic.Int64
}

type fpVerifiedShard struct {
	mu sync.RWMutex
	m  map[fingerprint.Digest][]string // ccvet:guardedby mu
}

// NewFPVerifiedSet returns an empty set.
func NewFPVerifiedSet() *FPVerifiedSet {
	v := &FPVerifiedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[fingerprint.Digest][]string)
	}
	return v
}

// SeenFingerprint reports whether any key has been added under the
// digest; a false result needs no key comparison at all, which keeps the
// common (miss) path as cheap as FPVisitedSet.
func (v *FPVerifiedSet) SeenFingerprint(d fingerprint.Digest) bool {
	sh := &v.shards[shardIndexFP(d)]
	sh.mu.RLock()
	_, ok := sh.m[d]
	sh.mu.RUnlock()
	return ok
}

// Seen reports whether this exact key has been added under the digest.
func (v *FPVerifiedSet) Seen(d fingerprint.Digest, key string) bool {
	sh := &v.shards[shardIndexFP(d)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, k := range sh.m[d] {
		if k == key {
			return true
		}
	}
	return false
}

// Add inserts the key under the digest, reporting whether it was new. A
// digest already holding a different key records a collision.
func (v *FPVerifiedSet) Add(d fingerprint.Digest, key string) bool {
	sh := &v.shards[shardIndexFP(d)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys := sh.m[d]
	for _, k := range keys {
		if k == key {
			return false
		}
	}
	if len(keys) > 0 {
		v.collisions.Add(1)
	}
	sh.m[d] = append(keys, key)
	return true
}

// Len returns the number of distinct keys added.
func (v *FPVerifiedSet) Len() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		for _, keys := range sh.m { //ccvet:ignore detrange summing lengths; order is unobservable
			n += len(keys)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Collisions returns the number of verified fingerprint collisions
// detected so far.
func (v *FPVerifiedSet) Collisions() int64 { return v.collisions.Load() }

// FPShardedMap is ShardedMap keyed by fingerprint, for commutative
// concurrent aggregation under 16-byte keys.
type FPShardedMap[V any] struct {
	shards [numShards]fpMapShard[V]
}

type fpMapShard[V any] struct {
	mu sync.Mutex
	m  map[fingerprint.Digest]V // ccvet:guardedby mu
}

// NewFPShardedMap returns an empty map.
func NewFPShardedMap[V any]() *FPShardedMap[V] {
	s := &FPShardedMap[V]{}
	for i := range s.shards {
		s.shards[i].m = make(map[fingerprint.Digest]V)
	}
	return s
}

// Update applies fn to the value under d while holding the shard lock. fn
// receives the zero value if d is absent and its return value is stored.
// fn must not touch the FPShardedMap (the shard lock is held).
func (s *FPShardedMap[V]) Update(d fingerprint.Digest, fn func(V) V) {
	sh := &s.shards[shardIndexFP(d)]
	sh.mu.Lock()
	sh.m[d] = fn(sh.m[d])
	sh.mu.Unlock()
}

// Get returns the value under d.
func (s *FPShardedMap[V]) Get(d fingerprint.Digest) (V, bool) {
	sh := &s.shards[shardIndexFP(d)]
	sh.mu.Lock()
	v, ok := sh.m[d]
	sh.mu.Unlock()
	return v, ok
}

// GetOrInsert returns the value under d, inserting the result of compute
// on first use. compute runs outside the shard lock and may race with
// another inserter; the first stored value wins and is returned, so
// compute must be deterministic for a given digest.
func (s *FPShardedMap[V]) GetOrInsert(d fingerprint.Digest, compute func() V) V {
	sh := &s.shards[shardIndexFP(d)]
	sh.mu.Lock()
	v, ok := sh.m[d]
	sh.mu.Unlock()
	if ok {
		return v
	}
	fresh := compute()
	sh.mu.Lock()
	if v, ok = sh.m[d]; !ok {
		sh.m[d] = fresh
		v = fresh
	}
	sh.mu.Unlock()
	return v
}

// Len returns the number of digests.
func (s *FPShardedMap[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
