package frontier

import (
	"context"
	"strconv"
	"sync"
	"testing"

	"repro/internal/fingerprint"
)

// FuzzShardRouting fuzzes the two properties the partitioned engine's
// correctness rests on, over an arbitrary graph and worker count:
//
//   - the owner assignment is total (in [0, workers)), stable (a pure
//     function of the digest), and balanced — no shard receives more than
//     2x its uniform share of a large digest sample;
//   - routing successors through the pool and replaying them through the
//     canonical reorder pass reproduces, at any width, exactly the accept
//     order of a single-threaded breadth-first walk.
//
// The graph is decoded from the fuzz input: node count from its length,
// each node's extra edges from its bytes, plus the deterministic diamond
// edges (i -> i+1, i+2) that keep everything reachable from 0.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0x00, 0x01, 0x02, 0x03}, uint8(2))
	f.Add([]byte("route me through every shard"), uint8(8))
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01, 0x00, 0xaa, 0x55}, uint8(16))
	f.Fuzz(func(t *testing.T, seed []byte, width uint8) {
		workers := int(width%16) + 1
		n := uint64(len(seed)) + 2 // at least nodes 0 and 1

		// Owner algebra over digests derived from the seed.
		counts := make([]int, workers)
		const sample = 4096
		for i := 0; i < sample; i++ {
			d := fingerprint.OfString(string(seed) + "#" + strconv.Itoa(i))
			o := Owner(d, workers)
			if o < 0 || o >= workers {
				t.Fatalf("Owner(%v, %d) = %d out of range", d, workers, o)
			}
			if again := Owner(d, workers); again != o {
				t.Fatalf("Owner(%v, %d) unstable: %d then %d", d, workers, o, again)
			}
			counts[o]++
		}
		limit := 2 * sample / workers
		for o, c := range counts {
			if c > limit {
				t.Fatalf("shard %d of %d holds %d of %d digests, above the 2x-uniform bound %d",
					o, workers, c, sample, limit)
			}
		}

		// Graph round-trip: seed bytes add arbitrary extra edges on top of
		// the diamond DAG, so dedup sees fuzzer-chosen arrival patterns.
		succs := func(id uint64) []uint64 {
			out := toySuccs(id, n)
			if id < uint64(len(seed)) {
				if extra := uint64(seed[id]) % n; extra != id {
					out = append(out, extra)
				}
			}
			return out
		}
		want := fuzzSequentialBFS(n, succs)
		p := fuzzPool(workers, succs)
		p.Start(context.Background(), []uint64{0})
		got := fuzzReplay(p, succs)
		p.Close()
		if !equalOrder(got, want) {
			t.Fatalf("width %d: pool+reorder accept order diverges from sequential BFS (%d vs %d nodes)",
				workers, len(got), len(want))
		}
	})
}

// fuzzSequentialBFS is the reference walk for an arbitrary successor
// function; the order it accepts nodes in is the determinism contract.
func fuzzSequentialBFS(n uint64, succs func(uint64) []uint64) []uint64 {
	visited := map[uint64]bool{0: true}
	order := []uint64{0}
	queue := []uint64{0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, s := range succs(x) {
			if !visited[s] {
				visited[s] = true
				order = append(order, s)
				queue = append(queue, s)
			}
		}
	}
	return order
}

func fuzzPool(workers int, succs func(uint64) []uint64) *Pool[uint64, []uint64] {
	// The shared set is a mutex-guarded SeqVisited, the same dedup engine
	// the real replay pass uses on its side of the differential.
	visited := NewSeqVisited(DedupFingerprint)
	var admitMu sync.Mutex
	return NewPool(PoolOptions[uint64, []uint64]{
		Workers: workers,
		KeyOf:   func(x uint64) NodeKey { return NodeKey{FP: toyFP(x)} },
		Admit: func(x uint64) bool {
			admitMu.Lock()
			defer admitMu.Unlock()
			return visited.Admit(toyFP(x), "")
		},
		Expand: func(x uint64) ([]uint64, []uint64) {
			s := succs(x)
			return s, s
		},
	})
}

func fuzzReplay(p *Pool[uint64, []uint64], succs func(uint64) []uint64) []uint64 {
	seen := map[uint64]bool{0: true}
	order := []uint64{0}
	queue := []uint64{0}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		_, exp, state := p.WaitEntry(NodeKey{FP: toyFP(x)}, true)
		if state != EntryExpanded {
			exp = succs(x)
		}
		for _, s := range exp {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
				queue = append(queue, s)
			}
		}
	}
	return order
}
