package frontier

import (
	"sync"
	"testing"

	"repro/internal/fingerprint"
)

func TestFPVisitedSet(t *testing.T) {
	v := NewFPVisitedSet()
	d1, d2 := fingerprint.OfString("a"), fingerprint.OfString("b")
	if v.Seen(d1) {
		t.Fatal("empty set claims to have seen a digest")
	}
	if !v.Add(d1) {
		t.Fatal("first Add reported not-new")
	}
	if v.Add(d1) {
		t.Fatal("second Add reported new")
	}
	if !v.Seen(d1) || v.Seen(d2) {
		t.Fatal("Seen disagrees with Add history")
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d, want 1", v.Len())
	}
}

func TestFPVisitedSetConcurrent(t *testing.T) {
	v := NewFPVisitedSet()
	var wg sync.WaitGroup
	var added [8]int
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if v.Add(fingerprint.OfUint64(uint64(i))) {
					added[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range added {
		total += n
	}
	if total != 2000 || v.Len() != 2000 {
		t.Fatalf("winners = %d, Len = %d, want 2000/2000", total, v.Len())
	}
}

func TestFPVerifiedSet(t *testing.T) {
	v := NewFPVerifiedSet()
	d := fingerprint.OfString("shared")
	if v.SeenFingerprint(d) || v.Seen(d, "k1") {
		t.Fatal("empty verified set claims prior sightings")
	}
	if !v.Add(d, "k1") {
		t.Fatal("first Add reported not-new")
	}
	if v.Add(d, "k1") {
		t.Fatal("duplicate Add reported new")
	}
	if !v.SeenFingerprint(d) || !v.Seen(d, "k1") || v.Seen(d, "k2") {
		t.Fatal("Seen disagrees with Add history")
	}
	if v.Collisions() != 0 {
		t.Fatalf("collisions = %d before any", v.Collisions())
	}
	// A second key under the same digest is a detected collision, and the
	// colliding key is admitted as new rather than merged away.
	if !v.Add(d, "k2") {
		t.Fatal("colliding key was merged instead of admitted")
	}
	if v.Collisions() != 1 {
		t.Fatalf("collisions = %d, want 1", v.Collisions())
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if !v.Seen(d, "k2") {
		t.Fatal("collided key not found afterwards")
	}
}

func TestFPShardedMap(t *testing.T) {
	m := NewFPShardedMap[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Update(fingerprint.OfUint64(uint64(i%50)), func(v int) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
	for i := 0; i < 50; i++ {
		v, ok := m.Get(fingerprint.OfUint64(uint64(i)))
		if !ok || v != 80 {
			t.Fatalf("digest %d: value = %d, ok = %v, want 80", i, v, ok)
		}
	}
}

func TestFPShardedMapGetOrInsert(t *testing.T) {
	m := NewFPShardedMap[string]()
	var wg sync.WaitGroup
	results := make([]string, 16)
	d := fingerprint.OfString("x")
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = m.GetOrInsert(d, func() string { return "computed" })
		}(w)
	}
	wg.Wait()
	for w, r := range results {
		if r != "computed" {
			t.Fatalf("worker %d saw %q", w, r)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestDedupString(t *testing.T) {
	names := map[Dedup]string{
		DedupFingerprint: "fingerprint",
		DedupVerified:    "verified",
		DedupStrings:     "strings",
		Dedup(99):        "invalid",
	}
	for d, want := range names { //ccvet:ignore detrange independent assertions; order is unobservable
		if d.String() != want {
			t.Fatalf("Dedup(%d).String() = %q, want %q", int(d), d.String(), want)
		}
	}
}
