package frontier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestMapPreservesItemOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, par := range []int{1, 2, 8} {
		out, err := Map(context.Background(), par, items, func(x int) int { return x * x })
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(context.Background(), 8, nil, func(x int) int { return x })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
	out, err = Map(context.Background(), 8, []int{7}, func(x int) int { return x + 1 })
	if err != nil || len(out) != 1 || out[0] != 8 {
		t.Fatalf("single map: out=%v err=%v", out, err)
	}
}

func TestMapPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := Map(ctx, 4, []int{1, 2, 3}, func(x int) int { ran++; return x })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("pre-cancelled Map ran %d items, want 0", ran)
	}
}

func TestMapMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10_000)
	var once sync.Once
	_, err := Map(ctx, 4, items, func(x int) int {
		once.Do(cancel)
		return x
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapRepanicsAtLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map swallowed the panic")
		}
		if fmt.Sprint(r) != "boom 3" {
			t.Fatalf("recovered %v, want the lowest-index panic (boom 3)", r)
		}
	}()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	Map(context.Background(), 4, items, func(x int) int {
		if x == 3 || x == 50 {
			panic(fmt.Sprintf("boom %d", x))
		}
		return x
	})
}

func TestVisitedSetAddAndSeen(t *testing.T) {
	v := NewVisitedSet()
	if v.Seen("a") {
		t.Fatal("fresh set claims to have seen a key")
	}
	if !v.Add("a") || v.Add("a") {
		t.Fatal("Add must report new exactly once")
	}
	if !v.Seen("a") || v.Len() != 1 {
		t.Fatalf("after Add: seen=%v len=%d", v.Seen("a"), v.Len())
	}
}

func TestVisitedSetConcurrent(t *testing.T) {
	v := NewVisitedSet()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	added := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every worker races on the same key space; each key
				// must be granted to exactly one Add across workers.
				if v.Add(fmt.Sprintf("key-%d", i)) {
					added[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, a := range added {
		total += a
	}
	if total != perWorker || v.Len() != perWorker {
		t.Fatalf("granted %d adds, set size %d, want %d", total, v.Len(), perWorker)
	}
}

func TestInternerCollapsesEqualStrings(t *testing.T) {
	in := NewInterner()
	const workers = 8
	var wg sync.WaitGroup
	out := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct backing arrays with equal content.
			out[w] = in.Intern(string([]byte{'k', 'e', 'y', byte('0')}))
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if out[w] != out[0] {
			t.Fatalf("interner returned unequal strings: %q vs %q", out[0], out[w])
		}
	}
}

func TestShardedMapCommutativeUpdates(t *testing.T) {
	m := NewShardedMap[int]()
	const workers, keys = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				m.Update(fmt.Sprintf("k%d", i), func(v int) int { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("len = %d, want %d", m.Len(), keys)
	}
	snap := m.Snapshot()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		if snap[k] != workers {
			t.Fatalf("snapshot[%s] = %d, want %d", k, snap[k], workers)
		}
		if v, ok := m.Get(k); !ok || v != workers {
			t.Fatalf("Get(%s) = %d,%v, want %d,true", k, v, ok, workers)
		}
	}
}

func TestParallelismDefault(t *testing.T) {
	if Parallelism(3) != 3 {
		t.Fatal("explicit parallelism not honoured")
	}
	if Parallelism(0) < 1 || Parallelism(-1) < 1 {
		t.Fatal("default parallelism must be at least 1")
	}
}
