// Package frontier provides the parallel exploration machinery shared by
// the checker's configuration-space explorer and the scheme enumerator: a
// fingerprint-partitioned asynchronous worker pool (pool.go), the
// sequential visited set behind its canonical replay pass, the dedup
// engines (fpset.go), a concurrent string interner, and sharded map
// utilities.
//
// The central discipline is the split into a fully asynchronous,
// order-free speculation phase and a sequential canonical ordering phase.
// Pool workers own static shards of the 128-bit fingerprint space and
// exchange successor batches over bounded channels with no global barrier;
// they only *prefetch* — admissions to the shared visited set and stored
// expansions carry no order. Everything order-sensitive — which nodes the
// result contains, interning, violation ordering, budget cuts — is decided
// afterwards by a single goroutine replaying the stored results in
// breadth-first frontier order against its own sequential visited set,
// re-expanding on demand anything the pool dropped. The observable result
// is therefore a pure function of the root set, independent of both the
// parallelism level and the scheduler, which is what lets a differential
// test assert byte-identical explorations at parallelism 1, 2, 8, and 16.
package frontier

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// numShards is the shard count for VisitedSet, Interner, and ShardedMap. A
// power of two keeps the index computation a mask.
const numShards = 64

// shardIndex hashes a key to a shard with FNV-1a.
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numShards - 1))
}

// Parallelism resolves a requested worker count: zero or negative means
// GOMAXPROCS.
func Parallelism(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item with up to parallelism concurrent workers and
// returns the results in item order. The assignment of items to workers is
// arbitrary, so fn must confine itself to computation and commutative
// side effects; order-sensitive state belongs in the caller's merge over the
// returned slice.
//
// Map polls ctx: a context that is already cancelled returns before any fn
// call, and a cancellation mid-run abandons the remaining items and returns
// the context's error (fn may have run on an unspecified subset by then, so
// callers must discard the level on error). If any fn panics, Map waits for
// the workers to drain and re-panics with the panicking item of lowest
// index, keeping failure behaviour independent of scheduling.
func Map[T, R any](ctx context.Context, parallelism int, items []T, fn func(T) R) ([]R, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]R, len(items))
	workers := Parallelism(parallelism)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			if i&63 == 0 && i > 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out[i] = fn(items[i])
		}
		return out, nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []panicAt
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if pv, ok := runOne(&out[i], items[i], fn); !ok {
					panicMu.Lock()
					panics = append(panics, panicAt{index: i, value: pv})
					panicMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(first.value)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

type panicAt struct {
	index int
	value any
}

// runOne runs fn on one item, capturing a panic instead of unwinding the
// worker goroutine.
func runOne[T, R any](dst *R, item T, fn func(T) R) (panicValue any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			panicValue, ok = r, false
		}
	}()
	*dst = fn(item)
	return nil, true
}

// VisitedSet is a set of canonical node keys sharded by key hash. Reads
// (Seen) and writes (Add) are independently safe for concurrent use; the
// level-synchronous explorers only write from the sequential merge phase,
// so expansion-phase reads never block each other.
type VisitedSet struct {
	shards [numShards]visitShard
}

type visitShard struct {
	mu sync.RWMutex
	m  map[string]struct{} // ccvet:guardedby mu
}

// NewVisitedSet returns an empty set.
func NewVisitedSet() *VisitedSet {
	v := &VisitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[string]struct{})
	}
	return v
}

// Seen reports whether the key has been added.
func (v *VisitedSet) Seen(key string) bool {
	sh := &v.shards[shardIndex(key)]
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	return ok
}

// Add inserts the key, reporting whether it was new.
func (v *VisitedSet) Add(key string) bool {
	sh := &v.shards[shardIndex(key)]
	sh.mu.Lock()
	_, ok := sh.m[key]
	if !ok {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	return !ok
}

// Len returns the number of keys added.
func (v *VisitedSet) Len() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Interner deduplicates strings across goroutines: equal keys computed by
// different workers collapse to one retained copy, which keeps the
// aggregated state maps allocation-lean (a state key is retained once
// however many million configurations it occurs in).
type Interner struct {
	shards [numShards]internShard
}

type internShard struct {
	mu sync.RWMutex
	m  map[string]string // ccvet:guardedby mu
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]string)
	}
	return in
}

// Intern returns the canonical copy of s, storing s itself on first use.
func (in *Interner) Intern(s string) string {
	sh := &in.shards[shardIndex(s)]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		sh.m[s] = s
		c = s
	}
	sh.mu.Unlock()
	return c
}

// ShardedMap is a string-keyed map sharded by key hash, for concurrent
// commutative aggregation: workers from the expansion phase update values
// under per-shard mutexes. Content ends up deterministic as long as every
// update is a set-union-style operation whose result is independent of
// update order; anything order-sensitive belongs in the merge phase instead.
type ShardedMap[V any] struct {
	shards [numShards]mapShard[V]
}

type mapShard[V any] struct {
	mu sync.Mutex
	m  map[string]V // ccvet:guardedby mu
}

// NewShardedMap returns an empty map.
func NewShardedMap[V any]() *ShardedMap[V] {
	s := &ShardedMap[V]{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]V)
	}
	return s
}

// Update applies fn to the value under key while holding the shard lock. fn
// receives the zero value if the key is absent and its return value is
// stored. fn must not touch the ShardedMap (the shard lock is held).
func (s *ShardedMap[V]) Update(key string, fn func(V) V) {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.m[key] = fn(sh.m[key])
	sh.mu.Unlock()
}

// Get returns the value under key.
func (s *ShardedMap[V]) Get(key string) (V, bool) {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

// Len returns the number of keys.
func (s *ShardedMap[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot merges the shards into one plain map.
func (s *ShardedMap[V]) Snapshot() map[string]V {
	out := make(map[string]V, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m { //ccvet:ignore detrange keyed copy into a map; order is unobservable
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}
