package checker

import (
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

func problem(t taxonomy.Termination, c taxonomy.Consistency) taxonomy.Problem {
	return taxonomy.Problem{Rule: taxonomy.UnanimityRule{}, Termination: t, Consistency: c}
}

func mustCheck(t *testing.T, proto sim.Protocol, p taxonomy.Problem, opts Options) *Exploration {
	t.Helper()
	x, err := Check(proto, p, opts)
	if err != nil {
		t.Fatalf("check %s against %s: %v", proto.Name(), p.Name(), err)
	}
	return x
}

func TestTreeSolvesWTTC(t *testing.T) {
	x := mustCheck(t, protocols.Tree{Procs: 3}, problem(taxonomy.WT, taxonomy.TC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("tree(3) violates WT-TC: %v", x.Violations[0])
	}
	t.Logf("tree(3): %d nodes, %d states, %d terminals", x.NodeCount, len(x.States), x.Terminals)
}

func TestAckCommitSolvesWTTC(t *testing.T) {
	x := mustCheck(t, protocols.AckCommit{Procs: 3}, problem(taxonomy.WT, taxonomy.TC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("ackcommit(3) violates WT-TC: %v", x.Violations[0])
	}
}

func TestStarSolvesHTIC(t *testing.T) {
	x := mustCheck(t, protocols.Star{Procs: 3}, problem(taxonomy.HT, taxonomy.IC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("star(3) violates HT-IC: %v", x.Violations[0])
	}
}

func TestStarViolatesWTTC(t *testing.T) {
	x := mustCheck(t, protocols.Star{Procs: 3}, problem(taxonomy.WT, taxonomy.TC),
		Options{MaxFailures: 2, StopAtFirstViolation: true})
	if x.Conforms() {
		t.Fatal("star(3) unexpectedly satisfies WT-TC; it should violate total consistency")
	}
	found := false
	for _, v := range x.Violations {
		if v.Kind == "TC" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected a TC violation, got %v", x.Violations)
	}
}

func TestChainSolvesWTIC(t *testing.T) {
	x := mustCheck(t, protocols.Chain{Procs: 3}, problem(taxonomy.WT, taxonomy.IC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("chain(3) violates WT-IC: %v", x.Violations[0])
	}
}

func TestChainViolatesWTTC(t *testing.T) {
	x := mustCheck(t, protocols.Chain{Procs: 3}, problem(taxonomy.WT, taxonomy.TC),
		Options{MaxFailures: 2, StopAtFirstViolation: true})
	if x.Conforms() {
		t.Fatal("chain(3) unexpectedly satisfies WT-TC")
	}
}

func TestFullExchangeViolatesWTTC(t *testing.T) {
	if testing.Short() {
		t.Skip("fullexchange(3) exploration to the WT-TC violation takes ~1 minute")
	}
	x := mustCheck(t, protocols.FullExchange{Procs: 3}, problem(taxonomy.WT, taxonomy.TC),
		Options{MaxFailures: 2, StopAtFirstViolation: true})
	if x.Conforms() {
		t.Fatal("fullexchange(3) unexpectedly satisfies WT-TC")
	}
}

func TestFullExchangeSolvesWTIC(t *testing.T) {
	if testing.Short() {
		t.Skip("full WT-IC exploration of fullexchange(3) takes ~1 minute")
	}
	x := mustCheck(t, protocols.FullExchange{Procs: 3}, problem(taxonomy.WT, taxonomy.IC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("fullexchange(3) violates WT-IC: %v", x.Violations[0])
	}
}

func TestHaltingCommitSolvesHTTC(t *testing.T) {
	x := mustCheck(t, protocols.HaltingCommit{Procs: 3}, problem(taxonomy.HT, taxonomy.TC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("haltingcommit(3) violates HT-TC: %v", x.Violations[0])
	}
	t.Logf("haltingcommit(3): %d nodes, %d states", x.NodeCount, len(x.States))
}

func TestTreeSTSolvesSTTC(t *testing.T) {
	x := mustCheck(t, protocols.Tree{Procs: 3, ST: true}, problem(taxonomy.ST, taxonomy.TC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("tree-st(3) violates ST-TC: %v", x.Violations[0])
	}
}

func TestChainSTViolatesSTIC(t *testing.T) {
	x := mustCheck(t, protocols.Chain{Procs: 3, ST: true}, problem(taxonomy.ST, taxonomy.IC),
		Options{MaxFailures: 2, StopAtFirstViolation: true})
	if x.Conforms() {
		t.Fatal("chain-st(3) unexpectedly satisfies ST-IC")
	}
}

func TestTwoPhaseCommitSolvesWTIC(t *testing.T) {
	x := mustCheck(t, protocols.TwoPhaseCommit{Procs: 3}, problem(taxonomy.WT, taxonomy.IC), Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("2pc(3) violates WT-IC: %v", x.Violations[0])
	}
}

func TestTwoPhaseCommitViolatesWTTC(t *testing.T) {
	// The classic blocking hazard: the coordinator commits and fails
	// before the decision reaches anyone; the survivors abort.
	x := mustCheck(t, protocols.TwoPhaseCommit{Procs: 3}, problem(taxonomy.WT, taxonomy.TC),
		Options{MaxFailures: 2, StopAtFirstViolation: true})
	if x.Conforms() {
		t.Fatal("2pc(3) unexpectedly satisfies WT-TC")
	}
}

func TestThresholdCommitSolvesWTTC(t *testing.T) {
	p := taxonomy.Problem{Rule: taxonomy.ThresholdRule{K: 2}, Termination: taxonomy.WT, Consistency: taxonomy.TC}
	x := mustCheck(t, protocols.ThresholdCommit{Procs: 3, K: 2}, p, Options{MaxFailures: 2})
	if !x.Conforms() {
		t.Fatalf("threshold(3,2) violates WT-TC under threshold-2: %v", x.Violations[0])
	}
}

func TestTreeStatesAreSafe(t *testing.T) {
	x := mustCheck(t, protocols.Tree{Procs: 3}, problem(taxonomy.WT, taxonomy.TC), Options{MaxFailures: 2})
	rep := x.Safety()
	if !rep.AllSafe() {
		t.Fatalf("tree(3) has %d unsafe states, e.g. %s: %s",
			len(rep.Unsafe), rep.Unsafe[0].Key, rep.Unsafe[0].Reason)
	}
	if len(rep.Corollary6) > 0 {
		t.Fatalf("tree(3) violates Corollary 6: %v", rep.Corollary6[0])
	}
}

func TestFullExchangeHasUnsafeStates(t *testing.T) {
	if testing.Short() {
		t.Skip("fullexchange(3) safety exploration takes ~30 seconds")
	}
	// One failure suffices to expose the unsafe concurrency: a decided
	// committer concurrent with a gatherer that lacks an input.
	x, err := Explore(protocols.FullExchange{Procs: 3}, Options{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := x.Safety()
	if rep.AllSafe() {
		t.Fatal("fullexchange(3) unexpectedly has only safe states")
	}
}

func TestStarViolatesCorollary6(t *testing.T) {
	x, err := Explore(protocols.Star{Procs: 3}, Options{MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := x.Safety()
	if len(rep.Corollary6) == 0 {
		t.Fatal("star(3) unexpectedly satisfies Corollary 6; the coordinator commits before anyone shares its bias")
	}
}
