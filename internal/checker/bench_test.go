package checker

import (
	"fmt"
	"testing"

	"repro/internal/frontier"
	"repro/internal/protocols"
)

// BenchmarkExploreDedup pits the three visited-set engines against each
// other on the standard tree(N=3) two-failure space — the configuration
// tracked in BENCH_explore.json. DedupStrings is the old string-keyed
// engine; the gap to DedupFingerprint is the win this package's
// fingerprint fast path buys.
func BenchmarkExploreDedup(b *testing.B) {
	for _, dedup := range []frontier.Dedup{frontier.DedupStrings, frontier.DedupVerified, frontier.DedupFingerprint} {
		for _, par := range []int{1, 4} {
			dedup, par := dedup, par
			b.Run(fmt.Sprintf("%v/p%d", dedup, par), func(b *testing.B) {
				b.ReportAllocs()
				var nodes int
				for i := 0; i < b.N; i++ {
					x, err := Explore(protocols.Tree{Procs: 3}, Options{MaxFailures: 2, Parallelism: par, Dedup: dedup})
					if err != nil {
						b.Fatal(err)
					}
					nodes = x.NodeCount
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}
