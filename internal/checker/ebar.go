package checker

import (
	"sort"

	"repro/internal/sim"
)

// EBarStates returns the E̅ states found by the exploration: the accessible
// receiving states that never occur in a configuration in which their
// occupant's buffer is empty. Formally (Section 3), a processor only enters
// such a state if it knows its message buffer is not empty — "knows" read,
// as everywhere in the paper, as holding in every accessible configuration
// containing the state.
//
// A processor in an E̅ state cannot be forced to make a decision: it can
// safely procrastinate until the impending message is delivered, which is
// why Theorem 2's analysis excludes such states and why the paper gives the
// priority-queue simulation (transform.EliminateEBar) that removes them
// from total-communication protocols.
func (x *Exploration) EBarStates() []string {
	var out []string
	for key, si := range x.States {
		if si.Sample.Kind() != sim.Receiving {
			continue
		}
		if !si.SeenEmptyBuffer {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// ConcurrencySet returns C(s) for the state with the given key: the sorted
// keys of every state occurring in the same accessible configuration.
func (x *Exploration) ConcurrencySet(stateKey string) []string {
	si, ok := x.States[stateKey]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(si.Conc))
	for k := range si.Conc {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StateKeys returns every accessible state key, sorted.
func (x *Exploration) StateKeys() []string {
	out := make([]string, 0, len(x.States))
	for k := range x.States {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
