package checker

import (
	"context"
	"errors"
	"testing"

	"repro/internal/protocols"
	"repro/internal/taxonomy"
)

func TestCancelledExploreReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, err := ExploreContext(ctx, protocols.Tree{Procs: 3}, Options{MaxFailures: 2})
	if x == nil {
		t.Fatal("cancelled exploration must still return the partial Exploration")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if x.Status != StatusInterrupted || !x.Status.Partial() {
		t.Fatalf("status = %v, want interrupted (partial)", x.Status)
	}
	// Consistency of the partial snapshot: the visited count covers at
	// least the recorded root, and the unexpanded frontier is reported.
	if x.NodeCount < 1 || x.FrontierSize < 1 {
		t.Fatalf("partial snapshot inconsistent: %d nodes, %d frontier", x.NodeCount, x.FrontierSize)
	}
}

// TestBudgetExhaustionKeepsPartialResults pins the graceful-degradation
// contract: hitting MaxNodes returns the partial exploration — including
// violations already found — instead of discarding it. The budget is chosen
// below the star protocol's full space (39 503 nodes) but far enough in that
// breadth-first order has already crossed WT-TC violations, so the run is
// exhausted with violations in hand.
func TestBudgetExhaustionKeepsPartialResults(t *testing.T) {
	x, err := CheckContext(context.Background(), protocols.Star{Procs: 3},
		problem(taxonomy.WT, taxonomy.TC),
		Options{MaxFailures: 2, MaxNodes: 36_000})
	if x == nil {
		t.Fatal("exhausted exploration must still return the partial Exploration")
	}
	var budget *BudgetError
	if !errors.As(err, &budget) || budget.Nodes != 36_000 {
		t.Fatalf("err = %v, want *BudgetError with Nodes=36000", err)
	}
	if x.Status != StatusExhausted || !x.Status.Partial() {
		t.Fatalf("status = %v, want exhausted (partial)", x.Status)
	}
	// The budget is exact: the exploration accepts MaxNodes configurations
	// and stops deterministically at the first rejected one.
	if x.NodeCount != 36_000 {
		t.Fatalf("NodeCount = %d, want exactly the budget", x.NodeCount)
	}
	if x.FrontierSize == 0 {
		t.Fatal("exhausted mid-space but FrontierSize = 0")
	}
	if len(x.Violations) == 0 {
		t.Fatal("violations found before exhaustion were lost")
	}
}

// TestBudgetExhaustionExactAtEveryWidth sweeps the exact-MaxNodes contract
// across parallelism widths: whether the expansion is inline (width 1) or
// speculatively prefetched by 2, 8, or 16 pool workers, the canonical replay
// accepts exactly MaxNodes configurations, reports Exhausted, and leaves a
// non-empty frontier. The budget cut lands mid-space for star at two
// failures, so the stop happens in the middle of a merge, not at a level
// boundary.
func TestBudgetExhaustionExactAtEveryWidth(t *testing.T) {
	const budget = 6_000
	for _, par := range []int{1, 2, 8, 16} {
		x, err := CheckContext(context.Background(), protocols.Star{Procs: 3},
			problem(taxonomy.WT, taxonomy.TC),
			Options{MaxFailures: 2, MaxNodes: budget, Parallelism: par})
		if x == nil {
			t.Fatalf("width %d: exhausted exploration must still return the partial Exploration", par)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Nodes != budget {
			t.Fatalf("width %d: err = %v, want *BudgetError with Nodes=%d", par, err, budget)
		}
		if x.Status != StatusExhausted {
			t.Fatalf("width %d: status = %v, want exhausted", par, x.Status)
		}
		if x.NodeCount != budget {
			t.Fatalf("width %d: NodeCount = %d, want exactly the budget %d", par, x.NodeCount, budget)
		}
		if len(x.Configs) != budget {
			t.Fatalf("width %d: len(Configs) = %d, want exactly the budget %d", par, len(x.Configs), budget)
		}
		if x.FrontierSize == 0 {
			t.Fatalf("width %d: exhausted mid-space but FrontierSize = 0", par)
		}
	}
}

func TestCompleteExplorationHasCompleteStatus(t *testing.T) {
	x := mustCheck(t, protocols.Tree{Procs: 3}, problem(taxonomy.WT, taxonomy.TC), Options{MaxFailures: 1})
	if x.Status != StatusComplete || x.Status.Partial() {
		t.Fatalf("status = %v, want complete", x.Status)
	}
	if x.FrontierSize != 0 {
		t.Fatalf("complete exploration left %d frontier nodes", x.FrontierSize)
	}
}
