package checker

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/frontier"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// diffParallelism is the set of worker counts the differential suite pits
// against each other. Parallelism 1 runs the expansion inline with no pool;
// 2, 8, and 16 exercise the partitioned prefetch pool (and, under -race,
// the synchronization of the shared visited set, the per-owner routing
// channels, and the streamed census).
var diffParallelism = []int{1, 2, 8, 16}

// exploreDigest renders every observable field of an Exploration into one
// canonical string, so "byte-identical results" is literally a string
// comparison. Interned state keys and Configs are emitted in discovery
// order; the aggregate States map is emitted sorted by key with its sets
// sorted, since map-valued aggregates carry no order of their own.
func exploreDigest(x *Exploration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d status=%v frontier=%d terminals=%d\n",
		x.NodeCount, x.Status, x.FrontierSize, x.Terminals)
	for i, k := range x.stateKeys {
		fmt.Fprintf(&sb, "S%d %s\n", i, k)
	}
	for i := range x.Configs {
		c := &x.Configs[i]
		fmt.Fprintf(&sb, "C %v %v %s %v\n", c.StateIdx, c.Ledger, c.InputsVec, c.Terminal)
	}
	keys := make([]string, 0, len(x.States))
	for k := range x.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		si := x.States[k]
		procs := make([]int, 0, len(si.Procs))
		for p := range si.Procs {
			procs = append(procs, int(p))
		}
		sort.Ints(procs)
		fmt.Fprintf(&sb, "I %s sample=%s empty=%v procs=%v inputs=%v conc=%v\n",
			k, si.Sample.Key(), si.SeenEmptyBuffer, procs,
			sortedSet(si.Inputs), sortedSet(si.Conc))
	}
	for _, v := range x.Violations {
		fmt.Fprintf(&sb, "V %s %s\n", v.Kind, v.Detail)
	}
	for _, s := range x.FirstTrace {
		fmt.Fprintf(&sb, "T %s\n", s)
	}
	return sb.String()
}

func sortedSet(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// diffCase is one protocol/options pair checked across parallelism levels.
// Budget-capped cases deliberately stop mid-space: the partial result of a
// budget-exhausted exploration is part of the determinism contract.
type diffCase struct {
	name  string
	proto sim.Protocol
	opts  Options
}

func diffCases() []diffCase {
	return []diffCase{
		// Complete explorations: the whole reachable space, so the full
		// census (states, concurrency sets, terminals) is diffed.
		{"tree-mf0", protocols.Tree{Procs: 3}, Options{MaxFailures: 0}},
		{"fullexchange-mf0", protocols.FullExchange{Procs: 3}, Options{MaxFailures: 0}},
		// Budget-capped explorations: failure injection blows up the
		// space, so these exercise the deterministic mid-merge budget
		// stop (exact NodeCount, frontier snapshot, violation prefix).
		{"tree-mf2", protocols.Tree{Procs: 3}, Options{MaxFailures: 2, MaxNodes: 6000}},
		{"star-mf2", protocols.Star{Procs: 3}, Options{MaxFailures: 2, MaxNodes: 6000}},
		{"chain-mf2", protocols.Chain{Procs: 3}, Options{MaxFailures: 2, MaxNodes: 6000}},
		{"perverse-mf1", protocols.Perverse{}, Options{MaxFailures: 1, MaxNodes: 6000}},
		{"ackcommit-mf2", protocols.AckCommit{Procs: 3}, Options{MaxFailures: 2, MaxNodes: 6000}},
		{"haltingcommit-mf2", protocols.HaltingCommit{Procs: 3}, Options{MaxFailures: 2, MaxNodes: 6000}},
	}
}

// diffDedups is the set of dedup engines the differential suite pits
// against each other: the string-keyed reference engine, the default
// fingerprint engine, and the collision-verification engine. Crossed with
// diffParallelism, every (engine, worker count) pair must reproduce the
// reference result byte for byte.
var diffDedups = []frontier.Dedup{frontier.DedupStrings, frontier.DedupFingerprint, frontier.DedupVerified}

// TestExploreDifferential asserts that exploring every library protocol
// with every dedup engine at parallelism 1, 2, 8, and 16 produces
// byte-identical results: node counts, interned state keys, configuration
// records, the aggregate state census, violations in order, and
// FirstTrace. The string-keyed sequential run is the reference.
func TestExploreDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			prob := problem(taxonomy.WT, taxonomy.TC)
			var baseDigest, baseErr string
			first := true
			for _, dedup := range diffDedups {
				for _, par := range diffParallelism {
					opts := tc.opts
					opts.Parallelism = par
					opts.Dedup = dedup
					opts.Problem = &prob
					opts.TrackTraces = true
					x, err := ExploreContext(context.Background(), tc.proto, opts)
					if x == nil {
						t.Fatalf("%v/parallelism %d: nil exploration (err=%v)", dedup, par, err)
					}
					if x.Collisions != 0 {
						t.Errorf("%v/parallelism %d: %d fingerprint collisions", dedup, par, x.Collisions)
					}
					errStr := ""
					if err != nil {
						errStr = err.Error()
					}
					d := exploreDigest(x)
					if first {
						baseDigest, baseErr = d, errStr
						first = false
						continue
					}
					if errStr != baseErr {
						t.Errorf("%v/parallelism %d: err = %q, want %q", dedup, par, errStr, baseErr)
					}
					if d != baseDigest {
						t.Errorf("%v/parallelism %d: exploration diverges from string-keyed sequential:\n%s",
							dedup, par, firstDiff(baseDigest, d))
					}
				}
			}
		})
	}
}

// TestExploreOmissionDifferential asserts the same determinism contract
// for omission-faulted explorations: every (dedup engine, parallelism)
// pair must reproduce the string-keyed sequential result byte for byte —
// verdict, node counts, and the full state census — with omission budgets
// enabled, both for complete explorations and for budget-capped partial
// ones (the mid-merge stop must land on the same node at any worker
// count). Reductions are disabled under omissions (DESIGN.md §8), so
// these rows always explore the full graph.
func TestExploreOmissionDifferential(t *testing.T) {
	cases := []diffCase{
		// Complete: the whole omission-augmented space.
		{"tree-ob2", protocols.Tree{Procs: 3}, Options{MaxFailures: 0, OmissionBudget: 2}},
		{"tree-ob2-mobile1", protocols.Tree{Procs: 3}, Options{MaxFailures: 0, OmissionBudget: 2, MobileOmissions: 1}},
		{"ackcommit-mf1-ob1", protocols.AckCommit{Procs: 3}, Options{MaxFailures: 1, OmissionBudget: 1}},
		// Budget-partial: crash + omission injection blows up the space;
		// the deterministic node-budget stop is part of the contract.
		{"star-mf2-ob2-capped", protocols.Star{Procs: 3}, Options{MaxFailures: 2, OmissionBudget: 2, MobileOmissions: 1, MaxNodes: 6000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob := problem(taxonomy.WT, taxonomy.TC)
			var baseDigest, baseErr string
			first := true
			for _, dedup := range []frontier.Dedup{frontier.DedupStrings, frontier.DedupFingerprint} {
				for _, par := range []int{1, 2, 8} {
					opts := tc.opts
					opts.Parallelism = par
					opts.Dedup = dedup
					opts.Problem = &prob
					opts.TrackTraces = true
					x, err := ExploreContext(context.Background(), tc.proto, opts)
					if x == nil {
						t.Fatalf("%v/parallelism %d: nil exploration (err=%v)", dedup, par, err)
					}
					if x.Collisions != 0 {
						t.Errorf("%v/parallelism %d: %d fingerprint collisions", dedup, par, x.Collisions)
					}
					errStr := ""
					if err != nil {
						errStr = err.Error()
					}
					d := exploreDigest(x)
					if first {
						baseDigest, baseErr = d, errStr
						first = false
						continue
					}
					if errStr != baseErr {
						t.Errorf("%v/parallelism %d: err = %q, want %q", dedup, par, errStr, baseErr)
					}
					if d != baseDigest {
						t.Errorf("%v/parallelism %d: omission exploration diverges from string-keyed sequential:\n%s",
							dedup, par, firstDiff(baseDigest, d))
					}
				}
			}
		})
	}
}

// TestExploreDifferentialCancelled asserts that a cancelled context yields
// identical partial results — Status, NodeCount, FrontierSize, and the full
// digest — at every parallelism level.
func TestExploreDifferentialCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prob := problem(taxonomy.WT, taxonomy.TC)
	var baseDigest string
	for _, par := range diffParallelism {
		x, err := ExploreContext(ctx, protocols.Star{Procs: 3}, Options{
			MaxFailures: 2, Parallelism: par, Problem: &prob, TrackTraces: true,
		})
		if x == nil {
			t.Fatalf("parallelism %d: nil exploration", par)
		}
		if err == nil || x.Status != StatusInterrupted {
			t.Fatalf("parallelism %d: status = %v, err = %v, want interrupted", par, x.Status, err)
		}
		d := exploreDigest(x)
		if par == diffParallelism[0] {
			baseDigest = d
			if x.NodeCount < 1 || x.FrontierSize < 1 {
				t.Fatalf("cancelled exploration lost its partial snapshot: %d nodes, %d frontier", x.NodeCount, x.FrontierSize)
			}
			continue
		}
		if d != baseDigest {
			t.Errorf("parallelism %d: cancelled partial result diverges:\n%s", par, firstDiff(baseDigest, d))
		}
	}
}

// firstDiff locates the first line where two digests diverge, for a readable
// failure instead of two multi-megabyte strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("digest lengths differ: %d vs %d lines", len(al), len(bl))
}
