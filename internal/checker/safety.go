package checker

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// UnsafeState describes one accessible state violating the safe-state
// definition of Section 4.
type UnsafeState struct {
	Key    string
	Reason string
}

// SafetyReport is the result of the Theorem 2 analysis over an exploration:
// which accessible states are safe, the bias partition, and whether
// Corollary 6 holds on every accessible configuration.
type SafetyReport struct {
	// TotalStates is the number of accessible operational states analyzed.
	TotalStates int
	// Unsafe lists the operational states that are not safe.
	Unsafe []UnsafeState
	// Committable maps each analyzed state key to its bias: true iff the
	// state implies all inputs are 1 and its concurrency set contains no
	// abort state.
	Committable map[string]bool
	// Corollary6 lists violations of Corollary 6 — configurations where a
	// processor has decided but some nonfaulty processor does not share
	// its bias.
	Corollary6 []taxonomy.Violation
}

// AllSafe reports whether every analyzed state is safe.
func (r *SafetyReport) AllSafe() bool { return len(r.Unsafe) == 0 }

// Safety runs the Theorem 2 analysis on a completed exploration.
//
// A state s is safe iff (1) its concurrency set C(s) does not contain
// conflicting decision states, and (2) if C(s) contains a commit state then
// s implies that the input value of every processor is 1. "Implies" is
// evaluated over accessibility: the property must hold in every accessible
// configuration containing s, i.e. under every input vector from which s is
// reachable.
func (x *Exploration) Safety() *SafetyReport {
	r := &SafetyReport{Committable: make(map[string]bool, len(x.States))}

	keys := make([]string, 0, len(x.States))
	for k := range x.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	concDecisions := func(si *StateInfo) (commit, abort bool) {
		for ck := range si.Conc { //ccvet:ignore detrange commutative boolean accumulation; order is unobservable
			switch x.States[ck].Decision() {
			case sim.Commit:
				commit = true
			case sim.Abort:
				abort = true
			}
		}
		return commit, abort
	}

	for _, k := range keys {
		si := x.States[k]
		if si.Sample.Kind() == sim.Failed {
			continue
		}
		r.TotalStates++
		commitConc, abortConc := concDecisions(si)
		selfDecision := si.Decision()
		commitSeen := commitConc || selfDecision == sim.Commit
		abortSeen := abortConc || selfDecision == sim.Abort

		if commitSeen && abortSeen {
			r.Unsafe = append(r.Unsafe, UnsafeState{
				Key:    k,
				Reason: "concurrency set contains both a commit and an abort state",
			})
		}
		if commitSeen && !si.ImpliesAllOnes() {
			r.Unsafe = append(r.Unsafe, UnsafeState{
				Key: k,
				Reason: fmt.Sprintf("commit in concurrency set but state is accessible under %d input vector(s) containing a 0",
					countMixed(si)),
			})
		}

		// Bias: committable iff the state implies all inputs are 1 and
		// no abort state is concurrent with it.
		r.Committable[k] = si.ImpliesAllOnes() && !abortConc && selfDecision != sim.Abort
	}

	r.Corollary6 = x.checkCorollary6(r.Committable)
	return r
}

func countMixed(si *StateInfo) int {
	n := 0
	for vec := range si.Inputs { //ccvet:ignore detrange counting; order is unobservable
		for _, c := range vec {
			if c == '0' {
				n++
				break
			}
		}
	}
	return n
}

// checkCorollary6 verifies Corollary 6 on every recorded configuration: if
// any processor has decided (per the ledger — decisions by since-failed
// processors count under total consistency), then every nonfaulty processor
// occupies a state of the same bias.
func (x *Exploration) checkCorollary6(committable map[string]bool) []taxonomy.Violation {
	var out []taxonomy.Violation
	for _, rec := range x.Configs {
		decided := sim.NoDecision
		for _, d := range rec.Ledger {
			if d != sim.NoDecision {
				decided = d
				break
			}
		}
		if decided == sim.NoDecision {
			continue
		}
		wantCommittable := decided == sim.Commit
		for p, idx := range rec.StateIdx {
			key := x.stateKeys[idx]
			if x.States[key].Sample.Kind() == sim.Failed {
				continue
			}
			if committable[key] != wantCommittable {
				out = append(out, taxonomy.Violation{
					Kind: "corollary6",
					Detail: fmt.Sprintf("after a %s decision, nonfaulty %s occupies %s with bias committable=%v",
						decided, sim.ProcID(p), key, committable[key]),
				})
				if len(out) >= 20 {
					return out
				}
			}
		}
	}
	return out
}
