package checker

import (
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/transform"
)

func TestFailureFreeProtocolsAreEBarFree(t *testing.T) {
	// In failure-free executions — where the paper's E̅ discussion lives
	// (schemes and the Section 3 transformations are failure-free) — the
	// hand-written protocols never let a processor know its buffer is
	// nonempty. With failures, E̅ states arise inherently and
	// legitimately: holding an early round r+1 message proves the
	// sender's round-r message is buffered, and any sign of termination
	// activity proves an unprocessed failure notice is pending. Theorem
	// 2's conclusion (safety) was verified over those states directly
	// (TestTreeStatesAreSafe), so the paper's E̅-freedom proof device is
	// not needed for them.
	// The perverse protocol is deliberately absent: its "done" gating
	// creates real failure-free E̅ states (receiving done before the bias
	// proves the bias is buffered) — which is fine, since its safety is
	// verified directly rather than through the E̅-free proof device.
	protos := []sim.Protocol{
		protocols.Tree{Procs: 3},
		protocols.Chain{Procs: 3},
		protocols.Star{Procs: 3},
		protocols.AckCommit{Procs: 3},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			x, err := Explore(proto, Options{MaxFailures: 0})
			if err != nil {
				t.Fatal(err)
			}
			if ebar := x.EBarStates(); len(ebar) != 0 {
				t.Fatalf("failure-free E̅ state:\n%s", strings.Join(ebar, "\n"))
			}
		})
	}
}

// veeProto is a minimal protocol exhibiting the Section 3 E̅ situation once
// padded: p0 sends a to p2 and then b to p1; p1, on receiving b, sends c to
// p2; p2 waits for both a and c. Under total communication, c carries an
// appended copy of a — so a processor that receives c first *knows* a is
// still in its buffer while it waits for it.
type veeProto struct{}

type veeState struct {
	id   sim.ProcID
	sent int  // p0: messages sent; p1: c sent
	gotB bool // p1
	gotA bool // p2
	gotC bool // p2
}

func (s veeState) Kind() sim.StateKind {
	switch s.id {
	case 0:
		if s.sent < 2 {
			return sim.Sending
		}
	case 1:
		if s.gotB && s.sent == 0 {
			return sim.Sending
		}
	}
	return sim.Receiving
}
func (s veeState) Decided() (sim.Decision, bool) {
	if s.id == 2 && s.gotA && s.gotC {
		return sim.Commit, true
	}
	return sim.NoDecision, false
}
func (s veeState) Amnesic() bool { return false }
func (s veeState) Key() string {
	k := "vee{" + s.id.String()
	if s.sent > 0 {
		k += " sent" + string(rune('0'+s.sent))
	}
	if s.gotB {
		k += " b"
	}
	if s.gotA {
		k += " a"
	}
	if s.gotC {
		k += " c"
	}
	return k + "}"
}

type veePayload string

func (p veePayload) Key() string { return string(p) }

func (veeProto) Name() string { return "vee" }
func (veeProto) N() int       { return 3 }
func (veeProto) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return veeState{id: p}
}
func (veeProto) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State {
	st := s.(veeState)
	if m.Notice {
		return st
	}
	switch pl := m.Payload.(veePayload); pl {
	case "a":
		st.gotA = true
	case "b":
		st.gotB = true
	case "c":
		st.gotC = true
	}
	return st
}
func (veeProto) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	st := s.(veeState)
	switch {
	case st.id == 0 && st.sent == 0:
		st.sent = 1
		return st, []sim.Envelope{{To: 2, Payload: veePayload("a")}}
	case st.id == 0 && st.sent == 1:
		st.sent = 2
		return st, []sim.Envelope{{To: 1, Payload: veePayload("b")}}
	case st.id == 1 && st.gotB && st.sent == 0:
		st.sent = 1
		return st, []sim.Envelope{{To: 2, Payload: veePayload("c")}}
	}
	return st, nil
}

func TestTotalCommCreatesEBarStatesAndEliminationRemovesThem(t *testing.T) {
	inner := veeProto{}

	padded, err := Explore(transform.TotalComm{Inner: inner}, Options{MaxFailures: 0})
	if err != nil {
		t.Fatal(err)
	}
	ebar := padded.EBarStates()
	if len(ebar) == 0 {
		t.Fatal("the padded protocol should exhibit an E̅ state: receiving c first reveals the undelivered a")
	}
	found := false
	for _, key := range ebar {
		// The E̅ state is p2 holding c (known via its appended copy of
		// a) while a sits undelivered in its buffer.
		if strings.Contains(key, "vee{p2 c}") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected p2's got-c-waiting-for-a state among the E̅ states:\n%s", strings.Join(ebar, "\n"))
	}

	eliminated, err := Explore(transform.EliminateEBar{Inner: inner}, Options{MaxFailures: 0})
	if err != nil {
		t.Fatal(err)
	}
	if eb := eliminated.EBarStates(); len(eb) != 0 {
		t.Fatalf("E̅ elimination left %d E̅ states, e.g.:\n%s", len(eb), eb[0])
	}
	// And the simulation still decides: p2 commits in every terminal
	// configuration.
	run, err := sim.RandomRun(transform.EliminateEBar{Inner: inner}, []sim.Bit{sim.One, sim.One, sim.One},
		sim.RunnerOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := run.DecisionOf(2); !ok || d != sim.Commit {
		t.Fatalf("p2 should decide commit: %v %v", d, ok)
	}
}

func TestConcurrencySetQueries(t *testing.T) {
	x, err := Explore(protocols.AckCommit{Procs: 3}, Options{MaxFailures: 0})
	if err != nil {
		t.Fatal(err)
	}
	keys := x.StateKeys()
	if len(keys) != len(x.States) {
		t.Fatal("StateKeys should enumerate every state")
	}
	// The initial states of p1 and p2 are concurrent.
	init1 := protocols.AckCommit{Procs: 3}.Init(1, sim.One, 3).Key()
	init2 := protocols.AckCommit{Procs: 3}.Init(2, sim.One, 3).Key()
	found := false
	for _, k := range x.ConcurrencySet(init1) {
		if k == init2 {
			found = true
		}
	}
	if !found {
		t.Fatal("initial states should be mutually concurrent")
	}
	if x.ConcurrencySet("no-such-state") != nil {
		t.Fatal("unknown keys have no concurrency set")
	}
}
