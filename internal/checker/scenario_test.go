package checker

import (
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
)

func newChainDriver(t *testing.T, inputs string) *Driver {
	t.Helper()
	in, err := sim.InputsFromString(inputs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(protocols.Chain{Procs: len(in)}, in)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriverRunToQuiescence(t *testing.T) {
	d := newChainDriver(t, "111")
	if err := d.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if !d.Config().Quiescent() {
		t.Fatal("configuration should be quiescent")
	}
	for p := 0; p < 3; p++ {
		if dec, ok := d.Decided(sim.ProcID(p)); !ok || dec != sim.Commit {
			t.Fatalf("%s: %v %v", sim.ProcID(p), dec, ok)
		}
	}
}

func TestDriverDeterminism(t *testing.T) {
	d1 := newChainDriver(t, "101")
	d2 := newChainDriver(t, "101")
	if err := d1.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if err := d2.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if d1.Config().Key() != d2.Config().Key() {
		t.Fatal("canonical drives should be identical")
	}
	if len(d1.Run().Schedule) != len(d2.Run().Schedule) {
		t.Fatal("canonical schedules should have equal length")
	}
}

func TestDriverFailAllExcept(t *testing.T) {
	d := newChainDriver(t, "1111")
	if err := d.FailAllExcept(2); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		faulty := d.Config().Faulty(sim.ProcID(p))
		if p == 2 && faulty {
			t.Fatal("p2 should survive")
		}
		if p != 2 && !faulty {
			t.Fatalf("%s should have failed", sim.ProcID(p))
		}
	}
	// The survivor alone must still reach a decision (weak termination).
	if err := d.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if dec, ok := d.Decided(2); !ok || dec != sim.Abort {
		t.Fatalf("lone survivor should abort, got %v %v", dec, ok)
	}
}

func TestOnlyProcsPicker(t *testing.T) {
	d := newChainDriver(t, "111")
	// Only p1 may act: it sends its vote and then has nothing to do.
	if err := d.Drive(OnlyProcs(1), nil, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Run().Schedule {
		if e.Proc != 1 {
			t.Fatalf("event by %s under OnlyProcs(1)", e.Proc)
		}
	}
	if !strings.Contains(d.StateOf(1).Key(), "wait-decision") {
		t.Fatalf("p1 should be waiting: %s", d.StateOf(1).Key())
	}
}

func TestExcludingPicker(t *testing.T) {
	d := newChainDriver(t, "111")
	// Never deliver anything to p0: it can only collect nothing, so the
	// chain stalls after the votes are sent.
	blocked := func(e sim.Event) bool { return e.Type == sim.Deliver && e.Proc == 0 }
	if err := d.Drive(Excluding(blocked), nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Decided(0); ok {
		t.Fatal("p0 cannot decide without receiving votes")
	}
	if len(d.Config().Buffers[0]) != 2 {
		t.Fatalf("p0's buffer should hold the 2 undelivered votes, has %d", len(d.Config().Buffers[0]))
	}
}

func TestDriveUntilPredicate(t *testing.T) {
	d := newChainDriver(t, "111")
	decided := func(c *sim.Config) bool {
		_, ok := c.States[0].Decided()
		return ok
	}
	if err := d.Drive(Canonical, decided, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Decided(0); !ok {
		t.Fatal("predicate should have stopped after p0 decided")
	}
}

func TestDriveErrorWhenPredicateUnreachable(t *testing.T) {
	d := newChainDriver(t, "111")
	never := func(c *sim.Config) bool { return false }
	onlyP1 := OnlyProcs(1)
	if err := d.Drive(onlyP1, never, 0); err == nil {
		t.Fatal("expected an error when events run out before the predicate holds")
	}
}

func TestSameStateAndExtendBoth(t *testing.T) {
	d1 := newChainDriver(t, "111")
	d2 := newChainDriver(t, "110") // p2 differs, p1 identical
	if !SameState(d1, d2, 1) {
		t.Fatal("p1 starts identically in both")
	}
	if SameState(d1, d2, 2) {
		t.Fatal("p2's initial states differ (different inputs)")
	}
	// Lemma 3: apply the same schedule (p1's vote send) to both.
	sched := sim.Schedule{{Proc: 1, Type: sim.SendStepEvent}}
	if err := ExtendBoth(d1, d2, sched); err != nil {
		t.Fatal(err)
	}
	if !SameState(d1, d2, 1) {
		t.Fatal("Lemma 3: p1's states must remain equal under an identical schedule")
	}
}

func TestDriverRejectsBadInputs(t *testing.T) {
	if _, err := NewDriver(protocols.Chain{Procs: 3}, []sim.Bit{sim.One}); err == nil {
		t.Fatal("expected input-length error")
	}
}
