package checker

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// panicProto wraps the tree protocol and panics in Receive the moment a
// failure notice is delivered. The panic value embeds the receiving state's
// key, so two runs panic with the same value only if they die at the same
// canonical point: the prefetch pool swallows its copy of the panic and
// drains, and the replay re-expands the node in canonical order and
// re-panics — schedule-independently.
type panicProto struct{ protocols.Tree }

func (p panicProto) Receive(id sim.ProcID, s sim.State, m sim.Message) sim.State {
	if m.Notice {
		panic("injected receive panic at " + s.Key())
	}
	return p.Tree.Receive(id, s, m)
}

func explorePanicValue(t *testing.T, par int) (val any) {
	t.Helper()
	defer func() { val = recover() }()
	prob := problem(taxonomy.WT, taxonomy.TC)
	_, _ = ExploreContext(context.Background(), panicProto{protocols.Tree{Procs: 3}},
		Options{MaxFailures: 1, Parallelism: par, Problem: &prob})
	return nil
}

// TestExplorePanicPropagatesDeterministically asserts a protocol panic
// surfaces to the caller with the same value at every parallelism width —
// the replay, not the racing pool, decides where the run dies — and that
// the pool's workers drain instead of deadlocking the test binary.
func TestExplorePanicPropagatesDeterministically(t *testing.T) {
	var base any
	for _, par := range []int{1, 2, 8} {
		val := explorePanicValue(t, par)
		if val == nil {
			t.Fatalf("parallelism %d: protocol panic was swallowed", par)
		}
		if par == 1 {
			base = val
			continue
		}
		if val != base {
			t.Errorf("parallelism %d: panic value %v, want %v (sequential)", par, val, base)
		}
	}
}

// cancelAfterProto wraps the star protocol and cancels the exploration's
// context after a fixed number of Receive calls, so cancellation lands in
// the middle of a run — while successor batches are in flight between pool
// workers at parallelism > 1.
type cancelAfterProto struct {
	protocols.Star
	calls  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (p cancelAfterProto) Receive(id sim.ProcID, s sim.State, m sim.Message) sim.State {
	if p.calls.Add(1) == p.after {
		p.cancel()
	}
	return p.Star.Receive(id, s, m)
}

// TestExploreCancellationMidRun cancels mid-exploration (rather than before
// it, which the differential suite covers) and asserts the partial-result
// contract: Interrupted status, context.Canceled error, some accepted
// configurations, and a non-empty frontier of accepted-but-unexpanded work.
func TestExploreCancellationMidRun(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		proto := cancelAfterProto{
			Star:   protocols.Star{Procs: 3},
			calls:  new(atomic.Int64),
			after:  2_000,
			cancel: cancel,
		}
		prob := problem(taxonomy.WT, taxonomy.TC)
		x, err := ExploreContext(ctx, proto, Options{MaxFailures: 2, Parallelism: par, Problem: &prob})
		cancel()
		if x == nil {
			t.Fatalf("parallelism %d: nil exploration (err=%v)", par, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if x.Status != StatusInterrupted {
			t.Fatalf("parallelism %d: status = %v, want interrupted", par, x.Status)
		}
		if x.NodeCount < 1 {
			t.Fatalf("parallelism %d: interrupted run lost its accepted prefix", par)
		}
		if x.FrontierSize < 1 {
			t.Fatalf("parallelism %d: interrupted mid-space but FrontierSize = 0", par)
		}
	}
}
