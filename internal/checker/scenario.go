package checker

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Driver builds specific adversarial executions step by step — the
// mechanized form of the scenario constructions in the proofs of Theorems 8
// and 13 ("all processors but p4 and p6 fail before p3 sends to p6 in
// Phase 1", and so on).
type Driver struct {
	run *sim.Run
}

// NewDriver starts an execution of the protocol from the initial
// configuration on the given inputs.
func NewDriver(proto sim.Protocol, inputs []sim.Bit) (*Driver, error) {
	if len(inputs) != proto.N() {
		return nil, fmt.Errorf("checker: protocol %s wants %d inputs, got %d", proto.Name(), proto.N(), len(inputs))
	}
	return &Driver{run: &sim.Run{Proto: proto, Configs: []*sim.Config{sim.NewConfig(proto, inputs)}}}, nil
}

// Run returns the execution built so far.
func (d *Driver) Run() *sim.Run { return d.run }

// Config returns the current configuration.
func (d *Driver) Config() *sim.Config { return d.run.Final() }

// StateOf returns processor p's current state.
func (d *Driver) StateOf(p sim.ProcID) sim.State { return d.run.Final().States[p] }

// Step applies a single explicit event.
func (d *Driver) Step(e sim.Event) error { return d.run.Extend(sim.Schedule{e}) }

// Fail fails the listed processors, in order.
func (d *Driver) Fail(ps ...sim.ProcID) error {
	for _, p := range ps {
		if err := d.Step(sim.Event{Proc: p, Type: sim.Fail}); err != nil {
			return err
		}
	}
	return nil
}

// FailAllExcept fails every processor not in the keep set.
func (d *Driver) FailAllExcept(keep ...sim.ProcID) error {
	keepSet := make(map[sim.ProcID]bool, len(keep))
	for _, p := range keep {
		keepSet[p] = true
	}
	for p := 0; p < d.Config().N(); p++ {
		pid := sim.ProcID(p)
		if keepSet[pid] || d.Config().Faulty(pid) {
			continue
		}
		if err := d.Fail(pid); err != nil {
			return err
		}
	}
	return nil
}

// Picker selects the next event among the enabled ones; returning false
// stops the drive.
type Picker func(enabled []sim.Event, cfg *sim.Config) (sim.Event, bool)

// Canonical picks the lexicographically first enabled event — a fixed,
// deterministic schedule.
func Canonical(enabled []sim.Event, _ *sim.Config) (sim.Event, bool) {
	if len(enabled) == 0 {
		return sim.Event{}, false
	}
	sorted := append([]sim.Event(nil), enabled...)
	sortEvents(sorted)
	return sorted[0], true
}

// OnlyProcs restricts stepping to the given processors (canonical order
// within them): the other processors are "suspended" by the adversary, as
// the asynchronous model permits.
func OnlyProcs(ps ...sim.ProcID) Picker {
	allowed := make(map[sim.ProcID]bool, len(ps))
	for _, p := range ps {
		allowed[p] = true
	}
	return func(enabled []sim.Event, _ *sim.Config) (sim.Event, bool) {
		var filtered []sim.Event
		for _, e := range enabled {
			if allowed[e.Proc] {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			return sim.Event{}, false
		}
		sortEvents(filtered)
		return filtered[0], true
	}
}

// Excluding suppresses events matched by the filter and picks canonically
// among the rest — e.g. "hold back the delivery of m to q".
func Excluding(blocked func(sim.Event) bool) Picker {
	return func(enabled []sim.Event, _ *sim.Config) (sim.Event, bool) {
		var filtered []sim.Event
		for _, e := range enabled {
			if !blocked(e) {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			return sim.Event{}, false
		}
		sortEvents(filtered)
		return filtered[0], true
	}
}

func sortEvents(evs []sim.Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Msg.Less(b.Msg)
	})
}

// Drive repeatedly applies events chosen by the picker until the picker
// stops, the predicate holds, or maxSteps is exceeded. A nil predicate
// drives until the picker has nothing left to pick.
func (d *Driver) Drive(pick Picker, until func(*sim.Config) bool, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 100_000
	}
	for i := 0; i < maxSteps; i++ {
		if until != nil && until(d.Config()) {
			return nil
		}
		e, ok := pick(sim.Enabled(d.Config()), d.Config())
		if !ok {
			if until != nil {
				return fmt.Errorf("checker: drive exhausted events before predicate held (after %d steps)", i)
			}
			return nil
		}
		if err := d.Step(e); err != nil {
			return err
		}
	}
	return fmt.Errorf("checker: drive exceeded %d steps", maxSteps)
}

// RunToQuiescence drives canonically until no events remain.
func (d *Driver) RunToQuiescence() error { return d.Drive(Canonical, nil, 0) }

// Decided reports the decision processor p has (ever) made in this
// execution.
func (d *Driver) Decided(p sim.ProcID) (sim.Decision, bool) { return d.run.DecisionOf(p) }

// SameState reports whether processor p occupies structurally identical
// states in the final configurations of the two executions — the hypothesis
// of Lemma 3's indistinguishability argument.
func SameState(a, b *Driver, p sim.ProcID) bool {
	return a.StateOf(p).Key() == b.StateOf(p).Key()
}

// ExtendBoth applies the same schedule to both executions; per Lemma 3, any
// processor with equal states beforehand has equal states afterwards, which
// the caller can assert with SameState.
func ExtendBoth(a, b *Driver, sched sim.Schedule) error {
	if err := a.run.Extend(sched); err != nil {
		return fmt.Errorf("first execution: %w", err)
	}
	if err := b.run.Extend(sched); err != nil {
		return fmt.Errorf("second execution: %w", err)
	}
	return nil
}
