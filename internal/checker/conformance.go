package checker

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Check explores the protocol's configuration space and verifies it against
// the problem over every requested input vector and failure pattern. It is
// the executable counterpart of "Q is a protocol for P": the decision rule
// is enforced at every decision transition, the consistency constraint at
// every accessible configuration, and the termination condition at every
// terminal (quiescent) configuration.
func Check(proto sim.Protocol, problem taxonomy.Problem, opts Options) (*Exploration, error) {
	opts.Problem = &problem
	return Explore(proto, opts)
}

// CheckContext is Check with graceful degradation: on cancellation or budget
// exhaustion the partial Exploration (with Status set and all violations
// found so far) accompanies the error. See ExploreContext.
func CheckContext(ctx context.Context, proto sim.Protocol, problem taxonomy.Problem, opts Options) (*Exploration, error) {
	opts.Problem = &problem
	return ExploreContext(ctx, proto, opts)
}

// decisionEdgeViolations validates the decision rule at the moment a
// decision is made: applying one event turned some processor's ledger entry
// from undecided to decided. A failure "has occurred" for the purposes of
// the rule if any processor is already faulty in the pre-configuration —
// by crashing or by having had a delivery omission-suppressed — (the event
// itself cannot simultaneously fail a processor and decide another).
// Pure — safe to run on expansion workers.
func decisionEdgeViolations(problem taxonomy.Problem, prev, next *node) []taxonomy.Violation {
	var out []taxonomy.Violation
	failureSeen := prev.cfg.OmissionsUsed() > 0
	for p := 0; !failureSeen && p < prev.cfg.N(); p++ {
		if prev.cfg.Faulty(sim.ProcID(p)) {
			failureSeen = true
		}
	}
	for p := range next.ledger {
		if prev.ledger[p] != sim.NoDecision || next.ledger[p] == sim.NoDecision {
			continue
		}
		d := next.ledger[p]
		if !problem.Rule.Permits(d, prev.inputs, failureSeen) {
			out = append(out, taxonomy.Violation{
				Kind: "rule",
				Detail: fmt.Sprintf("%s decided %s on inputs %v (failureSeen=%v), forbidden by %s",
					sim.ProcID(p), d, prev.inputs, failureSeen, problem.Rule.Name()),
			})
		}
	}
	return out
}

// nodeViolations validates the consistency constraint on one accessible
// configuration, and the termination condition if the configuration is
// terminal. Pure — safe to run on expansion workers.
func nodeViolations(problem taxonomy.Problem, nd *node) []taxonomy.Violation {
	var out []taxonomy.Violation
	switch problem.Consistency {
	case taxonomy.TC:
		// Total consistency constrains every decision ever made,
		// including by processors that subsequently failed — exactly
		// what the ledger records.
		seen := sim.NoDecision
		var seenBy sim.ProcID
		for p, d := range nd.ledger {
			if d == sim.NoDecision {
				continue
			}
			if seen == sim.NoDecision {
				seen, seenBy = d, sim.ProcID(p)
				continue
			}
			if d != seen {
				return append(out, taxonomy.Violation{
					Kind:   "TC",
					Detail: fmt.Sprintf("%s decided %s but %s decided %s", seenBy, seen, sim.ProcID(p), d),
				})
			}
		}
	case taxonomy.IC:
		// Interactive consistency constrains the decisions of
		// processors that are simultaneously nonfaulty. Decisions are
		// irrevocable, so a processor's decision stands even once it
		// is hidden by an amnesic state ("it may even be reminded of
		// its decision by the other processors") — hence the ledger,
		// restricted to currently nonfaulty processors. Without this,
		// IC would be vacuous for ST protocols: deciding and
		// immediately forgetting would never exhibit two simultaneous
		// decision states.
		seen := sim.NoDecision
		var seenBy sim.ProcID
		for p, s := range nd.cfg.States {
			if s.Kind() == sim.Failed {
				continue
			}
			d := nd.ledger[p]
			if d == sim.NoDecision {
				continue
			}
			if seen == sim.NoDecision {
				seen, seenBy = d, sim.ProcID(p)
				continue
			}
			if d != seen {
				return append(out, taxonomy.Violation{
					Kind:   "IC",
					Detail: fmt.Sprintf("%s occupies %s while %s occupies %s", seenBy, seen, sim.ProcID(p), d),
				})
			}
		}
	}

	if !nd.cfg.Quiescent() {
		return out
	}
	// Terminal node: a maximal fair run ends here (the scheduler may
	// inject no further failures), so the termination condition must
	// already hold for every nonfaulty processor. Omission-targeted
	// processors are exempt like crashed ones: a processor some delivery
	// to which was suppressed is receive-omission faulty, and the
	// termination conditions promise progress only to correct processors
	// (taxonomy.CheckTermination applies the same exemption).
	for p, s := range nd.cfg.States {
		pid := sim.ProcID(p)
		if s.Kind() == sim.Failed || nd.cfg.OmissionTarget(pid) {
			continue
		}
		if nd.ledger[p] == sim.NoDecision {
			out = append(out, taxonomy.Violation{
				Kind:   "WT",
				Detail: fmt.Sprintf("terminal configuration with nonfaulty %s undecided (state %s)", pid, s.Key()),
			})
			continue
		}
		if problem.Termination >= taxonomy.ST && !s.Amnesic() && s.Kind() != sim.Halted {
			out = append(out, taxonomy.Violation{
				Kind:   "ST",
				Detail: fmt.Sprintf("terminal configuration with nonfaulty %s not amnesic (state %s)", pid, s.Key()),
			})
		}
		if problem.Termination >= taxonomy.HT && s.Kind() != sim.Halted {
			out = append(out, taxonomy.Violation{
				Kind:   "HT",
				Detail: fmt.Sprintf("terminal configuration with nonfaulty %s not halted (state %s)", pid, s.Key()),
			})
		}
	}
	return out
}
