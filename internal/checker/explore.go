// Package checker implements the verification machinery behind the paper's
// proofs: an exhaustive model checker over the reachable configuration space
// (with fail-stop failure injection), computation of concurrency sets C(s),
// the safe-state analysis of Theorem 2, bias/committability, and a
// scenario-replay engine for the indistinguishability arguments of Theorems
// 8 and 13.
package checker

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Options configures an exploration.
type Options struct {
	// MaxFailures bounds the number of injected failures per run.
	// Negative means N−1 (the default); zero means failure-free.
	MaxFailures int
	// FailProcs restricts which processors may be failed (nil = all).
	FailProcs []sim.ProcID
	// Inputs restricts the initial input vectors (nil = all 2^N).
	Inputs [][]sim.Bit
	// MaxNodes caps the exploration (default 4_000_000). Exceeding it is
	// an error, never a silent truncation.
	MaxNodes int
	// Problem, if non-nil, enables inline conformance checking: the
	// decision rule is checked at every decision transition, consistency
	// at every node, and termination at every terminal node. Violations
	// accumulate in Exploration.Violations (capped at 100).
	Problem *taxonomy.Problem
	// TrackTraces records parent links so the first violation comes with
	// a full event trace (FirstTrace). Costs memory proportional to the
	// node count.
	TrackTraces bool
	// StopAtFirstViolation ends the exploration as soon as one violation
	// is found — useful when only the existence of a counterexample
	// matters.
	StopAtFirstViolation bool
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 4_000_000
	}
	return o.MaxNodes
}

// StateInfo aggregates everything the analysis needs to know about one
// accessible local state.
type StateInfo struct {
	// Key is the state's canonical encoding.
	Key string
	// Sample is one State value with this key.
	Sample sim.State
	// Procs lists which processors ever occupy the state.
	Procs map[sim.ProcID]struct{}
	// Inputs is the set of input vectors (encoded "0110…") under which
	// the state is accessible. "s implies X" means X holds for every
	// vector here.
	Inputs map[string]struct{}
	// Conc is the concurrency set C(s): the keys of every state that
	// occurs in the same accessible configuration as s.
	Conc map[string]struct{}
	// SeenEmptyBuffer reports whether the state ever occurs in an
	// accessible configuration in which its occupant's buffer is empty.
	// A receiving state for which this is false is an E̅ state: the
	// processor knows its buffer is not empty (Section 3).
	SeenEmptyBuffer bool
}

// Decision returns the state's visible decision.
func (si *StateInfo) Decision() sim.Decision {
	if d, ok := si.Sample.Decided(); ok {
		return d
	}
	return sim.NoDecision
}

// ImpliesAllOnes reports whether the state implies that every input is 1
// (condition (2) of the safe-state definition).
func (si *StateInfo) ImpliesAllOnes() bool {
	for vec := range si.Inputs { //ccvet:ignore detrange universally quantified predicate; order is unobservable
		if strings.ContainsRune(vec, '0') {
			return false
		}
	}
	return true
}

// ConfigRecord is the per-configuration information retained after
// exploration: interned state keys, the decision ledger (what each processor
// has ever decided by this configuration), and whether the configuration is
// terminal (quiescent).
type ConfigRecord struct {
	StateIdx  []int32
	Ledger    []sim.Decision
	InputsVec string
	Terminal  bool
}

// Status reports how an exploration ended. The zero value is Complete so
// that explorations which ran to the end need no special handling.
type Status int

const (
	// StatusComplete means the reachable space was fully explored (or the
	// exploration stopped at the first violation, as requested).
	StatusComplete Status = iota
	// StatusInterrupted means the context was cancelled mid-exploration;
	// the Exploration holds everything visited up to that point.
	StatusInterrupted
	// StatusExhausted means the node budget ran out; the Exploration holds
	// the visited prefix of the space.
	StatusExhausted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusInterrupted:
		return "interrupted"
	case StatusExhausted:
		return "budget-exhausted"
	default:
		return "invalid"
	}
}

// Partial reports whether the exploration covered only part of the space.
func (s Status) Partial() bool { return s != StatusComplete }

// Exploration is the result of exploring a protocol's configuration space.
type Exploration struct {
	Proto     sim.Protocol
	Opts      Options
	NodeCount int
	// Status records whether the exploration completed, was interrupted by
	// context cancellation, or exhausted its node budget. When Status is
	// partial, every aggregate below still describes the visited prefix —
	// partial results are returned, never discarded.
	Status Status
	// FrontierSize is the number of unexpanded nodes left on the stack
	// when a partial exploration stopped (0 for complete explorations).
	FrontierSize int
	// States maps canonical state key → aggregate info.
	States map[string]*StateInfo
	// stateKeys interns state keys for ConfigRecord.
	stateKeys []string
	stateIdx  map[string]int32
	// Configs records every distinct explored node.
	Configs []ConfigRecord
	// Terminals counts quiescent nodes.
	Terminals int
	// Violations lists conformance violations found when Options.Problem
	// was set, capped at 100.
	Violations []taxonomy.Violation
	// FirstTrace is the event trace leading to the first violation, when
	// Options.TrackTraces was set.
	FirstTrace []string

	parents map[string]parentLink
}

type parentLink struct {
	parent string
	event  sim.Event
}

// traceTo reconstructs the event trace from an initial configuration to the
// node with the given key.
func (x *Exploration) traceTo(key string) []string {
	if x.parents == nil {
		return nil
	}
	var events []sim.Event
	cur := key
	for {
		link, ok := x.parents[cur]
		if !ok {
			break
		}
		events = append(events, link.event)
		cur = link.parent
	}
	out := make([]string, 0, len(events)+1)
	out = append(out, "initial: "+cur)
	for i := len(events) - 1; i >= 0; i-- {
		out = append(out, events[i].String())
	}
	return out
}

// addViolation appends a violation, respecting the cap, and records the
// trace to the first violating node when trace tracking is on.
func (x *Exploration) addViolation(v taxonomy.Violation, nodeKey string) {
	if len(x.Violations) == 0 && x.parents != nil {
		x.FirstTrace = x.traceTo(nodeKey)
	}
	if len(x.Violations) < 100 {
		x.Violations = append(x.Violations, v)
	}
}

// Conforms reports whether a checked exploration found no violations.
func (x *Exploration) Conforms() bool { return len(x.Violations) == 0 }

// StateKeyAt resolves an interned index back to its key.
func (x *Exploration) StateKeyAt(i int32) string { return x.stateKeys[i] }

// node is one exploration state: configuration plus the decision ledger
// (needed because total consistency constrains decisions that failure or
// amnesia later hide).
type node struct {
	cfg    *sim.Config
	ledger []sim.Decision
}

func (nd *node) key() string {
	var sb strings.Builder
	sb.WriteString(nd.cfg.Key())
	sb.WriteByte('!')
	for _, d := range nd.ledger {
		switch d {
		case sim.Commit:
			sb.WriteByte('C')
		case sim.Abort:
			sb.WriteByte('A')
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

func inputsKey(inputs []sim.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == sim.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Explore walks the reachable configuration space of the protocol over the
// requested input vectors, injecting up to MaxFailures fail-stop failures at
// every point, and aggregates states, concurrency sets, and configuration
// records.
func Explore(proto sim.Protocol, opts Options) (*Exploration, error) {
	return ExploreContext(context.Background(), proto, opts)
}

// ExploreContext is Explore with graceful degradation: on context
// cancellation or budget exhaustion it returns the partial Exploration —
// visited nodes, aggregated states, and every violation found so far, with
// Status and FrontierSize set — alongside a non-nil error (the context's
// error or a *BudgetError). Callers that can use partial results should
// inspect the returned Exploration even when err != nil.
func ExploreContext(ctx context.Context, proto sim.Protocol, opts Options) (*Exploration, error) {
	n := proto.N()
	maxFail := opts.MaxFailures
	if maxFail < 0 {
		maxFail = n - 1
	}
	inputVecs := opts.Inputs
	if inputVecs == nil {
		inputVecs = sim.AllInputs(n)
	}
	failAllowed := make([]bool, n)
	if opts.FailProcs == nil {
		for i := range failAllowed {
			failAllowed[i] = true
		}
	} else {
		for _, p := range opts.FailProcs {
			failAllowed[p] = true
		}
	}

	x := &Exploration{
		Proto:    proto,
		Opts:     opts,
		States:   make(map[string]*StateInfo),
		stateIdx: make(map[string]int32),
	}
	if opts.TrackTraces {
		x.parents = make(map[string]parentLink)
	}
	seen := make(map[string]struct{})

	for _, inputs := range inputVecs {
		if len(inputs) != n {
			return nil, fmt.Errorf("checker: input vector %v has length %d, want %d", inputs, len(inputs), n)
		}
		vec := inputsKey(inputs)
		start := &node{cfg: sim.NewConfig(proto, inputs), ledger: make([]sim.Decision, n)}
		k := start.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		stack := []*node{start}
		x.record(start, vec)

		for len(stack) > 0 {
			if opts.StopAtFirstViolation && len(x.Violations) > 0 {
				x.NodeCount = len(seen)
				return x, nil
			}
			if err := ctx.Err(); err != nil {
				x.Status = StatusInterrupted
				x.FrontierSize = len(stack)
				x.NodeCount = len(seen)
				return x, fmt.Errorf("checker: exploration of %s interrupted: %w", proto.Name(), err)
			}
			if len(seen) > opts.maxNodes() {
				x.Status = StatusExhausted
				x.FrontierSize = len(stack)
				x.NodeCount = len(seen)
				return x, &BudgetError{Protocol: proto.Name(), Nodes: opts.maxNodes()}
			}
			nd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			events := sim.Enabled(nd.cfg)
			failedCount := 0
			for p := 0; p < n; p++ {
				if nd.cfg.Faulty(sim.ProcID(p)) {
					failedCount++
				}
			}
			if failedCount < maxFail {
				for p := 0; p < n; p++ {
					if failAllowed[p] && !nd.cfg.Faulty(sim.ProcID(p)) {
						events = append(events, sim.Event{Proc: sim.ProcID(p), Type: sim.Fail})
					}
				}
			}
			for _, e := range events {
				cfg, _, err := sim.Apply(proto, nd.cfg, e)
				if err != nil {
					return nil, fmt.Errorf("checker: exploring %s: %w", proto.Name(), err)
				}
				nxt := &node{cfg: cfg, ledger: updateLedger(nd.ledger, cfg)}
				nk := nxt.key()
				if x.parents != nil {
					if _, ok := x.parents[nk]; !ok {
						x.parents[nk] = parentLink{parent: nd.key(), event: e}
					}
				}
				if opts.Problem != nil {
					x.checkDecisionEdge(*opts.Problem, nd, nxt, inputs)
				}
				if _, ok := seen[nk]; ok {
					continue
				}
				seen[nk] = struct{}{}
				x.record(nxt, vec)
				stack = append(stack, nxt)
			}
		}
	}
	x.NodeCount = len(seen)
	return x, nil
}

// BudgetError reports that exploration exceeded its node budget.
type BudgetError struct {
	Protocol string
	Nodes    int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("checker: exploration of %s exceeded %d nodes", e.Protocol, e.Nodes)
}

// updateLedger extends the decision ledger with any decisions visible in the
// configuration. Decisions are irrevocable (sim enforces it), so a visible
// decision can only confirm or extend the ledger.
func updateLedger(old []sim.Decision, cfg *sim.Config) []sim.Decision {
	out := append([]sim.Decision(nil), old...)
	for p, s := range cfg.States {
		if d, ok := s.Decided(); ok {
			out[p] = d
		}
	}
	return out
}

// record aggregates one explored node into the exploration result.
func (x *Exploration) record(nd *node, vec string) {
	n := nd.cfg.N()
	idx := make([]int32, n)
	for p, s := range nd.cfg.States {
		key := s.Key()
		si, ok := x.States[key]
		if !ok {
			si = &StateInfo{
				Key:    key,
				Sample: s,
				Procs:  make(map[sim.ProcID]struct{}),
				Inputs: make(map[string]struct{}),
				Conc:   make(map[string]struct{}),
			}
			x.States[key] = si
			x.stateIdx[key] = int32(len(x.stateKeys))
			x.stateKeys = append(x.stateKeys, key)
		}
		si.Procs[sim.ProcID(p)] = struct{}{}
		si.Inputs[vec] = struct{}{}
		if len(nd.cfg.Buffers[p]) == 0 {
			si.SeenEmptyBuffer = true
		}
		idx[p] = x.stateIdx[key]
	}
	// Concurrency sets: every pair of states in this configuration is
	// mutually concurrent.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			x.States[x.stateKeys[idx[i]]].Conc[x.stateKeys[idx[j]]] = struct{}{}
		}
	}
	x.Configs = append(x.Configs, ConfigRecord{
		StateIdx:  idx,
		Ledger:    append([]sim.Decision(nil), nd.ledger...),
		InputsVec: vec,
		Terminal:  nd.cfg.Quiescent(),
	})
	if nd.cfg.Quiescent() {
		x.Terminals++
	}
	if x.Opts.Problem != nil {
		x.checkNode(*x.Opts.Problem, nd)
	}
}

// kindOf returns the state kind for an interned index.
func (x *Exploration) kindOf(i int32) sim.StateKind {
	return x.States[x.stateKeys[i]].Sample.Kind()
}

// decisionOf returns the visible decision for an interned index.
func (x *Exploration) decisionOf(i int32) sim.Decision {
	return x.States[x.stateKeys[i]].Decision()
}
